#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of cmd/servemodel: build the
# daemon, start it on a loopback port, poll /healthz until ready, exercise
# one search and the metrics endpoint, then stop it with SIGTERM and check
# that the graceful shutdown completes. CI runs this via `make serve-smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."
PORT="${SERVE_SMOKE_PORT:-18373}"
ADDR="127.0.0.1:${PORT}"
BIN="$(mktemp -d)/servemodel"
LOG="$(mktemp)"
trap 'kill "${PID:-}" 2>/dev/null || true; rm -rf "$(dirname "$BIN")" "$LOG"' EXIT

go build -o "$BIN" ./cmd/servemodel

"$BIN" -addr "$ADDR" -draintimeout 5s >"$LOG" 2>&1 &
PID=$!

# Wait for the daemon to come up (it may lose a race for the port: fail
# loudly with its log in that case).
for i in $(seq 1 50); do
    if curl -fsS "http://${ADDR}/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "serve-smoke: daemon exited early:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done
curl -fsS "http://${ADDR}/healthz" | grep -q '"ok"'

# One real search: a small matmul must come back with a positive latency.
OUT=$(curl -fsS -X POST "http://${ADDR}/v1/search" \
    -H 'Content-Type: application/json' \
    -d '{"layer":{"name":"smoke","kind":"matmul","dims":{"B":32,"K":32,"C":32}},"budget":500}')
echo "$OUT" | grep -q '"cc_total"' || { echo "serve-smoke: no cc_total in: $OUT" >&2; exit 1; }

# The same request again must be a cache hit (memo hit counter moves).
curl -fsS -X POST "http://${ADDR}/v1/search" \
    -H 'Content-Type: application/json' \
    -d '{"layer":{"name":"smoke","kind":"matmul","dims":{"B":32,"K":32,"C":32}},"budget":500}' >/dev/null

# The explainer: search + stall attribution for the same layer. The report
# must be present and internally consistent (the two attribution sums both
# equal the overall stall — the model's exactness invariant).
EXPL=$(curl -fsS -X POST "http://${ADDR}/v1/explain" \
    -H 'Content-Type: application/json' \
    -d '{"layer":{"name":"smoke","kind":"matmul","dims":{"B":32,"K":32,"C":32}},"budget":500}')
echo "$EXPL" | grep -q '"attribution_mode"' || {
    echo "serve-smoke: no attribution report in explain response: $EXPL" >&2
    exit 1
}
if command -v jq >/dev/null 2>&1; then
    echo "$EXPL" | jq -e \
        '.report.check | .sum_mem_contribution == .ss_overall and .sum_dtl_contribution == .ss_overall' \
        >/dev/null || {
        echo "serve-smoke: explain attribution sums do not match ss_overall" >&2
        echo "$EXPL" | jq '.report.check' >&2
        exit 1
    }
fi

# Transformer-block leg: POST /v1/network with a transformer_block spec must
# answer the same bytes as cmd/xformer's -json form for the identical spec —
# the CLI and the service share serve.BuildNetworkResponse and the encoder,
# so any drift between the two paths is a bug.
XJSON=$(go run ./cmd/xformer -preset tiny -mode prefill -budget 400 -json)
SJSON=$(curl -fsS -X POST "http://${ADDR}/v1/network" \
    -H 'Content-Type: application/json' \
    -d '{"transformer_block":{"preset":"tiny","mode":"prefill"},"budget":400}')
echo "$SJSON" | grep -q '"kind": "Softmax"' || {
    echo "serve-smoke: transformer block answer lacks elementwise ops: $SJSON" >&2
    exit 1
}
if [ "$SJSON" != "$XJSON" ]; then
    echo "serve-smoke: /v1/network transformer answer differs from cmd/xformer -json" >&2
    diff <(printf '%s\n' "$XJSON") <(printf '%s\n' "$SJSON") >&2 || true
    exit 1
fi

METRICS=$(curl -fsS "http://${ADDR}/metrics")
echo "$METRICS" | grep -q '^servemodel_build_info{go_version="[^"]*",revision="[^"]*"} 1' || {
    echo "serve-smoke: build_info metric missing" >&2
    echo "$METRICS" | grep '^servemodel_build' >&2
    exit 1
}
echo "$METRICS" | grep -q '^servemodel_memo_hits_total [1-9]' || {
    echo "serve-smoke: repeat request did not hit the cache" >&2
    echo "$METRICS" | grep '^servemodel_memo' >&2
    exit 1
}
echo "$METRICS" | grep -q '^servemodel_requests_total{endpoint="search",code="200"} 2' || {
    echo "serve-smoke: request counter wrong" >&2
    echo "$METRICS" | grep '^servemodel_requests_total' >&2
    exit 1
}

# A malformed body must answer 400, not crash.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://${ADDR}/v1/search" -d '{"nope":1}')
[ "$CODE" = "400" ] || { echo "serve-smoke: malformed request got $CODE, want 400" >&2; exit 1; }

# Graceful shutdown: SIGTERM must terminate the daemon with exit 0.
kill -TERM "$PID"
if ! wait "$PID"; then
    echo "serve-smoke: daemon exited non-zero on SIGTERM:" >&2
    cat "$LOG" >&2
    exit 1
fi
PID=""
echo "serve-smoke: OK"
