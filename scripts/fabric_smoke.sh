#!/usr/bin/env bash
# fabric_smoke.sh — end-to-end smoke test of the sharded search fabric:
# build cmd/servemodel and cmd/latmodel, start TWO servemodel nodes on
# loopback ports, and check that a search fanned out over shards — first
# in-process, then across both nodes — reproduces the plain local run
# byte-for-byte. A third node started with the -shardslowdown test hook
# forces the coordinator's work stealing to land, and the output must STILL
# be byte-identical with the node's steal counter moved. A traced fan-out
# (-fabrictrace) must assemble one cross-node Perfetto trace: both nodes
# export spans at /v1/trace/{id} and the critical-path report attributes
# the coordinator's wall time exactly. Also checks the nodes' shard
# counters moved, that a malformed /v1/shard body answers 400, and that
# SIGTERM still shuts the nodes down cleanly. CI runs this via
# `make fabric-smoke`.
#
# -nosurrogate keeps the CLI output literally diffable: every printed
# counter is then walk-exact, while the surrogate's "pruned before
# evaluation" line depends on evaluation order and may differ between a
# single engine and a fan-out (see DESIGN.md §13).
set -euo pipefail

cd "$(dirname "$0")/.."
PORT1="${FABRIC_SMOKE_PORT1:-18374}"
PORT2="${FABRIC_SMOKE_PORT2:-18375}"
PORT3="${FABRIC_SMOKE_PORT3:-18376}"
ADDR1="127.0.0.1:${PORT1}"
ADDR2="127.0.0.1:${PORT2}"
ADDR3="127.0.0.1:${PORT3}"
DIR="$(mktemp -d)"
trap 'kill "${PID1:-}" "${PID2:-}" "${PID3:-}" 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o "$DIR/servemodel" ./cmd/servemodel
go build -o "$DIR/latmodel" ./cmd/latmodel

"$DIR/servemodel" -addr "$ADDR1" -nodename node1 -draintimeout 5s >"$DIR/node1.log" 2>&1 &
PID1=$!
"$DIR/servemodel" -addr "$ADDR2" -nodename node2 -draintimeout 5s >"$DIR/node2.log" 2>&1 &
PID2=$!

wait_up() { # addr pid logfile
    for i in $(seq 1 50); do
        if curl -fsS "http://$1/healthz" >/dev/null 2>&1; then
            return 0
        fi
        if ! kill -0 "$2" 2>/dev/null; then
            echo "fabric-smoke: node on $1 exited early:" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 0.1
    done
    echo "fabric-smoke: node on $1 never became healthy" >&2
    exit 1
}
wait_up "$ADDR1" "$PID1" "$DIR/node1.log"
wait_up "$ADDR2" "$PID2" "$DIR/node2.log"

# The reference: one plain local search. A modest budget keeps the smoke
# fast; the workload and options must match the sharded runs exactly.
LAYER=(-b 64 -k 96 -c 128 -budget 4000 -nosurrogate)
"$DIR/latmodel" "${LAYER[@]}" >"$DIR/local.out"
grep -q 'search: .* valid' "$DIR/local.out" || {
    echo "fabric-smoke: reference run printed no search line:" >&2
    cat "$DIR/local.out" >&2
    exit 1
}

# In-process fan-out: -shards 4 must be byte-identical to the plain run.
"$DIR/latmodel" "${LAYER[@]}" -shards 4 >"$DIR/sharded.out"
diff -u "$DIR/local.out" "$DIR/sharded.out" || {
    echo "fabric-smoke: -shards 4 diverged from the local search" >&2
    exit 1
}

# Remote fan-out: the same shards executed by the two nodes.
"$DIR/latmodel" "${LAYER[@]}" -shards 4 -nodes "http://${ADDR1},http://${ADDR2}" >"$DIR/remote.out"
diff -u "$DIR/local.out" "$DIR/remote.out" || {
    echo "fabric-smoke: remote fan-out diverged from the local search" >&2
    exit 1
}

# Both nodes must have executed at least one shard (round-robin placement
# lands 2 of the 4 on each).
for ADDR in "$ADDR1" "$ADDR2"; do
    METRICS=$(curl -fsS "http://${ADDR}/metrics")
    echo "$METRICS" | grep -q '^servemodel_fabric_shards_total [1-9]' || {
        echo "fabric-smoke: node $ADDR reports no executed shards" >&2
        echo "$METRICS" | grep '^servemodel_fabric' >&2 || true
        exit 1
    }
done

# Forced work stealing: a node that holds every shard walk open for 300ms
# (-shardslowdown test hook) with 3 shards on 2 executors guarantees the
# third shard is still inside its delay window when an executor runs dry —
# the steal POST lands deterministically. The output must STILL be
# byte-identical to the plain local run (stdout only: the coordinator notes
# landed steals on stderr).
"$DIR/servemodel" -addr "$ADDR3" -draintimeout 5s -shardslowdown 300ms >"$DIR/node3.log" 2>&1 &
PID3=$!
wait_up "$ADDR3" "$PID3" "$DIR/node3.log"
"$DIR/latmodel" "${LAYER[@]}" -shards 3 -executors 2 -nodes "http://${ADDR3}" >"$DIR/stolen.out" 2>"$DIR/stolen.err"
diff -u "$DIR/local.out" "$DIR/stolen.out" || {
    echo "fabric-smoke: forced-steal run diverged from the local search" >&2
    cat "$DIR/stolen.err" >&2
    exit 1
}
METRICS=$(curl -fsS "http://${ADDR3}/metrics")
echo "$METRICS" | grep -q '^servemodel_fabric_steals_total [1-9]' || {
    echo "fabric-smoke: slowed node reports no landed steals" >&2
    echo "$METRICS" | grep '^servemodel_fabric' >&2 || true
    cat "$DIR/stolen.err" >&2
    exit 1
}
kill -TERM "$PID3"
wait "$PID3" || { echo "fabric-smoke: slowed node exited non-zero on SIGTERM" >&2; exit 1; }
PID3=""

# Fleet tracing: the same remote fan-out run with -fabrictrace must keep
# stdout byte-identical (spans are pure observation) while assembling a
# cross-node Perfetto trace. Both nodes must export spans under the ONE
# trace id, and the assembled critical-path report must attribute the
# coordinator's wall time exactly (diff_ns == 0).
"$DIR/latmodel" "${LAYER[@]}" -shards 4 -nodes "http://${ADDR1},http://${ADDR2}" \
    -fabrictrace "$DIR/trace.json" >"$DIR/traced.out" 2>"$DIR/traced.err"
diff -u "$DIR/local.out" "$DIR/traced.out" || {
    echo "fabric-smoke: traced fan-out diverged from the local search" >&2
    cat "$DIR/traced.err" >&2
    exit 1
}
TID=$(sed -n 's/^fabrictrace: trace \([0-9a-f]\{32\}\).*/\1/p' "$DIR/traced.err")
[ -n "$TID" ] || {
    echo "fabric-smoke: -fabrictrace printed no trace id:" >&2
    cat "$DIR/traced.err" >&2
    exit 1
}
for ADDR in "$ADDR1" "$ADDR2"; do
    SPANS=$(curl -fsS "http://${ADDR}/v1/trace/${TID}" | jq '.spans | length')
    [ "${SPANS:-0}" -ge 1 ] || {
        echo "fabric-smoke: node $ADDR exported ${SPANS:-0} spans for trace $TID" >&2
        exit 1
    }
done
jq -e '(.traceEvents | length) > 0
       and .critical_path.wall_ns > 0
       and .critical_path.diff_ns == 0
       and (.critical_path.nodes | length) >= 3' "$DIR/trace.json" >/dev/null || {
    echo "fabric-smoke: assembled trace or critical path malformed:" >&2
    jq '.critical_path' "$DIR/trace.json" >&2 || cat "$DIR/trace.json" >&2
    exit 1
}

# A malformed shard body must answer 400, not crash the node.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://${ADDR1}/v1/shard" -d '{"nope":1}')
[ "$CODE" = "400" ] || { echo "fabric-smoke: malformed shard request got $CODE, want 400" >&2; exit 1; }

# Graceful shutdown of both nodes.
kill -TERM "$PID1" "$PID2"
for PID in "$PID1" "$PID2"; do
    if ! wait "$PID"; then
        echo "fabric-smoke: node $PID exited non-zero on SIGTERM:" >&2
        cat "$DIR"/node*.log >&2
        exit 1
    fi
done
PID1="" PID2=""
echo "fabric-smoke: OK"
