// Command compare evaluates one workload across every preset accelerator —
// the matmul engines (in-house, case-study), the row-stationary direct-conv
// machine and the TPU-like unified-buffer design — and reports latency,
// utilization, energy and dataflow class side by side: the "which
// architecture fits my layer" question the uniform model exists to answer.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/energy"
	"repro/internal/loops"
	"repro/internal/mapper"
	"repro/internal/memo"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	var (
		b        = flag.Int64("b", 1, "conv batch")
		k        = flag.Int64("k", 64, "output channels")
		c        = flag.Int64("c", 64, "input channels")
		oy       = flag.Int64("oy", 28, "output rows")
		ox       = flag.Int64("ox", 28, "output cols")
		fy       = flag.Int64("fy", 3, "filter rows")
		fx       = flag.Int64("fx", 3, "filter cols")
		budget   = flag.Int("budget", 8000, "mapping search budget per architecture")
		cacheDir = flag.String("cachedir", "", `on-disk search cache: directory path, or "auto" for the user cache dir (empty = memory only)`)
		nosym    = flag.Bool("nosym", false, "disable the symmetry-reduced enumeration (walk every ordering)")
		nosur    = flag.Bool("nosurrogate", false, "disable the surrogate-guided candidate ordering (results identical; canonical walk order)")
	)
	flag.Parse()
	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}
	defer prof.Stop()

	if *cacheDir != "" {
		dir, err := mapper.EnableDiskCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "compare:", err)
			os.Exit(1)
		}
		fmt.Printf("disk cache: %s\n", dir)
	}
	defer func() { fmt.Println(memo.Default.Counters()) }()

	conv := workload.NewConv2D("conv", *b, *k, *c, *oy, *ox, *fy, *fx)
	fmt.Printf("workload: %s (%.1f MMACs)\n\n", conv.String(), float64(conv.TotalMACs())/1e6)

	type preset struct {
		hw      *arch.Arch
		spatial loops.Nest
		direct  bool // runs convolution directly (no Im2Col)
	}
	presets := []preset{
		{arch.InHouse(), arch.InHouseSpatial(), false},
		{arch.CaseStudy(), arch.CaseStudySpatial(), false},
		{arch.RowStationary(), arch.RowStationarySpatial(), true},
		{arch.TPULike(), arch.TPULikeSpatial(), false},
	}

	tb := report.NewTable("per-architecture verdict",
		"architecture", "MACs", "latency cc", "util %", "energy uJ", "cc/MMAC", "dataflow")
	for _, p := range presets {
		layer := conv
		if !p.direct {
			layer = workload.Im2Col(conv)
		}
		best, _, err := mapper.BestCached(context.Background(), &layer, p.hw, &mapper.Options{
			Spatial: p.spatial, BWAware: true, MaxCandidates: *budget, NoReduce: *nosym, NoSurrogate: *nosur,
		})
		if err != nil {
			tb.Add(p.hw.Name, p.hw.MACs, "unmappable", "-", "-", "-", "-")
			continue
		}
		prob := &core.Problem{Layer: &layer, Arch: p.hw, Mapping: best.Mapping}
		var uj float64
		if e, err := energy.Evaluate(prob, nil); err == nil {
			uj = e.TotalPJ / 1e6
		}
		cls := dataflow.Classify(best.Mapping).Class
		tb.Add(p.hw.Name, p.hw.MACs, best.Result.CCTotal,
			100*best.Result.Utilization, uj,
			best.Result.CCTotal/(float64(conv.TotalMACs())/1e6), cls.String())
	}
	tb.Write(os.Stdout)
	fmt.Println("\ncc/MMAC normalizes latency by work: lower is better across array sizes.")
}
