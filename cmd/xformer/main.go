// Command xformer characterizes transformer blocks on the modeled
// accelerators: per-op latency+energy tables (MoEwithPIM style) for one
// block configuration, sweep curves over seq_len/d_model/heads, prefill vs
// decode shape modes with explicit KV-cache traffic, and a -json form that
// is byte-identical to serve's POST /v1/network answer for the same spec.
//
// Usage:
//
//	xformer -preset llama7b -mode prefill -sweep seq=128..4096
//	xformer -preset gpt2 -mode decode -kvlen 1024 -arch casestudy
//	xformer -dmodel 1024 -heads 16 -seq 256 -blocks 4 -json
//
// Per-op cycle numbers are the layers' EffectiveCC contributions from
// network.Evaluate — the table column sums reconcile bit-exactly with the
// whole-network evaluation (the program verifies this on every run).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/mapper"
	"repro/internal/memo"
	"repro/internal/network"
	"repro/internal/serve"
	"repro/internal/transformer"
	"repro/internal/workload"
)

func main() {
	var (
		preset   = flag.String("preset", "", "block preset: tiny|gpt2|llama7b (empty: custom via -dmodel/-heads)")
		mode     = flag.String("mode", "prefill", "shape mode: prefill|decode")
		seq      = flag.Int64("seq", 0, "sequence length (prefill prompt / decode context default)")
		kvlen    = flag.Int64("kvlen", 0, "decode KV-cache length (default: -seq)")
		dmodel   = flag.Int64("dmodel", 0, "model width override")
		heads    = flag.Int64("heads", 0, "attention head count override")
		dhead    = flag.Int64("dhead", 0, "head dimension override (default dmodel/heads)")
		dff      = flag.Int64("dff", 0, "FFN width override (default 4*dmodel)")
		batch    = flag.Int64("batch", 0, "concurrent sequences")
		blocks   = flag.Int("blocks", 1, "stacked block copies")
		act      = flag.String("act", "", "FFN activation: gelu|swiglu (presets set their own)")
		archName = flag.String("arch", "inhouse", "accelerator preset: inhouse|casestudy|rowstationary|tpulike")
		budget   = flag.Int("budget", 6000, "per-layer mapping search budget")
		objName  = flag.String("objective", "latency", "per-layer mapping objective: latency|energy|edp")
		sweep    = flag.String("sweep", "", `sweep spec "param=lo..hi" (param: seq|dmodel|heads), geometric x2 steps`)
		jsonOut  = flag.Bool("json", false, "emit the serve /v1/network wire form (byte-identical to the server)")
	)
	flag.Parse()

	hw, sp, err := resolveArch(*archName)
	if err != nil {
		fatal("%v", err)
	}
	obj, err := resolveObjective(*objName)
	if err != nil {
		fatal("%v", err)
	}
	base := transformer.Spec{
		Preset: *preset, Mode: *mode, SeqLen: *seq, KVLen: *kvlen,
		DModel: *dmodel, Heads: *heads, DHead: *dhead, DFF: *dff,
		Batch: *batch, Blocks: *blocks, Act: *act,
	}
	opts := &network.Options{MaxCandidates: *budget, Objective: obj}

	if *sweep != "" {
		if err := runSweep(base, *sweep, hw, sp, opts, *jsonOut); err != nil {
			fatal("%v", err)
		}
		return
	}
	if err := runOne(base, hw, sp, opts, *jsonOut, true); err != nil {
		fatal("%v", err)
	}
	if !*jsonOut {
		fmt.Println(memo.Default.Counters())
	}
}

func resolveArch(name string) (*arch.Arch, loops.Nest, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "inhouse":
		return arch.InHouse(), arch.InHouseSpatial(), nil
	case "casestudy":
		return arch.CaseStudy(), arch.CaseStudySpatial(), nil
	case "rowstationary":
		return arch.RowStationary(), arch.RowStationarySpatial(), nil
	case "tpulike":
		return arch.TPULike(), arch.TPULikeSpatial(), nil
	}
	return nil, nil, fmt.Errorf("unknown arch %q (want inhouse|casestudy|rowstationary|tpulike)", name)
}

func resolveObjective(name string) (mapper.Objective, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "latency":
		return mapper.MinLatency, nil
	case "energy":
		return mapper.MinEnergy, nil
	case "edp":
		return mapper.MinEDP, nil
	}
	return 0, fmt.Errorf("unknown objective %q (want latency|energy|edp)", name)
}

// evaluate builds and prices one spec, verifying the per-op/total
// reconciliation that the table output relies on.
func evaluate(spec transformer.Spec, hw *arch.Arch, sp loops.Nest, opts *network.Options) (*transformer.Block, *network.Network, *network.Result, error) {
	blk, net, err := spec.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	res, err := network.Evaluate(context.Background(), net, hw, sp, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	var sum float64
	for i := range res.Layers {
		sum += res.Layers[i].EffectiveCC
	}
	if sum != res.TotalCC {
		return nil, nil, nil, fmt.Errorf("internal: per-op cycle sum %v does not reconcile with network total %v", sum, res.TotalCC)
	}
	return blk, net, res, nil
}

func runOne(spec transformer.Spec, hw *arch.Arch, sp loops.Nest, opts *network.Options, jsonOut, table bool) error {
	blk, net, res, err := evaluate(spec, hw, sp, opts)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(serve.BuildNetworkResponse(net, hw, res))
	}
	if table {
		printHeader(blk, net, hw)
		printOpTable(blk, res)
	}
	return nil
}

func printHeader(blk *transformer.Block, net *network.Network, hw *arch.Arch) {
	c := blk.Cfg
	unique, _, _ := workload.DedupLayers(net.Layers)
	fmt.Printf("%s on %s: d_model %d, %d heads x d_head %d, d_ff %d (%s), %s",
		net.Name, hw.Name, c.DModel, c.Heads, c.DHead, c.DFF, c.Act, c.Mode)
	if c.Mode == transformer.Decode {
		fmt.Printf(" over kv %d", c.KeyLen())
	} else {
		fmt.Printf(" over seq %d", c.SeqLen)
	}
	fmt.Printf("\n%d layers, %d unique shapes (dedup searches once per shape), %.3f GMAC/block\n\n",
		len(net.Layers), len(unique), float64(blk.WorkMACs())/1e9)
}

// printOpTable renders the per-op latency+energy table for the first block
// of the evaluated network (stacked copies repeat it exactly; the totals
// line covers the whole stack).
func printOpTable(blk *transformer.Block, res *network.Result) {
	decode := blk.Cfg.Mode == transformer.Decode
	kvCol := ""
	if decode {
		kvCol = fmt.Sprintf(" %10s", "KV KiB")
	}
	fmt.Printf("%-12s %-12s %6s %12s %11s %9s %9s %9s%s\n",
		"op", "kind", "heads", "latency cc", "energy nJ", "W KiB", "I KiB", "O KiB", kvCol)
	for i := range blk.Ops {
		lr := &res.Layers[i]
		l := &lr.Layer
		kv := ""
		if decode {
			var kvBits int64
			switch l.Kind {
			case workload.AttnScore, workload.AttnCtx:
				kvBits = l.OperandBits(loops.W) // the K-/V-cache read
			}
			kv = fmt.Sprintf(" %10.1f", float64(kvBits)/8/1024)
		}
		fmt.Printf("%-12s %-12s %6d %12.0f %11.1f %9.1f %9.1f %9.1f%s\n",
			blk.Ops[i].Name, l.Kind.String(), l.HeadCount(),
			lr.EffectiveCC, lr.EnergyPJ/1e3,
			float64(l.OperandBits(loops.W))/8/1024,
			float64(l.OperandBits(loops.I))/8/1024,
			float64(l.OperandBits(loops.O))/8/1024, kv)
	}
	fmt.Printf("\nnetwork total: %.0f cc (ideal %.0f, utilization %.1f%%), %.2f uJ",
		res.TotalCC, res.IdealCC, 100*res.Utilization, res.TotalPJ/1e6)
	if decode {
		fmt.Printf(", KV-cache reads %.1f KiB/block/token", float64(blk.KVCacheReadBits())/8/1024)
	}
	fmt.Println()
	fmt.Printf("per-op cycle sum reconciles bit-exactly with network.Evaluate (%.0f cc)\n\n", res.TotalCC)
}

// runSweep evaluates the spec across a geometric parameter sweep, printing
// each point's per-op table followed by the sweep curve.
func runSweep(base transformer.Spec, sweepSpec string, hw *arch.Arch, sp loops.Nest, opts *network.Options, jsonOut bool) error {
	param, points, err := parseSweep(sweepSpec)
	if err != nil {
		return err
	}
	type row struct {
		val            int64
		cc, pj, gmacs  float64
		kvKiB          float64
		ccPerTokenRows float64
	}
	var rows []row
	for _, v := range points {
		spec := base
		switch param {
		case "seq":
			spec.SeqLen = v
			if base.Mode == "decode" && base.KVLen == 0 {
				spec.KVLen = v
			}
		case "dmodel":
			spec.DModel = v
		case "heads":
			spec.Heads = v
		}
		blk, net, res, err := evaluate(spec, hw, sp, opts)
		if err != nil {
			return fmt.Errorf("%s=%d: %w", param, v, err)
		}
		if jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(serve.BuildNetworkResponse(net, hw, res)); err != nil {
				return err
			}
		} else {
			printHeader(blk, net, hw)
			printOpTable(blk, res)
		}
		tokens := blk.Cfg.Batch * blk.Cfg.QueryLen()
		rows = append(rows, row{
			val: v, cc: res.TotalCC, pj: res.TotalPJ,
			gmacs:          float64(blk.WorkMACs()) / 1e9,
			kvKiB:          float64(blk.KVCacheReadBits()) / 8 / 1024,
			ccPerTokenRows: res.TotalCC / float64(tokens),
		})
	}
	if jsonOut {
		return nil
	}
	fmt.Printf("sweep %s: %s from %d to %d\n", sweepSpec, param, points[0], points[len(points)-1])
	fmt.Printf("%8s %14s %12s %12s %12s %12s\n", param, "latency cc", "cc/token", "energy uJ", "GMAC", "KV KiB")
	for _, r := range rows {
		fmt.Printf("%8d %14.0f %12.0f %12.2f %12.3f %12.1f\n",
			r.val, r.cc, r.ccPerTokenRows, r.pj/1e6, r.gmacs, r.kvKiB)
	}
	fmt.Println(memo.Default.Counters())
	return nil
}

// parseSweep parses "seq=128..4096" into geometric x2 points (the upper
// bound is included even off the power-of-two grid).
func parseSweep(s string) (string, []int64, error) {
	name, rng, ok := strings.Cut(s, "=")
	if !ok {
		return "", nil, fmt.Errorf("sweep %q: want param=lo..hi", s)
	}
	name = strings.ToLower(strings.TrimSpace(name))
	switch name {
	case "seq", "dmodel", "heads":
	default:
		return "", nil, fmt.Errorf("sweep %q: unknown param (want seq|dmodel|heads)", s)
	}
	loS, hiS, ok := strings.Cut(rng, "..")
	if !ok {
		return "", nil, fmt.Errorf("sweep %q: want param=lo..hi", s)
	}
	lo, err1 := strconv.ParseInt(strings.TrimSpace(loS), 10, 64)
	hi, err2 := strconv.ParseInt(strings.TrimSpace(hiS), 10, 64)
	if err1 != nil || err2 != nil || lo < 1 || hi < lo {
		return "", nil, fmt.Errorf("sweep %q: bad range", s)
	}
	var points []int64
	for v := lo; v <= hi; v *= 2 {
		points = append(points, v)
	}
	if last := points[len(points)-1]; last != hi {
		points = append(points, hi)
	}
	return name, points, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xformer: "+format+"\n", args...)
	os.Exit(1)
}
