// Command latmodel evaluates the uniform latency model on one layer: it
// picks (or searches) a mapping on a preset accelerator and prints the full
// latency breakdown, per-port bandwidth analysis and energy estimate.
//
// Usage:
//
//	latmodel [-arch inhouse|casestudy] [-b N -k N -c N] [-conv "B,K,C,OY,OX,FY,FX"]
//	         [-config problem.json] [-dump preset.json] [-budget N] [-unaware] [-sim] [-csv]
//	         [-explain] [-explainjson out.json] [-tracejson out.json] [-progress]
//	         [-shards K] [-nodes url1,url2,...]
//
// -shards fans the exhaustive search out over K deterministic subtree
// shards — in-process goroutines, or the servemodel nodes listed in
// -nodes — and prints a result bit-identical to the unsharded search
// (DESIGN.md §13).
//
// With -config, the layer, architecture and (optionally) a fixed mapping
// are read from a JSON problem file (see internal/config); -dump writes the
// selected preset architecture as JSON to use as a starting point.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/energy"
	"repro/internal/fabric"
	"repro/internal/loops"
	"repro/internal/mapper"
	"repro/internal/mapping"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/otrace"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/roofline"
	"repro/internal/sensitivity"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		archName = flag.String("arch", "casestudy", "accelerator preset: inhouse or casestudy")
		b        = flag.Int64("b", 128, "matmul rows (batch) B")
		k        = flag.Int64("k", 128, "matmul columns (output channels) K")
		c        = flag.Int64("c", 128, "matmul reduction depth C")
		conv     = flag.String("conv", "", "Conv2D dims 'B,K,C,OY,OX,FY,FX' (lowered via Im2Col)")
		cfgPath  = flag.String("config", "", "JSON problem file (layer+arch+optional mapping)")
		dumpPath = flag.String("dump", "", "write the selected preset arch as JSON and exit")
		budget   = flag.Int("budget", 20000, "mapping search budget (loop nests)")
		anneal   = flag.Bool("anneal", false, "use simulated annealing instead of bounded enumeration")
		unaware  = flag.Bool("unaware", false, "use the bandwidth-unaware baseline model")
		runSim   = flag.Bool("sim", false, "also run the cycle-level reference simulator")
		tornado  = flag.Bool("tornado", false, "parameter sensitivity analysis (halve/double every knob)")
		csv      = flag.Bool("csv", false, "print the port table as CSV")
		jsonOut  = flag.String("json", "", "write the evaluation summary as JSON to this file")
		spatial  = flag.String("spatial", "", "override spatial unrolling, e.g. \"K 16 | B 8 | C 2\"")
		cacheDir = flag.String("cachedir", "", `on-disk search cache: directory path, or "auto" for the user cache dir (empty = memory only)`)
		nosym    = flag.Bool("nosym", false, "disable the symmetry-reduced enumeration (walk every ordering)")
		nosur    = flag.Bool("nosurrogate", false, "disable the surrogate-guided candidate ordering (results identical; canonical walk order)")
		explain  = flag.Bool("explain", false, "print the stall-attribution explainer (per-DTL stalls, critical chain)")
		explJSON = flag.String("explainjson", "", "write the full explainer report as JSON to this file")
		traceOut = flag.String("tracejson", "", "write a Chrome/Perfetto trace-event file of the port timelines to this file")
		progress = flag.Bool("progress", false, "stream live search telemetry to stderr")
		shards   = flag.Int("shards", 1, "fan the exhaustive search out over K deterministic subtree shards (results bit-identical to -shards 1)")
		nodes    = flag.String("nodes", "", "comma-separated servemodel base URLs to execute shards on (default: in-process goroutines)")
		execs    = flag.Int("executors", 0, "bound on concurrently executing shards (default: -shards); idle executors steal from running ones")
		nosteal  = flag.Bool("nosteal", false, "disable work stealing between shard executors (results bit-identical either way)")
		ftrace   = flag.String("fabrictrace", "", "trace the sharded search: write the assembled fleet Perfetto trace to this file and the critical-path report to stderr (requires -shards > 1 or -nodes; results bit-identical with tracing off)")
	)
	flag.Parse()
	if err := prof.Start(); err != nil {
		fatal("%v", err)
	}
	defer prof.Stop()

	if *cacheDir != "" {
		dir, err := mapper.EnableDiskCache(*cacheDir)
		if err != nil {
			fatal("cachedir: %v", err)
		}
		fmt.Printf("disk cache: %s\n", dir)
		defer func() { fmt.Println(memo.Default.Counters()) }()
	}

	var hw *arch.Arch
	var sp loops.Nest
	switch *archName {
	case "inhouse":
		hw, sp = arch.InHouse(), arch.InHouseSpatial()
	case "casestudy":
		hw, sp = arch.CaseStudy(), arch.CaseStudySpatial()
	default:
		fatal("unknown arch %q", *archName)
	}

	if *dumpPath != "" {
		data, err := config.Marshal(config.FromArch(hw))
		if err != nil {
			fatal("dump: %v", err)
		}
		if err := os.WriteFile(*dumpPath, data, 0o644); err != nil {
			fatal("dump: %v", err)
		}
		fmt.Printf("wrote %s (%s)\n", *dumpPath, hw.Name)
		return
	}

	// archWire / archCfgWire tell remote shard executors which architecture
	// to load: the preset name when one is selected, the inline config form
	// when -config replaced it.
	archWire := *archName
	var archCfgWire *config.Arch

	var fixed *mapping.Mapping
	var layer workload.Layer
	if *cfgPath != "" {
		data, err := os.ReadFile(*cfgPath)
		if err != nil {
			fatal("config: %v", err)
		}
		prob, err := config.UnmarshalProblem(data)
		if err != nil {
			fatal("config: %v", err)
		}
		layer, err = prob.Layer.ToLayer()
		if err != nil {
			fatal("config layer: %v", err)
		}
		hw, err = prob.Arch.ToArch()
		if err != nil {
			fatal("config arch: %v", err)
		}
		archWire, archCfgWire = "", &prob.Arch
		if prob.Mapping != nil {
			fixed, err = prob.Mapping.ToMapping()
			if err != nil {
				fatal("config mapping: %v", err)
			}
			sp = fixed.Spatial
		} else {
			sp = guessSpatial(hw)
		}
	} else if *conv != "" {
		dims, err := parseDims(*conv)
		if err != nil {
			fatal("bad -conv: %v", err)
		}
		cl := workload.NewConv2D("conv", dims[0], dims[1], dims[2], dims[3], dims[4], dims[5], dims[6])
		layer = workload.Im2Col(cl)
		fmt.Printf("lowered: %s\n", layer.String())
	} else {
		layer = workload.NewMatMul(fmt.Sprintf("(%d,%d,%d)", *b, *k, *c), *b, *k, *c)
	}
	if err := layer.Validate(); err != nil {
		fatal("invalid layer: %v", err)
	}
	if *spatial != "" {
		n, err := loops.ParseNest(*spatial)
		if err != nil {
			fatal("bad -spatial: %v", err)
		}
		sp = n
	}

	hooks := progressHooks(*progress)
	var best *mapper.Candidate
	var searchStats *mapper.Stats
	if fixed != nil {
		if err := fixed.Validate(&layer, hw); err != nil {
			fatal("fixed mapping invalid: %v", err)
		}
		r, err := evalFixed(&layer, hw, fixed, *unaware)
		if err != nil {
			fatal("evaluate: %v", err)
		}
		best = &mapper.Candidate{Mapping: fixed, Result: r}
		fmt.Printf("arch: %s (%d MACs)\nlayer: %s\nmapping: fixed from config\n\n",
			hw.Name, hw.MACs, layer.String())
	} else if *anneal {
		var err error
		best, err = mapper.AnnealCached(context.Background(), &layer, hw, &mapper.AnnealOptions{
			Spatial: sp, BWAware: !*unaware, Iterations: *budget / 4, NoReduce: *nosym, NoSurrogate: *nosur, Hooks: hooks,
		})
		if err != nil {
			fatal("annealing: %v", err)
		}
		fmt.Printf("arch: %s (%d MACs)\nlayer: %s\nsearch: simulated annealing (%d iterations x 3 restarts)\n\n",
			hw.Name, hw.MACs, layer.String(), *budget/4)
	} else {
		var stats *mapper.Stats
		var err error
		opt := &mapper.Options{
			Spatial: sp, BWAware: !*unaware, MaxCandidates: *budget, NoReduce: *nosym, NoSurrogate: *nosur, Hooks: hooks,
		}
		var run mapper.SearchFunc
		var steals atomic.Int64
		if *shards > 1 || *nodes != "" {
			run = fabric.Runner(&fabric.Options{
				Shards:     *shards,
				Nodes:      splitList(*nodes),
				ArchName:   archWire,
				ArchConfig: archCfgWire,
				Executors:  *execs,
				NoSteal:    *nosteal,
				Steals:     &steals,
			})
		}
		// -fabrictrace roots a trace around the fan-out. Spans are pure
		// observation — the printed result is byte-identical either way —
		// and every trace artifact goes to stderr or the trace file, never
		// stdout.
		ctx := context.Background()
		var rec *otrace.Recorder
		var root *otrace.Span
		if *ftrace != "" {
			if run == nil {
				fatal("-fabrictrace requires a sharded search (add -shards K or -nodes)")
			}
			rec = otrace.NewRecorder("latmodel", 0, 0)
			ctx, root = rec.StartTrace(ctx, "fabric.search", "fabric")
			root.SetTid(1)
		}
		best, stats, err = mapper.BestCachedVia(ctx, &layer, hw, opt, run)
		if err != nil {
			fatal("mapping search: %v", err)
		}
		if rec != nil {
			root.End()
			writeFabricTrace(rec, root.TraceID(), splitList(*nodes), *ftrace)
		}
		if n := steals.Load(); n > 0 {
			fmt.Fprintf(os.Stderr, "fabric: %d shard steal(s) re-balanced the search\n", n)
		}
		fmt.Printf("arch: %s (%d MACs)\nlayer: %s\nsearch: %d nests, %d valid\n\n",
			hw.Name, hw.MACs, layer.String(), stats.NestsGenerated, stats.Valid)
		searchStats = stats
	}
	fmt.Println(best.Mapping)
	fmt.Print(dataflow.Classify(best.Mapping).Describe())
	fmt.Println()
	fmt.Println(best.Result.Report())

	tb := report.NewTable("per-port analysis", "port", "ReqBW rd", "ReqBW wr", "RealBW", "MUW", "SS")
	for _, ps := range best.Result.Ports {
		tb.Add(ps.MemName+"."+ps.PortName, ps.ReqBWReadBits, ps.ReqBWWriteBits,
			ps.RealBWBits, ps.MUWComb, ps.SSComb)
	}
	if *csv {
		fmt.Print(tb.CSV())
	} else {
		tb.Write(os.Stdout)
	}

	p := &core.Problem{Layer: &layer, Arch: hw, Mapping: best.Mapping}
	if *explain || *explJSON != "" || *traceOut != "" {
		if *unaware {
			fatal("-explain/-explainjson/-tracejson need the bandwidth-aware model's diagnostics (drop -unaware)")
		}
		rep := obs.NewReport(p, best.Result)
		if *explain {
			fmt.Println()
			fmt.Print(rep.Text())
			if st := searchStats; st != nil && !*nosur && st.Valid > 0 {
				fmt.Printf("guided search: surrogate order pruned %d of %d candidates before evaluation (%.1f%%), rank correlation %.3f\n",
					st.SurrogatePruned, st.Valid,
					100*float64(st.SurrogatePruned)/float64(st.Valid),
					st.SurrogateRankCorr)
			}
		}
		if *explJSON != "" {
			data, err := rep.JSON()
			if err != nil {
				fatal("explainjson: %v", err)
			}
			if err := os.WriteFile(*explJSON, data, 0o644); err != nil {
				fatal("explainjson: %v", err)
			}
			fmt.Printf("\nwrote %s\n", *explJSON)
		}
		if *traceOut != "" {
			raw, err := obs.TraceJSON(p, best.Result, obs.TraceOptions{})
			if err != nil {
				fatal("tracejson: %v", err)
			}
			if err := os.WriteFile(*traceOut, raw, 0o644); err != nil {
				fatal("tracejson: %v", err)
			}
			fmt.Printf("\nwrote %s (open in ui.perfetto.dev or chrome://tracing)\n", *traceOut)
		}
	}
	if rf, err := roofline.Analyze(p); err == nil {
		fmt.Println()
		fmt.Print(rf.Report())
	}
	if e, err := energy.Evaluate(p, nil); err == nil {
		fmt.Printf("\nenergy: %.1f nJ (MAC %.1f, array %.1f", e.TotalPJ/1e3, e.MACPJ/1e3, e.ArrayPJ/1e3)
		for _, n := range e.MemNames() {
			fmt.Printf(", %s %.1f", n, e.MemPJ[n]/1e3)
		}
		fmt.Println(")")
	}

	if *jsonOut != "" {
		prob := &core.Problem{Layer: &layer, Arch: hw, Mapping: best.Mapping}
		data, err := config.Marshal(config.FromResult(prob, best.Result))
		if err != nil {
			fatal("json: %v", err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fatal("json: %v", err)
		}
		fmt.Printf("\nwrote %s\n", *jsonOut)
	}

	if *tornado {
		effects, err := sensitivity.Analyze(&layer, hw, best.Mapping.Spatial, nil)
		if err != nil {
			fatal("sensitivity: %v", err)
		}
		fmt.Println("\nparameter sensitivity (mapping re-optimized per point):")
		fmt.Print(sensitivity.Report(effects))
	}

	if *runSim {
		sr, err := sim.Simulate(p, nil)
		if err != nil {
			fatal("simulator: %v", err)
		}
		acc := 1 - abs(best.Result.CCTotal-float64(sr.Cycles))/float64(sr.Cycles)
		fmt.Printf("\nsimulator: %d cycles (stall %d, preload %d, tail %d) -> model accuracy %.1f%%\n",
			sr.Cycles, sr.ComputeStall, sr.PreloadCycles, sr.DrainTail, 100*acc)
	}
}

// progressHooks builds stderr-streaming telemetry hooks (nil when off, so
// the mapper keeps its zero-overhead fast path).
func progressHooks(on bool) *obs.SearchHooks {
	if !on {
		return nil
	}
	return &obs.SearchHooks{
		Phase: func(name string, d time.Duration) {
			fmt.Fprintf(os.Stderr, "progress: phase %-8s %v\n", name, d.Round(time.Microsecond))
		},
		Progress: func(p obs.SearchProgress) {
			best := "-"
			if !math.IsInf(p.BestCC, 1) {
				best = fmt.Sprintf("%.0f", p.BestCC)
			}
			fmt.Fprintf(os.Stderr, "progress: walked %d valid %d pruned %d best %s (%.1fs)\n",
				p.Walked, p.Valid, p.Pruned, best, p.Elapsed.Seconds())
		},
		ImprovedBest: func(score float64, seq int64) {
			fmt.Fprintf(os.Stderr, "progress: new best %.0f (candidate #%d)\n", score, seq)
		},
		AnnealProgress: func(chain, iter int, best float64) {
			fmt.Fprintf(os.Stderr, "progress: anneal chain %d iter %d best %.0f\n", chain, iter, best)
		},
	}
}

// evalFixed evaluates one fixed mapping with the chosen model.
func evalFixed(l *workload.Layer, hw *arch.Arch, m *mapping.Mapping, unaware bool) (*core.Result, error) {
	p := &core.Problem{Layer: l, Arch: hw, Mapping: m}
	if unaware {
		return core.EvaluateBWUnaware(p)
	}
	return core.Evaluate(p)
}

// guessSpatial picks a default spatial unrolling for a config-file arch: a
// K|B|C unrolling shaped like the presets', sized to the MAC count.
func guessSpatial(hw *arch.Arch) loops.Nest {
	k := int64(16)
	for k*k/2 < hw.MACs {
		k *= 2
	}
	b := hw.MACs / (k * 2)
	if b < 1 {
		b = 1
		k = hw.MACs / 2
		if k < 1 {
			return loops.Nest{{Dim: loops.K, Size: hw.MACs}}
		}
	}
	return loops.Nest{{Dim: loops.K, Size: k}, {Dim: loops.B, Size: b}, {Dim: loops.C, Size: 2}}
}

// writeFabricTrace assembles the coordinator's recorded spans with every
// remote node's export of the same trace (GET /v1/trace/{id}) into one
// Perfetto file plus the critical-path report. All output goes to stderr /
// the trace file so stdout stays byte-identical to an untraced run.
func writeFabricTrace(rec *otrace.Recorder, tid otrace.TraceID, nodes []string, path string) {
	var traces []otrace.WireTrace
	if w, ok := rec.Export(tid); ok {
		traces = append(traces, w)
	}
	for _, n := range nodes {
		w, err := fetchTrace(n, tid)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fabrictrace: %s: %v (node omitted from the assembly)\n", n, err)
			continue
		}
		traces = append(traces, w)
	}
	a, err := otrace.Assemble(rec.Node(), traces)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fabrictrace: assemble: %v\n", err)
		return
	}
	data, err := a.JSON()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fabrictrace: encode: %v\n", err)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "fabrictrace: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "fabrictrace: trace %s (%d node(s), %d spans)\n", tid, len(traces), len(a.Events))
	fmt.Fprint(os.Stderr, a.Report.Format())
	fmt.Fprintf(os.Stderr, "fabrictrace: wrote %s (open in ui.perfetto.dev)\n", path)
}

// fetchTrace pulls one node's recorded spans for the trace.
func fetchTrace(node string, tid otrace.TraceID) (otrace.WireTrace, error) {
	url := strings.TrimRight(node, "/") + "/v1/trace/" + tid.String()
	resp, err := http.Get(url)
	if err != nil {
		return otrace.WireTrace{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return otrace.WireTrace{}, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var w otrace.WireTrace
	if err := json.NewDecoder(io.LimitReader(resp.Body, 32<<20)).Decode(&w); err != nil {
		return otrace.WireTrace{}, err
	}
	return w, nil
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseDims(s string) ([]int64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 7 {
		return nil, fmt.Errorf("want 7 comma-separated dims, got %d", len(parts))
	}
	out := make([]int64, 7)
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "latmodel: "+format+"\n", args...)
	prof.Stop() // os.Exit skips defers; flush any profiles first
	os.Exit(1)
}
