// Command case2 reproduces paper Fig. 7 (Case study 2 — workload size vs
// latency): a B/K/C layer sweep on the fixed scaled-down accelerator,
// reporting the operand profile (panel a), the modeled latency breakdown
// (panel b) and the discrepancy a bandwidth-unaware model would incur.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/mapper"
	"repro/internal/memo"
	"repro/internal/prof"
	"repro/internal/report"
)

func main() {
	var (
		budget   = flag.Int("budget", 20000, "mapping search budget per layer")
		csv      = flag.Bool("csv", false, "CSV output")
		grid     = flag.Bool("grid", false, "full BxKxC grid with a discrepancy heatmap")
		cacheDir = flag.String("cachedir", "", `on-disk search cache: directory path, or "auto" for the user cache dir (empty = memory only)`)
		nosym    = flag.Bool("nosym", false, "disable the symmetry-reduced enumeration (walk every ordering)")
		nosur    = flag.Bool("nosurrogate", false, "disable the surrogate-guided candidate ordering (results identical; canonical walk order)")
	)
	flag.Parse()
	if err := prof.Start(); err != nil {
		fatal("%v", err)
	}
	defer prof.Stop()

	if *cacheDir != "" {
		dir, err := mapper.EnableDiskCache(*cacheDir)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("disk cache: %s\n", dir)
	}
	defer func() { fmt.Println(memo.Default.Counters()) }()

	if *grid {
		extents := []int64{8, 32, 128, 512}
		cells, err := experiments.Case2Grid(extents, &experiments.Case2Options{
			MaxCandidates: *budget / 4, NoReduce: *nosym, NoSurrogate: *nosur,
		})
		if err != nil {
			fatal("%v", err)
		}
		rows, cols, vals := experiments.DiscrepancyMatrix(cells, extents)
		report.Heatmap(os.Stdout,
			"BW-unaware under-estimation (Real/Unaware) over the full grid; columns = C",
			rows, cols, vals)
		worst := cells[0]
		for _, c := range cells {
			if c.Discrepancy > worst.Discrepancy {
				worst = c
			}
		}
		fmt.Printf("\nworst cell: (%d,%d,%d) at %.2fx (paper: 9.2x at (512,512,8))\n",
			worst.B, worst.K, worst.C, worst.Discrepancy)
		return
	}

	rows, err := experiments.Case2(&experiments.Case2Options{MaxCandidates: *budget, NoReduce: *nosym, NoSurrogate: *nosur})
	if err != nil {
		fatal("%v", err)
	}

	a := report.NewTable("Fig. 7(a) — workload profile",
		"layer (B,K,C)", "MAC ops", "W bytes", "I bytes", "O bytes", "total bytes")
	for _, r := range rows {
		a.Add(r.Name, r.MACs, r.WBits/8, r.IBits/8, r.OBits/8, r.TotalBits/8)
	}

	b := report.NewTable("\nFig. 7(b) — latency breakdown [cycles]",
		"layer (B,K,C)", "preload", "ideal", "spatial stall", "temporal stall", "offload",
		"Real", "w/o stall", "disc.")
	for _, r := range rows {
		b.Add(r.Name, r.Preload, r.Ideal, r.SpatialStall, r.TemporalStall, r.Offload,
			r.Real, r.Unaware, fmt.Sprintf("%.2fx", r.Discrepancy))
	}

	if *csv {
		fmt.Print(a.CSV())
		fmt.Print(b.CSV())
		return
	}
	a.Write(os.Stdout)
	b.Write(os.Stdout)

	names := make([]string, len(rows))
	real := make([]float64, len(rows))
	for i, r := range rows {
		names[i] = r.Name
		real[i] = r.Real
	}
	fmt.Println()
	report.Bar(os.Stdout, "Real latency [cycles] (tracks total data size, not MAC count)", names, real, 50)

	fmt.Println("\nNote the output-dominant small-C layers: without temporal-stall modeling")
	for _, r := range rows {
		if r.Discrepancy > 3 {
			fmt.Printf("  %-14s would be under-estimated %.1fx\n", r.Name, r.Discrepancy)
		}
	}
	fmt.Println("(paper: 7.4x at (128,128,8) and 9.2x at (512,512,8))")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "case2: "+format+"\n", args...)
	prof.Stop() // os.Exit skips defers; flush any profiles first
	os.Exit(1)
}
