// Command netmodel evaluates a whole DNN on one accelerator with the
// cross-layer extension of the uniform latency model: per-layer mapping
// optimization, weight-prefetch overlap between consecutive layers, and
// off-chip spill accounting for intermediate tensors.
//
// Usage:
//
//	netmodel [-arch inhouse|casestudy] [-net handtracking] [-budget N]
//	         [-noprefetch] [-objective latency|energy|edp] [-explain]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/mapper"
	"repro/internal/memo"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/workload"
)

func main() {
	var (
		archName = flag.String("arch", "inhouse", "accelerator preset: inhouse or casestudy")
		netName  = flag.String("net", "handtracking", "network preset: handtracking|resnet18|vgg16|mobilenetv2")
		netFile  = flag.String("netconfig", "", "JSON network file (overrides -net)")
		cores    = flag.Int("cores", 1, "number of accelerator cores")
		pipeline = flag.Bool("pipeline", false, "pipeline layers across cores instead of data parallelism")
		shareBW  = flag.Bool("sharebw", false, "cores share one GB interface (data-parallel mode)")
		budget   = flag.Int("budget", 6000, "per-layer mapping search budget")
		noPre    = flag.Bool("noprefetch", false, "disable cross-layer weight prefetch")
		planGB   = flag.Bool("plangb", false, "run the global-buffer allocation planner")
		scaling  = flag.Bool("scaling", false, "print the 1..cores strong-scaling curve")
		objName  = flag.String("objective", "latency", "per-layer mapping objective: latency|energy|edp")
		cacheDir = flag.String("cachedir", "", `on-disk search cache: directory path, or "auto" for the user cache dir (empty = memory only)`)
		nosym    = flag.Bool("nosym", false, "disable the symmetry-reduced enumeration (walk every ordering)")
		nosur    = flag.Bool("nosurrogate", false, "disable the surrogate-guided candidate ordering (results identical; canonical walk order)")
		explain  = flag.Bool("explain", false, "print the per-layer critical-DTL table (stall attribution)")
	)
	flag.Parse()
	if err := prof.Start(); err != nil {
		fatal("%v", err)
	}
	defer prof.Stop()

	if *cacheDir != "" {
		dir, err := mapper.EnableDiskCache(*cacheDir)
		if err != nil {
			fatal("cachedir: %v", err)
		}
		fmt.Printf("disk cache: %s\n", dir)
	}
	// Surface the evaluation-cache traffic after all output (early returns
	// included).
	defer func() { fmt.Println(memo.Default.Counters()) }()

	var hw *arch.Arch
	var sp loops.Nest
	switch *archName {
	case "inhouse":
		hw, sp = arch.InHouse(), arch.InHouseSpatial()
	case "casestudy":
		hw, sp = arch.CaseStudy(), arch.CaseStudySpatial()
	default:
		fatal("unknown arch %q", *archName)
	}

	var net *network.Network
	if *netFile != "" {
		data, err := os.ReadFile(*netFile)
		if err != nil {
			fatal("netconfig: %v", err)
		}
		net, err = config.UnmarshalNetwork(data)
		if err != nil {
			fatal("netconfig: %v", err)
		}
	}
	switch {
	case net != nil:
		// loaded from file
	default:
		switch *netName {
		case "handtracking":
			net = network.HandTracking()
		case "resnet18":
			net = &network.Network{Name: "resnet18", Layers: workload.ResNet18Suite()}
		case "vgg16":
			net = &network.Network{Name: "vgg16", Layers: workload.VGG16Suite()}
		case "mobilenetv2":
			net = &network.Network{Name: "mobilenetv2", Layers: workload.MobileNetV2Suite()}
		default:
			fatal("unknown network %q", *netName)
		}
	}

	var obj mapper.Objective
	switch *objName {
	case "latency":
		obj = mapper.MinLatency
	case "energy":
		obj = mapper.MinEnergy
	case "edp":
		obj = mapper.MinEDP
	default:
		fatal("unknown objective %q", *objName)
	}

	unique, mult, _ := workload.DedupLayers(net.Layers)
	fmt.Printf("network %s (%d layers, %d unique shapes, %.1f GMAC) on %s\n",
		net.Name, len(net.Layers), len(unique), float64(net.TotalMACs())/1e9, hw.Name)
	if len(unique) < len(net.Layers) {
		most, at := 0, 0
		for i, m := range mult {
			if m > most {
				most, at = m, i
			}
		}
		fmt.Printf("repeated shapes share one mapping search each (top repeat: %s x%d)\n",
			unique[at].Name, most)
	}
	fmt.Println()
	opts := network.Options{
		MaxCandidates: *budget,
		Objective:     obj,
		NoPrefetch:    *noPre,
		PlanGB:        *planGB,
		NoReduce:      *nosym,
		NoSurrogate:   *nosur,
	}
	if *scaling {
		curve, err := network.ScalingCurve(context.Background(), net, hw, sp, *cores, &network.MultiCoreOptions{
			Pipeline: *pipeline, ShareGBBandwidth: *shareBW, Options: opts,
		})
		if err != nil {
			fatal("%v", err)
		}
		fmt.Println("cores  latency cc   speedup  efficiency")
		for _, r := range curve {
			fmt.Printf("%5d  %10.0f  %7.2fx  %9.0f%%\n", r.Cores, r.LatencyCC, r.Speedup, 100*r.Efficiency)
		}
		return
	}
	if *cores > 1 {
		mc, err := network.EvaluateMultiCore(context.Background(), net, hw, sp, &network.MultiCoreOptions{
			Cores: *cores, Pipeline: *pipeline, ShareGBBandwidth: *shareBW, Options: opts,
		})
		if err != nil {
			fatal("%v", err)
		}
		mode := "data-parallel"
		if *pipeline {
			mode = "pipeline"
		}
		fmt.Printf("%d cores (%s): %.0f cc vs %.0f single-core -> speedup %.2fx, efficiency %.0f%%\n",
			mc.Cores, mode, mc.LatencyCC, mc.SingleCoreCC, mc.Speedup, 100*mc.Efficiency)
		for i, s := range mc.PerCore {
			fmt.Printf("  core %d stage makespan: %.0f cc\n", i, s)
		}
		return
	}
	r, err := network.Evaluate(context.Background(), net, hw, sp, &opts)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Print(r.Report())
	if r.GBPlan != nil {
		fmt.Println()
		fmt.Print(r.GBPlan.Report())
	}
	if *explain {
		fmt.Println()
		explainLayers(r, hw)
	}
}

// explainLayers prints one line per layer naming the stall-dominating chain
// (attribution mode, dominant memory/port/DTL) from the explainer.
func explainLayers(r *network.Result, hw *arch.Arch) {
	fmt.Println("per-layer stall attribution (critical DTL chain):")
	fmt.Printf("  %-16s %10s %6s  %-6s %s\n", "layer", "SS_overall", "stall%", "mode", "critical chain")
	for i := range r.Layers {
		lr := &r.Layers[i]
		if lr.Candidate == nil {
			// Elementwise layers carry no mapping; their "stall" is the
			// bandwidth-bound pass itself.
			fmt.Printf("  %-16s %10.0f %5.1f%%  %-6s %s\n",
				lr.Original, 0.0, 0.0, "bw", "bandwidth-bound elementwise pass")
			continue
		}
		res := lr.Candidate.Result
		p := &core.Problem{Layer: &lr.Layer, Arch: hw, Mapping: lr.Candidate.Mapping}
		rep := obs.NewReport(p, res)
		chain := "-"
		if len(rep.Critical) > 0 {
			parts := make([]string, 0, len(rep.Critical))
			for _, c := range rep.Critical {
				parts = append(parts, fmt.Sprintf("%s %s (%.0f)", c.Kind, c.Name, c.Contribution))
			}
			chain = strings.Join(parts, " -> ")
		}
		stallPct := 0.0
		if res.CCTotal > 0 {
			stallPct = 100 * res.SSOverall / res.CCTotal
		}
		fmt.Printf("  %-16s %10.0f %5.1f%%  %-6s %s\n",
			lr.Original, res.SSOverall, stallPct, rep.Mode, chain)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "netmodel: "+format+"\n", args...)
	prof.Stop() // os.Exit skips defers; flush any profiles first
	os.Exit(1)
}
