// Command servemodel runs the uniform latency model as a long-lived HTTP
// service (package serve): single-layer evaluation, full mapping searches
// and whole-network evaluation over the bundled workloads, backed by the
// process-wide memo cache (and the on-disk store with -cachedir) so
// identical requests coalesce and repeats answer from cache.
//
// Usage:
//
//	servemodel [-addr :8080] [-cachedir auto] [-maxconcurrent N]
//	           [-maxqueue N] [-timeout 30s] [-maxtimeout 5m]
//	           [-draintimeout 10s] [-debugaddr localhost:6060]
//	           [-loglevel debug|info|warn|error]
//
// Endpoints: POST /v1/eval, /v1/search, /v1/explain, /v1/network; GET
// /healthz, /metrics (Prometheus text format) and
// /v1/search/{id}/progress (live search telemetry). SIGINT/SIGTERM trigger a graceful
// shutdown that drains in-flight searches for -draintimeout before
// force-canceling them. -debugaddr exposes net/http/pprof on a separate,
// opt-in listener; the file-based -cpuprofile/-memprofile flags from
// package prof work too.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/mapper"
	"repro/internal/prof"
	"repro/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address for the API")
		debugAddr = flag.String("debugaddr", "", "optional listen address for net/http/pprof (e.g. localhost:6060)")
		cacheDir  = flag.String("cachedir", "", `on-disk search cache: directory path, or "auto" for the user cache dir (empty = memory only)`)
		maxConc   = flag.Int("maxconcurrent", 0, "max concurrently running searches (default: the worker budget)")
		maxQueue  = flag.Int("maxqueue", 0, "max requests queued for a search slot before shedding 429 (default: 4x maxconcurrent)")
		timeout   = flag.Duration("timeout", 30*time.Second, "default per-request deadline when the request carries no timeout_ms")
		maxTo     = flag.Duration("maxtimeout", 5*time.Minute, "cap on client-requested timeouts")
		drainTo   = flag.Duration("draintimeout", 10*time.Second, "graceful-shutdown drain window for in-flight searches")
		logLevel  = flag.String("loglevel", "info", "log level: debug, info, warn or error")
	)
	flag.Parse()
	if err := prof.Start(); err != nil {
		fatal("%v", err)
	}
	defer prof.Stop()

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fatal("bad -loglevel %q (want debug, info, warn or error)", *logLevel)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	bi := prof.Build()
	log.Info("build", "go", bi.GoVersion, "revision", bi.Revision, "modified", bi.Modified)
	if *cacheDir != "" {
		dir, err := mapper.EnableDiskCache(*cacheDir)
		if err != nil {
			fatal("cachedir: %v", err)
		}
		log.Info("disk cache enabled", "dir", dir)
	}

	s := serve.New(serve.Config{
		MaxConcurrent:  *maxConc,
		MaxQueue:       *maxQueue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTo,
		Logger:         log,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr, Handler: prof.DebugMux()}
		go func() {
			log.Info("pprof listener", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Error("pprof listener failed", "err", err)
			}
		}()
		defer dbg.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Info("serving", "addr", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		prof.Stop()
		fatal("serve: %v", err)
	case <-ctx.Done():
		log.Info("shutdown signal; draining", "window", *drainTo)
		if err := s.Shutdown(srv, *drainTo); err != nil {
			log.Warn("shutdown incomplete", "err", err)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "servemodel: "+format+"\n", args...)
	prof.Stop()
	os.Exit(1)
}
