// Command servemodel runs the uniform latency model as a long-lived HTTP
// service (package serve): single-layer evaluation, full mapping searches
// and whole-network evaluation over the bundled workloads, backed by the
// process-wide memo cache (and the on-disk store with -cachedir) so
// identical requests coalesce and repeats answer from cache.
//
// Usage:
//
//	servemodel [-addr :8080] [-cachedir auto] [-maxconcurrent N]
//	           [-maxqueue N] [-timeout 30s] [-maxtimeout 5m]
//	           [-draintimeout 10s] [-debugaddr localhost:6060]
//	           [-loglevel debug|info|warn|error]
//	           [-peers http://n1:8080,http://n2:8080] [-remotememo URL]
//	           [-tenantweights fast=3,batch=1]
//
// Endpoints: POST /v1/eval, /v1/search, /v1/explain, /v1/network, /v1/shard
// (execute one shard of a fanned-out search), /v1/memo/{get,put} (fleet-
// shared memo tier); GET /healthz, /metrics (Prometheus text format) and
// /v1/search/{id}/progress (live search telemetry). SIGINT/SIGTERM trigger a graceful
// shutdown that drains in-flight searches for -draintimeout before
// force-canceling them. -debugaddr exposes net/http/pprof on a separate,
// opt-in listener; the file-based -cpuprofile/-memprofile flags from
// package prof work too.
//
// Fleet flags: -peers lists OTHER servemodel nodes eligible to execute
// shards of this node's sharded searches (never list the node itself);
// -remotememo points the local memo tiers at a peer's /v1/memo endpoints so
// the fleet shares warm search results; -tenantweights sets per-tenant
// weighted-fair admission shares keyed by the X-Tenant request header.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/mapper"
	"repro/internal/memo"
	"repro/internal/prof"
	"repro/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address for the API")
		debugAddr  = flag.String("debugaddr", "", "optional listen address for net/http/pprof (e.g. localhost:6060)")
		cacheDir   = flag.String("cachedir", "", `on-disk search cache: directory path, or "auto" for the user cache dir (empty = memory only)`)
		maxConc    = flag.Int("maxconcurrent", 0, "max concurrently running searches (default: the worker budget)")
		maxQueue   = flag.Int("maxqueue", 0, "max requests queued for a search slot before shedding 429 (default: 4x maxconcurrent)")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-request deadline when the request carries no timeout_ms")
		maxTo      = flag.Duration("maxtimeout", 5*time.Minute, "cap on client-requested timeouts")
		drainTo    = flag.Duration("draintimeout", 10*time.Second, "graceful-shutdown drain window for in-flight searches")
		logLevel   = flag.String("loglevel", "info", "log level: debug, info, warn or error")
		peers      = flag.String("peers", "", "comma-separated base URLs of OTHER servemodel nodes that may execute search shards (do not list this node)")
		remoteMemo = flag.String("remotememo", "", "base URL of a peer whose /v1/memo endpoints back a shared memo tier")
		tenantWts  = flag.String("tenantweights", "", `per-tenant admission weights, e.g. "fast=3,batch=1" (unlisted tenants weigh 1)`)
		shardSlow  = flag.Duration("shardslowdown", 0, "TEST HOOK: hold every shard walk open this long before starting, so a steal can land deterministically")
		nodeName   = flag.String("nodename", "", `node label on spans in assembled fleet traces (default "servemodel"; give each node a distinct name)`)
	)
	flag.Parse()
	if err := prof.Start(); err != nil {
		fatal("%v", err)
	}
	defer prof.Stop()

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fatal("bad -loglevel %q (want debug, info, warn or error)", *logLevel)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	bi := prof.Build()
	log.Info("build", "go", bi.GoVersion, "revision", bi.Revision, "modified", bi.Modified)
	// Compose the memo tiers this node's own searches use: the local tier
	// (disk when -cachedir is set, bounded memory otherwise) first, then the
	// optional remote fleet tier. The LOCAL tier is also what /v1/memo
	// serves to peers — never the remote one, which would bounce fleet
	// traffic through this node.
	var localTier memo.Store
	if *cacheDir != "" {
		d, dir, err := mapper.OpenDiskStore(*cacheDir)
		if err != nil {
			fatal("cachedir: %v", err)
		}
		localTier = d
		log.Info("disk cache enabled", "dir", dir)
	} else {
		localTier = memo.NewMem(0)
	}
	// Each tier is traced individually (not the tiered composite), so span
	// and metric tier labels come out as mem/disk/remote rather than one
	// opaque "tiered".
	localTier = memo.WithTrace(localTier)
	tiers := []memo.Store{localTier}
	if *remoteMemo != "" {
		tiers = append(tiers, memo.WithTrace(memo.NewRemote(*remoteMemo, mapper.DiskVersion(), nil)))
		log.Info("remote memo tier enabled", "base", *remoteMemo, "version", mapper.DiskVersion())
	}
	mapper.SetBlobStore(memo.Tiered(tiers...))

	weights, err := parseTenantWeights(*tenantWts)
	if err != nil {
		fatal("tenantweights: %v", err)
	}
	peerList := splitList(*peers)
	if len(peerList) > 0 {
		log.Info("shard peers configured", "peers", peerList)
	}

	s := serve.New(serve.Config{
		MaxConcurrent:  *maxConc,
		MaxQueue:       *maxQueue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTo,
		Logger:         log,
		TenantWeights:  weights,
		Peers:          peerList,
		MemoStore:      localTier,
		MemoVersion:    mapper.DiskVersion(),
		ShardDelay:     *shardSlow,
		NodeName:       *nodeName,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr, Handler: prof.DebugMux()}
		go func() {
			log.Info("pprof listener", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Error("pprof listener failed", "err", err)
			}
		}()
		defer dbg.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Info("serving", "addr", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		prof.Stop()
		fatal("serve: %v", err)
	case <-ctx.Done():
		log.Info("shutdown signal; draining", "window", *drainTo)
		if err := s.Shutdown(srv, *drainTo); err != nil {
			log.Warn("shutdown incomplete", "err", err)
		}
	}
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseTenantWeights parses "name=weight,name=weight".
func parseTenantWeights(s string) (map[string]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, p := range splitList(s) {
		name, val, ok := strings.Cut(p, "=")
		if !ok {
			return nil, fmt.Errorf("bad entry %q (want tenant=weight)", p)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad weight %q for tenant %q (want a positive number)", val, name)
		}
		out[strings.TrimSpace(name)] = w
	}
	return out, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "servemodel: "+format+"\n", args...)
	prof.Stop()
	os.Exit(1)
}
