// Command case1 reproduces paper Fig. 6 (Case study 1 — mapping vs
// latency): two temporal mappings of the same layer on the same scaled-down
// accelerator with identical ideal latency, where the energy-optimal
// mapping (A) loses ~30% latency to partial-sum traffic that a
// bandwidth-unaware model cannot see.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	census := flag.Bool("census", false, "count the bounded valid-mapping space (slower; paper cites 30240)")
	flag.Parse()

	r, err := experiments.Case1(*census)
	if err != nil {
		fmt.Fprintln(os.Stderr, "case1:", err)
		os.Exit(1)
	}

	fmt.Printf("layer: %s on the scaled-down accelerator (K16|B8|C2 spatial)\n\n", r.Layer.String())
	fmt.Printf("Mapping A (input-reuse-first):\n%s\n", r.A.Mapping)
	fmt.Printf("Mapping B (fully output-stationary at O-Reg):\n%s\n", r.B.Mapping)

	tb := report.NewTable("Fig. 6(c)(d) — latency and energy",
		"metric", "Mapping A", "Mapping B")
	tb.Add("CC_ideal [cc]", r.A.Result.CCIdeal, r.B.Result.CCIdeal)
	tb.Add("temporal stall SS_overall [cc]", r.A.Result.SSOverall, r.B.Result.SSOverall)
	tb.Add("total latency [cc]", r.A.Result.CCTotal, r.B.Result.CCTotal)
	tb.Add("MAC utilization [%]", 100*r.A.Result.Utilization, 100*r.B.Result.Utilization)
	tb.Add("energy [nJ]", r.A.Energy.TotalPJ/1e3, r.B.Energy.TotalPJ/1e3)
	tb.Add("psum readbacks at O-Reg/GB", r.A.PsumRT, r.B.PsumRT)
	tb.Write(os.Stdout)

	bw := report.NewTable("\nFig. 6(f) — required vs real GB bandwidth [bit/cycle]",
		"link", "Mapping A", "Mapping B", "RealBW")
	bw.Add("GB write (drains)", r.A.GBwrReq, r.B.GBwrReq, r.A.GBwrReal)
	bw.Add("GB read (fills+psums)", r.A.GBrdReq, r.B.GBrdReq, r.A.GBwrReal)
	bw.Write(os.Stdout)

	fmt.Printf("\nB's latency is %.1f%% lower than A's (paper: ~30%%); "+
		"A's energy is %.1f%% lower than B's (paper: ~5%%).\n",
		100*(1-r.B.Result.CCTotal/r.A.Result.CCTotal),
		100*(1-r.A.Energy.TotalPJ/r.B.Energy.TotalPJ))
	if *census {
		fmt.Printf("bounded mapping census: %d valid mappings (paper cites 30240 from ZigZag)\n", r.MappingCount)
	}
}
