// Command case3 reproduces paper Fig. 8 (Case study 3 — hardware
// architecture design space vs latency): a latency/area sweep over MAC
// array sizes and a memory pool, contrasting the bandwidth-unaware model
// (panel a) with the bandwidth-aware model at 128 bit/cycle (panel b) and
// 1024 bit/cycle (panel c) global-buffer bandwidth.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dse"
	"repro/internal/experiments"
	"repro/internal/mapper"
	"repro/internal/memo"
	"repro/internal/prof"
	"repro/internal/report"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "small memory pool (fast)")
		budget   = flag.Int("budget", 0, "mapping search budget per design point (0 = default)")
		plot     = flag.Bool("plot", true, "ASCII scatter plots")
		csv      = flag.Bool("csv", false, "CSV of all points")
		cacheDir = flag.String("cachedir", "", `on-disk search cache: directory path, or "auto" for the user cache dir (empty = memory only)`)
		nosym    = flag.Bool("nosym", false, "disable the symmetry-reduced enumeration (walk every ordering)")
		nosur    = flag.Bool("nosurrogate", false, "disable the surrogate-guided candidate ordering (results identical; canonical walk order)")
	)
	flag.Parse()
	if err := prof.Start(); err != nil {
		fatal("%v", err)
	}
	defer prof.Stop()

	if *cacheDir != "" {
		dir, err := mapper.EnableDiskCache(*cacheDir)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("disk cache: %s\n", dir)
	}
	defer func() { fmt.Println(memo.Default.Counters()) }()

	r, err := experiments.Case3(&experiments.Case3Options{
		Quick: *quick, MaxCandidates: *budget, NoReduce: *nosym, NoSurrogate: *nosur,
	})
	if err != nil {
		fatal("%v", err)
	}

	panels := []struct {
		name string
		pts  []dse.Point
	}{
		{"Fig. 8(a) — BW-unaware model, GB 128 bit/cycle", r.Unaware},
		{"Fig. 8(b) — BW-aware model, GB 128 bit/cycle", r.Low},
		{"Fig. 8(c) — BW-aware model, GB 1024 bit/cycle", r.High},
	}
	arrayIdx := map[string]int{"16x16": 0, "32x32": 1, "64x64": 2}
	glyphs := []rune{'.', 'o', '#'}

	for _, p := range panels {
		fmt.Println(p.name)
		valid := 0
		for _, pt := range p.pts {
			if pt.Valid {
				valid++
			}
		}
		fmt.Printf("  %d designs evaluated, %d mapped successfully\n", len(p.pts), valid)

		if *csv {
			tb := report.NewTable("", "arch", "array", "area mm2", "latency cc", "mapping")
			for _, pt := range p.pts {
				if pt.Valid {
					tb.Add(pt.Arch.Name, pt.Array, pt.Areamm2, pt.Latency, pt.Mapping)
				}
			}
			fmt.Print(tb.CSV())
		}

		best := dse.BestPerArray(p.pts)
		tb := report.NewTable("  best design per array size", "array", "latency cc", "area mm2", "arch")
		for _, arr := range []string{"16x16", "32x32", "64x64"} {
			if b, ok := best[arr]; ok {
				tb.Add(arr, b.Latency, b.Areamm2, b.Arch.Name)
			}
		}
		tb.Write(os.Stdout)

		front := dse.Pareto(p.pts)
		fmt.Printf("  Pareto front (%d points):", len(front))
		for _, f := range front {
			fmt.Printf(" [%.3f mm2, %.0f cc, %s]", f.Areamm2, f.Latency, f.Array)
		}
		fmt.Println()

		if *plot {
			var xs, ys []float64
			var series []int
			for _, pt := range p.pts {
				if !pt.Valid {
					continue
				}
				xs = append(xs, pt.Areamm2)
				ys = append(ys, pt.Latency)
				series = append(series, arrayIdx[pt.Array])
			}
			report.Scatter(os.Stdout, "  latency vs area ('.'=16x16  'o'=32x32  '#'=64x64)",
				xs, ys, series, glyphs, 72, 18)
		}
		fmt.Println()
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "case3: "+format+"\n", args...)
	prof.Stop() // os.Exit skips defers; flush any profiles first
	os.Exit(1)
}
