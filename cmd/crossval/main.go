// Command crossval runs the randomized model-vs-simulator cross-validation:
// it draws random (layer, architecture, mapping) problems — random port
// widths, buffering, sharing and hierarchy depth — and reports the accuracy
// distribution. This is the statistical generalization of the fixed Fig. 5
// validation suite.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/crossval"
	"repro/internal/mapper"
	"repro/internal/memo"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	var (
		samples  = flag.Int("samples", 50, "mappable samples to collect")
		seed     = flag.Int64("seed", 20220318, "generator seed")
		budget   = flag.Int("budget", 1000, "mapping search budget per sample")
		verbose  = flag.Bool("v", false, "print every sample")
		cacheDir = flag.String("cachedir", "", `on-disk search cache: directory path, or "auto" for the user cache dir (empty = memory only)`)
	)
	flag.Parse()

	if *cacheDir != "" {
		dir, err := mapper.EnableDiskCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crossval:", err)
			os.Exit(1)
		}
		fmt.Printf("disk cache: %s\n", dir)
	}
	defer func() { fmt.Println(memo.Default.Counters()) }()

	simulate := func(p *core.Problem) (int64, error) {
		r, err := sim.Simulate(p, nil)
		if err != nil {
			return 0, err
		}
		return r.Cycles, nil
	}

	g := crossval.NewGenerator(*seed)
	var acc []float64
	draws := 0
	tb := report.NewTable("samples", "arch", "layer", "model cc", "sim cc", "accuracy %")
	for len(acc) < *samples && draws < *samples*10 {
		draws++
		s, err := g.Next(*budget, simulate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crossval:", err)
			os.Exit(1)
		}
		if s == nil {
			continue
		}
		acc = append(acc, s.Accuracy)
		if *verbose {
			tb.Add(s.Problem.Arch.Name, s.Problem.Layer.Name, s.ModelCC, s.SimCC, 100*s.Accuracy)
		}
	}
	if *verbose {
		tb.Write(os.Stdout)
	}

	sort.Float64s(acc)
	var sum float64
	for _, a := range acc {
		sum += a
	}
	pct := func(q float64) float64 { return 100 * acc[int(q*float64(len(acc)-1))] }
	fmt.Printf("%d samples (%d draws): mean %.1f%%, min %.1f%%, p10 %.1f%%, median %.1f%%, p90 %.1f%%\n",
		len(acc), draws, 100*sum/float64(len(acc)), 100*acc[0], pct(0.1), pct(0.5), pct(0.9))
}
