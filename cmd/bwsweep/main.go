// Command bwsweep quantifies the paper's closing observation (Section V-C):
// how global-buffer bandwidth shifts the MAC-array-size verdict, from the
// conventional-2D regime (~128 bit/cycle) into the 3D SRAM-on-logic regime
// (>1024 bit/cycle) the paper highlights as future opportunity.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/mapper"
	"repro/internal/memo"
	"repro/internal/report"
)

func main() {
	budget := flag.Int("budget", 300, "mapping search budget per design point")
	cacheDir := flag.String("cachedir", "", `on-disk search cache: directory path, or "auto" for the user cache dir (empty = memory only)`)
	flag.Parse()

	if *cacheDir != "" {
		dir, err := mapper.EnableDiskCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bwsweep:", err)
			os.Exit(1)
		}
		fmt.Printf("disk cache: %s\n", dir)
	}
	defer func() { fmt.Println(memo.Default.Counters()) }()

	bws := []int64{64, 128, 256, 512, 1024, 2048, 4096}
	points, err := experiments.BWSweep(bws, *budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bwsweep:", err)
		os.Exit(1)
	}

	tb := report.NewTable("latency [cc] vs GB bandwidth [bit/cycle]",
		"GB BW", "16x16", "32x32", "64x64", "winner")
	for _, p := range points {
		tb.Add(p.GBBWBits, p.Latency["16x16"], p.Latency["32x32"], p.Latency["64x64"], p.Winner)
	}
	tb.Write(os.Stdout)

	if bw := experiments.CrossoverBW(points, "64x64"); bw > 0 {
		fmt.Printf("\nthe 64x64 array takes the lead at %d bit/cycle — the bandwidth a\n"+
			"3D-stacked SRAM interface provides but a conventional 2D bus does not.\n", bw)
	} else {
		fmt.Println("\nthe 64x64 array never takes the lead in the swept range.")
	}
}
