// Command fig3 regenerates paper Fig. 3: six memory-compute timeline cases
// showing the stall(+)/slack(-) of a single data transfer link, for
// double-buffered (or relevant-top-loop) memories with fully overlappable
// update windows, and single-buffered memories with an irrelevant loop on
// top that inserts a Mem Update Keep-Out Zone.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workload"
)

// run evaluates a 2-level machine with the given register port width,
// buffering and W boundary, and returns the W fill endpoint at the
// register level plus the full problem and result (for trace export).
func run(regBW int64, regDB bool, wBound []int) (*core.Endpoint, *core.Problem, *core.Result) {
	l := workload.NewMatMul("fig3", 2, 4, 8)
	a := &arch.Arch{
		Name: "fig3",
		MACs: 4,
		Memories: []*arch.Memory{
			{Name: "Reg", CapacityBits: 1 << 20, DoubleBuffered: regDB,
				Serves: []loops.Operand{loops.W, loops.I, loops.O},
				Ports:  []arch.Port{{Name: "rw", Dir: arch.ReadWrite, BWBits: regBW}}},
			{Name: "GB", CapacityBits: 1 << 30,
				Serves: []loops.Operand{loops.W, loops.I, loops.O},
				Ports: []arch.Port{
					{Name: "rd", Dir: arch.Read, BWBits: 1 << 20},
					{Name: "wr", Dir: arch.Write, BWBits: 1 << 20},
				}},
		},
	}
	for _, op := range loops.AllOperands {
		a.Chain[op] = []string{"Reg", "GB"}
	}
	if err := a.Normalize(); err != nil {
		panic(err)
	}
	m := &mapping.Mapping{
		Spatial:  loops.Nest{{Dim: loops.K, Size: 4}},
		Temporal: loops.Nest{{Dim: loops.C, Size: 8}, {Dim: loops.B, Size: 2}},
	}
	m.Bound[loops.W] = wBound
	m.Bound[loops.I] = []int{1, 2}
	m.Bound[loops.O] = []int{1, 2}
	p := &core.Problem{Layer: &l, Arch: a, Mapping: m}
	r, err := core.Evaluate(p)
	if err != nil {
		panic(err)
	}
	for _, e := range r.Endpoints {
		if e.Operand == loops.W && e.Kind == core.Fill && e.MemName == "Reg" {
			return e, p, r
		}
	}
	panic("no W endpoint")
}

func main() {
	tracePrefix := flag.String("tracejson", "", "also write each case as a Perfetto trace-event file: <prefix>-a.json ... <prefix>-f.json")
	flag.Parse()

	fmt.Println("Fig. 3 — six timeline cases of computation (C) and memory update")
	fmt.Println("legend: # transfer in window, = idle window, . keep-out, ! overrun")
	fmt.Println()

	show := func(tag, title string, regBW int64, regDB bool, bound []int, periods int) {
		e, p, r := run(regBW, regDB, bound)
		fmt.Printf("(%s) %s:\n", tag, title)
		fmt.Println(trace.Timeline(e, periods, 72))
		if *tracePrefix != "" {
			raw, err := obs.TraceJSON(p, r, obs.TraceOptions{})
			if err != nil {
				panic(err)
			}
			name := fmt.Sprintf("%s-%s.json", *tracePrefix, tag)
			if err := os.WriteFile(name, raw, 0o644); err != nil {
				panic(err)
			}
			fmt.Printf("wrote %s\n\n", name)
		}
	}

	// (a)-(c): double-buffered — the full period is an allowed window.
	rTop := []int{1, 2} // W's reg level = [C 8]: X_REQ = Mem_CC = 8
	show("a", "DB, X_REAL = X_REQ (no stall, no slack)", 32, true, rTop, 3)
	show("b", "DB, X_REAL < X_REQ (slack, SS_u < 0)", 64, true, rTop, 3)
	show("c", "DB, X_REAL > X_REQ (stall, SS_u > 0)", 16, true, rTop, 3)

	// (d)-(f): single-buffered with the ir loop B on top of the reg level
	// ([C 8 | B 2]): keep-out zone, X_REQ = Mem_CC / 2.
	irTop := []int{2, 2}
	show("d", "non-DB ir-top, X_REAL = X_REQ", 32, false, irTop, 2)
	show("e", "non-DB ir-top, X_REAL < X_REQ (slack)", 64, false, irTop, 2)
	show("f", "non-DB ir-top, X_REAL > X_REQ (stall)", 16, false, irTop, 2)
}
