// Command validate reproduces paper Fig. 5(c): it runs every layer of the
// hand-tracking workload suite through the analytical latency model and the
// cycle-level reference simulator on the in-house accelerator, and reports
// the per-layer and average estimation accuracy (the paper reports 94.3%
// against RTL simulation of the taped-out chip).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	var (
		layers = flag.Int("layers", 0, "limit to the first N layers (0 = all)")
		budget = flag.Int("budget", 20000, "mapping search budget per layer")
		csv    = flag.Bool("csv", false, "CSV output")
	)
	flag.Parse()

	rows, avg, err := experiments.Validation(&experiments.ValidationOptions{
		Layers: *layers, MaxCandidates: *budget,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}

	tb := report.NewTable("Fig. 5(c) — model vs cycle-level simulation (hand-tracking workload)",
		"layer", "model cc", "sim cc", "accuracy %", "util %", "stall-bound")
	var accs []float64
	var names []string
	for _, r := range rows {
		tb.Add(r.Layer, r.ModelCC, r.SimCC, 100*r.Accuracy, 100*r.Util, r.Stalled)
		accs = append(accs, 100*r.Accuracy)
		names = append(names, r.Layer)
	}
	if *csv {
		fmt.Print(tb.CSV())
	} else {
		tb.Write(os.Stdout)
		fmt.Println()
		report.Bar(os.Stdout, "per-layer accuracy [%]", names, accs, 50)
	}
	fmt.Printf("\naverage latency model accuracy: %.1f%% (paper: 94.3%%)\n", 100*avg)
}
