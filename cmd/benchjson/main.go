// Command benchjson converts `go test -bench -benchmem` output read from
// stdin into a JSON history. It parses the standard benchmark result lines —
//
//	BenchmarkName-8   120  9570123 ns/op  7768 B/op  120 allocs/op  3.5 extra-metric
//
// — keeping ns/op, B/op, allocs/op and any custom metrics, so CI can diff
// performance numbers structurally instead of scraping text.
//
// With -out FILE the parsed run is appended to the history array in FILE
// ({"runs": [...]}), keyed by git SHA + date: re-running on the same commit
// the same day replaces that entry instead of growing the file, while every
// new commit adds one. A pre-history flat report ({"results": [...]}) found
// in FILE is migrated as the oldest run. Without -out the single-run history
// is printed to stdout. Used by `make bench`, which maintains
// BENCH_mapper.json.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"` // the -N suffix (GOMAXPROCS)
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Run is one parsed benchmark invocation: environment header + results,
// stamped with the commit and date it measured.
type Run struct {
	SHA     string   `json:"sha,omitempty"`
	Date    string   `json:"date,omitempty"` // YYYY-MM-DD, UTC
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// History is the on-disk format: newest run last.
type History struct {
	Runs []Run `json:"runs"`
}

func main() {
	var (
		out  = flag.String("out", "", "history file to update in place (empty: print the run to stdout)")
		sha  = flag.String("sha", "", "commit id for the run key (default: git rev-parse --short HEAD)")
		date = flag.String("date", "", "date for the run key, YYYY-MM-DD (default: today, UTC)")
	)
	flag.Parse()

	run, err := parseRun(os.Stdin)
	if err != nil {
		fail(err)
	}
	run.SHA = *sha
	if run.SHA == "" {
		run.SHA = gitSHA()
	}
	run.Date = *date
	if run.Date == "" {
		run.Date = time.Now().UTC().Format("2006-01-02")
	}

	if *out == "" {
		if err := writeJSON(os.Stdout, History{Runs: []Run{run}}); err != nil {
			fail(err)
		}
		return
	}

	hist, err := loadHistory(*out)
	if err != nil {
		fail(err)
	}
	hist.add(run)
	f, err := os.CreateTemp(filepath.Dir(*out), "benchjson-*.tmp")
	if err != nil {
		fail(err)
	}
	err = writeJSON(f, *hist)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(f.Name(), *out)
	}
	if err != nil {
		os.Remove(f.Name())
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s now holds %d run(s); latest %s %s (%d benchmarks)\n",
		*out, len(hist.Runs), run.SHA, run.Date, len(run.Results))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// gitSHA asks git for the short commit id; a missing git or repository is
// not fatal — the run is simply keyed by date alone.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// loadHistory reads an existing history file. A file in the pre-history flat
// format (top-level "results", no "runs") is migrated as the oldest run; a
// missing file starts an empty history.
func loadHistory(path string) (*History, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return &History{}, nil
	}
	if err != nil {
		return nil, err
	}
	var probe struct {
		Runs    []Run    `json:"runs"`
		Results []Result `json:"results"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if probe.Runs != nil {
		return &History{Runs: probe.Runs}, nil
	}
	var legacy Run
	if err := json.Unmarshal(data, &legacy); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(legacy.Results) == 0 {
		return &History{}, nil
	}
	return &History{Runs: []Run{legacy}}, nil
}

// add appends the run, replacing an existing entry with the same SHA + date
// so repeated `make bench` on one commit updates in place.
func (h *History) add(run Run) {
	for i := range h.Runs {
		if h.Runs[i].SHA == run.SHA && h.Runs[i].Date == run.Date {
			h.Runs[i] = run
			return
		}
	}
	h.Runs = append(h.Runs, run)
}

// parseRun parses `go test -bench` output into one Run.
func parseRun(r io.Reader) (Run, error) {
	var run Run
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			run.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			run.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			run.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if res, ok := parseLine(line); ok {
			run.Results = append(run.Results, res)
		}
	}
	return run, sc.Err()
}

// parseLine parses one benchmark result line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false
	}
	r := Result{Name: fields[0]}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = p
			r.Name = r.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters

	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, r.NsPerOp > 0
}
