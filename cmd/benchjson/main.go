// Command benchjson converts `go test -bench -benchmem` output read from
// stdin into a JSON report on stdout. It parses the standard benchmark
// result lines —
//
//	BenchmarkName-8   120  9570123 ns/op  7768 B/op  120 allocs/op  3.5 extra-metric
//
// — keeping ns/op, B/op, allocs/op and any custom metrics, so CI can diff
// performance numbers structurally instead of scraping text. Used by
// `make bench`, which writes BENCH_mapper.json.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"` // the -N suffix (GOMAXPROCS)
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64             `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full parsed run.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	rep := Report{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if r, ok := parseLine(line); ok {
			rep.Results = append(rep.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark result line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false
	}
	r := Result{Name: fields[0]}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = p
			r.Name = r.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters

	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, r.NsPerOp > 0
}
