// Command benchjson converts `go test -bench -benchmem` output read from
// stdin into a JSON history. It parses the standard benchmark result lines —
//
//	BenchmarkName-8   120  9570123 ns/op  7768 B/op  120 allocs/op  3.5 extra-metric
//
// — keeping ns/op, B/op, allocs/op and any custom metrics, so CI can diff
// performance numbers structurally instead of scraping text.
//
// With -out FILE the parsed run is appended to the history array in FILE
// ({"runs": [...]}), keyed by git SHA: re-running on the same commit
// replaces that commit's entry instead of growing the file, while every new
// commit adds one. A pre-history flat report ({"results": [...]}) found in
// FILE is migrated as the oldest run. Without -out the single-run history is
// printed to stdout. Used by `make bench`, which maintains BENCH_mapper.json.
//
// With -compare FILE a per-benchmark delta report — ns/op and allocs/op
// against the newest history entry whose SHA differs from the parsed run's —
// is printed to stderr. By default the report is informational and never
// fails the invocation, so CI's bench-smoke can surface regressions on the
// PR without gating on the noisy timings of shared runners. With
// -threshold PCT (> 0) the comparison becomes a gate: any benchmark whose
// ns/op regressed by more than PCT percent fails the invocation with exit
// status 1 after the full report has printed. Pick thresholds far above
// runner noise (hundreds of percent) — the gate is for catastrophic
// regressions, not jitter.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"` // the -N suffix (GOMAXPROCS)
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Run is one parsed benchmark invocation: environment header + results,
// stamped with the commit and date it measured.
type Run struct {
	SHA     string   `json:"sha,omitempty"`
	Date    string   `json:"date,omitempty"` // YYYY-MM-DD, UTC
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// History is the on-disk format: newest run last.
type History struct {
	Runs []Run `json:"runs"`
}

func main() {
	var (
		out       = flag.String("out", "", "history file to update in place (empty: print the run to stdout)")
		sha       = flag.String("sha", "", "commit id for the run key (default: git rev-parse --short HEAD)")
		date      = flag.String("date", "", "date for the run key, YYYY-MM-DD (default: today, UTC)")
		compare   = flag.String("compare", "", "history file to diff against (newest run with a different SHA); report to stderr")
		threshold = flag.Float64("threshold", 0, "with -compare: exit 1 when any benchmark's ns/op regressed by more than this percentage (0: informational only)")
	)
	flag.Parse()

	run, err := parseRun(os.Stdin)
	if err != nil {
		fail(err)
	}
	run.SHA = *sha
	if run.SHA == "" {
		run.SHA = gitSHA()
	}
	run.Date = *date
	if run.Date == "" {
		run.Date = time.Now().UTC().Format("2006-01-02")
	}

	var regressions []string
	if *compare != "" {
		if hist, err := loadHistory(*compare); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: compare:", err)
		} else if base := hist.baseline(run.SHA); base == nil {
			fmt.Fprintln(os.Stderr, "benchjson: compare: no prior run with a different SHA")
		} else {
			regressions = printDeltas(os.Stderr, base, &run, *threshold)
		}
	}
	// The threshold gate fires after the history update below, so a gated CI
	// run still records its numbers; with no -out it fires immediately.
	gate := func() {
		if *threshold > 0 && len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL: %d benchmark(s) regressed more than %.0f%% in ns/op:\n", len(regressions), *threshold)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
	}

	if *out == "" {
		if err := writeJSON(os.Stdout, History{Runs: []Run{run}}); err != nil {
			fail(err)
		}
		gate()
		return
	}

	hist, err := loadHistory(*out)
	if err != nil {
		fail(err)
	}
	hist.add(run)
	f, err := os.CreateTemp(filepath.Dir(*out), "benchjson-*.tmp")
	if err != nil {
		fail(err)
	}
	err = writeJSON(f, *hist)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(f.Name(), *out)
	}
	if err != nil {
		os.Remove(f.Name())
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s now holds %d run(s); latest %s %s (%d benchmarks)\n",
		*out, len(hist.Runs), run.SHA, run.Date, len(run.Results))
	gate()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// gitSHA asks git for the short commit id; a missing git or repository is
// not fatal — the run is simply keyed by date alone.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// loadHistory reads an existing history file. A file in the pre-history flat
// format (top-level "results", no "runs") is migrated as the oldest run; a
// missing file starts an empty history.
func loadHistory(path string) (*History, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return &History{}, nil
	}
	if err != nil {
		return nil, err
	}
	var probe struct {
		Runs    []Run    `json:"runs"`
		Results []Result `json:"results"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if probe.Runs != nil {
		return &History{Runs: probe.Runs}, nil
	}
	var legacy Run
	if err := json.Unmarshal(data, &legacy); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(legacy.Results) == 0 {
		return &History{}, nil
	}
	return &History{Runs: []Run{legacy}}, nil
}

// add appends the run, replacing any existing entry with the same SHA so
// repeated `make bench` on one commit updates in place instead of growing
// the file with duplicate-SHA entries (re-runs across days included). Runs
// keyed by an empty SHA (no git available) fall back to date matching.
func (h *History) add(run Run) {
	for i := range h.Runs {
		if run.SHA != "" && h.Runs[i].SHA == run.SHA {
			h.Runs[i] = run
			return
		}
		if run.SHA == "" && h.Runs[i].SHA == "" && h.Runs[i].Date == run.Date {
			h.Runs[i] = run
			return
		}
	}
	h.Runs = append(h.Runs, run)
}

// baseline returns the newest history run whose SHA differs from sha — the
// comparison base for a delta report — or nil when none exists.
func (h *History) baseline(sha string) *Run {
	for i := len(h.Runs) - 1; i >= 0; i-- {
		if h.Runs[i].SHA != sha {
			return &h.Runs[i]
		}
	}
	return nil
}

// printDeltas writes the per-benchmark ns/op and allocs/op changes of run
// against base, matching benchmarks by name; benchmarks present on only one
// side are tallied instead of diffed. It returns a description of every
// benchmark whose ns/op regressed by more than threshold percent (threshold
// <= 0 reports none, keeping the output purely informational).
func printDeltas(w io.Writer, base *Run, run *Run, threshold float64) []string {
	ref := make(map[string]*Result, len(base.Results))
	for i := range base.Results {
		ref[base.Results[i].Name] = &base.Results[i]
	}
	key := base.SHA
	if key == "" {
		key = "(no sha)"
	}
	fmt.Fprintf(w, "benchjson: deltas vs %s %s:\n", key, base.Date)
	pct := func(old, new float64) string {
		if old == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", 100*(new-old)/old)
	}
	var added, seen int
	var regressions []string
	for _, r := range run.Results {
		b, ok := ref[r.Name]
		if !ok {
			added++
			continue
		}
		seen++
		delete(ref, r.Name)
		fmt.Fprintf(w, "  %-40s %12.0f -> %-12.0f ns/op (%s)   %6d -> %-6d allocs/op (%s)\n",
			r.Name, b.NsPerOp, r.NsPerOp, pct(b.NsPerOp, r.NsPerOp),
			b.AllocsPerOp, r.AllocsPerOp, pct(float64(b.AllocsPerOp), float64(r.AllocsPerOp)))
		if threshold > 0 && b.NsPerOp > 0 && 100*(r.NsPerOp-b.NsPerOp)/b.NsPerOp > threshold {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f ns/op (%s)", r.Name, b.NsPerOp, r.NsPerOp, pct(b.NsPerOp, r.NsPerOp)))
		}
	}
	if added > 0 || len(ref) > 0 {
		fmt.Fprintf(w, "  (%d compared, %d new, %d no longer present)\n", seen, added, len(ref))
	}
	return regressions
}

// parseRun parses `go test -bench` output into one Run.
func parseRun(r io.Reader) (Run, error) {
	var run Run
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			run.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			run.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			run.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if res, ok := parseLine(line); ok {
			run.Results = append(run.Results, res)
		}
	}
	return run, sc.Err()
}

// parseLine parses one benchmark result line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false
	}
	r := Result{Name: fields[0]}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = p
			r.Name = r.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters

	// The remainder is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, r.NsPerOp > 0
}
