// Quickstart: define a layer, pick a preset accelerator, search a mapping
// and print the modeled latency breakdown — the minimal end-to-end use of
// the uniform latency model.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/mapper"
	"repro/internal/workload"
)

func main() {
	// A fully connected layer: 64 batch rows, 512 outputs, 1024 inputs.
	layer := workload.NewDense("fc", 64, 512, 1024)

	// The scaled-down case-study accelerator: 256 MACs, W/I local buffers,
	// a 1MB global buffer with 128 bit/cycle ports.
	hw := arch.CaseStudy()

	// Dense layers run as matrix multiplies after Im2Col (a no-op here,
	// but required for convolutions).
	mm := workload.Im2Col(layer)

	// Search the temporal-mapping space for the lowest-latency valid
	// mapping under the canonical spatial unrolling K16|B8|C2.
	best, stats, err := mapper.Best(context.Background(), &mm, hw, &mapper.Options{
		Spatial: arch.CaseStudySpatial(),
		BWAware: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("layer: %s\n", mm.String())
	fmt.Printf("explored %d loop nests (%d valid)\n\n", stats.NestsGenerated, stats.Valid)
	fmt.Println("best mapping:")
	fmt.Println(best.Mapping)
	fmt.Println(best.Result.Report())
}
