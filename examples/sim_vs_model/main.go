// Sim vs model: run the analytical latency model and the cycle-level
// reference simulator on the same problem and compare their stall
// diagnoses — the per-layer validation experiment of paper Fig. 5(c) on a
// single configurable point, with per-port detail from both sides.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/mapper"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		b    = flag.Int64("b", 256, "matmul B")
		k    = flag.Int64("k", 256, "matmul K")
		c    = flag.Int64("c", 64, "matmul C")
		gbBW = flag.Int64("gbbw", 128, "GB port bandwidth [bit/cycle]")
	)
	flag.Parse()

	layer := workload.NewMatMul("mm", *b, *k, *c)
	hw := arch.CaseStudy()
	for i := range hw.MemoryByName("GB").Ports {
		hw.MemoryByName("GB").Ports[i].BWBits = *gbBW
	}

	best, _, err := mapper.Best(context.Background(), &layer, hw, &mapper.Options{
		Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 10000,
	})
	if err != nil {
		log.Fatal(err)
	}
	p := &core.Problem{Layer: &layer, Arch: hw, Mapping: best.Mapping}

	fmt.Println(best.Mapping)
	fmt.Println("analytical model:")
	fmt.Println(best.Result.Report())

	sr, err := sim.Simulate(p, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulator: %d cycles = preload %d + compute %d (incl. stall %d) + tail %d; %d transfer jobs\n",
		sr.Cycles, sr.PreloadCycles,
		sr.Cycles-sr.PreloadCycles-sr.DrainTail, sr.ComputeStall, sr.DrainTail, sr.Jobs)

	acc := 1 - abs(best.Result.CCTotal-float64(sr.Cycles))/float64(sr.Cycles)
	fmt.Printf("\nmodel vs sim: %.0f vs %d cycles -> %.2f%% accuracy\n\n",
		best.Result.CCTotal, sr.Cycles, 100*acc)

	// Side-by-side port view: the model's combined stall vs the
	// simulator's measured port occupancy.
	fmt.Println("port                model SS_comb   sim busy cycles   sim occupancy")
	var names []string
	for n := range sr.PortBusy {
		names = append(names, n)
	}
	sort.Strings(names)
	modelSS := map[string]float64{}
	for _, ps := range best.Result.Ports {
		modelSS[ps.MemName+"."+ps.PortName] = ps.SSComb
	}
	for _, n := range names {
		fmt.Printf("%-18s %14.0f %16d %14.1f%%\n",
			n, modelSS[n], sr.PortBusy[n], 100*float64(sr.PortBusy[n])/float64(sr.Cycles))
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
