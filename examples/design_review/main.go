// Design review: the full toolkit walkthrough a designer would run on an
// accelerator candidate before committing silicon — one layer analyzed in
// depth (latency breakdown, dataflow class, roofline, stall timelines,
// parameter tornado), then the whole network with global-buffer planning
// and multi-core scaling.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/mapper"
	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/roofline"
	"repro/internal/sensitivity"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	hw := arch.CaseStudy()
	sp := arch.CaseStudySpatial()

	// --- 1. The marquee layer, in depth. ---
	layer := workload.Im2Col(workload.NewPointwise("pw", 1, 128, 64, 28, 28))
	fmt.Printf("=== layer %s on %s ===\n\n", layer.String(), hw.Name)

	best, stats, err := mapper.Best(context.Background(), &layer, hw, &mapper.Options{
		Spatial: sp, BWAware: true, MaxCandidates: 8000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best of %d valid mappings:\n%s\n", stats.Valid, best.Mapping)
	fmt.Print(dataflow.Classify(best.Mapping).Describe())
	fmt.Println()
	fmt.Println(best.Result.Report())

	p := &core.Problem{Layer: &layer, Arch: hw, Mapping: best.Mapping}
	rf, err := roofline.Analyze(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rf.Report())
	if !rf.ConsistentWith(best.Result) {
		log.Fatal("detailed model violates the roofline bound")
	}

	if nr, err := noc.Analyze(p, nil); err == nil {
		fmt.Printf("\nNoC: %.1f nJ total", nr.TotalPJ/1e3)
		for _, ot := range nr.Operands {
			fmt.Printf("  %s fanout %dx", ot.Operand, ot.Fanout)
		}
		fmt.Println()
	}

	fmt.Println("\nstall timelines of the worst ports:")
	fmt.Print(trace.ResultOverview(best.Result, 2))

	// --- 2. Where would one more wire help? ---
	fmt.Println("\n=== parameter tornado (halve/double each knob) ===")
	effects, err := sensitivity.Analyze(&layer, hw, sp, &sensitivity.Options{MaxCandidates: 1500})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sensitivity.Report(effects[:4]))

	// --- 3. The whole network with GB planning and scaling. ---
	fmt.Println("\n=== hand-tracking network, GB plan, 1 vs 4 cores ===")
	net := network.HandTracking()
	res, err := network.Evaluate(context.Background(), net, arch.InHouse(), arch.InHouseSpatial(), &network.Options{
		MaxCandidates: 1500, PlanGB: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single core: %.2f Mcc at %.1f%% utilization; GB peak %d KiB, spills %d\n",
		res.TotalCC/1e6, 100*res.Utilization, res.GBPlan.PeakBits/8192, len(res.GBPlan.Spilled()))

	mc, err := network.EvaluateMultiCore(context.Background(), net, arch.InHouse(), arch.InHouseSpatial(),
		&network.MultiCoreOptions{Cores: 4, Options: network.Options{MaxCandidates: 1500}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4 cores (data-parallel): %.2f Mcc -> %.2fx speedup (%.0f%% efficiency)\n",
		mc.LatencyCC/1e6, mc.Speedup, 100*mc.Efficiency)
}
