// Custom architecture: model a novel accelerator that is NOT double-
// buffered and shares one physical SRAM (single read/write port) between
// all three operands — exactly the kind of design the idealizing latency
// models of prior work cannot evaluate (paper Section I). The example shows
// how the three-step model exposes the shared-port bottleneck and how a
// second read port changes the verdict.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/mapper"
	"repro/internal/workload"
)

// buildShared returns a 64-MAC accelerator whose local buffer is one
// single-buffered SRAM serving W, I and O through the given ports.
func buildShared(ports []arch.Port) *arch.Arch {
	a := &arch.Arch{
		Name: "shared-lb",
		MACs: 64,
		Memories: []*arch.Memory{
			{
				Name:         "W-Reg",
				CapacityBits: 4 * 32 * 8,
				Serves:       []loops.Operand{loops.W},
				Ports:        []arch.Port{{Name: "rw", Dir: arch.ReadWrite, BWBits: 256}},
			},
			{
				Name:         "I-Reg",
				CapacityBits: 4 * 16 * 8,
				Serves:       []loops.Operand{loops.I},
				Ports:        []arch.Port{{Name: "rw", Dir: arch.ReadWrite, BWBits: 256}},
			},
			{
				Name:         "O-Reg",
				CapacityBits: 4 * 32 * 24,
				Serves:       []loops.Operand{loops.O},
				Ports:        []arch.Port{{Name: "rw", Dir: arch.ReadWrite, BWBits: 768}},
			},
			{
				Name:         "LB",
				CapacityBits: 64 * 1024 * 8,
				Serves:       []loops.Operand{loops.W, loops.I, loops.O},
				Ports:        ports,
			},
			{
				Name:         "GB",
				CapacityBits: 8 * 1024 * 1024 * 8,
				Serves:       []loops.Operand{loops.W, loops.I, loops.O},
				Ports: []arch.Port{
					{Name: "rd", Dir: arch.Read, BWBits: 256},
					{Name: "wr", Dir: arch.Write, BWBits: 256},
				},
			},
		},
	}
	for _, op := range loops.AllOperands {
		a.Chain[op] = []string{op.String() + "-Reg", "LB", "GB"}
	}
	if err := a.Normalize(); err != nil {
		log.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		log.Fatal(err)
	}
	return a
}

func main() {
	layer := workload.NewMatMul("mm", 64, 64, 256)
	spatial := loops.Nest{{Dim: loops.K, Size: 16}, {Dim: loops.B, Size: 2}, {Dim: loops.C, Size: 2}}

	// A narrow shared read/write port vs a wider one vs dedicated read and
	// write ports: each step costs SRAM area, and only a bandwidth-aware
	// model can tell which step actually buys cycles.
	narrow := buildShared([]arch.Port{
		{Name: "rw", Dir: arch.ReadWrite, BWBits: 64},
	})
	onePort := buildShared([]arch.Port{
		{Name: "rw", Dir: arch.ReadWrite, BWBits: 128},
	})
	twoPorts := buildShared([]arch.Port{
		{Name: "rd", Dir: arch.Read, BWBits: 128},
		{Name: "wr", Dir: arch.Write, BWBits: 128},
	})

	for _, hw := range []*arch.Arch{narrow, onePort, twoPorts} {
		best, _, err := mapper.Best(context.Background(), &layer, hw, &mapper.Options{
			Spatial: spatial, BWAware: true, MaxCandidates: 10000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s with %d LB port(s) ===\n", hw.Name, len(hw.MemoryByName("LB").Ports))
		fmt.Println(best.Result.Report())
		if bp := best.Result.BottleneckPort(); bp != nil && bp.SSComb > 0 {
			fmt.Printf("bottleneck: %s.%s — %d DTLs share it, combined stall %.0f cc\n",
				bp.MemName, bp.PortName, len(bp.Endpoints), bp.SSComb)
			for _, e := range bp.Endpoints {
				fmt.Printf("  %-22s ReqBW %5.1f bit/cc, SS_u %+8.0f\n",
					e.Label(), e.ReqBWBits(layer.Precision), e.SSu)
			}
		}
		fmt.Println()
	}

	// Quantify what each port upgrade buys, with the mapping re-optimized
	// for every architecture (the co-design loop the paper advocates).
	bNarrow, _, err := mapper.Best(context.Background(), &layer, narrow, &mapper.Options{Spatial: spatial, BWAware: true, MaxCandidates: 10000})
	if err != nil {
		log.Fatal(err)
	}
	bOne, _, err := mapper.Best(context.Background(), &layer, onePort, &mapper.Options{Spatial: spatial, BWAware: true, MaxCandidates: 10000})
	if err != nil {
		log.Fatal(err)
	}
	bTwo, _, err := mapper.Best(context.Background(), &layer, twoPorts, &mapper.Options{Spatial: spatial, BWAware: true, MaxCandidates: 10000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("co-optimized latency per LB port configuration:\n")
	fmt.Printf("  64b shared rw : %8.0f cycles\n", bNarrow.Result.CCTotal)
	fmt.Printf("  128b shared rw: %8.0f cycles (%.1f%% faster)\n",
		bOne.Result.CCTotal, 100*(1-bOne.Result.CCTotal/bNarrow.Result.CCTotal))
	fmt.Printf("  128b rd + wr  : %8.0f cycles (%.1f%% over shared 128b)\n",
		bTwo.Result.CCTotal, 100*(1-bTwo.Result.CCTotal/bOne.Result.CCTotal))
	fmt.Printf("-> widening the shared port pays; the second port does not for this\n")
	fmt.Printf("   workload, because the mapper already schedules around it — area saved.\n\n")

	// A bandwidth-unaware model cannot drive any of these decisions: all
	// it sees of the port configuration is the preload/offload edge, a few
	// percent, where the real gap above is ~47%.
	for _, hw := range []*arch.Arch{narrow, onePort, twoPorts} {
		u, err := core.EvaluateBWUnaware(&core.Problem{Layer: &layer, Arch: hw, Mapping: bNarrow.Mapping})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bandwidth-unaware model, %d-port LB: %.0f cycles\n",
			len(hw.MemoryByName("LB").Ports), u.CCTotal)
	}
}
