// Mapping search: enumerate the valid temporal mappings of one convolution
// on the case-study accelerator, and show how the latency-optimal, the
// energy-optimal and the EDP-optimal mappings differ — the algorithm-
// hardware-mapping tension of the paper's Case study 1 at full space scale.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/mapper"
	"repro/internal/workload"
)

func main() {
	conv := workload.NewConv2D("conv", 1, 64, 32, 28, 28, 3, 3)
	layer := workload.Im2Col(conv)
	hw := arch.CaseStudy()

	fmt.Printf("layer: %s -> %s\n\n", conv.String(), layer.String())

	// Enumerate the bounded space once with energy annotated.
	all, stats, err := mapper.Enumerate(context.Background(), &layer, hw, &mapper.Options{
		Spatial:       arch.CaseStudySpatial(),
		BWAware:       true,
		Objective:     mapper.MinEDP, // annotates energy on every candidate
		MaxCandidates: 20000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapping space: %d nests generated, %d valid (skipped %d beyond budget)\n\n",
		stats.NestsGenerated, stats.Valid, stats.Skipped)

	best := func(obj mapper.Objective) *mapper.Candidate {
		win := all[0]
		for _, c := range all[1:] {
			if c.Score(obj) < win.Score(obj) {
				win = c
			}
		}
		return win
	}

	latBest := best(mapper.MinLatency)
	enBest := best(mapper.MinEnergy)
	edpBest := best(mapper.MinEDP)

	show := func(tag string, c *mapper.Candidate) {
		tr := c.Mapping.OutputTrafficAt(0)
		fmt.Printf("%s: %.0f cc, %.1f uJ, util %.1f%%, psum readbacks %d\n  temporal %s\n",
			tag, c.Result.CCTotal, c.EnergyPJ/1e6, 100*c.Result.Utilization,
			tr.ReadBacks, c.Mapping.Temporal)
	}
	show("latency-optimal", latBest)
	show("energy-optimal ", enBest)
	show("EDP-optimal    ", edpBest)

	// How much latency does chasing energy alone cost?
	fmt.Printf("\npicking the energy-optimal mapping costs %.1f%% latency vs the latency-optimal one\n",
		100*(enBest.Result.CCTotal/latBest.Result.CCTotal-1))

	// Distribution snapshot: latency spread across the whole valid space.
	worst := all[len(all)-1] // Enumerate sorts by the chosen objective
	fmt.Printf("valid-space latency spread: best %.0f cc .. worst %.0f cc (%.1fx)\n",
		latBest.Result.CCTotal, worst.Result.CCTotal,
		worst.Result.CCTotal/latBest.Result.CCTotal)

	// Where do the reduction loops of the best mappings live?
	for _, c := range []*mapper.Candidate{latBest, enBest} {
		lv := c.Mapping.LevelNest(loops.O, 0)
		fmt.Printf("O-Reg level of %s holds %s\n", c.Mapping.Temporal, lv)
	}
}
