package repro_test

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/fusion"
	"repro/internal/mapper"
	"repro/internal/memo"
	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/roofline"
	"repro/internal/sensitivity"
	"repro/internal/sim"
	"repro/internal/transformer"
	"repro/internal/workload"
)

// Benchmarks for the extension modules beyond the paper's figures: the
// cross-layer network model, the fusion optimizer, sensitivity analysis,
// the joint spatial+temporal search, and the analysis utilities.

func benchNet() *network.Network {
	return &network.Network{
		Name: "bench",
		Layers: []workload.Layer{
			workload.NewPointwise("pw1", 1, 64, 32, 14, 14),
			workload.NewConv2D("c2", 1, 64, 64, 14, 14, 3, 3),
			workload.NewDense("fc", 1, 128, 64*7*7),
		},
	}
}

// BenchmarkNetworkEvaluate prices a 3-layer network end to end with GB
// planning; metrics: total latency and utilization.
func BenchmarkNetworkEvaluate(b *testing.B) {
	hw := arch.CaseStudy()
	var r *network.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = network.Evaluate(context.Background(), benchNet(), hw, arch.CaseStudySpatial(),
			&network.Options{MaxCandidates: 800, PlanGB: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.TotalCC, "total-cc")
	b.ReportMetric(100*r.Utilization, "util-%")
}

// repeatNet is a network with heavily repeated layer shapes — the residual
// stages of a ResNet-style body — where content-addressed caching pays: 9
// layers, 4 unique shapes.
func repeatNet() *network.Network {
	return &network.Network{
		Name: "bench-repeat",
		Layers: []workload.Layer{
			workload.NewConv2D("c1", 1, 32, 16, 28, 28, 3, 3),
			workload.NewConv2D("c2a", 1, 32, 32, 28, 28, 3, 3),
			workload.NewConv2D("c2b", 1, 32, 32, 28, 28, 3, 3),
			workload.NewConv2D("c2c", 1, 32, 32, 28, 28, 3, 3),
			workload.NewPointwise("p1", 1, 64, 32, 14, 14),
			workload.NewConv2D("c3a", 1, 64, 64, 14, 14, 3, 3),
			workload.NewConv2D("c3b", 1, 64, 64, 14, 14, 3, 3),
			workload.NewConv2D("c3c", 1, 64, 64, 14, 14, 3, 3),
			workload.NewPointwise("p2", 1, 64, 64, 14, 14),
		},
	}
}

// BenchmarkNetworkEvalCold prices the repeated-shape network with the memo
// cache emptied before every iteration: every unique shape pays a full
// mapping search each time. Baseline for BenchmarkNetworkEvalCached.
func BenchmarkNetworkEvalCold(b *testing.B) {
	hw, sp := arch.CaseStudy(), arch.CaseStudySpatial()
	opt := &network.Options{MaxCandidates: 800}
	for i := 0; i < b.N; i++ {
		memo.Default.Reset()
		if _, err := network.Evaluate(context.Background(), repeatNet(), hw, sp, opt); err != nil {
			b.Fatal(err)
		}
	}
	memo.Default.Reset()
}

// BenchmarkNetworkEvalCached is the same evaluation against a warm cache:
// every layer's search is a fingerprint hit. The gap to Cold is the price of
// the mapping searches the cache removes.
func BenchmarkNetworkEvalCached(b *testing.B) {
	hw, sp := arch.CaseStudy(), arch.CaseStudySpatial()
	opt := &network.Options{MaxCandidates: 800}
	memo.Default.Reset()
	if _, err := network.Evaluate(context.Background(), repeatNet(), hw, sp, opt); err != nil {
		b.Fatal(err) // warm the cache outside the timed region
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := network.Evaluate(context.Background(), repeatNet(), hw, sp, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	memo.Default.Reset()
}

// benchBlockNet builds the tiny transformer block in prefill mode: 14 ops
// (QKV/output projections, head-batched attention matmuls, FFN, and the
// bandwidth-bound elementwise passes), 10 unique shapes after dedup.
func benchBlockNet(b *testing.B) *network.Network {
	b.Helper()
	_, net, err := (&transformer.Spec{Preset: "tiny", Mode: "prefill"}).Build()
	if err != nil {
		b.Fatal(err)
	}
	return net
}

// BenchmarkTransformerBlock prices one transformer block with the memo cache
// emptied before every iteration: every unique matmul shape pays a full
// mapping search each time (the per-head attention matmuls search once and
// scale by head count). Baseline for BenchmarkTransformerBlockWarm.
func BenchmarkTransformerBlock(b *testing.B) {
	hw, sp := arch.CaseStudy(), arch.CaseStudySpatial()
	net := benchBlockNet(b)
	opt := &network.Options{MaxCandidates: 800}
	var r *network.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		memo.Default.Reset()
		var err error
		r, err = network.Evaluate(context.Background(), net, hw, sp, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	memo.Default.Reset()
	b.ReportMetric(r.TotalCC, "total-cc")
}

// BenchmarkTransformerBlockWarm is the same block against a warm cache:
// every matmul search is a fingerprint hit, so the remaining cost is the
// elementwise pricing and cross-layer composition. The gap to the cold
// benchmark is the search work the memo removes.
func BenchmarkTransformerBlockWarm(b *testing.B) {
	hw, sp := arch.CaseStudy(), arch.CaseStudySpatial()
	net := benchBlockNet(b)
	opt := &network.Options{MaxCandidates: 800}
	memo.Default.Reset()
	if _, err := network.Evaluate(context.Background(), net, hw, sp, opt); err != nil {
		b.Fatal(err) // warm the cache outside the timed region
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := network.Evaluate(context.Background(), net, hw, sp, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	memo.Default.Reset()
}

// BenchmarkMultiCoreScaling evaluates the 4-core data-parallel speedup.
func BenchmarkMultiCoreScaling(b *testing.B) {
	hw := arch.CaseStudy()
	var r *network.MultiCoreResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = network.EvaluateMultiCore(context.Background(), benchNet(), hw, arch.CaseStudySpatial(),
			&network.MultiCoreOptions{Cores: 4, Options: network.Options{MaxCandidates: 600}})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Speedup, "speedup-x")
}

// BenchmarkFusionOptimize runs the fusion planner on a spill-heavy network.
func BenchmarkFusionOptimize(b *testing.B) {
	hw := arch.CaseStudy()
	hw.MemoryByName("GB").CapacityBits = 100 * 1024 * 8
	net := &network.Network{
		Name: "spilly",
		Layers: []workload.Layer{
			workload.NewPointwise("pw1", 1, 64, 16, 28, 28),
			workload.NewPointwise("pw2", 1, 64, 64, 28, 28),
			workload.NewPointwise("pw3", 1, 32, 64, 28, 28),
		},
	}
	var r *fusion.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = fusion.Optimize(net, hw, arch.CaseStudySpatial(), &fusion.Options{MaxCandidates: 600})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.SavedCC, "saved-cc")
}

// BenchmarkSensitivityTornado sweeps every knob of the case-study arch.
func BenchmarkSensitivityTornado(b *testing.B) {
	l := workload.NewMatMul("t", 128, 128, 8)
	hw := arch.CaseStudy()
	var top sensitivity.Effect
	for i := 0; i < b.N; i++ {
		effects, err := sensitivity.Analyze(&l, hw, arch.CaseStudySpatial(),
			&sensitivity.Options{MaxCandidates: 500, SkipCapacity: true})
		if err != nil {
			b.Fatal(err)
		}
		top = effects[0]
	}
	b.ReportMetric(top.Swing, "top-swing-cc")
}

// BenchmarkSpatialSearch measures the joint spatial+temporal search.
func BenchmarkSpatialSearch(b *testing.B) {
	l := workload.NewMatMul("s", 48, 48, 48)
	hw := arch.CaseStudy()
	for i := 0; i < b.N; i++ {
		_, _, _, err := mapper.BestWithSpatial(context.Background(), &l, hw, &mapper.SpatialOptions{
			MaxSpatials: 6,
			Temporal:    mapper.Options{BWAware: true, MaxCandidates: 400},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSimArbitration contrasts the simulator's EDF scheduler
// against plain FIFO on a contended problem.
func BenchmarkAblationSimArbitration(b *testing.B) {
	p := caseStudyProblem(b)
	var edf, fifo int64
	for i := 0; i < b.N; i++ {
		r1, err := sim.Simulate(p, nil)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := sim.Simulate(p, &sim.Options{FIFOArbitration: true})
		if err != nil {
			b.Fatal(err)
		}
		edf, fifo = r1.Cycles, r2.Cycles
	}
	b.ReportMetric(float64(edf), "edf-cc")
	b.ReportMetric(float64(fifo), "fifo-cc")
}

// BenchmarkAnalysisUtilities measures the cheap per-problem analyses.
func BenchmarkAnalysisUtilities(b *testing.B) {
	p := caseStudyProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := roofline.Analyze(p); err != nil {
			b.Fatal(err)
		}
		if _, err := noc.Analyze(p, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := core.Evaluate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBWSweep runs the bandwidth crossover study (one point set).
func BenchmarkBWSweep(b *testing.B) {
	var cross int64
	for i := 0; i < b.N; i++ {
		points, err := experiments.BWSweep([]int64{128, 512, 2048}, 150)
		if err != nil {
			b.Fatal(err)
		}
		cross = experiments.CrossoverBW(points, "64x64")
	}
	b.ReportMetric(float64(cross), "64x64-crossover-bw")
}

// BenchmarkAnnealSearch measures the simulated-annealing mapper on a
// prime-rich layer where exhaustive enumeration explodes.
func BenchmarkAnnealSearch(b *testing.B) {
	l := workload.NewMatMul("a", 196, 196, 196)
	hw := arch.CaseStudy()
	var cc float64
	for i := 0; i < b.N; i++ {
		cand, err := mapper.Anneal(context.Background(), &l, hw, &mapper.AnnealOptions{
			Spatial: arch.CaseStudySpatial(), BWAware: true,
			Iterations: 1500, Restarts: 2, Seed: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		cc = cand.Result.CCTotal
	}
	b.ReportMetric(cc, "best-cc")
}

// BenchmarkCalibration fits the energy table to synthetic measurements.
func BenchmarkCalibration(b *testing.B) {
	hw := arch.CaseStudy()
	shapes := [][3]int64{{16, 32, 32}, {64, 16, 64}, {32, 64, 16}, {64, 64, 64}, {128, 32, 16}}
	precs := []workload.Precision{
		{W: 8, I: 8, O: 24}, {W: 4, I: 4, O: 16}, {W: 16, I: 8, O: 32},
		{W: 8, I: 8, O: 8}, {W: 16, I: 16, O: 32},
	}
	var samples []calib.Sample
	truth := energy.Default7nm()
	for i, s := range shapes {
		l := workload.NewMatMul("c", s[0], s[1], s[2])
		l.Precision = precs[i]
		best, _, err := mapper.Best(context.Background(), &l, hw, &mapper.Options{
			Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 300,
		})
		if err != nil {
			b.Fatal(err)
		}
		layer := l
		p := &core.Problem{Layer: &layer, Arch: hw, Mapping: best.Mapping}
		eb, err := energy.Evaluate(p, truth)
		if err != nil {
			b.Fatal(err)
		}
		samples = append(samples, calib.Sample{Problem: p, EnergyPJ: eb.TotalPJ})
	}
	b.ResetTimer()
	var fit float64
	for i := 0; i < b.N; i++ {
		tbl, err := calib.Fit(samples, truth.WritePenalty)
		if err != nil {
			b.Fatal(err)
		}
		fit = tbl.MACpJ
	}
	b.ReportMetric(fit, "fitted-MACpJ")
}
