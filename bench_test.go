// Package repro_test is the benchmark harness: one benchmark per table and
// figure of the paper's evaluation (run with `go test -bench=. -benchmem`),
// plus ablation benchmarks for the design choices called out in DESIGN.md.
// Accuracy-style results are attached as custom benchmark metrics so a
// single -bench run regenerates every reported number.
package repro_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/experiments"
	"repro/internal/loops"
	"repro/internal/mapper"
	"repro/internal/mapping"
	"repro/internal/periodic"
	"repro/internal/sim"
	"repro/internal/workload"
)

// caseStudyProblem returns a fixed mid-size problem on the case-study
// accelerator for micro-benchmarks.
func caseStudyProblem(b *testing.B) *core.Problem {
	b.Helper()
	layer := workload.NewMatMul("bench", 128, 128, 128)
	hw := arch.CaseStudy()
	best, _, err := mapper.Best(context.Background(), &layer, hw, &mapper.Options{
		Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 2000,
	})
	if err != nil {
		b.Fatal(err)
	}
	return &core.Problem{Layer: &layer, Arch: hw, Mapping: best.Mapping}
}

// BenchmarkFig1Scenarios evaluates four problems hitting the four
// computation scenarios of Fig. 1(b) and reports each scenario's modeled
// cycle count as a metric.
func BenchmarkFig1Scenarios(b *testing.B) {
	layer := workload.NewMatMul("s", 64, 64, 64)
	hw := arch.CaseStudy()
	full := arch.CaseStudySpatial()
	half := loops.Nest{{Dim: loops.K, Size: 16}, {Dim: loops.B, Size: 8}}

	mk := func(sp loops.Nest, starve bool) *core.Problem {
		a := hw.Clone()
		if starve {
			gb := a.MemoryByName("GB")
			for i := range gb.Ports {
				gb.Ports[i].BWBits = 16
			}
		}
		best, _, err := mapper.Best(context.Background(), &layer, a, &mapper.Options{Spatial: sp, BWAware: true, MaxCandidates: 500})
		if err != nil {
			b.Fatal(err)
		}
		return &core.Problem{Layer: &layer, Arch: a, Mapping: best.Mapping}
	}
	problems := []*core.Problem{mk(full, false), mk(half, false), mk(full, true), mk(half, true)}

	b.ResetTimer()
	var results [4]*core.Result
	for i := 0; i < b.N; i++ {
		for j, p := range problems {
			r, err := core.Evaluate(p)
			if err != nil {
				b.Fatal(err)
			}
			results[j] = r
		}
	}
	b.ReportMetric(results[0].CCTotal, "scen1-cc")
	b.ReportMetric(results[1].CCTotal, "scen2-cc")
	b.ReportMetric(results[2].CCTotal, "scen3-cc")
	b.ReportMetric(results[3].CCTotal, "scen4-cc")
}

// BenchmarkTableIReqBW measures Step-1 DTL attribute extraction (Table I's
// ReqBW per memory type and top-loop type) on a full problem.
func BenchmarkTableIReqBW(b *testing.B) {
	p := caseStudyProblem(b)
	b.ResetTimer()
	var eps []*core.Endpoint
	for i := 0; i < b.N; i++ {
		var err error
		eps, err = core.Endpoints(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(eps)), "DTLs")
}

// BenchmarkFig3Cases runs the six stall/slack timeline cases of Fig. 3
// (double-buffered and keep-out windows, X_REAL <=> X_REQ).
func BenchmarkFig3Cases(b *testing.B) {
	// Six windows mirroring Fig. 3(a)-(f).
	windows := []periodic.Window{
		periodic.Full(8, 64), periodic.Full(8, 64), periodic.Full(8, 64),
		periodic.Tail(8, 2, 64), periodic.Tail(8, 2, 64), periodic.Tail(8, 2, 64),
	}
	b.ResetTimer()
	var u int64
	for i := 0; i < b.N; i++ {
		u = periodic.UnionLength(windows)
	}
	b.ReportMetric(float64(u), "MUW-union")
}

// BenchmarkFig4Example runs the worked Divide/Combine example of Fig. 4 —
// a local buffer whose single read port is shared by the W/I/O register
// fills — end to end (the hand-derived SS_comb is 20; see the core tests).
func BenchmarkFig4Example(b *testing.B) {
	layer := workload.NewMatMul("fig4", 4, 2, 4)
	layer.Precision = workload.Precision{W: 8, I: 8, O: 8}
	hw := &arch.Arch{
		Name: "fig4",
		MACs: 2,
		Memories: []*arch.Memory{
			{Name: "W-Reg", CapacityBits: 1 << 12, Serves: []loops.Operand{loops.W},
				Ports: []arch.Port{{Name: "rw", Dir: arch.ReadWrite, BWBits: 1 << 16}}},
			{Name: "I-Reg", CapacityBits: 1 << 12, Serves: []loops.Operand{loops.I},
				Ports: []arch.Port{{Name: "rw", Dir: arch.ReadWrite, BWBits: 1 << 16}}},
			{Name: "O-Reg", CapacityBits: 1 << 12, Serves: []loops.Operand{loops.O},
				Ports: []arch.Port{{Name: "rw", Dir: arch.ReadWrite, BWBits: 1 << 16}}},
			{Name: "LB", CapacityBits: 1 << 16, Serves: []loops.Operand{loops.W, loops.I, loops.O},
				Ports: []arch.Port{
					{Name: "rd", Dir: arch.Read, BWBits: 16},
					{Name: "wr", Dir: arch.Write, BWBits: 1 << 16},
				}},
			{Name: "GB", CapacityBits: 1 << 24, Serves: []loops.Operand{loops.W, loops.I, loops.O},
				Ports: []arch.Port{
					{Name: "rd", Dir: arch.Read, BWBits: 1 << 16},
					{Name: "wr", Dir: arch.Write, BWBits: 1 << 16},
				}},
		},
	}
	for _, op := range loops.AllOperands {
		hw.Chain[op] = []string{op.String() + "-Reg", "LB", "GB"}
	}
	if err := hw.Normalize(); err != nil {
		b.Fatal(err)
	}
	m := &mapping.Mapping{
		Spatial:  loops.Nest{{Dim: loops.K, Size: 2}},
		Temporal: loops.Nest{{Dim: loops.C, Size: 2}, {Dim: loops.B, Size: 4}, {Dim: loops.C, Size: 2}},
	}
	m.Bound[loops.W] = []int{1, 2, 3}
	m.Bound[loops.I] = []int{1, 2, 3}
	m.Bound[loops.O] = []int{1, 2, 3}
	p := &core.Problem{Layer: &layer, Arch: hw, Mapping: m}
	b.ResetTimer()
	var ss float64
	for i := 0; i < b.N; i++ {
		r, err := core.Evaluate(p)
		if err != nil {
			b.Fatal(err)
		}
		ss = r.SSOverall
	}
	b.ReportMetric(ss, "SS-overall")
}

// BenchmarkFig5Validation runs one validation layer (model + reference
// simulator) and reports the accuracy; the full-suite number comes from
// cmd/validate.
func BenchmarkFig5Validation(b *testing.B) {
	a := arch.InHouse()
	l := workload.Im2Col(workload.HandTrackingSuite()[4]) // conv4_pw
	best, _, err := mapper.Best(context.Background(), &l, a, &mapper.Options{
		Spatial: arch.InHouseSpatial(), BWAware: true, MaxCandidates: 4000,
	})
	if err != nil {
		b.Fatal(err)
	}
	p := &core.Problem{Layer: &l, Arch: a, Mapping: best.Mapping}
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		r, err := core.Evaluate(p)
		if err != nil {
			b.Fatal(err)
		}
		sr, err := sim.Simulate(p, nil)
		if err != nil {
			b.Fatal(err)
		}
		acc = 1 - math.Abs(r.CCTotal-float64(sr.Cycles))/float64(sr.Cycles)
	}
	b.ReportMetric(100*acc, "accuracy-%")
}

// BenchmarkFig6Case1 evaluates the Mapping A vs Mapping B comparison and
// reports B's latency advantage and A's energy advantage.
func BenchmarkFig6Case1(b *testing.B) {
	var r *experiments.Case1Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Case1(false)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(1-r.B.Result.CCTotal/r.A.Result.CCTotal), "B-latency-gain-%")
	b.ReportMetric(100*(1-r.A.Energy.TotalPJ/r.B.Energy.TotalPJ), "A-energy-gain-%")
}

// BenchmarkFig7Case2 runs the workload sweep and reports the worst
// bandwidth-unaware discrepancy (paper: 9.2x at (512,512,8)).
func BenchmarkFig7Case2(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Case2(&experiments.Case2Options{MaxCandidates: 1500})
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if r.Discrepancy > worst {
				worst = r.Discrepancy
			}
		}
	}
	b.ReportMetric(worst, "max-discrepancy-x")
}

// BenchmarkFig8Case3 runs the quick architecture sweep for the three panels
// and reports each array size's best low-bandwidth latency.
func BenchmarkFig8Case3(b *testing.B) {
	var r *experiments.Case3Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Case3(&experiments.Case3Options{Quick: true, MaxCandidates: 150})
		if err != nil {
			b.Fatal(err)
		}
	}
	best := dse.BestPerArray(r.Low)
	b.ReportMetric(best["16x16"].Latency, "16x16-lowBW-cc")
	b.ReportMetric(best["32x32"].Latency, "32x32-lowBW-cc")
	b.ReportMetric(best["64x64"].Latency, "64x64-lowBW-cc")
}

// --- Ablation benchmarks (DESIGN.md section 5) ---

// ablationAccuracy evaluates the model under opts against the simulator on
// one stall-heavy layer.
func ablationAccuracy(b *testing.B, opts *core.ModelOptions) float64 {
	b.Helper()
	layer := workload.NewMatMul("abl", 128, 128, 8)
	hw := arch.CaseStudy()
	best, _, err := mapper.Best(context.Background(), &layer, hw, &mapper.Options{
		Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 2000,
	})
	if err != nil {
		b.Fatal(err)
	}
	p := &core.Problem{Layer: &layer, Arch: hw, Mapping: best.Mapping, Opts: opts}
	r, err := core.Evaluate(p)
	if err != nil {
		b.Fatal(err)
	}
	sr, err := sim.Simulate(p, nil)
	if err != nil {
		b.Fatal(err)
	}
	return 1 - math.Abs(r.CCTotal-float64(sr.Cycles))/float64(sr.Cycles)
}

// BenchmarkAblationCombine contrasts the full Step-2 combination against
// the paper-verbatim Eq. (2) and the naive slack-cancelling sum.
func BenchmarkAblationCombine(b *testing.B) {
	var full, eq2, naive float64
	for i := 0; i < b.N; i++ {
		full = ablationAccuracy(b, nil)
		eq2 = ablationAccuracy(b, &core.ModelOptions{NoCapacityBound: true})
		naive = ablationAccuracy(b, &core.ModelOptions{NaiveCombine: true})
	}
	b.ReportMetric(100*full, "full-acc-%")
	b.ReportMetric(100*eq2, "eq2-only-acc-%")
	b.ReportMetric(100*naive, "naive-acc-%")
}

// BenchmarkAblationQuantization contrasts whole-bus-word transfer rounding
// against fractional X_REAL.
func BenchmarkAblationQuantization(b *testing.B) {
	var quantized, fractional float64
	for i := 0; i < b.N; i++ {
		quantized = ablationAccuracy(b, nil)
		fractional = ablationAccuracy(b, &core.ModelOptions{FractionalXReal: true})
	}
	b.ReportMetric(100*quantized, "quantized-acc-%")
	b.ReportMetric(100*fractional, "fractional-acc-%")
}

// BenchmarkAblationMapperPruning contrasts the pow2-restricted search with
// the full divisor search at equal budget.
func BenchmarkAblationMapperPruning(b *testing.B) {
	layer := workload.NewMatMul("prune", 192, 192, 96)
	hw := arch.CaseStudy()
	var fullLat, pow2Lat float64
	for i := 0; i < b.N; i++ {
		bf, _, err := mapper.Best(context.Background(), &layer, hw, &mapper.Options{
			Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 3000,
		})
		if err != nil {
			b.Fatal(err)
		}
		bp, _, err := mapper.Best(context.Background(), &layer, hw, &mapper.Options{
			Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 3000, Pow2Splits: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		fullLat, pow2Lat = bf.Result.CCTotal, bp.Result.CCTotal
	}
	b.ReportMetric(fullLat, "full-search-cc")
	b.ReportMetric(pow2Lat, "pow2-search-cc")
}

// BenchmarkModelThroughput measures raw model evaluations per second — the
// property that makes analytical models the tool of choice for early DSE.
func BenchmarkModelThroughput(b *testing.B) {
	p := caseStudyProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Evaluate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimThroughput measures the reference simulator on the same
// problem, quantifying the model's speed advantage.
func BenchmarkSimThroughput(b *testing.B) {
	p := caseStudyProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(p, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelThroughputReused is BenchmarkModelThroughput with a
// retained core.Evaluator — the configuration the mapping-search hot path
// actually runs, with every internal buffer reused across evaluations.
func BenchmarkModelThroughputReused(b *testing.B) {
	p := caseStudyProblem(b)
	var ev core.Evaluator
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.ScoreLatency(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapperSearch measures a bounded mapping search end to end.
func BenchmarkMapperSearch(b *testing.B) {
	layer := workload.NewMatMul("search", 128, 128, 128)
	hw := arch.CaseStudy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mapper.Best(context.Background(), &layer, hw, &mapper.Options{
			Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 1000,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapperSearchNoSurrogate is BenchmarkMapperSearch with the
// surrogate-guided candidate ordering disabled — the canonical walk order,
// for guided-vs-lexicographic speedup accounting (the result is
// bit-identical; only the prune rate changes).
func BenchmarkMapperSearchNoSurrogate(b *testing.B) {
	layer := workload.NewMatMul("search", 128, 128, 128)
	hw := arch.CaseStudy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mapper.Best(context.Background(), &layer, hw, &mapper.Options{
			Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 1000,
			NoSurrogate: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScoreBatch scores slabs of 64 problems through the
// structure-of-arrays batch entry point — the configuration the guided
// workers run — against a retained evaluator.
func BenchmarkScoreBatch(b *testing.B) {
	base := caseStudyProblem(b)
	const slab = 64
	ps := make([]*core.Problem, slab)
	for i := range ps {
		ps[i] = base
	}
	out := make([]float64, slab)
	var ev core.Evaluator
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ev.ScoreBatch(ps, out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(slab), "problems/batch")
}

// BenchmarkMapperSearchSerial pins the single-worker, prune-disabled
// search — the engine's pre-pipeline behaviour, for speedup accounting.
func BenchmarkMapperSearchSerial(b *testing.B) {
	layer := workload.NewMatMul("search", 128, 128, 128)
	hw := arch.CaseStudy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mapper.Best(context.Background(), &layer, hw, &mapper.Options{
			Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 1000,
			Workers: 1, NoPrune: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapperSearchNoSym is BenchmarkMapperSearch with the symmetry
// reduction disabled — the pre-reduction engine, for speedup accounting
// (the result is bit-identical; only the evaluated stream grows).
func BenchmarkMapperSearchNoSym(b *testing.B) {
	layer := workload.NewMatMul("search", 128, 128, 128)
	hw := arch.CaseStudy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mapper.Best(context.Background(), &layer, hw, &mapper.Options{
			Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 1000,
			NoReduce: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapperSearchParallel forces a 4-worker evaluation pipeline
// (bypassing the shared budget, so the number is meaningful regardless of
// the machine's GOMAXPROCS).
func BenchmarkMapperSearchParallel(b *testing.B) {
	layer := workload.NewMatMul("search", 128, 128, 128)
	hw := arch.CaseStudy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mapper.Best(context.Background(), &layer, hw, &mapper.Options{
			Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 1000,
			Workers: 4,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
