# Developer entry points. Everything is plain `go` underneath; the targets
# only pin the invocations CI and EXPERIMENTS.md reference.

GO ?= go

.PHONY: all build test race vet bench bench-smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages under the race detector: the mapper's
# evaluation pipeline, the memoization cache, the shared worker budget, and
# the parallel consumers.
race:
	$(GO) test -race ./internal/mapper ./internal/memo ./internal/par ./internal/network

vet:
	$(GO) vet ./...

# Search & model benchmarks with allocation stats, appended to the JSON
# history in BENCH_mapper.json keyed by git SHA + date (see cmd/benchjson).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMapperSearch|BenchmarkModelThroughput|BenchmarkNetworkEval|BenchmarkGenerateOnly' \
		-benchmem -benchtime=2s . ./internal/mapper | tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_mapper.json

# One-iteration pass over every benchmark in the repo: CI runs this so a
# benchmark that stops compiling or starts failing is caught on the PR, and
# the cmd/benchjson parser is exercised end to end (timings discarded — CI
# machines produce meaningless numbers, so no history file is written).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./... | $(GO) run ./cmd/benchjson > /dev/null

clean:
	rm -f benchjson-*.tmp
