# Developer entry points. Everything is plain `go` underneath; the targets
# only pin the invocations CI and EXPERIMENTS.md reference.

GO ?= go

.PHONY: all build test race vet lint bench bench-smoke serve-smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages under the race detector: the mapper's
# evaluation pipeline, the memoization cache, the shared worker budget, the
# parallel consumers, and the HTTP service.
race:
	$(GO) test -race ./internal/mapper ./internal/memo ./internal/par ./internal/network ./internal/serve

vet:
	$(GO) vet ./...

# Static analysis beyond vet. staticcheck is not vendored and the target
# degrades to a notice when the binary is absent, so `make lint` is safe on
# a bare checkout; CI installs it and gets the real check.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Search & model benchmarks with allocation stats, appended to the JSON
# history in BENCH_mapper.json keyed by git SHA + date (see cmd/benchjson).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMapperSearch|BenchmarkModelThroughput|BenchmarkNetworkEval|BenchmarkGenerateOnly|BenchmarkServe|BenchmarkScoreBatch' \
		-benchmem -benchtime=2s . ./internal/mapper ./internal/serve | tee /dev/stderr | $(GO) run ./cmd/benchjson -compare BENCH_mapper.json -out BENCH_mapper.json

# One-iteration pass over every benchmark in the repo (the surrogate and
# batch-scoring benchmarks included): CI runs this so a benchmark that stops
# compiling or starts failing is caught on the PR, and the cmd/benchjson
# parser is exercised end to end. The -compare delta report against the
# checked-in BENCH_mapper.json is informational only — single-iteration
# timings on shared runners are noise, so it never fails the target and no
# history entry is written.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./... | $(GO) run ./cmd/benchjson -compare BENCH_mapper.json > /dev/null

# Black-box smoke test of the HTTP daemon: build cmd/servemodel, serve on a
# loopback port, run a search + cache-hit + malformed-request sequence over
# curl, and verify SIGTERM shuts it down gracefully.
serve-smoke:
	bash scripts/serve_smoke.sh

clean:
	rm -f benchjson-*.tmp
