# Developer entry points. Everything is plain `go` underneath; the targets
# only pin the invocations CI and EXPERIMENTS.md reference.

GO ?= go

.PHONY: all build test race bench clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages under the race detector: the mapper's
# evaluation pipeline, the shared worker budget, and the parallel consumers.
race:
	$(GO) test -race ./internal/mapper ./internal/par ./internal/network

# Search & model benchmarks with allocation stats, archived as JSON for
# structural diffing (see cmd/benchjson).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMapperSearch|BenchmarkModelThroughput' \
		-benchmem -benchtime=2s . | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_mapper.json

clean:
	rm -f BENCH_mapper.json
