# Developer entry points. Everything is plain `go` underneath; the targets
# only pin the invocations CI and EXPERIMENTS.md reference.

GO ?= go

.PHONY: all build test race vet lint bench bench-smoke serve-smoke fabric-smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages under the race detector: the mapper's
# evaluation pipeline, the memoization cache, the shared worker budget, the
# parallel consumers, the HTTP service, and the sharded search fabric.
race:
	$(GO) test -race ./internal/mapper ./internal/memo ./internal/par ./internal/network ./internal/serve ./internal/fabric

vet:
	$(GO) vet ./...

# Static analysis beyond vet. staticcheck is not vendored and the target
# degrades to a notice when the binary is absent, so `make lint` is safe on
# a bare checkout; CI installs it and gets the real check.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Search & model benchmarks with allocation stats, appended to the JSON
# history in BENCH_mapper.json keyed by git SHA + date (see cmd/benchjson).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMapperSearch|BenchmarkModelThroughput|BenchmarkNetworkEval|BenchmarkGenerateOnly|BenchmarkServe|BenchmarkScoreBatch|BenchmarkFabric|BenchmarkTransformer' \
		-benchmem -benchtime=2s . ./internal/mapper ./internal/serve ./internal/fabric | tee /dev/stderr | $(GO) run ./cmd/benchjson -compare BENCH_mapper.json -out BENCH_mapper.json

# Two passes. First, one iteration of every benchmark in the repo (the
# surrogate and batch-scoring benchmarks included): CI runs this so a
# benchmark that stops compiling or starts failing is caught on the PR, and
# the cmd/benchjson parser is exercised end to end; its -compare delta
# report against the checked-in BENCH_mapper.json is informational ONLY —
# single-iteration timings include one-time cold-start costs (empty memo
# caches, unwarmed evaluator scratch) that put them hundreds of times over
# the multi-iteration history for the caching benchmarks, so they must
# never gate. Second, the core memo-free benchmarks re-measured with real
# iteration counts, gated by -threshold: a > 400% ns/op regression against
# the history fails CI. The bound is far above runner noise on purpose —
# the gate is for catastrophic regressions, not jitter. No history entry is
# written by either pass.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./... | $(GO) run ./cmd/benchjson -compare BENCH_mapper.json > /dev/null
	$(GO) test -run '^$$' -bench '^(BenchmarkMapperSearch|BenchmarkModelThroughput|BenchmarkScoreBatch)$$' -benchmem -benchtime=0.5s . \
		| $(GO) run ./cmd/benchjson -compare BENCH_mapper.json -threshold 400 > /dev/null

# Black-box smoke test of the HTTP daemon: build cmd/servemodel, serve on a
# loopback port, run a search + cache-hit + malformed-request sequence over
# curl, and verify SIGTERM shuts it down gracefully.
serve-smoke:
	bash scripts/serve_smoke.sh

# Black-box smoke test of the sharded search fabric: two servemodel nodes on
# loopback ports, a fanned-out latmodel search that must match the local
# byte-for-byte, shard-counter metrics, and error-path checks.
fabric-smoke:
	bash scripts/fabric_smoke.sh

clean:
	rm -f benchjson-*.tmp
