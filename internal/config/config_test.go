package config

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/mapping"
	"repro/internal/network"
	"repro/internal/workload"
)

func TestLayerRoundTrip(t *testing.T) {
	orig := workload.NewConv2D("c3", 2, 64, 32, 28, 28, 3, 3)
	orig.Strides.SX, orig.Strides.SY = 2, 2
	j := FromLayer(&orig)
	data, err := Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	var back Layer
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.ToLayer()
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != orig.String() {
		t.Errorf("round trip: %s != %s", got.String(), orig.String())
	}
	if got.Strides.SX != 2 || got.Strides.DX != 1 {
		t.Errorf("strides lost: %+v", got.Strides)
	}
	if got.Precision != orig.Precision {
		t.Errorf("precision lost: %+v", got.Precision)
	}
}

func TestTransformerKindRoundTrip(t *testing.T) {
	layers := []workload.Layer{
		workload.NewAttnScore("s", 32, 48, 64, 8),
		workload.NewAttnCtx("c", 32, 64, 48, 8),
		workload.NewElemwise(workload.LayerNorm, "ln", 16, 64, 1),
		workload.NewElemwise(workload.Softmax, "sm", 16, 48, 8),
		workload.NewElemwise(workload.GeLU, "g", 16, 64, 1),
		workload.NewElemwise(workload.ResidualAdd, "r", 16, 64, 1),
	}
	for _, orig := range layers {
		j := FromLayer(&orig)
		data, err := Marshal(j)
		if err != nil {
			t.Fatal(err)
		}
		var back Layer
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		got, err := back.ToLayer()
		if err != nil {
			t.Fatalf("%s: %v", orig.Name, err)
		}
		if got.String() != orig.String() {
			t.Errorf("round trip: %s != %s", got.String(), orig.String())
		}
		if got.HeadCount() != orig.HeadCount() {
			t.Errorf("%s: heads lost: %d != %d", orig.Name, got.HeadCount(), orig.HeadCount())
		}
		// The shape key must survive the wire form: a serve round trip may
		// not split or merge memoized searches.
		if got.ShapeKey() != orig.ShapeKey() {
			t.Errorf("%s: shape key changed across the wire", orig.Name)
		}
	}
	// Heads on a classic kind must fail validation.
	bad := Layer{Kind: "matmul", Dims: map[string]int64{"B": 2, "K": 2, "C": 2}, Heads: 4}
	if _, err := bad.ToLayer(); err == nil {
		t.Error("matmul with heads accepted")
	}
}

func TestLayerErrors(t *testing.T) {
	bad := Layer{Kind: "wat", Dims: map[string]int64{"B": 2}}
	if _, err := bad.ToLayer(); err == nil {
		t.Error("unknown kind accepted")
	}
	bad2 := Layer{Kind: "matmul", Dims: map[string]int64{"Q": 2}}
	if _, err := bad2.ToLayer(); err == nil {
		t.Error("unknown dim accepted")
	}
	bad3 := Layer{Kind: "dense", Dims: map[string]int64{"OX": 4}}
	if _, err := bad3.ToLayer(); err == nil {
		t.Error("invalid dense accepted")
	}
}

func TestLayerPrecisionOverride(t *testing.T) {
	l := Layer{Kind: "matmul", Dims: map[string]int64{"B": 2, "K": 2, "C": 2}, PrecO: 32}
	got, err := l.ToLayer()
	if err != nil {
		t.Fatal(err)
	}
	if got.Precision.O != 32 || got.Precision.W != 8 {
		t.Errorf("precision override: %+v", got.Precision)
	}
}

func TestArchRoundTrip(t *testing.T) {
	orig := arch.CaseStudy()
	j := FromArch(orig)
	data, err := Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	var back Arch
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.ToArch()
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.MACs != orig.MACs || got.Combine != orig.Combine {
		t.Error("arch header lost")
	}
	if len(got.Memories) != len(orig.Memories) {
		t.Fatalf("memory count %d != %d", len(got.Memories), len(orig.Memories))
	}
	for i, m := range orig.Memories {
		g := got.Memories[i]
		if g.Name != m.Name || g.CapacityBits != m.CapacityBits || g.DoubleBuffered != m.DoubleBuffered {
			t.Errorf("memory %s fields lost", m.Name)
		}
		if !reflect.DeepEqual(g.Ports, m.Ports) {
			t.Errorf("memory %s ports %v != %v", m.Name, g.Ports, m.Ports)
		}
	}
	for _, op := range loops.AllOperands {
		if !reflect.DeepEqual(got.Chain[op], orig.Chain[op]) {
			t.Errorf("chain %s lost", op)
		}
	}
}

func TestArchExplicitPortAssignment(t *testing.T) {
	a := Arch{
		Name: "x", MACs: 4,
		Memories: []Memory{{
			Name: "M", CapacityBytes: 128,
			Serves: []string{"W", "O"},
			Ports: []Port{
				{Name: "p0", Dir: "RW", BWBits: 8},
				{Name: "p1", Dir: "RW", BWBits: 8},
			},
			PortOf: map[string]string{"O:wr": "p1"},
		}},
		Chains: map[string][]string{"W": {"M"}, "I": {"M"}, "O": {"M"}},
	}
	// I not served -> chain validation must fail.
	if _, err := a.ToArch(); err == nil {
		t.Fatal("chain through non-serving memory accepted")
	}
	a.Memories[0].Serves = []string{"W", "I", "O"}
	got, err := a.ToArch()
	if err != nil {
		t.Fatal(err)
	}
	_, idx, err := got.Memories[0].Port(arch.Access{Operand: loops.O, Write: true})
	if err != nil || idx != 1 {
		t.Errorf("explicit assignment lost: port %d (%v)", idx, err)
	}
}

func TestArchErrors(t *testing.T) {
	cases := []Arch{
		{Name: "badcombine", MACs: 1, Combine: "meh"},
		{Name: "badop", MACs: 1, Memories: []Memory{{Name: "M", CapacityBytes: 1, Serves: []string{"Z"}, Ports: []Port{{Name: "p", Dir: "RW", BWBits: 1}}}}},
		{Name: "baddir", MACs: 1, Memories: []Memory{{Name: "M", CapacityBytes: 1, Serves: []string{"W"}, Ports: []Port{{Name: "p", Dir: "XX", BWBits: 1}}}}},
	}
	for _, c := range cases {
		if _, err := c.ToArch(); err == nil {
			t.Errorf("%s accepted", c.Name)
		}
	}
	// Unknown port name in PortOf.
	bad := Arch{Name: "x", MACs: 1, Memories: []Memory{{
		Name: "M", CapacityBytes: 1, Serves: []string{"W"},
		Ports:  []Port{{Name: "p", Dir: "RW", BWBits: 1}},
		PortOf: map[string]string{"W:rd": "nope"},
	}}, Chains: map[string][]string{"W": {"M"}, "I": {"M"}, "O": {"M"}}}
	if _, err := bad.ToArch(); err == nil {
		t.Error("unknown port name accepted")
	}
}

func TestParseAccess(t *testing.T) {
	acc, err := parseAccess("O:wr")
	if err != nil || acc.Operand != loops.O || !acc.Write {
		t.Errorf("parseAccess: %+v, %v", acc, err)
	}
	if _, err := parseAccess("O"); err == nil {
		t.Error("bad access accepted")
	}
	if _, err := parseAccess("O:sideways"); err == nil {
		t.Error("bad direction accepted")
	}
	if _, err := parseAccess("Q:rd"); err == nil {
		t.Error("bad operand accepted")
	}
}

func TestMappingRoundTrip(t *testing.T) {
	orig := &mapping.Mapping{
		Spatial:  loops.Nest{{Dim: loops.K, Size: 16}},
		Temporal: loops.Nest{{Dim: loops.C, Size: 4}, {Dim: loops.B, Size: 2}},
	}
	orig.Bound[loops.W] = []int{1, 2}
	orig.Bound[loops.I] = []int{0, 2}
	orig.Bound[loops.O] = []int{2, 2}
	j := FromMapping(orig)
	data, err := Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	var back Mapping
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.ToMapping()
	if err != nil {
		t.Fatal(err)
	}
	if got.Spatial.String() != orig.Spatial.String() || got.Temporal.String() != orig.Temporal.String() {
		t.Error("nests lost")
	}
	for _, op := range loops.AllOperands {
		if !reflect.DeepEqual(got.Bound[op], orig.Bound[op]) {
			t.Errorf("bounds %s lost", op)
		}
	}
}

func TestMappingErrors(t *testing.T) {
	bad := Mapping{Spatial: []LoopJSON{{Dim: "Q", Size: 2}}}
	if _, err := bad.ToMapping(); err == nil {
		t.Error("bad spatial dim accepted")
	}
	bad2 := Mapping{Temporal: []LoopJSON{{Dim: "Q", Size: 2}}}
	if _, err := bad2.ToMapping(); err == nil {
		t.Error("bad temporal dim accepted")
	}
	bad3 := Mapping{Bounds: map[string][]int{"Q": {1}}}
	if _, err := bad3.ToMapping(); err == nil {
		t.Error("bad bound operand accepted")
	}
}

func TestUnmarshalProblem(t *testing.T) {
	data := []byte(`{
	  "layer": {"name": "l", "kind": "MatMul", "dims": {"B": 8, "K": 16, "C": 16}},
	  "arch": {
	    "name": "a", "macs": 4,
	    "memories": [
	      {"name": "Reg", "capacityBytes": 65536, "serves": ["W","I","O"],
	       "ports": [{"name": "rw", "dir": "RW", "bwBits": 64}]},
	      {"name": "GB", "capacityBytes": 1048576, "serves": ["W","I","O"],
	       "ports": [{"name": "rd", "dir": "R", "bwBits": 64},
	                 {"name": "wr", "dir": "W", "bwBits": 64}]}
	    ],
	    "chains": {"W": ["Reg","GB"], "I": ["Reg","GB"], "O": ["Reg","GB"]}
	  }
	}`)
	p, err := UnmarshalProblem(data)
	if err != nil {
		t.Fatal(err)
	}
	l, err := p.Layer.ToLayer()
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Arch.ToArch()
	if err != nil {
		t.Fatal(err)
	}
	if l.TotalMACs() != 8*16*16 || a.MACs != 4 {
		t.Error("problem fields wrong")
	}
	if p.Mapping != nil {
		t.Error("absent mapping should be nil")
	}
	if _, err := UnmarshalProblem([]byte("{nope")); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestNetworkRoundTrip(t *testing.T) {
	orig := &network.Network{
		Name: "tiny",
		Layers: []workload.Layer{
			workload.NewPointwise("pw", 1, 16, 8, 7, 7),
			workload.NewDense("fc", 1, 32, 16*49),
		},
	}
	data, err := Marshal(FromNetwork(orig))
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalNetwork(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || len(got.Layers) != len(orig.Layers) {
		t.Fatal("network header lost")
	}
	for i := range got.Layers {
		if got.Layers[i].String() != orig.Layers[i].String() {
			t.Errorf("layer %d: %s != %s", i, got.Layers[i].String(), orig.Layers[i].String())
		}
	}
	if got.TotalMACs() != orig.TotalMACs() {
		t.Error("MACs lost")
	}
	if _, err := UnmarshalNetwork([]byte("{bad")); err == nil {
		t.Error("bad network JSON accepted")
	}
	if _, err := UnmarshalNetwork([]byte(`{"name":"x","layers":[{"kind":"wat"}]}`)); err == nil {
		t.Error("bad layer kind accepted")
	}
	if _, err := UnmarshalNetwork([]byte(`{"name":"x"}`)); err == nil {
		t.Error("empty network accepted")
	}
}

func TestFromResult(t *testing.T) {
	l := workload.NewMatMul("r", 16, 32, 8)
	a := arch.CaseStudy()
	m := &mapping.Mapping{
		Spatial:  arch.CaseStudySpatial(),
		Temporal: loops.Nest{{Dim: loops.C, Size: 4}, {Dim: loops.B, Size: 2}, {Dim: loops.K, Size: 2}},
	}
	m.Bound[loops.W] = []int{0, 1, 3}
	m.Bound[loops.I] = []int{0, 2, 3}
	m.Bound[loops.O] = []int{1, 3}
	p := &core.Problem{Layer: &l, Arch: a, Mapping: m}
	r, err := core.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	j := FromResult(p, r)
	if j.CCTotal != r.CCTotal || j.Scenario == "" || len(j.Ports) == 0 {
		t.Errorf("summary wrong: %+v", j)
	}
	data, err := Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	var back ResultJSON
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.CCTotal != j.CCTotal || len(back.Ports) != len(j.Ports) {
		t.Error("result JSON round trip lost data")
	}
}
