// Package config serializes the model's inputs — layers, architectures and
// mappings — to and from JSON, so experiments are reproducible from plain
// files and the CLI can evaluate user-defined designs without recompiling.
//
// The schema mirrors the in-memory types closely but uses names instead of
// enum values (operands "W"/"I"/"O", dimensions "B".."FX", port directions
// "R"/"W"/"RW") and byte-oriented capacities where hardware specs usually
// quote bytes.
package config

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/mapping"
	"repro/internal/workload"
)

// Layer is the JSON form of workload.Layer.
type Layer struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // Conv2D|Dense|Depthwise|Pointwise|MatMul|AttnScore|AttnCtx|LayerNorm|Softmax|GeLU|ResidualAdd
	// Dims maps dimension names to extents; missing dims default to 1.
	Dims map[string]int64 `json:"dims"`
	// Stride/dilation (optional, conv only).
	StrideX   int64 `json:"strideX,omitempty"`
	StrideY   int64 `json:"strideY,omitempty"`
	DilationX int64 `json:"dilationX,omitempty"`
	DilationY int64 `json:"dilationY,omitempty"`
	// Precision in bits per operand (optional; default 8/8/24).
	PrecW int `json:"precW,omitempty"`
	PrecI int `json:"precI,omitempty"`
	PrecO int `json:"precO,omitempty"`
	// Heads is the head-batch multiplicity of the transformer kinds
	// (optional; 0 means unbatched).
	Heads int64 `json:"heads,omitempty"`
}

var kindNames = map[string]workload.Kind{
	"conv2d":      workload.Conv2D,
	"dense":       workload.Dense,
	"depthwise":   workload.Depthwise,
	"pointwise":   workload.Pointwise,
	"matmul":      workload.MatMul,
	"attnscore":   workload.AttnScore,
	"attnctx":     workload.AttnCtx,
	"layernorm":   workload.LayerNorm,
	"softmax":     workload.Softmax,
	"gelu":        workload.GeLU,
	"residualadd": workload.ResidualAdd,
}

// ToLayer converts the JSON form to a validated workload.Layer.
func (l *Layer) ToLayer() (workload.Layer, error) {
	kind, ok := kindNames[strings.ToLower(l.Kind)]
	if !ok {
		return workload.Layer{}, fmt.Errorf("config: unknown layer kind %q", l.Kind)
	}
	out := workload.Layer{Name: l.Name, Kind: kind, Heads: l.Heads}
	for i := range out.Dims {
		out.Dims[i] = 1
	}
	for name, v := range l.Dims {
		d, err := loops.ParseDim(name)
		if err != nil {
			return workload.Layer{}, err
		}
		out.Dims[d] = v
	}
	out.Strides = loops.Strides{SX: l.StrideX, SY: l.StrideY, DX: l.DilationX, DY: l.DilationY}
	if out.Strides.SX == 0 {
		out.Strides.SX = 1
	}
	if out.Strides.SY == 0 {
		out.Strides.SY = 1
	}
	if out.Strides.DX == 0 {
		out.Strides.DX = 1
	}
	if out.Strides.DY == 0 {
		out.Strides.DY = 1
	}
	out.Precision = workload.DefaultPrecision
	if l.PrecW > 0 {
		out.Precision.W = l.PrecW
	}
	if l.PrecI > 0 {
		out.Precision.I = l.PrecI
	}
	if l.PrecO > 0 {
		out.Precision.O = l.PrecO
	}
	if err := out.Validate(); err != nil {
		return workload.Layer{}, err
	}
	return out, nil
}

// FromLayer converts a workload.Layer into its JSON form.
func FromLayer(l *workload.Layer) Layer {
	out := Layer{
		Name: l.Name,
		Kind: l.Kind.String(),
		Dims: map[string]int64{},
	}
	for _, d := range loops.AllDims {
		if l.Dim(d) != 1 {
			out.Dims[d.String()] = l.Dim(d)
		}
	}
	if l.Strides.SX > 1 {
		out.StrideX = l.Strides.SX
	}
	if l.Strides.SY > 1 {
		out.StrideY = l.Strides.SY
	}
	if l.Strides.DX > 1 {
		out.DilationX = l.Strides.DX
	}
	if l.Strides.DY > 1 {
		out.DilationY = l.Strides.DY
	}
	out.PrecW, out.PrecI, out.PrecO = l.Precision.W, l.Precision.I, l.Precision.O
	if l.HeadCount() > 1 {
		out.Heads = l.HeadCount()
	}
	return out
}

// Port is the JSON form of arch.Port.
type Port struct {
	Name   string `json:"name"`
	Dir    string `json:"dir"` // "R" | "W" | "RW"
	BWBits int64  `json:"bwBits"`
}

// Memory is the JSON form of arch.Memory.
type Memory struct {
	Name           string   `json:"name"`
	CapacityBytes  int64    `json:"capacityBytes"`
	DoubleBuffered bool     `json:"doubleBuffered,omitempty"`
	Serves         []string `json:"serves"`
	Ports          []Port   `json:"ports"`
	// PortOf maps access names ("W:rd", "O:wr") to port names (optional).
	PortOf map[string]string `json:"portOf,omitempty"`
}

// Arch is the JSON form of arch.Arch.
type Arch struct {
	Name      string              `json:"name"`
	MACs      int64               `json:"macs"`
	ArrayRows int                 `json:"arrayRows,omitempty"`
	ArrayCols int                 `json:"arrayCols,omitempty"`
	Memories  []Memory            `json:"memories"`
	Chains    map[string][]string `json:"chains"` // operand name -> memory names
	// Combine: "max" (concurrent, default) or "sum" (sequential).
	Combine string `json:"combine,omitempty"`
}

func parseDir(s string) (arch.PortDir, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "R":
		return arch.Read, nil
	case "W":
		return arch.Write, nil
	case "RW":
		return arch.ReadWrite, nil
	}
	return 0, fmt.Errorf("config: unknown port direction %q", s)
}

// ToArch converts the JSON form into a normalized, validated arch.Arch.
func (a *Arch) ToArch() (*arch.Arch, error) {
	out := &arch.Arch{
		Name:      a.Name,
		MACs:      a.MACs,
		ArrayRows: a.ArrayRows,
		ArrayCols: a.ArrayCols,
	}
	switch strings.ToLower(a.Combine) {
	case "", "max", "concurrent":
		out.Combine = arch.Concurrent
	case "sum", "sequential":
		out.Combine = arch.Sequential
	default:
		return nil, fmt.Errorf("config: unknown combine mode %q", a.Combine)
	}
	for _, m := range a.Memories {
		mem := &arch.Memory{
			Name:           m.Name,
			CapacityBits:   m.CapacityBytes * 8,
			DoubleBuffered: m.DoubleBuffered,
		}
		for _, s := range m.Serves {
			op, err := loops.ParseOperand(s)
			if err != nil {
				return nil, fmt.Errorf("config: memory %q: %w", m.Name, err)
			}
			mem.Serves = append(mem.Serves, op)
		}
		portIdx := map[string]int{}
		for _, p := range m.Ports {
			dir, err := parseDir(p.Dir)
			if err != nil {
				return nil, fmt.Errorf("config: memory %q: %w", m.Name, err)
			}
			portIdx[p.Name] = len(mem.Ports)
			mem.Ports = append(mem.Ports, arch.Port{Name: p.Name, Dir: dir, BWBits: p.BWBits})
		}
		if len(m.PortOf) > 0 {
			mem.PortOf = map[arch.Access]int{}
			for accName, portName := range m.PortOf {
				acc, err := parseAccess(accName)
				if err != nil {
					return nil, fmt.Errorf("config: memory %q: %w", m.Name, err)
				}
				idx, ok := portIdx[portName]
				if !ok {
					return nil, fmt.Errorf("config: memory %q: access %s names unknown port %q", m.Name, accName, portName)
				}
				mem.PortOf[acc] = idx
			}
		}
		out.Memories = append(out.Memories, mem)
	}
	for opName, chain := range a.Chains {
		op, err := loops.ParseOperand(opName)
		if err != nil {
			return nil, err
		}
		out.Chain[op] = append([]string(nil), chain...)
	}
	if err := out.Normalize(); err != nil {
		return nil, err
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseAccess parses "W:rd" / "O:wr" style access names.
func parseAccess(s string) (arch.Access, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return arch.Access{}, fmt.Errorf("config: bad access %q (want e.g. \"W:rd\")", s)
	}
	op, err := loops.ParseOperand(parts[0])
	if err != nil {
		return arch.Access{}, err
	}
	switch strings.ToLower(parts[1]) {
	case "rd", "r", "read":
		return arch.Access{Operand: op, Write: false}, nil
	case "wr", "w", "write":
		return arch.Access{Operand: op, Write: true}, nil
	}
	return arch.Access{}, fmt.Errorf("config: bad access direction in %q", s)
}

// FromArch converts an arch.Arch into its JSON form.
func FromArch(a *arch.Arch) Arch {
	out := Arch{
		Name:      a.Name,
		MACs:      a.MACs,
		ArrayRows: a.ArrayRows,
		ArrayCols: a.ArrayCols,
		Chains:    map[string][]string{},
		Combine:   a.Combine.String(),
	}
	for _, m := range a.Memories {
		mem := Memory{
			Name:           m.Name,
			CapacityBytes:  m.CapacityBits / 8,
			DoubleBuffered: m.DoubleBuffered,
		}
		for _, op := range m.Serves {
			mem.Serves = append(mem.Serves, op.String())
		}
		for _, p := range m.Ports {
			mem.Ports = append(mem.Ports, Port{Name: p.Name, Dir: p.Dir.String(), BWBits: p.BWBits})
		}
		out.Memories = append(out.Memories, mem)
	}
	for _, op := range loops.AllOperands {
		out.Chains[op.String()] = append([]string(nil), a.Chain[op]...)
	}
	return out
}

// LoopJSON is one loop of a mapping's nest.
type LoopJSON struct {
	Dim  string `json:"dim"`
	Size int64  `json:"size"`
}

// Mapping is the JSON form of mapping.Mapping.
type Mapping struct {
	Spatial  []LoopJSON       `json:"spatial"`
	Temporal []LoopJSON       `json:"temporal"` // innermost first
	Bounds   map[string][]int `json:"bounds"`   // operand -> per-level boundaries
}

func toNest(ls []LoopJSON) (loops.Nest, error) {
	out := make(loops.Nest, 0, len(ls))
	for _, l := range ls {
		d, err := loops.ParseDim(l.Dim)
		if err != nil {
			return nil, err
		}
		out = append(out, loops.Loop{Dim: d, Size: l.Size})
	}
	return out, nil
}

func fromNest(n loops.Nest) []LoopJSON {
	out := make([]LoopJSON, len(n))
	for i, l := range n {
		out[i] = LoopJSON{Dim: l.Dim.String(), Size: l.Size}
	}
	return out
}

// ToMapping converts the JSON form to a mapping.Mapping (not yet validated
// against a layer/arch — call Mapping.Validate with those).
func (m *Mapping) ToMapping() (*mapping.Mapping, error) {
	sp, err := toNest(m.Spatial)
	if err != nil {
		return nil, err
	}
	tp, err := toNest(m.Temporal)
	if err != nil {
		return nil, err
	}
	out := &mapping.Mapping{Spatial: sp, Temporal: tp}
	for opName, b := range m.Bounds {
		op, err := loops.ParseOperand(opName)
		if err != nil {
			return nil, err
		}
		out.Bound[op] = append([]int(nil), b...)
	}
	return out, nil
}

// FromMapping converts a mapping.Mapping into its JSON form.
func FromMapping(m *mapping.Mapping) Mapping {
	out := Mapping{
		Spatial:  fromNest(m.Spatial),
		Temporal: fromNest(m.Temporal),
		Bounds:   map[string][]int{},
	}
	for _, op := range loops.AllOperands {
		out.Bounds[op.String()] = append([]int(nil), m.Bound[op]...)
	}
	return out
}

// Problem bundles a full evaluation input file.
type Problem struct {
	Layer   Layer    `json:"layer"`
	Arch    Arch     `json:"arch"`
	Mapping *Mapping `json:"mapping,omitempty"` // nil: search a mapping
}

// Marshal renders any config value as indented JSON.
func Marshal(v any) ([]byte, error) {
	return json.MarshalIndent(v, "", "  ")
}

// UnmarshalProblem parses a problem file.
func UnmarshalProblem(data []byte) (*Problem, error) {
	var p Problem
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return &p, nil
}
