package config

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/network"
)

// NetworkJSON is the JSON form of a whole-network workload.
type NetworkJSON struct {
	Name   string  `json:"name"`
	Layers []Layer `json:"layers"`
}

// ToNetwork converts the JSON form into a validated network.
func (n *NetworkJSON) ToNetwork() (*network.Network, error) {
	out := &network.Network{Name: n.Name}
	for i := range n.Layers {
		l, err := n.Layers[i].ToLayer()
		if err != nil {
			return nil, fmt.Errorf("config: network %q layer %d: %w", n.Name, i, err)
		}
		out.Layers = append(out.Layers, l)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// FromNetwork converts a network into its JSON form.
func FromNetwork(n *network.Network) NetworkJSON {
	out := NetworkJSON{Name: n.Name}
	for i := range n.Layers {
		out.Layers = append(out.Layers, FromLayer(&n.Layers[i]))
	}
	return out
}

// UnmarshalNetwork parses a network file.
func UnmarshalNetwork(data []byte) (*network.Network, error) {
	var nj NetworkJSON
	if err := json.Unmarshal(data, &nj); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return nj.ToNetwork()
}

// ResultJSON is the machine-readable summary of one evaluation, for
// downstream tooling (plotting, regression tracking).
type ResultJSON struct {
	Layer       string     `json:"layer"`
	Arch        string     `json:"arch"`
	Spatial     string     `json:"spatial"`
	Temporal    string     `json:"temporal"`
	CCTotal     float64    `json:"ccTotal"`
	CCIdeal     float64    `json:"ccIdeal"`
	CCSpatial   int64      `json:"ccSpatial"`
	TemporalSS  float64    `json:"temporalStall"`
	SpatialSS   float64    `json:"spatialStall"`
	Preload     float64    `json:"preload"`
	Offload     float64    `json:"offload"`
	Utilization float64    `json:"utilization"`
	Scenario    string     `json:"scenario"`
	Ports       []PortJSON `json:"ports"`
}

// PortJSON is one physical port's combined analysis.
type PortJSON struct {
	Port      string  `json:"port"`
	ReqBWRead float64 `json:"reqBWReadBits"`
	ReqBWWrit float64 `json:"reqBWWriteBits"`
	RealBW    int64   `json:"realBWBits"`
	SSComb    float64 `json:"ssComb"`
}

// FromResult converts an evaluation into its JSON summary.
func FromResult(p *core.Problem, r *core.Result) ResultJSON {
	out := ResultJSON{
		Layer:       p.Layer.String(),
		Arch:        p.Arch.Name,
		Spatial:     p.Mapping.Spatial.String(),
		Temporal:    p.Mapping.Temporal.String(),
		CCTotal:     r.CCTotal,
		CCIdeal:     r.CCIdeal,
		CCSpatial:   r.CCSpatial,
		TemporalSS:  r.SSOverall,
		SpatialSS:   r.SpatialStall,
		Preload:     r.Preload,
		Offload:     r.Offload,
		Utilization: r.Utilization,
		Scenario:    r.Scenario.String(),
	}
	for _, ps := range r.Ports {
		out.Ports = append(out.Ports, PortJSON{
			Port:      ps.MemName + "." + ps.PortName,
			ReqBWRead: ps.ReqBWReadBits,
			ReqBWWrit: ps.ReqBWWriteBits,
			RealBW:    ps.RealBWBits,
			SSComb:    ps.SSComb,
		})
	}
	return out
}
