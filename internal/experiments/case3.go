package experiments

import (
	"context"
	"fmt"

	"repro/internal/dse"
)

// Case3Result holds the three Fig. 8 panels: the bandwidth-unaware design
// space (a), and the bandwidth-aware spaces at low (b) and high (c) GB
// bandwidth.
type Case3Result struct {
	Unaware []dse.Point // Fig. 8(a): BW-unaware model at 128 bit/cycle
	Low     []dse.Point // Fig. 8(b): BW-aware, GB 128 bit/cycle
	High    []dse.Point // Fig. 8(c): BW-aware, GB 1024 bit/cycle
}

// Case3Options tunes the sweep size.
type Case3Options struct {
	// Quick shrinks the memory pool (for tests and benchmarks).
	Quick bool
	// MaxCandidates bounds the per-point mapping search.
	MaxCandidates int
	// NoReduce disables the symmetry-reduced enumeration in the per-point
	// searches; results are identical, only search time changes.
	NoReduce bool
	// NoSurrogate disables the surrogate-guided candidate ordering in the
	// per-point searches; results are identical, only search time changes.
	NoSurrogate bool
}

// Case3 reproduces Fig. 8: sweep the architecture pool under the three
// model configurations.
func Case3(opt *Case3Options) (*Case3Result, error) {
	if opt == nil {
		opt = &Case3Options{}
	}
	build := func(gbBW int64, aware bool) (*dse.Config, error) {
		cfg := dse.DefaultConfig(gbBW, aware)
		if opt.Quick {
			cfg.RegMults = []int64{4}
			cfg.WLBKiB = []int64{16, 64}
			cfg.ILBKiB = []int64{8, 32}
			cfg.MaxCandidates = 200
		}
		if opt.MaxCandidates > 0 {
			cfg.MaxCandidates = opt.MaxCandidates
		}
		cfg.NoReduce = opt.NoReduce
		cfg.NoSurrogate = opt.NoSurrogate
		return cfg, nil
	}
	out := &Case3Result{}
	for _, panel := range []struct {
		dst   *[]dse.Point
		gbBW  int64
		aware bool
	}{
		{&out.Unaware, 128, false},
		{&out.Low, 128, true},
		{&out.High, 1024, true},
	} {
		cfg, err := build(panel.gbBW, panel.aware)
		if err != nil {
			return nil, err
		}
		pts, err := dse.Sweep(context.Background(), cfg)
		if err != nil {
			return nil, fmt.Errorf("case3: sweep gbBW=%d aware=%v: %w", panel.gbBW, panel.aware, err)
		}
		*panel.dst = pts
	}
	return out, nil
}
