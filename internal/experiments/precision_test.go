package experiments

import "testing"

func TestPrecisionSweep(t *testing.T) {
	rows, err := PrecisionSweep(800)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byO := map[int]PrecisionRow{}
	for _, r := range rows {
		if r.Latency <= 0 || r.EnergyPJ <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
		if r.W == 8 && r.I == 8 {
			byO[r.O] = r
		}
	}
	// At fixed 8b W/I, widening the outputs raises both the drain stall
	// and the energy: the Case-2 mechanism.
	for _, pair := range [][2]int{{8, 16}, {16, 24}, {24, 32}} {
		lo, okLo := byO[pair[0]]
		hi, okHi := byO[pair[1]]
		if !okLo || !okHi {
			t.Fatalf("missing O=%d or O=%d rows", pair[0], pair[1])
		}
		if hi.Latency < lo.Latency {
			t.Errorf("O %d->%d bits lowered latency: %v -> %v",
				pair[0], pair[1], lo.Latency, hi.Latency)
		}
		if hi.EnergyPJ <= lo.EnergyPJ {
			t.Errorf("O %d->%d bits lowered energy", pair[0], pair[1])
		}
	}
	// The stall at O=32 clearly exceeds the stall at O=8.
	if byO[32].Stall <= byO[8].Stall {
		t.Errorf("stall not growing with O precision: %v vs %v", byO[32].Stall, byO[8].Stall)
	}
}

func TestCase2Grid(t *testing.T) {
	extents := []int64{16, 64}
	cells, err := Case2Grid(extents, &Case2Options{MaxCandidates: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.Real <= 0 || c.Unaware <= 0 || c.Discrepancy < 1-1e-9 {
			t.Errorf("degenerate cell %+v", c)
		}
	}
	// The small-C, big-BK corner must have a larger discrepancy than the
	// big-C corner (Fig. 7's monotone trend).
	byKey := map[[3]int64]GridCell{}
	for _, c := range cells {
		byKey[[3]int64{c.B, c.K, c.C}] = c
	}
	if byKey[[3]int64{64, 64, 16}].Discrepancy <= byKey[[3]int64{64, 64, 64}].Discrepancy {
		t.Errorf("discrepancy not falling with C: %v vs %v",
			byKey[[3]int64{64, 64, 16}].Discrepancy, byKey[[3]int64{64, 64, 64}].Discrepancy)
	}
	rows, cols, vals := DiscrepancyMatrix(cells, extents)
	if len(rows) != 4 || len(cols) != 2 || len(vals) != 4 || len(vals[0]) != 2 {
		t.Errorf("matrix shape wrong: %d x %d", len(rows), len(cols))
	}
}
