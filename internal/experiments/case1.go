package experiments

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/loops"
	"repro/internal/mapper"
	"repro/internal/mapping"
	"repro/internal/workload"
)

// Case1Side holds one mapping's evaluation in the Fig. 6 comparison.
type Case1Side struct {
	Name     string
	Mapping  *mapping.Mapping
	Result   *core.Result
	Energy   *energy.Breakdown
	PsumRT   int64 // partial-sum read-backs across the O-Reg/GB interface
	GBwrReq  float64
	GBrdReq  float64
	GBwrReal float64
}

// Case1Result is the full Fig. 6 reproduction.
type Case1Result struct {
	Layer        workload.Layer
	A, B         Case1Side
	MappingCount int // valid mappings in the bounded census (paper: 30240)
}

// Case1Mappings constructs the paper's two contrasting temporal mappings on
// the scaled-down case-study accelerator for the Case-1 layer
// (B=120, K=640, C=128, spatial K16|B8|C2, temporal extents B15 K40 C64):
//
//	Mapping A (input-reuse-first): [C32 | K5 | B15 | K8 | C2]
//	  W: LB=[C32 K5 B15];  I: LB=[C32 K5];  O: Reg=[C32]
//	  The K5 loop at I-LB level multiplies input reuse, but the trailing
//	  C2 above the O registers turns every output tile into a partial sum
//	  that round-trips through the GB.
//
//	Mapping B (output-stationary): [C32 | C2 | B15 | K40]
//	  W: LB=[C32 C2 B15];  I: LB=[C32 C2];  O: Reg=[C32 C2]
//	  All reduction loops sit at the O-Reg level: only final outputs ever
//	  reach the GB, at the cost of re-fetching inputs across the K sweep.
//
// Both have identical CC_ideal (38400 cycles) and identical weight-reuse
// distribution across memory levels.
func Case1Mappings() (a, b *mapping.Mapping) {
	sp := arch.CaseStudySpatial()
	a = &mapping.Mapping{
		Spatial: sp.Clone(),
		Temporal: loops.Nest{
			{Dim: loops.C, Size: 32},
			{Dim: loops.K, Size: 5},
			{Dim: loops.B, Size: 15},
			{Dim: loops.K, Size: 8},
			{Dim: loops.C, Size: 2},
		},
	}
	a.Bound[loops.W] = []int{0, 3, 5}
	a.Bound[loops.I] = []int{0, 2, 5}
	a.Bound[loops.O] = []int{1, 5}

	b = &mapping.Mapping{
		Spatial: sp.Clone(),
		Temporal: loops.Nest{
			{Dim: loops.C, Size: 32},
			{Dim: loops.C, Size: 2},
			{Dim: loops.B, Size: 15},
			{Dim: loops.K, Size: 40},
		},
	}
	b.Bound[loops.W] = []int{0, 3, 4}
	b.Bound[loops.I] = []int{0, 2, 4}
	b.Bound[loops.O] = []int{2, 4}
	return a, b
}

// Case1 reproduces Fig. 6: evaluate Mapping A and Mapping B on the same
// layer and hardware, and run a bounded mapping census for the space size.
func Case1(census bool) (*Case1Result, error) {
	l := workload.Case1Layer()
	hw := arch.CaseStudy()
	ma, mb := Case1Mappings()

	res := &Case1Result{Layer: l}
	for _, s := range []struct {
		name string
		m    *mapping.Mapping
		out  *Case1Side
	}{{"A", ma, &res.A}, {"B", mb, &res.B}} {
		if err := s.m.Validate(&l, hw); err != nil {
			return nil, fmt.Errorf("case1: mapping %s invalid: %w", s.name, err)
		}
		p := &core.Problem{Layer: &l, Arch: hw, Mapping: s.m}
		r, err := core.Evaluate(p)
		if err != nil {
			return nil, fmt.Errorf("case1: mapping %s: %w", s.name, err)
		}
		e, err := energy.Evaluate(p, nil)
		if err != nil {
			return nil, fmt.Errorf("case1: mapping %s energy: %w", s.name, err)
		}
		side := Case1Side{Name: s.name, Mapping: s.m, Result: r, Energy: e}
		tr := s.m.OutputTrafficAt(0)
		side.PsumRT = tr.ReadBacks
		for _, ps := range r.Ports {
			if ps.MemName == "GB" && ps.PortName == "wr" {
				side.GBwrReq = ps.ReqBWWriteBits
				side.GBwrReal = float64(ps.RealBWBits)
			}
			if ps.MemName == "GB" && ps.PortName == "rd" {
				side.GBrdReq = ps.ReqBWReadBits
			}
		}
		*s.out = side
	}

	if census {
		_, stats, err := mapper.Enumerate(context.Background(), &l, hw, &mapper.Options{
			Spatial:       arch.CaseStudySpatial(),
			BWAware:       true,
			MaxCandidates: 40000,
			// The census counts MAPPINGS — the paper's mapping-space size —
			// not model-equivalence classes, so keep the full space.
			NoReduce: true,
		})
		if err != nil {
			return nil, fmt.Errorf("case1 census: %w", err)
		}
		res.MappingCount = stats.Valid
	}
	return res, nil
}
