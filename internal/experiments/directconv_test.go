package experiments

import (
	"context"
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/mapper"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestDirectConvRowStationary exercises the model's generality claim: a
// direct (non-Im2Col) 7-dimensional convolution on the row-stationary
// dataflow, cross-validated against the reference simulator. This path
// uses the input operand's partially relevant sliding-window dimensions
// (OY/FY spatial) that the matmul experiments never touch.
func TestDirectConvRowStationary(t *testing.T) {
	hw := arch.RowStationary()
	sp := arch.RowStationarySpatial()
	layers := []workload.Layer{
		workload.NewConv2D("rs1", 1, 16, 8, 28, 28, 3, 3),
		workload.NewConv2D("rs2", 1, 32, 16, 14, 14, 3, 3),
	}
	for _, l := range layers {
		layer := l
		best, _, err := mapper.Best(context.Background(), &layer, hw, &mapper.Options{
			Spatial: sp, BWAware: true, MaxCandidates: 4000,
		})
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		// Spatial OY x FY must enlarge the input tile via the sliding
		// window: at the spad level the input rows held are
		// (OY-1)+FY = 16 per tile column.
		iTile := best.Mapping.MemData(loops.I, 0, layer.Strides)
		if iTile%16 != 0 {
			t.Errorf("%s: input tile %d not shaped by the 16-row halo", l.Name, iTile)
		}
		p := &core.Problem{Layer: &layer, Arch: hw, Mapping: best.Mapping}
		sr, err := sim.Simulate(p, nil)
		if err != nil {
			t.Fatalf("%s: sim: %v", l.Name, err)
		}
		acc := 1 - math.Abs(best.Result.CCTotal-float64(sr.Cycles))/float64(sr.Cycles)
		if acc < 0.85 {
			t.Errorf("%s: direct-conv accuracy %.3f < 0.85 (model %.0f, sim %d)",
				l.Name, acc, best.Result.CCTotal, sr.Cycles)
		}
	}
}

// TestDirectConvBeatsNothingBurned sanity-checks that direct mapping and
// Im2Col mapping of the same conv agree on total MACs and that both are
// evaluable on their respective architectures.
func TestDirectVsIm2ColMACs(t *testing.T) {
	conv := workload.NewConv2D("c", 1, 16, 8, 28, 28, 3, 3)
	mm := workload.Im2Col(conv)
	if conv.TotalMACs() != mm.TotalMACs() {
		t.Fatal("lowering changed MAC count")
	}
	// Direct conv on row-stationary.
	rs := arch.RowStationary()
	dBest, _, err := mapper.Best(context.Background(), &conv, rs, &mapper.Options{
		Spatial: arch.RowStationarySpatial(), BWAware: true, MaxCandidates: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Im2Col on the case-study matmul engine.
	cs := arch.CaseStudy()
	mBest, _, err := mapper.Best(context.Background(), &mm, cs, &mapper.Options{
		Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dBest.Result.CCTotal <= 0 || mBest.Result.CCTotal <= 0 {
		t.Error("non-positive latency")
	}
	// The Im2Col input tensor is strictly larger (duplicated pixels).
	if mm.OperandBits(loops.I) <= conv.OperandBits(loops.I) {
		t.Error("Im2Col did not duplicate inputs")
	}
}
