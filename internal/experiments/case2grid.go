package experiments

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/mapper"
	"repro/internal/par"
	"repro/internal/workload"
)

// GridCell is one (B, K, C) point of the full Case-2 grid.
type GridCell struct {
	B, K, C     int64
	Real        float64
	Unaware     float64
	Discrepancy float64
}

// Case2Grid runs the full Fig. 7 axis: every (B, K, C) combination from the
// given extents on the fixed case-study accelerator, with per-point mapping
// optimization, in parallel. It returns cells in row-major (B-major, then
// K, then C) order. A nil opt uses the defaults; the grid's per-point
// search budget default is 1500 (smaller than Case2's — the grid has 64
// points).
func Case2Grid(extents []int64, opt *Case2Options) ([]GridCell, error) {
	if len(extents) == 0 {
		extents = []int64{8, 32, 128, 512}
	}
	if opt == nil {
		opt = &Case2Options{}
	}
	maxCandidates := opt.MaxCandidates
	if maxCandidates <= 0 {
		maxCandidates = 1500
	}
	hw := arch.CaseStudy()
	sp := arch.CaseStudySpatial()

	var cells []GridCell
	for _, b := range extents {
		for _, k := range extents {
			for _, c := range extents {
				cells = append(cells, GridCell{B: b, K: k, C: c})
			}
		}
	}

	errs := make([]error, len(cells))
	par.ForEach(len(cells), func(i int) {
		cell := &cells[i]
		l := workload.NewMatMul(
			fmt.Sprintf("(%d,%d,%d)", cell.B, cell.K, cell.C),
			cell.B, cell.K, cell.C)
		best, _, err := mapper.BestCached(context.Background(), &l, hw, &mapper.Options{
			Spatial: sp, BWAware: true, Pow2Splits: true,
			MaxCandidates: maxCandidates, NoReduce: opt.NoReduce, NoSurrogate: opt.NoSurrogate,
		})
		if err != nil {
			errs[i] = fmt.Errorf("case2grid %s: %w", l.Name, err)
			return
		}
		un, err := core.EvaluateBWUnaware(&core.Problem{
			Layer: &l, Arch: hw, Mapping: best.Mapping,
		})
		if err != nil {
			errs[i] = err
			return
		}
		cell.Real = best.Result.CCTotal
		cell.Unaware = un.CCTotal
		cell.Discrepancy = cell.Real / cell.Unaware
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return cells, nil
}

// DiscrepancyMatrix reshapes grid cells into a (B,K)-rows x C-columns
// matrix of discrepancies for heatmap rendering.
func DiscrepancyMatrix(cells []GridCell, extents []int64) (rows []string, cols []string, vals [][]float64) {
	byKey := map[[3]int64]GridCell{}
	for _, c := range cells {
		byKey[[3]int64{c.B, c.K, c.C}] = c
	}
	for _, c := range extents {
		cols = append(cols, fmt.Sprint(c))
	}
	for _, b := range extents {
		for _, k := range extents {
			rows = append(rows, fmt.Sprintf("B%d K%d", b, k))
			var row []float64
			for _, c := range extents {
				row = append(row, byKey[[3]int64{b, k, c}].Discrepancy)
			}
			vals = append(vals, row)
		}
	}
	return rows, cols, vals
}
