package experiments

import (
	"context"
	"fmt"

	"repro/internal/dse"
	"repro/internal/mapper"
)

// BWPoint is one global-buffer bandwidth sample of the sweep.
type BWPoint struct {
	GBBWBits int64
	// Latency per array size (best design + mapping at this bandwidth).
	Latency map[string]float64
	// Winner is the array size with the lowest latency.
	Winner string
}

// BWSweep quantifies the paper's closing observation (Section V-C): how the
// array-size verdict changes with global-buffer bandwidth, up to the
// >1024 bit/cycle region that 3D SRAM-on-logic stacking enables. For each
// bandwidth it evaluates the best fixed memory configuration per array.
func BWSweep(bws []int64, maxCandidates int) ([]BWPoint, error) {
	if len(bws) == 0 {
		bws = []int64{64, 128, 256, 512, 1024, 2048, 4096}
	}
	if maxCandidates <= 0 {
		maxCandidates = 300
	}
	var out []BWPoint
	for _, bw := range bws {
		cfg := dse.DefaultConfig(bw, true)
		cfg.RegMults = []int64{4}
		cfg.WLBKiB = []int64{32}
		cfg.ILBKiB = []int64{16}
		cfg.MaxCandidates = maxCandidates
		pts, err := dse.Sweep(context.Background(), cfg)
		if err != nil {
			return nil, fmt.Errorf("bwsweep at %d: %w", bw, err)
		}
		best := dse.BestPerArray(pts)
		p := BWPoint{GBBWBits: bw, Latency: map[string]float64{}}
		winLat := 0.0
		for arr, pt := range best {
			p.Latency[arr] = pt.Latency
			if p.Winner == "" || pt.Latency < winLat {
				p.Winner, winLat = arr, pt.Latency
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// CrossoverBW returns the lowest swept bandwidth at which the given array
// size becomes the overall winner, or -1 if it never does.
func CrossoverBW(points []BWPoint, array string) int64 {
	for _, p := range points {
		if p.Winner == array {
			return p.GBBWBits
		}
	}
	return -1
}

// MapperBudgetForTests exposes the default mapper options used per point,
// for documentation in EXPERIMENTS.md.
func MapperBudgetForTests() mapper.Options {
	return mapper.Options{BWAware: true, Pow2Splits: true, MaxCandidates: 300}
}
