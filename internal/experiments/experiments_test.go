package experiments

import (
	"testing"

	"repro/internal/dse"
	"repro/internal/loops"
	"repro/internal/workload"
)

// TestValidationAccuracy asserts the Fig. 5(c) headline: high average
// model-vs-simulator accuracy across the workload suite. The paper reports
// 94.3% against RTL; we require >= 85% against the reference simulator on a
// reduced-budget run (the full run in cmd/validate reaches 98.4%).
func TestValidationAccuracy(t *testing.T) {
	rows, avg, err := Validation(&ValidationOptions{Layers: 6, MaxCandidates: 6000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The reduced search budget costs a little mapping quality (and hence
	// model-sim agreement on stalls); the full-budget run in cmd/validate
	// averages 98.4%.
	if avg < 0.85 {
		t.Errorf("average accuracy %.3f < 0.85", avg)
	}
	for _, r := range rows {
		if r.Accuracy < 0.6 || r.Accuracy > 1.0 {
			t.Errorf("%s accuracy %.3f out of band", r.Layer, r.Accuracy)
		}
		if r.ModelCC <= 0 || r.SimCC <= 0 {
			t.Errorf("%s non-positive latencies", r.Layer)
		}
	}
}

// TestCase1Shape asserts the Fig. 6 findings: identical ideal latency,
// Mapping B substantially faster thanks to lower temporal stall, Mapping A
// at least matching B on energy, and the partial-sum round trips present
// only in A.
func TestCase1Shape(t *testing.T) {
	r, err := Case1(false)
	if err != nil {
		t.Fatal(err)
	}
	if r.A.Result.CCIdeal != 38400 || r.B.Result.CCIdeal != 38400 {
		t.Errorf("CC_ideal = %v/%v, want 38400 (paper Fig. 6)", r.A.Result.CCIdeal, r.B.Result.CCIdeal)
	}
	if r.A.Result.CCSpatial != r.B.Result.CCSpatial {
		t.Error("A and B differ in spatial cycles")
	}
	// B at least 15% lower latency (paper: 30%).
	if r.B.Result.CCTotal > 0.85*r.A.Result.CCTotal {
		t.Errorf("B not enough faster: A %v vs B %v", r.A.Result.CCTotal, r.B.Result.CCTotal)
	}
	if r.B.Result.SSOverall >= r.A.Result.SSOverall {
		t.Error("B does not have lower temporal stall")
	}
	if r.B.Result.Utilization <= r.A.Result.Utilization {
		t.Error("B does not have better utilization")
	}
	// A saves energy (paper: 5%).
	if r.A.Energy.TotalPJ >= r.B.Energy.TotalPJ {
		t.Errorf("A not energy-better: %v vs %v", r.A.Energy.TotalPJ, r.B.Energy.TotalPJ)
	}
	// Partial sums round-trip in A only.
	if r.A.PsumRT == 0 || r.B.PsumRT != 0 {
		t.Errorf("psum readbacks A=%d B=%d", r.A.PsumRT, r.B.PsumRT)
	}
	// Both exceed the GB write RealBW (Fig. 6(f): 3072 vs 128 bit/cycle).
	if r.A.GBwrReq <= r.A.GBwrReal || r.B.GBwrReq <= r.B.GBwrReal {
		t.Error("GB write ReqBW does not exceed RealBW")
	}
	if r.A.GBwrReq != 3072 {
		t.Errorf("A GB write ReqBW = %v, want 3072 bit/cycle", r.A.GBwrReq)
	}
	// A's psum traffic needs far more GB read bandwidth than B's.
	if r.A.GBrdReq < 4*r.B.GBrdReq {
		t.Errorf("A GB read ReqBW %v not >> B %v", r.A.GBrdReq, r.B.GBrdReq)
	}
}

func TestCase1WeightTrafficIdentical(t *testing.T) {
	// "W's data reuse distribution across memory levels in these two
	// mappings are the same": total W elements crossing each interface
	// match between A and B.
	r, err := Case1(false)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Layer.Strides
	for lvl := 0; lvl < 2; lvl++ {
		ta := r.A.Mapping.MemData(loops.W, lvl, st) * r.A.Mapping.Periods(loops.W, lvl)
		tb := r.B.Mapping.MemData(loops.W, lvl, st) * r.B.Mapping.Periods(loops.W, lvl)
		if ta != tb {
			t.Errorf("W traffic at level %d: A %d vs B %d", lvl, ta, tb)
		}
	}
}

func TestCase1Census(t *testing.T) {
	if testing.Short() {
		t.Skip("census is slow")
	}
	r, err := Case1(true)
	if err != nil {
		t.Fatal(err)
	}
	if r.MappingCount < 1000 {
		t.Errorf("mapping census %d implausibly small", r.MappingCount)
	}
}

// TestCase2Shape asserts the Fig. 7 findings.
func TestCase2Shape(t *testing.T) {
	rows, err := Case2(&Case2Options{MaxCandidates: 2500})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Case2Row{}
	for _, r := range rows {
		byName[r.Name] = r
		// Breakdown adds up.
		sum := float64(0)
		sum += r.Ideal + r.SpatialStall + r.TemporalStall + r.Preload + r.Offload
		if d := sum - r.Real; d > 1 || d < -1 {
			t.Errorf("%s breakdown %v != total %v", r.Name, sum, r.Real)
		}
		// Ideal latency tracks MAC count exactly.
		if r.Ideal != float64(r.MACs)/256 {
			t.Errorf("%s ideal %v vs MACs %d", r.Name, r.Ideal, r.MACs)
		}
		if r.Real < r.Unaware-1e-9 {
			t.Errorf("%s full model below baseline", r.Name)
		}
	}

	// Output-dominant, small-C layers show large discrepancy (paper: 7.4x
	// at (128,128,8), 9.2x at (512,512,8)); reduction-heavy layers are
	// compute-bound and converge.
	small := byName["(128,128,8)"]
	big := byName["(512,512,8)"]
	deep := byName["(128,128,128)"]
	if small.Discrepancy < 2 {
		t.Errorf("(128,128,8) discrepancy %.2f, want >= 2", small.Discrepancy)
	}
	if big.Discrepancy < small.Discrepancy {
		t.Errorf("(512,512,8) discrepancy %.2f not >= (128,128,8) %.2f", big.Discrepancy, small.Discrepancy)
	}
	if deep.Discrepancy > 1.2 {
		t.Errorf("(128,128,128) discrepancy %.2f, want ~1", deep.Discrepancy)
	}
	// Real latency follows total data size: the biggest-data layer has
	// the biggest real latency among same-MAC layers.
	if big.Real <= deep.Real*(float64(big.TotalBits)/float64(deep.TotalBits))/10 {
		t.Error("real latency does not track data size")
	}
}

// TestCase3Shape asserts the Fig. 8 findings on the quick pool.
func TestCase3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	r, err := Case3(&Case3Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// (a) Unaware: within one array size the COMPUTE latency is flat;
	// only the preload/offload edges vary with memory size (larger
	// buffers take longer to fill), so the min-area design looks
	// (near-)optimal — larger memories appear to buy nothing. The spread
	// bound is loose because preload is a visible fraction of this small
	// workload; the min-area check below is the meaningful assertion.
	for arr, s := range arraySpread(r.Unaware) {
		if s > 1.0 {
			t.Errorf("unaware: array %s latency spread %.3f, want small", arr, s)
		}
	}
	minArea := map[string]dse.Point{}
	for _, p := range r.Unaware {
		if !p.Valid {
			continue
		}
		if cur, ok := minArea[p.Array]; !ok || p.Areamm2 < cur.Areamm2 {
			minArea[p.Array] = p
		}
	}
	for arr, p := range minArea {
		best := dse.BestPerArray(r.Unaware)[arr]
		if p.Latency > 1.1*best.Latency {
			t.Errorf("unaware: %s min-area design %.0f cc not near best %.0f cc", arr, p.Latency, best.Latency)
		}
	}
	// (b) Aware at low BW: memory configuration matters.
	spreadLow := arraySpread(r.Low)
	any := false
	for _, s := range spreadLow {
		if s > 0.05 {
			any = true
		}
	}
	if !any {
		t.Error("aware low-BW: no array shows latency spread across memory configs")
	}
	// Aware latencies are never below unaware ones for the same design.
	bestU := dse.BestPerArray(r.Unaware)
	bestL := dse.BestPerArray(r.Low)
	bestH := dse.BestPerArray(r.High)
	for arr := range bestU {
		if bestL[arr].Latency < bestU[arr].Latency-1e-9 {
			t.Errorf("%s: aware low-BW faster than unaware", arr)
		}
		// (c) More GB bandwidth never hurts.
		if bestH[arr].Latency > bestL[arr].Latency+1e-9 {
			t.Errorf("%s: 1024b GB slower than 128b", arr)
		}
	}
	// The paper's array-size crossover: at low GB bandwidth the 32x32
	// array outperforms the 64x64; only high bandwidth restores the large
	// array's advantage (Fig. 8(b) vs (c)).
	if bestL["32x32"].Latency >= bestL["64x64"].Latency {
		t.Errorf("low BW: 32x32 (%v) does not beat 64x64 (%v)",
			bestL["32x32"].Latency, bestL["64x64"].Latency)
	}
	if bestH["64x64"].Latency >= bestH["32x32"].Latency {
		t.Error("high BW: 64x64 not faster than 32x32")
	}
	// The unaware model, blind to all this, always prefers the big array.
	if bestU["64x64"].Latency >= bestU["32x32"].Latency {
		t.Error("unaware: 64x64 not 'faster' than 32x32")
	}
	// Pareto front is sane: strictly improving latency with area.
	front := dse.Pareto(r.Low)
	for i := 1; i < len(front); i++ {
		if front[i].Latency >= front[i-1].Latency || front[i].Areamm2 <= front[i-1].Areamm2 {
			t.Error("Pareto front not strictly improving")
		}
	}
}

// arraySpread returns, per array size, (max-min)/min of valid latencies.
func arraySpread(pts []dse.Point) map[string]float64 {
	minL := map[string]float64{}
	maxL := map[string]float64{}
	for _, p := range pts {
		if !p.Valid {
			continue
		}
		if v, ok := minL[p.Array]; !ok || p.Latency < v {
			minL[p.Array] = p.Latency
		}
		if v, ok := maxL[p.Array]; !ok || p.Latency > v {
			maxL[p.Array] = p.Latency
		}
	}
	out := map[string]float64{}
	for arr := range minL {
		out[arr] = (maxL[arr] - minL[arr]) / minL[arr]
	}
	return out
}

// The Case-2 sweep's canonical points must exist in the suite (guards the
// workload generator against drift).
func TestCase2SweepCoversPaperPoints(t *testing.T) {
	names := map[string]bool{}
	for _, l := range workload.Case2Sweep() {
		names[l.Name] = true
	}
	for _, want := range []string{"(128,128,8)", "(512,512,8)", "(128,128,128)"} {
		if !names[want] {
			t.Errorf("sweep missing %s", want)
		}
	}
}
