// Package experiments implements every experiment of the paper's evaluation
// as a reusable, deterministic function: the test-chip validation of Fig. 5
// and the three case studies of Figs. 6, 7 and 8. The cmd/ binaries print
// the results; the benchmark harness re-runs them; tests assert the paper's
// qualitative findings (who wins, by roughly what factor, and where the
// crossovers fall).
package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/mapper"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ValidationRow compares the analytical model against the cycle-level
// reference simulator for one layer (Fig. 5(c)).
type ValidationRow struct {
	Layer    string
	ModelCC  float64
	SimCC    int64
	Accuracy float64 // 1 - |model-sim|/sim
	Util     float64 // modeled MAC array utilization
	Stalled  bool    // whether the layer is temporal-stall-bound
}

// ValidationOptions tunes the Fig. 5(c) run.
type ValidationOptions struct {
	// Layers limits the suite (0 = all).
	Layers int
	// MaxCandidates bounds the per-layer mapping search (default 20000).
	MaxCandidates int
}

// Validation reproduces Fig. 5(c): run every hand-tracking layer through
// Im2Col, choose the best mapping on the in-house accelerator, then compare
// the analytical latency against the reference simulator. Returns the
// per-layer rows and the average accuracy.
func Validation(opt *ValidationOptions) ([]ValidationRow, float64, error) {
	if opt == nil {
		opt = &ValidationOptions{}
	}
	maxCand := opt.MaxCandidates
	if maxCand <= 0 {
		maxCand = 20000
	}
	a := arch.InHouse()
	sp := arch.InHouseSpatial()
	suite := workload.HandTrackingSuite()
	if opt.Layers > 0 && opt.Layers < len(suite) {
		suite = suite[:opt.Layers]
	}

	var rows []ValidationRow
	var sum float64
	for _, l := range suite {
		mm := workload.Im2Col(l)
		best, _, err := mapper.BestCached(context.Background(), &mm, a, &mapper.Options{
			Spatial: sp, BWAware: true, MaxCandidates: maxCand,
		})
		if err != nil {
			return nil, 0, fmt.Errorf("validation: %s: %w", l.Name, err)
		}
		p := &core.Problem{Layer: &mm, Arch: a, Mapping: best.Mapping}
		sr, err := sim.Simulate(p, nil)
		if err != nil {
			return nil, 0, fmt.Errorf("validation: %s: %w", l.Name, err)
		}
		acc := 1 - math.Abs(best.Result.CCTotal-float64(sr.Cycles))/float64(sr.Cycles)
		rows = append(rows, ValidationRow{
			Layer:    l.Name,
			ModelCC:  best.Result.CCTotal,
			SimCC:    sr.Cycles,
			Accuracy: acc,
			Util:     best.Result.Utilization,
			Stalled:  best.Result.SSOverall > 0,
		})
		sum += acc
	}
	return rows, sum / float64(len(rows)), nil
}
