package experiments

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/mapper"
	"repro/internal/workload"
)

// PrecisionRow is one operand-precision configuration of the sweep.
type PrecisionRow struct {
	W, I, O  int // bits
	Latency  float64
	Stall    float64
	EnergyPJ float64
}

// PrecisionSweep quantifies the paper's Case-2 aside that the 24b output
// precision (vs 8b W/I) is what pressures the GB write path: it evaluates
// an output-dominant layer across operand precisions on the fixed
// case-study accelerator, re-optimizing the mapping per point.
func PrecisionSweep(maxCandidates int) ([]PrecisionRow, error) {
	if maxCandidates <= 0 {
		maxCandidates = 2000
	}
	hw := arch.CaseStudy()
	sp := arch.CaseStudySpatial()
	configs := []workload.Precision{
		{W: 4, I: 4, O: 16},
		{W: 8, I: 8, O: 8},
		{W: 8, I: 8, O: 16},
		{W: 8, I: 8, O: 24}, // the paper's configuration
		{W: 8, I: 8, O: 32},
		{W: 16, I: 16, O: 32},
	}
	var rows []PrecisionRow
	for _, prec := range configs {
		l := workload.NewMatMul(fmt.Sprintf("w%d i%d o%d", prec.W, prec.I, prec.O), 128, 128, 8)
		l.Precision = prec
		best, _, err := mapper.BestCached(context.Background(), &l, hw, &mapper.Options{
			Spatial: sp, BWAware: true, MaxCandidates: maxCandidates,
		})
		if err != nil {
			return nil, fmt.Errorf("precision sweep %s: %w", l.Name, err)
		}
		row := PrecisionRow{
			W: prec.W, I: prec.I, O: prec.O,
			Latency: best.Result.CCTotal,
			Stall:   best.Result.SSOverall,
		}
		p := &core.Problem{Layer: &l, Arch: hw, Mapping: best.Mapping}
		if eb, err := energy.Evaluate(p, nil); err == nil {
			row.EnergyPJ = eb.TotalPJ
		}
		rows = append(rows, row)
	}
	return rows, nil
}
