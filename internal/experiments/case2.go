package experiments

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/mapper"
	"repro/internal/workload"
)

// Case2Row is one workload point of Fig. 7: the layer's operand profile
// (panel a) and its latency breakdown under the best mapping (panel b),
// plus the bandwidth-unaware estimate (the paper's cyan dotted line).
type Case2Row struct {
	Name      string
	MACs      int64
	WBits     int64
	IBits     int64
	OBits     int64
	TotalBits int64

	Ideal         float64 // CC_ideal
	Preload       float64
	SpatialStall  float64
	TemporalStall float64
	Offload       float64
	Real          float64 // full model CC_total
	Unaware       float64 // BW-unaware CC_total
	Discrepancy   float64 // Real / Unaware
	OutputStat    bool    // best mapping fully output-stationary at O-Reg
}

// Case2Options tunes the sweep.
type Case2Options struct {
	MaxCandidates int // per-layer mapping search budget (default 20000)
	// NoReduce disables the symmetry-reduced enumeration in the per-layer
	// searches; results are identical, only search time changes.
	NoReduce bool
	// NoSurrogate disables the surrogate-guided candidate ordering in the
	// per-layer searches; results are identical, only search time changes.
	NoSurrogate bool
}

// Case2 reproduces Fig. 7: sweep the (B, K, C) layer grid on the fixed
// scaled-down accelerator, optimizing the mapping per layer, and report the
// operand profile and the latency breakdown.
func Case2(opt *Case2Options) ([]Case2Row, error) {
	if opt == nil {
		opt = &Case2Options{}
	}
	maxCand := opt.MaxCandidates
	if maxCand <= 0 {
		maxCand = 20000
	}
	hw := arch.CaseStudy()
	sp := arch.CaseStudySpatial()

	var rows []Case2Row
	for _, l := range workload.Case2Sweep() {
		layer := l
		best, _, err := mapper.BestCached(context.Background(), &layer, hw, &mapper.Options{
			Spatial: sp, BWAware: true, MaxCandidates: maxCand, NoReduce: opt.NoReduce, NoSurrogate: opt.NoSurrogate,
		})
		if err != nil {
			return nil, fmt.Errorf("case2: %s: %w", l.Name, err)
		}
		r := best.Result
		p := &core.Problem{Layer: &layer, Arch: hw, Mapping: best.Mapping}
		un, err := core.EvaluateBWUnaware(p)
		if err != nil {
			return nil, fmt.Errorf("case2: %s baseline: %w", l.Name, err)
		}
		tr := best.Mapping.OutputTrafficAt(0)
		rows = append(rows, Case2Row{
			Name:          l.Name,
			MACs:          l.TotalMACs(),
			WBits:         l.OperandBits(loops.W),
			IBits:         l.OperandBits(loops.I),
			OBits:         l.OperandBits(loops.O),
			TotalBits:     l.TotalDataBits(),
			Ideal:         r.CCIdeal,
			Preload:       r.Preload,
			SpatialStall:  r.SpatialStall,
			TemporalStall: r.SSOverall,
			Offload:       r.Offload,
			Real:          r.CCTotal,
			Unaware:       un.CCTotal,
			Discrepancy:   r.CCTotal / un.CCTotal,
			OutputStat:    tr.ReadBacks == 0,
		})
	}
	return rows, nil
}
