package experiments

import "testing"

// TestBWSweepShape asserts the bandwidth-dependence story of Section V-C:
// latency is monotonically non-increasing in GB bandwidth for every array
// size, the small array saturates first (extra bandwidth stops helping),
// and the 64x64 array only takes the lead at high bandwidth.
func TestBWSweepShape(t *testing.T) {
	points, err := BWSweep([]int64{128, 512, 2048}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	arrays := []string{"16x16", "32x32", "64x64"}
	for i := 1; i < len(points); i++ {
		for _, arr := range arrays {
			if points[i].Latency[arr] > points[i-1].Latency[arr]+1e-9 {
				t.Errorf("%s slower at %d than %d bit/cc", arr,
					points[i].GBBWBits, points[i-1].GBBWBits)
			}
		}
	}
	// Low BW: the 64x64 is not the winner; high BW: it is.
	if points[0].Winner == "64x64" {
		t.Errorf("64x64 already wins at %d bit/cc", points[0].GBBWBits)
	}
	if points[len(points)-1].Winner != "64x64" {
		t.Errorf("64x64 does not win at %d bit/cc (winner %s)",
			points[len(points)-1].GBBWBits, points[len(points)-1].Winner)
	}
	// The crossover helper agrees.
	if bw := CrossoverBW(points, "64x64"); bw <= 128 || bw > 2048 {
		t.Errorf("64x64 crossover at %d bit/cc out of band", bw)
	}
	// At the top bandwidth every array should be compute-bound rather
	// than drain-bound: the 64x64's latency improvement from low to high
	// BW must be large (it is the most bandwidth-hungry design).
	if gain := points[0].Latency["64x64"] / points[len(points)-1].Latency["64x64"]; gain < 1.5 {
		t.Errorf("64x64 gains only %.2fx from %d to %d bit/cc", gain,
			points[0].GBBWBits, points[len(points)-1].GBBWBits)
	}
}

func TestCrossoverBWNotFound(t *testing.T) {
	points := []BWPoint{{GBBWBits: 128, Winner: "32x32"}}
	if bw := CrossoverBW(points, "64x64"); bw != -1 {
		t.Errorf("phantom crossover %d", bw)
	}
}
