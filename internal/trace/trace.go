// Package trace renders memory-compute timeline diagrams in the style of
// the paper's Fig. 3 and Fig. 4: for each data transfer link, the periodic
// allowed-update window (the Mem Update Keep-Out Zone's complement), the
// actual transfer time at the real bandwidth, and the resulting stall or
// slack — as fixed-width ASCII, one character per cycle.
//
// Legend:
//
//	C  compute cycle                . keep-out (update forbidden)
//	=  allowed window, port idle    # transfer within the window
//	!  transfer overrun (stall)     |  period boundary
package trace

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Timeline renders one endpoint's first periods as two aligned rows: the
// compute row and the memory-update row. maxPeriods bounds the rendering;
// maxCycles truncates very long periods (0 = defaults 4 and 96).
func Timeline(e *core.Endpoint, maxPeriods, maxCycles int) string {
	if maxPeriods <= 0 {
		maxPeriods = 4
	}
	if maxCycles <= 0 {
		maxCycles = 96
	}
	periods := int(e.Z)
	if periods > maxPeriods {
		periods = maxPeriods
	}
	per := int(e.MemCC)
	need := int(e.XReal + 0.999)
	start := int(e.Window.Start)
	win := int(e.Window.Active)

	overrunPer := need - win // transfer cycles spilling past each window
	var comp, mem strings.Builder
	cycles := 0
	for p := 0; p < periods && cycles < maxCycles; p++ {
		if p > 0 {
			comp.WriteByte('|')
			mem.WriteByte('|')
		}
		for c := 0; c < per && cycles < maxCycles; c++ {
			comp.WriteByte('C')
			inWin := c >= start && c < start+win
			switch {
			case p > 0 && c < overrunPer:
				mem.WriteByte('!') // previous window's transfer overruns
			case inWin && c-start < need:
				mem.WriteByte('#')
			case inWin:
				mem.WriteByte('=')
			default:
				mem.WriteByte('.')
			}
			cycles++
		}
	}
	overrun := overrunPer
	label := "no stall"
	if overrun > 0 {
		label = fmt.Sprintf("stall %d cc/period", overrun)
	} else if need < win {
		label = fmt.Sprintf("slack %d cc/period", win-need)
	}
	return fmt.Sprintf("%s  (X_REQ=%d, X_REAL=%.1f, %s)\n  compute %s\n  memory  %s\n",
		e.Label(), e.XReq, e.XReal, label, comp.String(), mem.String())
}

// PortSummary renders one physical port's links with their windows and
// stalls — the Fig. 4 "combine" view.
func PortSummary(ps *core.PortStall) string {
	var b strings.Builder
	fmt.Fprintf(&b, "port %s.%s  RealBW %d bit/cc  MUW_comb %.0f  SS_comb %+.0f\n",
		ps.MemName, ps.PortName, ps.RealBWBits, ps.MUWComb, ps.SSComb)
	for _, e := range ps.Endpoints {
		fmt.Fprintf(&b, "  %-26s P=%-6d X_REQ=%-5d X_REAL=%-7.1f Z=%-6d SS_u=%+.0f\n",
			e.Label(), e.MemCC, e.XReq, e.XReal, e.Z, e.SSu)
	}
	return b.String()
}

// ResultOverview renders every stalled port of a result with timelines for
// its worst link.
func ResultOverview(r *core.Result, maxPorts int) string {
	if maxPorts <= 0 {
		maxPorts = 3
	}
	var b strings.Builder
	n := 0
	for _, ps := range r.Ports {
		if ps.SSComb <= 0 || n >= maxPorts {
			continue
		}
		n++
		b.WriteString(PortSummary(ps))
		var worst *core.Endpoint
		for _, e := range ps.Endpoints {
			if worst == nil || e.SSu > worst.SSu {
				worst = e
			}
		}
		if worst != nil {
			b.WriteString(indent(Timeline(worst, 3, 72), "  "))
		}
	}
	if n == 0 {
		b.WriteString("no stalling ports\n")
	}
	return b.String()
}

func indent(s, pre string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pre + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
