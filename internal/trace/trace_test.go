package trace

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/mapping"
	"repro/internal/periodic"
	"repro/internal/workload"
)

// endpoint builds a synthetic endpoint with controlled window shape.
func endpoint(memCC, xReq int64, xReal float64, z int64) *core.Endpoint {
	return &core.Endpoint{
		Operand: loops.W,
		Kind:    core.Fill,
		MemName: "M",
		MemCC:   memCC,
		XReq:    xReq,
		XReal:   xReal,
		Z:       z,
		Window:  periodic.Tail(memCC, xReq, z),
	}
}

func TestTimelineNoStallFullWindow(t *testing.T) {
	// Full window (X_REQ = Mem_CC = 4), transfer takes 2 cycles.
	e := endpoint(4, 4, 2, 3)
	s := Timeline(e, 3, 64)
	if !strings.Contains(s, "slack 2 cc/period") {
		t.Errorf("missing slack label:\n%s", s)
	}
	if !strings.Contains(s, "##==|##==|##==") {
		t.Errorf("memory row wrong:\n%s", s)
	}
	if !strings.Contains(s, "CCCC|CCCC|CCCC") {
		t.Errorf("compute row wrong:\n%s", s)
	}
}

func TestTimelineKeepOutStall(t *testing.T) {
	// Keep-out: window is the last cycle of a 4-cycle period; transfer
	// needs 2 -> 1 cycle overrun per period.
	e := endpoint(4, 1, 2, 2)
	s := Timeline(e, 2, 64)
	if !strings.Contains(s, "stall 1 cc/period") {
		t.Errorf("missing stall label:\n%s", s)
	}
	// Period: 3 keep-out dots, then the window cycle '#', overrun shows
	// in the next period's leading cell as '!'.
	if !strings.Contains(s, "...#|!") {
		t.Errorf("keep-out pattern wrong:\n%s", s)
	}
}

func TestTimelineZeroStall(t *testing.T) {
	e := endpoint(4, 1, 1, 2)
	s := Timeline(e, 2, 64)
	if !strings.Contains(s, "no stall") {
		t.Errorf("want no stall:\n%s", s)
	}
}

func TestTimelineTruncation(t *testing.T) {
	e := endpoint(1000, 1000, 10, 5)
	s := Timeline(e, 5, 30)
	comp := ""
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "compute") {
			comp = line
		}
	}
	if len(comp) > 60 {
		t.Errorf("truncation failed: %q", comp)
	}
}

func problem() *core.Result {
	l := workload.NewMatMul("t", 16, 32, 8)
	a := arch.CaseStudy()
	gb := a.MemoryByName("GB")
	for i := range gb.Ports {
		gb.Ports[i].BWBits = 16 // starve to force stalls
	}
	m := &mapping.Mapping{
		Spatial:  arch.CaseStudySpatial(),
		Temporal: loops.Nest{{Dim: loops.C, Size: 4}, {Dim: loops.B, Size: 2}, {Dim: loops.K, Size: 2}},
	}
	m.Bound[loops.W] = []int{0, 1, 3}
	m.Bound[loops.I] = []int{0, 2, 3}
	m.Bound[loops.O] = []int{1, 3}
	r, err := core.Evaluate(&core.Problem{Layer: &l, Arch: a, Mapping: m})
	if err != nil {
		panic(err)
	}
	return r
}

func TestPortSummary(t *testing.T) {
	r := problem()
	bp := r.BottleneckPort()
	s := PortSummary(bp)
	for _, want := range []string{"port", "RealBW", "MUW_comb", "SS_comb", "X_REQ"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary misses %q:\n%s", want, s)
		}
	}
}

func TestResultOverview(t *testing.T) {
	r := problem()
	s := ResultOverview(r, 2)
	if !strings.Contains(s, "port") || !strings.Contains(s, "compute") {
		t.Errorf("overview:\n%s", s)
	}
	// Unstalled result.
	l := workload.NewMatMul("t", 16, 32, 8)
	a := arch.CaseStudy()
	m := &mapping.Mapping{
		Spatial:  arch.CaseStudySpatial(),
		Temporal: loops.Nest{{Dim: loops.C, Size: 4}, {Dim: loops.B, Size: 2}, {Dim: loops.K, Size: 2}},
	}
	m.Bound[loops.W] = []int{0, 1, 3}
	m.Bound[loops.I] = []int{0, 2, 3}
	m.Bound[loops.O] = []int{1, 3}
	r2, err := core.Evaluate(&core.Problem{Layer: &l, Arch: a, Mapping: m})
	if err != nil {
		t.Fatal(err)
	}
	if r2.SSOverall == 0 {
		if s2 := ResultOverview(r2, 2); !strings.Contains(s2, "no stalling ports") {
			t.Errorf("unstalled overview:\n%s", s2)
		}
	}
}
