package trace

// Golden tests pinning Timeline's exact byte-for-byte output for the three
// endpoint regimes (stall, slack, exactly balanced) and the maxCycles
// truncation. The substring tests in trace_test.go survive cosmetic
// changes; these do not — an intentional rendering change must update the
// goldens, which doubles as a review diff of the new output.

import (
	"testing"

	"repro/internal/core"
)

func TestTimelineGolden(t *testing.T) {
	cases := []struct {
		name string
		e    func() *core.Endpoint
		per  int
		cyc  int
		want string
	}{
		{
			// Keep-out window of 1 cycle, transfer needs 2: every period
			// overruns one cycle into the next ('!' at the period head).
			name: "stalled",
			e:    func() *core.Endpoint { return endpoint(4, 1, 2, 3) },
			per:  3, cyc: 64,
			want: "W@L0 fill rd M  (X_REQ=1, X_REAL=2.0, stall 1 cc/period)\n" +
				"  compute CCCC|CCCC|CCCC\n" +
				"  memory  ...#|!..#|!..#\n",
		},
		{
			// Full window (X_REQ = Mem_CC), transfer needs half: 2 idle
			// window cycles of slack per period.
			name: "slack",
			e:    func() *core.Endpoint { return endpoint(4, 4, 2, 3) },
			per:  3, cyc: 64,
			want: "W@L0 fill rd M  (X_REQ=4, X_REAL=2.0, slack 2 cc/period)\n" +
				"  compute CCCC|CCCC|CCCC\n" +
				"  memory  ##==|##==|##==\n",
		},
		{
			// Exactly balanced: the transfer fills its window to the cycle —
			// no stall, no slack, no '=' and no '!'.
			name: "balanced",
			e:    func() *core.Endpoint { return endpoint(4, 2, 2, 3) },
			per:  3, cyc: 64,
			want: "W@L0 fill rd M  (X_REQ=2, X_REAL=2.0, no stall)\n" +
				"  compute CCCC|CCCC|CCCC\n" +
				"  memory  ..##|..##|..##\n",
		},
		{
			// maxCycles=25 cuts the 4th period mid-way (rows stop at 25
			// cycle characters, boundaries excluded).
			name: "truncated",
			e:    func() *core.Endpoint { return endpoint(10, 10, 4, 4) },
			per:  4, cyc: 25,
			want: "W@L0 fill rd M  (X_REQ=10, X_REAL=4.0, slack 6 cc/period)\n" +
				"  compute CCCCCCCCCC|CCCCCCCCCC|CCCCC\n" +
				"  memory  ####======|####======|####=\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Timeline(tc.e(), tc.per, tc.cyc)
			if got != tc.want {
				t.Errorf("Timeline output changed:\ngot:\n%s\nwant:\n%s", got, tc.want)
			}
		})
	}
}
