package area

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/loops"
)

func TestMemoryPricing(t *testing.T) {
	m := Default7nm()
	reg := &arch.Memory{Name: "r", CapacityBits: 1024, Serves: []loops.Operand{loops.W},
		Ports: []arch.Port{{Name: "p", Dir: arch.ReadWrite, BWBits: 64}}}
	sram := &arch.Memory{Name: "s", CapacityBits: 1 << 20, Serves: []loops.Operand{loops.W},
		Ports: []arch.Port{{Name: "p", Dir: arch.ReadWrite, BWBits: 64}}}
	if m.Memory(reg) <= 0 || m.Memory(sram) <= 0 {
		t.Fatal("non-positive area")
	}
	// Per-bit, registers are more expensive than SRAM.
	regPerBit := m.Memory(reg) / float64(reg.CapacityBits)
	sramPerBit := m.Memory(sram) / float64(sram.CapacityBits)
	if regPerBit <= sramPerBit {
		t.Errorf("reg %v/bit <= sram %v/bit", regPerBit, sramPerBit)
	}
	// Capacity monotone.
	big := *sram
	big.CapacityBits *= 2
	if m.Memory(&big) <= m.Memory(sram) {
		t.Error("area not monotone in capacity")
	}
	// Bandwidth costs area.
	wide := *sram
	wide.Ports = []arch.Port{{Name: "p", Dir: arch.ReadWrite, BWBits: 4096}}
	if m.Memory(&wide) <= m.Memory(sram) {
		t.Error("area not monotone in bandwidth")
	}
	// Double buffering adds control overhead.
	db := *sram
	db.DoubleBuffered = true
	if m.Memory(&db) <= m.Memory(sram) {
		t.Error("double buffering free")
	}
}

func TestArchAreaExclusion(t *testing.T) {
	m := Default7nm()
	a := arch.CaseStudy()
	full := m.Arch(a)
	noGB := m.Arch(a, "GB")
	if noGB >= full {
		t.Errorf("exclusion did not reduce area: %v vs %v", noGB, full)
	}
	gb := m.Memory(a.MemoryByName("GB"))
	if diff := full - noGB; diff < gb*0.999 || diff > gb*1.001 {
		t.Errorf("excluded area %v != GB area %v", diff, gb)
	}
}

func TestMACArrayScaling(t *testing.T) {
	m := Default7nm()
	if m.MACArray(1024) != 4*m.MACArray(256) {
		t.Error("MAC array area not linear")
	}
}

func TestRoundmm2(t *testing.T) {
	if Roundmm2(0.123456) != 0.1235 {
		t.Errorf("Roundmm2 = %v", Roundmm2(0.123456))
	}
}
