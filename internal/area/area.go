// Package area provides the analytic silicon-area model used by the
// Case-3 architecture design-space exploration (paper Fig. 8's x axis).
// It prices MAC units, register files and SRAM macros with 7nm-class
// constants. As with energy, only RELATIVE areas matter to the Pareto
// shape; the constants are synthetic but monotone and convex in the right
// places (register files cost more per bit than SRAM; small SRAMs amortize
// their periphery worse than large ones).
package area

import (
	"math"

	"repro/internal/arch"
)

// Model holds the area coefficients, all in mm².
type Model struct {
	// MACmm2 is the area of one INT8 MAC unit including pipeline state.
	MACmm2 float64
	// RegBitmm2 is the per-bit area of register-file storage.
	RegBitmm2 float64
	// SRAMBitmm2 is the per-bit area of SRAM storage at large capacity.
	SRAMBitmm2 float64
	// SRAMPeriphery is the fixed per-macro overhead.
	SRAMPeriphery float64
	// RegThresholdBits: memories at or below this capacity are priced as
	// register files, above as SRAM macros.
	RegThresholdBits int64
	// BWBitmm2 prices port wiring per bit/cycle of bandwidth.
	BWBitmm2 float64
}

// Default7nm returns the default coefficient set.
// A 7nm high-density SRAM bitcell is 0.027 µm² (paper ref. [18]); with
// periphery a macro lands near 0.06 µm²/bit. Register files cost roughly
// 6x that, and a MAC unit a few hundred bitcell equivalents.
func Default7nm() *Model {
	return &Model{
		MACmm2:           3.0e-5,
		RegBitmm2:        3.6e-7,
		SRAMBitmm2:       6.0e-8,
		SRAMPeriphery:    1.5e-3,
		RegThresholdBits: 16 * 1024, // 2KiB
		BWBitmm2:         4.0e-7,
	}
}

// Memory returns the area of one memory module.
func (m *Model) Memory(mem *arch.Memory) float64 {
	bits := float64(mem.CapacityBits)
	var a float64
	if mem.CapacityBits <= m.RegThresholdBits {
		a = bits * m.RegBitmm2
	} else {
		a = bits*m.SRAMBitmm2 + m.SRAMPeriphery
	}
	var bw int64
	for _, p := range mem.Ports {
		bw += p.BWBits
	}
	a += float64(bw) * m.BWBitmm2
	if mem.DoubleBuffered {
		// Double buffering needs the mirror copy's storage; CapacityBits
		// already includes both halves, but control duplication adds ~5%.
		a *= 1.05
	}
	return a
}

// Arch returns the total area of an architecture, optionally excluding
// the named memories (paper Fig. 8 excludes the GB from the comparison).
func (m *Model) Arch(a *arch.Arch, exclude ...string) float64 {
	skip := map[string]bool{}
	for _, n := range exclude {
		skip[n] = true
	}
	total := float64(a.MACs) * m.MACmm2
	for _, mem := range a.Memories {
		if skip[mem.Name] {
			continue
		}
		total += m.Memory(mem)
	}
	return total
}

// MACArray returns the MAC-array area alone for an array of n units.
func (m *Model) MACArray(n int64) float64 { return float64(n) * m.MACmm2 }

// Roundmm2 rounds an area to 4 decimals for stable report output.
func Roundmm2(a float64) float64 { return math.Round(a*1e4) / 1e4 }
