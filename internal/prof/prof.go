// Package prof gives every CLI in cmd/ the standard pprof escape hatch with
// two lines of wiring: it registers -cpuprofile and -memprofile on the
// default FlagSet at import time, Start() arms whichever were requested, and
// Stop() finalizes them. Profiles are what `go tool pprof` expects: a CPU
// profile covering Start..Stop and a heap profile snapped at Stop (after a
// GC, so live objects — not garbage — dominate).
//
// Usage in a main:
//
//	flag.Parse()
//	if err := prof.Start(); err != nil { fatal("%v", err) }
//	defer prof.Stop()
//
// Commands that exit through os.Exit (which skips defers) must also call
// prof.Stop() on their fatal path; Stop is idempotent, so calling it on both
// paths is safe.
package prof

import (
	"flag"
	"fmt"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
)

var (
	cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")

	cpuFile *os.File
	stopped bool
)

// DebugMux returns a mux serving the net/http/pprof handlers under
// /debug/pprof/ — the live-profiling counterpart to the file-based
// -cpuprofile/-memprofile flags, for daemons (cmd/servemodel) that expose
// them on an opt-in side listener rather than the public API port.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	return mux
}

// Start begins CPU profiling if -cpuprofile was given. Call after
// flag.Parse. Returns an error if a profile file cannot be created.
func Start() error {
	if *cpuProfile == "" {
		return nil
	}
	f, err := os.Create(*cpuProfile)
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("prof: %w", err)
	}
	cpuFile = f
	return nil
}

// Stop finalizes the profiles requested at Start: it flushes and closes the
// CPU profile and, if -memprofile was given, writes a heap profile after a
// forced GC. Idempotent — only the first call acts, so it can sit both in a
// defer and on an os.Exit fatal path. Errors are reported on stderr rather
// than returned: by the time Stop runs the command's real work is done, and
// a lost profile should not change the exit status.
func Stop() {
	if stopped {
		return
	}
	stopped = true
	if cpuFile != nil {
		pprof.StopCPUProfile()
		cpuFile.Close()
		cpuFile = nil
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prof:", err)
			return
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "prof:", err)
		}
		f.Close()
	}
}
