package prof

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary: go toolchain version and, when
// the binary was built inside a git checkout with VCS stamping enabled, the
// commit it was built from.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit hash, or "unknown" when the binary was
	// built without VCS stamping (e.g. `go test`, or a source tarball).
	Revision string `json:"revision"`
	// Modified reports a dirty working tree at build time.
	Modified bool `json:"modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's build identity, resolved once from
// runtime/debug.ReadBuildInfo.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{GoVersion: runtime.Version(), Revision: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.GoVersion != "" {
			buildInfo.GoVersion = bi.GoVersion
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				if s.Value != "" {
					buildInfo.Revision = s.Value
				}
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}
