package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("My Title", "name", "value")
	tb.Add("alpha", 1.5)
	tb.Add("beta", 42.0)
	tb.Add("gamma", "x")
	s := tb.String()
	for _, want := range []string{"My Title", "name", "value", "alpha", "1.5", "42", "gamma"} {
		if !strings.Contains(s, want) {
			t.Errorf("table misses %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Title + header + separator + 3 rows.
	if len(lines) != 6 {
		t.Errorf("lines = %d:\n%s", len(lines), s)
	}
	// Columns align: all data lines have the same prefix width up to col 2.
	if !strings.Contains(lines[2], "---") {
		t.Error("no separator row")
	}
}

func TestFormatFloat(t *testing.T) {
	if formatFloat(3.0) != "3" {
		t.Errorf("3.0 -> %q", formatFloat(3.0))
	}
	if formatFloat(3.14159) != "3.142" {
		t.Errorf("pi -> %q", formatFloat(3.14159))
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Add("x,y", "plain")
	tb.Add(`quo"te`, 2.0)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y",plain`) {
		t.Errorf("comma not quoted: %q", csv)
	}
	if !strings.Contains(csv, `"quo""te",2`) {
		t.Errorf("quote not escaped: %q", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 3 {
		t.Errorf("csv lines = %d", lines)
	}
}

func TestBar(t *testing.T) {
	var b strings.Builder
	Bar(&b, "bars", []string{"one", "two"}, []float64{1, 2}, 10)
	s := b.String()
	if !strings.Contains(s, "bars") || !strings.Contains(s, "##########") {
		t.Errorf("bar output:\n%s", s)
	}
	// Zero max does not panic.
	var z strings.Builder
	Bar(&z, "", []string{"x"}, []float64{0}, 10)
}

func TestScatter(t *testing.T) {
	var b strings.Builder
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 1, 4, 9}
	series := []int{0, 0, 1, 1}
	Scatter(&b, "sc", xs, ys, series, []rune{'o', 'x'}, 20, 8)
	s := b.String()
	if !strings.Contains(s, "sc") || !strings.Contains(s, "o") || !strings.Contains(s, "x") {
		t.Errorf("scatter output:\n%s", s)
	}
	var e strings.Builder
	Scatter(&e, "", nil, nil, nil, nil, 10, 5)
	if !strings.Contains(e.String(), "no points") {
		t.Error("empty scatter not handled")
	}
	// Degenerate ranges must not panic.
	var d strings.Builder
	Scatter(&d, "", []float64{1, 1}, []float64{2, 2}, []int{0, 0}, []rune{'*'}, 10, 5)
}

func TestHeatmap(t *testing.T) {
	var b strings.Builder
	Heatmap(&b, "hm", []string{"r1", "r2"}, []string{"c1", "c2", "c3"},
		[][]float64{{0, 5, 10}, {10, 5, 0}})
	s := b.String()
	for _, want := range []string{"hm", "r1", "c3", "scale:", "@"} {
		if !strings.Contains(s, want) {
			t.Errorf("heatmap misses %q:\n%s", want, s)
		}
	}
	// Flat data and empty data do not panic.
	var f strings.Builder
	Heatmap(&f, "", []string{"r"}, []string{"c"}, [][]float64{{3}})
	var e strings.Builder
	Heatmap(&e, "", nil, nil, nil)
	if !strings.Contains(e.String(), "no data") {
		t.Error("empty heatmap not handled")
	}
}
