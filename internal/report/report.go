// Package report renders experiment results as aligned ASCII tables, CSV
// and simple ASCII charts, so every table and figure regenerator prints
// rows comparable to the paper's.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows with a fixed header.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column names.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends one row; values are formatted with %v (floats get %.4g).
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Write(&b)
	return b.String()
}

// CSV renders the table as comma-separated values (quoted when needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Header)
	for _, r := range t.Rows {
		writeCSVRow(&b, r)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// Bar renders a horizontal ASCII bar chart of labeled values.
func Bar(w io.Writer, title string, labels []string, values []float64, width int) {
	if width <= 0 {
		width = 50
	}
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(math.Round(v / maxV * float64(width)))
		}
		fmt.Fprintf(w, "  %s %s %s\n", pad(labels[i], maxL), strings.Repeat("#", n), formatFloat(v))
	}
}

// Scatter renders an ASCII scatter plot of (x, y) points grouped by series;
// each series is drawn with its own rune.
func Scatter(w io.Writer, title string, xs, ys []float64, series []int, glyphs []rune, wCols, hRows int) {
	if len(xs) == 0 || len(xs) != len(ys) || len(xs) != len(series) {
		fmt.Fprintln(w, "(no points)")
		return
	}
	if wCols <= 0 {
		wCols = 72
	}
	if hRows <= 0 {
		hRows = 20
	}
	minX, maxX := xs[0], xs[0]
	minY, maxY := ys[0], ys[0]
	for i := range xs {
		minX = math.Min(minX, xs[i])
		maxX = math.Max(maxX, xs[i])
		minY = math.Min(minY, ys[i])
		maxY = math.Max(maxY, ys[i])
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, hRows)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", wCols))
	}
	for i := range xs {
		c := int((xs[i] - minX) / (maxX - minX) * float64(wCols-1))
		r := hRows - 1 - int((ys[i]-minY)/(maxY-minY)*float64(hRows-1))
		g := '*'
		if series[i] >= 0 && series[i] < len(glyphs) {
			g = glyphs[series[i]]
		}
		grid[r][c] = g
	}
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	fmt.Fprintf(w, "  y: %s .. %s\n", formatFloat(minY), formatFloat(maxY))
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s\n", string(row))
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", wCols))
	fmt.Fprintf(w, "  x: %s .. %s\n", formatFloat(minX), formatFloat(maxX))
}

// Heatmap renders a 2D grid of values as ASCII shades, with row and column
// labels. Values are normalized to the grid's min..max range; higher values
// render darker.
func Heatmap(w io.Writer, title string, rowLabels, colLabels []string, values [][]float64) {
	shades := []byte(" .:-=+*#%@")
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, row := range values {
		for _, v := range row {
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
	}
	if math.IsInf(minV, 1) {
		fmt.Fprintln(w, "(no data)")
		return
	}
	span := maxV - minV
	if span == 0 {
		span = 1
	}
	labW := 0
	for _, l := range rowLabels {
		if len(l) > labW {
			labW = len(l)
		}
	}
	cellW := 1
	for _, l := range colLabels {
		if len(l) > cellW {
			cellW = len(l)
		}
	}
	fmt.Fprintf(w, "  %s ", strings.Repeat(" ", labW))
	for _, cl := range colLabels {
		fmt.Fprintf(w, "%s ", pad(cl, cellW))
	}
	fmt.Fprintln(w)
	for r, row := range values {
		label := ""
		if r < len(rowLabels) {
			label = rowLabels[r]
		}
		fmt.Fprintf(w, "  %s ", pad(label, labW))
		for _, v := range row {
			idx := int((v - minV) / span * float64(len(shades)-1))
			fmt.Fprintf(w, "%s ", pad(strings.Repeat(string(shades[idx]), cellW), cellW))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  scale: '%c' = %s .. '%c' = %s\n", shades[0], formatFloat(minV), shades[len(shades)-1], formatFloat(maxV))
}
