// Package transformer lowers transformer/LLM blocks into the
// seven-dimensional loop form of package loops, opening the workload family
// that dominates 2026 traffic to the uniform latency model. A Block is the
// standard pre-norm decoder layer — QKV/output projections, head-batched
// attention score and context matmuls, the FFN projections, and the
// LayerNorm/softmax/activation/residual passes modeled as bandwidth-bound
// elementwise ops with exact byte-traffic accounting (DESIGN.md §15).
//
// Two shape modes mirror LLM serving: Prefill processes SeqLen prompt
// tokens (seq×seq attention score matmuls, modeled dense — an upper bound
// over the causal triangle), Decode processes one new token against a
// KV-cache of KVLen past tokens, whose reads surface as the W operand of
// the attention matmuls.
package transformer

import (
	"fmt"
	"strings"

	"repro/internal/loops"
	"repro/internal/network"
	"repro/internal/workload"
)

// Mode selects the block's shape mode.
type Mode uint8

// The two serving phases.
const (
	Prefill Mode = iota // SeqLen query tokens attend to SeqLen keys
	Decode              // 1 query token attends to a KVLen-entry KV-cache
)

// String returns "prefill" or "decode".
func (m Mode) String() string {
	if m == Decode {
		return "decode"
	}
	return "prefill"
}

// ParseMode converts a mode name (case-insensitive) to a Mode.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "prefill":
		return Prefill, nil
	case "decode":
		return Decode, nil
	}
	return 0, fmt.Errorf("transformer: unknown mode %q (want prefill|decode)", s)
}

// Activation selects the FFN nonlinearity, which fixes the FFN matmul count:
// GeLU uses up/down projections, SwiGLU adds the gate projection and an
// elementwise multiply (Llama-family blocks).
type Activation uint8

// Supported FFN activations.
const (
	ActGeLU Activation = iota
	ActSwiGLU
)

// String returns "gelu" or "swiglu".
func (a Activation) String() string {
	if a == ActSwiGLU {
		return "swiglu"
	}
	return "gelu"
}

// ParseActivation converts an activation name to an Activation.
func ParseActivation(s string) (Activation, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "gelu":
		return ActGeLU, nil
	case "swiglu":
		return ActSwiGLU, nil
	}
	return 0, fmt.Errorf("transformer: unknown activation %q (want gelu|swiglu)", s)
}

// Config describes one transformer block's dimensions and shape mode.
type Config struct {
	Name   string // preset or user label
	DModel int64  // model width
	Heads  int64  // attention heads
	DHead  int64  // head dimension (0: DModel/Heads)
	DFF    int64  // FFN hidden width (0: 4*DModel)
	SeqLen int64  // prompt length (prefill) / context length default (decode)
	KVLen  int64  // decode only: KV-cache length incl. the new token (0: SeqLen)
	Batch  int64  // concurrent sequences (0: 1)
	Mode   Mode
	Act    Activation
	// Precision gives the per-operand element widths (zero: the default
	// 8/8/24-bit inference configuration).
	Precision workload.Precision
}

// normalized fills defaulted fields.
func (c Config) normalized() Config {
	if c.DHead == 0 && c.Heads > 0 {
		c.DHead = c.DModel / c.Heads
	}
	if c.DFF == 0 {
		c.DFF = 4 * c.DModel
	}
	if c.Batch < 1 {
		c.Batch = 1
	}
	if c.KVLen == 0 {
		c.KVLen = c.SeqLen
	}
	if c.Precision == (workload.Precision{}) {
		c.Precision = workload.DefaultPrecision
	}
	return c
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	n := c.normalized()
	switch {
	case n.DModel < 1:
		return fmt.Errorf("transformer: %s: d_model %d < 1", c.Name, n.DModel)
	case n.Heads < 1:
		return fmt.Errorf("transformer: %s: heads %d < 1", c.Name, n.Heads)
	case n.DHead < 1:
		return fmt.Errorf("transformer: %s: d_head %d < 1", c.Name, n.DHead)
	case c.DHead == 0 && n.DModel%n.Heads != 0:
		return fmt.Errorf("transformer: %s: d_model %d not divisible by %d heads", c.Name, n.DModel, n.Heads)
	case n.DFF < 1:
		return fmt.Errorf("transformer: %s: d_ff %d < 1", c.Name, n.DFF)
	case n.SeqLen < 1:
		return fmt.Errorf("transformer: %s: seq_len %d < 1", c.Name, n.SeqLen)
	case n.KVLen < 1:
		return fmt.Errorf("transformer: %s: kv_len %d < 1", c.Name, n.KVLen)
	}
	return n.Precision.Validate()
}

// QueryLen returns the number of query tokens per sequence: SeqLen in
// prefill, 1 in decode.
func (c *Config) QueryLen() int64 {
	if c.Mode == Decode {
		return 1
	}
	return c.SeqLen
}

// KeyLen returns the attended context length: SeqLen in prefill, the
// KV-cache length in decode.
func (c *Config) KeyLen() int64 {
	n := c.normalized()
	if c.Mode == Decode {
		return n.KVLen
	}
	return n.SeqLen
}

// Presets. Dimensions follow the published configurations; sequence lengths
// are defaults the caller overrides per experiment.

// Tiny returns a toy block for tests and smoke runs.
func Tiny() Config {
	return Config{Name: "tiny", DModel: 64, Heads: 4, DFF: 128, SeqLen: 16}
}

// GPT2 returns a GPT-2-small-class block (d_model 768, 12 heads, 4x FFN).
func GPT2() Config {
	return Config{Name: "gpt2", DModel: 768, Heads: 12, DFF: 3072, SeqLen: 128}
}

// Llama7B returns a Llama-7B-class block (d_model 4096, 32 heads, SwiGLU
// FFN with hidden width 11008).
func Llama7B() Config {
	return Config{Name: "llama7b", DModel: 4096, Heads: 32, DFF: 11008, SeqLen: 128, Act: ActSwiGLU}
}

// Preset resolves a preset name.
func Preset(name string) (Config, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "tiny":
		return Tiny(), nil
	case "gpt2":
		return GPT2(), nil
	case "llama7b":
		return Llama7B(), nil
	}
	return Config{}, fmt.Errorf("transformer: unknown preset %q (want tiny|gpt2|llama7b)", name)
}

// Op is one operator of the block graph, in execution order.
type Op struct {
	Name  string
	Layer workload.Layer
}

// Block is a transformer block lowered to workload layers.
type Block struct {
	Cfg Config // normalized
	Ops []Op
}

// NewBlock lowers the configured block into its operator sequence. Every
// produced layer validates; per-head matmuls carry their head multiplicity
// on the layer (workload.Layer.Heads) so one mapping search prices all
// heads.
func NewBlock(cfg Config) (*Block, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.normalized()
	b := &Block{Cfg: c}
	rows := c.Batch * c.QueryLen() // token rows through the projections
	q := c.QueryLen()
	kv := c.KeyLen()
	hb := c.Heads * c.Batch // per-head instances across the batch
	prec := c.Precision

	add := func(name string, l workload.Layer) {
		l.Precision = prec
		b.Ops = append(b.Ops, Op{Name: name, Layer: l})
	}
	matmul := func(name string, m, n, depth int64) {
		add(name, workload.NewMatMul(name, m, n, depth))
	}
	elem := func(kind workload.Kind, name string, r, cols, heads int64) {
		add(name, workload.NewElemwise(kind, name, r, cols, heads))
	}

	elem(workload.LayerNorm, "ln1", rows, c.DModel, 1)
	matmul("q_proj", rows, c.DModel, c.DModel)
	matmul("k_proj", rows, c.DModel, c.DModel)
	matmul("v_proj", rows, c.DModel, c.DModel)
	add("attn_score", workload.NewAttnScore("attn_score", q, kv, c.DHead, hb))
	elem(workload.Softmax, "softmax", q, kv, hb)
	add("attn_ctx", workload.NewAttnCtx("attn_ctx", q, c.DHead, kv, hb))
	matmul("out_proj", rows, c.DModel, c.Heads*c.DHead)
	elem(workload.ResidualAdd, "resid1", rows, c.DModel, 1)
	elem(workload.LayerNorm, "ln2", rows, c.DModel, 1)
	if c.Act == ActSwiGLU {
		matmul("ffn_gate", rows, c.DFF, c.DModel)
		matmul("ffn_up", rows, c.DFF, c.DModel)
		// SiLU has GeLU's traffic shape (one read pass, one write pass);
		// the elementwise gate multiply streams both halves like a
		// residual add.
		elem(workload.GeLU, "silu", rows, c.DFF, 1)
		elem(workload.ResidualAdd, "ffn_mul", rows, c.DFF, 1)
	} else {
		matmul("ffn_up", rows, c.DFF, c.DModel)
		elem(workload.GeLU, "gelu", rows, c.DFF, 1)
	}
	matmul("ffn_down", rows, c.DModel, c.DFF)
	elem(workload.ResidualAdd, "resid2", rows, c.DModel, 1)

	for i := range b.Ops {
		if err := b.Ops[i].Layer.Validate(); err != nil {
			return nil, fmt.Errorf("transformer: lowering %s: %w", b.Ops[i].Name, err)
		}
	}
	return b, nil
}

// Layers returns the block's layers in execution order.
func (b *Block) Layers() []workload.Layer {
	out := make([]workload.Layer, len(b.Ops))
	for i := range b.Ops {
		out[i] = b.Ops[i].Layer
	}
	return out
}

// WorkMACs sums the whole-block arithmetic work (all heads; elementwise
// passes contribute none).
func (b *Block) WorkMACs() int64 {
	var t int64
	for i := range b.Ops {
		t += b.Ops[i].Layer.WorkMACs()
	}
	return t
}

// KVCacheReadBits returns the KV-cache traffic the block reads in decode
// mode: the W operands of the attention matmuls (the K-cache feeding the
// score matmul and the V-cache feeding the context matmul, all heads).
// Zero in prefill mode, where K and V are produced in-place.
func (b *Block) KVCacheReadBits() int64 {
	if b.Cfg.Mode != Decode {
		return 0
	}
	var t int64
	for i := range b.Ops {
		switch b.Ops[i].Layer.Kind {
		case workload.AttnScore, workload.AttnCtx:
			t += b.Ops[i].Layer.OperandBits(loops.W)
		}
	}
	return t
}

// NetName returns the canonical network name for the block ("gpt2-prefill-
// seq128", "llama7b-decode-kv2048x1").
func (b *Block) NetName(stack int) string {
	c := b.Cfg
	name := c.Name
	if name == "" {
		name = fmt.Sprintf("xf-d%d-h%d", c.DModel, c.Heads)
	}
	switch c.Mode {
	case Decode:
		name += fmt.Sprintf("-decode-kv%d", c.KeyLen())
	default:
		name += fmt.Sprintf("-prefill-seq%d", c.SeqLen)
	}
	if c.Batch > 1 {
		name += fmt.Sprintf("-b%d", c.Batch)
	}
	if stack > 1 {
		name += fmt.Sprintf("-x%d", stack)
	}
	return name
}

// Network stacks the block `stack` times (min 1) into an evaluable network.
// Stacked copies repeat the exact layer shapes under distinct names, so
// workload.DedupLayers collapses them and the memoized per-layer searches
// run once per unique shape.
func (b *Block) Network(stack int) *network.Network {
	if stack < 1 {
		stack = 1
	}
	n := &network.Network{Name: b.NetName(stack)}
	for s := 0; s < stack; s++ {
		for i := range b.Ops {
			l := b.Ops[i].Layer
			if stack > 1 {
				l.Name = fmt.Sprintf("b%d.%s", s, l.Name)
			}
			n.Layers = append(n.Layers, l)
		}
	}
	return n
}

// Spec is the wire/CLI form of a transformer-block request: a preset plus
// overrides. It is embedded verbatim in serve's /v1/network schema, and
// cmd/xformer builds the identical structure from flags, so both paths
// resolve through the same code and produce byte-identical evaluations.
type Spec struct {
	Preset string `json:"preset,omitempty"`     // tiny|gpt2|llama7b (empty: fully custom)
	Mode   string `json:"mode,omitempty"`       // prefill|decode
	SeqLen int64  `json:"seq_len,omitempty"`    // prompt / context length override
	KVLen  int64  `json:"kv_len,omitempty"`     // decode KV-cache length override
	DModel int64  `json:"d_model,omitempty"`    // model width override
	Heads  int64  `json:"heads,omitempty"`      // head count override
	DHead  int64  `json:"d_head,omitempty"`     // head dim override
	DFF    int64  `json:"d_ff,omitempty"`       // FFN width override
	Batch  int64  `json:"batch,omitempty"`      // concurrent sequences
	Blocks int    `json:"blocks,omitempty"`     // stacked block copies (default 1)
	Act    string `json:"activation,omitempty"` // gelu|swiglu
}

// Config resolves the spec into a validated block configuration.
func (s *Spec) Config() (Config, error) {
	cfg := Config{Name: "custom"}
	if s.Preset != "" {
		var err error
		cfg, err = Preset(s.Preset)
		if err != nil {
			return Config{}, err
		}
	}
	mode, err := ParseMode(s.Mode)
	if err != nil {
		return Config{}, err
	}
	cfg.Mode = mode
	if s.Act != "" {
		act, err := ParseActivation(s.Act)
		if err != nil {
			return Config{}, err
		}
		cfg.Act = act
	}
	if s.SeqLen > 0 {
		cfg.SeqLen = s.SeqLen
	}
	if s.KVLen > 0 {
		cfg.KVLen = s.KVLen
	}
	if s.DModel > 0 {
		cfg.DModel = s.DModel
		if s.Preset == "" && s.DFF == 0 {
			cfg.DFF = 0 // re-derive 4x
		}
	}
	if s.Heads > 0 {
		cfg.Heads = s.Heads
		cfg.DHead = 0 // re-derive unless overridden below
	}
	if s.DHead > 0 {
		cfg.DHead = s.DHead
	}
	if s.DFF > 0 {
		cfg.DFF = s.DFF
	}
	if s.Batch > 0 {
		cfg.Batch = s.Batch
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Build resolves the spec into its block and stacked network.
func (s *Spec) Build() (*Block, *network.Network, error) {
	cfg, err := s.Config()
	if err != nil {
		return nil, nil, err
	}
	blk, err := NewBlock(cfg)
	if err != nil {
		return nil, nil, err
	}
	return blk, blk.Network(s.Blocks), nil
}
