package transformer

import (
	"testing"
	"testing/quick"

	"repro/internal/loops"
	"repro/internal/workload"
)

func cfgFor(t *testing.T, c Config) *Block {
	t.Helper()
	b, err := NewBlock(c)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestPresetsBuild(t *testing.T) {
	for _, name := range []string{"tiny", "gpt2", "llama7b"} {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{Prefill, Decode} {
			cfg.Mode = mode
			b := cfgFor(t, cfg)
			for i := range b.Ops {
				if err := b.Ops[i].Layer.Validate(); err != nil {
					t.Errorf("%s/%s op %s: %v", name, mode, b.Ops[i].Name, err)
				}
			}
			if b.WorkMACs() <= 0 {
				t.Errorf("%s/%s: no MAC work", name, mode)
			}
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Error("unknown preset resolved")
	}
}

// Closed-form MAC accounting: the lowered block's total MAC work must match
// the textbook transformer FLOP count (as MACs) exactly, in both modes.
func TestBlockMACsClosedForm(t *testing.T) {
	f := func(dm, h, s, kvl, ffn uint8, swiglu, decode bool) bool {
		heads := int64(h%4 + 1)
		dHead := int64(dm%4+1) * 2
		dModel := heads * dHead
		seq := int64(s%8 + 1)
		kv := int64(kvl%8 + 1)
		dff := int64(ffn%8+1) * 4
		cfg := Config{
			Name: "p", DModel: dModel, Heads: heads, DFF: dff,
			SeqLen: seq, KVLen: kv,
		}
		if swiglu {
			cfg.Act = ActSwiGLU
		}
		if decode {
			cfg.Mode = Decode
		}
		b, err := NewBlock(cfg)
		if err != nil {
			return false
		}
		q, L := seq, seq
		if decode {
			q, L = 1, kv
		}
		want := 3*q*dModel*dModel + // q/k/v projections
			heads*q*L*dHead + // attention scores
			heads*q*dHead*L + // attention context
			q*dModel*dModel + // out projection
			2*q*dff*dModel // ffn up+down
		if swiglu {
			want += q * dff * dModel // gate projection
		}
		return b.WorkMACs() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The head-batched attention ops must sum to the unbatched equivalents:
// an H-head score matmul carries exactly H single-head problems in MACs and
// every operand's byte count.
func TestHeadBatchedOpsSumToUnbatched(t *testing.T) {
	cfg := Tiny()
	cfg.Batch = 2
	b := cfgFor(t, cfg)
	for _, op := range b.Ops {
		l := op.Layer
		if l.HeadCount() <= 1 {
			continue
		}
		single := l
		single.Heads = 1
		h := l.HeadCount()
		if l.WorkMACs() != h*single.WorkMACs() {
			t.Errorf("%s: WorkMACs %d != %d heads x %d", op.Name, l.WorkMACs(), h, single.WorkMACs())
		}
		for _, o := range loops.AllOperands {
			if l.OperandBits(o) != h*single.OperandBits(o) {
				t.Errorf("%s: operand %s bits not head-linear", op.Name, o)
			}
		}
	}
}

// Byte-traffic accounting of the lowered ops against first principles.
func TestBlockOperandBytes(t *testing.T) {
	cfg := Config{Name: "t", DModel: 32, Heads: 4, DFF: 64, SeqLen: 8}
	b := cfgFor(t, cfg)
	ops := map[string]workload.Layer{}
	for _, op := range b.Ops {
		ops[op.Name] = op.Layer
	}
	prec := workload.DefaultPrecision

	// q_proj: W = DModel*DModel weights, I = seq*DModel, O = seq*DModel.
	q := ops["q_proj"]
	if got, want := q.OperandBits(loops.W), int64(32*32*prec.W); got != want {
		t.Errorf("q_proj W bits = %d, want %d", got, want)
	}
	if got, want := q.OperandBits(loops.I), int64(8*32*prec.I); got != want {
		t.Errorf("q_proj I bits = %d, want %d", got, want)
	}
	// attn_score over 4 heads: per head W = seq*dHead (keys), I = seq*dHead
	// (queries), O = seq*seq (scores).
	s := ops["attn_score"]
	if got, want := s.OperandBits(loops.W), int64(4*8*8*prec.W); got != want {
		t.Errorf("attn_score W bits = %d, want %d", got, want)
	}
	if got, want := s.OperandBits(loops.O), int64(4*8*8*prec.O); got != want {
		t.Errorf("attn_score O bits = %d, want %d", got, want)
	}
	// softmax streams the 4-head score tensor.
	sm := ops["softmax"]
	if got, want := sm.OperandBits(loops.I), int64(4*8*8*prec.I); got != want {
		t.Errorf("softmax I bits = %d, want %d", got, want)
	}
	// ln1 carries gamma/beta params.
	ln := ops["ln1"]
	if got, want := ln.OperandBits(loops.W), int64(2*32*prec.W); got != want {
		t.Errorf("ln1 param bits = %d, want %d", got, want)
	}
}

func TestDecodeShapesAndKVTraffic(t *testing.T) {
	cfg := GPT2()
	cfg.Mode = Decode
	cfg.KVLen = 512
	b := cfgFor(t, cfg)
	ops := map[string]workload.Layer{}
	for _, op := range b.Ops {
		ops[op.Name] = op.Layer
	}
	// Decode projections run one token.
	qp, as := ops["q_proj"], ops["attn_score"]
	if got := qp.Dim(loops.B); got != 1 {
		t.Errorf("decode q_proj rows = %d, want 1", got)
	}
	// The score matmul attends to the whole cache.
	if got := as.Dim(loops.K); got != 512 {
		t.Errorf("decode attn_score keyLen = %d, want 512", got)
	}
	// KV-cache reads = K-cache + V-cache across all heads:
	// 2 * heads * kvLen * dHead elements at W precision.
	want := int64(2) * 12 * 512 * 64 * int64(workload.DefaultPrecision.W)
	if got := b.KVCacheReadBits(); got != want {
		t.Errorf("KVCacheReadBits = %d, want %d", got, want)
	}
	// Prefill reads no cache.
	cfg.Mode = Prefill
	if got := cfgFor(t, cfg).KVCacheReadBits(); got != 0 {
		t.Errorf("prefill KVCacheReadBits = %d, want 0", got)
	}
}

func TestSwiGLUAddsGate(t *testing.T) {
	g := cfgFor(t, Tiny())
	l := cfgFor(t, Llama7B())
	names := func(b *Block) map[string]bool {
		m := map[string]bool{}
		for _, op := range b.Ops {
			m[op.Name] = true
		}
		return m
	}
	gn, ln := names(g), names(l)
	if gn["ffn_gate"] || !ln["ffn_gate"] || !ln["ffn_mul"] {
		t.Error("SwiGLU gate ops wrong")
	}
	if !gn["gelu"] || ln["gelu"] {
		t.Error("GeLU activation placement wrong")
	}
}

// Stacked blocks repeat shapes exactly: DedupLayers must collapse an
// N-block network to one block's worth of unique shapes.
func TestStackedNetworkDedups(t *testing.T) {
	b := cfgFor(t, Tiny())
	n := b.Network(4)
	if len(n.Layers) != 4*len(b.Ops) {
		t.Fatalf("stacked layers = %d, want %d", len(n.Layers), 4*len(b.Ops))
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	unique, mult, _ := workload.DedupLayers(n.Layers)
	// Within one tiny block, ln1/ln2/resid1/resid2 already coalesce
	// (LayerNorm x2, ResidualAdd x2) and q/k/v share one matmul shape, so
	// unique < ops; stacking must add nothing new.
	u1, _, _ := workload.DedupLayers(b.Layers())
	if len(unique) != len(u1) {
		t.Errorf("stacking added shapes: %d vs %d", len(unique), len(u1))
	}
	for i, m := range mult {
		if m%4 != 0 {
			t.Errorf("unique[%d] multiplicity %d not a multiple of the stack", i, m)
		}
	}
}

func TestSpecResolution(t *testing.T) {
	spec := &Spec{Preset: "gpt2", Mode: "decode", KVLen: 256, Blocks: 2}
	blk, net, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if blk.Cfg.DModel != 768 || blk.Cfg.KeyLen() != 256 {
		t.Errorf("spec config = %+v", blk.Cfg)
	}
	if len(net.Layers) != 2*len(blk.Ops) {
		t.Errorf("blocks=2 built %d layers", len(net.Layers))
	}

	custom := &Spec{DModel: 64, Heads: 8, SeqLen: 16}
	cblk, _, err := custom.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cblk.Cfg.DHead != 8 || cblk.Cfg.DFF != 256 {
		t.Errorf("custom derived dims = %+v", cblk.Cfg)
	}

	if _, _, err := (&Spec{Preset: "bogus"}).Build(); err == nil {
		t.Error("bogus preset built")
	}
	if _, _, err := (&Spec{Preset: "tiny", Mode: "sideways"}).Build(); err == nil {
		t.Error("bogus mode built")
	}
	if _, _, err := (&Spec{DModel: 65, Heads: 8, SeqLen: 4}).Build(); err == nil {
		t.Error("indivisible d_model built")
	}
}

// Building the same spec twice must produce identical networks (the serve
// path and the CLI path both rely on this for byte-identical output).
func TestBuildDeterministic(t *testing.T) {
	spec := &Spec{Preset: "llama7b", Mode: "prefill", SeqLen: 64, Blocks: 3}
	_, n1, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, n2, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if n1.Name != n2.Name || len(n1.Layers) != len(n2.Layers) {
		t.Fatal("non-deterministic build")
	}
	for i := range n1.Layers {
		if n1.Layers[i].String() != n2.Layers[i].String() {
			t.Fatalf("layer %d differs", i)
		}
	}
}

func TestNetName(t *testing.T) {
	b := cfgFor(t, Tiny())
	if got := b.NetName(1); got != "tiny-prefill-seq16" {
		t.Errorf("NetName = %q", got)
	}
	cfg := Tiny()
	cfg.Mode = Decode
	cfg.KVLen = 128
	cfg.Batch = 2
	if got := cfgFor(t, cfg).NetName(4); got != "tiny-decode-kv128-b2-x4" {
		t.Errorf("decode NetName = %q", got)
	}
}
