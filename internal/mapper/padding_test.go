package mapper

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/workload"
)

// A prime temporal extent (B=104 -> 13 after spatial /8) admits no inner
// reuse split; the padded-extent generation must still find a mapping with
// weight stationarity rather than a fully streaming one.
func TestPaddedExtentsEnableStationarity(t *testing.T) {
	l := workload.NewMatMul("prime", 104, 64, 64) // B extent 13 (prime)
	a := arch.CaseStudy()
	best, _, err := Best(context.Background(), &l, a, opts())
	if err != nil {
		t.Fatal(err)
	}
	// The best mapping should not be stall-dominated: W can stay
	// stationary over a padded B split (14 = 2*7 or 16).
	tp := best.Mapping.Temporal.DimProduct()
	if tp[loops.B] < 13 {
		t.Fatalf("B under-covered: %d", tp[loops.B])
	}
	if err := best.Mapping.Validate(&l, a); err != nil {
		t.Fatal(err)
	}
	// Spatial stall accounts for the padding; it must stay below one
	// padding quantum (2x would mean over-coverage slipped through).
	if best.Result.SpatialStall < 0 {
		t.Error("negative spatial stall")
	}
	if float64(best.Mapping.CCSpatial()) >= 2*best.Result.CCIdeal {
		t.Errorf("padding doubled CC_spatial: %d vs ideal %v",
			best.Mapping.CCSpatial(), best.Result.CCIdeal)
	}
}

func TestDedupSplits(t *testing.T) {
	in := [][]int64{{4}, {2, 2}, {4}, {2, 2}, {}}
	out := dedupSplits(in)
	if len(out) != 3 {
		t.Errorf("dedup = %v", out)
	}
}

// Padded candidates never exceed 2x the minimal extent (Validate's bound).
func TestPaddingBounded(t *testing.T) {
	l := workload.NewMatMul("p", 24, 32, 32) // B extent 3
	a := arch.CaseStudy()
	all, _, err := Enumerate(context.Background(), &l, a, opts())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range all {
		tp := c.Mapping.Temporal.DimProduct()
		if tp[loops.B] >= 6 { // minimal 3, bound < 6
			t.Fatalf("over-padded B: %d in %s", tp[loops.B], c.Mapping.Temporal)
		}
	}
}
