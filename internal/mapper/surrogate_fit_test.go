package mapper

import (
	"context"
	"fmt"
	"math"
	"os"
	"sort"
	"testing"

	"repro/internal/arch"
	"repro/internal/surrogate"
	"repro/internal/workload"
)

// surrogateSamples enumerates one bounded mapping space and pairs every
// candidate's feature vector with its exact latency — the training data the
// embedded default model is fit from.
func surrogateSamples(t *testing.T, l workload.Layer, a *arch.Arch, o Options) []surrogate.Sample {
	t.Helper()
	all, _, err := Enumerate(context.Background(), &l, a, &o)
	if err != nil {
		t.Fatalf("Enumerate(%s on %s): %v", l.Name, a.Name, err)
	}
	samples := make([]surrogate.Sample, 0, len(all))
	for _, c := range all {
		if c.Result == nil || c.Result.CCTotal <= 0 {
			continue
		}
		var s surrogate.Sample
		surrogate.Features(&s.Features, &l, a, c.Mapping)
		s.CCTotal = c.Result.CCTotal
		samples = append(samples, s)
	}
	return samples
}

// TestFitDefaultModelWeights reproduces the offline fit behind the embedded
// default model (surrogate/default.go): least squares over the exact scores
// of the in-house and case-study preset mapping spaces. It asserts the fit
// is healthy — finite residuals and a training-set rank correlation high
// enough to be worth guiding with — and, when run with SURROGATE_REFIT=1,
// prints the fit weights as the Go literal to paste into default.go:
//
//	SURROGATE_REFIT=1 go test ./internal/mapper -run TestFitDefaultModelWeights -v
func TestFitDefaultModelWeights(t *testing.T) {
	var samples []surrogate.Sample
	spaces := []struct {
		l workload.Layer
		a *arch.Arch
		o Options
	}{
		{workload.NewMatMul("m", 32, 64, 64), arch.CaseStudy(),
			Options{Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 2000}},
		{workload.NewMatMul("m", 24, 48, 96), arch.CaseStudy(),
			Options{Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 2000}},
		{workload.NewMatMul("m", 16, 64, 64), arch.InHouse(),
			Options{Spatial: arch.InHouseSpatial(), BWAware: true, MaxCandidates: 2000}},
		{workload.NewMatMul("m", 64, 128, 128), arch.TPULike(),
			Options{Spatial: arch.TPULikeSpatial(), BWAware: true, MaxCandidates: 1000}},
	}
	for _, sp := range spaces {
		samples = append(samples, surrogateSamples(t, sp.l, sp.a, sp.o)...)
	}
	if len(samples) < 2*(surrogate.NumFeatures+1) {
		t.Fatalf("only %d samples — too few to over-determine %d coefficients",
			len(samples), surrogate.NumFeatures+1)
	}

	m, info, err := surrogate.Fit(samples, 0)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if math.IsNaN(info.RMSE) || math.IsInf(info.RMSE, 0) {
		t.Fatalf("non-finite RMSE %v", info.RMSE)
	}
	// The model only needs to ORDER well; anything above ~0.8 rank
	// correlation makes the branch-and-bound best tighten almost
	// immediately.
	if info.SpearmanTrain < 0.8 {
		t.Errorf("SpearmanTrain = %.4f over %d samples, want >= 0.8 (RMSE %.4f)",
			info.SpearmanTrain, info.Samples, info.RMSE)
	}

	if os.Getenv("SURROGATE_REFIT") == "1" {
		fmt.Printf("// Fit over %d samples: RMSE %.4f, Spearman %.4f\n",
			info.Samples, info.RMSE, info.SpearmanTrain)
		fmt.Printf("var defaultModel = Model{\n\tW: [NumFeatures]float64{\n")
		for i, w := range m.W {
			fmt.Printf("\t\t%v, // [%d]\n", w, i)
		}
		fmt.Printf("\t},\n\tB: %v,\n}\n", m.B)
	}
}

// TestGuidedOrderFrontLoadsWinners is the point of the surrogate: walking
// the candidates in the default model's predicted order, the best exact
// score seen after the first tenth of the stream must already be close to
// the true optimum — that near-tight bound is what lets the workers' prune
// kill most of the remaining stream before Step 1 runs.
func TestGuidedOrderFrontLoadsWinners(t *testing.T) {
	l := workload.NewMatMul("m", 32, 64, 64)
	a := arch.CaseStudy()
	o := Options{Spatial: arch.CaseStudySpatial(), BWAware: true}
	all, _, err := Enumerate(context.Background(), &l, a, &o)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 20 {
		t.Fatalf("space too small to be meaningful: %d candidates", len(all))
	}
	// Enumerate returns candidates score-sorted: all[0] is the winner.
	best := all[0].Result.CCTotal

	model := surrogate.Default()
	type pc struct {
		pred, score float64
	}
	stream := make([]pc, len(all))
	for i, c := range all {
		var f surrogate.Vec
		surrogate.Features(&f, &l, a, c.Mapping)
		stream[i] = pc{pred: model.Predict(&f), score: c.Result.CCTotal}
	}
	sort.Slice(stream, func(i, j int) bool { return stream[i].pred < stream[j].pred })

	front := len(stream) / 10
	frontBest := math.Inf(1)
	for _, s := range stream[:front] {
		if s.score < frontBest {
			frontBest = s.score
		}
	}
	if frontBest > 1.05*best {
		t.Errorf("best-so-far after the first %d of %d guided candidates is %.0f, want within 5%% of the optimum %.0f",
			front, len(stream), frontBest, best)
	}
}
