package mapper

// Symmetry reduction (DESIGN.md §9). The latency model reads a temporal
// nest only through per-operand per-level dim products and top reuse runs
// (core.Evaluator.AppendSignature documents the exactness argument), so the
// enumeration's orderings collapse into model-equivalence classes whose
// members all score identically. The canonicalizer computes that signature
// for candidate nests — AFTER the greedy boundary assignment, because the
// level contents the model sees are only known then — and the generator
// emits exactly one representative per class: the first member in the
// deterministic walk order, which is precisely the member the exhaustive
// search's (score, seq) tie-break would have selected.

import (
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/mapping"
	"repro/internal/memo"
	"repro/internal/workload"
)

// canonicalizer computes model-equivalence signatures for temporal nests of
// one (layer, arch, spatial unrolling) search, allocation-free per nest, and
// interns them into a collision-checked class set. Not safe for concurrent
// use; the generator owns one, each annealing chain owns one.
type canonicalizer struct {
	l      *workload.Layer
	a      *arch.Arch
	chains [loops.NumOperands][]*arch.Memory
	store  [loops.NumOperands][]int
	m      mapping.Mapping
	prob   core.Problem
	ev     core.Evaluator
	sig    []byte
	seen   memo.Set
}

func newCanonicalizer(l *workload.Layer, a *arch.Arch, spatial loops.Nest) *canonicalizer {
	c := &canonicalizer{l: l, a: a}
	for _, op := range loops.AllOperands {
		c.chains[op] = a.ChainMems(op)
	}
	c.m.Spatial = spatial
	c.prob = core.Problem{Layer: l, Arch: a, Mapping: &c.m}
	return c
}

// boundsFailSig marks the class of nests whose greedy boundary assignment
// fails (the spatial tile alone overflows a level): none of them can ever
// validate, so they all share one class and one (rejected) representative.
// A real signature is at least two bytes (a 0xFF level terminator per
// level), so the single byte cannot collide with one.
var boundsFailSig = []byte{0x00}

// signature computes nest's model-equivalence signature. The returned slice
// is the canonicalizer's scratch, valid until the next signature call.
func (c *canonicalizer) signature(nest loops.Nest) []byte {
	c.m.Temporal = nest
	if !assignBoundsIn(&c.m, c.l, &c.chains, &c.store) {
		return boundsFailSig
	}
	c.sig = c.ev.AppendSignature(c.sig[:0], &c.prob)
	return c.sig
}

// intern records nest's class and reports whether an earlier nest of the
// same class was already seen (true = nest is a duplicate to merge).
func (c *canonicalizer) intern(nest loops.Nest) bool {
	_, dup := c.internSig(nest)
	return dup
}

// internSig is intern exposing the class signature alongside the duplicate
// verdict, for callers that record class identities (the sharded walk). The
// returned slice is the canonicalizer's scratch, valid until the next
// signature/intern call.
func (c *canonicalizer) internSig(nest loops.Nest) ([]byte, bool) {
	sig := c.signature(nest)
	return sig, !c.seen.Insert(sig)
}

// score evaluates nest exactly the way the search workers do — greedy
// bounds, validation, then the full model (bwAware) or the baseline — and
// reports whether the nest is a valid mapping at all.
func (c *canonicalizer) score(nest loops.Nest, bwAware bool) (float64, bool) {
	c.m.Temporal = nest
	if !assignBoundsIn(&c.m, c.l, &c.chains, &c.store) {
		return 0, false
	}
	if c.m.Validate(c.l, c.a) != nil {
		return 0, false
	}
	if !bwAware {
		return c.ev.LowerBound(&c.prob), true
	}
	s, err := c.ev.ScoreLatency(&c.prob)
	if err != nil {
		return 0, false
	}
	return s, true
}

// boundFloor returns the mapping-independent part of the generator's lower
// bound: the preload+offload cycles of the EMPTY temporal nest. No real
// nest can undercut it — adding temporal loops only grows the per-level
// resident tiles (TileElems is monotone in the below-nest's dim products)
// and hop cycles are monotone in tile size. LowerBound of the empty nest is
// 1 (its CC_spatial) + that floor, hence the -1.
func (c *canonicalizer) boundFloor() float64 {
	c.m.Temporal = nil
	if !assignBoundsIn(&c.m, c.l, &c.chains, &c.store) {
		return 0
	}
	return c.ev.LowerBound(&c.prob) - 1
}

// probeOrders are the two fixed loop orders (innermost first) scored before
// the walk to seed the generator's pruning bound: the canonical declaration
// order and the annealer's heuristic order (reduction innermost).
var probeOrders = [2][loops.NumDims]loops.Dim{
	{loops.B, loops.K, loops.C, loops.OY, loops.OX, loops.FY, loops.FX},
	{loops.C, loops.B, loops.OX, loops.OY, loops.K, loops.FX, loops.FY},
}

// probeNests builds the unpadded one-loop-per-dimension nests in the two
// probe orders. Both are members of the enumeration space (the unsplit
// alternative exists for every dimension, and every ordering of a block
// multiset is walked), which is what makes their scores sound pruning
// bounds: the space's optimum can never exceed a member's score.
func probeNests(extents *[loops.NumDims]int64) [2]loops.Nest {
	var out [2]loops.Nest
	for i, ord := range probeOrders {
		for _, d := range ord {
			if extents[d] > 1 {
				out[i] = append(out[i], loops.Loop{Dim: d, Size: extents[d]})
			}
		}
	}
	return out
}
