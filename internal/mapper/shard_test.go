package mapper

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/workload"
)

// normalizeStats zeroes the trajectory-dependent diagnostics. Pruned and the
// surrogate counters depend on which candidates each worker/shard happened to
// evaluate first (documented in Stats); only the exact counters are part of
// the sharding determinism contract.
func normalizeStats(st Stats) Stats {
	st.Pruned = 0
	st.SurrogatePruned = 0
	st.SurrogateReorders = 0
	st.SurrogateRankCorr = 0
	return st
}

// runSharded executes a full plan-execute-merge cycle with k shards.
func runSharded(t *testing.T, l *workload.Layer, a *arch.Arch, opt *Options, k int) (*Candidate, *Stats) {
	t.Helper()
	plan, err := PlanShards(context.Background(), l, a, opt, k)
	if err != nil {
		t.Fatalf("PlanShards(k=%d): %v", k, err)
	}
	if len(plan.Specs) != k {
		t.Fatalf("PlanShards(k=%d): got %d specs", k, len(plan.Specs))
	}
	outs := make([]*ShardOutcome, len(plan.Specs))
	for i, spec := range plan.Specs {
		out, err := BestShard(context.Background(), l, a, opt, spec)
		if err != nil {
			t.Fatalf("BestShard(k=%d, shard=%d): %v", k, i, err)
		}
		outs[i] = out
	}
	cand, stats, err := MergeShards(l, a, opt, outs)
	if err != nil {
		t.Fatalf("MergeShards(k=%d): %v", k, err)
	}
	return cand, stats
}

// TestShardedSearchIdentity: for every shard count the plan-execute-merge
// cycle reproduces the single-engine search bit for bit — same winning
// temporal nest, same score, same exact Stats counters — across architecture
// presets, with and without the symmetry reduction, and with a walk budget
// small enough to trip the cap mid-walk (the capped handoff path).
func TestShardedSearchIdentity(t *testing.T) {
	conv := workload.ResNet18Suite()[3]
	mm := workload.NewMatMul("mm", 64, 96, 128)
	cases := []struct {
		name string
		l    *workload.Layer
		a    *arch.Arch
		opt  Options
	}{
		{"conv/casestudy", &conv, arch.CaseStudy(), Options{Spatial: arch.CaseStudySpatial()}},
		{"matmul/inhouse", &mm, arch.InHouse(), Options{Spatial: arch.InHouseSpatial()}},
		{"conv/noreduce", &conv, arch.CaseStudy(), Options{Spatial: arch.CaseStudySpatial(), NoReduce: true, MaxCandidates: 4000}},
		{"conv/capped", &conv, arch.CaseStudy(), Options{Spatial: arch.CaseStudySpatial(), MaxCandidates: 700}},
		{"matmul/capped-edp", &mm, arch.InHouse(), Options{Spatial: arch.InHouseSpatial(), MaxCandidates: 900, Objective: MinEDP}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, refStats, err := Best(context.Background(), tc.l, tc.a, &tc.opt)
			if err != nil {
				t.Fatalf("Best: %v", err)
			}
			wantStats := normalizeStats(*refStats)
			for _, k := range []int{1, 2, 7, 16} {
				cand, stats, opt := (*Candidate)(nil), (*Stats)(nil), tc.opt
				cand, stats = runSharded(t, tc.l, tc.a, &opt, k)
				if cand == nil {
					t.Fatalf("k=%d: merge found no winner, Best did", k)
				}
				if got, want := cand.Mapping.Temporal.String(), ref.Mapping.Temporal.String(); got != want {
					t.Errorf("k=%d: winner %q, want %q", k, got, want)
				}
				if cand.Result.CCTotal != ref.Result.CCTotal {
					t.Errorf("k=%d: CCTotal %v, want %v", k, cand.Result.CCTotal, ref.Result.CCTotal)
				}
				if cand.EnergyPJ != ref.EnergyPJ {
					t.Errorf("k=%d: EnergyPJ %v, want %v", k, cand.EnergyPJ, ref.EnergyPJ)
				}
				if got := normalizeStats(*stats); !reflect.DeepEqual(got, wantStats) {
					t.Errorf("k=%d: stats %+v, want %+v", k, got, wantStats)
				}
			}
		})
	}
}

// TestShardPlanInvariants: shard specs tile [0, Prefixes) contiguously and
// the walk-state handoff is consistent (monotone WalkedBefore starting at 0;
// once the capped flag hands off true it stays true).
func TestShardPlanInvariants(t *testing.T) {
	conv := workload.ResNet18Suite()[3]
	opt := Options{Spatial: arch.CaseStudySpatial(), MaxCandidates: 700}
	for _, k := range []int{1, 2, 7, 16} {
		plan, err := PlanShards(context.Background(), &conv, arch.CaseStudy(), &opt, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if plan.Specs[0].Lo != 0 || plan.Specs[len(plan.Specs)-1].Hi != plan.Prefixes {
			t.Fatalf("k=%d: specs do not span [0, %d): %+v", k, plan.Prefixes, plan.Specs)
		}
		capped := false
		for i, sp := range plan.Specs {
			if sp.Lo > sp.Hi {
				t.Fatalf("k=%d shard %d: inverted range %+v", k, i, sp)
			}
			if i > 0 {
				prev := plan.Specs[i-1]
				if sp.Lo != prev.Hi {
					t.Fatalf("k=%d shard %d: gap/overlap at %d (prev hi %d)", k, i, sp.Lo, prev.Hi)
				}
				if sp.WalkedBefore < prev.WalkedBefore {
					t.Fatalf("k=%d shard %d: WalkedBefore went backwards", k, i)
				}
			} else if sp.WalkedBefore != 0 || sp.CappedBefore {
				t.Fatalf("k=%d: first shard has nonzero handoff %+v", k, sp)
			}
			if capped && !sp.CappedBefore {
				t.Fatalf("k=%d shard %d: capped flag reset mid-plan", k, i)
			}
			capped = sp.CappedBefore
		}
	}
}

// TestBestShardValidation: malformed specs are rejected, not walked.
func TestBestShardValidation(t *testing.T) {
	mm := workload.NewMatMul("mm", 32, 32, 32)
	opt := Options{Spatial: arch.InHouseSpatial()}
	for _, spec := range []ShardSpec{
		{Depth: 0, Lo: 0, Hi: 1},
		{Depth: 99, Lo: 0, Hi: 1},
		{Depth: 3, Lo: 2, Hi: 1},
		{Depth: 3, Lo: -1, Hi: 1},
	} {
		if _, err := BestShard(context.Background(), &mm, arch.InHouse(), &opt, spec); err == nil {
			t.Errorf("BestShard(%+v): expected error", spec)
		}
	}
}

// TestPlanShardsCanceled: a canceled context aborts planning.
func TestPlanShardsCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	conv := workload.ResNet18Suite()[3]
	if _, err := PlanShards(ctx, &conv, arch.CaseStudy(), &Options{Spatial: arch.CaseStudySpatial()}, 4); err == nil {
		t.Fatal("expected context error")
	}
}
