package mapper

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/workload"
)

// normalizeStats zeroes the trajectory-dependent diagnostics. Pruned and the
// surrogate counters depend on which candidates each worker/shard happened to
// evaluate first (documented in Stats); only the exact counters are part of
// the sharding determinism contract.
func normalizeStats(st Stats) Stats {
	st.Pruned = 0
	st.SurrogatePruned = 0
	st.SurrogateReorders = 0
	st.SurrogateRankCorr = 0
	return st
}

// runSharded executes a full plan-execute-merge cycle with k shards.
func runSharded(t *testing.T, l *workload.Layer, a *arch.Arch, opt *Options, k int) (*Candidate, *Stats) {
	t.Helper()
	plan, err := PlanShards(context.Background(), l, a, opt, k)
	if err != nil {
		t.Fatalf("PlanShards(k=%d): %v", k, err)
	}
	if len(plan.Specs) != k {
		t.Fatalf("PlanShards(k=%d): got %d specs", k, len(plan.Specs))
	}
	outs := make([]*ShardOutcome, len(plan.Specs))
	for i, spec := range plan.Specs {
		out, err := BestShard(context.Background(), l, a, opt, spec)
		if err != nil {
			t.Fatalf("BestShard(k=%d, shard=%d): %v", k, i, err)
		}
		outs[i] = out
	}
	cand, stats, err := MergeShards(l, a, opt, outs)
	if err != nil {
		t.Fatalf("MergeShards(k=%d): %v", k, err)
	}
	return cand, stats
}

// TestShardedSearchIdentity: for every shard count the plan-execute-merge
// cycle reproduces the single-engine search bit for bit — same winning
// temporal nest, same score, same exact Stats counters — across architecture
// presets, with and without the symmetry reduction, and with a walk budget
// small enough to trip the cap mid-walk (the capped handoff path).
func TestShardedSearchIdentity(t *testing.T) {
	conv := workload.ResNet18Suite()[3]
	mm := workload.NewMatMul("mm", 64, 96, 128)
	cases := []struct {
		name string
		l    *workload.Layer
		a    *arch.Arch
		opt  Options
	}{
		{"conv/casestudy", &conv, arch.CaseStudy(), Options{Spatial: arch.CaseStudySpatial()}},
		{"matmul/inhouse", &mm, arch.InHouse(), Options{Spatial: arch.InHouseSpatial()}},
		{"conv/noreduce", &conv, arch.CaseStudy(), Options{Spatial: arch.CaseStudySpatial(), NoReduce: true, MaxCandidates: 4000}},
		{"conv/capped", &conv, arch.CaseStudy(), Options{Spatial: arch.CaseStudySpatial(), MaxCandidates: 700}},
		{"matmul/capped-edp", &mm, arch.InHouse(), Options{Spatial: arch.InHouseSpatial(), MaxCandidates: 900, Objective: MinEDP}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, refStats, err := Best(context.Background(), tc.l, tc.a, &tc.opt)
			if err != nil {
				t.Fatalf("Best: %v", err)
			}
			wantStats := normalizeStats(*refStats)
			for _, k := range []int{1, 2, 7, 16} {
				cand, stats, opt := (*Candidate)(nil), (*Stats)(nil), tc.opt
				cand, stats = runSharded(t, tc.l, tc.a, &opt, k)
				if cand == nil {
					t.Fatalf("k=%d: merge found no winner, Best did", k)
				}
				if got, want := cand.Mapping.Temporal.String(), ref.Mapping.Temporal.String(); got != want {
					t.Errorf("k=%d: winner %q, want %q", k, got, want)
				}
				if cand.Result.CCTotal != ref.Result.CCTotal {
					t.Errorf("k=%d: CCTotal %v, want %v", k, cand.Result.CCTotal, ref.Result.CCTotal)
				}
				if cand.EnergyPJ != ref.EnergyPJ {
					t.Errorf("k=%d: EnergyPJ %v, want %v", k, cand.EnergyPJ, ref.EnergyPJ)
				}
				if got := normalizeStats(*stats); !reflect.DeepEqual(got, wantStats) {
					t.Errorf("k=%d: stats %+v, want %+v", k, got, wantStats)
				}
			}
		})
	}
}

// TestShardedSearchIdentitySubSplit: the cap-concentrated case the prefix
// partition cannot balance — a conv whose full-depth walk holds one block
// multiset of 20160 distinct orderings with the budget capped so that the
// multiset is a large share of all visited work. The planner must cut
// through the multiset (sub-multiset specs), and the merge must still be bit
// for bit the single-engine search, with and without the symmetry reduction
// (classes straddling a mid-multiset boundary exercise the min-seq
// reconciliation).
func TestShardedSearchIdentitySubSplit(t *testing.T) {
	conv := workload.NewConv2D("capped", 1, 128, 128, 14, 14, 3, 3)
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"reduce", Options{Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 20000}},
		{"noreduce", Options{Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 20000, NoReduce: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref, refStats, err := Best(context.Background(), &conv, arch.CaseStudy(), &tc.opt)
			if err != nil {
				t.Fatalf("Best: %v", err)
			}
			wantStats := normalizeStats(*refStats)
			subSplits := 0
			for _, k := range []int{1, 2, 7, 16} {
				opt := tc.opt
				plan, err := PlanShards(context.Background(), &conv, arch.CaseStudy(), &opt, k)
				if err != nil {
					t.Fatalf("PlanShards(k=%d): %v", k, err)
				}
				for _, sp := range plan.Specs {
					if sp.PermLo > 0 {
						subSplits++
					}
				}
				cand, stats := runSharded(t, &conv, arch.CaseStudy(), &opt, k)
				if cand == nil {
					t.Fatalf("k=%d: merge found no winner, Best did", k)
				}
				if got, want := cand.Mapping.Temporal.String(), ref.Mapping.Temporal.String(); got != want {
					t.Errorf("k=%d: winner %q, want %q", k, got, want)
				}
				if cand.Result.CCTotal != ref.Result.CCTotal {
					t.Errorf("k=%d: CCTotal %v, want %v", k, cand.Result.CCTotal, ref.Result.CCTotal)
				}
				if got := normalizeStats(*stats); !reflect.DeepEqual(got, wantStats) {
					t.Errorf("k=%d: stats %+v, want %+v", k, got, wantStats)
				}
			}
			if subSplits == 0 {
				t.Fatal("no plan used a sub-multiset boundary; the case no longer exercises PermLo/PermHi")
			}
		})
	}
}

// TestShardStealIdentity: truncating running shards at arbitrary positions
// and re-planning every remainder with SplitShard — the fabric's steal cycle
// — reproduces the single-engine search bit for bit for any truncation
// schedule, capped or not, with or without the reduction.
func TestShardStealIdentity(t *testing.T) {
	conv := workload.ResNet18Suite()[3]
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"reduce", Options{Spatial: arch.CaseStudySpatial()}},
		{"capped", Options{Spatial: arch.CaseStudySpatial(), MaxCandidates: 700}},
		{"noreduce-capped", Options{Spatial: arch.CaseStudySpatial(), NoReduce: true, MaxCandidates: 4000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref, refStats, err := Best(context.Background(), &conv, arch.CaseStudy(), &tc.opt)
			if err != nil {
				t.Fatalf("Best: %v", err)
			}
			wantStats := normalizeStats(*refStats)
			for _, k := range []int{2, 7} {
				opt := tc.opt
				plan, err := PlanShards(context.Background(), &conv, arch.CaseStudy(), &opt, k)
				if err != nil {
					t.Fatalf("PlanShards(k=%d): %v", k, err)
				}
				var outs []*ShardOutcome
				truncated := 0
				queue := append([]ShardSpec(nil), plan.Specs...)
				for len(queue) > 0 {
					spec := queue[0]
					queue = queue[1:]
					ctl := NewShardControl(spec)
					if truncated < 3 {
						// Force a stop a prime number of visits in: an
						// arbitrary position no boundary arithmetic aligns
						// with.
						ctl.Truncate(spec.WalkedBefore + 37)
					}
					out, err := BestShardControlled(context.Background(), &conv, arch.CaseStudy(), &opt, spec, ctl)
					if err != nil {
						t.Fatalf("k=%d: BestShardControlled: %v", k, err)
					}
					outs = append(outs, out)
					if out.Truncated {
						truncated++
						pieces, err := SplitShard(context.Background(), &conv, arch.CaseStudy(), &opt, out.Resume, 2)
						if err != nil {
							t.Fatalf("k=%d: SplitShard: %v", k, err)
						}
						queue = append(queue, pieces...)
					}
				}
				if truncated == 0 {
					t.Fatalf("k=%d: no shard truncated; the schedule exercises nothing", k)
				}
				cand, stats, err := MergeShards(&conv, arch.CaseStudy(), &opt, outs)
				if err != nil {
					t.Fatalf("k=%d: MergeShards: %v", k, err)
				}
				if cand == nil {
					t.Fatalf("k=%d: merge found no winner, Best did", k)
				}
				if got, want := cand.Mapping.Temporal.String(), ref.Mapping.Temporal.String(); got != want {
					t.Errorf("k=%d: winner %q, want %q", k, got, want)
				}
				if got := normalizeStats(*stats); !reflect.DeepEqual(got, wantStats) {
					t.Errorf("k=%d (%d steals): stats %+v, want %+v", k, truncated, got, wantStats)
				}
			}
		})
	}
}

// TestSplitShardTiling: SplitShard's pieces chain exactly — first piece
// starts at the input spec's position, each boundary is shared, the last
// piece ends at the input's end, and WalkedBefore is monotone.
func TestSplitShardTiling(t *testing.T) {
	conv := workload.NewConv2D("capped", 1, 128, 128, 14, 14, 3, 3)
	opt := Options{Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 20000}
	plan, err := PlanShards(context.Background(), &conv, arch.CaseStudy(), &opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range plan.Specs {
		for _, m := range []int{1, 2, 5} {
			pieces, err := SplitShard(context.Background(), &conv, arch.CaseStudy(), &opt, spec, m)
			if err != nil {
				t.Fatalf("SplitShard(%+v, %d): %v", spec, m, err)
			}
			if len(pieces) == 0 || len(pieces) > m {
				t.Fatalf("SplitShard(%+v, %d): %d pieces", spec, m, len(pieces))
			}
			first, last := pieces[0], pieces[len(pieces)-1]
			if first.Lo != spec.Lo || first.PermLo != spec.PermLo || first.WalkedBefore != spec.WalkedBefore {
				t.Errorf("m=%d: first piece %+v does not start at %+v", m, first, spec)
			}
			if last.Hi != spec.Hi || last.PermHi != spec.PermHi {
				t.Errorf("m=%d: last piece %+v does not end at %+v", m, last, spec)
			}
			for i := 1; i < len(pieces); i++ {
				a, b := pieces[i-1], pieces[i]
				if b.Lo != a.Hi || b.PermLo != a.PermHi {
					t.Errorf("m=%d: pieces %d/%d do not chain: %+v then %+v", m, i-1, i, a, b)
				}
				if b.WalkedBefore < a.WalkedBefore {
					t.Errorf("m=%d: WalkedBefore went backwards at piece %d", m, i)
				}
			}
		}
	}
}

// TestShardPlanInvariants: shard specs tile [0, Prefixes) contiguously and
// the walk-state handoff is consistent (monotone WalkedBefore starting at 0;
// once the capped flag hands off true it stays true).
func TestShardPlanInvariants(t *testing.T) {
	conv := workload.ResNet18Suite()[3]
	opt := Options{Spatial: arch.CaseStudySpatial(), MaxCandidates: 700}
	for _, k := range []int{1, 2, 7, 16} {
		plan, err := PlanShards(context.Background(), &conv, arch.CaseStudy(), &opt, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if plan.Specs[0].Lo != 0 || plan.Specs[len(plan.Specs)-1].Hi != plan.Prefixes {
			t.Fatalf("k=%d: specs do not span [0, %d): %+v", k, plan.Prefixes, plan.Specs)
		}
		capped := false
		for i, sp := range plan.Specs {
			if sp.Lo > sp.Hi {
				t.Fatalf("k=%d shard %d: inverted range %+v", k, i, sp)
			}
			if i > 0 {
				prev := plan.Specs[i-1]
				if sp.Lo != prev.Hi || sp.PermLo != prev.PermHi {
					t.Fatalf("k=%d shard %d: gap/overlap at %d+%d (prev %d+%d)", k, i, sp.Lo, sp.PermLo, prev.Hi, prev.PermHi)
				}
				if sp.WalkedBefore < prev.WalkedBefore {
					t.Fatalf("k=%d shard %d: WalkedBefore went backwards", k, i)
				}
			} else if sp.WalkedBefore != 0 || sp.CappedBefore {
				t.Fatalf("k=%d: first shard has nonzero handoff %+v", k, sp)
			}
			if capped && !sp.CappedBefore {
				t.Fatalf("k=%d shard %d: capped flag reset mid-plan", k, i)
			}
			capped = sp.CappedBefore
		}
	}
}

// TestBestShardValidation: malformed specs are rejected, not walked.
func TestBestShardValidation(t *testing.T) {
	mm := workload.NewMatMul("mm", 32, 32, 32)
	opt := Options{Spatial: arch.InHouseSpatial()}
	for _, spec := range []ShardSpec{
		{Depth: 0, Lo: 0, Hi: 1},
		{Depth: 99, Lo: 0, Hi: 1},
		{Depth: 3, Lo: 2, Hi: 1},
		{Depth: 3, Lo: -1, Hi: 1},
		{Depth: 3, Lo: 1, Hi: 1, PermLo: 5, PermHi: 2},          // inverted sub-range
		{Depth: 3, Lo: 0, Hi: 1, PermLo: -1},                    // negative offset
		{Depth: 3, Lo: 0, Hi: 1, PermLo: 3, WalkedBefore: 1},    // walked < perm offset
		{Depth: 3, Lo: 0, Hi: 1, PermLo: 1, WalkedBefore: 5, CappedBefore: true}, // capped at a visited position
	} {
		if _, err := BestShard(context.Background(), &mm, arch.InHouse(), &opt, spec); err == nil {
			t.Errorf("BestShard(%+v): expected error", spec)
		}
	}
}

/// TestPlanShardsCanceled: a canceled context aborts planning.
func TestPlanShardsCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	conv := workload.ResNet18Suite()[3]
	if _, err := PlanShards(ctx, &conv, arch.CaseStudy(), &Options{Spatial: arch.CaseStudySpatial()}, 4); err == nil {
		t.Fatal("expected context error")
	}
}
