package mapper

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/workload"
)

func opts() *Options {
	return &Options{Spatial: arch.CaseStudySpatial(), BWAware: true}
}

func TestBestFindsValidMapping(t *testing.T) {
	l := workload.NewMatMul("m", 32, 64, 64)
	a := arch.CaseStudy()
	best, stats, err := Best(context.Background(), &l, a, opts())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Valid == 0 || stats.NestsGenerated == 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if err := best.Mapping.Validate(&l, a); err != nil {
		t.Fatalf("best mapping invalid: %v", err)
	}
	if best.Result.CCTotal <= 0 {
		t.Error("non-positive latency")
	}
	// CC_spatial of any valid mapping here: (32/8)*(64/16)*(64/2) = 512.
	if best.Result.CCSpatial != 512 {
		t.Errorf("CCSpatial = %d, want 512", best.Result.CCSpatial)
	}
}

func TestDeterminism(t *testing.T) {
	l := workload.NewMatMul("m", 16, 32, 32)
	a := arch.CaseStudy()
	b1, _, err := Best(context.Background(), &l, a, opts())
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := Best(context.Background(), &l, a, opts())
	if err != nil {
		t.Fatal(err)
	}
	if b1.Result.CCTotal != b2.Result.CCTotal || b1.Mapping.Temporal.String() != b2.Mapping.Temporal.String() {
		t.Error("search not deterministic")
	}
}

func TestEnumerateSortedAndValid(t *testing.T) {
	l := workload.NewMatMul("m", 16, 32, 32)
	a := arch.CaseStudy()
	all, stats, err := Enumerate(context.Background(), &l, a, opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != stats.Valid {
		t.Fatalf("returned %d != valid %d", len(all), stats.Valid)
	}
	if len(all) < 2 {
		t.Fatalf("space too small: %d", len(all))
	}
	for i, c := range all {
		if err := c.Mapping.Validate(&l, a); err != nil {
			t.Fatalf("candidate %d invalid: %v", i, err)
		}
		if i > 0 && all[i-1].Result.CCTotal > c.Result.CCTotal+1e-9 {
			t.Fatal("enumeration not sorted by latency")
		}
	}
}

func TestObjectives(t *testing.T) {
	l := workload.NewMatMul("m", 16, 32, 32)
	a := arch.CaseStudy()

	oe := opts()
	oe.Objective = MinEnergy
	be, _, err := Best(context.Background(), &l, a, oe)
	if err != nil {
		t.Fatal(err)
	}
	if be.EnergyPJ <= 0 {
		t.Error("no energy computed for MinEnergy objective")
	}

	ol := opts()
	bl, _, err := Best(context.Background(), &l, a, ol)
	if err != nil {
		t.Fatal(err)
	}
	if bl.Result.CCTotal > be.Result.CCTotal+1e-9 {
		t.Error("latency-best slower than energy-best")
	}

	op := opts()
	op.Objective = MinEDP
	bp, _, err := Best(context.Background(), &l, a, op)
	if err != nil {
		t.Fatal(err)
	}
	if bp.EnergyPJ*bp.Result.CCTotal > be.EnergyPJ*be.Result.CCTotal+1e-6 {
		t.Error("EDP-best has worse EDP than energy-best")
	}
}

func TestBWUnawareRanking(t *testing.T) {
	l := workload.NewMatMul("m", 32, 64, 64)
	a := arch.CaseStudy()
	ou := opts()
	ou.BWAware = false
	bu, _, err := Best(context.Background(), &l, a, ou)
	if err != nil {
		t.Fatal(err)
	}
	if bu.Result.SSOverall != 0 {
		t.Error("baseline result carries temporal stall")
	}
	// Re-scoring the unaware winner with the aware model can only be
	// slower or equal to the aware winner.
	ba, _, err := Best(context.Background(), &l, a, opts())
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{Layer: &l, Arch: a, Mapping: bu.Mapping}
	re, err := core.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if re.CCTotal < ba.Result.CCTotal-1e-9 {
		t.Errorf("aware search missed a better mapping: %v < %v", re.CCTotal, ba.Result.CCTotal)
	}
}

func TestMaxCandidatesCap(t *testing.T) {
	l := workload.NewMatMul("m", 64, 128, 256)
	a := arch.CaseStudy()
	o := opts()
	o.MaxCandidates = 50
	_, stats, err := Best(context.Background(), &l, a, o)
	if err != nil && stats == nil {
		t.Fatal(err)
	}
	if stats.NestsGenerated > 50 {
		t.Errorf("cap exceeded: %d", stats.NestsGenerated)
	}
	if stats.Skipped == 0 {
		t.Error("expected skipped nests with a tight cap")
	}
}

func TestSplits(t *testing.T) {
	s := splits(12, 2, false)
	// {12}, {2,6}, {3,4}, {4,3}, {6,2}.
	if len(s) != 5 {
		t.Errorf("splits(12) = %v", s)
	}
	s1 := splits(12, 1, false)
	if len(s1) != 1 || s1[0][0] != 12 {
		t.Errorf("splits(12, 1 part) = %v", s1)
	}
	p2 := splits(12, 2, true)
	// pow2 keeps {12} and pairs with both factors pow2-or-extent: none of
	// (2,6),(3,4),(4,3),(6,2) qualify except... 2 is pow2 but 6 is not.
	if len(p2) != 1 {
		t.Errorf("pow2 splits(12) = %v", p2)
	}
	if got := splits(1, 2, false); len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("splits(1) = %v", got)
	}
	if got := splits(8, 2, true); len(got) != 3 { // {8},{2,4},{4,2}
		t.Errorf("pow2 splits(8) = %v", got)
	}
}

func TestPermuteDedup(t *testing.T) {
	blocks := []loops.Loop{{Dim: loops.C, Size: 2}, {Dim: loops.C, Size: 2}}
	count := 0
	permute(blocks, func(loops.Nest) bool { count++; return true })
	if count != 1 {
		t.Errorf("duplicate blocks gave %d permutations, want 1", count)
	}
	var none int
	permute(nil, func(loops.Nest) bool { none++; return true })
	if none != 1 {
		t.Errorf("empty permute visited %d times", none)
	}
}

func TestNoValidMapping(t *testing.T) {
	// Shrink the registers below the spatial tile so nothing fits.
	a := arch.CaseStudy()
	a.MemoryByName("W-Reg").CapacityBits = 8
	l := workload.NewMatMul("m", 16, 32, 32)
	if _, _, err := Best(context.Background(), &l, a, opts()); err == nil {
		t.Error("expected no-valid-mapping error")
	}
}

func TestBadInputs(t *testing.T) {
	l := workload.NewMatMul("m", 16, 32, 32)
	a := arch.CaseStudy()
	if _, _, err := Best(context.Background(), &l, a, &Options{}); err == nil {
		t.Error("missing spatial accepted")
	}
	bad := workload.NewMatMul("m", 16, 32, 32)
	bad.Dims[loops.C] = -3
	if _, _, err := Best(context.Background(), &bad, a, opts()); err == nil {
		t.Error("invalid layer accepted")
	}
}

// The greedy boundary assignment must produce output-stationary mappings
// when the O registers can hold the spatial tile: all reduction loops that
// fit below O's top boundary sit at the register level.
func TestGreedyNormalizesReuseLoops(t *testing.T) {
	l := workload.NewMatMul("m", 16, 32, 32)
	a := arch.CaseStudy()
	best, _, err := Best(context.Background(), &l, a, opts())
	if err != nil {
		t.Fatal(err)
	}
	m := best.Mapping
	// O's register level must contain every loop that does not grow the O
	// tile beyond capacity — in particular the innermost loop if it is a
	// C loop.
	if m.Temporal[0].Dim == loops.C && m.Bound[loops.O][0] == 0 {
		t.Error("greedy left a free reuse loop above the O register level")
	}
}
