package mapper

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/workload"
)

func TestAnnealMatchesExhaustiveOnSmallSpace(t *testing.T) {
	l := workload.NewMatMul("a", 32, 64, 64)
	hw := arch.CaseStudy()
	exh, _, err := Best(context.Background(), &l, hw, opts())
	if err != nil {
		t.Fatal(err)
	}
	ann, err := Anneal(context.Background(), &l, hw, &AnnealOptions{
		Spatial: arch.CaseStudySpatial(), BWAware: true,
		Iterations: 3000, Restarts: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ann.Mapping.Validate(&l, hw); err != nil {
		t.Fatalf("anneal mapping invalid: %v", err)
	}
	// The annealer must come within 15% of the exhaustive optimum.
	if ann.Result.CCTotal > 1.15*exh.Result.CCTotal {
		t.Errorf("anneal %.0f vs exhaustive %.0f", ann.Result.CCTotal, exh.Result.CCTotal)
	}
}

func TestAnnealDeterministic(t *testing.T) {
	l := workload.NewMatMul("d", 32, 32, 32)
	hw := arch.CaseStudy()
	o := &AnnealOptions{Spatial: arch.CaseStudySpatial(), BWAware: true, Iterations: 800, Seed: 42}
	a1, err := Anneal(context.Background(), &l, hw, o)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Anneal(context.Background(), &l, hw, o)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Result.CCTotal != a2.Result.CCTotal {
		t.Error("annealing not deterministic for a fixed seed")
	}
}

func TestAnnealDirectConv(t *testing.T) {
	// A 7-dim direct conv: the exhaustive space explodes, the annealer
	// must still return a valid competitive mapping.
	l := workload.NewConv2D("c", 1, 32, 16, 28, 28, 3, 3)
	hw := arch.RowStationary()
	ann, err := Anneal(context.Background(), &l, hw, &AnnealOptions{
		Spatial: arch.RowStationarySpatial(), BWAware: true,
		Iterations: 2500, Restarts: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ann.Mapping.Validate(&l, hw); err != nil {
		t.Fatal(err)
	}
	if ann.Result.Utilization <= 0.2 {
		t.Errorf("anneal utilization %.2f implausibly low", ann.Result.Utilization)
	}
}

func TestAnnealErrors(t *testing.T) {
	l := workload.NewMatMul("e", 8, 8, 8)
	hw := arch.CaseStudy()
	if _, err := Anneal(context.Background(), &l, hw, nil); err == nil {
		t.Error("nil options accepted")
	}
	bad := workload.NewMatMul("b", 8, 8, 8)
	bad.Dims[0] = -1
	if _, err := Anneal(context.Background(), &bad, hw, &AnnealOptions{Spatial: arch.CaseStudySpatial()}); err == nil {
		t.Error("invalid layer accepted")
	}
}

func TestNeighbourPreservesProduct(t *testing.T) {
	l := workload.NewMatMul("n", 32, 64, 64)
	hw := arch.CaseStudy()
	ann, err := Anneal(context.Background(), &l, hw, &AnnealOptions{
		Spatial: arch.CaseStudySpatial(), BWAware: true, Iterations: 500, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Whatever state won, its per-dim products must still cover the
	// layer exactly (moves preserve products).
	tp := ann.Mapping.Temporal.DimProduct()
	sp := ann.Mapping.Spatial.DimProduct()
	for _, d := range []int{0, 1, 2} { // B, K, C
		if tp[d]*sp[d] < l.Dims[d] {
			t.Errorf("dim %d under-covered", d)
		}
	}
}
