package mapper

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/workload"
)

func TestSpatialCandidatesBasics(t *testing.T) {
	l := workload.NewMatMul("m", 64, 64, 64)
	a := arch.CaseStudy()
	cands := SpatialCandidates(&l, a, &SpatialOptions{})
	if len(cands) == 0 {
		t.Fatal("no spatial candidates")
	}
	seen := map[string]bool{}
	for _, sp := range cands {
		if p := sp.Product(); p > a.MACs || float64(p) < 0.5*float64(a.MACs) {
			t.Errorf("candidate %s occupancy out of band", sp)
		}
		if seen[sp.String()] {
			t.Errorf("duplicate candidate %s", sp)
		}
		seen[sp.String()] = true
		for _, lp := range sp {
			if lp.Dim != loops.K && lp.Dim != loops.B && lp.Dim != loops.C {
				t.Errorf("unexpected dim in %s", sp)
			}
		}
	}
	// A full-occupancy candidate must exist for power-of-two dims.
	full := false
	for _, sp := range cands {
		if sp.Product() == a.MACs {
			full = true
		}
	}
	if !full {
		t.Error("no full-occupancy unrolling found")
	}
}

func TestSpatialCandidatesRespectLimits(t *testing.T) {
	l := workload.NewMatMul("m", 64, 64, 64)
	a := arch.CaseStudy()
	cands := SpatialCandidates(&l, a, &SpatialOptions{MaxSpatials: 3})
	if len(cands) > 3 {
		t.Errorf("cap ignored: %d", len(cands))
	}
	two := SpatialCandidates(&l, a, &SpatialOptions{MaxDims: 1})
	for _, sp := range two {
		if len(sp) > 1 {
			t.Errorf("MaxDims=1 violated: %s", sp)
		}
	}
}

func TestSpatialCandidatesConvDims(t *testing.T) {
	l := workload.NewConv2D("c", 1, 32, 16, 28, 28, 3, 3)
	a := arch.CaseStudy()
	cands := SpatialCandidates(&l, a, &SpatialOptions{
		Dims: []loops.Dim{loops.K, loops.OY, loops.FY},
	})
	if len(cands) == 0 {
		t.Fatal("no conv spatial candidates")
	}
	hasOY := false
	for _, sp := range cands {
		for _, lp := range sp {
			if lp.Dim == loops.OY {
				hasOY = true
			}
		}
	}
	if !hasOY {
		t.Error("no candidate unrolls OY")
	}
}

func TestBestWithSpatial(t *testing.T) {
	l := workload.NewMatMul("m", 48, 48, 48)
	a := arch.CaseStudy()
	best, sp, stats, err := BestWithSpatial(context.Background(), &l, a, &SpatialOptions{
		MaxSpatials: 6,
		Temporal:    Options{BWAware: true, MaxCandidates: 600},
	})
	if err != nil {
		t.Fatal(err)
	}
	if best == nil || len(sp) == 0 || stats.Valid == 0 {
		t.Fatalf("missing results: %+v", stats)
	}
	if err := best.Mapping.Validate(&l, a); err != nil {
		t.Fatal(err)
	}
	if best.Mapping.Spatial.String() != sp.String() {
		t.Error("winning spatial not the mapping's spatial")
	}
	// Joint search must beat-or-match the fixed canonical unrolling,
	// since the canonical K16|B8|C2 is in the candidate set.
	fixed, _, err := Best(context.Background(), &l, a, &Options{
		Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 600,
	})
	if err == nil && best.Result.CCTotal > fixed.Result.CCTotal+1e-9 {
		t.Errorf("joint search (%v) worse than fixed spatial (%v)", best.Result.CCTotal, fixed.Result.CCTotal)
	}
}

func TestBestWithSpatialNoCandidates(t *testing.T) {
	l := workload.NewMatMul("m", 2, 2, 2) // cannot fill half of 256 MACs
	a := arch.CaseStudy()
	if _, _, _, err := BestWithSpatial(context.Background(), &l, a, &SpatialOptions{}); err == nil {
		t.Error("expected no-candidate error")
	}
}
