package mapper

// Content-addressed memoization of whole mapping searches. A search is a
// pure function of (layer shape, architecture, search options) — PR 1 made
// the engine bit-deterministic for any worker count — so its result can be
// keyed by a canonical fingerprint and shared: across the repeated layer
// shapes of a real network (network.Evaluate), across the re-visited grid
// points of a DSE sweep, across annealing restarts, and (optionally, via the
// on-disk store) across CLI invocations.
//
// Five option fields are deliberately EXCLUDED from the key: Workers,
// NoPrune, NoReduce, NoSurrogate and Hooks. None of them can change the
// selected mapping or its score — Workers, NoPrune and NoSurrogate only
// steer scheduling (the surrogate orders the stream, it never scores it:
// DESIGN.md §12), the symmetry reduction is exact (DESIGN.md §9), and
// telemetry hooks only observe — so keying on them would only split
// identical results across entries. The
// Stats counters DO depend on NoReduce (a reduced run walks classes, a full
// run walks orderings): like Pruned already did, a cached result reports the
// counters of whichever run populated the cache. Hook coalescing caveat:
// when a cached search deduplicates concurrent or repeated calls, only the
// call that actually computes sees telemetry events — followers get the
// shared result with no event stream.
//
// Cached *Candidate values are shared between every caller with the same
// key and MUST be treated as immutable; Stats are returned as per-call
// copies. Because the layer NAME is not part of the key, a "no valid
// mapping" outcome is re-reported under each caller's own layer name.

import (
	"bytes"
	"context"
	"encoding/gob"
	"sync"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/memo"
	"repro/internal/workload"
)

// diskFormatVersion tags the on-disk payload layout AND the model arithmetic
// feeding it. Bump on any change to the gob payloads below, to the search
// space enumeration, or to the latency/energy arithmetic — stale files then
// read as misses.
//
// Version history: 1 = PR 2 (initial disk cache); 2 = symmetry-reduced
// enumeration (Stats gained ClassesMerged/SubtreesPruned, cap and Skipped
// semantics changed to the walk budget); 3 = surrogate-guided search (Stats
// gained SurrogateReorders/SurrogatePruned/SurrogateRankCorr).
const diskFormatVersion = 3

// DiskVersion returns the current on-disk/wire payload format version.
// Remote blob tiers embed it in their protocol so that nodes running
// different model arithmetic read each other's entries as misses instead of
// mixing results.
func DiskVersion() int { return diskFormatVersion }

var (
	blobMu    sync.Mutex
	blobStore memo.Store
)

// EnableDiskCache opens the on-disk search cache rooted at the resolved
// directory ("auto" selects <user cache dir>/repro-latmodel) and routes all
// subsequent cached searches through it. Returns the resolved directory.
func EnableDiskCache(dirFlag string) (string, error) {
	d, dir, err := OpenDiskStore(dirFlag)
	if err != nil {
		return "", err
	}
	SetBlobStore(d)
	return dir, nil
}

// OpenDiskStore opens the gob disk tier at the resolved directory WITHOUT
// installing it, for callers composing tiers (memo.Tiered) before a single
// SetBlobStore. Returns the store and the resolved directory.
func OpenDiskStore(dirFlag string) (memo.Store, string, error) {
	dir, err := memo.ResolveDir(dirFlag)
	if err != nil {
		return nil, "", err
	}
	d, err := memo.OpenDisk(dir, diskFormatVersion)
	if err != nil {
		return nil, "", err
	}
	return d, dir, nil
}

// SetBlobStore routes all subsequent cached searches through s — any
// memo.Store: the gob disk tier, an in-process store, a remote servemodel
// node, or a tiered composition. nil detaches (DisableDiskCache). The store
// only ever sees deterministically encoded winners under content-addressed
// keys, so a store shared by a fleet hands every node bit-identical results.
func SetBlobStore(s memo.Store) {
	blobMu.Lock()
	blobStore = s
	blobMu.Unlock()
}

// BlobStore returns the currently installed blob store (nil when detached).
func BlobStore() memo.Store {
	blobMu.Lock()
	defer blobMu.Unlock()
	return blobStore
}

// DisableDiskCache detaches the blob store (tests).
func DisableDiskCache() { SetBlobStore(nil) }

func getStore() memo.Store {
	blobMu.Lock()
	defer blobMu.Unlock()
	return blobStore
}

// searchResult is the cached value of one Best search. cand is nil when the
// search completed but found no valid mapping. layer and a record the
// problem the result was computed for (the layer by value — the caller's
// may be reused), so HarvestSamples can rebuild the winning mapping's
// surrogate features without re-running anything.
type searchResult struct {
	cand  *Candidate
	stats Stats
	layer workload.Layer
	a     *arch.Arch
}

// bestKey fingerprints everything a Best search's result depends on.
// o must already be normalized (defaults filled in), so that explicit and
// defaulted options key identically.
func bestKey(l *workload.Layer, a *arch.Arch, o *Options) memo.Key {
	var b memo.Builder
	b.Str("mapper.Best/1")
	b.Layer(l)
	b.Arch(a)
	b.Nest(o.Spatial)
	b.Int(int64(o.MaxSplitsPerDim))
	b.Bool(o.Pow2Splits)
	b.Int(int64(o.MaxCandidates))
	b.Uint(uint64(o.Objective))
	b.Bool(o.BWAware)
	b.EnergyTable(o.EnergyTable)
	return b.Key()
}

// diskSearch is the on-disk payload of a successful search: the winning
// temporal nest plus the exact statistics. The Candidate itself is NOT
// stored — it is rebuilt by re-running the deterministic materialization
// path (evaluate) on the stored nest, which reproduces the in-memory result
// bit for bit and re-validates the nest against the live layer/arch (a
// corrupt or stale payload degrades to a miss).
type diskSearch struct {
	Temporal loops.Nest
	Stats    Stats
}

func encodeSearch(c *Candidate, st *Stats) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(diskSearch{Temporal: c.Mapping.Temporal, Stats: *st}); err != nil {
		return nil
	}
	return buf.Bytes()
}

func decodeSearch(l *workload.Layer, a *arch.Arch, o *Options, blob []byte) *searchResult {
	var ds diskSearch
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&ds); err != nil {
		return nil
	}
	c := evaluate(l, a, o, ds.Temporal)
	if c == nil {
		return nil
	}
	return &searchResult{cand: c, stats: ds.Stats, layer: *l, a: a}
}

// BestCached is Best behind the process-wide memo cache: the first call for
// a (layer shape, arch, options) key runs the search, concurrent calls for
// the same key join it in flight (singleflight), and later calls are served
// from memory — or from the on-disk store when EnableDiskCache is active.
// Results are bit-identical to Best. The returned Candidate is shared and
// must not be mutated; the Stats are a private copy.
//
// Cancellation: a search that dies with ctx.Err() is neither kept in the
// memo cache nor written to disk (memo.Cache.Do evicts context-error
// entries), so an abandoned request can never poison the cache with a
// partial result. A caller whose ctx fires while COALESCED onto another
// caller's in-flight search returns its own ctx.Err() and leaves that
// search running for the others.
func BestCached(ctx context.Context, l *workload.Layer, a *arch.Arch, opt *Options) (*Candidate, *Stats, error) {
	return BestCachedVia(ctx, l, a, opt, nil)
}

// SearchFunc is a pluggable whole-search executor with runSearch's contract:
// it returns (nil, stats, nil) when the search completed and found no valid
// mapping, and an error only for infrastructure failures (cancellation,
// unreachable shards). An implementation MUST be bit-identical to Best for
// the same (layer, arch, options) — its results are cached under the same
// content-addressed key Best uses, so a divergent executor would poison
// every caller. The sharded fabric (internal/fabric) satisfies this by
// construction (DESIGN.md §13).
type SearchFunc func(ctx context.Context, l *workload.Layer, a *arch.Arch, o *Options) (*Candidate, *Stats, error)

// BestCachedVia is BestCached with the search itself delegated to run (nil
// falls back to the in-process engine). Memoization, coalescing, the blob
// store and the cancellation contract are identical to BestCached — only who
// computes a cold result changes.
func BestCachedVia(ctx context.Context, l *workload.Layer, a *arch.Arch, opt *Options, run SearchFunc) (*Candidate, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := opt.normalized()
	k := bestKey(l, a, &o)
	v, err := memo.Default.Do(ctx, k, func(ctx context.Context) (any, error) {
		if s := getStore(); s != nil {
			if blob, ok := s.Get(ctx, k); ok {
				if res := decodeSearch(l, a, &o, blob); res != nil {
					memo.Default.Counters().NoteDiskHit()
					return res, nil
				}
			}
		}
		var best *Candidate
		var stats *Stats
		var err error
		if run != nil {
			best, stats, err = run(ctx, l, a, &o)
		} else {
			best, _, stats, err = runSearch(ctx, l, a, &o, modeBest, nil)
		}
		if err != nil {
			return nil, err
		}
		res := &searchResult{cand: best, stats: *stats, layer: *l, a: a}
		if best != nil {
			if s := getStore(); s != nil {
				if blob := encodeSearch(best, stats); blob != nil {
					s.Put(ctx, k, blob)
				}
			}
		}
		return res, nil
	})
	if err != nil {
		return nil, nil, err
	}
	res := v.(*searchResult)
	st := res.stats
	if res.cand == nil {
		return nil, &st, NoValidMappingError(l, a, &st)
	}
	return res.cand, &st, nil
}

// annealKey fingerprints an Anneal run: the annealer is seeded and its
// chains are merged deterministically, so the result is a pure function of
// these fields. NoReduce is excluded like in bestKey: the signature cache
// cannot change any score or accept/reject decision, only which member of
// the winning equivalence class is materialized.
func annealKey(l *workload.Layer, a *arch.Arch, o *AnnealOptions) memo.Key {
	// Mirror Anneal's defaulting so explicit and defaulted options key
	// identically.
	iters, restarts, seed := o.Iterations, o.Restarts, o.Seed
	if iters <= 0 {
		iters = 4000
	}
	if restarts <= 0 {
		restarts = 3
	}
	if seed == 0 {
		seed = 1
	}
	var b memo.Builder
	b.Str("mapper.Anneal/1")
	b.Layer(l)
	b.Arch(a)
	b.Nest(o.Spatial)
	b.Int(int64(iters))
	b.Int(int64(restarts))
	b.Int(seed)
	b.Float(o.InitialTemp)
	b.Uint(uint64(o.Objective))
	b.Bool(o.BWAware)
	return b.Key()
}

// AnnealCached is Anneal behind the memo cache (and the disk store when
// enabled), with the same determinism and cancellation contract as
// BestCached.
func AnnealCached(ctx context.Context, l *workload.Layer, a *arch.Arch, opt *AnnealOptions) (*Candidate, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt == nil {
		return Anneal(ctx, l, a, opt) // let Anneal report the error
	}
	k := annealKey(l, a, opt)
	evalOpts := &Options{Spatial: opt.Spatial, BWAware: opt.BWAware, Objective: opt.Objective}
	v, err := memo.Default.Do(ctx, k, func(ctx context.Context) (any, error) {
		if s := getStore(); s != nil {
			if blob, ok := s.Get(ctx, k); ok {
				if res := decodeSearch(l, a, evalOpts, blob); res != nil {
					memo.Default.Counters().NoteDiskHit()
					return res, nil
				}
			}
		}
		c, err := Anneal(ctx, l, a, opt)
		if err != nil {
			return nil, err
		}
		if s := getStore(); s != nil {
			var st Stats
			if blob := encodeSearch(c, &st); blob != nil {
				s.Put(ctx, k, blob)
			}
		}
		return &searchResult{cand: c, layer: *l, a: a}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*searchResult).cand, nil
}
