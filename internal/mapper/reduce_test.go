package mapper

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/workload"
)

// TestClassMembersScoreIdentical is the reduction's exactness property,
// asserted member by member: enumerate the FULL ordering space (NoReduce),
// group the valid candidates by their model-equivalence signature, and
// require every member of a class to carry bit-identical latency (and
// energy, which the EDP objective consumes) to its class mates.
func TestClassMembersScoreIdentical(t *testing.T) {
	cases := []struct {
		name string
		l    workload.Layer
		a    *arch.Arch
		o    Options
	}{
		{
			name: "casestudy",
			l:    workload.NewMatMul("m", 16, 32, 32),
			a:    arch.CaseStudy(),
			o:    Options{Spatial: arch.CaseStudySpatial(), BWAware: true, Objective: MinEDP},
		},
		{
			name: "inhouse-unaware",
			l:    workload.NewMatMul("m", 16, 64, 64),
			a:    arch.InHouse(),
			o:    Options{Spatial: arch.InHouseSpatial(), BWAware: false, MaxCandidates: 4000},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := tc.o
			o.NoReduce = true
			o.Workers = 1
			all, _, err := Enumerate(context.Background(), &tc.l, tc.a, &o)
			if err != nil {
				t.Fatal(err)
			}
			canon := newCanonicalizer(&tc.l, tc.a, o.Spatial)
			type classRef struct {
				nest     string
				latency  float64
				energyPJ float64
			}
			classes := map[string]classRef{}
			merged := 0
			for _, c := range all {
				sig := string(canon.signature(c.Mapping.Temporal))
				ref, ok := classes[sig]
				if !ok {
					classes[sig] = classRef{
						nest:     c.Mapping.Temporal.String(),
						latency:  c.Result.CCTotal,
						energyPJ: c.EnergyPJ,
					}
					continue
				}
				merged++
				if c.Result.CCTotal != ref.latency || c.EnergyPJ != ref.energyPJ {
					t.Fatalf("class member %s scores (%v, %v pJ), its representative %s scores (%v, %v pJ)",
						c.Mapping.Temporal, c.Result.CCTotal, c.EnergyPJ,
						ref.nest, ref.latency, ref.energyPJ)
				}
			}
			if merged == 0 {
				t.Fatal("space has no multi-member classes; the property test is vacuous")
			}
			t.Logf("%d candidates in %d classes", len(all), len(classes))
		})
	}
}

// TestReductionBitIdentical is the acceptance property: Best with the
// symmetry reduction on returns the bit-identical candidate — score AND
// mapping — as the exhaustive NoReduce search, across the full test matrix
// (run under -race via `make race`). The representative the reduced walk
// emits first is exactly the member the exhaustive (score, seq) tie-break
// selects, so even the chosen ordering matches.
func TestReductionBitIdentical(t *testing.T) {
	for _, tc := range equivCases() {
		t.Run(tc.name, func(t *testing.T) {
			full := tc.o
			full.NoReduce = true
			fc, fs, ferr := Best(context.Background(), &tc.l, tc.a, &full)

			for _, workers := range []int{1, 4} {
				red := tc.o
				red.Workers = workers
				rc, rs, rerr := Best(context.Background(), &tc.l, tc.a, &red)
				if (rerr == nil) != (ferr == nil) {
					t.Fatalf("workers=%d: err %v, NoReduce err %v", workers, rerr, ferr)
				}
				if rerr != nil {
					continue
				}
				if rc.Result.CCTotal != fc.Result.CCTotal {
					t.Errorf("workers=%d: CCTotal %v, want %v (bit-identical)",
						workers, rc.Result.CCTotal, fc.Result.CCTotal)
				}
				if rc.Score(tc.o.Objective) != fc.Score(tc.o.Objective) {
					t.Errorf("workers=%d: score %v, want %v",
						workers, rc.Score(tc.o.Objective), fc.Score(tc.o.Objective))
				}
				if got, want := rc.Mapping.Temporal.String(), fc.Mapping.Temporal.String(); got != want {
					t.Errorf("workers=%d: mapping %s, want %s", workers, got, want)
				}
				if rs.NestsGenerated+rs.ClassesMerged != fs.NestsGenerated+fs.ClassesMerged {
					t.Errorf("workers=%d: walk length %d, NoReduce %d — the walks must coincide",
						workers, rs.NestsGenerated+rs.ClassesMerged, fs.NestsGenerated+fs.ClassesMerged)
				}
				if rs.ClassesMerged == 0 && rs.NestsGenerated > 1 {
					t.Errorf("workers=%d: reduction merged nothing on %d nests", workers, rs.NestsGenerated)
				}
				if fs.ClassesMerged != 0 {
					t.Errorf("NoReduce run reports ClassesMerged = %d", fs.ClassesMerged)
				}
			}
		})
	}
}

// TestGeneratorBoundSound cross-checks the generator's subtree prune
// against an oracle that never prunes: Enumerate (modeAll disables the
// bound). The uncapped Best must match the minimum of the full valid
// enumeration exactly.
func TestGeneratorBoundSound(t *testing.T) {
	for _, bwAware := range []bool{true, false} {
		l := workload.NewMatMul("m", 24, 48, 96)
		a := arch.CaseStudy()
		o := Options{Spatial: arch.CaseStudySpatial(), BWAware: bwAware, MaxCandidates: 1 << 30}
		all, _, err := Enumerate(context.Background(), &l, a, &o)
		if err != nil {
			t.Fatal(err)
		}
		best, stats, err := Best(context.Background(), &l, a, &o)
		if err != nil {
			t.Fatal(err)
		}
		if best.Result.CCTotal != all[0].Result.CCTotal {
			t.Errorf("bwAware=%v: Best %v, enumeration minimum %v — the bound pruned the winner",
				bwAware, best.Result.CCTotal, all[0].Result.CCTotal)
		}
		if stats.SubtreesPruned == 0 {
			t.Logf("bwAware=%v: bound never fired on this space", bwAware)
		}
	}
}

// TestSkippedExactAccounting pins the satellite fix: once MaxCandidates
// trips, Skipped reports the TRUE remainder of the ordering space (counted
// by multinomial arithmetic), so walked + Skipped is invariant across any
// budget. Enumerate is used because it never bound-prunes — every ordering
// is either walked or skipped.
func TestSkippedExactAccounting(t *testing.T) {
	l := workload.NewMatMul("m", 32, 64, 64)
	a := arch.CaseStudy()
	base := Options{Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 1 << 30, Workers: 1}

	_, fullStats, err := Enumerate(context.Background(), &l, a, &base)
	if err != nil {
		t.Fatal(err)
	}
	total := fullStats.NestsGenerated + fullStats.ClassesMerged
	if fullStats.Skipped != 0 {
		t.Fatalf("uncapped run skipped %d", fullStats.Skipped)
	}
	for _, budget := range []int{1, 7, 40, 500, total - 1} {
		for _, noReduce := range []bool{false, true} {
			o := base
			o.MaxCandidates = budget
			o.NoReduce = noReduce
			_, st, err := Enumerate(context.Background(), &l, a, &o)
			if err != nil {
				t.Fatal(err)
			}
			walked := st.NestsGenerated + st.ClassesMerged
			if walked != budget {
				t.Errorf("budget=%d nosym=%v: walked %d", budget, noReduce, walked)
			}
			if walked+st.Skipped != total {
				t.Errorf("budget=%d nosym=%v: walked %d + skipped %d != space %d",
					budget, noReduce, walked, st.Skipped, total)
			}
		}
	}
}

// TestDistinctOrderingsMatchesPermute pins the multinomial Skipped
// arithmetic to the walker it stands in for.
func TestDistinctOrderingsMatchesPermute(t *testing.T) {
	cases := [][]loops.Loop{
		nil,
		{{Dim: loops.K, Size: 4}},
		{{Dim: loops.K, Size: 4}, {Dim: loops.K, Size: 4}},
		{{Dim: loops.K, Size: 4}, {Dim: loops.K, Size: 4}, {Dim: loops.C, Size: 2}},
		{{Dim: loops.B, Size: 2}, {Dim: loops.B, Size: 2}, {Dim: loops.K, Size: 3}, {Dim: loops.K, Size: 3}, {Dim: loops.C, Size: 5}},
		{{Dim: loops.B, Size: 2}, {Dim: loops.K, Size: 3}, {Dim: loops.C, Size: 5}, {Dim: loops.OY, Size: 7}, {Dim: loops.OX, Size: 9}},
	}
	for _, blocks := range cases {
		count := int64(0)
		permute(blocks, func(loops.Nest) bool { count++; return true })
		if want := loops.DistinctOrderings(blocks); count != want {
			t.Errorf("blocks %v: permute walks %d, DistinctOrderings says %d", blocks, count, want)
		}
	}
}
