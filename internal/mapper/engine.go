package mapper

// The evaluation pipeline: a single generator walks the canonical nest
// enumeration (factorization × ordering, exactly the order the old serial
// search used), workers score candidates concurrently with per-worker
// scratch (no allocation on the reject path), and a reducer merges the
// per-worker bests with the tie-break (score, generation index). Because
// the serial search kept the FIRST candidate achieving the minimum score,
// and (score, index) is minimized by exactly that candidate, the parallel
// result is bit-identical to the serial one for any worker count.
//
// On top of the pipeline sits a branch-and-bound prune for the latency
// objective: the bandwidth-unaware baseline CC_spatial + preload + offload
// is an admissible lower bound on the full model's CC_total (the stall
// integration only ever adds SS_overall >= 0 to it), so a nest whose bound
// already exceeds the best full evaluation seen so far cannot win and its
// Step-1/2/3 evaluation is skipped. The shared best is a monotonically
// decreasing atomic; pruning only on a STRICT bound excess keeps equal-
// score candidates alive for the deterministic tie-break.
//
// The generator itself is symmetry- and bound-aware (DESIGN.md §9): it
// canonicalizes every walked ordering by its model-equivalence signature and
// emits only the first member of each class (reduce.go), and it drops whole
// factorization subtrees whose incremental lower bound — the partial
// temporal product composed per dimension, times the smallest completion,
// plus the mapping-independent preload/offload floor — already exceeds a
// deterministic probe score. Pruned subtrees never allocate and never cross
// the channel. Both mechanisms are exact: merged orderings score
// bit-identically to their representative, and pruned subtrees cannot
// contain the winner, so Best is bit-identical to the unreduced exhaustive
// search while the workers see a several-fold smaller stream.

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/surrogate"
	"repro/internal/workload"
)

// searchMode selects what the engine keeps.
type searchMode uint8

const (
	modeBest searchMode = iota // keep only the minimum (Best)
	modeAll                    // keep every valid candidate (Enumerate)
)

// scored pairs a materialized candidate with its canonical sort keys.
type scored struct {
	cand  *Candidate
	score float64
	key   string // temporal nest rendering, the lexicographic tie-break
	seq   int64  // generation index, the final tie-break
}

// Boundary-precomputation state of a job. The guided producer already runs
// the greedy boundary assignment on every candidate (the feature vector needs
// the level contents), so it ships the result along: the workers reuse the
// bounds instead of recomputing them, and the guided order pays for the
// assignment ONCE per candidate — exactly like the canonical order.
// assignBoundsIn is deterministic in (nest, layer, chains), so a reused
// result is bit-identical to a recomputed one.
const (
	boundsUnknown uint8 = iota // not precomputed: the worker assigns bounds itself
	boundsFailed               // precomputed and failed: the nest can never validate
	boundsReady                // precomputed: bnd holds the per-operand boundaries
)

// job is one nest to evaluate, tagged with its generation index and — under
// the guided order — the surrogate prediction that positioned it (NaN when
// the guided order is inactive) plus the producer's boundary assignment.
type job struct {
	seq    int64
	pred   float64
	nest   loops.Nest
	bstate uint8
	bnd    [loops.NumOperands][]int // boundsReady only; read-only for workers
}

// batchSize amortizes channel traffic: the generator ships nests to the
// workers in slabs of this many.
const batchSize = 64

type engine struct {
	ctx  context.Context
	l    *workload.Layer
	a    *arch.Arch
	o    *Options
	mode searchMode

	// aborted flips once when ctx is observed canceled: the generator stops
	// walking and the workers drop the remaining batches without scoring
	// them. After an abort the search returns ctx.Err() and every partial
	// counter/candidate is discarded.
	aborted atomic.Bool

	// prune enables the workers' lower-bound branch-and-bound (modeBest,
	// latency objective, full model only — for the baseline model the
	// "bound" IS the score, and other objectives are not bounded by it).
	prune bool
	// genPrune enables the generator-side subtree prune (modeBest, latency
	// objective, either model). Unlike the workers' prune it compares
	// against a FIXED deterministic probe bound, never the racy shared
	// best, so the emitted nest stream — and every exact Stats counter —
	// is independent of worker count and of NoPrune.
	genPrune bool
	// guided enables the surrogate-guided best-first order (DESIGN.md §12):
	// the canonical walk runs unchanged — every generation-side counter is
	// identical — but the emitted representatives are collected, sorted by
	// surrogate prediction and only then streamed to the workers, carrying
	// their original walk seq so the (score, seq) tie-break is untouched.
	// Active only where the workers' prune can cash the better order in.
	guided bool
	// bestBits is Float64bits of the best score seen by any worker; it
	// only decreases. Read by workers for the prune decision.
	bestBits atomic.Uint64
	// nworkers is the decided evaluation-lane count. The guided producer's
	// prediction pass reuses it as its parallelism: while the producer
	// collects, those lanes sit blocked on an empty channel, so the budget
	// the search acquired is exactly the budget the pass may spend.
	nworkers int

	// shard restricts the walk to one contiguous prefix range of the
	// canonical enumeration (shard.go), or replays the walk arithmetically
	// for the shard planner. nil for an ordinary whole-space search.
	shard *shardRun
	// collectSeqs makes the workers record the walk seq of every candidate
	// they count as valid, so a shard outcome can tag its equivalence-class
	// records with validity (the reducer of a sharded search needs the
	// validity of the class REPRESENTATIVE, which may live in another shard).
	collectSeqs bool

	// Telemetry (engine_obs.go). hooks is nil unless Options.Hooks is set;
	// every observation site guards on that nil check, and the observation
	// state below is never touched on the fast path. None of it feeds back
	// into the search: the result is bit-identical with or without hooks.
	hooks       *obs.SearchHooks
	start       time.Time
	obsValid    atomic.Int64
	obsPruned   atomic.Int64
	obsBestBits atomic.Uint64
}

// runSearch drives one search. It returns the best candidate (modeBest),
// the unsorted candidate list (modeAll), and exact statistics. When ctx is
// canceled mid-search the pipeline winds down cooperatively and runSearch
// returns ctx.Err() with no candidate and no stats.
func runSearch(ctx context.Context, l *workload.Layer, a *arch.Arch, o *Options, mode searchMode, sh *shardRun) (*Candidate, []scored, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}
	if err := l.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if len(o.Spatial) == 0 {
		return nil, nil, nil, fmt.Errorf("mapper: no spatial unrolling given")
	}
	e := &engine{ctx: ctx, l: l, a: a, o: o, mode: mode, shard: sh}
	e.prune = mode == modeBest && !o.NoPrune && o.Objective == MinLatency && o.BWAware
	e.genPrune = mode == modeBest && o.Objective == MinLatency
	e.guided = e.prune && !o.NoSurrogate
	e.collectSeqs = sh != nil && !o.NoReduce
	e.bestBits.Store(math.Float64bits(math.Inf(1)))
	stats := &Stats{}
	if o.Hooks != nil {
		e.hooks = o.Hooks
		e.start = time.Now()
		e.obsBestBits.Store(math.Float64bits(math.Inf(1)))
		defer func(t0 time.Time) { e.hooks.EmitPhase("search", time.Since(t0)) }(e.start)
	}

	// Decide the worker count. Forced counts (Workers >= 1) bypass the
	// shared budget; the default draws from it so that nested parallelism
	// (e.g. a layer sweep running many searches) never oversubscribes.
	workers := 1
	acquired := 0
	if o.Workers > 1 {
		workers = o.Workers
	} else if o.Workers == 0 {
		acquired = par.AcquireUpTo(par.Limit() - 1)
		workers = 1 + acquired
	}
	defer func() {
		for i := 0; i < acquired; i++ {
			par.Release()
		}
	}()
	e.nworkers = workers

	ws := make([]*worker, workers)
	for i := range ws {
		ws[i] = newWorker(e)
	}

	// produce runs the generator and hands each candidate to consume: in the
	// canonical walk order by default, or — under the guided order — sorted
	// best-predicted-first with the walk seq and the producer's boundary
	// assignment carried through (guided.go).
	produce := func(consume func(j job)) {
		if e.guided {
			e.generateGuided(stats, consume)
		} else {
			e.generate(stats, func(seq int64, nest loops.Nest) {
				consume(job{seq: seq, pred: math.NaN(), nest: nest, bstate: boundsUnknown})
			})
		}
	}

	if workers == 1 {
		// Serial fast path: evaluate on the caller's goroutine, straight off
		// the producer's shared nest buffer.
		produce(func(j job) {
			ws[0].process(j)
		})
	} else {
		ch := make(chan *jobBatch, workers)
		var wg sync.WaitGroup
		for _, w := range ws[1:] {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				w.drain(ch)
			}(w)
		}
		go func() {
			var cur *jobBatch
			flush := func() {
				if cur != nil && len(cur.jobs) > 0 {
					// A slow consumer must not make the generator
					// uncancelable: if the channel is full when the context
					// dies, drop the batch and abort instead of parking in
					// the send. (Background's Done() is nil, so for batch
					// callers this is exactly the plain send.)
					select {
					case ch <- cur:
					case <-e.ctx.Done():
						e.aborted.Store(true)
						batchPool.Put(cur)
					}
				}
				cur = nil
			}
			produce(func(j job) {
				if cur == nil {
					cur = batchPool.Get().(*jobBatch)
					cur.jobs = cur.jobs[:0]
					cur.slab = cur.slab[:0]
				}
				// The canonical generator emits nests from a shared buffer it
				// overwrites on the next emit, so they are copied into the
				// batch slab (a slab regrow leaves earlier jobs pointing into
				// the old array, which stays valid — the slices are
				// read-only). The guided producer streams from its own
				// collection slab, immutable once streaming starts, so its
				// nests — like its bnd slices — cross the channel as-is.
				if !e.guided {
					start := len(cur.slab)
					cur.slab = append(cur.slab, j.nest...)
					j.nest = loops.Nest(cur.slab[start:len(cur.slab):len(cur.slab)])
				}
				cur.jobs = append(cur.jobs, j)
				if len(cur.jobs) == batchSize {
					flush()
				}
			})
			flush()
			close(ch)
		}()
		ws[0].drain(ch) // the caller is the first worker
		wg.Wait()
	}

	// Reduce: sum the exact counters, take the (score, seq) minimum.
	var best *Candidate
	bestScore, bestSeq := math.Inf(1), int64(math.MaxInt64)
	var all []scored
	var preds, exacts []float64
	for _, w := range ws {
		stats.Valid += w.valid
		stats.Pruned += w.pruned
		if w.best != nil && (w.bestScore < bestScore || (w.bestScore == bestScore && w.bestSeq < bestSeq)) {
			best, bestScore, bestSeq = w.best, w.bestScore, w.bestSeq
		}
		all = append(all, w.all...)
		preds = append(preds, w.preds...)
		exacts = append(exacts, w.exacts...)
		w.release()
	}
	if e.guided {
		// Guided-order diagnostics: how much of the stream the reordering
		// let the bound kill, and how faithfully the surrogate tracked the
		// exact order over the candidates that were fully scored.
		stats.SurrogatePruned = stats.Pruned
		stats.SurrogateRankCorr = surrogate.Spearman(preds, exacts)
	}
	// A cancellation observed anywhere in the pipeline invalidates the
	// partial reduction: report the context's verdict, not a half-searched
	// space. (With ctx == Background this branch is unreachable, so batch
	// callers and the determinism tests see the exact old behaviour.)
	if e.aborted.Load() || ctx.Err() != nil {
		return nil, nil, nil, ctx.Err()
	}
	if sh != nil {
		// Shard epilogue: hand the winner's walk seq to the outcome and tag
		// each class record with the validity of its representative (release
		// above only pools the scratch — the per-worker seq lists survive).
		sh.bestSeq = bestSeq
		if len(sh.classes) > 0 {
			validAt := make(map[int64]struct{}, stats.Valid)
			for _, w := range ws {
				for _, s := range w.vseqs {
					validAt[s] = struct{}{}
				}
			}
			for i := range sh.classes {
				_, ok := validAt[sh.classes[i].Seq]
				sh.classes[i].Valid = ok
			}
		}
	}
	if e.hooks != nil {
		// Final snapshot: every counter exact (the reduce is done).
		p := e.obsSnapshot(stats, int64(stats.NestsGenerated+stats.ClassesMerged), true)
		p.Valid = int64(stats.Valid)
		p.Pruned = int64(stats.Pruned)
		p.BestCC = bestScore
		e.hooks.EmitProgress(p)
	}
	return best, all, stats, nil
}

// walkSpace computes the enumeration geometry: the temporal extent per
// dimension after spatial unrolling (ceil), and the per-dimension split
// alternatives including lightly padded extents — awkward (prime-rich)
// extents are rounded up to the next multiples of 2 and 4 so that
// stationarity-enabling inner loops exist (the padded iterations surface as
// spatial stall in the evaluation). A pure function of (layer, options): the
// shard planner and every shard executor derive the SAME geometry from it,
// which is what makes the prefix indexing below globally consistent.
func walkSpace(l *workload.Layer, o *Options) (extents [loops.NumDims]int64, dimSplits [loops.NumDims][][]int64) {
	sp := o.Spatial.DimProduct()
	for _, d := range loops.AllDims {
		extents[d] = loops.CeilDiv(l.Dim(d), sp[d])
	}
	for _, d := range loops.AllDims {
		dimSplits[d] = splits(extents[d], o.MaxSplitsPerDim, o.Pow2Splits)
		for _, pad := range []int64{2, 4} {
			pe := (extents[d] + pad - 1) / pad * pad
			if pe > extents[d] && pe < 2*extents[d] {
				dimSplits[d] = append(dimSplits[d], splits(pe, o.MaxSplitsPerDim, o.Pow2Splits)...)
			}
		}
		dimSplits[d] = dedupSplits(dimSplits[d])
	}
	return extents, dimSplits
}

// prefixStrides returns strides[0..depth] for the depth-`depth` prefix
// indexing of the walk: a depth-d node of the factorization recursion covers
// strides[d] prefixes (strides[depth] == 1), and the prefix index of a node
// is the positional accumulation of the split-alternative indices chosen for
// the first `depth` dimensions. The indexing spans the FULL cartesian
// product — pruned or capped subtrees keep their index space — so every
// shard and the planner agree on which prefix is which.
func prefixStrides(dimSplits *[loops.NumDims][][]int64, depth int) []int64 {
	strides := make([]int64, depth+1)
	strides[depth] = 1
	for d := depth - 1; d >= 0; d-- {
		strides[d] = strides[d+1] * int64(len(dimSplits[loops.AllDims[d]]))
	}
	return strides
}

// generate walks the canonical enumeration and hands each emitted nest to
// emit, keeping the exact counters. The nest passed to emit is a shared
// buffer, valid only for the duration of the call. Single-threaded; the
// emitted seq is the ordering's global walk index — strictly increasing
// within a run, and equal to the seq the whole-space walk would assign even
// when e.shard restricts the run to a prefix range (the shard starts its
// walk counter at ShardSpec.WalkedBefore).
func (e *engine) generate(st *Stats, emit func(seq int64, nest loops.Nest)) {
	o := e.o
	if e.hooks != nil {
		defer func(t0 time.Time) { e.hooks.EmitPhase("generate", time.Since(t0)) }(time.Now())
	}

	extents, dimSplits := walkSpace(e.l, o)

	reduce := !o.NoReduce
	var canon *canonicalizer
	if reduce || e.genPrune {
		canon = newCanonicalizer(e.l, e.a, o.Spatial)
	}

	// Generator-side branch and bound: score two fixed heuristic members of
	// the space up front; a split subtree whose smallest achievable
	// temporal product plus the mapping-independent preload/offload floor
	// already exceeds that score cannot contain the winner (every nest in
	// it scores STRICTLY worse than an existing member, so even the
	// tie-break cannot want it) and is dropped before its permutations
	// exist. The probe bound is deterministic — unlike the workers' shared
	// best it does not depend on scheduling — which keeps the emitted
	// stream and all exact counters identical for any worker count. The
	// probe score also seeds the workers' shared best, tightening their
	// prune from the first candidate on.
	probeBound := math.Inf(1)
	boundFloor := 0.0
	if e.genPrune {
		boundFloor = canon.boundFloor()
		for _, nest := range probeNests(&extents) {
			if s, ok := canon.score(nest, o.BWAware); ok && s < probeBound {
				probeBound = s
			}
		}
		if e.prune {
			e.lowerBest(probeBound)
		}
	}

	// minTail[d] is the smallest temporal product the dimensions from
	// AllDims[d] on can still contribute: every split alternative of a
	// dimension multiplies to at least the unpadded extent. float64 keeps
	// the running products safe from int64 overflow.
	var minTail [loops.NumDims + 1]float64
	minTail[loops.NumDims] = 1
	for d := loops.NumDims - 1; d >= 0; d-- {
		minTail[d] = minTail[d+1] * float64(extents[loops.AllDims[d]])
	}

	// Shard restriction (shard.go): a shard owns the contiguous range
	// [Lo, Hi) of depth-D split-choice prefixes and enters the walk with the
	// exact (walked, capped) state the whole-space walk would carry into
	// prefix Lo, so every seq it emits, every cap decision and every exact
	// counter matches the whole-space run over that range. In simulate mode
	// (the planner) nothing is restricted and nothing is emitted: the walk
	// is replayed arithmetically to meter per-prefix weights.
	sh := e.shard
	var strides []int64
	if sh != nil {
		strides = prefixStrides(&dimSplits, sh.spec.Depth)
	}

	// The walk: cartesian product of dimension splits -> block multisets ->
	// distinct orderings. MaxCandidates caps the ORDERINGS VISITED
	// (representatives plus merged duplicates); once it trips, the exact
	// remainder of every outstanding multiset is added to Skipped by
	// multinomial arithmetic instead of being walked.
	walked := 0
	capped := false
	if sh != nil {
		// WalkedBefore counts visits before position (Lo, PermLo); the
		// counter starts at the beginning of prefix Lo, PermLo visits
		// earlier, and advances back to WalkedBefore arithmetically while
		// the jump below consumes the previous shard's share of the prefix.
		walked = int(sh.spec.WalkedBefore - sh.spec.PermLo)
		capped = sh.spec.CappedBefore
	}
	// Sub-multiset windows (DESIGN.md §14): prefixPos counts the orderings
	// the whole-space walk visits inside the current depth-D prefix, and
	// [winLo, winHi) is the slice of those positions this shard owns — set
	// as each prefix is entered, unbounded for interior prefixes and
	// unsharded runs. shardDone trips when the walk crosses the shard's
	// upper boundary (or a ShardControl truncation) and aborts the descent.
	prefixPos := int64(0)
	winLo, winHi := int64(0), int64(math.MaxInt64)
	shardDone := false
	var ctl *ShardControl
	if sh != nil {
		ctl = sh.ctl
	}
	var rec func(d int, blocks []loops.Loop, prod float64, base int64)
	body := func(d int, blocks []loops.Loop, prod float64, base int64) {
		if d == loops.NumDims {
			if sh != nil && sh.simulate {
				// Planner replay: advance (walked, capped) exactly as the
				// visiting walk would — capped trips only when the budget
				// runs out STRICTLY inside a multiset, matching the visitor's
				// check-before-visit semantics — but touch no orderings.
				if e.ctx.Err() != nil {
					e.aborted.Store(true)
					return
				}
				if capped {
					return
				}
				n := loops.DistinctOrderings(blocks)
				if room := int64(o.MaxCandidates - walked); n > room {
					walked += int(room)
					capped = true
				} else {
					walked += int(n)
				}
				return
			}
			// Visitor leaf. The shard's window may cover only a slice of
			// this multiset's orderings: positions before winLo are consumed
			// arithmetically (the owning shard visits them), the boundary at
			// winHi ends the shard, and the budget-cap remainder n-v is
			// accounted by whichever shard owns the leaf's FIRST position —
			// pure position arithmetic, so the per-shard counters sum to the
			// whole-space count for any boundary placement. The ctx probe
			// here also bounds abort latency during long post-cap tallies.
			if e.ctx.Err() != nil {
				e.aborted.Store(true)
				return
			}
			n := loops.DistinctOrderings(blocks)
			// v is how many of this leaf's orderings the whole-space walk
			// visits (check-before-visit: the cap trips on the first attempt
			// past the budget).
			v := n
			if capped {
				v = 0
			} else if room := int64(o.MaxCandidates - walked); v > room {
				v = room
			}
			leafStart := prefixPos
			ownsStart := leafStart >= winLo && leafStart < winHi
			if leafStart >= winHi {
				// The shard's upper boundary: every position from here on
				// belongs to the next shard.
				shardDone = true
				return
			}
			if v == 0 {
				capped = true
				if ownsStart {
					st.Skipped += int(n)
				}
				return
			}
			if !ownsStart && leafStart+v <= winLo {
				// Every visited ordering of this leaf precedes the shard's
				// window.
				walked += int(v)
				prefixPos += v
				if v < n {
					capped = true
				}
				return
			}
			skip := int64(0)
			if winLo > leafStart {
				// The window opens mid-leaf: jump straight to the ordering
				// at rank winLo-leafStart within this multiset; the ranks
				// before it are the previous shard's.
				skip = winLo - leafStart
				walked += int(skip)
				prefixPos += skip
			}
			visit := func(nest loops.Nest) bool {
				// Cooperative cancellation: probe the context on every
				// visited ordering. Err() is a nil-channel check for
				// Background and one atomic load for a live context —
				// noise next to canonicalizing or scoring the ordering —
				// and it bounds the abort latency to a single candidate.
				if e.ctx.Err() != nil {
					e.aborted.Store(true)
					return false
				}
				if prefixPos >= winHi {
					shardDone = true
					return false
				}
				if walked == o.MaxCandidates {
					capped = true
					return false
				}
				if ctl != nil && int64(walked) >= ctl.limit.Load() {
					// Truncation stop, BEFORE this visit: (base, prefixPos)
					// is the exact handoff position for the remainder.
					sh.truncated = true
					sh.resume = ShardSpec{
						Depth: sh.spec.Depth,
						Lo:    base, PermLo: prefixPos,
						Hi: sh.spec.Hi, PermHi: sh.spec.PermHi,
						WalkedBefore: int64(walked),
					}
					shardDone = true
					return false
				}
				walked++
				prefixPos++
				if e.hooks != nil && walked%progressInterval == 0 {
					e.hooks.EmitProgress(e.obsSnapshot(st, int64(walked), false))
				}
				if ctl != nil && walked%frontierInterval == 0 {
					ctl.frontier.Store(int64(walked))
				}
				if reduce {
					if sh == nil {
						if canon.intern(nest) {
							st.ClassesMerged++
							return true
						}
					} else {
						// A sharded walk records (signature, seq) for every
						// representative it emits: the intern set is local to
						// this shard, so a class whose first member lives in
						// an earlier shard is re-emitted here and the merge
						// reconciles the duplicates by signature (shard.go).
						sig, dup := canon.internSig(nest)
						if dup {
							st.ClassesMerged++
							return true
						}
						sh.classes = append(sh.classes, ShardClass{Sig: append([]byte(nil), sig...), Seq: int64(walked - 1)})
					}
				}
				st.NestsGenerated++
				emit(int64(walked-1), nest)
				return true
			}
			if skip > 0 {
				permuteFrom(blocks, skip, visit)
			} else {
				permute(blocks, visit)
			}
			if ownsStart && v < n {
				// Exact cap remainder of a leaf whose first position this
				// shard owns — added even when a boundary or truncation
				// stopped the visits early, because the remainder is fixed
				// by the budget, not by who visited what.
				st.Skipped += int(n - v)
			}
			return
		}
		dim := loops.AllDims[d]
		for si, s := range dimSplits[dim] {
			if shardDone {
				return
			}
			next := blocks
			part := int64(1)
			for _, f := range s {
				part *= f
				if f > 1 {
					next = append(next[:len(next):len(next)], loops.Loop{Dim: dim, Size: f})
				}
			}
			cbase := base
			if sh != nil && d < sh.spec.Depth {
				cbase = base + int64(si)*strides[d+1]
				// Skip subtrees entirely outside the owned range: their walk
				// state is already accounted for in WalkedBefore (earlier
				// positions) or is some other shard's business (later ones).
				// Prefix Hi is descended only when the shard owns its first
				// PermHi positions; partially overlapping subtrees narrow to
				// a single prefix by d == Depth-1. The planner's restricted
				// replays (simulate) apply the same rule, which is what lets
				// it re-meter one prefix's children in isolation.
				if cbase+strides[d+1] <= sh.spec.Lo || cbase > sh.spec.Hi ||
					(cbase == sh.spec.Hi && sh.spec.PermHi == 0) {
					continue
				}
			}
			// Once capped, pruning stops too: the remainder is counted, not
			// walked, and the count must not depend on the bound. A sharded
			// walk makes the same prune decisions as the whole-space walk
			// (the probe bound is deterministic and capped agrees at every
			// shared node — see DESIGN.md §13) but attributes the counter to
			// the shard owning the subtree's first walk position — above the
			// split depth that is the first prefix, below it the next visit
			// position against the window — so the merge sums to the
			// whole-space count exactly even when shards share a prefix.
			if !capped && float64(part)*prod*minTail[d+1]+boundFloor > probeBound {
				owns := true
				if sh != nil && !sh.simulate {
					if d < sh.spec.Depth {
						owns = (cbase > sh.spec.Lo || (cbase == sh.spec.Lo && sh.spec.PermLo == 0)) &&
							(cbase < sh.spec.Hi || (cbase == sh.spec.Hi && sh.spec.PermHi > 0))
					} else {
						owns = prefixPos >= winLo && prefixPos < winHi
					}
				}
				if owns {
					st.SubtreesPruned++
				}
				continue
			}
			rec(d+1, next, float64(part)*prod, cbase)
		}
	}
	rec = func(d int, blocks []loops.Loop, prod float64, base int64) {
		if e.aborted.Load() || shardDone {
			return // canceled or past the shard boundary: stop descending
		}
		if sh != nil && d == sh.spec.Depth {
			// Entering a depth-D prefix: reset the position counter and
			// derive this shard's window inside it.
			prefixPos = 0
			winLo, winHi = 0, math.MaxInt64
			if !sh.simulate {
				if base == sh.spec.Lo {
					winLo = sh.spec.PermLo
				}
				if base == sh.spec.Hi && sh.spec.PermHi > 0 {
					winHi = sh.spec.PermHi
				}
			}
			if sh.weightf != nil {
				w0 := walked
				body(d, blocks, prod, base)
				sh.weightf(base, walked-w0, capped)
				return
			}
		}
		body(d, blocks, prod, base)
	}
	rec(0, nil, 1, 0)
}

// workerScratch is the heavy, search-independent part of a worker's state:
// resolved memory chains, boundary storage and a core.Evaluator whose
// internal buffers (and Step-1 op-cache) persist across candidates. It is
// recycled through scratchPool so that back-to-back searches — a network
// sweep evaluating dozens of layers, a benchmark loop — stop re-growing the
// evaluator buffers from zero on every Best call.
type workerScratch struct {
	chainArch *arch.Arch // architecture the chains were resolved for
	chains    [loops.NumOperands][]*arch.Memory
	store     [loops.NumOperands][]int
	ev        core.Evaluator

	// Batched-scoring slabs (structure of arrays over one jobBatch): each
	// slot owns a Mapping with its own boundary storage so the surviving
	// nests of a batch can be validated first and then scored in one
	// core.Evaluator.ScoreBatch pass over the shared memo layers.
	slots  [batchSize]batchSlot
	probs  []*core.Problem
	seqs   []int64
	bpreds []float64
	outs   []float64
}

// batchSlot is one lane of the batched-scoring slab.
type batchSlot struct {
	m     mapping.Mapping
	store [loops.NumOperands][]int
	prob  core.Problem
}

var scratchPool = sync.Pool{New: func() any { return new(workerScratch) }}

// worker holds one evaluation lane: pooled scratch plus a reusable mapping
// (shared read-only spatial nest, boundary storage reused across nests). The
// reject path — bounds overflow, validation failure, prune — allocates
// nothing.
type worker struct {
	e    *engine
	s    *workerScratch
	m    mapping.Mapping
	prob core.Problem

	valid  int
	pruned int

	best      *Candidate
	bestScore float64
	bestSeq   int64

	all []scored // modeAll only

	// Guided-order diagnostics: (prediction, exact score) of every fully
	// evaluated candidate, merged by the reducer into the Spearman rank
	// correlation. Only populated while the guided order is active.
	preds  []float64
	exacts []float64

	// vseqs records the walk seq of every candidate counted in valid, for
	// the shard epilogue's class-validity tagging (engine.collectSeqs only).
	vseqs []int64
}

func newWorker(e *engine) *worker {
	w := &worker{e: e, s: scratchPool.Get().(*workerScratch), bestScore: math.Inf(1), bestSeq: math.MaxInt64}
	if w.s.chainArch != e.a {
		for _, op := range loops.AllOperands {
			w.s.chains[op] = e.a.ChainMems(op)
		}
		w.s.chainArch = e.a
	}
	w.m.Spatial = e.o.Spatial
	w.prob = core.Problem{Layer: e.l, Arch: e.a, Mapping: &w.m}
	for i := range w.s.slots {
		// The scratch is pooled across searches: force every batch slot to
		// re-bind to THIS search's layer/arch/spatial on first use.
		w.s.slots[i].prob.Layer = nil
	}
	return w
}

// release returns the worker's scratch to the pool. The worker must not be
// used afterwards.
func (w *worker) release() {
	scratchPool.Put(w.s)
	w.s = nil
}

// jobBatch is a recyclable slab of jobs: the nests of all jobs in a batch
// are carved out of one shared loop slab, and the whole batch goes back to
// batchPool once a worker has drained it (safe: evaluate clones any nest it
// materializes, nothing else retains the slices).
type jobBatch struct {
	jobs []job
	slab []loops.Loop
}

var batchPool = sync.Pool{New: func() any { return new(jobBatch) }}

func (w *worker) drain(ch <-chan *jobBatch) {
	e := w.e
	batched := e.mode == modeBest && e.o.Objective == MinLatency && e.o.BWAware
	for bt := range ch {
		// After an abort, keep receiving (the generator may have batches in
		// flight and must never block on a full channel) but stop scoring —
		// checked per job, and against the context directly, so that a
		// cancellation arriving mid-batch (or after the generator already
		// finished and can no longer raise the flag) skips the remaining
		// evaluations instead of grinding out the queue.
		if batched {
			w.processBatch(bt)
			batchPool.Put(bt)
			continue
		}
		for _, j := range bt.jobs {
			if e.aborted.Load() {
				break
			}
			if e.ctx.Err() != nil {
				e.aborted.Store(true)
				break
			}
			w.process(j)
		}
		batchPool.Put(bt)
	}
}

// processBatch is the latency-objective fast path over one jobBatch: a
// structure-of-arrays pass that assigns bounds, validates and bound-checks
// every job first, then scores all survivors in one Evaluator.ScoreBatch
// call — the slab form that keeps the evaluator's Step-1 and Step-2 memo
// layers hot across sibling nests. Each score is bit-identical to the
// per-job ScoreLatency the serial path runs (core.ScoreBatch's contract),
// Valid counts validations exactly as process does, and the (score, seq)
// fold is order-independent, so the reduction cannot tell the two paths
// apart beyond the trajectory-dependent Pruned counter.
func (w *worker) processBatch(bt *jobBatch) {
	e := w.e
	o := e.o
	s := w.s
	s.probs = s.probs[:0]
	s.seqs = s.seqs[:0]
	s.bpreds = s.bpreds[:0]
	for i := range bt.jobs {
		j := &bt.jobs[i]
		if e.aborted.Load() {
			return
		}
		if e.ctx.Err() != nil {
			e.aborted.Store(true)
			return
		}
		slot := &s.slots[i]
		if slot.prob.Layer == nil {
			slot.m.Spatial = o.Spatial
			slot.prob = core.Problem{Layer: e.l, Arch: e.a, Mapping: &slot.m}
		}
		slot.m.Temporal = j.nest
		switch j.bstate {
		case boundsFailed:
			continue
		case boundsReady:
			slot.m.Bound = j.bnd
		default:
			if !assignBoundsIn(&slot.m, e.l, &s.chains, &slot.store) {
				continue
			}
		}
		if slot.m.Validate(e.l, e.a) != nil {
			continue
		}
		w.valid++
		if e.collectSeqs {
			w.vseqs = append(w.vseqs, j.seq)
		}
		if e.hooks != nil {
			e.obsValid.Add(1)
		}
		if e.prune {
			if lb := s.ev.LowerBound(&slot.prob); lb > e.loadBest() {
				w.pruned++
				if e.hooks != nil {
					e.obsPruned.Add(1)
				}
				continue
			}
		}
		s.probs = append(s.probs, &slot.prob)
		s.seqs = append(s.seqs, j.seq)
		s.bpreds = append(s.bpreds, j.pred)
	}
	if len(s.probs) == 0 {
		return
	}
	if cap(s.outs) < len(s.probs) {
		s.outs = make([]float64, len(s.probs))
	}
	outs := s.outs[:len(s.probs)]
	if s.ev.ScoreBatch(s.probs, outs) != nil {
		return // unreachable: the output slab is sized above
	}
	for i, score := range outs {
		if math.IsNaN(score) {
			continue
		}
		if e.guided && !math.IsNaN(s.bpreds[i]) {
			w.preds = append(w.preds, s.bpreds[i])
			w.exacts = append(w.exacts, score)
		}
		seq := s.seqs[i]
		if w.better(score, seq) {
			if c := evaluate(e.l, e.a, o, s.probs[i].Mapping.Temporal); c != nil {
				w.best, w.bestScore, w.bestSeq = c, score, seq
				if e.prune {
					e.lowerBest(score)
				}
				if e.hooks != nil {
					e.obsImproved(score, seq)
				}
			}
		}
	}
}

// process scores one nest. Valid counts mappings that pass validation (and,
// where a candidate is materialized, evaluation), never depending on the
// prune trajectory — so Stats.Valid is identical for any worker count.
func (w *worker) process(j job) {
	e := w.e
	o := e.o
	seq, pred, nest := j.seq, j.pred, j.nest
	w.m.Temporal = nest
	switch j.bstate {
	case boundsFailed:
		return
	case boundsReady:
		w.m.Bound = j.bnd
	default:
		if !assignBoundsIn(&w.m, e.l, &w.s.chains, &w.s.store) {
			return
		}
	}
	if w.m.Validate(e.l, e.a) != nil {
		return
	}

	if e.mode == modeAll || o.Objective == MinEnergy || o.Objective == MinEDP {
		// Enumeration and energy objectives need the materialized result
		// (diagnostics / energy) for every valid candidate anyway.
		c := evaluate(e.l, e.a, o, nest)
		if c == nil {
			return
		}
		w.valid++
		if e.collectSeqs {
			w.vseqs = append(w.vseqs, seq)
		}
		if e.hooks != nil {
			e.obsValid.Add(1)
		}
		s := c.Score(o.Objective)
		if e.mode == modeAll {
			w.all = append(w.all, scored{cand: c, score: s, key: c.Mapping.Temporal.String(), seq: seq})
			return
		}
		if w.better(s, seq) {
			w.best, w.bestScore, w.bestSeq = c, s, seq
			if e.hooks != nil {
				e.obsImproved(s, seq)
			}
		}
		return
	}

	// Latency objective: scratch-based scoring, no allocation unless the
	// candidate improves the worker's best.
	w.valid++
	if e.collectSeqs {
		w.vseqs = append(w.vseqs, seq)
	}
	if e.hooks != nil {
		e.obsValid.Add(1)
	}
	var score float64
	if o.BWAware {
		if e.prune {
			lb := w.s.ev.LowerBound(&w.prob)
			if lb > e.loadBest() {
				w.pruned++
				if e.hooks != nil {
					e.obsPruned.Add(1)
				}
				return
			}
		}
		s, err := w.s.ev.ScoreLatency(&w.prob)
		if err != nil {
			return
		}
		score = s
		if e.guided && !math.IsNaN(pred) {
			w.preds = append(w.preds, pred)
			w.exacts = append(w.exacts, score)
		}
	} else {
		// The baseline model's CC_total IS the lower bound expression.
		score = w.s.ev.LowerBound(&w.prob)
	}
	if w.better(score, seq) {
		if c := evaluate(e.l, e.a, o, nest); c != nil {
			w.best, w.bestScore, w.bestSeq = c, score, seq
			if e.prune {
				e.lowerBest(score)
			}
			if e.hooks != nil {
				e.obsImproved(score, seq)
			}
		}
	}
}

// better reports whether (score, seq) beats the worker's current best under
// the canonical order.
func (w *worker) better(score float64, seq int64) bool {
	return score < w.bestScore || (score == w.bestScore && seq < w.bestSeq)
}

// loadBest returns the shared best-so-far score.
func (e *engine) loadBest() float64 {
	return math.Float64frombits(e.bestBits.Load())
}

// lowerBest lowers the shared best-so-far to s if s improves it.
func (e *engine) lowerBest(s float64) {
	bits := math.Float64bits(s)
	for {
		cur := e.bestBits.Load()
		if math.Float64frombits(cur) <= s {
			return
		}
		if e.bestBits.CompareAndSwap(cur, bits) {
			return
		}
	}
}
