package mapper

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/workload"
)

// SpatialOptions tunes the spatial-unrolling search of BestWithSpatial.
type SpatialOptions struct {
	// Dims restricts which dimensions may be spatially unrolled
	// (default: K, B, C — the matmul dims; pass all seven for direct
	// convolution dataflows).
	Dims []loops.Dim
	// MaxDims bounds how many dimensions one unrolling may combine
	// (default 3).
	MaxDims int
	// MinOccupancy discards unrollings using less than this fraction of
	// the MAC array (default 0.5).
	MinOccupancy float64
	// MaxSpatials bounds how many unrollings are tried (default 24, best
	// occupancy first).
	MaxSpatials int
	// Temporal carries the per-spatial temporal search options; its
	// Spatial field is overwritten per candidate.
	Temporal Options
}

func (o *SpatialOptions) normalized() SpatialOptions {
	out := *o
	if len(out.Dims) == 0 {
		out.Dims = []loops.Dim{loops.K, loops.B, loops.C}
	}
	if out.MaxDims <= 0 {
		out.MaxDims = 3
	}
	if out.MinOccupancy <= 0 {
		out.MinOccupancy = 0.5
	}
	if out.MaxSpatials <= 0 {
		out.MaxSpatials = 24
	}
	return out
}

// SpatialCandidates enumerates spatial unrollings for a layer on an array:
// combinations of power-of-two (plus exact-dimension) factors over the
// allowed dims whose product fits the MAC count, ranked by array occupancy
// then by fewer padded cycles.
func SpatialCandidates(l *workload.Layer, a *arch.Arch, o *SpatialOptions) []loops.Nest {
	opt := o.normalized()

	// Factor alternatives per dim: powers of two up to min(dim padded up,
	// MACs), plus the exact extent when small.
	factors := map[loops.Dim][]int64{}
	for _, d := range opt.Dims {
		ext := l.Dim(d)
		set := map[int64]bool{1: true}
		for f := int64(2); f <= a.MACs; f *= 2 {
			if f <= 2*ext { // allow one padding step
				set[f] = true
			}
		}
		if ext <= a.MACs {
			set[ext] = true
		}
		var fs []int64
		for f := range set {
			fs = append(fs, f)
		}
		sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
		factors[d] = fs
	}

	type cand struct {
		nest loops.Nest
		occ  float64
		pad  float64
	}
	var cands []cand
	seen := map[string]bool{}

	var rec func(i int, used int, cur loops.Nest, prod int64)
	rec = func(i int, used int, cur loops.Nest, prod int64) {
		if i == len(opt.Dims) {
			occ := float64(prod) / float64(a.MACs)
			if occ < opt.MinOccupancy || occ > 1 {
				return
			}
			// Padded compute factor: Π ceil(dim/unroll)*unroll / dim.
			pad := 1.0
			dp := cur.DimProduct()
			for _, d := range loops.AllDims {
				if dp[d] > 1 {
					pad *= float64(loops.CeilDiv(l.Dim(d), dp[d])*dp[d]) / float64(l.Dim(d))
				}
			}
			key := cur.String()
			if seen[key] {
				return
			}
			seen[key] = true
			cands = append(cands, cand{nest: cur.Clone(), occ: occ, pad: pad})
			return
		}
		d := opt.Dims[i]
		// Skip this dim.
		rec(i+1, used, cur, prod)
		if used >= opt.MaxDims {
			return
		}
		for _, f := range factors[d] {
			if f == 1 || prod*f > a.MACs {
				continue
			}
			rec(i+1, used+1, append(cur, loops.Loop{Dim: d, Size: f}), prod*f)
		}
	}
	rec(0, 0, nil, 1)

	sort.Slice(cands, func(i, j int) bool {
		oi, oj := cands[i].occ/cands[i].pad, cands[j].occ/cands[j].pad
		if oi != oj {
			return oi > oj
		}
		return cands[i].nest.String() < cands[j].nest.String()
	})
	if len(cands) > opt.MaxSpatials {
		cands = cands[:opt.MaxSpatials]
	}
	out := make([]loops.Nest, len(cands))
	for i, c := range cands {
		out[i] = c.nest
	}
	return out
}

// BestWithSpatial searches jointly over spatial unrollings and temporal
// mappings, returning the overall best candidate, the winning spatial nest
// and aggregate statistics.
func BestWithSpatial(ctx context.Context, l *workload.Layer, a *arch.Arch, o *SpatialOptions) (*Candidate, loops.Nest, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opt := o.normalized()
	spatials := SpatialCandidates(l, a, &opt)
	if len(spatials) == 0 {
		return nil, nil, nil, fmt.Errorf("mapper: no spatial unrolling reaches occupancy %.0f%% on %s",
			100*opt.MinOccupancy, a.Name)
	}
	total := &Stats{}
	var best *Candidate
	var bestSp loops.Nest
	for _, sp := range spatials {
		if err := ctx.Err(); err != nil {
			return nil, nil, nil, err
		}
		topt := opt.Temporal
		topt.Spatial = sp
		cand, stats, err := Best(ctx, l, a, &topt)
		if stats != nil {
			total.NestsGenerated += stats.NestsGenerated
			total.Valid += stats.Valid
			total.Skipped += stats.Skipped
			total.Pruned += stats.Pruned
		}
		if err != nil {
			continue // this unrolling has no valid temporal mapping
		}
		if best == nil || cand.Score(opt.Temporal.Objective) < best.Score(opt.Temporal.Objective) {
			best = cand
			bestSp = sp
		}
	}
	if best == nil {
		return nil, nil, total, fmt.Errorf("mapper: no valid mapping across %d spatial unrollings", len(spatials))
	}
	return best, bestSp, total, nil
}
