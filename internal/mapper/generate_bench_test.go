package mapper

import (
	"context"
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/workload"
)

// BenchmarkGenerateOnly isolates the generator — the enumeration walk,
// signature dedup and subtree bound, with the evaluation pipeline stubbed
// out — so the cost of producing the candidate stream can be tracked
// separately from the cost of scoring it. The pair exposes the reduction's
// trade: signatures make the walk itself more expensive (one boundary
// assignment + product encoding per ordering), and pay for it by shrinking
// the emitted stream ~9x — cheap dedup work replacing expensive Step-1/2/3
// evaluations. Track both: a signature-cost regression shows up here long
// before it shows up in the end-to-end search number.
func BenchmarkGenerateOnly(b *testing.B) {
	layer := workload.NewMatMul("gen", 128, 128, 128)
	hw := arch.CaseStudy()
	for _, bb := range []struct {
		name     string
		noReduce bool
	}{{"reduced", false}, {"nosym", true}} {
		b.Run(bb.name, func(b *testing.B) {
			o := Options{
				Spatial: arch.CaseStudySpatial(), BWAware: true,
				MaxCandidates: 20000, NoReduce: bb.noReduce,
			}
			on := o.normalized()
			b.ReportAllocs()
			b.ResetTimer()
			var emitted int
			for i := 0; i < b.N; i++ {
				e := &engine{ctx: context.Background(), l: &layer, a: hw, o: &on, mode: modeBest}
				e.genPrune = true
				e.bestBits.Store(math.Float64bits(math.Inf(1)))
				var st Stats
				emitted = 0
				e.generate(&st, func(int64, loops.Nest) { emitted++ })
			}
			b.ReportMetric(float64(emitted), "nests-emitted")
		})
	}
}
