package mapper

// Deterministic sharding of one Best search (DESIGN.md §13). The canonical
// walk is a depth-first product over per-dimension split alternatives; fix a
// split depth D and every ordering the walk visits belongs to exactly one
// depth-D PREFIX — the choice of split alternative for the first D
// dimensions, indexed positionally over the full cartesian product
// (prefixStrides). A shard owns a contiguous prefix range [Lo, Hi) plus the
// exact walk state (walked count, cap flag) the whole-space walk would carry
// into prefix Lo, handed over by the planner's arithmetic replay of the
// walk. Because the walk geometry, the probe bound, the class signatures and
// the greedy boundary assignment are all pure functions of (layer, arch,
// options), a shard re-derives everything else locally — on this machine or
// on a servemodel node across the network — and the union of the shards'
// emissions is EXACTLY the whole-space emission stream, seq for seq.
//
// The merge re-reduces the shard winners under the same (score, seq) order
// the engine's reducer uses and reconciles the per-shard equivalence-class
// records by signature (a class straddling shards is re-emitted by each, so
// distinct signatures — not per-shard counts — define NestsGenerated), which
// makes Best and every exact Stats counter bit-identical to the single-shard
// search for any K, any shard→node placement and any worker count.

import (
	"context"
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/workload"
)

// shardFanout is how many prefixes per requested shard the planner wants at
// minimum: enough slack that the greedy contiguous partition can balance
// uneven subtree weights.
const shardFanout = 8

// maxPrefixes bounds the planner's positional index (and so its per-prefix
// weight arrays) while it deepens the split in search of balance: the full
// cartesian product of split alternatives can be astronomically larger than
// the reachable walk.
const maxPrefixes = 1 << 20

// ShardSpec pins one shard of a search: the split depth, the owned prefix
// range and the walk state at its entry. Specs only make sense against the
// exact (layer, arch, normalized options) they were planned for.
type ShardSpec struct {
	// Depth is the split depth: a prefix assigns one split alternative to
	// each of the first Depth dimensions of the canonical walk order.
	Depth int `json:"depth"`
	// Lo, Hi delimit the contiguous, possibly empty prefix range [Lo, Hi).
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
	// WalkedBefore is the exact number of orderings the whole-space walk
	// visits in prefixes [0, Lo): the shard starts its walk counter there,
	// so every emitted seq and the MaxCandidates cap stay globally
	// consistent.
	WalkedBefore int64 `json:"walked_before"`
	// CappedBefore records whether the walk budget tripped strictly before
	// prefix Lo (pruning stops once capped, so the flag must carry over).
	CappedBefore bool `json:"capped_before,omitempty"`
}

// ShardClass records one equivalence-class representative a shard emitted:
// the class signature, the representative's global walk seq, and whether it
// validated. The merge keeps the record with the smallest seq per signature
// — the whole-space representative — so classes straddling shards collapse
// exactly.
type ShardClass struct {
	Sig   []byte `json:"sig"`
	Seq   int64  `json:"seq"`
	Valid bool   `json:"valid,omitempty"`
}

// ShardOutcome is everything a shard reports back: its winning temporal nest
// (found == false when the range held no valid mapping), the winner's walk
// seq for the global tie-break, the shard-local statistics and the class
// records. The winner crosses machine boundaries as a nest, not a score:
// the merge re-materializes it through the deterministic evaluate path, so
// wire encodings can never perturb the comparison.
type ShardOutcome struct {
	Found    bool
	Temporal loops.Nest
	Seq      int64
	Stats    Stats
	Classes  []ShardClass
}

// ShardPlan is the planner's output: K specs covering [0, Prefixes) exactly,
// in ascending range order.
type ShardPlan struct {
	Depth    int
	Prefixes int64
	Specs    []ShardSpec
}

// shardRun is the engine-side shard state: the spec restricting the walk,
// or — for the planner — simulate+weightf replaying the walk arithmetically.
// The engine epilogue fills classes, bestSeq.
type shardRun struct {
	spec     ShardSpec
	simulate bool
	// weightf observes each reached depth-D prefix in walk order: its index,
	// the orderings visited under it and the cap flag after it. Prefixes
	// inside subtrees pruned above depth D are never reported (weight 0).
	weightf func(prefix int64, visited int, capped bool)
	classes []ShardClass
	bestSeq int64
}

// PlanShards partitions the search for (l, a, opt) into k contiguous shards
// at an automatically chosen split depth. The plan is produced by one
// arithmetic replay of the walk — no orderings are scored — and is a pure
// function of its inputs, so coordinator and shards never disagree about the
// geometry. ctx cancels the replay.
func PlanShards(ctx context.Context, l *workload.Layer, a *arch.Arch, opt *Options, k int) (*ShardPlan, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if k < 1 {
		k = 1
	}
	o := opt.normalized()
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if len(o.Spatial) == 0 {
		return nil, fmt.Errorf("mapper: no spatial unrolling given")
	}
	_, dimSplits := walkSpace(l, &o)

	// Choose the smallest depth whose full prefix count gives the partition
	// room to balance (>= k*shardFanout), capped at the dimension count.
	depth := 1
	prefixes := int64(len(dimSplits[loops.AllDims[0]]))
	for depth < loops.NumDims && prefixes < int64(k)*shardFanout {
		prefixes *= int64(len(dimSplits[loops.AllDims[depth]]))
		depth++
	}

	// Replay the walk, metering per-prefix visited counts and the cap flag
	// after each prefix. Prefix count alone does not guarantee balance — one
	// prefix can hold a large fraction of the visited orderings, and the
	// greedy partition's worst chunk overshoots the total/k share by up to
	// the heaviest prefix — so while that prefix exceeds a quarter share the
	// replay is repeated one dimension deeper (imbalance then <= 25%),
	// stopping before the positional index outgrows maxPrefixes. Each replay
	// is arithmetic only; no orderings are scored.
	var weights []int64
	var capAfter []bool
	var total int64
	for {
		weights = make([]int64, prefixes)
		capAfter = make([]bool, prefixes)
		lastPrefix := int64(-1)
		lastCapped := false
		sh := &shardRun{spec: ShardSpec{Depth: depth}, simulate: true}
		sh.weightf = func(p int64, visited int, capped bool) {
			for q := lastPrefix + 1; q < p; q++ {
				capAfter[q] = lastCapped
			}
			weights[p] = int64(visited)
			capAfter[p] = capped
			lastPrefix, lastCapped = p, capped
		}
		e := &engine{ctx: ctx, l: l, a: a, o: &o, mode: modeBest, shard: sh}
		e.genPrune = o.Objective == MinLatency
		var st Stats
		e.generate(&st, func(int64, loops.Nest) {})
		if e.aborted.Load() || ctx.Err() != nil {
			return nil, ctx.Err()
		}
		for q := lastPrefix + 1; q < prefixes; q++ {
			capAfter[q] = lastCapped
		}

		total = 0
		var maxw int64
		for _, w := range weights {
			total += w
			maxw = max(maxw, w)
		}
		next := prefixes * int64(len(dimSplits[loops.AllDims[min(depth, loops.NumDims-1)]]))
		if depth == loops.NumDims || next > maxPrefixes || maxw*int64(4*k) <= total {
			break
		}
		prefixes = next
		depth++
	}

	// Greedy contiguous partition: advance each boundary until the running
	// weight reaches i/k of the total (deterministic; empty ranges are fine
	// when the weight concentrates in few prefixes).
	bounds := make([]int64, k+1)
	var cum int64
	p := int64(0)
	for i := 1; i < k; i++ {
		tgt := (total*int64(i) + int64(k)/2) / int64(k)
		for p < prefixes && cum < tgt {
			cum += weights[p]
			p++
		}
		bounds[i] = p
	}
	bounds[k] = prefixes

	plan := &ShardPlan{Depth: depth, Prefixes: prefixes, Specs: make([]ShardSpec, k)}
	var walkedBefore int64
	next := int64(0)
	for i := 0; i < k; i++ {
		lo, hi := bounds[i], bounds[i+1]
		for next < lo {
			walkedBefore += weights[next]
			next++
		}
		spec := ShardSpec{Depth: depth, Lo: lo, Hi: hi, WalkedBefore: walkedBefore}
		if lo > 0 {
			spec.CappedBefore = capAfter[lo-1]
		}
		plan.Specs[i] = spec
	}
	return plan, nil
}

// BestShard runs the modeBest search restricted to spec's prefix range and
// returns the shard's outcome. Options must match the plan's exactly
// (normalization is applied identically); Hooks, if any, observe only this
// shard's slice of the walk.
func BestShard(ctx context.Context, l *workload.Layer, a *arch.Arch, opt *Options, spec ShardSpec) (*ShardOutcome, error) {
	o := opt.normalized()
	if spec.Depth < 1 || spec.Depth > loops.NumDims {
		return nil, fmt.Errorf("mapper: shard depth %d out of range [1, %d]", spec.Depth, loops.NumDims)
	}
	if spec.Lo < 0 || spec.Hi < spec.Lo || spec.WalkedBefore < 0 {
		return nil, fmt.Errorf("mapper: malformed shard range [%d, %d) walked %d", spec.Lo, spec.Hi, spec.WalkedBefore)
	}
	sh := &shardRun{spec: spec}
	best, _, stats, err := runSearch(ctx, l, a, &o, modeBest, sh)
	if err != nil {
		return nil, err
	}
	out := &ShardOutcome{Stats: *stats, Classes: sh.classes}
	if best != nil {
		out.Found = true
		out.Temporal = best.Mapping.Temporal.Clone()
		out.Seq = sh.bestSeq
	}
	return out, nil
}

// MergeShards reduces the shard outcomes of one planned search back into the
// whole-space result. The winner is chosen by re-materializing every shard
// winner through the deterministic evaluate path and taking the (score, seq)
// minimum — exactly the engine reducer's order — and the exact counters are
// reconstructed from the class records: distinct signatures define
// NestsGenerated, the smallest-seq representative per class carries Valid,
// and the per-shard visit counts recover ClassesMerged. Skipped and
// SubtreesPruned are exactly attributed per shard and sum directly. The
// trajectory-dependent diagnostics (Pruned, Surrogate*) are summed (rank
// correlation: valid-weighted mean) and may differ from a single-engine run,
// exactly as they already differ across worker counts.
//
// A merge with no winner returns (nil, stats, nil), mirroring runSearch;
// front ends turn that into the canonical no-valid-mapping error.
func MergeShards(l *workload.Layer, a *arch.Arch, opt *Options, outs []*ShardOutcome) (*Candidate, *Stats, error) {
	o := opt.normalized()
	reduce := !o.NoReduce
	stats := &Stats{}
	type classRec struct {
		seq   int64
		valid bool
	}
	var classes map[string]classRec
	if reduce {
		classes = make(map[string]classRec)
	}
	var visited int64
	for i, out := range outs {
		if out == nil {
			return nil, nil, fmt.Errorf("mapper: shard %d has no outcome", i)
		}
		st := &out.Stats
		visited += int64(st.NestsGenerated) + int64(st.ClassesMerged)
		stats.Skipped += st.Skipped
		stats.SubtreesPruned += st.SubtreesPruned
		stats.Pruned += st.Pruned
		stats.SurrogatePruned += st.SurrogatePruned
		stats.SurrogateReorders += st.SurrogateReorders
		if !reduce {
			stats.NestsGenerated += st.NestsGenerated
			stats.Valid += st.Valid
			continue
		}
		if len(out.Classes) != st.NestsGenerated {
			return nil, nil, fmt.Errorf("mapper: shard %d reports %d classes for %d representatives", i, len(out.Classes), st.NestsGenerated)
		}
		for j := range out.Classes {
			c := &out.Classes[j]
			if prev, ok := classes[string(c.Sig)]; !ok || c.Seq < prev.seq {
				classes[string(c.Sig)] = classRec{seq: c.Seq, valid: c.Valid}
			}
		}
	}
	if reduce {
		stats.NestsGenerated = len(classes)
		stats.ClassesMerged = int(visited) - len(classes)
		for _, r := range classes {
			if r.valid {
				stats.Valid++
			}
		}
	}
	var corrW, corrAcc float64
	for _, out := range outs {
		if w := float64(out.Stats.Valid); w > 0 {
			corrAcc += w * out.Stats.SurrogateRankCorr
			corrW += w
		}
	}
	if corrW > 0 {
		stats.SurrogateRankCorr = corrAcc / corrW
	}

	var best *Candidate
	bestScore, bestSeq := math.Inf(1), int64(math.MaxInt64)
	for i, out := range outs {
		if !out.Found {
			continue
		}
		c := evaluate(l, a, &o, out.Temporal)
		if c == nil {
			return nil, nil, fmt.Errorf("mapper: shard %d winner %v failed re-evaluation (plan/options mismatch?)", i, out.Temporal)
		}
		if s := c.Score(o.Objective); s < bestScore || (s == bestScore && out.Seq < bestSeq) {
			best, bestScore, bestSeq = c, s, out.Seq
		}
	}
	return best, stats, nil
}
