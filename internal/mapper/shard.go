package mapper

// Deterministic sharding of one Best search (DESIGN.md §13-§14). The
// canonical walk is a depth-first product over per-dimension split
// alternatives; fix a split depth D and every ordering the walk visits
// belongs to exactly one depth-D PREFIX — the choice of split alternative
// for the first D dimensions, indexed positionally over the full cartesian
// product (prefixStrides). Within one prefix the visited orderings are
// themselves positionally indexed by visit order (loops.RankOrdering gives
// the index inside a single multiset), so a walk position is the pair
// (prefix, permIndex) and a shard boundary can sit in the middle of a
// multiset. A shard owns the contiguous position range
// [(Lo, PermLo), (Hi, PermHi)) plus the exact walk state the whole-space
// walk would carry into its first owned position, handed over by the
// planner's arithmetic replay. Because the walk geometry, the probe bound,
// the class signatures and the boundary assignment are all pure functions of
// (layer, arch, options), a shard re-derives everything else locally — on
// this machine or on a servemodel node across the network — and the union of
// the shards' emissions is EXACTLY the whole-space emission stream, seq for
// seq.
//
// The merge re-reduces the shard winners under the same (score, seq) order
// the engine's reducer uses and reconciles the per-shard equivalence-class
// records by signature (a class straddling shards is re-emitted by each, so
// distinct signatures — not per-shard counts — define NestsGenerated), which
// makes Best and every exact Stats counter bit-identical to the single-shard
// search for any K, any shard→node placement, any worker count — and, with
// ShardControl truncation plus SplitShard re-planning, any steal schedule.

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/workload"
)

// shardFanout is how many prefixes per requested shard the planner wants at
// minimum: enough index resolution that most boundaries land between
// prefixes and sub-multiset offsets stay the exception.
const shardFanout = 8

// maxPrefixes bounds the planner's per-prefix weight arrays: the full
// cartesian product of split alternatives can be astronomically larger than
// the reachable walk, so metering is only attempted over ranges this size or
// smaller. Boundary refinement sidesteps the bound by re-metering one
// prefix's children at a time.
const maxPrefixes = 1 << 20

// ShardSpec pins one shard of a search: the split depth, the owned walk
// position range and the walk state at its entry. Specs only make sense
// against the exact (layer, arch, normalized options) they were planned for.
type ShardSpec struct {
	// Depth is the split depth: a prefix assigns one split alternative to
	// each of the first Depth dimensions of the canonical walk order.
	Depth int `json:"depth"`
	// Lo, Hi delimit the owned position range [(Lo, PermLo), (Hi, PermHi)):
	// the visited orderings of prefix Lo from position PermLo on, prefixes
	// (Lo, Hi) whole, and — when PermHi > 0 — the first PermHi visited
	// orderings of prefix Hi. PermLo/PermHi index the orderings the
	// whole-space walk VISITS inside a prefix, in visit order; with both
	// zero the spec is the plain prefix range [Lo, Hi).
	Lo     int64 `json:"lo"`
	Hi     int64 `json:"hi"`
	PermLo int64 `json:"perm_lo,omitempty"`
	PermHi int64 `json:"perm_hi,omitempty"`
	// WalkedBefore is the exact number of orderings the whole-space walk
	// visits before position (Lo, PermLo): the shard starts its walk counter
	// there, so every emitted seq and the MaxCandidates cap stay globally
	// consistent.
	WalkedBefore int64 `json:"walked_before"`
	// CappedBefore records whether the walk budget tripped strictly before
	// position (Lo, PermLo) (pruning stops once capped, so the flag must
	// carry over). A boundary with PermLo > 0 sits at a visited position, so
	// it always has CappedBefore == false.
	CappedBefore bool `json:"capped_before,omitempty"`
}

// ShardClass records one equivalence-class representative a shard emitted:
// the class signature, the representative's global walk seq, and whether it
// validated. The merge keeps the record with the smallest seq per signature
// — the whole-space representative — so classes straddling shards collapse
// exactly.
type ShardClass struct {
	Sig   []byte `json:"sig"`
	Seq   int64  `json:"seq"`
	Valid bool   `json:"valid,omitempty"`
}

// ShardOutcome is everything a shard reports back: its winning temporal nest
// (found == false when the range held no valid mapping), the winner's walk
// seq for the global tie-break, the shard-local statistics and the class
// records. The winner crosses machine boundaries as a nest, not a score:
// the merge re-materializes it through the deterministic evaluate path, so
// wire encodings can never perturb the comparison.
type ShardOutcome struct {
	Found    bool
	Temporal loops.Nest
	Seq      int64
	Stats    Stats
	Classes  []ShardClass

	// Spec echoes the executed spec and OptFP the options fingerprint
	// (SearchFingerprint) the shard normalized to, so a merge-time mismatch
	// names the misconfigured shard instead of guessing.
	Spec  ShardSpec
	OptFP uint64

	// Truncated reports that a ShardControl stop cut the walk short; the
	// outcome then covers exactly [(Spec.Lo, Spec.PermLo), (Resume.Lo,
	// Resume.PermLo)) and Resume is the spec for the unwalked remainder.
	Truncated bool
	Resume    ShardSpec
}

// ShardPlan is the planner's output: K specs covering the full walk exactly,
// in ascending position order.
type ShardPlan struct {
	Depth    int
	Prefixes int64
	// Total is the exact number of orderings the whole walk visits (budget
	// cap included), i.e. the exclusive end position of the last spec.
	// Schedulers use end-position arithmetic (next spec's WalkedBefore, or
	// Total for the last) to estimate a running shard's remaining work.
	Total int64
	Specs []ShardSpec
}

// ShardControl is the live handle onto a running shard's walk: the shard
// publishes its exact frontier (the global count of orderings visited so
// far) every frontierInterval visits, and Truncate asks it to stop cleanly
// at the first visit at or past a given count. The stop is exact — the
// outcome reports the precise resume position — so a steal is pure
// arithmetic and results stay bit-identical for any truncation timing.
type ShardControl struct {
	frontier atomic.Int64
	limit    atomic.Int64
}

// NewShardControl returns a control handle primed at the spec's entry
// position with no truncation limit.
func NewShardControl(spec ShardSpec) *ShardControl {
	c := &ShardControl{}
	c.frontier.Store(spec.WalkedBefore)
	c.limit.Store(math.MaxInt64)
	return c
}

// Frontier returns the shard's last published visited count. It lags the
// true position by at most frontierInterval visits.
func (c *ShardControl) Frontier() int64 {
	return c.frontier.Load()
}

// Truncate asks the walk to stop before its first visit at or past global
// position limit. Positions already visited are unaffected; a limit at or
// past the shard's end is a no-op. Idempotent; the lowest limit wins.
func (c *ShardControl) Truncate(limit int64) {
	for {
		cur := c.limit.Load()
		if cur <= limit || c.limit.CompareAndSwap(cur, limit) {
			return
		}
	}
}

// frontierInterval is how often (in visited orderings) a controlled shard
// publishes its frontier: one atomic store every 512 visits keeps the
// publish overhead invisible while bounding steal staleness.
const frontierInterval = 512

// shardRun is the engine-side shard state: the spec restricting the walk,
// the optional live control handle, or — for the planner — simulate+weightf
// replaying the walk arithmetically. The engine epilogue fills classes,
// bestSeq; the generator fills truncated/resume when a control stop fires.
type shardRun struct {
	spec     ShardSpec
	ctl      *ShardControl
	simulate bool
	// weightf observes each reached depth-D prefix in walk order: its index,
	// the orderings visited under it and the cap flag after it. Prefixes
	// inside subtrees pruned above depth D are never reported (weight 0).
	weightf   func(prefix int64, visited int, capped bool)
	classes   []ShardClass
	bestSeq   int64
	truncated bool
	resume    ShardSpec
}

// meterRange replays the walk arithmetically over the depth-`depth` prefix
// range [lo, hi), entering with the exact whole-space walk state
// (walkedBefore, cappedBefore), and returns the per-prefix visited counts
// and after-prefix cap flags. No orderings are scored.
func meterRange(ctx context.Context, l *workload.Layer, a *arch.Arch, o *Options, depth int, lo, hi, walkedBefore int64, cappedBefore bool) ([]int64, []bool, error) {
	n := hi - lo
	if n > maxPrefixes {
		return nil, nil, fmt.Errorf("mapper: metering %d prefixes exceeds the %d planner bound", n, maxPrefixes)
	}
	weights := make([]int64, n)
	capAfter := make([]bool, n)
	lastIdx := int64(-1)
	lastCapped := cappedBefore
	sh := &shardRun{
		spec:     ShardSpec{Depth: depth, Lo: lo, Hi: hi, WalkedBefore: walkedBefore, CappedBefore: cappedBefore},
		simulate: true,
	}
	sh.weightf = func(p int64, visited int, capped bool) {
		i := p - lo
		for q := lastIdx + 1; q < i; q++ {
			capAfter[q] = lastCapped
		}
		weights[i] = int64(visited)
		capAfter[i] = capped
		lastIdx, lastCapped = i, capped
	}
	e := &engine{ctx: ctx, l: l, a: a, o: o, mode: modeBest, shard: sh}
	e.genPrune = o.Objective == MinLatency
	var st Stats
	e.generate(&st, func(int64, loops.Nest) {})
	if e.aborted.Load() || ctx.Err() != nil {
		return nil, nil, ctx.Err()
	}
	for q := lastIdx + 1; q < n; q++ {
		capAfter[q] = lastCapped
	}
	return weights, capAfter, nil
}

// planSeg is one contiguous piece of the walk during planning: a single
// depth-`depth` prefix with its exact visited count and the cap flag after
// it. Segments at different depths tile the walk together; refining one
// replaces it by its children one dimension deeper without touching — or
// re-metering — any other segment.
type planSeg struct {
	depth    int
	prefix   int64
	w        int64
	capAfter bool
}

// PlanShards partitions the search for (l, a, opt) into k contiguous shards.
// Boundaries are placed at exact visited-count targets i*total/k: when a
// target falls between prefixes the boundary is the classic prefix edge, and
// when it falls inside one — a multiset holding a large share of the budget,
// the case no prefix partition can balance — the planner refines its index
// one dimension at a time and finally issues a sub-multiset offset
// (PermLo/PermHi), so the worst chunk never exceeds ceil(total/k) visited
// orderings. The plan is produced by one arithmetic replay at a coarse depth
// plus a replay of each refined prefix's children — segments not being split
// reuse their parent's metered weight — and is a pure function of its
// inputs, so coordinator and shards never disagree about the geometry. ctx
// cancels the replays.
func PlanShards(ctx context.Context, l *workload.Layer, a *arch.Arch, opt *Options, k int) (*ShardPlan, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if k < 1 {
		k = 1
	}
	o := opt.normalized()
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if len(o.Spatial) == 0 {
		return nil, fmt.Errorf("mapper: no spatial unrolling given")
	}
	_, dimSplits := walkSpace(l, &o)
	cdim := make([]int64, loops.NumDims)
	for d := range cdim {
		cdim[d] = int64(len(dimSplits[loops.AllDims[d]]))
	}

	// Choose the smallest metering depth whose full prefix count gives the
	// partition room to put most boundaries between prefixes
	// (>= k*shardFanout), capped at the dimension count and the metering
	// bound.
	depth := 1
	prefixes := cdim[0]
	for depth < loops.NumDims && prefixes < int64(k)*shardFanout && prefixes*cdim[depth] <= maxPrefixes {
		prefixes *= cdim[depth]
		depth++
	}

	weights, capAfter, err := meterRange(ctx, l, a, &o, depth, 0, prefixes, 0, false)
	if err != nil {
		return nil, err
	}
	segs := make([]planSeg, prefixes)
	var total int64
	for p := int64(0); p < prefixes; p++ {
		segs[p] = planSeg{depth: depth, prefix: p, w: weights[p], capAfter: capAfter[p]}
		total += weights[p]
	}

	// Boundary targets: exact k-quantiles of the visited count (the rounding
	// matches the pre-sub-split planner's greedy targets).
	tgts := make([]int64, k+1)
	for i := 0; i <= k; i++ {
		tgts[i] = (total*int64(i) + int64(k)/2) / int64(k)
	}

	// Refine every segment a target falls strictly inside, one dimension at
	// a time, until each target sits at a segment edge or inside a prefix
	// with no dimensions left to split — the sub-multiset case. Only the
	// children of refined segments are ever re-metered; every other segment
	// keeps its weight from the coarser replay.
	for {
		type refineTask struct {
			idx       int
			cumBefore int64
			capBefore bool
		}
		var tasks []refineTask
		cum := int64(0)
		capBefore := false
		ti := 1
		for idx := range segs {
			s := &segs[idx]
			for ti < k && tgts[ti] <= cum {
				ti++
			}
			if ti < k && tgts[ti] < cum+s.w && s.depth < loops.NumDims {
				tasks = append(tasks, refineTask{idx, cum, capBefore})
			}
			cum += s.w
			capBefore = s.capAfter
		}
		if len(tasks) == 0 {
			break
		}
		// Splice children in from the back so earlier task indices stay
		// valid.
		for t := len(tasks) - 1; t >= 0; t-- {
			task := tasks[t]
			s := segs[task.idx]
			c := cdim[s.depth]
			clo, chi := s.prefix*c, (s.prefix+1)*c
			cw, ccap, err := meterRange(ctx, l, a, &o, s.depth+1, clo, chi, task.cumBefore, task.capBefore)
			if err != nil {
				return nil, err
			}
			children := make([]planSeg, c)
			var sum int64
			for j := int64(0); j < c; j++ {
				children[j] = planSeg{depth: s.depth + 1, prefix: clo + j, w: cw[j], capAfter: ccap[j]}
				sum += cw[j]
			}
			if sum != s.w {
				return nil, fmt.Errorf("mapper: planner replay diverged refining prefix %d at depth %d: children sum %d, parent %d", s.prefix, s.depth, sum, s.w)
			}
			segs = append(segs[:task.idx], append(children, segs[task.idx+1:]...)...)
		}
	}

	// The plan's depth is the deepest any segment reached; coarser segments
	// scale their prefix index up by the intervening split-alternative
	// counts.
	planDepth := depth
	for _, s := range segs {
		if s.depth > planDepth {
			planDepth = s.depth
		}
	}
	scale := make([]int64, planDepth+1)
	scale[planDepth] = 1
	for d := planDepth - 1; d >= 0; d-- {
		scale[d] = scale[d+1] * cdim[d]
	}
	planPrefixes := prefixes * scale[depth]

	type boundary struct {
		prefix, perm, walked int64
		capped               bool
	}
	bnds := make([]boundary, k+1)
	cum := int64(0)
	capBefore := false
	ti := 1
	for _, s := range segs {
		base := s.prefix * scale[s.depth]
		for ti < k && tgts[ti] <= cum {
			bnds[ti] = boundary{prefix: base, walked: cum, capped: capBefore}
			ti++
		}
		for ti < k && tgts[ti] < cum+s.w {
			// Strictly inside: refinement guarantees the segment is a single
			// full-depth prefix, so the target is a sub-multiset offset.
			bnds[ti] = boundary{prefix: base, perm: tgts[ti] - cum, walked: tgts[ti]}
			ti++
		}
		cum += s.w
		capBefore = s.capAfter
	}
	for ; ti < k; ti++ {
		bnds[ti] = boundary{prefix: planPrefixes, walked: cum, capped: capBefore}
	}
	bnds[k] = boundary{prefix: planPrefixes}

	plan := &ShardPlan{Depth: planDepth, Prefixes: planPrefixes, Total: total, Specs: make([]ShardSpec, k)}
	for i := 0; i < k; i++ {
		b, e := bnds[i], bnds[i+1]
		plan.Specs[i] = ShardSpec{
			Depth: planDepth,
			Lo:    b.prefix, PermLo: b.perm,
			Hi: e.prefix, PermHi: e.perm,
			WalkedBefore: b.walked, CappedBefore: b.capped,
		}
	}
	return plan, nil
}

// SplitShard partitions the still-unwalked range of spec into up to m
// contiguous specs with near-equal visited counts, using one arithmetic
// replay over the spec's prefix range. It is the steal-side counterpart of
// PlanShards: the input is typically a truncated shard's Resume spec, and
// the output specs tile it exactly — same depth, same walk-state handoff
// arithmetic — so executing them in any placement reproduces the original
// range bit for bit. Fewer than m specs come back when the range has too few
// visited orderings to split further.
func SplitShard(ctx context.Context, l *workload.Layer, a *arch.Arch, opt *Options, spec ShardSpec, m int) ([]ShardSpec, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := validateSpec(spec); err != nil {
		return nil, err
	}
	if m < 2 || (spec.Lo == spec.Hi && spec.PermHi <= spec.PermLo) {
		return []ShardSpec{spec}, nil
	}
	o := opt.normalized()
	hi := spec.Hi
	if spec.PermHi > 0 {
		hi++ // prefix Hi is partially owned: meter it too
	}
	weights, capAfter, err := meterRange(ctx, l, a, &o, spec.Depth, spec.Lo, hi, spec.WalkedBefore-spec.PermLo, spec.CappedBefore)
	if err != nil {
		return nil, err
	}
	// Owned visited count: prefix Lo from PermLo on, interior prefixes
	// whole, prefix Hi up to PermHi.
	total := -spec.PermLo
	for _, w := range weights {
		total += w
	}
	if spec.PermHi > 0 {
		total -= weights[len(weights)-1] - spec.PermHi
	}
	if total < int64(m) {
		m = int(max(total, 1))
	}

	specs := make([]ShardSpec, 0, m)
	cur := spec
	cum := spec.WalkedBefore // visited count at the start of the next prefix scan
	p := spec.Lo
	wAt := func(q int64) int64 { return weights[q-spec.Lo] }
	capAt := func(q int64) bool { return capAfter[q-spec.Lo] }
	cumAt := cum - spec.PermLo // visited before prefix p
	for i := 1; i < m; i++ {
		tgt := spec.WalkedBefore + (total*int64(i)+int64(m)/2)/int64(m)
		// Advance to the prefix containing position tgt.
		for p < hi && cumAt+wAt(p) <= tgt {
			cumAt += wAt(p)
			p++
		}
		var b ShardSpec
		if p == hi || cumAt == tgt {
			b = ShardSpec{Depth: spec.Depth, Lo: p, WalkedBefore: cumAt}
			if p > spec.Lo {
				b.CappedBefore = capAt(p - 1)
			} else {
				b.CappedBefore = spec.CappedBefore
			}
		} else {
			b = ShardSpec{Depth: spec.Depth, Lo: p, PermLo: tgt - cumAt, WalkedBefore: tgt}
		}
		if b.Lo == cur.Lo && b.PermLo == cur.PermLo {
			continue // empty piece: fold into the next
		}
		piece := cur
		piece.Hi, piece.PermHi = b.Lo, b.PermLo
		specs = append(specs, piece)
		cur = spec
		cur.Lo, cur.PermLo = b.Lo, b.PermLo
		cur.WalkedBefore, cur.CappedBefore = b.WalkedBefore, b.CappedBefore
	}
	specs = append(specs, cur)
	return specs, nil
}

// validateSpec rejects geometrically impossible shard specs.
func validateSpec(spec ShardSpec) error {
	if spec.Depth < 1 || spec.Depth > loops.NumDims {
		return fmt.Errorf("mapper: shard depth %d out of range [1, %d]", spec.Depth, loops.NumDims)
	}
	if spec.Lo < 0 || spec.Hi < spec.Lo || spec.WalkedBefore < 0 || spec.PermLo < 0 || spec.PermHi < 0 {
		return fmt.Errorf("mapper: malformed shard range [%d+%d, %d+%d) walked %d", spec.Lo, spec.PermLo, spec.Hi, spec.PermHi, spec.WalkedBefore)
	}
	if spec.Lo == spec.Hi && spec.PermHi > 0 && spec.PermHi < spec.PermLo {
		return fmt.Errorf("mapper: inverted sub-multiset range [%d+%d, %d+%d)", spec.Lo, spec.PermLo, spec.Hi, spec.PermHi)
	}
	if spec.WalkedBefore < spec.PermLo {
		return fmt.Errorf("mapper: shard at position (%d, %d) cannot have walked only %d", spec.Lo, spec.PermLo, spec.WalkedBefore)
	}
	if spec.PermLo > 0 && spec.CappedBefore {
		return fmt.Errorf("mapper: sub-multiset boundary (%d, %d) cannot be capped-before (it is a visited position)", spec.Lo, spec.PermLo)
	}
	return nil
}

// SearchFingerprint is a stable hash of the normalized search inputs
// (layer, arch, spatial nest and every option the walk geometry depends
// on). Shards echo it in their outcomes so a fleet misconfiguration — two
// nodes normalizing different options into "the same" plan — is named
// precisely at merge time instead of surfacing as a failed re-evaluation.
func SearchFingerprint(l *workload.Layer, a *arch.Arch, opt *Options) uint64 {
	o := opt.normalized()
	return bestKey(l, a, &o).Hash
}

// BestShard runs the modeBest search restricted to spec's position range and
// returns the shard's outcome. Options must match the plan's exactly
// (normalization is applied identically); Hooks, if any, observe only this
// shard's slice of the walk.
func BestShard(ctx context.Context, l *workload.Layer, a *arch.Arch, opt *Options, spec ShardSpec) (*ShardOutcome, error) {
	return BestShardControlled(ctx, l, a, opt, spec, nil)
}

// BestShardControlled is BestShard with a live control handle: the walk
// publishes its frontier through ctl and stops cleanly when ctl.Truncate is
// crossed, reporting the unwalked remainder as Resume. A nil ctl is plain
// BestShard.
func BestShardControlled(ctx context.Context, l *workload.Layer, a *arch.Arch, opt *Options, spec ShardSpec, ctl *ShardControl) (*ShardOutcome, error) {
	o := opt.normalized()
	if err := validateSpec(spec); err != nil {
		return nil, err
	}
	sh := &shardRun{spec: spec, ctl: ctl}
	best, _, stats, err := runSearch(ctx, l, a, &o, modeBest, sh)
	if err != nil {
		return nil, err
	}
	out := &ShardOutcome{
		Stats: *stats, Classes: sh.classes,
		Spec: spec, OptFP: bestKey(l, a, &o).Hash,
		Truncated: sh.truncated, Resume: sh.resume,
	}
	if best != nil {
		out.Found = true
		out.Temporal = best.Mapping.Temporal.Clone()
		out.Seq = sh.bestSeq
	}
	return out, nil
}

// MergeShards reduces the shard outcomes of one planned search back into the
// whole-space result. The winner is chosen by re-materializing every shard
// winner through the deterministic evaluate path and taking the (score, seq)
// minimum — exactly the engine reducer's order — and the exact counters are
// reconstructed from the class records: distinct signatures define
// NestsGenerated, the smallest-seq representative per class carries Valid,
// and the per-shard visit counts recover ClassesMerged. Skipped and
// SubtreesPruned are exactly attributed per shard and sum directly. The
// trajectory-dependent diagnostics (Pruned, Surrogate*) are summed (rank
// correlation: valid-weighted mean) and may differ from a single-engine run,
// exactly as they already differ across worker counts.
//
// A merge with no winner returns (nil, stats, nil), mirroring runSearch;
// front ends turn that into the canonical no-valid-mapping error.
func MergeShards(l *workload.Layer, a *arch.Arch, opt *Options, outs []*ShardOutcome) (*Candidate, *Stats, error) {
	o := opt.normalized()
	reduce := !o.NoReduce
	stats := &Stats{}
	type classRec struct {
		seq   int64
		valid bool
	}
	var classes map[string]classRec
	if reduce {
		classes = make(map[string]classRec)
	}
	var visited int64
	for i, out := range outs {
		if out == nil {
			return nil, nil, fmt.Errorf("mapper: shard %d has no outcome", i)
		}
		st := &out.Stats
		visited += int64(st.NestsGenerated) + int64(st.ClassesMerged)
		stats.Skipped += st.Skipped
		stats.SubtreesPruned += st.SubtreesPruned
		stats.Pruned += st.Pruned
		stats.SurrogatePruned += st.SurrogatePruned
		stats.SurrogateReorders += st.SurrogateReorders
		if !reduce {
			stats.NestsGenerated += st.NestsGenerated
			stats.Valid += st.Valid
			continue
		}
		if len(out.Classes) != st.NestsGenerated {
			return nil, nil, fmt.Errorf("mapper: shard %d reports %d classes for %d representatives", i, len(out.Classes), st.NestsGenerated)
		}
		for j := range out.Classes {
			c := &out.Classes[j]
			if prev, ok := classes[string(c.Sig)]; !ok || c.Seq < prev.seq {
				classes[string(c.Sig)] = classRec{seq: c.Seq, valid: c.Valid}
			}
		}
	}
	if reduce {
		stats.NestsGenerated = len(classes)
		stats.ClassesMerged = int(visited) - len(classes)
		for _, r := range classes {
			if r.valid {
				stats.Valid++
			}
		}
	}
	var corrW, corrAcc float64
	for _, out := range outs {
		if w := float64(out.Stats.Valid); w > 0 {
			corrAcc += w * out.Stats.SurrogateRankCorr
			corrW += w
		}
	}
	if corrW > 0 {
		stats.SurrogateRankCorr = corrAcc / corrW
	}

	mergeFP := bestKey(l, a, &o).Hash
	var best *Candidate
	bestScore, bestSeq := math.Inf(1), int64(math.MaxInt64)
	for i, out := range outs {
		if !out.Found {
			continue
		}
		c := evaluate(l, a, &o, out.Temporal)
		if c == nil {
			s := out.Spec
			detail := fmt.Sprintf("spec [%d+%d, %d+%d) depth %d", s.Lo, s.PermLo, s.Hi, s.PermHi, s.Depth)
			if out.OptFP != 0 && out.OptFP != mergeFP {
				return nil, nil, fmt.Errorf("mapper: shard %d (%s) winner %v failed re-evaluation: shard options fingerprint %016x != merge fingerprint %016x — the shard normalized different search options than this merge", i, detail, out.Temporal, out.OptFP, mergeFP)
			}
			return nil, nil, fmt.Errorf("mapper: shard %d (%s) winner %v failed re-evaluation with matching options fingerprint %016x — plan geometry mismatch or corrupt outcome", i, detail, out.Temporal, mergeFP)
		}
		if s := c.Score(o.Objective); s < bestScore || (s == bestScore && out.Seq < bestSeq) {
			best, bestScore, bestSeq = c, s, out.Seq
		}
	}
	return best, stats, nil
}
