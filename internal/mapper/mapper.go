// Package mapper is a ZigZag-style temporal-mapping search engine: given a
// layer, an architecture and a fixed spatial unrolling, it enumerates
// temporal loop nests (per-dimension tiling factorization × loop ordering),
// assigns per-operand memory-level boundaries greedily under capacity, and
// evaluates each valid mapping with the latency model of package core
// (optionally the bandwidth-unaware baseline) and the energy model of
// package energy.
//
// The paper integrates its latency model with ZigZag (Section V) to
// generate design points; this package plays that role. It is exhaustive
// within a bounded factorization/ordering space and deterministic: the
// evaluation pipeline (engine.go) may fan candidates out across a worker
// pool, but the selected mapping, its score and the search statistics are
// identical to a serial run.
package mapper

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/loops"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Objective selects what Best optimizes.
type Objective uint8

// Optimization objectives.
const (
	MinLatency Objective = iota
	MinEnergy
	MinEDP // energy-delay product
)

// Options tunes the search space.
type Options struct {
	// Spatial is the fixed spatial unrolling (required).
	Spatial loops.Nest
	// MaxSplitsPerDim bounds how many temporal loops one dimension may be
	// split into (1 or 2; default 2).
	MaxSplitsPerDim int
	// Pow2Splits restricts split factors to powers of two (cuts the space
	// for large prime-rich extents). Default false.
	Pow2Splits bool
	// MaxCandidates caps the enumeration walk: the number of ordered nests
	// VISITED, whether each is evaluated directly (NoReduce) or first
	// canonicalized into its model-equivalence class (default — the same
	// budget then covers the same slice of the mapping space while
	// evaluating only one representative per class). The exact remainder
	// beyond the budget is reported as Stats.Skipped. Default 50000.
	MaxCandidates int
	// Objective selects the ranking (default MinLatency).
	Objective Objective
	// BWAware selects the full model (true, default) or the bandwidth-
	// unaware baseline for ranking — used to reproduce Fig. 8(a).
	BWAware bool
	// EnergyTable overrides the default energy table.
	EnergyTable *energy.Table
	// Workers caps the evaluation parallelism: 0 (default) draws extra
	// workers from the shared par budget (up to GOMAXPROCS across ALL
	// concurrent searches and sweeps in the process), 1 forces serial
	// evaluation, and n > 1 forces exactly n workers regardless of the
	// budget (tests and benchmarks). The result is identical in all cases.
	Workers int
	// NoPrune disables the workers' branch-and-bound lower-bound prune
	// (latency objectives only; see engine.go). The selected mapping and
	// all exact statistics are identical with or without pruning — the
	// knob exists for measurement.
	NoPrune bool
	// NoReduce disables the symmetry reduction (DESIGN.md §9): every
	// distinct loop ordering is scored instead of one representative per
	// model-equivalence class. The selected mapping and its score are
	// bit-identical either way (the reduction is exact); the knob exists
	// for cross-checking and measurement (-nosym in the cmds). The
	// Stats counters change meaning with it — see Stats.
	NoReduce bool
	// NoSurrogate disables the surrogate-guided candidate ordering
	// (DESIGN.md §12): the evaluation stream reaches the workers in the
	// canonical walk order instead of best-predicted-first. The selected
	// mapping and every exact Stats counter are bit-identical either way —
	// the surrogate only ORDERS work, the exact model still scores every
	// surviving candidate, and the walk sequence number carried through the
	// reordered stream preserves the deterministic tie-break — so like
	// Workers/NoPrune/NoReduce the knob is excluded from memo keys and
	// exists for measurement (-nosurrogate in the cmds). Only the
	// trajectory-dependent counters (Pruned, Surrogate*) move with it.
	NoSurrogate bool
	// Hooks receives search telemetry (phase timings, periodic progress
	// snapshots, best-score improvements). Nil — the default — disables
	// telemetry at the cost of one pointer check per event site; with
	// hooks installed the selected mapping, its score and every exact
	// Stats counter are bit-identical to a hookless run (guarded by
	// TestHooksDoNotPerturbSearch). Like Workers/NoPrune, Hooks is
	// excluded from memo keys: cached searches coalesce regardless of
	// telemetry, and only the run that actually computes sees events.
	Hooks *obs.SearchHooks
}

func (o *Options) normalized() Options {
	out := *o
	if out.MaxSplitsPerDim <= 0 {
		out.MaxSplitsPerDim = 2
	}
	if out.MaxCandidates <= 0 {
		out.MaxCandidates = 50000
	}
	return out
}

// Candidate is one evaluated valid mapping.
type Candidate struct {
	Mapping  *mapping.Mapping
	Result   *core.Result
	EnergyPJ float64
}

// Score returns the candidate's objective value (lower is better).
func (c *Candidate) Score(obj Objective) float64 {
	switch obj {
	case MinEnergy:
		return c.EnergyPJ
	case MinEDP:
		return c.EnergyPJ * c.Result.CCTotal
	}
	return c.Result.CCTotal
}

// Stats summarizes a search. All counters except Pruned are exact: they are
// pure functions of (layer, arch, Options) — independent of the worker
// count and of NoPrune, so a parallel run reports the same values as a
// serial run of the same search. Pruned is the only trajectory-dependent
// counter: it reports how many full evaluations the workers' lower bound
// skipped, which depends on how fast the shared best-so-far tightened and
// therefore on scheduling.
type Stats struct {
	// NestsGenerated counts the ordered nests handed to evaluation: with
	// the symmetry reduction active (default) one representative per
	// model-equivalence class, with NoReduce every visited ordering.
	NestsGenerated int
	// ClassesMerged counts visited orderings absorbed into an earlier
	// representative's class (always 0 under NoReduce). NestsGenerated +
	// ClassesMerged is the walk length MaxCandidates caps.
	ClassesMerged int
	// SubtreesPruned counts factorization subtrees the generator dropped
	// against its deterministic probe bound before permuting them
	// (engine.go); their orderings appear in no other counter.
	SubtreesPruned int
	// Valid counts evaluated mappings passing validation (under reduction:
	// valid class representatives).
	Valid int
	// Skipped is the exact number of orderings beyond the MaxCandidates
	// walk budget, counted by multinomial arithmetic rather than walked.
	Skipped int
	// Pruned counts full evaluations skipped by the workers' lower bound
	// (informational; trajectory-dependent).
	Pruned int
	// SurrogateReorders counts candidates the surrogate-guided order moved
	// away from their canonical walk position (0 when the guided order is
	// inactive: NoSurrogate, enumeration, energy objectives, NoPrune or the
	// baseline model). Deterministic: the prediction is a pure function of
	// the candidate.
	SurrogateReorders int
	// SurrogatePruned counts full evaluations the workers' lower bound
	// skipped while the guided order was active — the "pruned before eval"
	// share the reordering bought (informational; trajectory-dependent,
	// like Pruned).
	SurrogatePruned int
	// SurrogateRankCorr is the Spearman rank correlation between the
	// surrogate's predictions and the exact scores over the fully evaluated
	// candidates — how well the learned order tracked the true one (0 when
	// guided order is inactive or fewer than two candidates were scored;
	// informational; trajectory-dependent).
	SurrogateRankCorr float64
}

// Best searches the space and returns the best candidate by the objective,
// together with search statistics. Ties on the objective are broken by
// generation order (the first nest in the canonical enumeration wins),
// which makes the result independent of the worker count.
//
// The search honors ctx: cancellation (or an expired deadline) stops the
// generator and the workers cooperatively, and Best returns ctx.Err()
// without a candidate — a canceled search never yields a partial result.
// Pass context.Background() for the batch behaviour.
func Best(ctx context.Context, l *workload.Layer, a *arch.Arch, opt *Options) (*Candidate, *Stats, error) {
	o := opt.normalized()
	best, _, stats, err := runSearch(ctx, l, a, &o, modeBest, nil)
	if err != nil {
		return nil, nil, err
	}
	if best == nil {
		return nil, stats, NoValidMappingError(l, a, stats)
	}
	return best, stats, nil
}

// NoValidMappingError is the canonical "search found nothing" error, shared
// by every search front end (Best, the cache rebuild, the sharded fabric) so
// that all paths fail byte-identically.
func NoValidMappingError(l *workload.Layer, a *arch.Arch, stats *Stats) error {
	return fmt.Errorf("mapper: no valid mapping for layer %s on arch %s (of %d nests)", l.Name, a.Name, stats.NestsGenerated)
}

// Enumerate returns every valid candidate (use bounded options; intended
// for analysis and mapping-space counting, e.g. Case 1's mapping census).
// With the symmetry reduction active (default) that means one candidate per
// valid model-equivalence class; set NoReduce to enumerate every valid
// ordering. Candidates are ordered canonically: by score, then by the
// temporal nest's lexicographic rendering, then by generation order — so
// equal-score candidates land in a deterministic order regardless of the
// worker count. Unlike Best, Enumerate never bound-prunes subtrees (every
// valid candidate is wanted, not just the winner).
func Enumerate(ctx context.Context, l *workload.Layer, a *arch.Arch, opt *Options) ([]*Candidate, *Stats, error) {
	o := opt.normalized()
	_, scoredAll, stats, err := runSearch(ctx, l, a, &o, modeAll, nil)
	if err != nil {
		return nil, nil, err
	}
	sort.Slice(scoredAll, func(i, j int) bool {
		if scoredAll[i].score != scoredAll[j].score {
			return scoredAll[i].score < scoredAll[j].score
		}
		if scoredAll[i].key != scoredAll[j].key {
			return scoredAll[i].key < scoredAll[j].key
		}
		return scoredAll[i].seq < scoredAll[j].seq
	})
	all := make([]*Candidate, len(scoredAll))
	for i := range scoredAll {
		all[i] = scoredAll[i].cand
	}
	return all, stats, nil
}

// evaluate builds boundaries for one ordered nest, validates and scores it
// with freshly allocated structures — the materialization path, used for
// kept candidates and by the annealer. Returns nil for invalid mappings.
// The hot path of the search engine uses scratch-based scoring instead
// (engine.go) and only materializes improvements.
func evaluate(l *workload.Layer, a *arch.Arch, o *Options, nest loops.Nest) *Candidate {
	m := &mapping.Mapping{Spatial: o.Spatial.Clone(), Temporal: nest.Clone()}
	if !assignBounds(m, l, a) {
		return nil
	}
	if err := m.Validate(l, a); err != nil {
		return nil
	}
	p := &core.Problem{Layer: l, Arch: a, Mapping: m}
	var (
		r   *core.Result
		err error
	)
	if o.BWAware {
		r, err = core.Evaluate(p)
	} else {
		r, err = core.EvaluateBWUnaware(p)
	}
	if err != nil {
		return nil
	}
	c := &Candidate{Mapping: m, Result: r}
	if o.Objective == MinEnergy || o.Objective == MinEDP {
		b, err := energy.Evaluate(p, o.EnergyTable)
		if err != nil {
			return nil
		}
		c.EnergyPJ = b.TotalPJ
	}
	return c
}

// assignBounds sets each operand's level boundaries greedily: every level
// absorbs as many loops (from where the previous level stopped) as its
// mapper-visible capacity allows. Because operand-irrelevant loops do not
// grow the resident tile, this automatically normalizes reuse loops to the
// lowest possible level (the canonical placement discussed in DESIGN.md).
// Returns false when even the spatial tile overflows some level.
func assignBounds(m *mapping.Mapping, l *workload.Layer, a *arch.Arch) bool {
	var chains [loops.NumOperands][]*arch.Memory
	var store [loops.NumOperands][]int
	for _, op := range loops.AllOperands {
		chains[op] = a.ChainMems(op)
	}
	return assignBoundsIn(m, l, &chains, &store)
}

// assignBoundsIn is assignBounds with caller-provided chain resolution and
// boundary storage, so the search hot path can run it allocation-free. The
// boundary slices written into m.Bound alias store.
func assignBoundsIn(m *mapping.Mapping, l *workload.Layer, chains *[loops.NumOperands][]*arch.Memory, store *[loops.NumOperands][]int) bool {
	n := len(m.Temporal)
	for _, op := range loops.AllOperands {
		chain := chains[op]
		bounds := store[op][:0]
		for range chain {
			bounds = append(bounds, 0)
		}
		store[op] = bounds
		prev := 0
		for lev := range chain {
			if lev == len(chain)-1 {
				bounds[lev] = n
				break
			}
			capBits := chain[lev].MapperCapacityBits()
			bits := int64(l.Precision.Bits(op))
			b := prev
			m.Bound[op] = bounds // MemData reads Bound; keep it current
			bounds[lev] = b
			if m.MemData(op, lev, l.Strides)*bits > capBits {
				return false // spatial tile alone does not fit
			}
			for b < n {
				bounds[lev] = b + 1
				if m.MemData(op, lev, l.Strides)*bits > capBits {
					bounds[lev] = b
					break
				}
				b++
			}
			prev = bounds[lev]
		}
		m.Bound[op] = bounds
	}
	return true
}

// splits returns the ways to factor extent into up to maxParts ordered
// parts (inner first), dropping 1-factors. extent 1 yields one empty split.
func splits(extent int64, maxParts int, pow2 bool) [][]int64 {
	if extent == 1 {
		return [][]int64{{}}
	}
	keepFactor := func(f int64) bool {
		if !pow2 {
			return true
		}
		return f&(f-1) == 0 || f == extent
	}
	out := [][]int64{{extent}}
	if maxParts < 2 {
		return out
	}
	for _, d := range loops.Divisors(extent) {
		if d == 1 || d == extent {
			continue
		}
		if !keepFactor(d) || !keepFactor(extent/d) {
			continue
		}
		out = append(out, []int64{d, extent / d})
	}
	return out
}

// dedupSplits removes duplicate split alternatives.
func dedupSplits(in [][]int64) [][]int64 {
	seen := map[string]bool{}
	out := in[:0]
	for _, s := range in {
		key := fmt.Sprint(s)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, s)
	}
	return out
}

// permute visits every distinct ordering of the blocks exactly once; visit
// returns false to stop the walk (walk budget exhausted). The nest passed to
// visit is a shared buffer, only valid for the duration of the call.
//
// Equal blocks are always adjacent in the mapper's multisets — each
// dimension contributes the parts of ONE split alternative, so equal loops
// can only be same-dim neighbours — which makes the duplicate-position skip
// below sufficient for exactness: the walk visits precisely the
// loops.DistinctOrderings(blocks) distinct sequences, the identity the
// engine's Skipped accounting rests on.
func permute(blocks []loops.Loop, visit func(loops.Nest) bool) {
	n := len(blocks)
	if n == 0 {
		visit(nil)
		return
	}
	nest := make(loops.Nest, 0, n)
	used := make([]bool, n)
	var rec func() bool
	rec = func() bool {
		if len(nest) == n {
			return visit(nest)
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			// Skip duplicate blocks at the same position.
			if i > 0 && !used[i-1] && blocks[i] == blocks[i-1] {
				continue
			}
			used[i] = true
			nest = append(nest, blocks[i])
			ok := rec()
			nest = nest[:len(nest)-1]
			used[i] = false
			if !ok {
				return false
			}
		}
		return true
	}
	rec()
}

// permuteFrom visits the distinct orderings of blocks in the same walk order
// as permute, starting at the zero-based rank `skip` (loops.RankOrdering's
// index): permuteFrom(blocks, 0, visit) == permute(blocks, visit), and for
// any skip the orderings visited are exactly permute's from position skip
// on. The jump is arithmetic — loops.UnrankOrdering materializes the target
// ordering and the recursion re-enters along that path — so resuming a walk
// mid-multiset costs O(n^2), not O(skip). Nothing is visited when skip is at
// or past the multiset's last ordering.
func permuteFrom(blocks []loops.Loop, skip int64, visit func(loops.Nest) bool) {
	if skip <= 0 {
		permute(blocks, visit)
		return
	}
	if skip >= loops.DistinctOrderings(blocks) {
		return
	}
	target := loops.UnrankOrdering(blocks, skip)
	n := len(blocks)
	nest := make(loops.Nest, 0, n)
	used := make([]bool, n)
	var rec func(onPath bool) bool
	rec = func(onPath bool) bool {
		if len(nest) == n {
			return visit(nest)
		}
		start := 0
		if onPath {
			// Re-enter along the target ordering: take the target's block at
			// this position first (its first unused index — equal blocks are
			// interchangeable), staying on-path one level deeper, then fall
			// through to the choices after it as complete subtrees.
			ti := -1
			for i := 0; i < n; i++ {
				if !used[i] && blocks[i] == target[len(nest)] {
					ti = i
					break
				}
			}
			used[ti] = true
			nest = append(nest, blocks[ti])
			ok := rec(true)
			nest = nest[:len(nest)-1]
			used[ti] = false
			if !ok {
				return false
			}
			start = ti + 1
		}
		for i := start; i < n; i++ {
			if used[i] {
				continue
			}
			if i > 0 && !used[i-1] && blocks[i] == blocks[i-1] {
				continue
			}
			used[i] = true
			nest = append(nest, blocks[i])
			ok := rec(false)
			nest = nest[:len(nest)-1]
			used[i] = false
			if !ok {
				return false
			}
		}
		return true
	}
	rec(true)
}
