package mapper

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// countingHooks installs every hook field and tallies deliveries. The
// callbacks race across workers, so the counters are atomics and the
// mutable snapshot fields sit behind a mutex.
type countingHooks struct {
	phases    sync.Map // name -> *atomic.Int64
	progress  atomic.Int64
	improved  atomic.Int64
	annealed  atomic.Int64
	mu        sync.Mutex
	lastFinal obs.SearchProgress
	bests     []float64 // improvement scores in delivery order
}

func (c *countingHooks) hooks() *obs.SearchHooks {
	return &obs.SearchHooks{
		Phase: func(name string, d time.Duration) {
			v, _ := c.phases.LoadOrStore(name, new(atomic.Int64))
			v.(*atomic.Int64).Add(1)
		},
		Progress: func(p obs.SearchProgress) {
			c.progress.Add(1)
			if p.Done {
				c.mu.Lock()
				c.lastFinal = p
				c.mu.Unlock()
			}
		},
		ImprovedBest: func(score float64, seq int64) {
			c.improved.Add(1)
			c.mu.Lock()
			c.bests = append(c.bests, score)
			c.mu.Unlock()
		},
		AnnealProgress: func(chain, iter int, best float64) {
			c.annealed.Add(1)
		},
	}
}

func (c *countingHooks) phaseCount(name string) int64 {
	v, ok := c.phases.Load(name)
	if !ok {
		return 0
	}
	return v.(*atomic.Int64).Load()
}

// TestHooksDoNotPerturbSearch is the telemetry contract: a search with
// every hook installed returns the same candidate, the same bit-identical
// score and the same exact Stats as a hookless run — serial and parallel
// (run under -race this also proves the observation sites are data-race
// free against the worker pool).
func TestHooksDoNotPerturbSearch(t *testing.T) {
	for _, tc := range equivCases() {
		t.Run(tc.name, func(t *testing.T) {
			ref := tc.o
			ref.Workers = 4
			refCand, refStats, refErr := Best(context.Background(), &tc.l, tc.a, &ref)

			for _, workers := range []int{1, 4} {
				ch := &countingHooks{}
				o := tc.o
				o.Workers = workers
				o.Hooks = ch.hooks()
				cand, stats, err := Best(context.Background(), &tc.l, tc.a, &o)
				if (err == nil) != (refErr == nil) {
					t.Fatalf("workers=%d: err = %v, reference err = %v", workers, err, refErr)
				}
				if err != nil {
					continue
				}
				if cand.Score(tc.o.Objective) != refCand.Score(tc.o.Objective) {
					t.Errorf("workers=%d: score = %v, want bit-identical %v",
						workers, cand.Score(tc.o.Objective), refCand.Score(tc.o.Objective))
				}
				if got, want := cand.Mapping.Temporal.String(), refCand.Mapping.Temporal.String(); got != want {
					t.Errorf("workers=%d: mapping %s, want %s", workers, got, want)
				}
				// Every exact counter must match; Pruned and its guided-
				// search mirrors (SurrogatePruned, SurrogateRankCorr) are
				// documented as trajectory-dependent (scheduling-
				// sensitive), so they are excluded from the byte-identity
				// check.
				gotStats, wantStats := *stats, *refStats
				gotStats.Pruned, wantStats.Pruned = 0, 0
				gotStats.SurrogatePruned, wantStats.SurrogatePruned = 0, 0
				gotStats.SurrogateRankCorr, wantStats.SurrogateRankCorr = 0, 0
				if gotStats != wantStats {
					t.Errorf("workers=%d: stats %+v, want %+v", workers, gotStats, wantStats)
				}

				// The hooks must actually have observed the search.
				if n := ch.phaseCount("search"); n != 1 {
					t.Errorf("workers=%d: search phase fired %d times, want 1", workers, n)
				}
				if n := ch.phaseCount("generate"); n != 1 {
					t.Errorf("workers=%d: generate phase fired %d times, want 1", workers, n)
				}
				if ch.progress.Load() < 1 {
					t.Errorf("workers=%d: no progress snapshot delivered", workers)
				}
				if ch.improved.Load() < 1 {
					t.Errorf("workers=%d: no ImprovedBest delivered", workers)
				}
				ch.mu.Lock()
				final := ch.lastFinal
				bests := append([]float64(nil), ch.bests...)
				ch.mu.Unlock()
				if !final.Done {
					t.Fatalf("workers=%d: no final (Done) snapshot", workers)
				}
				if final.Valid != int64(stats.Valid) || final.Generated != int64(stats.NestsGenerated) ||
					final.ClassesMerged != int64(stats.ClassesMerged) || final.Pruned != int64(stats.Pruned) {
					t.Errorf("workers=%d: final snapshot %+v disagrees with stats %+v", workers, final, *stats)
				}
				if final.BestCC != cand.Score(tc.o.Objective) {
					t.Errorf("workers=%d: final BestCC %v, want %v", workers, final.BestCC, cand.Score(tc.o.Objective))
				}
				for i := 1; i < len(bests); i++ {
					if bests[i] >= bests[i-1] {
						t.Errorf("workers=%d: ImprovedBest not strictly decreasing: %v", workers, bests)
						break
					}
				}
			}
		})
	}
}

// TestHooksNilFieldsSafe proves a SearchHooks with nil fields (and a nil
// *SearchHooks) never panics at any emit site.
func TestHooksNilFieldsSafe(t *testing.T) {
	var nilHooks *obs.SearchHooks
	nilHooks.EmitPhase("x", 0)
	nilHooks.EmitProgress(obs.SearchProgress{})
	nilHooks.EmitImprovedBest(1, 2)
	nilHooks.EmitAnnealProgress(0, 0, math.Inf(1))

	tc := equivCases()[0]
	o := tc.o
	o.Hooks = &obs.SearchHooks{} // installed but all fields nil
	if _, _, err := Best(context.Background(), &tc.l, tc.a, &o); err != nil {
		t.Fatal(err)
	}
}

// TestHooksDoNotPerturbAnneal: the annealer consumes identical rng streams
// with and without hooks, so the returned candidate is bit-identical.
func TestHooksDoNotPerturbAnneal(t *testing.T) {
	tc := equivCases()[0]
	ao := AnnealOptions{Spatial: tc.o.Spatial, BWAware: true, Iterations: 600, Restarts: 2, Seed: 7}
	ref, err := Anneal(context.Background(), &tc.l, tc.a, &ao)
	if err != nil {
		t.Fatal(err)
	}

	ch := &countingHooks{}
	hooked := ao
	hooked.Hooks = ch.hooks()
	got, err := Anneal(context.Background(), &tc.l, tc.a, &hooked)
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.CCTotal != ref.Result.CCTotal {
		t.Errorf("CCTotal with hooks %v, want bit-identical %v", got.Result.CCTotal, ref.Result.CCTotal)
	}
	if got.Mapping.Temporal.String() != ref.Mapping.Temporal.String() {
		t.Errorf("mapping %s, want %s", got.Mapping.Temporal, ref.Mapping.Temporal)
	}
	if n := ch.phaseCount("anneal"); n != 1 {
		t.Errorf("anneal phase fired %d times, want 1", n)
	}
	if ch.annealed.Load() < 2 {
		t.Errorf("anneal progress fired %d times, want >= one per chain", ch.annealed.Load())
	}
}
