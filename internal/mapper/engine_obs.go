package mapper

// Telemetry observation sites for the evaluation pipeline. Everything here
// is dead when Options.Hooks is nil: the engine fields involved are only
// read or written behind a `hooks != nil` check, on atomics disjoint from
// the search state (bestBits is shared with the prune; the observation copy
// obsBestBits is separate so telemetry cannot influence prune decisions).

import (
	"math"
	"time"

	"repro/internal/obs"
)

// progressInterval is how many visited orderings separate two progress
// snapshots from the generator.
const progressInterval = 2048

// obsSnapshot assembles a progress snapshot. Called from the generator
// goroutine (st is generator-owned) or after the reduce (exact counters).
func (e *engine) obsSnapshot(st *Stats, walked int64, done bool) obs.SearchProgress {
	p := obs.SearchProgress{
		Walked:         walked,
		Generated:      int64(st.NestsGenerated),
		ClassesMerged:  int64(st.ClassesMerged),
		SubtreesPruned: int64(st.SubtreesPruned),
		Valid:          e.obsValid.Load(),
		Pruned:         e.obsPruned.Load(),
		BestCC:         math.Float64frombits(e.obsBestBits.Load()),
		Elapsed:        time.Since(e.start),
		Done:           done,
	}
	return p
}

// obsImproved lowers the observation best and fires ImprovedBest when the
// score actually improves it. Raced by workers; the CAS keeps the published
// sequence of improvements monotonically decreasing.
func (e *engine) obsImproved(score float64, seq int64) {
	bits := math.Float64bits(score)
	for {
		cur := e.obsBestBits.Load()
		if math.Float64frombits(cur) <= score {
			return
		}
		if e.obsBestBits.CompareAndSwap(cur, bits) {
			e.hooks.EmitImprovedBest(score, seq)
			return
		}
	}
}
