package mapper

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/workload"
)

// equivCase is one (layer, arch, options) search configuration used by the
// parallel-vs-serial equivalence tests.
type equivCase struct {
	name string
	l    workload.Layer
	a    *arch.Arch
	o    Options
}

func equivCases() []equivCase {
	cs := []equivCase{
		{
			name: "casestudy-matmul",
			l:    workload.NewMatMul("m", 32, 64, 64),
			a:    arch.CaseStudy(),
			o:    Options{Spatial: arch.CaseStudySpatial(), BWAware: true},
		},
		{
			name: "casestudy-awkward",
			l:    workload.NewMatMul("m", 24, 48, 96),
			a:    arch.CaseStudy(),
			o:    Options{Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 3000},
		},
		{
			name: "casestudy-bwunaware",
			l:    workload.NewMatMul("m", 16, 32, 32),
			a:    arch.CaseStudy(),
			o:    Options{Spatial: arch.CaseStudySpatial(), BWAware: false},
		},
		{
			name: "inhouse-minedp",
			l:    workload.NewMatMul("m", 16, 64, 64),
			a:    arch.InHouse(),
			o:    Options{Spatial: arch.InHouseSpatial(), BWAware: true, Objective: MinEDP, MaxCandidates: 2000},
		},
		{
			name: "tpulike-capped",
			l:    workload.NewMatMul("m", 64, 128, 128),
			a:    arch.TPULike(),
			o:    Options{Spatial: arch.TPULikeSpatial(), BWAware: true, MaxCandidates: 400},
		},
	}
	return cs
}

// TestParallelMatchesSerial is the engine's central contract: for any
// worker count, with and without pruning, Best returns a bit-identical
// score, the same mapping, and the same exact statistics as a serial run.
func TestParallelMatchesSerial(t *testing.T) {
	for _, tc := range equivCases() {
		t.Run(tc.name, func(t *testing.T) {
			ser := tc.o
			ser.Workers = 1
			ser.NoPrune = true // the reference: serial, exhaustive
			refCand, refStats, refErr := Best(context.Background(), &tc.l, tc.a, &ser)

			for _, cfg := range []struct {
				label    string
				workers  int
				noPrune  bool
				noReduce bool
			}{
				{"serial-pruned", 1, false, false},
				{"parallel-2", 2, false, false},
				{"parallel-4", 4, false, false},
				{"parallel-4-noprune", 4, true, false},
				// The symmetry reduction is exact, so disabling it must not
				// move the result either; its stats differ by construction
				// (it walks orderings, not classes), so skip those below.
				{"parallel-4-nosym", 4, false, true},
			} {
				o := tc.o
				o.Workers = cfg.workers
				o.NoPrune = cfg.noPrune
				o.NoReduce = cfg.noReduce
				cand, stats, err := Best(context.Background(), &tc.l, tc.a, &o)
				if (err == nil) != (refErr == nil) {
					t.Fatalf("%s: err = %v, reference err = %v", cfg.label, err, refErr)
				}
				if err != nil {
					continue
				}
				if cand.Result.CCTotal != refCand.Result.CCTotal {
					t.Errorf("%s: CCTotal = %v, want %v (bit-identical)",
						cfg.label, cand.Result.CCTotal, refCand.Result.CCTotal)
				}
				if cand.Score(tc.o.Objective) != refCand.Score(tc.o.Objective) {
					t.Errorf("%s: score = %v, want %v",
						cfg.label, cand.Score(tc.o.Objective), refCand.Score(tc.o.Objective))
				}
				if got, want := cand.Mapping.Temporal.String(), refCand.Mapping.Temporal.String(); got != want {
					t.Errorf("%s: mapping %s, want %s", cfg.label, got, want)
				}
				if cfg.noReduce {
					continue
				}
				if stats.NestsGenerated != refStats.NestsGenerated ||
					stats.Valid != refStats.Valid ||
					stats.Skipped != refStats.Skipped {
					t.Errorf("%s: stats {gen %d valid %d skip %d}, want {gen %d valid %d skip %d}",
						cfg.label, stats.NestsGenerated, stats.Valid, stats.Skipped,
						refStats.NestsGenerated, refStats.Valid, refStats.Skipped)
				}
			}
		})
	}
}

// TestEnumerateCanonicalOrder locks the fixed enumeration order: equal-score
// candidates are ordered by their temporal nest rendering, so the returned
// list is identical for any worker count — including the exact order, which
// sort.Slice alone (the old implementation) did not guarantee.
func TestEnumerateCanonicalOrder(t *testing.T) {
	l := workload.NewMatMul("m", 16, 32, 32)
	a := arch.CaseStudy()

	ser := Options{Spatial: arch.CaseStudySpatial(), BWAware: true, Workers: 1}
	ref, refStats, err := Enumerate(context.Background(), &l, a, &ser)
	if err != nil {
		t.Fatal(err)
	}
	// The space here has equal-score candidates; otherwise the order test
	// is vacuous.
	hasTie := false
	for i := 1; i < len(ref); i++ {
		if ref[i].Result.CCTotal == ref[i-1].Result.CCTotal {
			hasTie = true
			break
		}
	}
	if !hasTie {
		t.Fatal("test space has no score ties; pick a richer layer")
	}
	for i := 1; i < len(ref); i++ {
		prev, cur := ref[i-1], ref[i]
		if prev.Result.CCTotal > cur.Result.CCTotal {
			t.Fatal("not sorted by score")
		}
		if prev.Result.CCTotal == cur.Result.CCTotal &&
			prev.Mapping.Temporal.String() > cur.Mapping.Temporal.String() {
			t.Fatal("equal-score candidates not in canonical (lexicographic) order")
		}
	}

	for _, workers := range []int{1, 3, 4} {
		o := ser
		o.Workers = workers
		all, stats, err := Enumerate(context.Background(), &l, a, &o)
		if err != nil {
			t.Fatal(err)
		}
		if len(all) != len(ref) {
			t.Fatalf("workers=%d: %d candidates, want %d", workers, len(all), len(ref))
		}
		if *stats != *refStats {
			// Pruned is always 0 for Enumerate, so full struct equality.
			t.Errorf("workers=%d: stats %+v, want %+v", workers, stats, refStats)
		}
		for i := range all {
			if all[i].Result.CCTotal != ref[i].Result.CCTotal ||
				all[i].Mapping.Temporal.String() != ref[i].Mapping.Temporal.String() {
				t.Fatalf("workers=%d: candidate %d is %s (%v), want %s (%v)",
					workers, i,
					all[i].Mapping.Temporal, all[i].Result.CCTotal,
					ref[i].Mapping.Temporal, ref[i].Result.CCTotal)
			}
		}
	}
}

// TestPruneStatsExact checks that pruning never changes what the search
// counts or returns — only Stats.Pruned (trajectory-dependent) may differ —
// and that the prune actually fires on a serial run, where the best-so-far
// tightens exactly as it did in the old engine.
func TestPruneStatsExact(t *testing.T) {
	l := workload.NewMatMul("m", 32, 64, 64)
	a := arch.CaseStudy()

	pruned := Options{Spatial: arch.CaseStudySpatial(), BWAware: true, Workers: 1}
	full := pruned
	full.NoPrune = true

	cp, sp, err := Best(context.Background(), &l, a, &pruned)
	if err != nil {
		t.Fatal(err)
	}
	cf, sf, err := Best(context.Background(), &l, a, &full)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Result.CCTotal != cf.Result.CCTotal || cp.Mapping.Temporal.String() != cf.Mapping.Temporal.String() {
		t.Errorf("prune changed the result: %v/%s vs %v/%s",
			cp.Result.CCTotal, cp.Mapping.Temporal, cf.Result.CCTotal, cf.Mapping.Temporal)
	}
	if sp.NestsGenerated != sf.NestsGenerated || sp.Valid != sf.Valid || sp.Skipped != sf.Skipped {
		t.Errorf("prune changed exact stats: %+v vs %+v", sp, sf)
	}
	if sf.Pruned != 0 {
		t.Errorf("NoPrune run reports Pruned = %d", sf.Pruned)
	}
	if sp.Pruned == 0 {
		t.Error("prune never fired on a space where the bound is informative")
	}
	if sp.Pruned >= sp.Valid {
		t.Errorf("pruned %d of %d valid — bound fired on everything", sp.Pruned, sp.Valid)
	}
}

// TestMaxCandidatesCapParallel pins the cap semantics under concurrency:
// the WALK (orderings visited) stops exactly at the budget with the true
// remainder in Skipped, identically for any worker count; under NoReduce
// every walked ordering is also generated, so the old exact-cap behaviour
// is recovered.
func TestMaxCandidatesCapParallel(t *testing.T) {
	l := workload.NewMatMul("m", 32, 64, 64)
	a := arch.CaseStudy()
	for _, workers := range []int{1, 4} {
		for _, noReduce := range []bool{false, true} {
			o := Options{Spatial: arch.CaseStudySpatial(), BWAware: true,
				MaxCandidates: 40, Workers: workers, NoReduce: noReduce}
			_, stats, err := Best(context.Background(), &l, a, &o)
			if err != nil {
				t.Fatal(err)
			}
			if walked := stats.NestsGenerated + stats.ClassesMerged; walked != 40 {
				t.Errorf("workers=%d nosym=%v: walked %d, want exactly the budget 40",
					workers, noReduce, walked)
			}
			if noReduce && stats.NestsGenerated != 40 {
				t.Errorf("workers=%d: NoReduce generated %d, want 40", workers, stats.NestsGenerated)
			}
			if stats.Skipped == 0 {
				t.Errorf("workers=%d nosym=%v: cap hit but Skipped == 0", workers, noReduce)
			}
		}
	}
}

// TestLowerBoundAdmissible validates the branch-and-bound invariant the
// prune rests on, candidate by candidate: the bandwidth-unaware baseline
// score never exceeds the full model's CCTotal.
func TestLowerBoundAdmissible(t *testing.T) {
	l := workload.NewMatMul("m", 24, 48, 96)
	a := arch.CaseStudy()
	aware := Options{Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 2000, Workers: 1}
	unaware := aware
	unaware.BWAware = false

	full, _, err := Enumerate(context.Background(), &l, a, &aware)
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := Enumerate(context.Background(), &l, a, &unaware)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(base) {
		t.Fatalf("candidate sets differ: %d vs %d", len(full), len(base))
	}
	// Index the baseline by mapping: the two enumerations sort differently.
	baseCC := make(map[string]float64, len(base))
	for _, c := range base {
		baseCC[c.Mapping.Temporal.String()] = c.Result.CCTotal
	}
	for _, c := range full {
		lb, ok := baseCC[c.Mapping.Temporal.String()]
		if !ok {
			t.Fatalf("mapping %s missing from baseline enumeration", c.Mapping.Temporal)
		}
		if lb > c.Result.CCTotal {
			t.Fatalf("bound not admissible for %s: baseline %v > full %v",
				c.Mapping.Temporal, lb, c.Result.CCTotal)
		}
	}
}

// TestAnnealParallelRestartsMatchSerial pins the annealer's restart merge:
// forcing the restarts through the shared pool cannot change the result
// because each chain is independently seeded and the merge is by restart
// order.
func TestAnnealParallelRestartsMatchSerial(t *testing.T) {
	l := workload.NewMatMul("m", 32, 64, 64)
	a := arch.CaseStudy()
	opt := &AnnealOptions{
		Spatial:    arch.CaseStudySpatial(),
		BWAware:    true,
		Iterations: 300,
		Restarts:   4,
		Seed:       7,
	}
	c1, err := Anneal(context.Background(), &l, a, opt)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Anneal(context.Background(), &l, a, opt)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Result.CCTotal != c2.Result.CCTotal || c1.Mapping.Temporal.String() != c2.Mapping.Temporal.String() {
		t.Errorf("anneal not reproducible: %v/%s vs %v/%s",
			c1.Result.CCTotal, c1.Mapping.Temporal, c2.Result.CCTotal, c2.Mapping.Temporal)
	}
}

// TestBestWorkersValidation covers the degenerate worker counts.
func TestBestWorkersValidation(t *testing.T) {
	l := workload.NewMatMul("m", 16, 32, 32)
	a := arch.CaseStudy()
	var want string
	for i, workers := range []int{0, 1, 2, 16} {
		o := Options{Spatial: arch.CaseStudySpatial(), BWAware: true, Workers: workers}
		cand, _, err := Best(context.Background(), &l, a, &o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := fmt.Sprintf("%s@%v", cand.Mapping.Temporal, cand.Result.CCTotal)
		if i == 0 {
			want = got
		} else if got != want {
			t.Errorf("workers=%d: %s, want %s", workers, got, want)
		}
	}
}
