package mapper

// Harvesting the memo cache into surrogate training data. Every memoized
// search result is an exact (mapping features → CC_total) observation that
// cost a full branch-and-bound search to produce; refitting the surrogate on
// them adapts the guided ordering to whatever architectures and layer shapes
// THIS process actually searches, for free. The loop is intentionally
// one-way: Fit only ever changes the ORDER candidates are streamed in
// (DESIGN.md §12), so installing a refit model mid-run cannot change any
// result already cached or any result computed later.

import (
	"repro/internal/memo"
	"repro/internal/surrogate"
)

// HarvestSamples walks the process-wide memo cache and returns one surrogate
// training sample per memoized successful latency search: the winning
// mapping's feature vector paired with its exact CC_total. Energy-objective
// results are skipped (the surrogate predicts latency), as are "no valid
// mapping" outcomes and anneal results cached without statistics.
func HarvestSamples() []surrogate.Sample {
	var samples []surrogate.Sample
	memo.Default.Range(func(val any) bool {
		res, ok := val.(*searchResult)
		if !ok || res.cand == nil || res.a == nil || res.cand.Result == nil {
			return true
		}
		if res.cand.Result.CCTotal <= 0 {
			return true
		}
		var s surrogate.Sample
		surrogate.Features(&s.Features, &res.layer, res.a, res.cand.Mapping)
		s.CCTotal = res.cand.Result.CCTotal
		samples = append(samples, s)
		return true
	})
	return samples
}

// RefitSurrogate harvests the memo cache and, given enough samples to
// over-determine the fit, installs a freshly fit model as the process-wide
// surrogate. Returns the fit report and whether a model was installed.
// Safe to call at any time from any goroutine; a failed or skipped refit
// leaves the active model untouched.
func RefitSurrogate(lambda float64) (surrogate.FitInfo, bool) {
	samples := HarvestSamples()
	// Below ~2 samples per coefficient the ridge fit is dominated by the
	// regularizer and orders worse than the embedded prior.
	if len(samples) < 2*(surrogate.NumFeatures+1) {
		return surrogate.FitInfo{Samples: len(samples)}, false
	}
	m, info, err := surrogate.Fit(samples, lambda)
	if err != nil {
		return info, false
	}
	surrogate.SetActive(m)
	return info, true
}
