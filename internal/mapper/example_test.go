package mapper_test

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/mapper"
	"repro/internal/workload"
)

// ExampleBest searches the temporal-mapping space of a fully connected
// layer on the case-study accelerator.
func ExampleBest() {
	layer := workload.NewMatMul("fc", 64, 64, 64)
	hw := arch.CaseStudy()
	best, stats, err := mapper.Best(context.Background(), &layer, hw, &mapper.Options{
		Spatial: arch.CaseStudySpatial(),
		BWAware: true,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("orderings walked: %d, scored: %d, valid: %d\n",
		stats.NestsGenerated+stats.ClassesMerged, stats.NestsGenerated, stats.Valid)
	fmt.Printf("best compute cycles: %d (utilization %.0f%%)\n",
		best.Result.CCSpatial, 100*best.Result.SpatialUtilization)
	// Output:
	// orderings walked: 4362, scored: 223, valid: 223
	// best compute cycles: 1024 (utilization 100%)
}

// ExampleBestWithSpatial searches spatial unrollings jointly with the
// temporal mapping.
func ExampleBestWithSpatial() {
	layer := workload.NewMatMul("fc", 48, 48, 48)
	hw := arch.CaseStudy()
	best, spatial, _, err := mapper.BestWithSpatial(context.Background(), &layer, hw, &mapper.SpatialOptions{
		MaxSpatials: 6,
		Temporal:    mapper.Options{BWAware: true, MaxCandidates: 600},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("winning spatial unrolling: %s\n", spatial)
	fmt.Printf("scenario: %s\n", best.Result.Scenario)
	// Output:
	// winning spatial unrolling: [K 16 | B 4 | C 4]
	// scenario: scenario 1
}
