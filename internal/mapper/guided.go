package mapper

// Surrogate-guided best-first candidate ordering (DESIGN.md §12). The
// branch-and-bound prune in the workers is only as sharp as the best score
// found so far, and the canonical walk order has no reason to visit strong
// candidates early. The guided producer runs the EXACT same canonical walk —
// symmetry reduction, subtree pruning, cap accounting and every
// generation-side counter are untouched — but instead of streaming each
// surviving representative straight to the workers it collects them,
// predicts each one's latency with the cheap surrogate model
// (internal/surrogate), sorts best-predicted-first and streams the sorted
// slab. Each candidate carries its original walk sequence number, so the
// reducer's (score, seq) tie-break — and therefore the selected mapping —
// is bit-identical to the canonical order for any worker count. A perfectly
// wrong surrogate costs speed only: every streamed candidate is still
// validated and scored by the exact model.
//
// Two costs of the collect-sort barrier are paid back structurally: the
// prediction pass runs in parallel across the search's own worker budget
// (those lanes are blocked on an empty channel until streaming starts), and
// the boundary assignment it computes for the feature vector ships with each
// job, so the workers never repeat it — the guided order assigns bounds once
// per candidate, exactly like the canonical order.

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/mapping"
	"repro/internal/surrogate"
)

// guidedItem is one collected candidate: a slice into the collection slab
// plus the walk seq and the surrogate prediction that orders it. The
// candidate's boundary assignment lives at a fixed offset in the bounds slab
// (bok false: the greedy assignment failed and the nest can never validate).
type guidedItem struct {
	off, n int
	seq    int64
	pred   float64
	boff   int
	bok    bool
}

// predictChunk is how many items one grab of the prediction pass's shared
// cursor claims: large enough to amortize the atomic, small enough to
// balance uneven per-item costs across lanes.
const predictChunk = 256

// generateGuided wraps generate with the collect→predict→sort→stream pass.
// The consume callback receives nests from the collection slab, valid for
// the duration of the call, exactly like generate's emit contract.
func (e *engine) generateGuided(st *Stats, consume func(j job)) {
	model := surrogate.Active()
	var chains [loops.NumOperands][]*arch.Memory
	totalBL := 0
	for _, op := range loops.AllOperands {
		chains[op] = e.a.ChainMems(op)
		totalBL += len(chains[op])
	}

	// Pass 1 — the canonical walk, collecting the surviving representatives.
	// Nothing here depends on the surrogate; the counters in st are the same
	// ones the unguided generator would produce.
	var slab []loops.Loop
	var items []guidedItem
	e.generate(st, func(seq int64, nest loops.Nest) {
		items = append(items, guidedItem{off: len(slab), n: len(nest), seq: seq})
		slab = append(slab, nest...)
	})
	if e.aborted.Load() {
		return
	}

	// Pass 2 — boundary assignment + feature vector + prediction per item,
	// parallel over fixed-offset chunks. Every item's slot in the bounds slab
	// is i*totalBL, so the lanes write disjoint ranges and no order-dependent
	// state exists: the predictions are bit-identical for any lane count.
	// Candidates whose greedy bounds fail can never validate; they keep a
	// +Inf prediction and sort to the very end of the stream.
	bslab := make([]int, len(items)*totalBL)
	predict := func(cursor *atomic.Int64) {
		var m mapping.Mapping
		m.Spatial = e.o.Spatial
		var store [loops.NumOperands][]int
		var feats surrogate.Vec
		for {
			lo := int(cursor.Add(predictChunk)) - predictChunk
			if lo >= len(items) {
				return
			}
			if e.ctx.Err() != nil {
				e.aborted.Store(true)
				return
			}
			hi := lo + predictChunk
			if hi > len(items) {
				hi = len(items)
			}
			for i := lo; i < hi; i++ {
				it := &items[i]
				it.pred = math.Inf(1)
				it.boff = i * totalBL
				m.Temporal = loops.Nest(slab[it.off : it.off+it.n])
				if assignBoundsIn(&m, e.l, &chains, &store) {
					surrogate.Features(&feats, e.l, e.a, &m)
					it.pred = model.Predict(&feats)
					it.bok = true
					off := it.boff
					for _, op := range loops.AllOperands {
						off += copy(bslab[off:], store[op])
					}
				}
			}
		}
	}
	var cursor atomic.Int64
	if lanes := e.nworkers; lanes > 1 {
		var wg sync.WaitGroup
		for k := 1; k < lanes; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				predict(&cursor)
			}()
		}
		predict(&cursor)
		wg.Wait()
	} else {
		predict(&cursor)
	}
	if e.aborted.Load() {
		return
	}

	// Best-predicted-first; prediction ties fall back to the walk order, so
	// a constant (or disabled) model degenerates to the canonical stream.
	sort.Slice(items, func(i, j int) bool {
		if items[i].pred != items[j].pred {
			return items[i].pred < items[j].pred
		}
		return items[i].seq < items[j].seq
	})

	// The walk appended items in strictly increasing seq, so position i held
	// the i-th smallest seq: any item whose sorted position no longer
	// matches that rank was moved by the surrogate.
	seqs := make([]int64, len(items))
	for i := range items {
		seqs[i] = items[i].seq
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for i := range items {
		if items[i].seq != seqs[i] {
			st.SurrogateReorders++
		}
	}

	for i := range items {
		if e.ctx.Err() != nil {
			e.aborted.Store(true)
			return
		}
		it := &items[i]
		j := job{seq: it.seq, pred: it.pred, nest: loops.Nest(slab[it.off : it.off+it.n]), bstate: boundsFailed}
		if it.bok {
			j.bstate = boundsReady
			off := it.boff
			for _, op := range loops.AllOperands {
				n := len(chains[op])
				j.bnd[op] = bslab[off : off+n : off+n]
				off += n
			}
		}
		consume(j)
	}
}
