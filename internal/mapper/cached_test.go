package mapper

import (
	"context"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/memo"
	"repro/internal/workload"
)

// sameCandidate asserts exact (bitwise) equality of the fields callers
// consume: the temporal nest, the full-model total and the energy.
func sameCandidate(t *testing.T, tag string, got, want *Candidate) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil candidate (got=%v want=%v)", tag, got != nil, want != nil)
	}
	if got.Mapping.Temporal.String() != want.Mapping.Temporal.String() {
		t.Fatalf("%s: temporal %s != %s", tag, got.Mapping.Temporal, want.Mapping.Temporal)
	}
	if got.Result.CCTotal != want.Result.CCTotal || got.Result.SSOverall != want.Result.SSOverall ||
		got.Result.Preload != want.Result.Preload || got.Result.Offload != want.Result.Offload {
		t.Fatalf("%s: result differs: CCTotal %v != %v", tag, got.Result.CCTotal, want.Result.CCTotal)
	}
	if got.EnergyPJ != want.EnergyPJ {
		t.Fatalf("%s: energy %v != %v", tag, got.EnergyPJ, want.EnergyPJ)
	}
}

// TestBestCachedIdentity: BestCached must return bit-identical results to
// Best — on the miss, on the memory hit, and under a renamed (same-shape)
// layer — and hit the cache for the repeats.
func TestBestCachedIdentity(t *testing.T) {
	memo.Default.Reset()
	l := workload.NewMatMul("m", 16, 32, 32)
	a := arch.CaseStudy()

	want, wantStats, err := Best(context.Background(), &l, a, opts())
	if err != nil {
		t.Fatal(err)
	}

	h0 := memo.Default.Counters().Hits()
	c1, s1, err := BestCached(context.Background(), &l, a, opts())
	if err != nil {
		t.Fatal(err)
	}
	sameCandidate(t, "miss", c1, want)
	if *s1 != *wantStats {
		t.Fatalf("stats differ: %+v != %+v", *s1, *wantStats)
	}

	c2, s2, err := BestCached(context.Background(), &l, a, opts())
	if err != nil {
		t.Fatal(err)
	}
	sameCandidate(t, "hit", c2, want)
	if c2 != c1 {
		t.Fatal("memory hit did not return the shared candidate")
	}
	if s2 == s1 {
		t.Fatal("stats must be per-call copies")
	}

	// A renamed layer of the same shape must hit the same entry.
	renamed := workload.NewMatMul("other-name", 16, 32, 32)
	c3, _, err := BestCached(context.Background(), &renamed, a, opts())
	if err != nil {
		t.Fatal(err)
	}
	if c3 != c1 {
		t.Fatal("same-shape layer missed the cache")
	}
	if memo.Default.Counters().Hits()-h0 < 2 {
		t.Fatalf("expected >=2 hits, counters: %s", memo.Default.Counters())
	}

	// Changed options must NOT share the entry.
	o2 := opts()
	o2.Pow2Splits = true
	c4, _, err := BestCached(context.Background(), &l, a, o2)
	if err != nil {
		t.Fatal(err)
	}
	if c4 == c1 {
		t.Fatal("different options shared a cache entry")
	}
}

// TestBestCachedWorkersExcluded: Workers and NoPrune steer scheduling, not
// the result, and are excluded from the key.
func TestBestCachedWorkersExcluded(t *testing.T) {
	memo.Default.Reset()
	l := workload.NewMatMul("m", 16, 32, 32)
	a := arch.CaseStudy()
	o1 := opts()
	o1.Workers = 1
	o2 := opts()
	o2.Workers = 4
	o2.NoPrune = true
	c1, _, err := BestCached(context.Background(), &l, a, o1)
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := BestCached(context.Background(), &l, a, o2)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("Workers/NoPrune changed the cache key")
	}
}

// TestBestCachedConcurrent: hammer one key from many goroutines (run with
// -race); every caller must see the one shared candidate.
func TestBestCachedConcurrent(t *testing.T) {
	memo.Default.Reset()
	l := workload.NewMatMul("m", 16, 32, 32)
	a := arch.CaseStudy()

	const goroutines = 8
	cands := make([]*Candidate, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, _, err := BestCached(context.Background(), &l, a, opts())
			if err != nil {
				t.Error(err)
				return
			}
			cands[i] = c
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if cands[i] != cands[0] {
			t.Fatalf("goroutine %d got a different candidate", i)
		}
	}
	cnt := memo.Default.Counters()
	if cnt.Misses() < 1 {
		t.Fatalf("no miss recorded: %s", cnt)
	}
}

// TestBestCachedNoValidMapping: the no-valid-mapping outcome is cached and
// re-reported (with stats) on every call.
func TestBestCachedNoValidMapping(t *testing.T) {
	memo.Default.Reset()
	a := arch.CaseStudy()
	a.MemoryByName("W-Reg").CapacityBits = 8
	l := workload.NewMatMul("m", 16, 32, 32)
	for i := 0; i < 2; i++ {
		c, st, err := BestCached(context.Background(), &l, a, opts())
		if err == nil || c != nil {
			t.Fatal("expected no-valid-mapping error")
		}
		if st == nil || st.NestsGenerated == 0 {
			t.Fatalf("round %d: missing stats alongside the error", i)
		}
	}
}

// TestDiskCacheWarmStart: a fresh in-memory cache warmed from disk must
// reproduce the original result bit for bit; a version/arch change must
// degrade to a miss, not a wrong hit.
func TestDiskCacheWarmStart(t *testing.T) {
	memo.Default.Reset()
	defer DisableDiskCache()
	dir := t.TempDir()
	if _, err := EnableDiskCache(dir); err != nil {
		t.Fatal(err)
	}

	l := workload.NewMatMul("m", 16, 32, 32)
	a := arch.CaseStudy()
	want, wantStats, err := BestCached(context.Background(), &l, a, opts()) // populates disk
	if err != nil {
		t.Fatal(err)
	}

	memo.Default.Reset() // cold memory, warm disk
	d0 := memo.Default.Counters().DiskHits()
	got, gotStats, err := BestCached(context.Background(), &l, a, opts())
	if err != nil {
		t.Fatal(err)
	}
	sameCandidate(t, "disk", got, want)
	if *gotStats != *wantStats {
		t.Fatalf("disk stats differ: %+v != %+v", *gotStats, *wantStats)
	}
	if memo.Default.Counters().DiskHits() != d0+1 {
		t.Fatalf("disk hit not counted: %s", memo.Default.Counters())
	}

	// A different arch must not be served by the stored file (Reset keeps
	// counters, so compare against the running baseline).
	memo.Default.Reset()
	d1 := memo.Default.Counters().DiskHits()
	a2 := a.Clone()
	a2.MemoryByName("GB").Ports[0].BWBits *= 2
	if _, _, err := BestCached(context.Background(), &l, a2, opts()); err != nil {
		t.Fatal(err)
	}
	if memo.Default.Counters().DiskHits() != d1 {
		t.Fatal("changed arch served from disk")
	}
}

// TestAnnealCachedIdentity: AnnealCached equals Anneal exactly and hits on
// repeats.
func TestAnnealCachedIdentity(t *testing.T) {
	memo.Default.Reset()
	l := workload.NewMatMul("m", 16, 32, 32)
	a := arch.CaseStudy()
	ao := &AnnealOptions{Spatial: arch.CaseStudySpatial(), BWAware: true, Iterations: 200, Restarts: 2, Seed: 7}

	want, err := Anneal(context.Background(), &l, a, ao)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := AnnealCached(context.Background(), &l, a, ao)
	if err != nil {
		t.Fatal(err)
	}
	sameCandidate(t, "anneal miss", c1, want)
	c2, err := AnnealCached(context.Background(), &l, a, ao)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c1 {
		t.Fatal("anneal repeat missed the cache")
	}

	// A different seed is a different key.
	ao2 := *ao
	ao2.Seed = 8
	c3, err := AnnealCached(context.Background(), &l, a, &ao2)
	if err != nil {
		t.Fatal(err)
	}
	if c3 == c1 {
		t.Fatal("different seed shared a cache entry")
	}
}
