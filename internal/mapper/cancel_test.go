package mapper

// Cancellation-correctness tests for the search engine (PR 4): a canceled
// search returns ctx.Err() promptly, leaks no goroutines, and never plants a
// partial result in the memo cache or the on-disk store.

import (
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/memo"
	"repro/internal/workload"
)

// waitGoroutines polls until the process is back to at most want goroutines,
// dumping stacks on timeout — the leak detector for the engine's workers.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines did not drain: %d > %d\n%s", runtime.NumGoroutine(), want, buf[:n])
}

// TestBestPreCanceled: an already-canceled context never starts the search.
func TestBestPreCanceled(t *testing.T) {
	l := workload.NewMatMul("pre", 64, 64, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Best(ctx, &l, arch.InHouse(), &Options{Spatial: arch.InHouseSpatial()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Best returned %v, want context.Canceled", err)
	}
}

// TestAnnealPreCanceled: same contract for the annealer.
func TestAnnealPreCanceled(t *testing.T) {
	l := workload.NewMatMul("pre", 64, 64, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Anneal(ctx, &l, arch.InHouse(), &AnnealOptions{Spatial: arch.InHouseSpatial()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Anneal returned %v, want context.Canceled", err)
	}
}

// TestCancelMidFlight: canceling a large in-flight search stops the
// generator and the workers cooperatively — the search returns
// context.Canceled well before its walk could have finished, and the
// worker goroutines drain (no leak). Enumerate shares runSearch with Best
// but never bound-prunes subtrees, so its NoReduce walk over a
// divisor-rich layer (720 = 2^4 * 3^2 * 5) is deterministically millions
// of orderings long — far beyond what could complete before the cancel
// below fires.
func TestCancelMidFlight(t *testing.T) {
	l := workload.NewMatMul("midflight", 720, 720, 720)
	opt := &Options{
		Spatial:       arch.InHouseSpatial(),
		MaxCandidates: 50_000_000,
		NoReduce:      true,
		NoPrune:       true,
		Workers:       4,
	}
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, _, err := Enumerate(ctx, &l, arch.InHouse(), opt)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled Enumerate returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled search did not return within 10s")
	}
	waitGoroutines(t, baseline+2)
}

// TestCachedCancelNoPollution: a canceled BestCached leaves neither a memo
// entry nor a disk blob behind; the next caller recomputes cleanly and gets
// the bit-identical uncached answer.
func TestCachedCancelNoPollution(t *testing.T) {
	dir := t.TempDir()
	if _, err := EnableDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	defer DisableDiskCache()
	memo.Default.Reset()

	l := workload.NewMatMul("pollution", 64, 64, 64)
	hw := arch.InHouse()
	opt := &Options{Spatial: arch.InHouseSpatial(), MaxCandidates: 2000}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := BestCached(ctx, &l, hw, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled BestCached returned %v, want context.Canceled", err)
	}
	if n := memo.Default.Len(); n != 0 {
		t.Fatalf("canceled search left %d memo entries", n)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*.memo")); len(files) != 0 {
		t.Fatalf("canceled search wrote disk blobs: %v", files)
	}

	cand, _, err := BestCached(context.Background(), &l, hw, opt)
	if err != nil {
		t.Fatalf("post-cancel BestCached failed: %v", err)
	}
	if n := memo.Default.Len(); n != 1 {
		t.Fatalf("successful search cached %d entries, want 1", n)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*.memo")); len(files) != 1 {
		t.Fatalf("successful search wrote %d disk blobs, want 1", len(files))
	}

	direct, _, err := Best(context.Background(), &l, hw, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cand.Result.CCTotal != direct.Result.CCTotal ||
		cand.Mapping.Temporal.String() != direct.Mapping.Temporal.String() {
		t.Fatalf("cached-after-cancel result diverged: %v/%v vs %v/%v",
			cand.Result.CCTotal, cand.Mapping.Temporal,
			direct.Result.CCTotal, direct.Mapping.Temporal)
	}
}
