package mapper

import (
	"context"
	"math"
	"testing"

	"repro/internal/surrogate"
)

// TestGuidedMatchesUnguided is the guided search's correctness contract
// (DESIGN.md §12): for every configuration and worker count, the
// surrogate-guided search returns a byte-identical winner — same score bits,
// same temporal nest — and identical walk-invariant statistics as the
// canonical-order search. Only Pruned and its guided mirrors may move. Run
// under -race this also exercises the reordered stream against the worker
// pool.
func TestGuidedMatchesUnguided(t *testing.T) {
	for _, tc := range equivCases() {
		t.Run(tc.name, func(t *testing.T) {
			off := tc.o
			off.NoSurrogate = true
			off.Workers = 1
			refCand, refStats, refErr := Best(context.Background(), &tc.l, tc.a, &off)

			for _, workers := range []int{1, 3, 8} {
				on := tc.o
				on.Workers = workers
				cand, stats, err := Best(context.Background(), &tc.l, tc.a, &on)
				if (err == nil) != (refErr == nil) {
					t.Fatalf("workers=%d: err = %v, unguided err = %v", workers, err, refErr)
				}
				if err != nil {
					continue
				}
				got := math.Float64bits(cand.Score(tc.o.Objective))
				want := math.Float64bits(refCand.Score(tc.o.Objective))
				if got != want {
					t.Errorf("workers=%d: score bits %x, want %x (guided %v vs unguided %v)",
						workers, got, want, cand.Score(tc.o.Objective), refCand.Score(tc.o.Objective))
				}
				if g, w := cand.Mapping.Temporal.String(), refCand.Mapping.Temporal.String(); g != w {
					t.Errorf("workers=%d: mapping %s, want %s", workers, g, w)
				}
				// The walk-invariant counters must be untouched by the
				// reordering; SurrogateReorders is deterministic but
				// legitimately differs between guided and unguided runs
				// (unguided reports 0), so it is zeroed alongside the
				// trajectory-dependent fields.
				gotStats, wantStats := *stats, *refStats
				gotStats.Pruned, wantStats.Pruned = 0, 0
				gotStats.SurrogateReorders, wantStats.SurrogateReorders = 0, 0
				gotStats.SurrogatePruned, wantStats.SurrogatePruned = 0, 0
				gotStats.SurrogateRankCorr, wantStats.SurrogateRankCorr = 0, 0
				if gotStats != wantStats {
					t.Errorf("workers=%d: stats %+v, want %+v", workers, gotStats, wantStats)
				}
			}
		})
	}
}

// TestGuidedIgnoresModelChoice: swapping the active surrogate — even for an
// adversarial inverted model — changes no result, only the prune counters.
// This is the "a wrong prediction can only cost speed" half of the contract.
func TestGuidedIgnoresModelChoice(t *testing.T) {
	tc := equivCases()[0]
	ref, refStats, err := Best(context.Background(), &tc.l, tc.a, &tc.o)
	if err != nil {
		t.Fatal(err)
	}

	// Invert the default model: the guided order now streams the
	// WORST-predicted candidates first.
	inv := surrogate.Default()
	for i := range inv.W {
		inv.W[i] = -inv.W[i]
	}
	inv.B = -inv.B
	surrogate.SetActive(inv)
	defer surrogate.SetActive(nil)

	cand, stats, err := Best(context.Background(), &tc.l, tc.a, &tc.o)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(cand.Score(tc.o.Objective)) != math.Float64bits(ref.Score(tc.o.Objective)) {
		t.Errorf("inverted surrogate changed the score: %v vs %v",
			cand.Score(tc.o.Objective), ref.Score(tc.o.Objective))
	}
	if g, w := cand.Mapping.Temporal.String(), ref.Mapping.Temporal.String(); g != w {
		t.Errorf("inverted surrogate changed the mapping: %s vs %s", g, w)
	}
	if stats.Valid != refStats.Valid || stats.NestsGenerated != refStats.NestsGenerated {
		t.Errorf("inverted surrogate changed invariant counters: %+v vs %+v", stats, refStats)
	}
	// The inverted order should prune no better than the learned one
	// (usually far worse); what matters here is that it pruned at most the
	// whole stream and the search still completed.
	if stats.Pruned < 0 || stats.Pruned > stats.Valid {
		t.Errorf("inverted surrogate produced impossible prune count %d of %d valid", stats.Pruned, stats.Valid)
	}
}

// TestHarvestAndRefit drives the full learning loop: memoized searches →
// HarvestSamples → RefitSurrogate. With fewer samples than the refit
// threshold the active model must stay untouched.
func TestHarvestAndRefit(t *testing.T) {
	defer surrogate.SetActive(nil)
	for _, tc := range equivCases() {
		o := tc.o
		if _, _, err := BestCached(context.Background(), &tc.l, tc.a, &o); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
	}
	samples := HarvestSamples()
	if len(samples) == 0 {
		t.Fatal("no samples harvested from a cache holding successful searches")
	}
	for _, s := range samples {
		if s.CCTotal <= 0 || math.IsNaN(s.CCTotal) {
			t.Fatalf("harvested sample with bad target %v", s.CCTotal)
		}
	}
	// A handful of searches is below the 2*(NumFeatures+1) threshold: the
	// refit must decline rather than install an under-determined model.
	if info, ok := RefitSurrogate(0); ok {
		t.Errorf("refit installed a model from only %d samples", info.Samples)
	}
}
