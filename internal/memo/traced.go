package memo

import (
	"context"
	"time"

	"repro/internal/otrace"
)

// traced decorates a Store with otrace spans and the tier-stats registry.
// It is pure observation: results pass through untouched, so wrapping can
// never change what a search returns.
type traced struct {
	inner Store
	tier  string // short kind for spans/metrics (mem/disk/remote/tiered)
}

// WithTrace wraps s so every Get/Put records a span (when the context
// carries a trace) and a tier-stats observation (always). Idempotent: a
// store that is already traced comes back unchanged, so compositions like
// WithTrace(Tiered(WithTrace(a), WithTrace(b))) never double-count a tier.
// nil passes through.
func WithTrace(s Store) Store {
	if s == nil {
		return nil
	}
	if _, ok := s.(*traced); ok {
		return s
	}
	return &traced{inner: s, tier: tierKind(s.Name())}
}

// Name implements Store (transparent: callers see the inner tier).
func (t *traced) Name() string { return t.inner.Name() }

// errCounter lets the wrapper spot transport failures on stores that count
// them (Remote). The delta across a call is best-effort under concurrency —
// an error can land in a sibling call's bucket — but totals stay exact and
// the store contract (errors read as misses) is unaffected.
type errCounter interface{ Errs() int64 }

// Get implements Store.
func (t *traced) Get(ctx context.Context, k Key) ([]byte, bool) {
	var errs0 int64
	ec, hasErrs := t.inner.(errCounter)
	if hasErrs {
		errs0 = ec.Errs()
	}
	start := time.Now()
	blob, ok := t.inner.Get(ctx, k)
	dur := time.Since(start)
	outcome := OutcomeMiss
	if ok {
		outcome = OutcomeHit
	} else if hasErrs && ec.Errs() > errs0 {
		outcome = OutcomeError
	}
	observeStore(t.tier, "get", outcome, dur)
	otrace.RecordSpan(ctx, "memo.get", otrace.CatMemo, t.tier, start, dur,
		otrace.Attr{K: "tier", V: t.tier}, otrace.Attr{K: "outcome", V: outcome})
	return blob, ok
}

// Put implements Store.
func (t *traced) Put(ctx context.Context, k Key, blob []byte) {
	var errs0 int64
	ec, hasErrs := t.inner.(errCounter)
	if hasErrs {
		errs0 = ec.Errs()
	}
	start := time.Now()
	t.inner.Put(ctx, k, blob)
	dur := time.Since(start)
	outcome := OutcomeWrite
	if hasErrs && ec.Errs() > errs0 {
		outcome = OutcomeError
	}
	observeStore(t.tier, "put", outcome, dur)
	otrace.RecordSpan(ctx, "memo.put", otrace.CatMemo, t.tier, start, dur,
		otrace.Attr{K: "tier", V: t.tier}, otrace.Attr{K: "outcome", V: outcome})
}
