package memo_test

// Store conformance suite, run against every tier: the bounded in-process
// store, the gob disk tier, the HTTP remote tier (served end-to-end by a
// real internal/serve server) and the tiered composition. The contract under
// test is Store's: best-effort get/put where a failure is a miss, never a
// wrong value — in particular a key whose hash collides with a stored entry
// but whose canonical encoding differs must read as a miss, not as the other
// key's blob.
//
// This file is an external test package so it can stand up the serving side
// (internal/serve imports memo; an in-package test would be an import cycle).

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/memo"
	"repro/internal/serve"
)

// conformance exercises one Store implementation.
func conformance(t *testing.T, s memo.Store) {
	t.Helper()
	if s.Name() == "" {
		t.Error("store has no name")
	}

	k1 := memo.KeyOf([]byte("conformance/key/1"))
	k2 := memo.KeyOf([]byte("conformance/key/2"))
	if _, ok := s.Get(sctx, k1); ok {
		t.Fatal("Get on an empty store hit")
	}

	blob1 := []byte("payload-one")
	blob2 := []byte("payload-two-longer")
	s.Put(sctx, k1, blob1)
	got, ok := s.Get(sctx, k1)
	if !ok || !bytes.Equal(got, blob1) {
		t.Fatalf("roundtrip: got (%q, %v), want (%q, true)", got, ok, blob1)
	}
	if _, ok := s.Get(sctx, k2); ok {
		t.Fatal("Get of a never-put key hit")
	}

	// Overwrite wins.
	s.Put(sctx, k1, blob2)
	if got, ok := s.Get(sctx, k1); !ok || !bytes.Equal(got, blob2) {
		t.Fatalf("overwrite: got (%q, %v), want (%q, true)", got, ok, blob2)
	}

	// Collision check: same hash, different canonical encoding must never
	// read the other key's blob. (The disk tier addresses files by hash
	// alone and must verify the stored encoding; the remote tier re-derives
	// the key from the encoding server-side.)
	collider := memo.Key{Hash: k1.Hash, Enc: "conformance/colliding-enc"}
	if got, ok := s.Get(sctx, collider); ok && bytes.Equal(got, blob2) {
		t.Fatal("hash collision returned the other key's blob")
	}

	// Mutating a returned blob must not corrupt the store (Mem shares an
	// internal map; it must copy on Put — callers may scribble on results).
	if got, ok := s.Get(sctx, k1); ok && len(got) > 0 {
		got[0] ^= 0xff
		again, ok := s.Get(sctx, k1)
		if !ok || !bytes.Equal(again, blob2) {
			t.Fatal("mutating a returned blob corrupted the store")
		}
	}

	// Concurrent distinct-key traffic (meaningful under -race).
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := memo.KeyOf([]byte(fmt.Sprintf("conformance/concurrent/%d", i)))
			want := []byte(fmt.Sprintf("blob-%d", i))
			s.Put(sctx, k, want)
			if got, ok := s.Get(sctx, k); ok && !bytes.Equal(got, want) {
				t.Errorf("concurrent key %d: wrong blob", i)
			}
		}(i)
	}
	wg.Wait()
}

func TestStoreConformanceMem(t *testing.T) {
	conformance(t, memo.NewMem(0))
}

func TestStoreConformanceDisk(t *testing.T) {
	d, err := memo.OpenDisk(t.TempDir(), 7)
	if err != nil {
		t.Fatal(err)
	}
	conformance(t, d)
}

// remotePair stands up a real serve server backed by an in-process store and
// returns a Remote client speaking to it with the given client version.
func remotePair(t *testing.T, serverVersion, clientVersion int) (*memo.Remote, memo.Store) {
	t.Helper()
	backing := memo.NewMem(0)
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	s := serve.New(serve.Config{MemoStore: backing, MemoVersion: serverVersion, Logger: quiet})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return memo.NewRemote(ts.URL, clientVersion, nil), backing
}

func TestStoreConformanceRemote(t *testing.T) {
	r, _ := remotePair(t, 7, 7)
	conformance(t, r)
	if r.Errs() != 0 {
		t.Errorf("conformance traffic produced %d transport errors", r.Errs())
	}
}

func TestStoreConformanceTiered(t *testing.T) {
	r, _ := remotePair(t, 7, 7)
	conformance(t, memo.Tiered(memo.NewMem(0), r))
}

// TestRemoteVersionMismatch: a client on a different payload version reads
// the server as a pure miss and its writes are dropped — never an error on
// the search path, never a cross-version value.
func TestRemoteVersionMismatch(t *testing.T) {
	r, backing := remotePair(t, 7, 8)
	k := memo.KeyOf([]byte("versioned-key"))
	backing.Put(sctx, k, []byte("v7-blob"))
	if _, ok := r.Get(sctx, k); ok {
		t.Fatal("version-mismatched Get hit")
	}
	r.Put(sctx, k, []byte("v8-blob"))
	if got, _ := backing.Get(sctx, k); !bytes.Equal(got, []byte("v7-blob")) {
		t.Fatalf("version-mismatched Put overwrote the store: %q", got)
	}
}

// TestRemoteDeadPeer: an unreachable peer degrades to misses and dropped
// writes, with the failures visible on the Errs counter.
func TestRemoteDeadPeer(t *testing.T) {
	ts := httptest.NewServer(nil)
	ts.Close() // now guaranteed-dead address
	r := memo.NewRemote(ts.URL, 7, nil)
	k := memo.KeyOf([]byte("dead-peer-key"))
	if _, ok := r.Get(sctx, k); ok {
		t.Fatal("Get against a dead peer hit")
	}
	r.Put(sctx, k, []byte("blob"))
	if r.Errs() == 0 {
		t.Error("dead-peer traffic recorded no errors")
	}
}

// TestTieredBackfill: a hit in a later tier is written back to earlier tiers,
// and writes go through to every tier.
func TestTieredBackfill(t *testing.T) {
	front, back := memo.NewMem(0), memo.NewMem(0)
	tiered := memo.Tiered(front, back)

	k := memo.KeyOf([]byte("backfill-key"))
	back.Put(sctx, k, []byte("warm"))
	if got, ok := tiered.Get(sctx, k); !ok || !bytes.Equal(got, []byte("warm")) {
		t.Fatalf("tiered Get: (%q, %v)", got, ok)
	}
	if got, ok := front.Get(sctx, k); !ok || !bytes.Equal(got, []byte("warm")) {
		t.Fatalf("backfill did not reach the front tier: (%q, %v)", got, ok)
	}

	k2 := memo.KeyOf([]byte("write-through-key"))
	tiered.Put(sctx, k2, []byte("fresh"))
	for i, tier := range []memo.Store{front, back} {
		if got, ok := tier.Get(sctx, k2); !ok || !bytes.Equal(got, []byte("fresh")) {
			t.Fatalf("write-through missed tier %d: (%q, %v)", i, got, ok)
		}
	}
}

// TestMemBounded: the in-process tier honors its entry bound by evicting,
// and every surviving entry still maps to its own blob.
func TestMemBounded(t *testing.T) {
	m := memo.NewMem(4)
	for i := 0; i < 32; i++ {
		m.Put(sctx, memo.KeyOf([]byte(fmt.Sprintf("bounded/%d", i))), []byte(fmt.Sprintf("blob-%d", i)))
	}
	if n := m.Len(); n > 4 {
		t.Fatalf("Len() = %d, want <= 4", n)
	}
	hits := 0
	for i := 0; i < 32; i++ {
		if got, ok := m.Get(sctx, memo.KeyOf([]byte(fmt.Sprintf("bounded/%d", i)))); ok {
			hits++
			if !bytes.Equal(got, []byte(fmt.Sprintf("blob-%d", i))) {
				t.Fatalf("entry %d survived eviction with the wrong blob", i)
			}
		}
	}
	if hits == 0 || hits > 4 {
		t.Fatalf("%d entries survived, want 1..4", hits)
	}
}

// sctx is the shared background context the conformance suite threads into
// every Store call (the context must never affect results).
var sctx = context.Background()
