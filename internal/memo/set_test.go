package memo

import (
	"fmt"
	"testing"
)

func TestSetInsert(t *testing.T) {
	var s Set
	if !s.Insert([]byte("a")) {
		t.Fatal("first insert of \"a\" reported duplicate")
	}
	if s.Insert([]byte("a")) {
		t.Fatal("second insert of \"a\" reported new")
	}
	if !s.Insert([]byte("b")) {
		t.Fatal("insert of \"b\" reported duplicate")
	}
	if !s.Insert([]byte{}) {
		t.Fatal("insert of empty key reported duplicate")
	}
	if s.Insert(nil) {
		t.Fatal("nil and empty key must be the same element")
	}
	if got := s.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
}

// TestSetManyKeys drives enough keys through the set to exercise hash-bucket
// chains, and verifies exact membership semantics throughout.
func TestSetManyKeys(t *testing.T) {
	var s Set
	const n = 5000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if !s.Insert(k) {
			t.Fatalf("fresh key %q reported duplicate", k)
		}
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if s.Insert(k) {
			t.Fatalf("repeated key %q reported new", k)
		}
	}
	if got := s.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
}

// TestSetCollisionSafety plants two distinct keys in the same bucket by
// construction (the bucket map is keyed by the 64-bit hash; a chain scan
// must still tell the keys apart). We cannot cheaply forge an FNV collision,
// so instead verify that near-identical long keys — the adversarial case for
// a lazy prefix compare — are kept distinct.
func TestSetCollisionSafety(t *testing.T) {
	var s Set
	a := make([]byte, 1024)
	b := make([]byte, 1024)
	b[1023] = 1
	if !s.Insert(a) || !s.Insert(b) {
		t.Fatal("distinct keys reported duplicate")
	}
	if s.Insert(a) || s.Insert(b) {
		t.Fatal("known keys reported new")
	}
}

func BenchmarkSetInsertHit(b *testing.B) {
	var s Set
	key := []byte("some-representative-signature-of-realistic-length----")
	s.Insert(key)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Insert(key) {
			b.Fatal("hit reported new")
		}
	}
}
