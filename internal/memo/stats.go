package memo

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Per-tier store telemetry: WithTrace feeds a process-global registry of
// get/put outcome counters and duration histograms, which internal/serve
// renders as the servemodel_memo_store_* metric families. A registry (vs
// per-store fields) keeps the Store interface clean and lets any
// composition of wrapped tiers share one export path.

// StatsBuckets are the histogram upper bounds in seconds. Memo tiers span
// ~1 µs (mem hit) to seconds (dead remote peer timing out), so the ladder
// is log-spaced across that range.
var StatsBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10,
}

// Store operation outcomes recorded by WithTrace.
const (
	OutcomeHit   = "hit"
	OutcomeMiss  = "miss"
	OutcomeWrite = "write"
	OutcomeError = "error"
)

// opStats accumulates one (tier, op) cell.
type opStats struct {
	outcomes map[string]uint64
	buckets  []uint64 // per-bucket (non-cumulative) counts, +Inf implicit
	sum      float64
	count    uint64
}

type statsKey struct {
	tier, op string
}

var (
	statsMu  sync.Mutex
	statsMap = map[statsKey]*opStats{}
)

// observeStore records one store operation.
func observeStore(tier, op, outcome string, d time.Duration) {
	sec := d.Seconds()
	statsMu.Lock()
	defer statsMu.Unlock()
	k := statsKey{tier: tier, op: op}
	st := statsMap[k]
	if st == nil {
		st = &opStats{
			outcomes: make(map[string]uint64),
			buckets:  make([]uint64, len(StatsBuckets)),
		}
		statsMap[k] = st
	}
	st.outcomes[outcome]++
	st.sum += sec
	st.count++
	for i, ub := range StatsBuckets {
		if sec <= ub {
			st.buckets[i]++
			break
		}
	}
}

// TierSnapshot is one (tier, op) cell of the registry.
type TierSnapshot struct {
	Tier     string            // short tier kind: mem, disk, remote, tiered
	Op       string            // get or put
	Outcomes map[string]uint64 // hit/miss/write/error counts
	Buckets  []uint64          // cumulative counts aligned with StatsBuckets
	Sum      float64           // total seconds
	Count    uint64
}

// TierSnapshots returns the registry sorted by (tier, op) — a stable order
// the Prometheus renderer can emit directly. Buckets come back cumulative
// (histogram `le` convention).
func TierSnapshots() []TierSnapshot {
	statsMu.Lock()
	defer statsMu.Unlock()
	out := make([]TierSnapshot, 0, len(statsMap))
	for k, st := range statsMap {
		snap := TierSnapshot{
			Tier:     k.tier,
			Op:       k.op,
			Outcomes: make(map[string]uint64, len(st.outcomes)),
			Buckets:  make([]uint64, len(st.buckets)),
			Sum:      st.sum,
			Count:    st.count,
		}
		for o, n := range st.outcomes {
			snap.Outcomes[o] = n
		}
		var cum uint64
		for i, n := range st.buckets {
			cum += n
			snap.Buckets[i] = cum
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tier != out[j].Tier {
			return out[i].Tier < out[j].Tier
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// ResetTierStats clears the registry (tests).
func ResetTierStats() {
	statsMu.Lock()
	defer statsMu.Unlock()
	statsMap = map[statsKey]*opStats{}
}

// tierKind shortens a Store name to a bounded metric label: "remote(...)"
// and "tiered(...)" collapse to their kind so label cardinality never
// depends on peer URLs or composition shapes.
func tierKind(name string) string {
	if i := strings.IndexByte(name, '('); i >= 0 {
		return name[:i]
	}
	return name
}
