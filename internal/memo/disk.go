package memo

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
)

// Disk is a best-effort on-disk blob store keyed by Key, used to warm the
// in-memory cache across CLI invocations. Every blob is written with the
// store's version and the key's full encoding; Get verifies both, so a
// stale-version file or a hash-collision file reads as a miss, never as a
// wrong value. All failures (permissions, corruption, races between
// processes) degrade to misses — the store is a cache, not a database.
type Disk struct {
	dir     string
	version int
}

// diskBlob is the on-disk envelope.
type diskBlob struct {
	Version int
	Enc     string
	Blob    []byte
}

// OpenDisk creates (if needed) and returns a disk store rooted at dir.
// version tags the value encoding: bump it whenever the cached value format
// OR the model arithmetic changes, and old files are ignored.
func OpenDisk(dir string, version int) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("memo: disk cache dir: %w", err)
	}
	return &Disk{dir: dir, version: version}, nil
}

// ResolveDir expands the conventional -cachedir flag value: "auto" maps to
// <user cache dir>/repro-latmodel, anything else is used verbatim.
func ResolveDir(flagVal string) (string, error) {
	if flagVal != "auto" {
		return flagVal, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("memo: no user cache dir: %w", err)
	}
	return filepath.Join(base, "repro-latmodel"), nil
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

// Name implements Store.
func (d *Disk) Name() string { return "disk" }

// path names the blob file for k. Distinct keys with equal hashes map to
// the same file and evict each other — harmless, Get checks Enc.
func (d *Disk) path(k Key) string {
	return filepath.Join(d.dir, fmt.Sprintf("%016x.memo", k.Hash))
}

// Get loads the blob stored for k, or reports a miss.
func (d *Disk) Get(_ context.Context, k Key) ([]byte, bool) {
	data, err := os.ReadFile(d.path(k))
	if err != nil {
		return nil, false
	}
	var blob diskBlob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&blob); err != nil {
		return nil, false
	}
	if blob.Version != d.version || blob.Enc != k.Enc {
		return nil, false
	}
	return blob.Blob, true
}

// Put stores blob for k (best effort: errors are swallowed). The file is
// written to a temp name and renamed so concurrent readers never observe a
// torn write.
func (d *Disk) Put(_ context.Context, k Key, blob []byte) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(diskBlob{Version: d.version, Enc: k.Enc, Blob: blob}); err != nil {
		return
	}
	dst := d.path(k)
	tmp, err := os.CreateTemp(d.dir, ".memo-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(buf.Bytes())
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, dst); err != nil {
		os.Remove(name)
	}
}
