package memo

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/arch"
	"repro/internal/energy"
	"repro/internal/loops"
	"repro/internal/workload"
)

func layerKey(l workload.Layer) Key {
	var b Builder
	b.Layer(&l)
	return b.Key()
}

// TestLayerFingerprintDistinct: layers differing in any shape field get
// distinct keys; the name is shape-irrelevant and must NOT change the key.
func TestLayerFingerprintDistinct(t *testing.T) {
	base := workload.NewConv2D("a", 1, 64, 32, 28, 28, 3, 3)
	variants := []workload.Layer{
		workload.NewConv2D("a", 1, 64, 32, 28, 28, 3, 1),
		workload.NewConv2D("a", 1, 64, 32, 28, 27, 3, 3),
		workload.NewConv2D("a", 2, 64, 32, 28, 28, 3, 3),
		workload.NewPointwise("a", 1, 64, 32, 28, 28),
		workload.NewMatMul("a", 1, 64, 32),
	}
	strided := base
	strided.Strides = loops.Strides{SX: 2, SY: 2, DX: 1, DY: 1}
	variants = append(variants, strided)
	prec := base
	prec.Precision = workload.Precision{W: 4, I: 4, O: 16}
	variants = append(variants, prec)

	bk := layerKey(base)
	seen := map[string]string{bk.Enc: base.String()}
	for _, v := range variants {
		k := layerKey(v)
		if prev, dup := seen[k.Enc]; dup {
			t.Errorf("layer %v collides with %v", v.String(), prev)
		}
		seen[k.Enc] = v.String()
	}

	renamed := base
	renamed.Name = "completely-different-name"
	if layerKey(renamed) != bk {
		t.Errorf("layer name changed the shape fingerprint")
	}
}

// TestArchFingerprintDistinct: structural changes alter the key, renaming
// the arch does not.
func TestArchFingerprintDistinct(t *testing.T) {
	archKey := func(a *arch.Arch) Key {
		var b Builder
		b.Arch(a)
		return b.Key()
	}
	base := arch.CaseStudy()
	bk := archKey(base)

	seen := map[string]string{bk.Enc: "base"}
	mutate := func(name string, f func(a *arch.Arch)) {
		a := base.Clone()
		f(a)
		k := archKey(a)
		if prev, dup := seen[k.Enc]; dup {
			t.Errorf("arch variant %q collides with %q", name, prev)
		}
		seen[k.Enc] = name
	}
	mutate("capacity", func(a *arch.Arch) { a.MemoryByName("GB").CapacityBits *= 2 })
	mutate("bw", func(a *arch.Arch) { a.MemoryByName("GB").Ports[0].BWBits /= 2 })
	mutate("db", func(a *arch.Arch) {
		m := a.Memories[0]
		m.DoubleBuffered = !m.DoubleBuffered
	})
	mutate("macs", func(a *arch.Arch) { a.MACs *= 2 })
	mutate("combine", func(a *arch.Arch) { a.Combine = arch.Sequential })

	renamed := base.Clone()
	renamed.Name = "other"
	if archKey(renamed) != bk {
		t.Errorf("arch name changed the fingerprint")
	}
}

// TestBuilderDelimiting: adjacent fields must not be confusable ("ab"+"c"
// vs "a"+"bc").
func TestBuilderDelimiting(t *testing.T) {
	var b1, b2 Builder
	b1.Str("ab")
	b1.Str("c")
	b2.Str("a")
	b2.Str("bc")
	if b1.Key() == b2.Key() {
		t.Fatal("length prefixing failed: ab|c == a|bc")
	}
	b1.Reset()
	b2.Reset()
	b1.EnergyTable(nil)
	b2.EnergyTable(energy.Default7nm())
	if b1.Key() == b2.Key() {
		t.Fatal("nil energy table keys like the default table")
	}
}

// TestCacheSingleflight: many goroutines asking for one key run the
// computation exactly once and all observe its value. Run under -race.
func TestCacheSingleflight(t *testing.T) {
	c := New(0)
	var b Builder
	b.Str("the-key")
	k := b.Key()

	var computed atomic.Int64
	release := make(chan struct{})
	const goroutines = 16
	var wg sync.WaitGroup
	results := make([]any, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Do(context.Background(), k, func(context.Context) (any, error) {
				<-release // hold the computation open so others pile up
				computed.Add(1)
				return "value", nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()
	if n := computed.Load(); n != 1 {
		t.Fatalf("computation ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != "value" {
			t.Fatalf("goroutine %d saw %v", i, v)
		}
	}
	cnt := c.Counters()
	if cnt.Misses() != 1 {
		t.Errorf("misses = %d, want 1", cnt.Misses())
	}
	if cnt.Hits()+cnt.InflightWaits() != goroutines-1 {
		t.Errorf("hits+waits = %d, want %d", cnt.Hits()+cnt.InflightWaits(), goroutines-1)
	}
}

// TestCacheDistinctKeys: distinct keys compute independently, repeated keys
// hit.
func TestCacheDistinctKeys(t *testing.T) {
	c := New(0)
	mk := func(i int) Key {
		var b Builder
		b.Int(int64(i))
		return b.Key()
	}
	for round := 0; round < 2; round++ {
		for i := 0; i < 10; i++ {
			v, err := c.Do(context.Background(), mk(i), func(context.Context) (any, error) { return i * i, nil })
			if err != nil || v.(int) != i*i {
				t.Fatalf("round %d key %d: got %v, %v", round, i, v, err)
			}
		}
	}
	if c.Counters().Misses() != 10 {
		t.Errorf("misses = %d, want 10", c.Counters().Misses())
	}
	if c.Counters().Hits() != 10 {
		t.Errorf("hits = %d, want 10", c.Counters().Hits())
	}
	if c.Len() != 10 {
		t.Errorf("len = %d, want 10", c.Len())
	}
}

// TestCacheErrorsCached: a deterministic failure is served from cache too.
func TestCacheErrorsCached(t *testing.T) {
	c := New(0)
	var b Builder
	b.Str("failing")
	k := b.Key()
	calls := 0
	for i := 0; i < 3; i++ {
		_, err := c.Do(context.Background(), k, func(context.Context) (any, error) {
			calls++
			return nil, fmt.Errorf("no valid mapping")
		})
		if err == nil {
			t.Fatal("expected error")
		}
	}
	if calls != 1 {
		t.Fatalf("failing computation ran %d times, want 1", calls)
	}
}

// TestDoTransientNotCached: a computation that dies with a context error is
// evicted instead of cached — the next caller recomputes and can succeed.
func TestDoTransientNotCached(t *testing.T) {
	c := New(0)
	var b Builder
	b.Str("transient")
	k := b.Key()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	_, err := c.Do(ctx, k, func(ctx context.Context) (any, error) {
		calls++
		return nil, ctx.Err() // a cooperative computation observing the cancel
	})
	if err != context.Canceled {
		t.Fatalf("canceled Do returned %v, want context.Canceled", err)
	}
	if c.Len() != 0 {
		t.Fatalf("canceled result stayed in the cache (len=%d)", c.Len())
	}
	if c.Counters().Transient() != 1 {
		t.Errorf("transient = %d, want 1", c.Counters().Transient())
	}

	// A later caller with a live context recomputes and is cached normally.
	v, err := c.Do(context.Background(), k, func(context.Context) (any, error) {
		calls++
		return "fresh", nil
	})
	if err != nil || v != "fresh" {
		t.Fatalf("retry after transient: got %v, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("computation ran %d times, want 2 (no caching of the canceled run)", calls)
	}
	if _, err := c.Do(context.Background(), k, func(context.Context) (any, error) {
		t.Error("successful result was not cached")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDoWaiterRetries: a live waiter coalesced onto a leader that dies with
// a context error retries as the new leader instead of inheriting the
// leader's cancellation.
func TestDoWaiterRetries(t *testing.T) {
	c := New(0)
	var b Builder
	b.Str("retry")
	k := b.Key()

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := c.Do(leaderCtx, k, func(ctx context.Context) (any, error) {
			close(leaderIn)
			<-ctx.Done()
			return nil, ctx.Err()
		})
		if err != context.Canceled {
			t.Errorf("leader returned %v, want context.Canceled", err)
		}
	}()
	<-leaderIn // the leader's computation is in flight

	// The waiter joins, the leader dies, the waiter must recompute under
	// its own live context and succeed.
	waiterDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(waiterDone)
		v, err := c.Do(context.Background(), k, func(context.Context) (any, error) {
			return "second wind", nil
		})
		if err != nil || v != "second wind" {
			t.Errorf("waiter got %v, %v; want recomputed value", v, err)
		}
	}()
	// The waiter may still be en route to the entry; canceling the leader is
	// correct in either interleaving (waiter coalesces then retries, or
	// finds the entry already evicted and leads immediately).
	cancelLeader()
	wg.Wait()
	<-waiterDone

	if c.Len() != 1 {
		t.Errorf("len = %d, want 1 (the waiter's successful recompute)", c.Len())
	}
}

// TestCacheDisabled: a disabled cache runs every computation.
func TestCacheDisabled(t *testing.T) {
	c := New(0)
	c.SetEnabled(false)
	var b Builder
	b.Str("k")
	k := b.Key()
	calls := 0
	for i := 0; i < 3; i++ {
		if _, err := c.Do(context.Background(), k, func(context.Context) (any, error) { calls++; return 1, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 3 {
		t.Fatalf("disabled cache ran computation %d times, want 3", calls)
	}
	c.SetEnabled(true)
	if !c.Enabled() {
		t.Fatal("re-enable failed")
	}
}

// TestDiskRoundtrip: Put/Get verify version and encoding.
func TestDiskRoundtrip(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 7)
	if err != nil {
		t.Fatal(err)
	}
	var b Builder
	b.Str("disk-key")
	k := b.Key()

	ctx := context.Background()
	if _, ok := d.Get(ctx, k); ok {
		t.Fatal("hit on empty store")
	}
	d.Put(ctx, k, []byte("payload"))
	got, ok := d.Get(ctx, k)
	if !ok || string(got) != "payload" {
		t.Fatalf("roundtrip: got %q, %v", got, ok)
	}

	// A version bump invalidates everything.
	d2, err := OpenDisk(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d2.Get(ctx, k); ok {
		t.Fatal("stale-version blob served")
	}

	// A hash-colliding key with different Enc must read as a miss.
	k2 := Key{Hash: k.Hash, Enc: k.Enc + "x"}
	if _, ok := d.Get(ctx, k2); ok {
		t.Fatal("collision served wrong value")
	}
}

// TestCacheBound: inserting past the bound drops entries instead of growing
// without limit.
func TestCacheBound(t *testing.T) {
	c := New(numShards) // one entry per shard
	for i := 0; i < 10*numShards; i++ {
		var b Builder
		b.Int(int64(i))
		if _, err := c.Do(context.Background(), b.Key(), func(context.Context) (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n > 2*numShards {
		t.Fatalf("cache grew to %d entries despite bound", n)
	}
}
