package memo

// Set is an insert-only set of byte-string keys with the same collision
// discipline as the Cache: lookups go through a 64-bit FNV-1a bucket and
// full keys are compared byte for byte inside the bucket, so two distinct
// keys can never merge silently. It is NOT safe for concurrent use — the
// mapper's generator (its primary client) is single-threaded by design.
type Set struct {
	buckets map[uint64][]string
	n       int
}

// Insert adds key to the set, copying the bytes, and reports whether it was
// newly inserted (false = already present). The duplicate probe allocates
// nothing.
func (s *Set) Insert(key []byte) bool {
	if s.buckets == nil {
		s.buckets = make(map[uint64][]string)
	}
	sum := fnv1a(fnvOffset64, key)
	for _, k := range s.buckets[sum] {
		if k == string(key) {
			return false
		}
	}
	s.buckets[sum] = append(s.buckets[sum], string(key))
	s.n++
	return true
}

// Len returns the number of distinct keys inserted so far.
func (s *Set) Len() int { return s.n }
