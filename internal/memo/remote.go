package memo

// Remote is a Store backed by another node's /v1/memo/{get,put} endpoints
// (internal/serve): a fleet of servemodel nodes pointed at a shared memo
// node exchanges warm search results, so one user's cold sweep warms
// everyone else's. Strictly best-effort — a dead peer, a slow network or a
// version-skewed node degrades to misses and dropped writes, never to an
// error on the search path — and collision-checked end to end: the wire
// carries the key's full canonical encoding and the peer matches it exactly
// like the local tiers do.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/otrace"
)

// Remote implements Store over a peer's memo endpoints.
type Remote struct {
	base    string
	version int
	c       *http.Client
	errs    atomic.Int64
}

// WireGet is the POST /v1/memo/get body; Enc is the key's canonical
// encoding (base64 on the wire via encoding/json). Exported so the serving
// side (internal/serve) decodes the exact shapes this client sends.
type WireGet struct {
	Enc     []byte `json:"enc"`
	Version int    `json:"version"`
}

// WirePut is the POST /v1/memo/put body.
type WirePut struct {
	Enc     []byte `json:"enc"`
	Version int    `json:"version"`
	Blob    []byte `json:"blob"`
}

// WireBlob is the get response payload.
type WireBlob struct {
	Blob []byte `json:"blob"`
}

// NewRemote returns a Store talking to the servemodel node at baseURL
// (e.g. "http://host:8080"). version tags every exchange — use the caller's
// payload format version so nodes with different model arithmetic read each
// other as misses. c == nil selects a client with a short timeout: a memo
// tier must never stall a search longer than recomputing would.
func NewRemote(baseURL string, version int, c *http.Client) *Remote {
	if c == nil {
		c = &http.Client{Timeout: 2 * time.Second}
	}
	return &Remote{base: strings.TrimRight(baseURL, "/"), version: version, c: c}
}

// Name implements Store.
func (s *Remote) Name() string { return "remote(" + s.base + ")" }

// Errs returns the transport/protocol failures observed so far (misses are
// not failures). Diagnostic only.
func (s *Remote) Errs() int64 { return s.errs.Load() }

// post issues a traced POST: the request carries ctx (cancellation) and
// the active span's traceparent header, so the serving node's memo spans
// land in the same trace as the caller's.
func (s *Remote) post(ctx context.Context, url string, body []byte) (*http.Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	otrace.Inject(ctx, req.Header)
	return s.c.Do(req)
}

// Get implements Store.
func (s *Remote) Get(ctx context.Context, k Key) ([]byte, bool) {
	body, err := json.Marshal(WireGet{Enc: []byte(k.Enc), Version: s.version})
	if err != nil {
		return nil, false
	}
	resp, err := s.post(ctx, s.base+"/v1/memo/get", body)
	if err != nil {
		s.errs.Add(1)
		return nil, false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound {
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		s.errs.Add(1)
		return nil, false
	}
	var rb WireBlob
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&rb); err != nil || len(rb.Blob) == 0 {
		s.errs.Add(1)
		return nil, false
	}
	return rb.Blob, true
}

// Put implements Store.
func (s *Remote) Put(ctx context.Context, k Key, blob []byte) {
	body, err := json.Marshal(WirePut{Enc: []byte(k.Enc), Version: s.version, Blob: blob})
	if err != nil {
		return
	}
	resp, err := s.post(ctx, s.base+"/v1/memo/put", body)
	if err != nil {
		s.errs.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		s.errs.Add(1)
	}
}
