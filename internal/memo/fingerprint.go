package memo

import (
	"encoding/binary"
	"math"

	"repro/internal/arch"
	"repro/internal/energy"
	"repro/internal/loops"
	"repro/internal/workload"
)

// Key is a content-addressed cache key: the full canonical encoding of the
// inputs plus its 64-bit FNV-1a hash. The hash picks a shard and names the
// disk file; lookups always compare the full encoding, so the key is
// collision-checked by construction — two distinct inputs can share a hash
// (costing locality, never correctness) but never a Key.
type Key struct {
	Hash uint64
	Enc  string
}

// FNV-1a 64-bit, as in hash/fnv, open-coded so Sum can run allocation-free
// over the builder's buffer.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511627709
)

// fnv1a folds b into h.
func fnv1a(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// Builder accumulates a canonical binary encoding. Every field written is
// length- or tag-delimited so that no two distinct input sequences produce
// the same bytes. A zero Builder is ready to use; Reset allows reuse.
type Builder struct {
	buf []byte
}

// Reset clears the builder, keeping its buffer.
func (b *Builder) Reset() { b.buf = b.buf[:0] }

// Key finalizes the builder into a Key. The builder remains usable (and
// unchanged); call Reset to start a new encoding.
func (b *Builder) Key() Key {
	return Key{Hash: fnv1a(fnvOffset64, b.buf), Enc: string(b.buf)}
}

// Int appends a signed integer (varint).
func (b *Builder) Int(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	b.buf = append(b.buf, tmp[:n]...)
}

// Uint appends an unsigned integer (uvarint).
func (b *Builder) Uint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	b.buf = append(b.buf, tmp[:n]...)
}

// Bool appends a boolean.
func (b *Builder) Bool(v bool) {
	if v {
		b.buf = append(b.buf, 1)
	} else {
		b.buf = append(b.buf, 0)
	}
}

// Float appends a float64 by its IEEE-754 bits, so that every distinct
// value (including -0 vs +0 and NaN payloads) encodes distinctly.
func (b *Builder) Float(v float64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	b.buf = append(b.buf, tmp[:]...)
}

// Str appends a length-prefixed string.
func (b *Builder) Str(s string) {
	b.Uint(uint64(len(s)))
	b.buf = append(b.buf, s...)
}

// Bytes appends a length-prefixed byte slice.
func (b *Builder) Bytes(p []byte) {
	b.Uint(uint64(len(p)))
	b.buf = append(b.buf, p...)
}

// Layer appends the layer's canonical SHAPE encoding — kind, dims, strides,
// precision; the name is deliberately excluded so that repeated shapes
// (conv2_1 vs conv3_4 in a ResNet) address the same cache line. Nothing in
// the models reads the name except error messages.
func (b *Builder) Layer(l *workload.Layer) {
	b.buf = append(b.buf, 'L')
	sk := l.AppendShapeKey(nil)
	b.Bytes(sk)
}

// Nest appends an ordered loop nest (order is semantic: innermost first).
func (b *Builder) Nest(n loops.Nest) {
	b.buf = append(b.buf, 'N')
	b.Uint(uint64(len(n)))
	for _, lp := range n {
		b.Uint(uint64(lp.Dim))
		b.Int(lp.Size)
	}
}

// Arch appends the architecture's canonical encoding: everything the models
// read — MAC count, stall-combination mode, every memory module (name,
// capacity, buffering, served operands, ports, port assignments) and every
// operand chain. Memory NAMES are included because they order the model's
// deterministic float reductions and anchor the chains; the top-level
// arch name is excluded (it is only used in reports), so structurally
// identical variants share cache entries.
func (b *Builder) Arch(a *arch.Arch) {
	b.buf = append(b.buf, 'A')
	b.Int(a.MACs)
	b.Uint(uint64(a.Combine))
	b.Uint(uint64(len(a.Memories)))
	for _, m := range a.Memories {
		b.Str(m.Name)
		b.Int(m.CapacityBits)
		b.Bool(m.DoubleBuffered)
		b.Uint(uint64(len(m.Serves)))
		for _, op := range m.Serves {
			b.Uint(uint64(op))
		}
		b.Uint(uint64(len(m.Ports)))
		for _, p := range m.Ports {
			b.Uint(uint64(p.Dir))
			b.Int(p.BWBits)
		}
		// PortOf in a deterministic order: served operands × {read, write}.
		for _, op := range m.Serves {
			for _, wr := range []bool{false, true} {
				if idx, ok := m.PortOf[arch.Access{Operand: op, Write: wr}]; ok {
					b.Int(int64(idx))
				} else {
					b.Int(-1)
				}
			}
		}
	}
	for _, op := range loops.AllOperands {
		chain := a.Chain[op]
		b.Uint(uint64(len(chain)))
		for _, name := range chain {
			b.Str(name)
		}
	}
}

// EnergyTable appends an energy table (nil encodes as the default-table
// marker: energy.Evaluate treats nil as Default7nm, so both must key
// identically only if callers rely on that; encode the pointer state
// explicitly instead to stay conservative).
func (b *Builder) EnergyTable(t *energy.Table) {
	if t == nil {
		b.buf = append(b.buf, 'e')
		return
	}
	b.buf = append(b.buf, 'E')
	b.Float(t.MACpJ)
	b.Float(t.RegPJPerBit)
	b.Float(t.BasePJPerBit)
	b.Float(t.SlopePJPerBit)
	b.Float(t.WritePenalty)
}
