// Package memo is the content-addressed evaluation cache underneath the
// repository's drivers. Re-running a mapping search for a (layer shape,
// architecture, search options) triple that has been searched before — the
// normal case for real DNNs, which repeat layer shapes dozens of times, and
// for DSE grids, which re-visit points across panels and CLI invocations —
// is pure waste once the search is deterministic (DESIGN.md §6). The package
// provides:
//
//   - canonical, collision-checked fingerprints (fingerprint.go): a Key is
//     the full stable binary encoding of everything that influences the
//     result, plus an FNV-1a hash of it. The hash only selects a shard and
//     names a disk file; equality is always decided on the full encoding, so
//     a hash collision can cost a miss but never a wrong hit;
//   - a sharded, mutex-striped concurrent cache with singleflight (this
//     file): concurrent workers asking for the same key block on ONE
//     in-flight computation instead of racing through duplicates — exactly
//     what the par-pooled network/DSE drivers need;
//   - an optional versioned on-disk store (disk.go) so repeated CLI
//     invocations start warm.
//
// Values cached here are shared between callers and MUST be treated as
// immutable. Cached computations must be deterministic: the cache assumes
// f(key) is a pure function, which PR 1's bit-deterministic search engine
// guarantees for the mapping searches stored in it.
package memo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// numShards stripes the cache mutexes. Power of two; 64 keeps contention
// negligible at the worker counts par allows while staying cheap to reset.
const numShards = 64

// Counters aggregates a cache's traffic. All fields are monotonically
// increasing and safe to read concurrently.
type Counters struct {
	hits      atomic.Int64
	misses    atomic.Int64
	waits     atomic.Int64 // singleflight: joined an in-flight computation
	diskHits  atomic.Int64 // misses served from the on-disk store (subset of misses)
	bypass    atomic.Int64 // calls while the cache was disabled
	canceled  atomic.Int64 // lookups abandoned because the caller's context fired
	transient atomic.Int64 // computations evicted instead of cached (context errors)
}

// Hits returns completed lookups served from memory.
func (c *Counters) Hits() int64 { return c.hits.Load() }

// Misses returns lookups that ran (or waited for) the computation.
func (c *Counters) Misses() int64 { return c.misses.Load() }

// InflightWaits returns lookups deduplicated onto another caller's
// in-flight computation by singleflight.
func (c *Counters) InflightWaits() int64 { return c.waits.Load() }

// DiskHits returns memory misses that were served from the disk store.
func (c *Counters) DiskHits() int64 { return c.diskHits.Load() }

// NoteDiskHit records a disk-store hit. Called by cache users that layer a
// Disk store under Do's compute function (mapper.BestCached).
func (c *Counters) NoteDiskHit() { c.diskHits.Add(1) }

// Canceled returns lookups abandoned because the caller's context was
// canceled (or hit its deadline) while waiting on an in-flight computation.
func (c *Counters) Canceled() int64 { return c.canceled.Load() }

// Transient returns computations whose result was NOT cached because they
// died with a context error (canceled search, expired deadline) — evicted
// so a later caller recomputes instead of inheriting the failure.
func (c *Counters) Transient() int64 { return c.transient.Load() }

// String renders the counters for driver output, e.g.
// "memo: 38 hits, 9 misses (2 from disk), 3 in-flight waits".
func (c *Counters) String() string {
	h, m, w, d := c.Hits(), c.Misses(), c.InflightWaits(), c.DiskHits()
	s := fmt.Sprintf("memo: %d hits, %d misses", h, m)
	if d > 0 {
		s += fmt.Sprintf(" (%d from disk)", d)
	}
	if w > 0 {
		s += fmt.Sprintf(", %d in-flight waits", w)
	}
	return s
}

// entry is one cache slot. done is closed exactly once, after val/err (and
// transient) are final; waiters block on it (singleflight). A transient
// entry is one whose computation died with a context error: it is removed
// from the shard before done is closed, so waiters can retry under their own
// (still-live) context.
type entry struct {
	done      chan struct{}
	val       any
	err       error
	transient bool
}

type shard struct {
	mu sync.Mutex
	m  map[string]*entry
}

// Cache is a sharded concurrent memoization table with singleflight.
// The zero value is NOT ready; use New.
type Cache struct {
	shards   [numShards]shard
	disabled atomic.Bool
	counters Counters

	// maxPerShard bounds memory: a shard exceeding it is dropped whole on
	// the next insert (coarse, O(1), and safe — this is a cache).
	maxPerShard int
}

// New returns an empty cache bounding memory to roughly maxEntries entries
// (0 selects the 64k default).
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = 1 << 16
	}
	c := &Cache{maxPerShard: (maxEntries + numShards - 1) / numShards}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*entry)
	}
	return c
}

// Default is the process-wide cache used by the memoized search wrappers
// (mapper.BestCached and friends).
var Default = New(0)

// Counters exposes the cache's traffic statistics.
func (c *Cache) Counters() *Counters { return &c.counters }

// SetEnabled turns the cache on (default) or off. While disabled, Do runs
// every computation directly — used by the equivalence tests that compare
// cached against uncached results.
func (c *Cache) SetEnabled(on bool) { c.disabled.Store(!on) }

// Enabled reports whether the cache is active.
func (c *Cache) Enabled() bool { return !c.disabled.Load() }

// Reset drops every cached entry (counters are kept). In-flight
// computations complete normally but their results are not re-inserted for
// waiters that arrive after the reset.
func (c *Cache) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[string]*entry)
		s.mu.Unlock()
	}
}

// Len returns the number of resident entries (including in-flight ones).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Do returns the cached value for k, computing it with compute on a miss.
// Concurrent calls with the same key run compute once: the first caller
// computes, the rest block until it finishes (singleflight) and share the
// result. Deterministic errors are cached too — a failed search would fail
// identically on retry.
//
// Context errors are the exception: a computation that returns the leader's
// context.Canceled or DeadlineExceeded says nothing about the key, only
// about that caller's patience, so the entry is evicted instead of cached
// and the partial outcome never becomes visible. Waiters whose own context
// is still live transparently retry (one of them becomes the new leader);
// a waiter whose context fires while blocked abandons the wait with its own
// ctx.Err() and leaves the in-flight computation undisturbed — the leader
// still completes and caches for everyone else.
//
// The returned value is shared by every caller with the same key and must
// not be mutated. compute receives the leader's context and should honor it.
func (c *Cache) Do(ctx context.Context, k Key, compute func(ctx context.Context) (any, error)) (any, error) {
	if c.disabled.Load() {
		c.counters.bypass.Add(1)
		return compute(ctx)
	}
	s := &c.shards[k.Hash%numShards]

	for {
		s.mu.Lock()
		if e, ok := s.m[k.Enc]; ok {
			s.mu.Unlock()
			select {
			case <-e.done:
				c.counters.hits.Add(1)
			default:
				c.counters.waits.Add(1)
				select {
				case <-e.done:
				case <-ctx.Done():
					c.counters.canceled.Add(1)
					return nil, ctx.Err()
				}
			}
			if e.transient {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				continue // the dead entry was evicted; retry as leader
			}
			return e.val, e.err
		}
		if len(s.m) >= c.maxPerShard {
			s.m = make(map[string]*entry)
		}
		e := &entry{done: make(chan struct{})}
		s.m[k.Enc] = e
		s.mu.Unlock()

		c.counters.misses.Add(1)
		func() {
			defer close(e.done) // even on a compute panic, never strand waiters
			e.val, e.err = compute(ctx)
			if isContextErr(e.err) {
				e.transient = true
				e.val = nil
				c.counters.transient.Add(1)
				s.mu.Lock()
				if s.m[k.Enc] == e {
					delete(s.m, k.Enc)
				}
				s.mu.Unlock()
			}
		}()
		return e.val, e.err
	}
}

// Range calls fn for every COMPLETED, non-error entry resident in the cache
// and stops early when fn returns false. In-flight computations are skipped,
// never waited on — Range holds no lock while fn runs, so fn may itself use
// the cache. The iteration order is unspecified, and entries inserted or
// evicted concurrently may or may not be observed (the usual weakly
// consistent map-iteration contract). Values passed to fn are the shared
// cached values: fn must treat them as immutable.
//
// This is the harvesting hook for consumers that learn from the cache's
// accumulated results — e.g. mapper.HarvestSamples, which turns memoized
// exact search results into surrogate-model training samples.
func (c *Cache) Range(fn func(val any) bool) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		entries := make([]*entry, 0, len(s.m))
		for _, e := range s.m {
			entries = append(entries, e)
		}
		s.mu.Unlock()
		for _, e := range entries {
			select {
			case <-e.done:
			default:
				continue // in flight: no value yet
			}
			if e.err != nil || e.transient {
				continue
			}
			if !fn(e.val) {
				return
			}
		}
	}
}

// isContextErr reports whether err is a cancellation/deadline outcome that
// must not be cached.
func isContextErr(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// Get returns the cached value for k if a COMPLETED entry exists. It never
// waits and never counts as a hit or miss; use it for opportunistic probes.
func (c *Cache) Get(k Key) (any, bool) {
	if c.disabled.Load() {
		return nil, false
	}
	s := &c.shards[k.Hash%numShards]
	s.mu.Lock()
	e, ok := s.m[k.Enc]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	select {
	case <-e.done:
		if e.err != nil {
			return nil, false
		}
		return e.val, true
	default:
		return nil, false
	}
}
