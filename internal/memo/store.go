package memo

import (
	"context"
	"strings"
	"sync"
)

// Store is a pluggable best-effort blob tier behind the in-memory cache:
// Get either returns exactly what some Put stored for the SAME Key (full
// encoding, not just the hash) or reports a miss, and both calls must be
// safe for concurrent use. Every failure mode — eviction, corruption, an
// unreachable peer, a version skew — must degrade to a miss or a dropped
// write, never to a wrong value; the callers treat a Store as a cache, not
// a database. Disk, Mem, Remote and Tiered all satisfy this contract.
//
// The context carries cancellation and the active otrace span to tiers
// that cross a network; it must never influence WHAT a store returns, only
// whether it bothers. Local tiers ignore it.
type Store interface {
	// Name identifies the tier in diagnostics ("disk", "mem", "remote(...)").
	Name() string
	Get(ctx context.Context, k Key) ([]byte, bool)
	Put(ctx context.Context, k Key, blob []byte)
}

// KeyOf rebuilds a Key from a raw canonical encoding, recomputing the hash.
// It is the wire-side inverse of Key.Enc: a remote store ships encodings,
// not hashes, so a corrupted or adversarial hash can never address the
// wrong entry.
func KeyOf(enc []byte) Key {
	return Key{Hash: fnv1a(fnvOffset64, enc), Enc: string(enc)}
}

// Mem is a bounded in-process Store — the default tier a servemodel node
// exports to its peers when no disk store is configured. Entries are keyed
// by the full encoding, so it is collision-proof by construction. When full
// it evicts an arbitrary entry: the callers' determinism never depends on
// WHAT a store retains, only on retained bytes being exact.
type Mem struct {
	mu  sync.Mutex
	max int
	m   map[string][]byte
}

// NewMem returns a Mem holding at most maxEntries blobs (<= 0 selects a
// default of 4096).
func NewMem(maxEntries int) *Mem {
	if maxEntries <= 0 {
		maxEntries = 1 << 12
	}
	return &Mem{max: maxEntries, m: make(map[string][]byte)}
}

// Name implements Store.
func (s *Mem) Name() string { return "mem" }

// Get implements Store. The returned blob is the caller's to keep (a copy):
// the other tiers hand out freshly allocated slices, so callers may mutate
// results without corrupting any store.
func (s *Mem) Get(_ context.Context, k Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[k.Enc]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), b...), true
}

// Put implements Store.
func (s *Mem) Put(_ context.Context, k Key, blob []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[k.Enc]; !ok && len(s.m) >= s.max {
		for victim := range s.m {
			delete(s.m, victim)
			break
		}
	}
	s.m[k.Enc] = append([]byte(nil), blob...)
}

// Len returns the number of retained blobs.
func (s *Mem) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// tiered composes stores fastest-first. Get returns the first hit and
// backfills every earlier (faster) tier with it; Put writes through to all
// tiers. A node with a disk tier and a remote fleet tier therefore serves
// repeat queries locally while first-anywhere results propagate.
type tiered struct {
	stores []Store
}

// Tiered composes stores (fastest first) into one Store. nil members are
// skipped; with zero or one live member the composition collapses to nil or
// the member itself.
func Tiered(stores ...Store) Store {
	var live []Store
	for _, s := range stores {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &tiered{stores: live}
}

// Name implements Store.
func (t *tiered) Name() string {
	names := make([]string, len(t.stores))
	for i, s := range t.stores {
		names[i] = s.Name()
	}
	return "tiered(" + strings.Join(names, ",") + ")"
}

// Get implements Store.
func (t *tiered) Get(ctx context.Context, k Key) ([]byte, bool) {
	for i, s := range t.stores {
		if b, ok := s.Get(ctx, k); ok {
			for j := 0; j < i; j++ {
				t.stores[j].Put(ctx, k, b)
			}
			return b, true
		}
	}
	return nil, false
}

// Put implements Store.
func (t *tiered) Put(ctx context.Context, k Key, blob []byte) {
	for _, s := range t.stores {
		s.Put(ctx, k, blob)
	}
}
