package memo_test

import (
	"context"
	"testing"

	"repro/internal/memo"
	"repro/internal/otrace"
)

// flaky is a Store that fails every Get and counts the failures like
// Remote does, so the wrapper's error-outcome detection is testable
// without a network.
type flaky struct {
	errs int64
}

func (f *flaky) Name() string { return "remote(http://test)" }
func (f *flaky) Get(context.Context, memo.Key) ([]byte, bool) {
	f.errs++
	return nil, false
}
func (f *flaky) Put(context.Context, memo.Key, []byte) { f.errs++ }
func (f *flaky) Errs() int64                           { return f.errs }

func TestWithTraceStatsAndSpans(t *testing.T) {
	memo.ResetTierStats()
	s := memo.WithTrace(memo.NewMem(0))
	if memo.WithTrace(s) != s {
		t.Fatalf("WithTrace must be idempotent")
	}
	if memo.WithTrace(nil) != nil {
		t.Fatalf("WithTrace(nil) must be nil")
	}
	if s.Name() != "mem" {
		t.Fatalf("traced store must keep inner name, got %q", s.Name())
	}

	rec := otrace.NewRecorder("n", 0, 0)
	ctx, root := rec.StartTrace(context.Background(), "root", "fabric")
	k := memo.KeyOf([]byte("traced-key"))
	if _, ok := s.Get(ctx, k); ok {
		t.Fatal("hit on empty store")
	}
	s.Put(ctx, k, []byte("blob"))
	if got, ok := s.Get(ctx, k); !ok || string(got) != "blob" {
		t.Fatalf("roundtrip through traced store: %q %v", got, ok)
	}
	// Untraced context: stats still counted, no span, no panic.
	if _, ok := s.Get(context.Background(), k); !ok {
		t.Fatal("untraced get missed")
	}
	fl := memo.WithTrace(&flaky{})
	fl.Get(ctx, k)
	fl.Put(ctx, k, []byte("x"))
	root.End()

	snaps := memo.TierSnapshots()
	byKey := map[string]memo.TierSnapshot{}
	for _, sn := range snaps {
		byKey[sn.Tier+"/"+sn.Op] = sn
		if len(sn.Buckets) != len(memo.StatsBuckets) {
			t.Fatalf("bucket count %d", len(sn.Buckets))
		}
		if sn.Buckets[len(sn.Buckets)-1] > sn.Count {
			t.Fatalf("cumulative buckets exceed count: %+v", sn)
		}
	}
	mg := byKey["mem/get"]
	if mg.Outcomes[memo.OutcomeHit] != 2 || mg.Outcomes[memo.OutcomeMiss] != 1 || mg.Count != 3 {
		t.Fatalf("mem/get outcomes %v count %d", mg.Outcomes, mg.Count)
	}
	if byKey["mem/put"].Outcomes[memo.OutcomeWrite] != 1 {
		t.Fatalf("mem/put outcomes %v", byKey["mem/put"].Outcomes)
	}
	if byKey["remote/get"].Outcomes[memo.OutcomeError] != 1 ||
		byKey["remote/put"].Outcomes[memo.OutcomeError] != 1 {
		t.Fatalf("remote error outcomes: %v / %v",
			byKey["remote/get"].Outcomes, byKey["remote/put"].Outcomes)
	}

	w, ok := rec.Export(root.TraceID())
	if !ok {
		t.Fatal("trace not recorded")
	}
	var gets, puts int
	for _, sp := range w.Spans {
		switch sp.Name {
		case "memo.get":
			gets++
			if sp.Cat != otrace.CatMemo || sp.Attrs["tier"] == "" || sp.Attrs["outcome"] == "" {
				t.Fatalf("memo.get span malformed: %+v", sp)
			}
			if sp.Parent != root.ID().String() {
				t.Fatalf("memo span not parented to root")
			}
		case "memo.put":
			puts++
		}
	}
	// 3 traced gets (mem miss, mem hit, remote error) — the background-ctx
	// get records stats but no span — and 2 traced puts.
	if gets != 3 || puts != 2 {
		t.Fatalf("spans: %d gets, %d puts", gets, puts)
	}
	memo.ResetTierStats()
}
