package fabric

// Wire types of the shard protocol (POST /v1/shard, internal/serve). They
// follow the /v1/search request conventions — preset name or inline
// config.Arch plus the loops.Nest string form for spatials — and ship the
// shard's winning TEMPORAL NEST, never its score: the coordinator
// re-materializes every winner through mapper's deterministic evaluate path,
// so a wire encoding can never perturb the (score, seq) merge.

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/loops"
	"repro/internal/mapper"
)

// ShardRequest is the POST /v1/shard body: one planned shard of a Best
// search. The non-shard fields mirror /v1/search so the executing node
// reconstructs the EXACT normalized options the coordinator planned with.
type ShardRequest struct {
	Arch            string           `json:"arch,omitempty"`
	ArchConfig      *config.Arch     `json:"arch_config,omitempty"`
	Spatial         string           `json:"spatial,omitempty"`
	Layer           config.Layer     `json:"layer"`
	Budget          int              `json:"budget,omitempty"`
	MaxSplitsPerDim int              `json:"max_splits_per_dim,omitempty"`
	Objective       string           `json:"objective,omitempty"`
	BWUnaware       bool             `json:"bw_unaware,omitempty"`
	Pow2Splits      bool             `json:"pow2_splits,omitempty"`
	NoSym           bool             `json:"nosym,omitempty"`
	NoPrune         bool             `json:"noprune,omitempty"`
	NoSurrogate     bool             `json:"nosurrogate,omitempty"`
	TimeoutMS       int              `json:"timeout_ms,omitempty"`
	Shard           mapper.ShardSpec `json:"shard"`
	// Sid is the coordinator-chosen steal handle: when set, the node
	// registers the shard's live ShardControl under it for the duration of
	// the walk, and a POST /v1/shard/steal naming it stops the walk at the
	// exact current frontier. The response then carries Truncated plus the
	// Resume spec for the unwalked remainder.
	Sid string `json:"sid,omitempty"`
}

// StealRequest is the POST /v1/shard/steal body: stop the in-flight shard
// registered under Sid at its exact walk frontier so the coordinator can
// re-plan the remainder onto idle executors.
type StealRequest struct {
	Sid string `json:"sid"`
}

// SearchOptions rebuilds the mapper options the shard must run under; sp is
// the resolved spatial nest and obj the parsed objective. Zero values
// normalize to the same defaults the coordinator's normalization applied.
func (r *ShardRequest) SearchOptions(sp loops.Nest, obj mapper.Objective) mapper.Options {
	return mapper.Options{
		Spatial:         sp,
		MaxSplitsPerDim: r.MaxSplitsPerDim,
		Pow2Splits:      r.Pow2Splits,
		MaxCandidates:   r.Budget,
		Objective:       obj,
		BWAware:         !r.BWUnaware,
		NoReduce:        r.NoSym,
		NoPrune:         r.NoPrune,
		NoSurrogate:     r.NoSurrogate,
	}
}

// ShardStatsJSON is mapper.Stats on the wire, all fields explicit.
type ShardStatsJSON struct {
	NestsGenerated    int     `json:"nests_generated"`
	ClassesMerged     int     `json:"classes_merged"`
	SubtreesPruned    int     `json:"subtrees_pruned"`
	Valid             int     `json:"valid"`
	Skipped           int     `json:"skipped"`
	Pruned            int     `json:"pruned"`
	SurrogateReorders int     `json:"surrogate_reorders"`
	SurrogatePruned   int     `json:"surrogate_pruned"`
	SurrogateRankCorr float64 `json:"surrogate_rank_corr"`
}

// ShardResponse is the POST /v1/shard response: the shard's outcome with the
// temporal nest in its string form and the class records as (sig, seq,
// valid) triples (sig crosses as base64 via encoding/json).
type ShardResponse struct {
	Found    bool                `json:"found"`
	Temporal string              `json:"temporal,omitempty"`
	Seq      int64               `json:"seq,omitempty"`
	Stats    ShardStatsJSON      `json:"stats"`
	Classes  []mapper.ShardClass `json:"classes"`
	// Spec echoes the executed spec and OptFP the options fingerprint the
	// node normalized to (string-encoded: uint64 exceeds JSON's exact
	// integer range), so merge-time mismatches name the misconfigured node.
	Spec  mapper.ShardSpec `json:"spec"`
	OptFP uint64           `json:"opt_fp,string,omitempty"`
	// Truncated reports a steal stopped the walk early; Resume is then the
	// spec covering the unwalked remainder of the requested range.
	Truncated bool              `json:"truncated,omitempty"`
	Resume    *mapper.ShardSpec `json:"resume,omitempty"`
}

// EncodeOutcome converts a shard outcome to its wire form.
func EncodeOutcome(out *mapper.ShardOutcome) ShardResponse {
	st := out.Stats
	resp := ShardResponse{
		Found: out.Found,
		Stats: ShardStatsJSON{
			NestsGenerated:    st.NestsGenerated,
			ClassesMerged:     st.ClassesMerged,
			SubtreesPruned:    st.SubtreesPruned,
			Valid:             st.Valid,
			Skipped:           st.Skipped,
			Pruned:            st.Pruned,
			SurrogateReorders: st.SurrogateReorders,
			SurrogatePruned:   st.SurrogatePruned,
			SurrogateRankCorr: st.SurrogateRankCorr,
		},
		Classes: out.Classes,
		Spec:    out.Spec,
		OptFP:   out.OptFP,
	}
	if out.Found {
		resp.Temporal = out.Temporal.String()
		resp.Seq = out.Seq
	}
	if out.Truncated {
		resp.Truncated = true
		resume := out.Resume
		resp.Resume = &resume
	}
	return resp
}

// Outcome converts the wire form back into a mapper.ShardOutcome.
func (r *ShardResponse) Outcome() (*mapper.ShardOutcome, error) {
	out := &mapper.ShardOutcome{
		Found: r.Found,
		Seq:   r.Seq,
		Stats: mapper.Stats{
			NestsGenerated:    r.Stats.NestsGenerated,
			ClassesMerged:     r.Stats.ClassesMerged,
			SubtreesPruned:    r.Stats.SubtreesPruned,
			Valid:             r.Stats.Valid,
			Skipped:           r.Stats.Skipped,
			Pruned:            r.Stats.Pruned,
			SurrogateReorders: r.Stats.SurrogateReorders,
			SurrogatePruned:   r.Stats.SurrogatePruned,
			SurrogateRankCorr: r.Stats.SurrogateRankCorr,
		},
		Classes: r.Classes,
		Spec:    r.Spec,
		OptFP:   r.OptFP,
	}
	if r.Truncated {
		if r.Resume == nil {
			return nil, fmt.Errorf("fabric: truncated shard response carries no resume spec")
		}
		out.Truncated = true
		out.Resume = *r.Resume
	}
	if r.Found {
		nest, err := loops.ParseNest(r.Temporal)
		if err != nil {
			return nil, fmt.Errorf("fabric: bad shard winner nest %q: %w", r.Temporal, err)
		}
		out.Temporal = nest
	}
	return out, nil
}

// objectiveName renders a mapper.Objective in the API vocabulary.
func objectiveName(o mapper.Objective) (string, error) {
	switch o {
	case mapper.MinLatency:
		return "latency", nil
	case mapper.MinEnergy:
		return "energy", nil
	case mapper.MinEDP:
		return "edp", nil
	}
	return "", fmt.Errorf("fabric: objective %d has no wire name", o)
}
