// Package fabric fans one mapper.Best search out over K deterministic
// subtree shards — local goroutines, remote servemodel nodes, or remote
// with local failover — and merges the shard outcomes back into a result
// that is bit-identical to the single-engine search (DESIGN.md §13).
//
// The determinism contract is mapper's, end to end: PlanShards partitions
// the canonical walk into contiguous prefix ranges with exact walk-state
// handoff, every shard re-derives the same geometry from (layer, arch,
// options), and MergeShards re-reduces under the engine's own (score, seq)
// order. WHERE a shard executes — this process, any node, after any number
// of retries — cannot change a single emitted seq, so Best, the exact Stats
// counters and the CLI rendering are byte-identical for any K, any node
// list and any worker count. Only the trajectory-dependent diagnostics
// (Pruned, Surrogate*) vary, exactly as they already do across worker
// counts.
package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/mapper"
	"repro/internal/otrace"
	"repro/internal/workload"
)

// coordTid is the Perfetto lane for the coordinator's own phases (plan,
// merge); executors take lanes coordTid+1..coordTid+E.
const coordTid = 1

// Options configures the fan-out. The zero value is a local single-shard
// search (identical to mapper.Best).
type Options struct {
	// Shards is K, the number of subtree shards (<= 0 and 1 both mean one).
	Shards int
	// Nodes lists servemodel base URLs ("http://host:port") eligible to
	// execute shards. Empty runs every shard in-process. Shard i starts at
	// node i%len(Nodes) and retries the others in order; when all nodes fail
	// the shard falls back to local execution (NoLocalFallback disables
	// that). Do not list THIS server in its own node list — a node executing
	// its own fan-out can deadlock its admission queue against itself.
	Nodes []string
	// ArchName / ArchConfig tell remote nodes which architecture to load:
	// ArchName names a servemodel preset, ArchConfig inlines the config JSON
	// form. With both empty the client inlines config.FromArch(arch) —
	// exact for byte-granular capacities and default port assignments (all
	// presets), best-effort otherwise. Ignored for local execution.
	ArchName   string
	ArchConfig *config.Arch
	// Tenant is forwarded as the X-Tenant header for the peers' weighted-
	// fair admission.
	Tenant string
	// TimeoutMS is the per-shard-request timeout_ms forwarded to remote
	// nodes (0: the node's default timeout).
	TimeoutMS int
	// Client overrides the HTTP client (nil: http.DefaultClient; requests
	// are always bounded by ctx).
	Client *http.Client
	// NoLocalFallback fails a shard whose every node attempt failed instead
	// of recomputing it locally.
	NoLocalFallback bool
	// Executors bounds concurrently executing shards (default: Shards).
	// Fewer executors than shards turns the plan into a work queue; more
	// lets the pool split running shards onto the surplus via stealing.
	Executors int
	// NoSteal disables work stealing: an executor that runs out of queued
	// shards just waits. The result is bit-identical either way (stealing
	// re-plans exact position ranges); only wall-clock changes.
	NoSteal bool
	// Steals, when non-nil, is incremented once per landed steal (a shard
	// stopped early and its remainder re-queued) — observability only.
	Steals *atomic.Int64
}

// Search is mapper.Best executed over fo.Shards shards: same signature, same
// results, same no-valid-mapping error. Hooks are not threaded into shard
// execution (the fan-out is the observable unit); a custom EnergyTable
// cannot cross the wire, so it forces local execution of every shard.
func Search(ctx context.Context, l *workload.Layer, a *arch.Arch, mo *mapper.Options, fo *Options) (*mapper.Candidate, *mapper.Stats, error) {
	cand, stats, err := search(ctx, l, a, mo, fo)
	if err != nil {
		return nil, nil, err
	}
	if cand == nil {
		return nil, stats, mapper.NoValidMappingError(l, a, stats)
	}
	return cand, stats, nil
}

// Runner adapts the fan-out to mapper.SearchFunc for BestCachedVia: the
// returned function reports a completed-but-empty search as (nil, stats,
// nil), runSearch's convention, so cache semantics match the local engine.
func Runner(fo *Options) mapper.SearchFunc {
	return func(ctx context.Context, l *workload.Layer, a *arch.Arch, o *mapper.Options) (*mapper.Candidate, *mapper.Stats, error) {
		return search(ctx, l, a, o, fo)
	}
}

func search(ctx context.Context, l *workload.Layer, a *arch.Arch, mo *mapper.Options, fo *Options) (*mapper.Candidate, *mapper.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if fo == nil {
		fo = &Options{}
	}
	k := fo.Shards
	if k < 1 {
		k = 1
	}
	_, planSp := otrace.StartSpan(ctx, "fabric.plan", otrace.CatPlan)
	planSp.SetTid(coordTid)
	plan, err := mapper.PlanShards(ctx, l, a, mo, k)
	if err != nil {
		planSp.End()
		return nil, nil, err
	}
	planSp.SetAttr("shards", fmt.Sprintf("%d", len(plan.Specs)))
	planSp.SetAttr("total", fmt.Sprintf("%d", plan.Total))
	planSp.End()

	shardOpts := *mo
	shardOpts.Hooks = nil
	nodes := fo.Nodes
	if mo.EnergyTable != nil {
		nodes = nil
	}
	var baseReq *ShardRequest
	if len(nodes) > 0 {
		baseReq, err = buildRequest(l, a, &shardOpts, fo)
		if err != nil {
			return nil, nil, err
		}
	}

	// Fan out through the executor pool. The first failure cancels the
	// siblings: a dead shard makes the exact merge impossible, so finishing
	// the others is wasted work.
	e := fo.Executors
	if e <= 0 {
		e = len(plan.Specs)
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	p := newPool(runCtx, cancel, l, a, &shardOpts, fo, nodes, baseReq, plan)
	var wg sync.WaitGroup
	for i := 0; i < e; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			p.executor(tid)
		}(coordTid + 1 + i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if p.err != nil {
		return nil, nil, p.err
	}
	if fo.Steals != nil {
		fo.Steals.Add(p.steals)
	}
	_, mergeSp := otrace.StartSpan(ctx, "fabric.merge", otrace.CatMerge)
	mergeSp.SetTid(coordTid)
	mergeSp.SetAttr("outcomes", fmt.Sprintf("%d", len(p.outs)))
	cand, stats, err := mapper.MergeShards(l, a, mo, p.outs)
	mergeSp.End()
	return cand, stats, err
}

// buildRequest assembles the node-independent part of the shard requests.
func buildRequest(l *workload.Layer, a *arch.Arch, o *mapper.Options, fo *Options) (*ShardRequest, error) {
	obj, err := objectiveName(o.Objective)
	if err != nil {
		return nil, err
	}
	req := &ShardRequest{
		Arch:            fo.ArchName,
		ArchConfig:      fo.ArchConfig,
		Spatial:         o.Spatial.String(),
		Layer:           config.FromLayer(l),
		Budget:          o.MaxCandidates,
		MaxSplitsPerDim: o.MaxSplitsPerDim,
		Objective:       obj,
		BWUnaware:       !o.BWAware,
		Pow2Splits:      o.Pow2Splits,
		NoSym:           o.NoReduce,
		NoPrune:         o.NoPrune,
		NoSurrogate:     o.NoSurrogate,
		TimeoutMS:       fo.TimeoutMS,
	}
	if req.Arch == "" && req.ArchConfig == nil {
		cfg := config.FromArch(a)
		req.ArchConfig = &cfg
	}
	return req, nil
}

// postShard sends one shard request to node and decodes the outcome.
func postShard(ctx context.Context, fo *Options, node string, body []byte) (*mapper.ShardOutcome, error) {
	url := strings.TrimRight(node, "/") + "/v1/shard"
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if fo.Tenant != "" {
		hreq.Header.Set("X-Tenant", fo.Tenant)
	}
	otrace.Inject(ctx, hreq.Header)
	client := fo.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("fabric: %s: HTTP %d: %s", url, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var sr ShardResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&sr); err != nil {
		return nil, fmt.Errorf("fabric: %s: decode: %w", url, err)
	}
	return sr.Outcome()
}
