package fabric_test

// End-to-end determinism tests for the sharded search fabric: the fan-out —
// local goroutines, remote servemodel nodes (a real internal/serve server
// over httptest), node failover, mixed placements — must reproduce
// mapper.Best bit for bit for every shard count. This is an external test
// package because the serving side imports fabric.

import (
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/fabric"
	"repro/internal/mapper"
	"repro/internal/serve"
	"repro/internal/workload"
)

func quietServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := serve.New(serve.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// normalize zeroes the trajectory-dependent Stats diagnostics (worker- and
// shard-placement-dependent; documented in mapper.Stats).
func normalize(st mapper.Stats) mapper.Stats {
	st.Pruned = 0
	st.SurrogatePruned = 0
	st.SurrogateReorders = 0
	st.SurrogateRankCorr = 0
	return st
}

func assertSameSearch(t *testing.T, tag string, ref *mapper.Candidate, refStats *mapper.Stats, got *mapper.Candidate, gotStats *mapper.Stats) {
	t.Helper()
	if got.Mapping.Temporal.String() != ref.Mapping.Temporal.String() {
		t.Errorf("%s: winner %q, want %q", tag, got.Mapping.Temporal.String(), ref.Mapping.Temporal.String())
	}
	if got.Result.CCTotal != ref.Result.CCTotal || got.EnergyPJ != ref.EnergyPJ {
		t.Errorf("%s: score (%v, %v), want (%v, %v)", tag, got.Result.CCTotal, got.EnergyPJ, ref.Result.CCTotal, ref.EnergyPJ)
	}
	if a, b := normalize(*gotStats), normalize(*refStats); !reflect.DeepEqual(a, b) {
		t.Errorf("%s: stats %+v, want %+v", tag, a, b)
	}
}

// TestSearchLocalIdentity: the pure-local fan-out matches mapper.Best for
// K in {1, 2, 7, 16}.
func TestSearchLocalIdentity(t *testing.T) {
	l := workload.ResNet18Suite()[3]
	hw, sp := arch.CaseStudy(), arch.CaseStudySpatial()
	mo := &mapper.Options{Spatial: sp, MaxCandidates: 4000}
	ref, refStats, err := mapper.Best(context.Background(), &l, hw, mo)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 7, 16} {
		cand, stats, err := fabric.Search(context.Background(), &l, hw, mo, &fabric.Options{Shards: k})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		assertSameSearch(t, "local", ref, refStats, cand, stats)
	}
}

// TestSearchRemoteIdentity: shards executed by real servemodel nodes (one
// healthy, plus a failover case with a dead node first in rotation) still
// reproduce the local search exactly.
func TestSearchRemoteIdentity(t *testing.T) {
	l := workload.ResNet18Suite()[3]
	hw, sp := arch.CaseStudy(), arch.CaseStudySpatial()
	mo := &mapper.Options{Spatial: sp, MaxCandidates: 4000}
	ref, refStats, err := mapper.Best(context.Background(), &l, hw, mo)
	if err != nil {
		t.Fatal(err)
	}

	node := quietServer(t)
	dead := httptest.NewServer(nil)
	dead.Close()

	cases := []struct {
		name string
		fo   fabric.Options
	}{
		{"one-node", fabric.Options{Shards: 4, Nodes: []string{node.URL}, ArchName: "casestudy"}},
		{"two-nodes", fabric.Options{Shards: 7, Nodes: []string{node.URL, node.URL}, ArchName: "casestudy"}},
		{"failover", fabric.Options{Shards: 3, Nodes: []string{dead.URL, node.URL}, ArchName: "casestudy", NoLocalFallback: true}},
		{"inline-arch", fabric.Options{Shards: 4, Nodes: []string{node.URL}}},
		{"local-fallback", fabric.Options{Shards: 2, Nodes: []string{dead.URL}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cand, stats, err := fabric.Search(context.Background(), &l, hw, mo, &tc.fo)
			if err != nil {
				t.Fatal(err)
			}
			assertSameSearch(t, tc.name, ref, refStats, cand, stats)
		})
	}

	// All nodes dead and local fallback disabled: the search must fail.
	_, _, err = fabric.Search(context.Background(), &l, hw, mo,
		&fabric.Options{Shards: 2, Nodes: []string{dead.URL}, ArchName: "casestudy", NoLocalFallback: true})
	if err == nil {
		t.Fatal("expected failure with every node dead and no local fallback")
	}
	if !strings.Contains(err.Error(), "failed on all") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestSearchStealIdentity: every executor-pool shape — fewer executors than
// shards (queue + tail stealing), surplus executors (immediate splitting),
// stealing disabled — reproduces mapper.Best bit for bit, capped and
// uncapped, with and without the symmetry reduction. The steal schedule is
// timing-dependent by nature; the merged result must not be.
func TestSearchStealIdentity(t *testing.T) {
	l := workload.ResNet18Suite()[3]
	hw, sp := arch.CaseStudy(), arch.CaseStudySpatial()
	for _, mc := range []struct {
		name string
		mo   mapper.Options
	}{
		{"capped", mapper.Options{Spatial: sp, MaxCandidates: 4000}},
		{"noreduce-capped", mapper.Options{Spatial: sp, MaxCandidates: 4000, NoReduce: true}},
	} {
		t.Run(mc.name, func(t *testing.T) {
			ref, refStats, err := mapper.Best(context.Background(), &l, hw, &mc.mo)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 2, 7, 16} {
				execs := k / 2
				if execs < 1 {
					execs = 1
				}
				for _, tc := range []struct {
					tag string
					fo  fabric.Options
				}{
					{"queue", fabric.Options{Shards: k, Executors: execs}},
					{"surplus", fabric.Options{Shards: k, Executors: k + 2}},
					{"nosteal", fabric.Options{Shards: k, Executors: execs, NoSteal: true}},
				} {
					var steals atomic.Int64
					tc.fo.Steals = &steals
					cand, stats, err := fabric.Search(context.Background(), &l, hw, &mc.mo, &tc.fo)
					if err != nil {
						t.Fatalf("k=%d %s: %v", k, tc.tag, err)
					}
					assertSameSearch(t, tc.tag, ref, refStats, cand, stats)
					if tc.fo.NoSteal && steals.Load() != 0 {
						t.Errorf("k=%d: %d steals with NoSteal set", k, steals.Load())
					}
				}
			}
		})
	}
}

// TestSearchRemoteSteal: a forced steal against a real servemodel node. The
// node holds every shard walk open (ShardDelay), so when one executor runs
// dry the victim is still inside its delay window and the steal POST lands
// deterministically: the search must report at least one steal, the node's
// steals counter must move, and the result must still match mapper.Best
// exactly.
func TestSearchRemoteSteal(t *testing.T) {
	s := serve.New(serve.Config{
		Logger:     slog.New(slog.NewTextHandler(io.Discard, nil)),
		ShardDelay: 200 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	l := workload.ResNet18Suite()[3]
	hw, sp := arch.CaseStudy(), arch.CaseStudySpatial()
	mo := &mapper.Options{Spatial: sp, MaxCandidates: 4000}
	ref, refStats, err := mapper.Best(context.Background(), &l, hw, mo)
	if err != nil {
		t.Fatal(err)
	}
	var steals atomic.Int64
	cand, stats, err := fabric.Search(context.Background(), &l, hw, mo, &fabric.Options{
		Shards: 3, Executors: 2, Nodes: []string{ts.URL}, ArchName: "casestudy", Steals: &steals,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameSearch(t, "remote-steal", ref, refStats, cand, stats)
	if steals.Load() == 0 {
		t.Fatal("forced-steal schedule landed no steal")
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	found := false
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "servemodel_fabric_steals_total ") {
			found = true
			if strings.TrimPrefix(line, "servemodel_fabric_steals_total ") == "0" {
				t.Errorf("node reports zero steals after a landed steal")
			}
		}
	}
	if !found {
		t.Error("servemodel_fabric_steals_total missing from /metrics")
	}
}

// TestSearchViaServeEndpoint: a sharded /v1/search on a coordinator node
// whose peers execute the shards answers byte-identically (modulo the
// trajectory-dependent "pruned" stat) to an unsharded search.
func TestSearchViaServeEndpoint(t *testing.T) {
	peer := quietServer(t)
	coord := serve.New(serve.Config{
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
		Peers:  []string{peer.URL},
	})
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)

	l := workload.ResNet18Suite()[3]
	hw, sp := arch.CaseStudy(), arch.CaseStudySpatial()
	mo := &mapper.Options{Spatial: sp, MaxCandidates: 4000}
	ref, _, err := mapper.Best(context.Background(), &l, hw, mo)
	if err != nil {
		t.Fatal(err)
	}
	cand, stats, err := fabric.Search(context.Background(), &l, hw, mo,
		&fabric.Options{Shards: 4, Nodes: []string{cts.URL}, ArchName: "casestudy", Tenant: "fabric-test"})
	if err != nil {
		t.Fatal(err)
	}
	if cand.Mapping.Temporal.String() != ref.Mapping.Temporal.String() || cand.Result.CCTotal != ref.Result.CCTotal {
		t.Fatalf("served shard result diverged: %q cc=%v, want %q cc=%v",
			cand.Mapping.Temporal.String(), cand.Result.CCTotal, ref.Mapping.Temporal.String(), ref.Result.CCTotal)
	}
	_ = stats
}

// TestSearchCancellation: canceling mid-search aborts promptly with the
// context's error and leaks no goroutines — neither the local shard workers
// nor the fan-out goroutines.
func TestSearchCancellation(t *testing.T) {
	l := workload.NewConv2D("big", 4, 128, 128, 28, 28, 3, 3)
	lowered := workload.Im2Col(l)
	hw, sp := arch.CaseStudy(), arch.CaseStudySpatial()
	mo := &mapper.Options{Spatial: sp, MaxCandidates: 2_000_000, NoReduce: true}

	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		_, _, err := fabric.Search(ctx, &lowered, hw, mo, &fabric.Options{Shards: 7})
		cancel()
		if err == nil {
			t.Fatal("expected cancellation error")
		}
		if ctx.Err() == nil {
			t.Fatalf("search failed before the deadline: %v", err)
		}
	}
	// Goroutine counts settle asynchronously; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
