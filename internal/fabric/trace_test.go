package fabric_test

// Tracing contract tests: spans are pure observation (bit-identical search
// with tracing on vs off, under -race via the package's race target), the
// span tree is well-formed (children nest inside parents on one clock),
// shard-walk position ranges tile the plan disjointly and exhaustively for
// any steal schedule, and the assembled critical-path report's categories
// sum to the coordinator root's wall time exactly.

import (
	"context"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/fabric"
	"repro/internal/mapper"
	"repro/internal/otrace"
	"repro/internal/workload"
)

// tracedSearch runs one sharded search with a live trace and returns the
// search outputs plus the recorded spans.
func tracedSearch(t *testing.T, fo *fabric.Options) (*mapper.Candidate, *mapper.Stats, otrace.WireTrace) {
	return tracedSearchIn(t, fo, otrace.TraceID{})
}

// tracedSearchIn pins the trace ID when non-zero (span IDs hash the trace
// ID, so cross-run ID comparisons need a fixed trace).
func tracedSearchIn(t *testing.T, fo *fabric.Options, tr otrace.TraceID) (*mapper.Candidate, *mapper.Stats, otrace.WireTrace) {
	t.Helper()
	l := workload.ResNet18Suite()[3]
	hw, sp := arch.CaseStudy(), arch.CaseStudySpatial()
	mo := &mapper.Options{Spatial: sp, MaxCandidates: 4000}
	rec := otrace.NewRecorder("coord", 0, 0)
	ctx, root := rec.JoinTrace(context.Background(), tr, otrace.SpanID{}, "fabric.search", "fabric")
	root.SetTid(1)
	cand, stats, err := fabric.Search(ctx, &l, hw, mo, fo)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	w, ok := rec.Export(root.TraceID())
	if !ok {
		t.Fatal("trace not recorded")
	}
	return cand, stats, w
}

// TestFabricTraceBitIdentity: the traced search returns exactly what the
// untraced one does.
func TestFabricTraceBitIdentity(t *testing.T) {
	l := workload.ResNet18Suite()[3]
	hw, sp := arch.CaseStudy(), arch.CaseStudySpatial()
	mo := &mapper.Options{Spatial: sp, MaxCandidates: 4000}
	fo := &fabric.Options{Shards: 7, Executors: 3}
	ref, refStats, err := fabric.Search(context.Background(), &l, hw, mo, fo)
	if err != nil {
		t.Fatal(err)
	}
	cand, stats, _ := tracedSearch(t, &fabric.Options{Shards: 7, Executors: 3})
	assertSameSearch(t, "traced-vs-untraced", ref, refStats, cand, stats)
}

// spanIndex maps exported spans by ID and groups walk spans.
func spanIndex(w otrace.WireTrace) (byID map[string]otrace.WireSpan, walks []otrace.WireSpan) {
	byID = map[string]otrace.WireSpan{}
	for _, s := range w.Spans {
		byID[s.ID] = s
	}
	for _, s := range w.Spans {
		if s.Name == "shard.walk" {
			walks = append(walks, s)
		}
	}
	return byID, walks
}

// TestFabricSpanTreeInvariants: every span has a recorded parent (except
// the root), children nest inside their parent's window (same clock, so
// exact up to the recorded durations), and walk ranges tile the plan.
func TestFabricSpanTreeInvariants(t *testing.T) {
	for _, tc := range []struct {
		name string
		fo   fabric.Options
	}{
		{"nosteal", fabric.Options{Shards: 5, Executors: 5, NoSteal: true}},
		{"steal", fabric.Options{Shards: 5, Executors: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var steals atomic.Int64
			fo := tc.fo
			fo.Steals = &steals
			_, _, w := tracedSearch(t, &fo)
			byID, walks := spanIndex(w)

			var root otrace.WireSpan
			for _, s := range w.Spans {
				if s.Parent == "" {
					if root.ID != "" {
						t.Fatalf("two parentless spans: %s and %s", root.ID, s.ID)
					}
					root = s
				}
			}
			if root.Name != "fabric.search" {
				t.Fatalf("root span %q", root.Name)
			}
			const slop = int64(2 * time.Millisecond) // clock-read slop between span creation and parent End
			for _, s := range w.Spans {
				if s.Parent == "" {
					continue
				}
				p, ok := byID[s.Parent]
				if !ok {
					t.Fatalf("span %s (%s) has unknown parent %s", s.ID, s.Name, s.Parent)
				}
				if s.StartNS < p.StartNS-slop || s.StartNS+s.DurNS > p.StartNS+p.DurNS+slop {
					t.Errorf("span %s (%s) [%d,+%d] escapes parent %s [%d,+%d]",
						s.ID, s.Name, s.StartNS, s.DurNS, p.Name, p.StartNS, p.DurNS)
				}
			}

			// Walk ranges [pos_lo, pos_done) must be disjoint and exhaustive
			// over [0, total): the tracing view of the fabric's ownership
			// contract, for any steal schedule.
			var plan otrace.WireSpan
			for _, s := range w.Spans {
				if s.Name == "fabric.plan" {
					plan = s
				}
			}
			total, err := strconv.ParseInt(plan.Attrs["total"], 10, 64)
			if err != nil || total <= 0 {
				t.Fatalf("fabric.plan total attr: %v (%v)", plan.Attrs, err)
			}
			type rng struct{ lo, hi int64 }
			var owned []rng
			for _, s := range walks {
				lo, err1 := strconv.ParseInt(s.Attrs["pos_lo"], 10, 64)
				done, err2 := strconv.ParseInt(s.Attrs["pos_done"], 10, 64)
				if err1 != nil || err2 != nil {
					t.Fatalf("walk span attrs: %v", s.Attrs)
				}
				if done > lo {
					owned = append(owned, rng{lo: lo, hi: done})
				}
			}
			for i := range owned {
				for j := range owned {
					if i < j && owned[i].lo < owned[j].hi && owned[j].lo < owned[i].hi {
						t.Fatalf("walk ranges overlap: %v and %v", owned[i], owned[j])
					}
				}
			}
			var covered int64
			for _, r := range owned {
				covered += r.hi - r.lo
			}
			if covered != total {
				t.Fatalf("walk ranges cover %d of %d positions", covered, total)
			}
			if tc.name == "steal" && steals.Load() > 0 {
				var sawTrunc bool
				for _, s := range walks {
					if s.Attrs["truncated"] == "true" {
						sawTrunc = true
					}
				}
				if !sawTrunc {
					t.Errorf("steals landed (%d) but no walk span marked truncated", steals.Load())
				}
			}
		})
	}
}

// TestFabricCriticalPathIdentity: assembling a real local run attributes
// every nanosecond of root wall time, exactly.
func TestFabricCriticalPathIdentity(t *testing.T) {
	_, _, w := tracedSearch(t, &fabric.Options{Shards: 6, Executors: 3})
	a, err := otrace.Assemble("coord", []otrace.WireTrace{w})
	if err != nil {
		t.Fatal(err)
	}
	rep := a.Report
	if rep.DiffNS != 0 || rep.SumNS != rep.WallNS {
		t.Fatalf("accounting identity broken: sum=%d wall=%d diff=%d", rep.SumNS, rep.WallNS, rep.DiffNS)
	}
	for name, v := range map[string]int64{
		"plan": rep.PlanNS, "queue": rep.QueueNS, "walk": rep.WalkNS,
		"steal": rep.StealNS, "memo": rep.MemoNS, "network": rep.NetworkNS,
		"merge": rep.MergeNS, "other": rep.OtherNS,
	} {
		if v < 0 {
			t.Errorf("%s is negative: %d", name, v)
		}
	}
	if rep.WalkNS == 0 {
		t.Errorf("local sharded search attributed no walk time")
	}
	// The pool is walking almost the whole window; "other" (untracked
	// coordinator time) must stay a modest fraction of wall.
	if rep.WallNS > 0 && rep.OtherNS > rep.WallNS/2 {
		t.Errorf("other = %d ns of %d ns wall (> 50%%)", rep.OtherNS, rep.WallNS)
	}
}

// TestFabricTraceDeterministicIDs: two identical no-steal runs under the
// same trace ID produce the same span IDs for the same logical spans
// (walks keyed by position range), regardless of executor interleaving.
func TestFabricTraceDeterministicIDs(t *testing.T) {
	tr, _ := otrace.ParseTraceID("00112233445566778899aabbccddeeff")
	ids := func() map[string]string {
		_, _, w := tracedSearchIn(t, &fabric.Options{Shards: 5, Executors: 5, NoSteal: true}, tr)
		m := map[string]string{}
		for _, s := range w.Spans {
			switch s.Name {
			case "shard.walk":
				m[s.Name+"/"+s.Attrs["pos_lo"]] = s.ID
			case "fabric.plan", "fabric.merge":
				m[s.Name] = s.ID
			}
		}
		return m
	}
	a, b := ids(), ids()
	if len(a) != len(b) {
		t.Fatalf("span sets differ: %d vs %d", len(a), len(b))
	}
	for k, id := range a {
		if b[k] != id {
			t.Errorf("span %s: id %s vs %s across identical runs", k, id, b[k])
		}
	}
}
