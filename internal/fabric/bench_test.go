package fabric_test

// Shard-count scaling on a BenchmarkMapperSearch-class workload, measured two
// ways because wall clock only shows fan-out speedup when the machine (or
// fleet) actually has K executors:
//
//   - BenchmarkFabricSearch/k=K: wall clock of the whole fabric.Search call —
//     plan, K concurrent shards, merge. On a single-CPU runner this is flat
//     in K (the shards time-slice one core); on an K-core machine or an
//     K-node fleet it tracks the critical path below.
//   - BenchmarkFabricShardWork/k=K: the K shards of one planned search
//     executed serially. ns/op is the TOTAL sharded work — its flatness
//     across K demonstrates the partition duplicates nothing — and the
//     critpath-ns/op metric is the slowest single shard: the wall clock a
//     fleet with >= K executors would see, which is what must fall
//     near-linearly in K.
//
// `make bench` records both in BENCH_mapper.json; EXPERIMENTS.md reads the
// scaling off critpath-ns/op.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/fabric"
	"repro/internal/mapper"
	"repro/internal/workload"
)

func fabricBenchProblem() (workload.Layer, *mapper.Options) {
	// BenchmarkMapperSearch's matmul, but with the candidate budget above the
	// ~19.5k orderings of the full walk. An early cap concentrates all visited
	// work into the first few full-depth prefixes — single block multisets
	// whose permutations are the partition's indivisible unit — and no planner
	// can balance a walk whose budget lives inside one multiset. Uncapped, the
	// heaviest multiset is ~4% of the walk and the greedy partition is near
	// even for every K measured here. NoSurrogate keeps the per-ordering cost
	// uniform: each shard otherwise warms its own surrogate from scratch, a
	// trajectory-dependent overhead that grows the total work with K and
	// would blur the partition's own balance.
	layer := workload.NewMatMul("search", 128, 128, 128)
	mo := &mapper.Options{
		Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 50_000,
		NoReduce: true, NoSurrogate: true,
	}
	return layer, mo
}

func BenchmarkFabricSearch(b *testing.B) {
	layer, mo := fabricBenchProblem()
	hw := arch.CaseStudy()
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			fo := &fabric.Options{Shards: k}
			for i := 0; i < b.N; i++ {
				if _, _, err := fabric.Search(context.Background(), &layer, hw, mo, fo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFabricShardWork(b *testing.B) {
	layer, mo := fabricBenchProblem()
	benchShardWork(b, layer, mo)
}

// BenchmarkFabricShardWorkCapped is the cap-concentrated case the prefix
// partition cannot balance: a 3x3 conv whose full-depth walk holds a single
// block multiset of 20160 distinct orderings, with the candidate budget capped
// at 50k so that one multiset is ~40% of all visited work. Any plan that can
// only cut between prefixes must hand some shard that whole multiset
// (critpath >= 40% of total at every K >= 3); sub-multiset ranges cut through
// it, so critpath-ns/op should keep falling ~linearly in K.
func BenchmarkFabricShardWorkCapped(b *testing.B) {
	layer := workload.NewConv2D("capped", 1, 128, 128, 14, 14, 3, 3)
	mo := &mapper.Options{
		Spatial: arch.CaseStudySpatial(), BWAware: true, MaxCandidates: 50_000,
		NoReduce: true, NoSurrogate: true,
	}
	benchShardWork(b, layer, mo)
}

func benchShardWork(b *testing.B, layer workload.Layer, mo *mapper.Options) {
	hw := arch.CaseStudy()
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			plan, err := mapper.PlanShards(context.Background(), &layer, hw, mo, k)
			if err != nil {
				b.Fatal(err)
			}
			var critSum time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var crit time.Duration
				for _, spec := range plan.Specs {
					t0 := time.Now()
					if _, err := mapper.BestShard(context.Background(), &layer, hw, mo, spec); err != nil {
						b.Fatal(err)
					}
					if d := time.Since(t0); d > crit {
						crit = d
					}
				}
				critSum += crit
			}
			b.ReportMetric(float64(critSum.Nanoseconds())/float64(b.N), "critpath-ns/op")
		})
	}
}
