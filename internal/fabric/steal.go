package fabric

// The executor pool and its deterministic work stealing. The plan's specs
// are a work queue; E executors drain it, and an executor that runs dry
// while siblings are still walking STEALS: it stops the running shard with
// the most estimated remaining work at its exact frontier (ShardControl
// locally, POST /v1/shard/steal remotely), and the victim's truncated
// outcome hands back a Resume spec that SplitShard re-plans into pieces for
// the idle executors. Every steal replaces one owned position range with
// ranges that tile it exactly, so the union of all outcomes stays disjoint
// and exhaustive and the merge is bit-identical for ANY steal schedule —
// including none. Only wall-clock changes.

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/mapper"
	"repro/internal/otrace"
	"repro/internal/workload"
)

// minStealVisits is the smallest estimated remainder worth stealing:
// below it the re-plan replay costs more than the imbalance, and a victim
// about to finish would just hand back empty pieces.
const minStealVisits = 256

// workItem is one queued shard execution: the spec plus the exclusive
// global visited position where its range ends (the next spec's
// WalkedBefore, or the plan total), which prices the steal heuristic.
type workItem struct {
	spec mapper.ShardSpec
	end  int64
	idx  int       // originating plan shard, for node rotation and error text
	enq  time.Time // when the item entered the queue (admission-wait span)
}

// posKey names the item's owned position range — the deterministic span key
// that keeps a shard's spans identical across executor interleavings.
func (it workItem) posKey() string {
	return fmt.Sprintf("%d:%d", it.spec.WalkedBefore, it.end)
}

// runningShard is one in-flight execution the pool can steal from.
type runningShard struct {
	item workItem
	ctl  *mapper.ShardControl // local execution: the live truncation handle
	node string               // remote execution: node currently walking it
	sid  string               // remote execution: steal handle on that node
	// stolen marks a victim already asked to stop; it is never picked twice.
	stolen bool
}

// remaining estimates the victim's unwalked visits: against the live
// frontier locally, pessimistically against the range start remotely (the
// wire has no frontier feed, and an overestimate only biases WHICH victim
// is stopped — never the merged result).
func (r *runningShard) remaining() int64 {
	if r.ctl != nil {
		return r.item.end - r.ctl.Frontier()
	}
	return r.item.end - r.item.spec.WalkedBefore
}

// pool runs one sharded search over a bounded executor set.
type pool struct {
	l       *workload.Layer
	a       *arch.Arch
	o       *mapper.Options
	fo      *Options
	nodes   []string
	baseReq *ShardRequest
	ctx     context.Context
	cancel  context.CancelFunc

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []workItem
	running []*runningShard
	outs    []*mapper.ShardOutcome
	pending int // queued + running; 0 means the search is drained
	idle    int // executors blocked waiting for work
	err     error
	steals  int64
	sidSeq  int64
	sidBase string
}

func newPool(ctx context.Context, cancel context.CancelFunc, l *workload.Layer, a *arch.Arch, o *mapper.Options, fo *Options, nodes []string, baseReq *ShardRequest, plan *mapper.ShardPlan) *pool {
	p := &pool{l: l, a: a, o: o, fo: fo, nodes: nodes, baseReq: baseReq, ctx: ctx, cancel: cancel}
	p.cond = sync.NewCond(&p.mu)
	var buf [6]byte
	if _, err := rand.Read(buf[:]); err == nil {
		p.sidBase = hex.EncodeToString(buf[:])
	} else {
		p.sidBase = "shard"
	}
	now := time.Now()
	for i, sp := range plan.Specs {
		end := plan.Total
		if i+1 < len(plan.Specs) {
			end = plan.Specs[i+1].WalkedBefore
		}
		p.queue = append(p.queue, workItem{spec: sp, end: end, idx: i, enq: now})
	}
	p.pending = len(p.queue)
	return p
}

// executor is one worker loop: drain the queue; when it runs dry with work
// still in flight, nominate a steal victim and sleep until a completion
// refills the queue or ends the search.
func (p *pool) executor(tid int) {
	for {
		p.mu.Lock()
		for {
			if p.err != nil || p.pending == 0 || p.ctx.Err() != nil {
				p.mu.Unlock()
				return
			}
			if len(p.queue) > 0 {
				break
			}
			p.maybeStealLocked()
			p.idle++
			p.cond.Wait()
			p.idle--
		}
		it := p.queue[0]
		p.queue = p.queue[1:]
		r := &runningShard{item: it}
		if len(p.nodes) == 0 {
			r.ctl = mapper.NewShardControl(it.spec)
		} else {
			p.sidSeq++
			r.sid = fmt.Sprintf("%s-%d", p.sidBase, p.sidSeq)
		}
		p.running = append(p.running, r)
		p.mu.Unlock()
		otrace.RecordSpan(p.ctx, "queue.wait", otrace.CatQueue, it.posKey(),
			it.enq, time.Since(it.enq), otrace.Attr{K: "shard", V: fmt.Sprintf("%d", it.idx)})
		out, err := p.exec(r, tid)
		p.finish(r, out, err)
	}
}

// maybeStealLocked (mu held) nominates the running shard with the largest
// estimated remainder and asks it to stop. Local victims truncate at their
// published frontier; remote victims get a best-effort steal POST — if it
// is lost or late the victim simply completes whole and the stealer wakes
// on that completion instead, so no failure mode can stall the pool.
func (p *pool) maybeStealLocked() {
	if p.fo.NoSteal {
		return
	}
	var best *runningShard
	var bestRem int64
	for _, r := range p.running {
		if r.stolen || (r.ctl == nil && r.node == "") {
			continue
		}
		rem := r.remaining()
		if rem < minStealVisits {
			continue
		}
		if best == nil || rem > bestRem {
			best, bestRem = r, rem
		}
	}
	if best == nil {
		return
	}
	best.stolen = true
	if best.ctl != nil {
		_, sp := otrace.StartSpanKeyed(p.ctx, "steal.truncate", otrace.CatSteal, best.item.posKey())
		best.ctl.Truncate(best.ctl.Frontier())
		sp.SetAttr("victim", best.item.posKey())
		sp.End()
		return
	}
	go p.postSteal(best.node, best.sid, best.item.posKey())
}

// postSteal fires the remote stop request. Best effort by design: any
// error just means the victim finishes its whole range.
func (p *pool) postSteal(node, sid, victim string) {
	body, err := json.Marshal(&StealRequest{Sid: sid})
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(p.ctx, 10*time.Second)
	defer cancel()
	sctx, sp := otrace.StartSpanKeyed(ctx, "steal.rpc", otrace.CatSteal, node+"#"+victim)
	sp.SetAttr("node", node)
	sp.SetAttr("victim", victim)
	defer sp.End()
	url := strings.TrimRight(node, "/") + "/v1/shard/steal"
	hreq, err := http.NewRequestWithContext(sctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return
	}
	hreq.Header.Set("Content-Type", "application/json")
	if p.fo.Tenant != "" {
		hreq.Header.Set("X-Tenant", p.fo.Tenant)
	}
	otrace.Inject(sctx, hreq.Header)
	client := p.fo.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(hreq)
	if err != nil {
		sp.SetAttr("outcome", "error")
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	sp.SetAttr("outcome", resp.Status)
}

// exec runs one work item: locally under its ShardControl, or remotely with
// node rotation and failover exactly like the pre-steal fabric. The local
// fallback after total remote failure gets a fresh control so the pool can
// still steal from it.
func (p *pool) exec(r *runningShard, tid int) (*mapper.ShardOutcome, error) {
	if r.ctl != nil {
		return p.execLocal(r, tid)
	}
	req := *p.baseReq
	req.Shard = r.item.spec
	req.Sid = r.sid
	body, err := json.Marshal(&req)
	if err != nil {
		return nil, fmt.Errorf("fabric: encode shard %d: %w", r.item.idx, err)
	}
	var lastErr error
	for attempt := 0; attempt < len(p.nodes); attempt++ {
		node := p.nodes[(r.item.idx+attempt)%len(p.nodes)]
		p.mu.Lock()
		r.node = node
		p.mu.Unlock()
		rctx, sp := otrace.StartSpanKeyed(p.ctx, "shard.rpc", otrace.CatRPC, node+"#"+r.item.posKey())
		sp.SetTid(tid)
		sp.SetAttr("node", node)
		sp.SetAttr("pos_lo", fmt.Sprintf("%d", r.item.spec.WalkedBefore))
		sp.SetAttr("pos_hi", fmt.Sprintf("%d", r.item.end))
		out, err := postShard(rctx, p.fo, node, body)
		if err == nil {
			sp.SetAttr("outcome", "ok")
			sp.End()
			return out, nil
		}
		sp.SetAttr("outcome", "error")
		sp.End()
		lastErr = err
		if p.ctx.Err() != nil {
			return nil, p.ctx.Err()
		}
		slog.Warn("fabric: shard node attempt failed",
			"shard", r.item.idx, "node", node, "err", err,
			"trace_id", otrace.IDString(p.ctx), "tenant", p.fo.Tenant)
	}
	if !p.fo.NoLocalFallback {
		slog.Warn("fabric: all nodes failed; falling back to local execution",
			"shard", r.item.idx, "nodes", len(p.nodes), "err", lastErr,
			"trace_id", otrace.IDString(p.ctx), "tenant", p.fo.Tenant)
		ctl := mapper.NewShardControl(r.item.spec)
		p.mu.Lock()
		r.node = ""
		r.ctl = ctl
		p.mu.Unlock()
		return p.execLocal(r, tid)
	}
	return nil, fmt.Errorf("fabric: shard %d failed on all %d node(s): %w", r.item.idx, len(p.nodes), lastErr)
}

// execLocal walks the shard in-process under its ShardControl, recording
// the walk window with the position-range attributes the span-invariant
// tests tile against the plan: [pos_lo, pos_done) is exactly what this
// execution walked (pos_done < pos_hi when a steal truncated it — the
// re-queued pieces own the rest).
func (p *pool) execLocal(r *runningShard, tid int) (*mapper.ShardOutcome, error) {
	wctx, sp := otrace.StartSpanKeyed(p.ctx, "shard.walk", otrace.CatWalk, r.item.posKey())
	sp.SetTid(tid)
	sp.SetAttr("pos_lo", fmt.Sprintf("%d", r.item.spec.WalkedBefore))
	sp.SetAttr("pos_hi", fmt.Sprintf("%d", r.item.end))
	out, err := mapper.BestShardControlled(wctx, p.l, p.a, p.o, r.item.spec, r.ctl)
	done := r.item.end
	if err == nil && out.Truncated {
		done = out.Resume.WalkedBefore
		sp.SetAttr("truncated", "true")
	}
	if err == nil {
		sp.SetAttr("pos_done", fmt.Sprintf("%d", done))
	} else {
		sp.SetAttr("outcome", "error")
	}
	sp.End()
	return out, err
}

// finish books one completed execution. A truncated outcome is a landed
// steal: the Resume remainder is re-planned into one piece per waiting
// executor (plus one for this, now free, executor) and re-queued; the
// pieces tile the remainder exactly, so ownership stays disjoint and
// exhaustive.
func (p *pool) finish(r *runningShard, out *mapper.ShardOutcome, err error) {
	var pieces []mapper.ShardSpec
	if err == nil && out.Truncated {
		p.mu.Lock()
		parts := p.idle + 1
		p.mu.Unlock()
		if parts < 2 {
			parts = 2
		}
		_, sp := otrace.StartSpanKeyed(p.ctx, "steal.split", otrace.CatSteal, r.item.posKey())
		pieces, err = mapper.SplitShard(p.ctx, p.l, p.a, p.o, out.Resume, parts)
		sp.SetAttr("pieces", fmt.Sprintf("%d", len(pieces)))
		sp.End()
		slog.Debug("fabric: steal landed",
			"victim", r.item.posKey(), "pieces", len(pieces),
			"trace_id", otrace.IDString(p.ctx), "tenant", p.fo.Tenant)
	}
	p.mu.Lock()
	defer func() {
		p.cond.Broadcast()
		p.mu.Unlock()
	}()
	for i, rr := range p.running {
		if rr == r {
			p.running = append(p.running[:i], p.running[i+1:]...)
			break
		}
	}
	if err != nil {
		if p.err == nil {
			p.err = err
		}
		p.cancel()
		return
	}
	p.outs = append(p.outs, out)
	if out.Truncated {
		p.steals++
		now := time.Now()
		for i, sp := range pieces {
			end := r.item.end
			if i+1 < len(pieces) {
				end = pieces[i+1].WalkedBefore
			}
			p.queue = append(p.queue, workItem{spec: sp, end: end, idx: r.item.idx, enq: now})
			p.pending++
		}
	}
	p.pending--
}
