// Package par is the process-wide worker budget shared by every parallel
// construct in this repository: the mapper's evaluation pipeline, the
// network evaluator's per-layer fan-out, the DSE sweeps and the experiment
// grids. All of them draw extra workers from one token pool sized to
// GOMAXPROCS, so nested parallelism (a parallel DSE sweep whose every point
// runs a parallel mapping search) degrades gracefully to inline execution
// instead of oversubscribing the machine with multiplied goroutine pools.
//
// The calling goroutine always counts as the first worker and never needs a
// token; only EXTRA workers are budgeted. An inner construct that finds the
// pool drained simply runs inline on its caller's goroutine, which makes
// nesting deadlock-free by construction.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	// extra is the number of additional worker tokens currently available
	// (budget minus outstanding acquisitions).
	extra atomic.Int64
	// budget is the configured pool size (total workers, including the
	// token-free calling goroutine).
	budget atomic.Int64
)

func init() { SetLimit(runtime.GOMAXPROCS(0)) }

// Limit returns the total worker budget (including the calling goroutine).
func Limit() int { return int(budget.Load()) }

// SetLimit resizes the pool to n total workers (n-1 extra tokens; n < 1 is
// clamped to 1, i.e. fully inline execution). Intended for tests and for
// embedders that want to reserve cores; outstanding tokens are unaffected,
// so shrinking takes effect as running constructs drain.
func SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	old := budget.Swap(int64(n))
	d := int64(n) - old
	if old == 0 {
		d-- // first configuration: the calling goroutine's slot is token-free
	}
	extra.Add(d)
}

// TryAcquire obtains one extra-worker token without blocking. Callers must
// Release the token when the worker exits.
func TryAcquire() bool {
	for {
		v := extra.Load()
		if v <= 0 {
			return false
		}
		if extra.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// AcquireUpTo obtains at most max extra-worker tokens without blocking and
// returns how many it got. Release each when done.
func AcquireUpTo(max int) int {
	got := 0
	for got < max && TryAcquire() {
		got++
	}
	return got
}

// Release returns one token taken with TryAcquire or AcquireUpTo.
func Release() { extra.Add(1) }

// ForEach runs fn(i) for every i in [0, n) with the calling goroutine plus
// as many extra workers as the shared budget allows right now. Iteration
// order across workers is unspecified; fn must be safe for concurrent calls
// with distinct i. ForEach returns when every index has been processed.
func ForEach(n int, fn func(i int)) { ForEachLimit(n, 0, fn) }

// ForEachLimit is ForEach with an explicit worker cap. limit <= 0 selects
// the shared-budget behaviour of ForEach; limit >= 1 forces exactly
// min(limit, n) workers, bypassing the token pool — used by tests that need
// guaranteed concurrency and by callers with their own budget knob.
func ForEachLimit(n, limit int, fn func(i int)) {
	if n <= 0 {
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := next.Add(1) - 1
			if i >= int64(n) {
				return
			}
			fn(int(i))
		}
	}

	extras := 0
	forced := limit >= 1
	if forced {
		if limit > n {
			limit = n
		}
		extras = limit - 1
	} else {
		max := Limit() - 1
		if max > n-1 {
			max = n - 1
		}
		if max > 0 {
			extras = AcquireUpTo(max)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < extras; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !forced {
				defer Release()
			}
			work()
		}()
	}
	work()
	wg.Wait()
}
