package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		hits := make([]int32, n)
		ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestForEachLimitForcedWorkers(t *testing.T) {
	// A forced limit must spawn exactly that many lanes even when the
	// budget is exhausted — that is what makes -race equivalence tests
	// meaningful on a single-CPU machine.
	const n, limit = 64, 4
	var peak, cur atomic.Int64
	done := make(chan struct{})
	ForEachLimit(n, limit, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		if i == 0 {
			// Hold one lane until another has definitely run: with a
			// single lane this would deadlock, proving limit > 1 lanes
			// actually run concurrently.
			<-done
		}
		if i == n-1 {
			close(done)
		}
		cur.Add(-1)
	})
	if p := peak.Load(); p > limit {
		t.Errorf("observed %d concurrent lanes, forced limit %d", p, limit)
	}
}

func TestBudgetAcquireRelease(t *testing.T) {
	old := Limit()
	defer SetLimit(old)

	SetLimit(3) // 1 implicit caller + 2 extra tokens
	if got := AcquireUpTo(10); got != 2 {
		t.Fatalf("AcquireUpTo(10) = %d, want 2", got)
	}
	if TryAcquire() {
		t.Fatal("TryAcquire succeeded on drained budget")
	}
	Release()
	if !TryAcquire() {
		t.Fatal("TryAcquire failed after Release")
	}
	Release()
	Release()
}

func TestForEachNestedDoesNotDeadlock(t *testing.T) {
	old := Limit()
	defer SetLimit(old)
	SetLimit(2)

	var count atomic.Int64
	ForEach(4, func(i int) {
		// Inner loops run inline (or with whatever tokens remain) —
		// never blocking on the exhausted budget.
		ForEach(4, func(j int) { count.Add(1) })
	})
	if count.Load() != 16 {
		t.Fatalf("nested ForEach ran %d units, want 16", count.Load())
	}
}
