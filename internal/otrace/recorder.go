package otrace

import (
	"context"
	"sync"
	"time"
)

// Defaults for NewRecorder's bounds (0 selects them).
const (
	DefaultMaxTraces        = 64
	DefaultMaxSpansPerTrace = 4096
)

// recordedSpan is a completed span inside a trace buffer.
type recordedSpan struct {
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	cat    string
	tid    int
	start  time.Time
	dur    time.Duration
	attrs  []Attr
}

// ordKey counts occurrences of (parent, name, key) for deterministic IDs.
type ordKey struct {
	parent SpanID
	name   string
	key    string
}

// traceBuf is the bounded per-trace span store.
type traceBuf struct {
	spans    []recordedSpan
	ordinals map[ordKey]int
	dropped  int
}

// Recorder keeps completed spans in bounded per-trace buffers. Each
// servemodel node and each coordinator process owns one; GET /v1/trace/{id}
// serves Export. Memory is bounded two ways: at most maxTraces live traces
// (FIFO eviction — a trace storm cannot grow the map) and at most
// maxSpansPerTrace spans per trace (overflow increments Dropped rather than
// growing the slice).
type Recorder struct {
	node string

	mu        sync.Mutex
	traces    map[TraceID]*traceBuf
	order     []TraceID // FIFO eviction order
	maxTraces int
	maxSpans  int
}

// NewRecorder builds a recorder for one node. node labels exported spans
// (it becomes the Perfetto pid row); bounds of 0 take the defaults.
func NewRecorder(node string, maxTraces, maxSpansPerTrace int) *Recorder {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	if maxSpansPerTrace <= 0 {
		maxSpansPerTrace = DefaultMaxSpansPerTrace
	}
	return &Recorder{
		node:      node,
		traces:    make(map[TraceID]*traceBuf),
		maxTraces: maxTraces,
		maxSpans:  maxSpansPerTrace,
	}
}

// Node returns the recorder's node label.
func (r *Recorder) Node() string { return r.node }

// buf returns (creating if needed) the buffer for t, evicting the oldest
// trace when over the trace bound. Callers hold r.mu.
func (r *Recorder) bufLocked(t TraceID) *traceBuf {
	if b, ok := r.traces[t]; ok {
		return b
	}
	for len(r.order) >= r.maxTraces {
		old := r.order[0]
		r.order = r.order[1:]
		delete(r.traces, old)
	}
	b := &traceBuf{ordinals: make(map[ordKey]int)}
	r.traces[t] = b
	r.order = append(r.order, t)
	return b
}

// newSpan allocates a live span with the deterministic ID for the next
// (parent, name, key) occurrence in trace t.
func (r *Recorder) newSpan(t TraceID, parent SpanID, name, cat, key string) *Span {
	r.mu.Lock()
	b := r.bufLocked(t)
	k := ordKey{parent: parent, name: name, key: key}
	ord := b.ordinals[k]
	b.ordinals[k] = ord + 1
	r.mu.Unlock()
	return &Span{
		rec:    r,
		trace:  t,
		id:     spanID(t, parent, name, key, ord),
		parent: parent,
		name:   name,
		cat:    cat,
		start:  time.Now(),
	}
}

// record stores a completed span, honouring the per-trace span bound.
func (r *Recorder) record(s recordedSpan) {
	r.mu.Lock()
	b := r.bufLocked(s.trace)
	if len(b.spans) >= r.maxSpans {
		b.dropped++
	} else {
		b.spans = append(b.spans, s)
	}
	r.mu.Unlock()
}

// StartTrace mints a new trace rooted at a span named name and returns the
// traced context. The caller must End the returned span; on the coordinator
// it is the root whose duration is the wall time the critical-path report
// attributes.
func (r *Recorder) StartTrace(ctx context.Context, name, cat string) (context.Context, *Span) {
	return r.JoinTrace(ctx, NewTraceID(), SpanID{}, name, cat)
}

// JoinTrace opens a span in an existing trace (the HTTP-server side of
// propagation: trace and parent come from the traceparent header). A zero
// parent makes the span a root.
func (r *Recorder) JoinTrace(ctx context.Context, t TraceID, parent SpanID, name, cat string) (context.Context, *Span) {
	if t.IsZero() {
		t = NewTraceID()
	}
	sp := r.newSpan(t, parent, name, cat, "")
	return ContextWith(ctx, sp), sp
}

// WireSpan is one completed span on the wire (JSON for /v1/trace/{id}).
type WireSpan struct {
	ID      string            `json:"id"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	Cat     string            `json:"cat,omitempty"`
	Node    string            `json:"node"`
	Tid     int               `json:"tid,omitempty"`
	StartNS int64             `json:"start_ns"`
	DurNS   int64             `json:"dur_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// WireTrace is one node's view of a trace.
type WireTrace struct {
	TraceID string     `json:"trace_id"`
	Node    string     `json:"node"`
	Spans   []WireSpan `json:"spans"`
	Dropped int        `json:"dropped,omitempty"`
}

// Export snapshots the recorder's spans for trace t (ok=false when the
// trace is unknown — never recorded, or already evicted).
func (r *Recorder) Export(t TraceID) (WireTrace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.traces[t]
	if !ok {
		return WireTrace{}, false
	}
	w := WireTrace{
		TraceID: t.String(),
		Node:    r.node,
		Spans:   make([]WireSpan, 0, len(b.spans)),
		Dropped: b.dropped,
	}
	for _, s := range b.spans {
		ws := WireSpan{
			ID:      s.id.String(),
			Name:    s.name,
			Cat:     s.cat,
			Node:    r.node,
			Tid:     s.tid,
			StartNS: s.start.UnixNano(),
			DurNS:   int64(s.dur),
		}
		if !s.parent.IsZero() {
			ws.Parent = s.parent.String()
		}
		if len(s.attrs) > 0 {
			ws.Attrs = make(map[string]string, len(s.attrs))
			for _, a := range s.attrs { // last write wins
				ws.Attrs[a.K] = a.V
			}
		}
		w.Spans = append(w.Spans, ws)
	}
	return w, true
}
