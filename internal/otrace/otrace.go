// Package otrace is the fleet's distributed-tracing layer: lightweight
// spans with deterministic IDs, W3C-style trace-context propagation across
// servemodel nodes, a bounded per-trace recorder each node exposes at
// GET /v1/trace/{id}, and a coordinator-side assembler that merges the
// per-node span sets into one Perfetto trace plus a critical-path report
// whose per-category durations sum to the coordinator's wall time exactly
// (DESIGN.md §16).
//
// The contract mirrors internal/obs's hook contract: tracing is strictly
// observational. With no active trace in the context every Start* call
// returns a nil *Span, whose methods are all no-ops — the traced code pays
// one context lookup per span site and allocates nothing — and with tracing
// on, spans never touch search state, so results are bit-identical either
// way (guarded by TestFabricTraceBitIdentity in internal/fabric).
//
// Span identity is deterministic, not random: a span's ID is an FNV-1a hash
// of (trace ID, parent span ID, name, key, occurrence ordinal). Two runs of
// the same sharded search produce the same IDs for the same logical spans —
// the plan span, the walk span of a given position range — no matter how
// goroutines interleave, because the ordinal is counted per (parent, name,
// key) and the key carries the distinguishing identity (a shard's position
// range, a node URL). Only genuinely schedule-dependent spans (two identical
// retries of one RPC) fall back to the ordinal.
package otrace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"net/http"
	"sync"
	"time"
)

// TraceID names one distributed trace (16 bytes, hex on the wire).
type TraceID [16]byte

// SpanID names one span within a trace (8 bytes, hex on the wire).
type SpanID [8]byte

// IsZero reports an unset trace ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports an unset span ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// ParseTraceID decodes the 32-hex-char wire form.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 2*len(t) {
		return t, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return t, !t.IsZero()
}

// ParseSpanID decodes the 16-hex-char wire form.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if len(s) != 2*len(id) {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, false
	}
	return id, !id.IsZero()
}

// NewTraceID draws a random trace ID.
func NewTraceID() TraceID {
	var t TraceID
	if _, err := rand.Read(t[:]); err != nil {
		// Degrade to a clock-derived ID; uniqueness only matters per node.
		binary.BigEndian.PutUint64(t[:8], uint64(time.Now().UnixNano()))
		binary.BigEndian.PutUint64(t[8:], uint64(time.Now().UnixNano())^0x9e3779b97f4a7c15)
	}
	return t
}

// TraceparentHeader is the W3C trace-context header the fleet propagates.
const TraceparentHeader = "traceparent"

// Traceparent renders the W3C header value: version 00, sampled flag set.
func Traceparent(t TraceID, s SpanID) string {
	return "00-" + t.String() + "-" + s.String() + "-01"
}

// ParseTraceparent decodes a W3C traceparent value ("00-<trace>-<span>-<flags>").
func ParseTraceparent(v string) (TraceID, SpanID, bool) {
	// 2 (version) + 1 + 32 (trace) + 1 + 16 (span) + 1 + 2 (flags)
	if len(v) < 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return TraceID{}, SpanID{}, false
	}
	t, ok := ParseTraceID(v[3:35])
	if !ok {
		return TraceID{}, SpanID{}, false
	}
	s, ok := ParseSpanID(v[36:52])
	if !ok {
		return TraceID{}, SpanID{}, false
	}
	return t, s, true
}

// Inject sets the traceparent header from the active span in ctx (no-op
// without one).
func Inject(ctx context.Context, h http.Header) {
	if sp := FromContext(ctx); sp != nil {
		h.Set(TraceparentHeader, Traceparent(sp.trace, sp.id))
	}
}

// Extract reads the traceparent header.
func Extract(h http.Header) (TraceID, SpanID, bool) {
	return ParseTraceparent(h.Get(TraceparentHeader))
}

// fnv1a64 hashes b with FNV-1a (the repository's standard cheap hash).
func fnv1a64(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

const fnvOffset64 = 14695981039346656037

// spanID derives the deterministic ID of the ordinal-th (parent, name, key)
// child.
func spanID(t TraceID, parent SpanID, name, key string, ordinal int) SpanID {
	h := fnv1a64(fnvOffset64, t[:])
	h = fnv1a64(h, parent[:])
	h = fnv1a64(h, []byte(name))
	h = fnv1a64(h, []byte{0})
	h = fnv1a64(h, []byte(key))
	var ord [8]byte
	binary.BigEndian.PutUint64(ord[:], uint64(ordinal))
	h = fnv1a64(h, ord[:])
	var id SpanID
	binary.BigEndian.PutUint64(id[:], h)
	if id.IsZero() { // vanishingly unlikely; zero means "no span"
		id[7] = 1
	}
	return id
}

// Attr is one span attribute. Attributes are small diagnostic strings (a
// position range, a tier name, an outcome) — never load-bearing state.
type Attr struct {
	K, V string
}

// Span is one live span. A nil *Span is valid and turns every method into a
// no-op — the tracing-off fast path.
type Span struct {
	rec    *Recorder
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	cat    string
	start  time.Time

	mu    sync.Mutex
	tid   int
	attrs []Attr
	ended bool
}

// TraceID returns the span's trace (zero for nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// ID returns the span's ID (zero for nil).
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// SetAttr attaches a key=value attribute (last write wins at export).
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{K: k, V: v})
	s.mu.Unlock()
}

// SetTid pins the span to a logical track (an executor index). 0 lets the
// assembler assign lanes by overlap.
func (s *Span) SetTid(tid int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tid = tid
	s.mu.Unlock()
}

// End closes the span and records it. Safe to call once; later calls no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	tid := s.tid
	attrs := s.attrs
	s.mu.Unlock()
	s.rec.record(recordedSpan{
		trace:  s.trace,
		id:     s.id,
		parent: s.parent,
		name:   s.name,
		cat:    s.cat,
		tid:    tid,
		start:  s.start,
		dur:    end.Sub(s.start),
		attrs:  attrs,
	})
}

// ctxKey carries the active span through a context.
type ctxKey struct{}

// FromContext returns the active span, or nil when the context is untraced.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// ContextWith returns ctx with sp as the active span (sp == nil detaches).
func ContextWith(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// StartSpan opens a child of the active span in ctx and returns the child
// context. Without an active span it returns (ctx, nil): tracing off.
func StartSpan(ctx context.Context, name, cat string) (context.Context, *Span) {
	return StartSpanKeyed(ctx, name, cat, "")
}

// StartSpanKeyed is StartSpan with an identity key folded into the span ID:
// spans whose name repeats but whose logical identity differs (one walk span
// per shard position range) stay deterministically distinguishable no matter
// which executor picks them up first.
func StartSpanKeyed(ctx context.Context, name, cat, key string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.rec.newSpan(parent.trace, parent.id, name, cat, key)
	return ContextWith(ctx, sp), sp
}

// RecordSpan records an already-measured window as a complete child span of
// the active span (no-op when untraced): queue waits and other intervals
// whose start predates the decision to record them.
func RecordSpan(ctx context.Context, name, cat, key string, start time.Time, dur time.Duration, attrs ...Attr) {
	parent := FromContext(ctx)
	if parent == nil {
		return
	}
	sp := parent.rec.newSpan(parent.trace, parent.id, name, cat, key)
	sp.start = start
	sp.mu.Lock()
	sp.attrs = append(sp.attrs, attrs...)
	sp.ended = true
	sAttrs := sp.attrs
	sp.mu.Unlock()
	sp.rec.record(recordedSpan{
		trace:  sp.trace,
		id:     sp.id,
		parent: sp.parent,
		name:   sp.name,
		cat:    sp.cat,
		start:  start,
		dur:    dur,
		attrs:  sAttrs,
	})
}

// IDString returns the active trace's hex ID, or "" — the log-correlation
// helper: call sites append a trace_id attr to slog lines when non-empty.
func IDString(ctx context.Context) string {
	if sp := FromContext(ctx); sp != nil {
		return sp.trace.String()
	}
	return ""
}
