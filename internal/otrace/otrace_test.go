package otrace

import (
	"context"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTraceID()
	sp := spanID(tr, SpanID{}, "root", "", 0)
	v := Traceparent(tr, sp)
	gt, gs, ok := ParseTraceparent(v)
	if !ok || gt != tr || gs != sp {
		t.Fatalf("round trip failed: %q -> %v %v %v", v, gt, gs, ok)
	}
	for _, bad := range []string{
		"", "00", "00-zzzz", v[:len(v)-4],
		"00-00000000000000000000000000000000-0000000000000000-01",
		"00_" + v[3:],
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

func TestDeterministicSpanIDs(t *testing.T) {
	tr, _ := ParseTraceID("0123456789abcdef0123456789abcdef")
	run := func() []SpanID {
		r := NewRecorder("n", 0, 0)
		ctx, root := r.JoinTrace(context.Background(), tr, SpanID{}, "root", "fabric")
		var ids []SpanID
		ids = append(ids, root.ID())
		// Same logical spans, any creation order of distinct keys would
		// still match because the key carries identity; ordinals only
		// separate true repeats.
		for i := 0; i < 3; i++ {
			_, sp := StartSpanKeyed(ctx, "walk", CatWalk, "0:100")
			ids = append(ids, sp.ID())
			sp.End()
		}
		_, sp := StartSpanKeyed(ctx, "walk", CatWalk, "100:200")
		ids = append(ids, sp.ID())
		sp.End()
		root.End()
		return ids
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("len %d vs %d", len(a), len(b))
	}
	seen := map[SpanID]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("span %d differs across runs: %v vs %v", i, a[i], b[i])
		}
		if seen[a[i]] {
			t.Errorf("span %d id %v not unique", i, a[i])
		}
		seen[a[i]] = true
	}
}

func TestNilFastPath(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "x", CatWalk)
	if sp != nil {
		t.Fatalf("expected nil span on untraced ctx")
	}
	if ctx2 != ctx {
		t.Fatalf("untraced StartSpan must return ctx unchanged")
	}
	// All methods no-op on nil.
	sp.SetAttr("k", "v")
	sp.SetTid(3)
	sp.End()
	if !sp.TraceID().IsZero() || !sp.ID().IsZero() {
		t.Fatalf("nil span ids must be zero")
	}
	if got := IDString(ctx); got != "" {
		t.Fatalf("IDString on untraced ctx = %q", got)
	}
	RecordSpan(ctx, "q", CatQueue, "", time.Now(), time.Millisecond) // must not panic
}

func TestRecorderBounds(t *testing.T) {
	r := NewRecorder("n", 2, 3)
	mk := func(seed byte) TraceID {
		var tr TraceID
		tr[0] = seed
		tr[15] = 1
		return tr
	}
	t1, t2, t3 := mk(1), mk(2), mk(3)
	for _, tr := range []TraceID{t1, t2, t3} {
		ctx, root := r.JoinTrace(context.Background(), tr, SpanID{}, "root", "fabric")
		for i := 0; i < 5; i++ {
			_, sp := StartSpan(ctx, "w", CatWalk)
			sp.End()
		}
		root.End()
	}
	if _, ok := r.Export(t1); ok {
		t.Fatalf("t1 should have been evicted (FIFO, maxTraces=2)")
	}
	w, ok := r.Export(t3)
	if !ok {
		t.Fatalf("t3 missing")
	}
	if len(w.Spans) != 3 {
		t.Fatalf("span cap: got %d spans, want 3", len(w.Spans))
	}
	if w.Dropped != 3 { // 5 walk spans + root, cap 3 -> 3 dropped
		t.Fatalf("dropped = %d, want 3", w.Dropped)
	}
}

func TestExportAttrsAndParents(t *testing.T) {
	r := NewRecorder("node-a", 0, 0)
	ctx, root := r.StartTrace(context.Background(), "root", "fabric")
	if IDString(ctx) != root.TraceID().String() {
		t.Fatalf("IDString mismatch")
	}
	cctx, child := StartSpan(ctx, "plan", CatPlan)
	child.SetAttr("shards", "8")
	child.SetAttr("shards", "9") // last write wins
	child.SetTid(2)
	_, grand := StartSpan(cctx, "memo.get", CatMemo)
	grand.End()
	child.End()
	RecordSpan(ctx, "queue.wait", CatQueue, "", time.Now().Add(-time.Millisecond), time.Millisecond,
		Attr{K: "pos", V: "1"})
	root.End()

	w, ok := r.Export(root.TraceID())
	if !ok {
		t.Fatalf("export failed")
	}
	if w.Node != "node-a" || w.TraceID != root.TraceID().String() {
		t.Fatalf("wire header: %+v", w)
	}
	byName := map[string]WireSpan{}
	for _, s := range w.Spans {
		byName[s.Name] = s
	}
	if len(byName) != 4 {
		t.Fatalf("want 4 spans, got %v", byName)
	}
	if byName["plan"].Parent != byName["root"].ID {
		t.Fatalf("plan parent mismatch")
	}
	if byName["memo.get"].Parent != byName["plan"].ID {
		t.Fatalf("memo parent mismatch")
	}
	if byName["queue.wait"].Parent != byName["root"].ID {
		t.Fatalf("queue parent mismatch")
	}
	if byName["plan"].Attrs["shards"] != "9" {
		t.Fatalf("attr last-write-wins failed: %v", byName["plan"].Attrs)
	}
	if byName["plan"].Tid != 2 {
		t.Fatalf("tid not exported")
	}
	if byName["queue.wait"].DurNS != int64(time.Millisecond) {
		t.Fatalf("RecordSpan duration %d", byName["queue.wait"].DurNS)
	}
	if byName["root"].Parent != "" {
		t.Fatalf("root must be parentless")
	}
}

func TestInjectExtract(t *testing.T) {
	r := NewRecorder("n", 0, 0)
	ctx, root := r.StartTrace(context.Background(), "root", "fabric")
	h := make(map[string][]string)
	Inject(ctx, h)
	tr, sp, ok := Extract(h)
	if !ok || tr != root.TraceID() || sp != root.ID() {
		t.Fatalf("inject/extract mismatch")
	}
	var none map[string][]string = map[string][]string{}
	if _, _, ok := Extract(none); ok {
		t.Fatalf("empty header extracted")
	}
	Inject(context.Background(), h) // untraced: must not panic
	root.End()
}
