package otrace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Span categories the critical-path report recognises. Everything the
// fabric path records carries one of these (the coordinator/serve roots
// carry "fabric"/"serve", which the sweep ignores — they are containers,
// not work).
const (
	CatPlan  = "plan"  // fabric.PlanShards
	CatQueue = "queue" // admission / executor-pool queue wait
	CatWalk  = "walk"  // shard walk window
	CatSteal = "steal" // steal truncate / split / re-queue
	CatMemo  = "memo"  // memo.Store get/put
	CatRPC   = "rpc"   // coordinator-side remote shard call (whole RTT)
	CatMerge = "merge" // fabric.MergeShards
)

// sweep precedence, most specific first: when several categorised spans
// overlap an instant of coordinator wall time, the instant goes to the
// first of these that is active. RPC last: an RPC span only wins instants
// where the coordinator is doing nothing but waiting on the wire, and that
// time is then re-split into remote queue/walk/network by remote-measured
// durations.
var sweepOrder = []string{CatMerge, CatPlan, CatMemo, CatQueue, CatSteal, CatWalk, CatRPC}

// Report is the critical-path attribution: every nanosecond of the
// coordinator root span's duration lands in exactly one bucket, so
// Plan+Queue+Walk+Steal+Memo+Network+Merge+Other == Wall (DiffNS is kept
// only as a tripwire; it is zero by construction).
type Report struct {
	TraceID   string   `json:"trace_id"`
	WallNS    int64    `json:"wall_ns"`
	PlanNS    int64    `json:"plan_ns"`
	QueueNS   int64    `json:"queue_ns"`
	WalkNS    int64    `json:"walk_ns"`
	StealNS   int64    `json:"steal_ns"`
	MemoNS    int64    `json:"memo_ns"`
	NetworkNS int64    `json:"network_ns"`
	MergeNS   int64    `json:"merge_ns"`
	OtherNS   int64    `json:"other_ns"`
	SumNS     int64    `json:"sum_ns"`
	DiffNS    int64    `json:"diff_ns"`
	Spans     int      `json:"spans"`
	Dropped   int      `json:"dropped,omitempty"`
	Nodes     []string `json:"nodes"`
}

// Format renders the report as the human table latmodel prints to stderr.
func (rep Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path, trace %s (%d spans, %d nodes)\n", rep.TraceID, rep.Spans, len(rep.Nodes))
	row := func(name string, ns int64) {
		pct := 0.0
		if rep.WallNS > 0 {
			pct = 100 * float64(ns) / float64(rep.WallNS)
		}
		fmt.Fprintf(&b, "  %-10s %12.3f ms  %5.1f%%\n", name, float64(ns)/1e6, pct)
	}
	row("plan", rep.PlanNS)
	row("queue", rep.QueueNS)
	row("walk", rep.WalkNS)
	row("steal", rep.StealNS)
	row("memo", rep.MemoNS)
	row("network", rep.NetworkNS)
	row("merge", rep.MergeNS)
	row("other", rep.OtherNS)
	fmt.Fprintf(&b, "  %-10s %12.3f ms  (wall %0.3f ms, diff %d ns)\n",
		"sum", float64(rep.SumNS)/1e6, float64(rep.WallNS)/1e6, rep.DiffNS)
	return b.String()
}

// Assembled is the merged cross-node view of one trace.
type Assembled struct {
	TraceID string
	Events  []obs.TraceEvent
	Report  Report
}

// JSON renders the Chrome trace object format — the traceEvents array
// Perfetto loads, with the critical-path report carried as an extra
// top-level key (the object format permits unknown keys).
func (a *Assembled) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		TraceEvents  []obs.TraceEvent `json:"traceEvents"`
		CriticalPath Report           `json:"critical_path"`
	}{a.Events, a.Report}, "", " ")
}

// interval is one categorised window on the coordinator clock, ns relative
// to the root start.
type interval struct {
	lo, hi int64
	cat    string
}

// Assemble merges per-node wire traces into one Perfetto timeline and the
// critical-path report. coordinator names the node whose parentless span is
// the wall-time root; remote node clocks are aligned for display by
// centring each node's earliest RPC-child root inside its coordinator RPC
// span (only durations — never cross-node timestamps — feed the report, so
// clock skew cannot corrupt attribution).
func Assemble(coordinator string, traces []WireTrace) (*Assembled, error) {
	var all []WireSpan
	var traceID string
	dropped := 0
	for _, t := range traces {
		if traceID == "" {
			traceID = t.TraceID
		} else if t.TraceID != traceID {
			return nil, fmt.Errorf("otrace: mixed traces %s and %s", traceID, t.TraceID)
		}
		dropped += t.Dropped
		all = append(all, t.Spans...)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("otrace: no spans for trace %s", traceID)
	}

	// Root: the parentless coordinator span (longest wins if several).
	var root *WireSpan
	for i := range all {
		s := &all[i]
		if s.Node == coordinator && s.Parent == "" {
			if root == nil || s.DurNS > root.DurNS {
				root = s
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("otrace: no root span on coordinator %q", coordinator)
	}

	rep := criticalPath(coordinator, root, all)
	rep.TraceID = traceID
	rep.Dropped = dropped
	rep.Spans = len(all)
	nodeSet := map[string]bool{}
	for _, s := range all {
		nodeSet[s.Node] = true
	}
	for n := range nodeSet {
		rep.Nodes = append(rep.Nodes, n)
	}
	sort.Strings(rep.Nodes)

	events := perfetto(coordinator, root, rep.Nodes, all)
	return &Assembled{TraceID: traceID, Events: events, Report: rep}, nil
}

// criticalPath runs the precedence sweep over coordinator spans and splits
// the RPC bucket by remote durations.
func criticalPath(coordinator string, root *WireSpan, all []WireSpan) Report {
	wall := root.DurNS
	rep := Report{WallNS: wall}
	if wall <= 0 {
		return rep
	}
	t0 := root.StartNS

	// Categorised coordinator intervals, clipped to the root window.
	var ivs []interval
	rpcIDs := map[string]bool{}
	for i := range all {
		s := &all[i]
		if s.Node != coordinator || s.ID == root.ID {
			continue
		}
		known := false
		for _, c := range sweepOrder {
			if s.Cat == c {
				known = true
				break
			}
		}
		if !known {
			continue
		}
		lo, hi := s.StartNS-t0, s.StartNS-t0+s.DurNS
		if lo < 0 {
			lo = 0
		}
		if hi > wall {
			hi = wall
		}
		if s.Cat == CatRPC {
			rpcIDs[s.ID] = true
		}
		if hi <= lo {
			continue
		}
		ivs = append(ivs, interval{lo: lo, hi: hi, cat: s.Cat})
	}

	// Elementary-segment sweep: at each segment the highest-precedence
	// active category wins; gaps are "other". Every ns of [0, wall) is
	// assigned exactly once, so the identity holds by construction.
	catIdx := map[string]int{}
	for i, c := range sweepOrder {
		catIdx[c] = i
	}
	type edge struct {
		at    int64
		cat   int
		delta int
	}
	edges := make([]edge, 0, 2*len(ivs))
	for _, iv := range ivs {
		ci := catIdx[iv.cat]
		edges = append(edges, edge{at: iv.lo, cat: ci, delta: 1}, edge{at: iv.hi, cat: ci, delta: -1})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].at < edges[j].at })
	got := map[string]int64{}
	active := make([]int, len(sweepOrder))
	cursor := int64(0)
	account := func(upto int64) {
		if upto <= cursor {
			return
		}
		cat := "other"
		for i, c := range sweepOrder {
			if active[i] > 0 {
				cat = c
				break
			}
		}
		got[cat] += upto - cursor
		cursor = upto
	}
	for _, e := range edges {
		account(e.at)
		active[e.cat] += e.delta
	}
	account(wall)

	// Split pure-RPC time into remote queue/walk + network RTT using
	// skew-free remote durations: for each RPC span's remote subtree,
	// sum handler duration d, queue-wait q, walk w; the RPC-won time
	// splits proportionally, network taking the exact remainder.
	var sumD, sumQ, sumW int64
	children := map[string][]*WireSpan{}
	for i := range all {
		s := &all[i]
		if s.Parent != "" {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	for i := range all {
		s := &all[i]
		if s.Node == coordinator || !rpcIDs[s.Parent] {
			continue
		}
		// s is a remote root under a coordinator RPC span.
		sumD += s.DurNS
		stack := []*WireSpan{s}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			switch cur.Cat {
			case CatQueue:
				sumQ += cur.DurNS
			case CatWalk:
				sumW += cur.DurNS
			}
			stack = append(stack, children[cur.ID]...)
		}
	}
	tRPC := got[CatRPC]
	var walkAdd, queueAdd int64
	if tRPC > 0 && sumD > 0 {
		walkAdd = int64(float64(tRPC) * float64(sumW) / float64(sumD))
		queueAdd = int64(float64(tRPC) * float64(sumQ) / float64(sumD))
		if walkAdd > tRPC {
			walkAdd = tRPC
		}
		if walkAdd+queueAdd > tRPC {
			queueAdd = tRPC - walkAdd
		}
	}
	netAdd := tRPC - walkAdd - queueAdd // exact remainder: identity preserved

	rep.PlanNS = got[CatPlan]
	rep.QueueNS = got[CatQueue] + queueAdd
	rep.WalkNS = got[CatWalk] + walkAdd
	rep.StealNS = got[CatSteal]
	rep.MemoNS = got[CatMemo]
	rep.NetworkNS = netAdd
	rep.MergeNS = got[CatMerge]
	rep.OtherNS = got["other"]
	rep.SumNS = rep.PlanNS + rep.QueueNS + rep.WalkNS + rep.StealNS +
		rep.MemoNS + rep.NetworkNS + rep.MergeNS + rep.OtherNS
	rep.DiffNS = rep.SumNS - rep.WallNS
	return rep
}

// perfetto renders the spans as Chrome trace events: one pid per node
// (coordinator first), tids as recorded (executor lanes), ts in
// microseconds relative to the root start. Remote clocks are aligned by
// centring each node's earliest RPC-child root inside its RPC span.
func perfetto(coordinator string, root *WireSpan, nodes []string, all []WireSpan) []obs.TraceEvent {
	pidOf := map[string]int{coordinator: 1}
	next := 2
	for _, n := range nodes {
		if _, ok := pidOf[n]; !ok {
			pidOf[n] = next
			next++
		}
	}

	// Per-node display offset (added to StartNS). Coordinator: -t0.
	t0 := root.StartNS
	offset := map[string]int64{coordinator: -t0}
	spanByID := map[string]*WireSpan{}
	for i := range all {
		spanByID[all[i].ID] = &all[i]
	}
	for i := range all {
		s := &all[i]
		if _, ok := offset[s.Node]; ok {
			continue
		}
		if s.Parent == "" {
			continue
		}
		p, ok := spanByID[s.Parent]
		if !ok || p.Node == s.Node || p.Cat != CatRPC {
			continue
		}
		// Centre the remote root inside its RPC span.
		mid := p.StartNS - t0 + (p.DurNS-s.DurNS)/2
		offset[s.Node] = mid - s.StartNS
	}
	for _, n := range nodes {
		if _, ok := offset[n]; !ok {
			offset[n] = -t0 // same-host fallback: share the coordinator clock
		}
	}

	var events []obs.TraceEvent
	meta := func(pid, tid int, what, name string) {
		events = append(events, obs.TraceEvent{
			Name: what, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	tids := map[[2]int]bool{}
	for _, n := range nodes {
		meta(pidOf[n], 0, "process_name", "node "+n)
	}
	for i := range all {
		s := &all[i]
		pid := pidOf[s.Node]
		tid := s.Tid
		if tid <= 0 {
			tid = 1
		}
		tids[[2]int{pid, tid}] = true
		var args map[string]any
		if len(s.Attrs) > 0 {
			args = make(map[string]any, len(s.Attrs)+1)
			for k, v := range s.Attrs {
				args[k] = v
			}
			args["span_id"] = s.ID
		} else {
			args = map[string]any{"span_id": s.ID}
		}
		events = append(events, obs.TraceEvent{
			Name: s.Name, Ph: "X",
			Ts:  float64(s.StartNS+offset[s.Node]) / 1e3,
			Dur: float64(s.DurNS) / 1e3,
			Pid: pid, Tid: tid, Cat: s.Cat, Args: args,
		})
	}
	for key := range tids {
		name := "lane"
		if key[1] > 1 {
			name = fmt.Sprintf("executor %d", key[1]-1)
		}
		meta(key[0], key[1], "thread_name", name)
	}
	sort.SliceStable(events, func(i, j int) bool {
		mi, mj := events[i].Ph == "M", events[j].Ph == "M"
		if mi != mj {
			return mi
		}
		if mi {
			if events[i].Pid != events[j].Pid {
				return events[i].Pid < events[j].Pid
			}
			return events[i].Tid < events[j].Tid
		}
		return events[i].Ts < events[j].Ts
	})
	return events
}
