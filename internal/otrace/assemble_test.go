package otrace

import (
	"encoding/json"
	"strings"
	"testing"
)

// synthetic two-node trace: coordinator plans, queues, walks locally,
// makes one RPC (with remote queue+walk inside), merges — with a gap of
// unattributed time to exercise "other".
func syntheticTraces() (string, []WireTrace) {
	const trace = "0123456789abcdef0123456789abcdef"
	coord := WireTrace{
		TraceID: trace, Node: "coord",
		Spans: []WireSpan{
			{ID: "aa01", Name: "fabric.search", Cat: "fabric", Node: "coord", StartNS: 1000, DurNS: 1000},
			{ID: "aa02", Parent: "aa01", Name: "fabric.plan", Cat: CatPlan, Node: "coord", StartNS: 1000, DurNS: 100},
			{ID: "aa03", Parent: "aa01", Name: "queue.wait", Cat: CatQueue, Node: "coord", StartNS: 1100, DurNS: 50},
			{ID: "aa04", Parent: "aa01", Name: "shard.walk", Cat: CatWalk, Node: "coord", StartNS: 1150, DurNS: 300, Tid: 2,
				Attrs: map[string]string{"pos_lo": "0", "pos_hi": "10"}},
			// RPC overlaps the tail of the local walk by 100ns; walk wins
			// those instants, so only 300ns of pure-RPC time remains.
			{ID: "aa05", Parent: "aa01", Name: "shard.rpc", Cat: CatRPC, Node: "coord", StartNS: 1350, DurNS: 400, Tid: 3},
			{ID: "aa06", Parent: "aa01", Name: "fabric.merge", Cat: CatMerge, Node: "coord", StartNS: 1800, DurNS: 150},
			// Gaps [1750,1800) and [1950,2000) -> 100ns other.
		},
	}
	// Remote handler: 200ns total, 40 queue + 120 walk => of the 300ns
	// pure-RPC time, walk share 300*120/200=180, queue share 300*40/200=60,
	// network = 300-180-60 = 60.
	remote := WireTrace{
		TraceID: trace, Node: "nodeB",
		Spans: []WireSpan{
			{ID: "bb01", Parent: "aa05", Name: "serve.shard", Cat: "serve", Node: "nodeB", StartNS: 500000, DurNS: 200},
			{ID: "bb02", Parent: "bb01", Name: "admission.wait", Cat: CatQueue, Node: "nodeB", StartNS: 500000, DurNS: 40},
			{ID: "bb03", Parent: "bb01", Name: "shard.walk", Cat: CatWalk, Node: "nodeB", StartNS: 500040, DurNS: 120},
		},
	}
	return trace, []WireTrace{coord, remote}
}

func TestAssembleCriticalPath(t *testing.T) {
	trace, traces := syntheticTraces()
	a, err := Assemble("coord", traces)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	rep := a.Report
	if rep.TraceID != trace {
		t.Fatalf("trace id %q", rep.TraceID)
	}
	if rep.WallNS != 1000 {
		t.Fatalf("wall %d", rep.WallNS)
	}
	// Identity is exact by construction.
	if rep.DiffNS != 0 || rep.SumNS != rep.WallNS {
		t.Fatalf("accounting identity broken: sum=%d wall=%d diff=%d", rep.SumNS, rep.WallNS, rep.DiffNS)
	}
	want := map[string]int64{
		"plan":    100,
		"queue":   50 + 60,
		"walk":    300 + 180, // local walk wins its 100ns overlap with the rpc
		"steal":   0,
		"memo":    0,
		"network": 60,
		"merge":   150,
		"other":   100,
	}
	got := map[string]int64{
		"plan": rep.PlanNS, "queue": rep.QueueNS, "walk": rep.WalkNS,
		"steal": rep.StealNS, "memo": rep.MemoNS, "network": rep.NetworkNS,
		"merge": rep.MergeNS, "other": rep.OtherNS,
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s = %d, want %d", k, got[k], w)
		}
	}
	if len(rep.Nodes) != 2 || rep.Nodes[0] != "coord" || rep.Nodes[1] != "nodeB" {
		t.Fatalf("nodes %v", rep.Nodes)
	}
	if rep.Spans != 9 {
		t.Fatalf("spans %d", rep.Spans)
	}
	if !strings.Contains(rep.Format(), "critical path") {
		t.Fatalf("Format missing header")
	}
}

func TestAssemblePerfettoEvents(t *testing.T) {
	_, traces := syntheticTraces()
	a, err := Assemble("coord", traces)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	blob, err := a.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var obj struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		CriticalPath Report `json:"critical_path"`
	}
	if err := json.Unmarshal(blob, &obj); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if obj.CriticalPath.WallNS != 1000 {
		t.Fatalf("critical_path not embedded: %+v", obj.CriticalPath)
	}
	pids := map[int]bool{}
	var rootTs, remoteTs float64
	var sawMetaCoord, sawMetaB bool
	lastTs := -1.0
	metaDone := false
	for _, e := range obj.TraceEvents {
		if e.Ph == "M" {
			if metaDone {
				t.Fatalf("metadata event after slice events")
			}
			if name, _ := e.Args["name"].(string); name == "node coord" {
				sawMetaCoord = true
			} else if name == "node nodeB" {
				sawMetaB = true
			}
			continue
		}
		metaDone = true
		if e.Ts < lastTs {
			t.Fatalf("ts not monotonic: %f after %f", e.Ts, lastTs)
		}
		lastTs = e.Ts
		pids[e.Pid] = true
		switch e.Name {
		case "fabric.search":
			rootTs = e.Ts
		case "serve.shard":
			remoteTs = e.Ts
		case "shard.walk":
			if e.Pid == 1 {
				if e.Args["pos_lo"] != "0" || e.Args["pos_hi"] != "10" {
					t.Fatalf("walk attrs lost: %v", e.Args)
				}
				if e.Tid != 2 {
					t.Fatalf("executor tid lost: %d", e.Tid)
				}
			}
		}
	}
	if !sawMetaCoord || !sawMetaB {
		t.Fatalf("missing process_name metadata")
	}
	if !pids[1] || !pids[2] {
		t.Fatalf("want pids 1 (coord) and 2 (nodeB), got %v", pids)
	}
	if rootTs != 0 {
		t.Fatalf("root not at ts 0: %f", rootTs)
	}
	// Remote clock (500000ns) realigned: serve.shard centred in its rpc
	// span [350,750): start = 350 + (400-200)/2 = 450ns = 0.45us.
	if remoteTs != 0.45 {
		t.Fatalf("remote alignment: serve.shard ts = %f, want 0.45", remoteTs)
	}
}

func TestAssembleErrors(t *testing.T) {
	_, traces := syntheticTraces()
	if _, err := Assemble("coord", nil); err == nil {
		t.Fatalf("empty assemble must fail")
	}
	if _, err := Assemble("nosuch", traces); err == nil {
		t.Fatalf("missing coordinator root must fail")
	}
	bad := append([]WireTrace{}, traces...)
	bad = append(bad, WireTrace{TraceID: "ffffffffffffffffffffffffffffffff", Node: "x",
		Spans: []WireSpan{{ID: "cc01", Name: "x", Node: "x"}}})
	if _, err := Assemble("coord", bad); err == nil {
		t.Fatalf("mixed traces must fail")
	}
}
