package sim

import (
	"testing"
)

// EDF is the smarter arbiter: across a spread of contention levels it must
// never lose to FIFO by more than noise, and the two must agree when no
// port is contended.
func TestArbitrationPolicies(t *testing.T) {
	configs := [][3]int64{
		{64, 32, 24},                // contended
		{64, 16, 16},                // heavily contended
		{1 << 20, 1 << 20, 1 << 20}, // uncontended
	}
	for _, cfg := range configs {
		p := microProblem(cfg[0], cfg[1], cfg[2], false)
		edf, err := Simulate(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		fifo, err := Simulate(p, &Options{FIFOArbitration: true})
		if err != nil {
			t.Fatal(err)
		}
		if edf.Cycles > fifo.Cycles {
			t.Errorf("cfg %v: EDF (%d) slower than FIFO (%d)", cfg, edf.Cycles, fifo.Cycles)
		}
	}
	// Uncontended: identical.
	p := microProblem(1<<20, 1<<20, 1<<20, false)
	edf, _ := Simulate(p, nil)
	fifo, _ := Simulate(p, &Options{FIFOArbitration: true})
	if edf.Cycles != fifo.Cycles {
		t.Errorf("uncontended EDF %d != FIFO %d", edf.Cycles, fifo.Cycles)
	}
}

// FIFO results remain deterministic.
func TestFIFODeterminism(t *testing.T) {
	p := microProblem(64, 32, 24, false)
	a, err := Simulate(p, &Options{FIFOArbitration: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(p, &Options{FIFOArbitration: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Error("FIFO non-deterministic")
	}
}
