// Package sim is a cycle-level reference simulator for the abstract
// accelerator machine of package arch executing a mapping from package
// mapping. It is the repository's substitute for the paper's RTL
// simulation of the taped-out accelerator (Section IV): an INDEPENDENT
// implementation of the machine's timing semantics against which the
// analytical model of package core is validated.
//
// # Machine semantics
//
// Compute proceeds in steps; in each step the spatial array consumes one
// point of the innermost temporal iteration (one cycle when nothing
// stalls). Every unit memory (operand, level) holds one tile per
// turnaround period of Mem_CC steps. Tiles move between levels through
// transfer jobs:
//
//   - a fill (W/I) of the tile used in period k may transfer during the
//     allowed window inside period k-1 — the whole period for
//     double-buffered destinations or relevant-top-loop single buffers,
//     only the trailing keep-out-free X_REQ cycles otherwise — and must
//     finish before period k begins or compute stalls;
//   - an output drain is released when its tile's last accumulation
//     period ends and must finish within the next period's allowed window;
//   - a partial-sum read-back must land before its tile's accumulation
//     resumes, and depends on its own earlier drain.
//
// Each physical memory port serves one job at a time at full port
// bandwidth, earliest-deadline-first among released jobs; a transfer
// occupies its read-side and write-side ports as two independent jobs
// (store-and-forward staging). Consecutive periods that reuse an identical
// tile are transferred once — the simulator never re-fetches data that is
// already resident.
//
// The simulator makes no use of the analytical stall equations; it only
// shares the structural mapping arithmetic (tile sizes, turnaround
// periods), so agreement between the two on total cycles is a meaningful
// validation result.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loops"
)

// Options tunes a simulation run.
type Options struct {
	// MaxCycles aborts runaway simulations (0 = 50x the stall-free bound).
	MaxCycles int64
	// FIFOArbitration serves each port's jobs in release order instead of
	// earliest-deadline-first — the simpler hardware arbiter, for
	// sensitivity studies of the simulator's scheduling assumption.
	FIFOArbitration bool
}

// Result is the outcome of one simulation.
type Result struct {
	// Cycles is the total wall-clock cycle count: preload + compute
	// (with stalls) + offload drain tail.
	Cycles int64
	// ComputeStall counts cycles where compute was blocked waiting on a
	// transfer after preload completed.
	ComputeStall int64
	// PreloadCycles is the time before the first compute step.
	PreloadCycles int64
	// DrainTail is the time after the last compute step.
	DrainTail int64
	// PortBusy counts busy cycles per "mem.port".
	PortBusy map[string]int64
	// Jobs is the number of transfer jobs executed.
	Jobs int
}

// tile is a unit of data whose arrival may gate compute.
type tile struct {
	deadline int64 // compute step before which the tile must be ready (-1: none)
	pending  int   // outstanding jobs
}

// job is one port occupation: moving bits through a single port.
type job struct {
	port     *port
	bits     int64
	release  int64 // earliest compute step at which the transfer window opens
	deadline int64 // compute step the dependent tile is needed at (-1: offload)
	tile     *tile
	parent   *tile // must be ready before this job may start (nil: none)
	seq      int   // tie-breaker for determinism
}

// port is one physical memory port.
type port struct {
	name    string
	bwBits  int64
	pending []*job // not yet released, sorted by release step
	cursor  int
	ready   jobHeap // released, waiting for service (EDF)
	current *job
	curDone int64 // absolute cycle the current job completes
	busy    int64
}

// jobHeap orders jobs by (deadline, release, seq) — earliest deadline
// first, offload jobs (deadline -1) last — or by (release, seq) in FIFO
// mode.
type jobHeap struct {
	items []*job
	fifo  bool
}

func (h *jobHeap) Len() int { return len(h.items) }
func (h *jobHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if !h.fifo {
		da, db := a.deadline, b.deadline
		if da < 0 {
			da = 1 << 62
		}
		if db < 0 {
			db = 1 << 62
		}
		if da != db {
			return da < db
		}
	}
	if a.release != b.release {
		return a.release < b.release
	}
	return a.seq < b.seq
}
func (h *jobHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *jobHeap) Push(x any)    { h.items = append(h.items, x.(*job)) }
func (h *jobHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// deadlineHeap orders tiles by deadline.
type deadlineHeap []*tile

func (h deadlineHeap) Len() int           { return len(h) }
func (h deadlineHeap) Less(i, j int) bool { return h[i].deadline < h[j].deadline }
func (h deadlineHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *deadlineHeap) Push(x any)        { *h = append(*h, x.(*tile)) }
func (h *deadlineHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Simulate runs the problem to completion and returns the measured cycles.
func Simulate(p *core.Problem, opt *Options) (*Result, error) {
	if p == nil || p.Layer == nil || p.Arch == nil || p.Mapping == nil {
		return nil, fmt.Errorf("sim: nil problem component")
	}
	if opt == nil {
		opt = &Options{}
	}
	b := newBuilder(p)
	if err := b.buildJobs(); err != nil {
		return nil, err
	}
	return b.run(opt)
}

// builder assembles ports, tiles and jobs for one problem.
type builder struct {
	p     *core.Problem
	ports map[string]*port
	jobs  int
	tiles []*tile
	steps int64 // CCSpatial
}

func newBuilder(p *core.Problem) *builder {
	return &builder{
		p:     p,
		ports: map[string]*port{},
		steps: p.Mapping.CCSpatial(),
	}
}

func (b *builder) portFor(mem *arch.Memory, acc arch.Access) (*port, error) {
	pp, idx, err := mem.Port(acc)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s.%s", mem.Name, mem.Ports[idx].Name)
	if pt, ok := b.ports[key]; ok {
		return pt, nil
	}
	pt := &port{name: key, bwBits: pp.BWBits, curDone: -1}
	b.ports[key] = pt
	return pt, nil
}

// addTransfer creates the two port jobs of one tile movement.
func (b *builder) addTransfer(srcMem, dstMem *arch.Memory, op loops.Operand,
	elems, release, deadline int64, parent *tile) (*tile, error) {
	bits := elems * int64(b.p.Layer.Precision.Bits(op))
	rdPort, err := b.portFor(srcMem, arch.Access{Operand: op, Write: false})
	if err != nil {
		return nil, err
	}
	wrPort, err := b.portFor(dstMem, arch.Access{Operand: op, Write: true})
	if err != nil {
		return nil, err
	}
	t := &tile{deadline: deadline, pending: 2}
	b.tiles = append(b.tiles, t)
	for _, pt := range []*port{rdPort, wrPort} {
		b.jobs++
		j := &job{port: pt, bits: bits, release: release, deadline: deadline,
			tile: t, parent: parent, seq: b.jobs}
		pt.pending = append(pt.pending, j)
	}
	return t, nil
}

// buildJobs walks every inter-level interface and emits transfer jobs.
func (b *builder) buildJobs() error {
	m := b.p.Mapping
	st := b.p.Layer.Strides
	for _, op := range loops.AllOperands {
		chain := b.p.Arch.ChainMems(op)
		var parentPre *tile // preload chaining down the hierarchy
		for l := len(chain) - 2; l >= 0; l-- {
			lower, upper := chain[l], chain[l+1]
			memData := m.MemData(op, l, st)
			memCC := m.MemCC(op, l)
			z := m.Periods(op, l)
			topRun := int64(1)
			if !lower.DoubleBuffered {
				topRun = m.TopReuseRun(op, l)
			}
			xReq := memCC / topRun
			if xReq < 1 {
				xReq = 1
			}

			combos := rCombos(m, op, l)
			if op != loops.O {
				pre, err := b.fillJobs(lower, upper, op, memData, memCC, xReq, z, combos, parentPre)
				if err != nil {
					return err
				}
				parentPre = pre
				continue
			}
			if err := b.outputJobs(lower, upper, memData, memCC, xReq, z, combos); err != nil {
				return err
			}
		}
	}
	// Sort pending queues by release for cursor-based release.
	for _, pt := range b.ports {
		sort.Slice(pt.pending, func(i, j int) bool {
			if pt.pending[i].release != pt.pending[j].release {
				return pt.pending[i].release < pt.pending[j].release
			}
			return pt.pending[i].seq < pt.pending[j].seq
		})
	}
	return nil
}

// rCombos returns, per turnaround period of operand op at level l, an id
// identifying the tile content (the operand-relevant digits of the
// above-level loop indices). Periods sharing an id reuse the same tile.
func rCombos(m interface {
	AboveNest(loops.Operand, int) loops.Nest
	Periods(loops.Operand, int) int64
}, op loops.Operand, l int) []int64 {
	above := m.AboveNest(op, l)
	z := m.Periods(op, l)
	ids := make([]int64, z)
	for k := int64(0); k < z; k++ {
		rest := k
		var id int64
		mult := int64(1)
		for _, lp := range above { // innermost first
			digit := rest % lp.Size
			rest /= lp.Size
			if !loops.IsReuseDim(op, lp.Dim) {
				id += digit * mult
				mult *= lp.Size
			}
		}
		ids[k] = id
	}
	return ids
}

// fillJobs emits the preload (k=0) and steady-state fills of a W/I level.
// Returns the preload tile for chaining the level below.
func (b *builder) fillJobs(lower, upper *arch.Memory, op loops.Operand,
	memData, memCC, xReq, z int64, combos []int64, parentPre *tile) (*tile, error) {
	pre, err := b.addTransfer(upper, lower, op, memData, 0, 0, parentPre)
	if err != nil {
		return nil, err
	}
	for k := int64(1); k < z; k++ {
		if combos[k] == combos[k-1] {
			continue // identical tile stays resident
		}
		release := k*memCC - xReq
		deadline := k * memCC
		if _, err := b.addTransfer(upper, lower, op, memData, release, deadline, nil); err != nil {
			return nil, err
		}
	}
	return pre, nil
}

// outputJobs emits drains and psum read-backs for one O interface.
func (b *builder) outputJobs(lower, upper *arch.Memory,
	memData, memCC, xReq, z int64, combos []int64) error {
	op := loops.O
	lastDrain := map[int64]*tile{} // tile id -> its most recent drain
	for k := int64(0); k < z; k++ {
		id := combos[k]
		runStart := k == 0 || combos[k-1] != id
		runEnd := k == z-1 || combos[k+1] != id

		if runStart {
			if prev, seen := lastDrain[id]; seen {
				// Read the partial back before period k begins.
				release := k*memCC - xReq
				deadline := k * memCC
				if _, err := b.addTransfer(upper, lower, op, memData, release, deadline, prev); err != nil {
					return err
				}
			}
		}
		if runEnd {
			// Drain after the run's last period completes; must clear the
			// buffer within the next period's allowed window unless the
			// layer is over (offload tail).
			release := (k + 1) * memCC
			deadline := (k+1)*memCC + xReq
			if release >= b.steps {
				deadline = -1
			}
			dt, err := b.addTransfer(lower, upper, op, memData, release, deadline, nil)
			if err != nil {
				return err
			}
			lastDrain[id] = dt
		}
	}
	return nil
}
