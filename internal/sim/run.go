package sim

import (
	"container/heap"
	"fmt"
)

// run executes the event loop: compute advances one step per cycle unless a
// tile with an expired deadline is still in flight; ports serve released
// jobs one at a time, earliest deadline first.
func (b *builder) run(opt *Options) (*Result, error) {
	maxCycles := opt.MaxCycles
	if maxCycles <= 0 {
		maxCycles = b.steps*64 + 1_000_000
	}
	for _, pt := range b.ports {
		pt.ready.fifo = opt.FIFOArbitration
	}

	// Deadline-gated tiles, lazily popped when they complete.
	var gates deadlineHeap
	for _, tl := range b.tiles {
		if tl.deadline >= 0 {
			gates = append(gates, tl)
		}
	}
	heap.Init(&gates)

	ports := make([]*port, 0, len(b.ports))
	for _, pt := range b.ports {
		ports = append(ports, pt)
	}
	// Deterministic order.
	for i := 0; i < len(ports); i++ {
		for j := i + 1; j < len(ports); j++ {
			if ports[j].name < ports[i].name {
				ports[i], ports[j] = ports[j], ports[i]
			}
		}
	}

	jobsLeft := 0
	for _, pt := range ports {
		jobsLeft += len(pt.pending)
	}
	totalJobs := jobsLeft

	var (
		t, s       int64 // cycle, next compute step
		stash      []*job
		tCompStart = int64(-1)
		tCompEnd   = int64(-1)
	)

	nextGate := func() int64 {
		for gates.Len() > 0 {
			top := gates[0]
			if top.pending == 0 {
				heap.Pop(&gates)
				continue
			}
			return top.deadline
		}
		return -1
	}

	restash := func() {
		for _, j := range stash {
			heap.Push(&j.port.ready, j)
		}
		stash = stash[:0]
	}

	for {
		// Release jobs whose window has opened.
		for _, pt := range ports {
			for pt.cursor < len(pt.pending) && pt.pending[pt.cursor].release <= s {
				heap.Push(&pt.ready, pt.pending[pt.cursor])
				pt.cursor++
			}
		}
		// Start idle ports on their most urgent startable job.
		for _, pt := range ports {
			if pt.current != nil {
				continue
			}
			for pt.ready.Len() > 0 {
				j := heap.Pop(&pt.ready).(*job)
				if j.parent != nil && j.parent.pending > 0 {
					stash = append(stash, j)
					continue
				}
				pt.current = j
				cycles := (j.bits + pt.bwBits - 1) / pt.bwBits
				if cycles < 1 {
					cycles = 1
				}
				pt.curDone = t + cycles
				pt.busy += cycles
				break
			}
		}

		gate := nextGate()
		blocked := gate >= 0 && gate <= s
		computing := s < b.steps && !blocked
		if computing && tCompStart < 0 {
			tCompStart = t
		}

		// Next event horizon.
		const inf = int64(1) << 62
		next := inf
		for _, pt := range ports {
			if pt.current != nil && pt.curDone < next {
				next = pt.curDone
			}
		}
		if computing {
			limit := b.steps
			if gate >= 0 && gate < limit {
				limit = gate
			}
			for _, pt := range ports {
				if pt.cursor < len(pt.pending) && pt.pending[pt.cursor].release < limit {
					limit = pt.pending[pt.cursor].release
				}
			}
			if limit <= s {
				limit = s + 1
			}
			if e := t + (limit - s); e < next {
				next = e
			}
		}
		if next == inf {
			if jobsLeft == 0 && s >= b.steps {
				break
			}
			if !computing {
				return nil, fmt.Errorf("sim: deadlock at cycle %d (step %d/%d, %d jobs left)", t, s, b.steps, jobsLeft)
			}
			// No transfers in flight; run compute to the next boundary.
			next = t + 1
		}

		delta := next - t
		if delta < 1 {
			delta = 1
		}
		if computing {
			adv := delta
			if s+adv > b.steps {
				adv = b.steps - s
			}
			s += adv
			if s >= b.steps && tCompEnd < 0 {
				tCompEnd = t + adv
			}
		}
		t += delta
		if t > maxCycles {
			return nil, fmt.Errorf("sim: exceeded %d cycles (step %d/%d)", maxCycles, s, b.steps)
		}

		// Complete finished jobs.
		finished := false
		for _, pt := range ports {
			if pt.current != nil && pt.curDone <= t {
				pt.current.tile.pending--
				pt.current = nil
				jobsLeft--
				finished = true
			}
		}
		if finished {
			restash()
		}
	}

	if tCompStart < 0 {
		tCompStart = 0
	}
	if tCompEnd < 0 {
		tCompEnd = t
	}
	res := &Result{
		Cycles:        t,
		PreloadCycles: tCompStart,
		DrainTail:     t - tCompEnd,
		ComputeStall:  (tCompEnd - tCompStart) - b.steps,
		PortBusy:      map[string]int64{},
		Jobs:          totalJobs,
	}
	for _, pt := range ports {
		res.PortBusy[pt.name] = pt.busy
	}
	return res, nil
}
