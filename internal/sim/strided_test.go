package sim

import (
	"context"
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/mapper"
	"repro/internal/workload"
)

// Strided and dilated direct convolutions must run through both the model
// and the simulator with consistent results — the sliding-window input
// sizing (loops.InputExtent) feeds both.
func TestStridedConvModelVsSim(t *testing.T) {
	hw := arch.RowStationary()
	sp := arch.RowStationarySpatial()
	cases := []workload.Layer{
		func() workload.Layer {
			l := workload.NewConv2D("s2", 1, 16, 8, 14, 14, 3, 3)
			l.Strides.SX, l.Strides.SY = 2, 2
			return l
		}(),
		func() workload.Layer {
			l := workload.NewConv2D("d2", 1, 16, 8, 14, 14, 3, 3)
			l.Strides.DX, l.Strides.DY = 2, 2
			return l
		}(),
	}
	for _, l := range cases {
		layer := l
		best, _, err := mapper.Best(context.Background(), &layer, hw, &mapper.Options{
			Spatial: sp, BWAware: true, MaxCandidates: 2500,
		})
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		p := &core.Problem{Layer: &layer, Arch: hw, Mapping: best.Mapping}
		sr, err := Simulate(p, nil)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		acc := 1 - math.Abs(best.Result.CCTotal-float64(sr.Cycles))/float64(sr.Cycles)
		if acc < 0.80 {
			t.Errorf("%s: accuracy %.3f (model %.0f, sim %d)", l.Name, acc, best.Result.CCTotal, sr.Cycles)
		}
	}
}

// The simulator's total must never be below the stall-free bound
// (CC_spatial), and preload/drain must be non-negative.
func TestSimLowerBound(t *testing.T) {
	for _, bw := range []int64{16, 64, 1 << 20} {
		p := microProblem(bw, bw, bw, false)
		r, err := Simulate(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles < p.Mapping.CCSpatial() {
			t.Errorf("bw %d: cycles %d below compute bound %d", bw, r.Cycles, p.Mapping.CCSpatial())
		}
		if r.PreloadCycles < 0 || r.DrainTail < 0 || r.ComputeStall < 0 {
			t.Errorf("bw %d: negative phase in %+v", bw, r)
		}
		if r.Cycles != r.PreloadCycles+p.Mapping.CCSpatial()+r.ComputeStall+r.DrainTail {
			t.Errorf("bw %d: phases do not add up: %+v", bw, r)
		}
	}
}

// Monotonicity: widening any single port never increases simulated cycles.
func TestSimBandwidthMonotone(t *testing.T) {
	base, err := Simulate(microProblem(64, 32, 24, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	wider := [][3]int64{{128, 32, 24}, {64, 64, 24}, {64, 32, 48}}
	for _, w := range wider {
		r, err := Simulate(microProblem(w[0], w[1], w[2], false), nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles > base.Cycles {
			t.Errorf("widening %v increased cycles: %d > %d", w, r.Cycles, base.Cycles)
		}
	}
}
