package sim

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/mapping"
	"repro/internal/workload"
)

// microProblem mirrors the hand-computed example of package core's tests:
// MatMul B=2 K=4 C=8 on a 2-level machine (Reg over GB), spatial K4,
// temporal [C 8 | B 2], every operand splitting Reg=[C 8] / GB=[B 2].
func microProblem(regRW, gbRd, gbWr int64, regDB bool) *core.Problem {
	l := workload.NewMatMul("µ", 2, 4, 8)
	a := &arch.Arch{
		Name: "micro",
		MACs: 4,
		Memories: []*arch.Memory{
			{Name: "Reg", CapacityBits: 1 << 20, DoubleBuffered: regDB,
				Serves: []loops.Operand{loops.W, loops.I, loops.O},
				Ports:  []arch.Port{{Name: "rw", Dir: arch.ReadWrite, BWBits: regRW}}},
			{Name: "GB", CapacityBits: 1 << 30,
				Serves: []loops.Operand{loops.W, loops.I, loops.O},
				Ports: []arch.Port{
					{Name: "rd", Dir: arch.Read, BWBits: gbRd},
					{Name: "wr", Dir: arch.Write, BWBits: gbWr},
				}},
		},
	}
	for _, op := range loops.AllOperands {
		a.Chain[op] = []string{"Reg", "GB"}
	}
	if err := a.Normalize(); err != nil {
		panic(err)
	}
	m := &mapping.Mapping{
		Spatial:  loops.Nest{{Dim: loops.K, Size: 4}},
		Temporal: loops.Nest{{Dim: loops.C, Size: 8}, {Dim: loops.B, Size: 2}},
	}
	for _, op := range loops.AllOperands {
		m.Bound[op] = []int{1, 2}
	}
	return &core.Problem{Layer: &l, Arch: a, Mapping: m}
}

func TestNoStallTimeline(t *testing.T) {
	// Generous bandwidth: every transfer takes 1 cycle.
	p := microProblem(1<<20, 1<<20, 1<<20, false)
	r, err := Simulate(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Hand trace: preload W (GB.rd 1cc) then I (1cc) -> compute starts at
	// t=2; no stalls; 16 steps; final drain 1cc -> total 19.
	if r.ComputeStall != 0 {
		t.Errorf("ComputeStall = %d, want 0", r.ComputeStall)
	}
	if r.PreloadCycles != 2 {
		t.Errorf("PreloadCycles = %d, want 2", r.PreloadCycles)
	}
	if r.Cycles != 19 {
		t.Errorf("Cycles = %d, want 19", r.Cycles)
	}
	if r.DrainTail != 1 {
		t.Errorf("DrainTail = %d, want 1", r.DrainTail)
	}
}

func TestStarvedTimeline(t *testing.T) {
	// The core-test configuration: Reg.rw 64, GB.rd 32, GB.wr 24 b/cc.
	// Hand trace (see test comments in core): preload 10, stall 3 on the
	// first O drain, drain tail 4 -> 33 total.
	p := microProblem(64, 32, 24, false)
	r, err := Simulate(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.PreloadCycles != 10 {
		t.Errorf("PreloadCycles = %d, want 10", r.PreloadCycles)
	}
	if r.ComputeStall != 3 {
		t.Errorf("ComputeStall = %d, want 3", r.ComputeStall)
	}
	if r.DrainTail != 4 {
		t.Errorf("DrainTail = %d, want 4", r.DrainTail)
	}
	if r.Cycles != 33 {
		t.Errorf("Cycles = %d, want 33", r.Cycles)
	}
	// The analytical model for the same problem gives 34: within 5%.
	ana, err := core.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(r.Cycles) / ana.CCTotal
	if ratio < 0.90 || ratio > 1.10 {
		t.Errorf("sim %d vs model %.0f: ratio %.3f", r.Cycles, ana.CCTotal, ratio)
	}
}

func TestDeterminism(t *testing.T) {
	p := microProblem(64, 32, 24, false)
	r1, err := Simulate(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.ComputeStall != r2.ComputeStall {
		t.Errorf("non-deterministic: %+v vs %+v", r1, r2)
	}
}

func TestRedundantFillsSkipped(t *testing.T) {
	// W's GB level holds only the B loop (ir for W): period 2's W tile is
	// identical to period 1's, so only the preload transfer happens.
	p := microProblem(1<<20, 1<<20, 1<<20, false)
	r, err := Simulate(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Jobs: W preload (2), I preload (2), I fill k=1 (2), O drains (4).
	if r.Jobs != 10 {
		t.Errorf("Jobs = %d, want 10", r.Jobs)
	}
}

func TestRCombos(t *testing.T) {
	m := &mapping.Mapping{
		Spatial:  loops.Nest{{Dim: loops.K, Size: 4}},
		Temporal: loops.Nest{{Dim: loops.C, Size: 2}, {Dim: loops.B, Size: 2}, {Dim: loops.K, Size: 2}},
	}
	m.Bound[loops.W] = []int{0, 3}
	m.Bound[loops.I] = []int{0, 3}
	m.Bound[loops.O] = []int{0, 3}
	// Above W level 0: [C 2 | B 2 | K 2]; W r digits: C and K.
	// k: c=k%2, b=(k/2)%2, kk=k/4. id = c + 2*kk.
	want := []int64{0, 1, 0, 1, 2, 3, 2, 3}
	got := rCombos(m, loops.W, 0)
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("rCombos[%d] = %d, want %d (all %v)", i, got[i], w, got)
		}
	}
	// For O (r digits: B and K): id = b + 2*kk.
	wantO := []int64{0, 0, 1, 1, 2, 2, 3, 3}
	gotO := rCombos(m, loops.O, 0)
	for i, w := range wantO {
		if gotO[i] != w {
			t.Fatalf("rCombos O[%d] = %d, want %d", i, gotO[i], w)
		}
	}
}

func TestPsumRoundTrip(t *testing.T) {
	// O with a reduction loop above its reg level: [C 2 | B 2 | C 2],
	// O bound [1,3]: above = [B 2 | C 2] -> ids 0,1,0,1: tiles revisit.
	l := workload.NewMatMul("ps", 2, 4, 4)
	p := microProblem(1<<20, 1<<20, 1<<20, false)
	p.Layer = &l
	p.Mapping.Temporal = loops.Nest{{Dim: loops.C, Size: 2}, {Dim: loops.B, Size: 2}, {Dim: loops.C, Size: 2}}
	for _, op := range loops.AllOperands {
		p.Mapping.Bound[op] = []int{1, 3}
	}
	r, err := Simulate(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Even with generous bandwidth the 1-cycle keep-out windows of the
	// single-buffered O registers leave a few cycles of serialization
	// stall the analytic model ignores (part of the validation gap).
	if r.ComputeStall > 4 {
		t.Errorf("stall = %d with generous BW, want <= 4", r.ComputeStall)
	}
	// O jobs: 4 runs -> 4 drains (8 jobs) + 2 readbacks (4 jobs).
	// W: preload + fills at k where C digit changes: above W L0 = [B2|C2],
	// W ids: c=k/2 -> 0,0,1,1: preload + 1 fill. I ids: b + 2c -> 0,1,2,3:
	// preload + 3 fills.
	wantJobs := 2*(1+1) + 2*(1+3) + 8 + 4
	if r.Jobs != wantJobs {
		t.Errorf("Jobs = %d, want %d", r.Jobs, wantJobs)
	}
}

func TestStallScalesWithStarvation(t *testing.T) {
	// Halving GB write bandwidth must not reduce total cycles.
	fast, err := Simulate(microProblem(64, 32, 48, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Simulate(microProblem(64, 32, 12, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Cycles < fast.Cycles {
		t.Errorf("slower GB.wr gave fewer cycles: %d vs %d", slow.Cycles, fast.Cycles)
	}
}

func TestDoubleBufferingHelps(t *testing.T) {
	sb, err := Simulate(microProblem(64, 32, 24, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Simulate(microProblem(64, 32, 24, true), nil)
	if err != nil {
		t.Fatal(err)
	}
	if db.Cycles > sb.Cycles {
		t.Errorf("double buffering hurt: %d vs %d", db.Cycles, sb.Cycles)
	}
}

func TestMaxCyclesAbort(t *testing.T) {
	p := microProblem(64, 32, 24, false)
	if _, err := Simulate(p, &Options{MaxCycles: 5}); err == nil {
		t.Error("MaxCycles not enforced")
	}
}

func TestNilProblem(t *testing.T) {
	if _, err := Simulate(nil, nil); err == nil {
		t.Error("nil problem simulated")
	}
	if _, err := Simulate(&core.Problem{}, nil); err == nil {
		t.Error("empty problem simulated")
	}
}

func TestPortBusyAccounting(t *testing.T) {
	p := microProblem(64, 32, 24, false)
	r, err := Simulate(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Reg.rw", "GB.rd", "GB.wr"} {
		if r.PortBusy[name] <= 0 {
			t.Errorf("port %s has no busy cycles", name)
		}
		if r.PortBusy[name] > r.Cycles {
			t.Errorf("port %s busy %d > total %d", name, r.PortBusy[name], r.Cycles)
		}
	}
}
