package serve

// POST /v1/explain: the stall-attribution explainer (internal/obs) over
// HTTP. With an explicit mapping the layer is evaluated directly; without
// one a search (memoized, like /v1/search) picks the best mapping first and
// the explainer runs on the winner. The response carries the full
// obs.Report — per-DTL / per-port stall attribution summing exactly to
// SS_overall, plus the critical stall chain — and optionally the Perfetto
// trace-event file inline.

import (
	"encoding/json"
	"net/http"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/mapper"
	"repro/internal/obs"
)

// ExplainRequest asks for a stall-attribution report: POST /v1/explain.
type ExplainRequest struct {
	archSpec
	Layer config.Layer `json:"layer"`
	// Mapping explains the given mapping; when omitted, a search finds the
	// best one first (budget/objective as in /v1/search).
	Mapping     *config.Mapping `json:"mapping,omitempty"`
	Budget      int             `json:"budget,omitempty"`
	Objective   string          `json:"objective,omitempty"`
	Pow2Splits  bool            `json:"pow2_splits,omitempty"`
	NoSym       bool            `json:"nosym,omitempty"`
	NoSurrogate bool            `json:"nosurrogate,omitempty"`
	// IncludeTrace embeds the Chrome/Perfetto trace-event file in the
	// response; TracePeriods caps slices per endpoint (default 64).
	IncludeTrace bool `json:"include_trace,omitempty"`
	TracePeriods int  `json:"trace_periods,omitempty"`
	TimeoutMS    int  `json:"timeout_ms,omitempty"`
}

// ExplainResponse is the answer to an ExplainRequest.
type ExplainResponse struct {
	Layer    string `json:"layer"`
	Arch     string `json:"arch"`
	Spatial  string `json:"spatial"`
	Temporal string `json:"temporal"`
	// Searched reports whether the mapping came from a search (true) or the
	// request (false).
	Searched bool        `json:"searched"`
	Result   resultJSON  `json:"result"`
	Report   *obs.Report `json:"report"`
	Stats    *statsJSON  `json:"stats,omitempty"`
	// Trace is the Perfetto trace-event array (include_trace only); save it
	// to a .json file and open in ui.perfetto.dev.
	Trace json.RawMessage `json:"trace,omitempty"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	l, err := req.Layer.ToLayer()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	hw, sp, err := req.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	p := &core.Problem{Layer: &l, Arch: hw}
	var stats *mapper.Stats
	searched := false
	if req.Mapping != nil {
		m, err := req.Mapping.ToMapping()
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if err := m.Validate(&l, hw); err != nil {
			writeError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		p.Mapping = m
	} else {
		obj, err := parseObjective(req.Objective)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		ctx, cancel := s.requestContext(r, req.TimeoutMS)
		defer cancel()
		var cand *mapper.Candidate
		cand, stats, err = mapper.BestCached(ctx, &l, hw, &mapper.Options{
			Spatial:       sp,
			Pow2Splits:    req.Pow2Splits,
			MaxCandidates: req.Budget,
			Objective:     obj,
			BWAware:       true,
			NoReduce:      req.NoSym,
			NoSurrogate:   req.NoSurrogate,
		})
		if err != nil {
			writeError(w, s.errorStatus(r, err), err.Error())
			return
		}
		p.Mapping = cand.Mapping
		searched = true
	}

	// Re-evaluate under this Problem so the diagnostics the report explains
	// were produced by exactly the options the attribution replays.
	res, err := core.Evaluate(p)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	resp := ExplainResponse{
		Layer:    l.Name,
		Arch:     hw.Name,
		Spatial:  p.Mapping.Spatial.String(),
		Temporal: p.Mapping.Temporal.String(),
		Searched: searched,
		Result:   fromResult(res),
		Report:   obs.NewReport(p, res),
		Stats:    fromStats(stats),
	}
	if req.IncludeTrace {
		raw, err := obs.TraceJSON(p, res, obs.TraceOptions{MaxPeriods: req.TracePeriods})
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		resp.Trace = raw
	}
	writeJSON(w, http.StatusOK, resp)
}
