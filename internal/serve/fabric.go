package serve

// The fleet endpoints. POST /v1/shard executes one planned shard of a
// sharded Best search on behalf of a remote coordinator (internal/fabric);
// the request carries the exact normalized options plus the shard's prefix
// range and walk-state handoff, so the outcome merges bit-identically into
// the coordinator's result no matter which node ran it (DESIGN.md §13).
// POST /v1/memo/{get,put} serve the configured memo.Store to memo.Remote
// clients, letting a fleet share warm whole-search results; both sides are
// version-tagged so nodes running different model arithmetic read each other
// as misses instead of mixing results.

import (
	"net/http"

	"repro/internal/fabric"
	"repro/internal/mapper"
	"repro/internal/memo"
)

func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	var req fabric.ShardRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	l, err := req.Layer.ToLayer()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	spec := archSpec{Arch: req.Arch, ArchConfig: req.ArchConfig, Spatial: req.Spatial}
	hw, sp, err := spec.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	obj, err := parseObjective(req.Objective)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	o := req.SearchOptions(sp, obj)
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	out, err := mapper.BestShard(ctx, &l, hw, &o, req.Shard)
	if err != nil {
		writeError(w, s.errorStatus(r, err), err.Error())
		return
	}
	s.met.fabricShards.Add(1)
	writeJSON(w, http.StatusOK, fabric.EncodeOutcome(out))
}

func (s *Server) handleMemoGet(w http.ResponseWriter, r *http.Request) {
	var req memo.WireGet
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Version != s.cfg.MemoVersion || len(req.Enc) == 0 {
		writeError(w, http.StatusNotFound, "memo miss (version or key)")
		return
	}
	blob, ok := s.cfg.MemoStore.Get(memo.KeyOf(req.Enc))
	if !ok || len(blob) == 0 {
		writeError(w, http.StatusNotFound, "memo miss")
		return
	}
	writeJSON(w, http.StatusOK, memo.WireBlob{Blob: blob})
}

func (s *Server) handleMemoPut(w http.ResponseWriter, r *http.Request) {
	var req memo.WirePut
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Version skew and empty payloads are silently dropped, not errors: the
	// store contract is best-effort, and a mixed-version fleet is a supported
	// (if transient) state during rollouts.
	if req.Version == s.cfg.MemoVersion && len(req.Enc) > 0 && len(req.Blob) > 0 {
		s.cfg.MemoStore.Put(memo.KeyOf(req.Enc), req.Blob)
	}
	w.WriteHeader(http.StatusNoContent)
}
