package serve

// The fleet endpoints. POST /v1/shard executes one planned shard of a
// sharded Best search on behalf of a remote coordinator (internal/fabric);
// the request carries the exact normalized options plus the shard's prefix
// range and walk-state handoff, so the outcome merges bit-identically into
// the coordinator's result no matter which node ran it (DESIGN.md §13).
// POST /v1/memo/{get,put} serve the configured memo.Store to memo.Remote
// clients, letting a fleet share warm whole-search results; both sides are
// version-tagged so nodes running different model arithmetic read each other
// as misses instead of mixing results.

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/mapper"
	"repro/internal/memo"
	"repro/internal/otrace"
)

// stealRegistry indexes the live ShardControls of in-flight shard requests
// by their coordinator-chosen sid, so POST /v1/shard/steal can reach into a
// running walk. Entries live exactly as long as the walk; a steal for a sid
// that already finished (or never ran here) is a 404, which the coordinator
// treats as "victim completes whole".
type stealRegistry struct {
	mu   sync.Mutex
	byID map[string]*mapper.ShardControl
}

func newStealRegistry() *stealRegistry {
	return &stealRegistry{byID: map[string]*mapper.ShardControl{}}
}

func (sr *stealRegistry) add(sid string, ctl *mapper.ShardControl) {
	sr.mu.Lock()
	sr.byID[sid] = ctl
	sr.mu.Unlock()
}

func (sr *stealRegistry) remove(sid string) {
	sr.mu.Lock()
	delete(sr.byID, sid)
	sr.mu.Unlock()
}

func (sr *stealRegistry) get(sid string) (*mapper.ShardControl, bool) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	ctl, ok := sr.byID[sid]
	return ctl, ok
}

func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	var req fabric.ShardRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	l, err := req.Layer.ToLayer()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	spec := archSpec{Arch: req.Arch, ArchConfig: req.ArchConfig, Spatial: req.Spatial}
	hw, sp, err := spec.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	obj, err := parseObjective(req.Objective)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	o := req.SearchOptions(sp, obj)
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	ctl := mapper.NewShardControl(req.Shard)
	if req.Sid != "" {
		s.steals.add(req.Sid, ctl)
		defer s.steals.remove(req.Sid)
	}
	if d := s.cfg.ShardDelay; d > 0 {
		// Test hook: hold the walk open so an integration or smoke test can
		// land a steal deterministically. Bounded by the request context.
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}
	// The walk span's duration is what the coordinator's critical-path
	// attribution charges to "walk" inside this shard's RPC window; the
	// position attrs tie it back to the plan range it covered.
	wctx, wsp := otrace.StartSpanKeyed(ctx, "shard.walk", otrace.CatWalk,
		fmt.Sprintf("%d", req.Shard.WalkedBefore))
	wsp.SetAttr("pos_lo", fmt.Sprintf("%d", req.Shard.WalkedBefore))
	out, err := mapper.BestShardControlled(wctx, &l, hw, &o, req.Shard, ctl)
	if err != nil {
		wsp.SetAttr("outcome", "error")
		wsp.End()
		writeError(w, s.errorStatus(r, err), err.Error())
		return
	}
	if out.Truncated {
		wsp.SetAttr("truncated", "true")
		wsp.SetAttr("pos_done", fmt.Sprintf("%d", out.Resume.WalkedBefore))
	}
	wsp.End()
	s.met.fabricShards.Add(1)
	noteFrom(r.Context()).addShards(1)
	if out.Truncated {
		s.met.fabricSteals.Add(1)
		noteFrom(r.Context()).addSteals(1)
	}
	writeJSON(w, http.StatusOK, fabric.EncodeOutcome(out))
}

// handleShardSteal stops the in-flight shard registered under the given sid
// at its exact walk frontier. 202 means "stopping"; the stolen remainder
// comes back to the coordinator in the original shard request's response.
func (s *Server) handleShardSteal(w http.ResponseWriter, r *http.Request) {
	var req fabric.StealRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctl, ok := s.steals.get(req.Sid)
	if !ok {
		writeError(w, http.StatusNotFound, "no in-flight shard with that sid")
		return
	}
	ctl.Truncate(ctl.Frontier())
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "stopping"})
}

func (s *Server) handleMemoGet(w http.ResponseWriter, r *http.Request) {
	var req memo.WireGet
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Version != s.cfg.MemoVersion || len(req.Enc) == 0 {
		writeError(w, http.StatusNotFound, "memo miss (version or key)")
		return
	}
	blob, ok := s.cfg.MemoStore.Get(r.Context(), memo.KeyOf(req.Enc))
	if !ok || len(blob) == 0 {
		writeError(w, http.StatusNotFound, "memo miss")
		return
	}
	writeJSON(w, http.StatusOK, memo.WireBlob{Blob: blob})
}

func (s *Server) handleMemoPut(w http.ResponseWriter, r *http.Request) {
	var req memo.WirePut
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Version skew and empty payloads are silently dropped, not errors: the
	// store contract is best-effort, and a mixed-version fleet is a supported
	// (if transient) state during rollouts.
	if req.Version == s.cfg.MemoVersion && len(req.Enc) > 0 && len(req.Blob) > 0 {
		s.cfg.MemoStore.Put(r.Context(), memo.KeyOf(req.Enc), req.Blob)
	}
	w.WriteHeader(http.StatusNoContent)
}
