// Package serve exposes the latency model as a long-running HTTP service:
// single-layer evaluation of a fixed mapping, full mapping searches
// (exhaustive or annealed) and whole-network evaluation, all backed by the
// process-wide memo cache so identical requests coalesce onto one in-flight
// search and repeats are served from memory (or disk, when the store is
// enabled).
//
// The server is built for the concurrency semantics PR 4 threaded through
// the model: every request gets a context bounded by its own deadline, the
// client connection and the server's drain state; a canceled search stops
// the mapper cooperatively, returns promptly and never poisons the cache
// with a partial result. An admission controller bounds concurrent searches
// against the shared worker budget and sheds overload with 429 +
// Retry-After. Observability is built in: /metrics (Prometheus text
// format, hand-rolled — this repository takes no dependencies), /healthz,
// structured request logs (log/slog) and graceful shutdown that drains
// in-flight searches under a deadline before force-canceling the rest.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/mapper"
	"repro/internal/memo"
	"repro/internal/otrace"
	"repro/internal/par"
	"repro/internal/prof"
)

// tenantOf extracts the request's tenant for weighted-fair admission: the
// X-Tenant header, truncated to 64 bytes, defaulting to "default".
func tenantOf(r *http.Request) string {
	t := r.Header.Get("X-Tenant")
	if t == "" {
		return defaultTenant
	}
	if len(t) > 64 {
		t = t[:64]
	}
	return t
}

// statusClientGone is logged for requests whose client disconnected before a
// response could be written (nginx's convention; never actually sent).
const statusClientGone = 499

// Config tunes a Server. The zero value serves with sensible defaults.
type Config struct {
	// MaxConcurrent bounds concurrently running searches (default: the
	// shared worker budget, par.Limit()).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a search slot before the server
	// sheds with 429 (default: 4 x MaxConcurrent; negative: no queue, shed
	// as soon as the slots are busy).
	MaxQueue int
	// DefaultTimeout applies when a request carries no timeout_ms
	// (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts (default 5m).
	MaxTimeout time.Duration
	// Logger receives structured request logs (default slog.Default()).
	Logger *slog.Logger
	// TenantWeights gives named tenants (X-Tenant header) proportional
	// shares of the admission queue: a weight-3 tenant's queued searches are
	// granted slots 3x as often as a weight-1 tenant's. Unlisted tenants
	// (including "default") weigh 1. Empty: plain FIFO (every tenant weighs
	// the same).
	TenantWeights map[string]float64
	// Peers lists other servemodel base URLs eligible to execute shards of
	// this server's sharded searches (POST /v1/search with shards > 1).
	// Never list THIS server's own address: a node executing its own fan-out
	// would queue shard requests behind the coordinating search's admission
	// slot and can deadlock against itself. Empty: shards run in-process.
	Peers []string
	// MemoStore backs the /v1/memo/{get,put} endpoints, letting a fleet
	// share warm search results (default: a bounded in-process store). This
	// is the store this node SERVES; the store the node's own searches read
	// and write is installed process-wide via mapper.SetBlobStore.
	MemoStore memo.Store
	// MemoVersion tags the memo wire protocol; exchanges with a different
	// version are answered as misses / dropped so nodes running different
	// model arithmetic never mix results (default mapper.DiskVersion()).
	MemoVersion int
	// ShardDelay holds every POST /v1/shard walk open for this long after
	// its steal handle is registered, before the walk starts. Test hook
	// only (-shardslowdown): it gives an integration or smoke test a
	// deterministic window to land a /v1/shard/steal against this node.
	ShardDelay time.Duration
	// NodeName labels this node's spans in assembled fleet traces (one
	// Perfetto process row per node; default "servemodel").
	NodeName string
	// Trace records this node's spans, exported per-trace at
	// GET /v1/trace/{id} (default: a bounded recorder, otrace defaults).
	Trace *otrace.Recorder
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = par.Limit()
	}
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = 4 * c.MaxConcurrent
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.MemoStore == nil {
		c.MemoStore = memo.NewMem(0)
	}
	// The served store always traces and counts per-tier stats; WithTrace is
	// idempotent, so a caller passing an already-wrapped store is fine.
	c.MemoStore = memo.WithTrace(c.MemoStore)
	if c.MemoVersion == 0 {
		c.MemoVersion = mapper.DiskVersion()
	}
	if c.NodeName == "" {
		c.NodeName = "servemodel"
	}
	if c.Trace == nil {
		c.Trace = otrace.NewRecorder(c.NodeName, 0, 0)
	}
	return c
}

// Server is the HTTP service. Create with New, expose via Handler, stop
// with Shutdown.
type Server struct {
	cfg Config
	log *slog.Logger
	mux *http.ServeMux
	adm *admission
	met *metrics
	// progress tracks live search telemetry, keyed by search_id.
	progress *progressRegistry
	// steals tracks in-flight shard walks by sid for /v1/shard/steal.
	steals *stealRegistry
	// flight is the bounded ring of finished-request summaries
	// (/v1/debug/requests) and the X-Request-Id generator.
	flight *flightRing

	// base is alive for the server's whole lifetime and canceled only when
	// a graceful shutdown exhausts its drain deadline; every request context
	// is joined to it, so force-cancel reaches all in-flight searches.
	base       context.Context
	baseCancel context.CancelFunc
}

// New builds a Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		log:      cfg.Logger,
		mux:      http.NewServeMux(),
		adm:      newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.TenantWeights),
		met:      newMetrics(time.Now(), "eval", "search", "network", "metrics", "healthz", "explain", "progress", "shard", "shard_steal", "memo_get", "memo_put", "trace", "debug_requests"),
		progress: newProgressRegistry(),
		steals:   newStealRegistry(),
		flight:   newFlightRing(flightRingSize),
	}
	s.base, s.baseCancel = context.WithCancel(context.Background())
	s.mux.Handle("GET /healthz", s.instrument("healthz", false, s.handleHealthz))
	s.mux.Handle("GET /metrics", s.instrument("metrics", false, s.handleMetrics))
	s.mux.Handle("POST /v1/eval", s.instrument("eval", true, s.handleEval))
	s.mux.Handle("POST /v1/search", s.instrument("search", true, s.handleSearch))
	s.mux.Handle("GET /v1/search/{id}/progress", s.instrument("progress", false, s.handleProgress))
	s.mux.Handle("POST /v1/explain", s.instrument("explain", true, s.handleExplain))
	s.mux.Handle("POST /v1/network", s.instrument("network", true, s.handleNetwork))
	s.mux.Handle("POST /v1/shard", s.instrument("shard", true, s.handleShard))
	// The steal endpoint bypasses admission: it must reach a node whose
	// slots are all busy walking — that is exactly when stealing matters.
	s.mux.Handle("POST /v1/shard/steal", s.instrument("shard_steal", false, s.handleShardSteal))
	s.mux.Handle("POST /v1/memo/get", s.instrument("memo_get", false, s.handleMemoGet))
	s.mux.Handle("POST /v1/memo/put", s.instrument("memo_put", false, s.handleMemoPut))
	s.mux.Handle("GET /v1/trace/{id}", s.instrument("trace", false, s.handleTrace))
	s.mux.Handle("GET /v1/debug/requests", s.instrument("debug_requests", false, s.handleDebugRequests))
	return s
}

// Handler returns the root handler (mount on an http.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// statusWriter records the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the middleware stack: in-flight gauge,
// trace join/start, admission control (when admit), latency/status metrics,
// the request log line and the flight-recorder entry. The request id is
// minted here and echoed as X-Request-Id so a client can quote the exact
// server-side log lines and flight entry for any response it holds.
func (s *Server) instrument(name string, admit bool, h http.HandlerFunc) http.Handler {
	em := s.met.endpoint(name)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		em.inflight.Add(1)
		defer em.inflight.Add(-1)
		tenant := tenantOf(r)
		reqID := s.flight.nextID()
		w.Header().Set("X-Request-Id", reqID)

		// A propagated traceparent joins the caller's trace on ANY endpoint,
		// so a coordinator's shard walks, steals and memo exchanges land in
		// its trace; an admitted request without one roots a fresh trace of
		// its own. Plumbing endpoints (metrics, healthz, trace export) never
		// mint traces — they would flood the bounded recorder.
		ctx := r.Context()
		var span *otrace.Span
		if tr, parent, ok := otrace.Extract(r.Header); ok {
			ctx, span = s.cfg.Trace.JoinTrace(ctx, tr, parent, "serve."+name, "serve")
		} else if admit {
			ctx, span = s.cfg.Trace.StartTrace(ctx, "serve."+name, "serve")
		}
		span.SetAttr("endpoint", name)
		span.SetAttr("tenant", tenant)
		span.SetAttr("request_id", reqID)
		note := &reqNote{}
		r = r.WithContext(withReqNote(ctx, note))

		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		switch {
		case !admit:
			h(sw, r)
		default:
			at0 := time.Now()
			release, err := s.adm.acquire(r.Context(), tenant)
			switch {
			case errors.Is(err, errAdmissionFull):
				s.met.shed.Add(1)
				sw.Header().Set("Retry-After", "1")
				writeError(sw, http.StatusTooManyRequests, "server saturated: all search slots and the wait queue are full")
			case err != nil:
				sw.code = statusClientGone // client gave up while queued
			default:
				otrace.RecordSpan(r.Context(), "admission.wait", otrace.CatQueue, "",
					at0, time.Since(at0), otrace.Attr{K: "tenant", V: tenant})
				h(sw, r)
				release()
			}
		}
		span.End()
		d := time.Since(t0)
		em.done(sw.code, d.Seconds())
		traceID := otrace.IDString(r.Context())
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("endpoint", name),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("code", sw.code),
			slog.Duration("dur", d),
			slog.String("remote", r.RemoteAddr),
			slog.String("trace_id", traceID),
			slog.String("tenant", tenant),
			slog.String("request_id", reqID),
		)
		s.flight.add(flightEntry{
			Time:      t0.UTC().Format(time.RFC3339Nano),
			Endpoint:  name,
			Method:    r.Method,
			Path:      r.URL.Path,
			Tenant:    tenant,
			TraceID:   traceID,
			RequestID: reqID,
			Code:      sw.code,
			DurMS:     float64(d.Microseconds()) / 1e3,
			Shards:    note.shards.Load(),
			Steals:    note.steals.Load(),
		})
	})
}

// healthBody is the /healthz response: liveness plus build identity.
type healthBody struct {
	Status string `json:"status"`
	prof.BuildInfo
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := healthBody{Status: "ok", BuildInfo: prof.Build()}
	if s.base.Err() != nil {
		body.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cnt := memo.Default.Counters()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.write(w, memoSnapshot{
		Hits:      cnt.Hits(),
		Misses:    cnt.Misses(),
		Waits:     cnt.InflightWaits(),
		DiskHits:  cnt.DiskHits(),
		Canceled:  cnt.Canceled(),
		Transient: cnt.Transient(),
	}, admissionSnapshot{
		InUse:  s.adm.inUse(),
		Queued: s.adm.queueDepth(),
		Slots:  s.adm.capacity(),
		Queue:  s.adm.maxQueue,
	}, s.progress.live(), storeTierStats())
}

// storeTierStats converts the memo package's per-tier registry into the
// renderer's memo-free carrier type.
func storeTierStats() []storeTierStat {
	snaps := memo.TierSnapshots()
	out := make([]storeTierStat, len(snaps))
	for i, sn := range snaps {
		out[i] = storeTierStat{
			Tier:     sn.Tier,
			Op:       sn.Op,
			Outcomes: sn.Outcomes,
			Bounds:   memo.StatsBuckets,
			Buckets:  sn.Buckets,
			Sum:      sn.Sum,
			Count:    sn.Count,
		}
	}
	return out
}

// requestContext derives the context a search runs under: bounded by the
// request's timeout (timeout_ms capped at MaxTimeout; DefaultTimeout when
// absent), canceled when the client disconnects (via r.Context()), and
// force-canceled when a graceful shutdown exhausts its drain deadline (via
// the server's base context). The returned stop func releases both.
func (s *Server) requestContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	stop := context.AfterFunc(s.base, cancel)
	return ctx, func() { stop(); cancel() }
}

// errorStatus maps a failed search to an HTTP status: the request deadline
// expiring is 504, a shutdown force-cancel is 503, a vanished client is the
// unsendable 499 (metrics/logs only), and anything else — a well-formed
// request whose search legitimately found nothing — is 422.
func (s *Server) errorStatus(r *http.Request, err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case s.base.Err() != nil:
		return http.StatusServiceUnavailable
	case r.Context().Err() != nil:
		return statusClientGone
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

// Shutdown stops srv gracefully: new connections are refused, in-flight
// requests get the drain window to finish, and if any are still running
// when it expires their contexts are force-canceled (they answer 503) and
// a short grace period lets those responses flush before the remaining
// connections are closed.
func (s *Server) Shutdown(srv *http.Server, drain time.Duration) error {
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err == nil {
		return nil
	}
	s.log.Warn("drain deadline expired; force-canceling in-flight searches")
	s.baseCancel()
	gctx, gcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer gcancel()
	return srv.Shutdown(gctx)
}

// writeJSON writes v as the response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the JSON shape of every error response.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}
