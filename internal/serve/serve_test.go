package serve

// End-to-end tests over httptest: happy paths for all three endpoints,
// request coalescing, deadline expiry (504), admission shedding (429),
// malformed bodies (400), the determinism guard (served bytes == library
// bytes) and graceful-shutdown draining. Run under -race in CI.

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/mapper"
	"repro/internal/memo"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = discardLogger()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// smallSearch is a request whose search finishes in milliseconds.
const smallSearch = `{"layer":{"name":"l0","kind":"matmul","dims":{"B":32,"K":32,"C":32}},"budget":500}`

// bigSearch is a request that runs far longer than any test deadline used
// against it — an annealing run of millions of iterations (~25k/s) — while
// still observing cancellation within 64 iterations (a few ms).
const bigSearch = `{"layer":{"name":"big","kind":"matmul","dims":{"B":192,"K":192,"C":192}},"anneal":true,"iterations":10000000,"restarts":1,"nosym":true}`

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Fatalf("healthz status = %q, want ok", body["status"])
	}
}

func TestSearchHappy(t *testing.T) {
	memo.Default.Reset()
	_, ts := newTestServer(t, Config{})
	resp, data := post(t, ts, "/v1/search", smallSearch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search = %d: %s", resp.StatusCode, data)
	}
	var out SearchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Result.CCTotal <= 0 || out.Temporal == "" || out.Stats == nil || out.Stats.Valid == 0 {
		t.Fatalf("implausible search response: %+v", out)
	}
	if out.Arch != arch.InHouse().Name {
		t.Fatalf("default arch = %q, want the inhouse preset", out.Arch)
	}
}

// TestEvalRoundtrip feeds the mapping a search returned back through
// /v1/eval and expects the identical latency.
func TestEvalRoundtrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := post(t, ts, "/v1/search", smallSearch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search = %d: %s", resp.StatusCode, data)
	}
	var found SearchResponse
	if err := json.Unmarshal(data, &found); err != nil {
		t.Fatal(err)
	}
	evalReq, err := json.Marshal(map[string]any{
		"layer":   json.RawMessage(`{"name":"l0","kind":"matmul","dims":{"B":32,"K":32,"C":32}}`),
		"mapping": found.Mapping,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, data = post(t, ts, "/v1/eval", string(evalReq))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval = %d: %s", resp.StatusCode, data)
	}
	var priced EvalResponse
	if err := json.Unmarshal(data, &priced); err != nil {
		t.Fatal(err)
	}
	if priced.Result.CCTotal != found.Result.CCTotal {
		t.Fatalf("eval re-priced the searched mapping differently: %v vs %v",
			priced.Result.CCTotal, found.Result.CCTotal)
	}
}

func TestNetworkHappy(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := post(t, ts, "/v1/network", `{"net":"handtracking","budget":300}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("network = %d: %s", resp.StatusCode, data)
	}
	var out NetworkResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Layers) == 0 || out.TotalCC <= 0 || out.Utilization <= 0 || out.Utilization > 1 {
		t.Fatalf("implausible network response: layers=%d total=%v util=%v",
			len(out.Layers), out.TotalCC, out.Utilization)
	}
}

func TestMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
	}{
		{"unknown field", "/v1/search", `{"layre":{}}`},
		{"syntax error", "/v1/search", `{"layer":`},
		{"bad kind", "/v1/search", `{"layer":{"name":"x","kind":"conv9d","dims":{"B":1}}}`},
		{"bad objective", "/v1/search", `{"layer":{"name":"x","kind":"matmul","dims":{"B":8,"K":8,"C":8}},"objective":"speed"}`},
		{"bad preset", "/v1/search", `{"layer":{"name":"x","kind":"matmul","dims":{"B":8,"K":8,"C":8}},"arch":"warpdrive"}`},
		{"bad spatial", "/v1/search", `{"layer":{"name":"x","kind":"matmul","dims":{"B":8,"K":8,"C":8}},"spatial":"K banana"}`},
		{"eval without mapping", "/v1/eval", `{"layer":{"name":"x","kind":"matmul","dims":{"B":8,"K":8,"C":8}}}`},
		{"unknown net", "/v1/network", `{"net":"skynet"}`},
	}
	for _, tc := range cases {
		resp, data := post(t, ts, tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", tc.name, resp.StatusCode, data)
		}
		var eb errorBody
		if err := json.Unmarshal(data, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body %q not of the standard shape", tc.name, data)
		}
	}
}

// TestCoalesce: concurrent identical requests share ONE underlying search —
// the memo cache reports exactly one miss.
func TestCoalesce(t *testing.T) {
	memo.Default.Reset()
	_, ts := newTestServer(t, Config{MaxConcurrent: 4})
	before := memo.Default.Counters().Misses()
	const n = 4
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/search", "application/json", strings.NewReader(smallSearch))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d: status %d", i, c)
		}
	}
	if d := memo.Default.Counters().Misses() - before; d != 1 {
		t.Fatalf("%d identical requests ran %d underlying searches, want 1", n, d)
	}
}

// TestDeadline504: a request whose own timeout_ms expires mid-search gets a
// 504 and the cache stays clean for the next caller.
func TestDeadline504(t *testing.T) {
	memo.Default.Reset()
	_, ts := newTestServer(t, Config{})
	body := strings.TrimSuffix(bigSearch, "}") + `,"timeout_ms":1}`
	resp, data := post(t, ts, "/v1/search", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired search = %d, want 504 (%s)", resp.StatusCode, data)
	}
	if n := memo.Default.Len(); n != 0 {
		t.Fatalf("timed-out search left %d memo entries", n)
	}
}

// TestQueueFull429: with one slot held and no queue, the next search sheds
// with 429 + Retry-After and the shed counter shows up in /metrics.
func TestQueueFull429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: -1})
	release, err := s.adm.acquire(context.Background(), defaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	resp, data := post(t, ts, "/v1/search", smallSearch)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated search = %d, want 429 (%s)", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	mresp, mdata := get(t, ts, "/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", mresp.StatusCode)
	}
	if !strings.Contains(string(mdata), "servemodel_admission_shed_total 1") {
		t.Fatalf("metrics missing shed counter:\n%s", mdata)
	}
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestMetricsRender: the exposition output carries every family with the
// TYPE headers Prometheus needs, and request counts move.
func TestMetricsRender(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts, "/v1/search", smallSearch)
	resp, data := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content-type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE servemodel_requests_total counter",
		"# TYPE servemodel_request_seconds histogram",
		"# TYPE servemodel_inflight gauge",
		"servemodel_requests_total{endpoint=\"search\",code=\"200\"} 1",
		"servemodel_mapper_searches_total 1",
		"servemodel_memo_hits_total",
		"servemodel_admission_slots",
		"servemodel_request_seconds_bucket{endpoint=\"search\",le=\"+Inf\"} 1",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestDeterminismGuard: the served search result is byte-identical to what
// the library path (mapper.BestCached + the same response constructor)
// produces — the server adds transport, not arithmetic. The memo cache is
// reset in between, so the served bytes come from a fresh search, not from
// the entry the direct call planted.
func TestDeterminismGuard(t *testing.T) {
	cl := config.Layer{Name: "l0", Kind: "matmul", Dims: map[string]int64{"B": 32, "K": 32, "C": 32}}
	l, err := cl.ToLayer()
	if err != nil {
		t.Fatal(err)
	}
	hw, sp := arch.InHouse(), arch.InHouseSpatial()
	cand, stats, err := mapper.BestCached(context.Background(), &l, hw, &mapper.Options{
		Spatial:       sp,
		MaxCandidates: 500,
		BWAware:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantResp := searchResponse(&l, hw, cand, stats)
	wantResp.SearchID = "s1" // transport metadata: first server-assigned id
	want, err := json.MarshalIndent(wantResp, "", "  ")
	if err != nil {
		t.Fatal(err)
	}

	memo.Default.Reset() // force the server down the uncached path
	_, ts := newTestServer(t, Config{})
	resp, got := post(t, ts, "/v1/search", smallSearch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search = %d: %s", resp.StatusCode, got)
	}
	// writeJSON's encoder terminates with a newline; MarshalIndent does not.
	if string(got) != string(want)+"\n" {
		t.Fatalf("served response diverged from the library result:\nserved: %s\nlibrary: %s", got, want)
	}
}

// TestGracefulDrain: shutting down with an expired drain window force-
// cancels the in-flight search, which answers 503, and the server still
// closes cleanly within the grace period.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{DefaultTimeout: time.Minute})
	type result struct {
		code int
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/search", "application/json", strings.NewReader(bigSearch))
		if err != nil {
			resc <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		resc <- result{code: resp.StatusCode}
	}()
	// Wait until the search actually holds its admission slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.inUse() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("search never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Shutdown(ts.Config, 50*time.Millisecond); err != nil {
		t.Fatalf("forced shutdown did not complete: %v", err)
	}
	select {
	case r := <-resc:
		if r.err != nil {
			t.Fatalf("drained request errored at transport level: %v", r.err)
		}
		if r.code != http.StatusServiceUnavailable {
			t.Fatalf("drained search = %d, want 503", r.code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never finished after force-cancel")
	}
	if err := s.base.Err(); err == nil {
		t.Fatal("base context not canceled by the forced drain")
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err == nil {
		// If the listener is somehow still accepting, health must say draining.
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("post-shutdown healthz = %d, want 503", resp.StatusCode)
		}
	}
}
