package serve

// Tests for the observability surface: search progress tracking and the
// stall-attribution explainer endpoint.

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/memo"
)

func getJSON(t *testing.T, ts string, path string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(ts + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// TestSearchProgress: a completed search's tracker reports done status with
// the search's exact final counters and best score.
func TestSearchProgress(t *testing.T) {
	memo.Default.Reset()
	_, ts := newTestServer(t, Config{})

	body := `{"layer":{"name":"l0","kind":"matmul","dims":{"B":32,"K":32,"C":32}},"budget":500,"search_id":"mysearch"}`
	resp, data := post(t, ts, "/v1/search", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search = %d: %s", resp.StatusCode, data)
	}
	var sr SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.SearchID != "mysearch" {
		t.Fatalf("search_id = %q, want the requested id", sr.SearchID)
	}

	var prog ProgressResponse
	if resp := getJSON(t, ts.URL, "/v1/search/mysearch/progress", &prog); resp.StatusCode != http.StatusOK {
		t.Fatalf("progress = %d", resp.StatusCode)
	}
	if prog.Status != "done" {
		t.Fatalf("status = %q, want done", prog.Status)
	}
	if prog.Stats == nil || prog.Valid == 0 || prog.Walked == 0 {
		t.Fatalf("empty final counters: %+v", prog)
	}
	if prog.Valid != int64(prog.Stats.Valid) || prog.Generated != int64(prog.Stats.NestsGenerated) {
		t.Errorf("live counters diverge from final stats: %+v vs %+v", prog, *prog.Stats)
	}
	if prog.BestCC == nil || *prog.BestCC != sr.Result.CCTotal {
		t.Errorf("best_cc = %v, want the search's cc_total %v", prog.BestCC, sr.Result.CCTotal)
	}
	if len(prog.Phases) == 0 {
		t.Error("no phase timings recorded")
	}
}

// TestSearchProgressErrors: unknown ids 404, malformed ids 400, and a live
// id cannot be claimed twice... but a finished one can be reused.
func TestSearchProgressErrors(t *testing.T) {
	memo.Default.Reset()
	_, ts := newTestServer(t, Config{})

	if resp := getJSON(t, ts.URL, "/v1/search/nope/progress", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id = %d, want 404", resp.StatusCode)
	}
	bad := `{"layer":{"name":"l0","kind":"matmul","dims":{"B":32,"K":32,"C":32}},"search_id":"has spaces!"}`
	if resp, data := post(t, ts, "/v1/search", bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad search_id = %d: %s", resp.StatusCode, data)
	}
	ok := `{"layer":{"name":"l0","kind":"matmul","dims":{"B":32,"K":32,"C":32}},"budget":500,"search_id":"reuse"}`
	if resp, data := post(t, ts, "/v1/search", ok); resp.StatusCode != http.StatusOK {
		t.Fatalf("first search = %d: %s", resp.StatusCode, data)
	}
	if resp, data := post(t, ts, "/v1/search", ok); resp.StatusCode != http.StatusOK {
		t.Fatalf("reusing a finished search_id = %d, want 200: %s", resp.StatusCode, data)
	}
}

// explainBody mirrors ExplainResponse loosely, with the report left as raw
// JSON so the test checks what actually went over the wire.
type explainBody struct {
	Layer    string          `json:"layer"`
	Searched bool            `json:"searched"`
	Result   resultJSON      `json:"result"`
	Report   json.RawMessage `json:"report"`
	Trace    json.RawMessage `json:"trace"`
}

// TestExplainEndpoint: searched and fixed-mapping explains both return a
// report whose attribution check sums match SS_overall, and include_trace
// embeds a parseable Perfetto event array.
func TestExplainEndpoint(t *testing.T) {
	memo.Default.Reset()
	_, ts := newTestServer(t, Config{})

	req := `{"layer":{"name":"l0","kind":"matmul","dims":{"B":32,"K":32,"C":32}},"budget":500,"include_trace":true}`
	resp, data := post(t, ts, "/v1/explain", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain = %d: %s", resp.StatusCode, data)
	}
	var out explainBody
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Searched {
		t.Error("searched = false for a mapping-less explain")
	}
	var rep struct {
		SSOverall float64 `json:"ss_overall"`
		Mode      string  `json:"attribution_mode"`
		Check     struct {
			SSOverall          float64 `json:"ss_overall"`
			SumMemContribution float64 `json:"sum_mem_contribution"`
			SumDTLContribution float64 `json:"sum_dtl_contribution"`
		} `json:"check"`
	}
	if err := json.Unmarshal(out.Report, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Check.SumMemContribution != rep.SSOverall || rep.Check.SumDTLContribution != rep.SSOverall {
		t.Errorf("attribution sums %v/%v != ss_overall %v",
			rep.Check.SumMemContribution, rep.Check.SumDTLContribution, rep.SSOverall)
	}
	var events []map[string]any
	if err := json.Unmarshal(out.Trace, &events); err != nil {
		t.Fatalf("embedded trace does not parse as an event array: %v", err)
	}
	if len(events) == 0 {
		t.Error("empty embedded trace")
	}

	// Round-trip: explain the mapping the search found; identical result.
	var sr SearchResponse
	if resp, data := post(t, ts, "/v1/search", smallSearch); resp.StatusCode != http.StatusOK {
		t.Fatalf("search = %d: %s", resp.StatusCode, data)
	} else if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	fixedReq, err := json.Marshal(map[string]any{
		"layer":   json.RawMessage(`{"name":"l0","kind":"matmul","dims":{"B":32,"K":32,"C":32}}`),
		"mapping": sr.Mapping,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, data = post(t, ts, "/v1/explain", string(fixedReq))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fixed-mapping explain = %d: %s", resp.StatusCode, data)
	}
	var fixed explainBody
	if err := json.Unmarshal(data, &fixed); err != nil {
		t.Fatal(err)
	}
	if fixed.Searched {
		t.Error("searched = true for a fixed-mapping explain")
	}
	if fixed.Result.CCTotal != out.Result.CCTotal {
		t.Errorf("fixed-mapping cc_total %v != searched cc_total %v", fixed.Result.CCTotal, out.Result.CCTotal)
	}
}

// TestExplainBadRequests: unknown fields, missing layer, invalid mapping.
func TestExplainBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp, _ := post(t, ts, "/v1/explain", `{"bogus_field":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field = %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(t, ts, "/v1/explain", `{"layer":{"name":"x","kind":"nosuchkind"}}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad layer kind = %d, want 400", resp.StatusCode)
	}
}
