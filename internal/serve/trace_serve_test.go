package serve

// Tracing and flight-recorder contract tests: every response echoes a
// unique X-Request-Id, an admitted request roots a trace exported at
// GET /v1/trace/{id}, the progress endpoint links search -> trace, the
// flight recorder retains correlated request summaries, and a two-node
// sharded search joins one trace across both nodes whose assembled
// critical-path report attributes the coordinator's wall time exactly.

import (
	"encoding/json"
	"net/http"
	"regexp"
	"testing"

	"repro/internal/memo"
	"repro/internal/otrace"
)

var hex32 = regexp.MustCompile(`^[0-9a-f]{32}$`)

func TestRequestIDEcho(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ids := map[string]bool{}
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Request-Id")
		if id == "" {
			t.Fatal("response without X-Request-Id")
		}
		if ids[id] {
			t.Fatalf("request id %q repeated", id)
		}
		ids[id] = true
	}
}

func TestTraceExportAndFlightRecorder(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := post(t, ts, "/v1/search", smallSearch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search = %d: %s", resp.StatusCode, data)
	}
	reqID := resp.Header.Get("X-Request-Id")
	var sr SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}

	// The progress tracker links the search to its trace.
	var pr ProgressResponse
	if r := getJSON(t, ts.URL, "/v1/search/"+sr.SearchID+"/progress", &pr); r.StatusCode != http.StatusOK {
		t.Fatalf("progress = %d", r.StatusCode)
	}
	if !hex32.MatchString(pr.TraceID) {
		t.Fatalf("progress trace_id = %q, want 32 hex digits", pr.TraceID)
	}

	// The trace export holds the request's span tree: the serve.search root
	// and the admission.wait queue span at minimum.
	var wt otrace.WireTrace
	if r := getJSON(t, ts.URL, "/v1/trace/"+pr.TraceID, &wt); r.StatusCode != http.StatusOK {
		t.Fatalf("trace export = %d", r.StatusCode)
	}
	if wt.TraceID != pr.TraceID {
		t.Fatalf("exported trace id %q != %q", wt.TraceID, pr.TraceID)
	}
	var sawRoot, sawWait bool
	for _, sp := range wt.Spans {
		switch sp.Name {
		case "serve.search":
			sawRoot = true
			if sp.Parent != "" {
				t.Errorf("serve.search has parent %q, want root", sp.Parent)
			}
			if sp.Attrs["endpoint"] != "search" || sp.Attrs["request_id"] != reqID {
				t.Errorf("serve.search attrs = %v", sp.Attrs)
			}
		case "admission.wait":
			sawWait = true
			if sp.Cat != otrace.CatQueue {
				t.Errorf("admission.wait cat = %q", sp.Cat)
			}
		}
	}
	if !sawRoot || !sawWait {
		t.Fatalf("trace missing serve.search (%v) or admission.wait (%v): %d spans", sawRoot, sawWait, len(wt.Spans))
	}

	// Unknown and malformed ids answer 404 / 400.
	if r := getJSON(t, ts.URL, "/v1/trace/ffffffffffffffffffffffffffffffff", nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace = %d, want 404", r.StatusCode)
	}
	if r := getJSON(t, ts.URL, "/v1/trace/nope", nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed trace id = %d, want 400", r.StatusCode)
	}

	// The flight recorder retains the search's summary, fully correlated.
	var dbg debugRequestsBody
	if r := getJSON(t, ts.URL, "/v1/debug/requests", &dbg); r.StatusCode != http.StatusOK {
		t.Fatalf("debug/requests = %d", r.StatusCode)
	}
	if dbg.Total < int64(len(dbg.Requests)) || len(dbg.Requests) == 0 {
		t.Fatalf("flight recorder: total=%d entries=%d", dbg.Total, len(dbg.Requests))
	}
	var found *flightEntry
	for i := range dbg.Requests {
		if dbg.Requests[i].RequestID == reqID {
			found = &dbg.Requests[i]
		}
	}
	if found == nil {
		t.Fatalf("search request %s not in flight recorder", reqID)
	}
	if found.Endpoint != "search" || found.Code != http.StatusOK ||
		found.TraceID != pr.TraceID || found.Tenant != "default" ||
		found.DurMS <= 0 || found.Time == "" {
		t.Errorf("flight entry malformed: %+v", *found)
	}
	// Entries come back newest-first: the trace/debug GETs above finished
	// after the search did.
	for i := 1; i < len(dbg.Requests); i++ {
		if dbg.Requests[i].Time > dbg.Requests[i-1].Time {
			t.Fatalf("flight entries not newest-first at %d: %s after %s", i, dbg.Requests[i].Time, dbg.Requests[i-1].Time)
		}
	}
}

func TestFlightRingBounded(t *testing.T) {
	f := newFlightRing(4)
	for i := 0; i < 10; i++ {
		f.add(flightEntry{RequestID: f.nextID(), Code: i})
	}
	got, total := f.snapshot()
	if total != 10 || len(got) != 4 {
		t.Fatalf("ring: total=%d retained=%d, want 10/4", total, len(got))
	}
	for i, e := range got {
		if e.Code != 9-i { // newest first
			t.Fatalf("entry %d has code %d, want %d", i, e.Code, 9-i)
		}
	}
}

// TestCrossNodeTraceJoin: a sharded search through a coordinator node whose
// peer executes the shards leaves one trace spanning both nodes, and the
// assembled fleet view's critical-path report attributes every nanosecond
// of the coordinator's wall time.
func TestCrossNodeTraceJoin(t *testing.T) {
	memo.Default.Reset() // a cached search would never reach the peer
	_, peerTS := newTestServer(t, Config{NodeName: "peer"})
	_, coordTS := newTestServer(t, Config{NodeName: "coord", Peers: []string{peerTS.URL}})

	body := `{"layer":{"name":"xnode","kind":"matmul","dims":{"B":48,"K":48,"C":48}},"budget":800,"shards":3}`
	resp, data := post(t, coordTS, "/v1/search", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded search = %d: %s", resp.StatusCode, data)
	}
	var sr SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	var pr ProgressResponse
	getJSON(t, coordTS.URL, "/v1/search/"+sr.SearchID+"/progress", &pr)
	if pr.TraceID == "" {
		t.Fatal("sharded search reported no trace id")
	}

	// Both nodes export spans under the ONE trace id.
	var coordWT, peerWT otrace.WireTrace
	if r := getJSON(t, coordTS.URL, "/v1/trace/"+pr.TraceID, &coordWT); r.StatusCode != http.StatusOK {
		t.Fatalf("coordinator trace export = %d", r.StatusCode)
	}
	if r := getJSON(t, peerTS.URL, "/v1/trace/"+pr.TraceID, &peerWT); r.StatusCode != http.StatusOK {
		t.Fatalf("peer trace export = %d (trace did not propagate)", r.StatusCode)
	}
	if len(coordWT.Spans) == 0 || len(peerWT.Spans) == 0 {
		t.Fatalf("spans: coord=%d peer=%d, want both > 0", len(coordWT.Spans), len(peerWT.Spans))
	}
	var peerWalks int
	for _, sp := range peerWT.Spans {
		if sp.Name == "shard.walk" && sp.Cat == otrace.CatWalk {
			peerWalks++
		}
	}
	if peerWalks == 0 {
		t.Fatalf("peer recorded no shard.walk spans: %+v", peerWT.Spans)
	}

	a, err := otrace.Assemble("coord", []otrace.WireTrace{coordWT, peerWT})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.DiffNS != 0 || a.Report.SumNS != a.Report.WallNS {
		t.Fatalf("fleet critical path broken: sum=%d wall=%d diff=%d",
			a.Report.SumNS, a.Report.WallNS, a.Report.DiffNS)
	}
	pids := map[int]bool{}
	for _, ev := range a.Events {
		pids[ev.Pid] = true
	}
	if len(pids) < 2 {
		t.Fatalf("assembled Perfetto trace has %d process rows, want both nodes", len(pids))
	}
}
