package serve

// The JSON API. Three endpoints share the request-shaping conventions:
// architectures come either as a named preset ("inhouse", "casestudy",
// "rowstationary", "tpulike") or as an inline config.Arch; spatial
// unrollings as the loops.Nest string form ("K 16 | B 8 | C 2", preset
// default when omitted); and every request may carry timeout_ms, capped at
// the server's MaxTimeout. Bodies are decoded strictly — unknown fields are
// a 400, so typos fail loudly instead of silently falling back to defaults.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/fabric"
	"repro/internal/loops"
	"repro/internal/mapper"
	"repro/internal/network"
	"repro/internal/otrace"
	"repro/internal/transformer"
	"repro/internal/workload"
)

// maxBodyBytes bounds request bodies (inline arch configs are a few KiB).
const maxBodyBytes = 1 << 20

// decodeBody strictly decodes the JSON request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// archSpec is the shared architecture selector of every request.
type archSpec struct {
	// Arch names a preset; ArchConfig inlines a full architecture and wins
	// over Arch. Spatial overrides the preset's spatial unrolling (required
	// with ArchConfig).
	Arch       string       `json:"arch,omitempty"`
	ArchConfig *config.Arch `json:"arch_config,omitempty"`
	Spatial    string       `json:"spatial,omitempty"`
}

// resolve turns the spec into a live architecture and spatial nest.
func (a *archSpec) resolve() (*arch.Arch, loops.Nest, error) {
	var hw *arch.Arch
	var sp loops.Nest
	switch {
	case a.ArchConfig != nil:
		var err error
		hw, err = a.ArchConfig.ToArch()
		if err != nil {
			return nil, nil, err
		}
		if strings.TrimSpace(a.Spatial) == "" {
			return nil, nil, errors.New("inline arch_config requires an explicit spatial")
		}
	default:
		switch strings.ToLower(strings.TrimSpace(a.Arch)) {
		case "", "inhouse":
			hw, sp = arch.InHouse(), arch.InHouseSpatial()
		case "casestudy":
			hw, sp = arch.CaseStudy(), arch.CaseStudySpatial()
		case "rowstationary":
			hw, sp = arch.RowStationary(), arch.RowStationarySpatial()
		case "tpulike":
			hw, sp = arch.TPULike(), arch.TPULikeSpatial()
		default:
			return nil, nil, fmt.Errorf("unknown arch preset %q (want inhouse|casestudy|rowstationary|tpulike, or arch_config)", a.Arch)
		}
	}
	if strings.TrimSpace(a.Spatial) != "" {
		var err error
		sp, err = loops.ParseNest(a.Spatial)
		if err != nil {
			return nil, nil, err
		}
	}
	return hw, sp, nil
}

func parseObjective(s string) (mapper.Objective, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "latency":
		return mapper.MinLatency, nil
	case "energy":
		return mapper.MinEnergy, nil
	case "edp":
		return mapper.MinEDP, nil
	}
	return 0, fmt.Errorf("unknown objective %q (want latency|energy|edp)", s)
}

// resultJSON is the wire form of a core.Result's headline numbers.
type resultJSON struct {
	CCIdeal     float64 `json:"cc_ideal"`
	CCSpatial   int64   `json:"cc_spatial"`
	SSOverall   float64 `json:"ss_overall"`
	Preload     float64 `json:"preload"`
	Offload     float64 `json:"offload"`
	CCTotal     float64 `json:"cc_total"`
	Utilization float64 `json:"utilization"`
	Scenario    int     `json:"scenario"`
}

func fromResult(r *core.Result) resultJSON {
	return resultJSON{
		CCIdeal:     r.CCIdeal,
		CCSpatial:   r.CCSpatial,
		SSOverall:   r.SSOverall,
		Preload:     r.Preload,
		Offload:     r.Offload,
		CCTotal:     r.CCTotal,
		Utilization: r.Utilization,
		Scenario:    int(r.Scenario),
	}
}

// statsJSON is the wire form of mapper.Stats.
type statsJSON struct {
	NestsGenerated int `json:"nests_generated"`
	ClassesMerged  int `json:"classes_merged"`
	SubtreesPruned int `json:"subtrees_pruned"`
	Valid          int `json:"valid"`
	Skipped        int `json:"skipped"`
	Pruned         int `json:"pruned"`
}

func fromStats(st *mapper.Stats) *statsJSON {
	if st == nil {
		return nil
	}
	return &statsJSON{
		NestsGenerated: st.NestsGenerated,
		ClassesMerged:  st.ClassesMerged,
		SubtreesPruned: st.SubtreesPruned,
		Valid:          st.Valid,
		Skipped:        st.Skipped,
		Pruned:         st.Pruned,
	}
}

// EvalRequest prices ONE fixed mapping (no search): POST /v1/eval.
type EvalRequest struct {
	archSpec
	Layer     config.Layer    `json:"layer"`
	Mapping   *config.Mapping `json:"mapping"`
	BWUnaware bool            `json:"bw_unaware,omitempty"`
	TimeoutMS int             `json:"timeout_ms,omitempty"`
}

// EvalResponse is the answer to an EvalRequest.
type EvalResponse struct {
	Layer    string     `json:"layer"`
	Arch     string     `json:"arch"`
	Spatial  string     `json:"spatial"`
	Temporal string     `json:"temporal"`
	Result   resultJSON `json:"result"`
	EnergyPJ float64    `json:"energy_pj"`
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	var req EvalRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Mapping == nil {
		writeError(w, http.StatusBadRequest, "eval requires a mapping (use /v1/search to find one)")
		return
	}
	l, err := req.Layer.ToLayer()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	hw, _, err := req.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	m, err := req.Mapping.ToMapping()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := m.Validate(&l, hw); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	p := &core.Problem{Layer: &l, Arch: hw, Mapping: m}
	var res *core.Result
	if req.BWUnaware {
		res, err = core.EvaluateBWUnaware(p)
	} else {
		res, err = core.Evaluate(p)
	}
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	eb, err := energy.Evaluate(p, nil)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, EvalResponse{
		Layer:    l.Name,
		Arch:     hw.Name,
		Spatial:  m.Spatial.String(),
		Temporal: m.Temporal.String(),
		Result:   fromResult(res),
		EnergyPJ: eb.TotalPJ,
	})
}

// SearchRequest runs a full mapping search: POST /v1/search.
type SearchRequest struct {
	archSpec
	Layer config.Layer `json:"layer"`
	// Budget caps the enumeration walk (mapper.Options.MaxCandidates).
	Budget     int    `json:"budget,omitempty"`
	Objective  string `json:"objective,omitempty"` // latency|energy|edp
	BWUnaware  bool   `json:"bw_unaware,omitempty"`
	Pow2Splits bool   `json:"pow2_splits,omitempty"`
	NoSym      bool   `json:"nosym,omitempty"`
	// NoSurrogate disables the surrogate-guided candidate ordering
	// (results identical either way).
	NoSurrogate bool `json:"nosurrogate,omitempty"`
	// Shards fans the exhaustive search out over K deterministic subtree
	// shards, executed on the server's configured peers (or in-process
	// without peers). Results are bit-identical to the unsharded search for
	// any K. Ignored with anneal.
	Shards int `json:"shards,omitempty"`
	// Anneal switches from the exhaustive engine to simulated annealing.
	Anneal     bool  `json:"anneal,omitempty"`
	Iterations int   `json:"iterations,omitempty"`
	Restarts   int   `json:"restarts,omitempty"`
	Seed       int64 `json:"seed,omitempty"`
	TimeoutMS  int   `json:"timeout_ms,omitempty"`
	// SearchID names this search for GET /v1/search/{id}/progress
	// ([A-Za-z0-9_.-]{1,64}; server-generated when omitted). The assigned id
	// is echoed in the response.
	SearchID string `json:"search_id,omitempty"`
}

// SearchResponse is the answer to a SearchRequest.
type SearchResponse struct {
	Layer    string         `json:"layer"`
	Arch     string         `json:"arch"`
	Spatial  string         `json:"spatial"`
	Temporal string         `json:"temporal"`
	Mapping  config.Mapping `json:"mapping"`
	Result   resultJSON     `json:"result"`
	EnergyPJ float64        `json:"energy_pj,omitempty"`
	Stats    *statsJSON     `json:"stats,omitempty"`
	// SearchID addresses this search's telemetry at
	// GET /v1/search/{id}/progress (empty in contexts with no tracker).
	SearchID string `json:"search_id,omitempty"`
}

// searchResponse builds the wire answer from a search outcome; the same
// constructor serves the handler and the determinism tests, so "the server
// returns exactly what the library returns" is checkable byte for byte.
func searchResponse(l *workload.Layer, hw *arch.Arch, cand *mapper.Candidate, stats *mapper.Stats) SearchResponse {
	return SearchResponse{
		Layer:    l.Name,
		Arch:     hw.Name,
		Spatial:  cand.Mapping.Spatial.String(),
		Temporal: cand.Mapping.Temporal.String(),
		Mapping:  config.FromMapping(cand.Mapping),
		Result:   fromResult(cand.Result),
		EnergyPJ: cand.EnergyPJ,
		Stats:    fromStats(stats),
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	l, err := req.Layer.ToLayer()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	hw, sp, err := req.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	obj, err := parseObjective(req.Objective)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	tracker, err := s.progress.register(req.SearchID)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	tracker.setTrace(otrace.IDString(r.Context()))
	hooks := tracker.hooks(s.met)
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	var cand *mapper.Candidate
	var stats *mapper.Stats
	var steals atomic.Int64
	if req.Anneal {
		cand, err = mapper.AnnealCached(ctx, &l, hw, &mapper.AnnealOptions{
			Spatial:     sp,
			Iterations:  req.Iterations,
			Restarts:    req.Restarts,
			Seed:        req.Seed,
			Objective:   obj,
			BWAware:     !req.BWUnaware,
			NoReduce:    req.NoSym,
			NoSurrogate: req.NoSurrogate,
			Hooks:       hooks,
		})
	} else {
		opt := &mapper.Options{
			Spatial:       sp,
			Pow2Splits:    req.Pow2Splits,
			MaxCandidates: req.Budget,
			Objective:     obj,
			BWAware:       !req.BWUnaware,
			NoReduce:      req.NoSym,
			NoSurrogate:   req.NoSurrogate,
			Hooks:         hooks,
		}
		var run mapper.SearchFunc
		if req.Shards > 1 {
			// The original archSpec is forwarded verbatim so every shard
			// resolves the identical architecture, preset or inline.
			run = fabric.Runner(&fabric.Options{
				Shards:     req.Shards,
				Nodes:      s.cfg.Peers,
				ArchName:   req.Arch,
				ArchConfig: req.ArchConfig,
				Tenant:     tenantOf(r),
				TimeoutMS:  req.TimeoutMS,
				Steals:     &steals,
			})
			noteFrom(r.Context()).addShards(int64(req.Shards))
		}
		cand, stats, err = mapper.BestCachedVia(ctx, &l, hw, opt, run)
		noteFrom(r.Context()).addSteals(steals.Load())
	}
	if err != nil {
		tracker.finish(0, nil, err)
		writeError(w, s.errorStatus(r, err), err.Error())
		return
	}
	tracker.finish(cand.Score(obj), fromStats(stats), nil)
	if stats != nil {
		s.met.noteStats(stats)
	} else {
		s.met.search.searches.Add(1)
	}
	resp := searchResponse(&l, hw, cand, stats)
	resp.SearchID = tracker.id
	writeJSON(w, http.StatusOK, resp)
}

// NetworkRequest evaluates a whole DNN: POST /v1/network.
type NetworkRequest struct {
	archSpec
	// Net names a bundled workload: handtracking|resnet18|vgg16|mobilenetv2.
	// Exactly one of net / transformer_block must be given.
	Net string `json:"net,omitempty"`
	// Transformer builds a transformer-block network (internal/transformer)
	// from a preset plus overrides instead of a bundled suite.
	Transformer *transformer.Spec `json:"transformer_block,omitempty"`
	// Budget is the per-layer search budget (default 6000).
	Budget      int    `json:"budget,omitempty"`
	Objective   string `json:"objective,omitempty"`
	NoPrefetch  bool   `json:"no_prefetch,omitempty"`
	NoSym       bool   `json:"nosym,omitempty"`
	NoSurrogate bool   `json:"nosurrogate,omitempty"`
	PlanGB      bool   `json:"plan_gb,omitempty"`
	// Shards fans every cold per-layer mapping search out over K
	// deterministic subtree shards on the server's configured peers (the
	// same fabric /v1/shard uses). Results are bit-identical for any K.
	Shards    int `json:"shards,omitempty"`
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// NetworkLayerJSON is one layer's line in a NetworkResponse.
type NetworkLayerJSON struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Heads is the head-batch multiplicity of attention ops (present when
	// > 1). For mapped layers cc_total prices ONE head and effective_cc
	// covers all of them; head-batched elementwise passes stream every
	// head in one pass, so their cc_total is already whole-operator.
	Heads    int64  `json:"heads,omitempty"`
	Temporal string `json:"temporal,omitempty"`
	// CCTotal is the per-head mapped latency for matmul-shaped layers and
	// the streaming pass time for elementwise layers (which carry no
	// mapping; see read_bits/write_bits).
	CCTotal       float64 `json:"cc_total"`
	EffectiveCC   float64 `json:"effective_cc"`
	PrefetchSaved float64 `json:"prefetch_saved"`
	SpillCC       float64 `json:"spill_cc"`
	// ReadBits/WriteBits are the exact streamed traffic of elementwise
	// (bandwidth-bound) layers.
	ReadBits  int64   `json:"read_bits,omitempty"`
	WriteBits int64   `json:"write_bits,omitempty"`
	EnergyPJ  float64 `json:"energy_pj"`
	// EnergyError reports a failed energy model evaluation for this layer
	// (EnergyPJ is 0 and excluded from total_pj when set).
	EnergyError string  `json:"energy_error,omitempty"`
	Utilization float64 `json:"utilization"`
}

// NetworkResponse is the answer to a NetworkRequest.
type NetworkResponse struct {
	Net             string             `json:"net"`
	Arch            string             `json:"arch"`
	Layers          []NetworkLayerJSON `json:"layers"`
	TotalCC         float64            `json:"total_cc"`
	TotalPJ         float64            `json:"total_pj"`
	IdealCC         float64            `json:"ideal_cc"`
	PrefetchSavedCC float64            `json:"prefetch_saved_cc"`
	Utilization     float64            `json:"utilization"`
}

// bundledNetwork resolves the named workload suite.
func bundledNetwork(name string) (*network.Network, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "handtracking":
		return network.HandTracking(), nil
	case "resnet18":
		return &network.Network{Name: "resnet18", Layers: workload.ResNet18Suite()}, nil
	case "vgg16":
		return &network.Network{Name: "vgg16", Layers: workload.VGG16Suite()}, nil
	case "mobilenetv2":
		return &network.Network{Name: "mobilenetv2", Layers: workload.MobileNetV2Suite()}, nil
	}
	return nil, fmt.Errorf("unknown net %q (want handtracking|resnet18|vgg16|mobilenetv2)", name)
}

// requestedNetwork resolves a NetworkRequest's workload: a bundled suite or
// a transformer-block spec (exactly one).
func requestedNetwork(req *NetworkRequest) (*network.Network, error) {
	switch {
	case req.Transformer != nil && strings.TrimSpace(req.Net) != "":
		return nil, errors.New("give either net or transformer_block, not both")
	case req.Transformer != nil:
		_, net, err := req.Transformer.Build()
		return net, err
	default:
		return bundledNetwork(req.Net)
	}
}

// BuildNetworkResponse renders an evaluated network in the /v1/network wire
// form. Exported so cmd/xformer's -json output goes through the very same
// constructor as the server: the byte-identity guarantee between the HTTP
// path and the local CLI path is structural, not coincidental.
func BuildNetworkResponse(net *network.Network, hw *arch.Arch, res *network.Result) NetworkResponse {
	out := NetworkResponse{
		Net:             net.Name,
		Arch:            hw.Name,
		TotalCC:         res.TotalCC,
		TotalPJ:         res.TotalPJ,
		IdealCC:         res.IdealCC,
		PrefetchSavedCC: res.PrefetchSavedCC,
		Utilization:     res.Utilization,
	}
	for i := range res.Layers {
		lr := &res.Layers[i]
		lj := NetworkLayerJSON{
			Name:          lr.Original,
			Kind:          lr.Layer.Kind.String(),
			EffectiveCC:   lr.EffectiveCC,
			PrefetchSaved: lr.PrefetchSaved,
			SpillCC:       lr.SpillCC,
			EnergyPJ:      lr.EnergyPJ,
		}
		if h := lr.Layer.HeadCount(); h > 1 {
			lj.Heads = h
		}
		if lr.Candidate != nil {
			lj.Temporal = lr.Candidate.Mapping.Temporal.String()
			lj.CCTotal = lr.Candidate.Result.CCTotal
			lj.Utilization = lr.Candidate.Result.Utilization
		} else {
			// Elementwise: bandwidth-bound pass, no mapping.
			lj.CCTotal = lr.BWBoundCC
			lj.ReadBits = lr.ReadBits
			lj.WriteBits = lr.WriteBits
			lj.Utilization = 1
		}
		if lr.EnergyErr != nil {
			lj.EnergyError = lr.EnergyErr.Error()
		}
		out.Layers = append(out.Layers, lj)
	}
	return out
}

func (s *Server) handleNetwork(w http.ResponseWriter, r *http.Request) {
	var req NetworkRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	net, err := requestedNetwork(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	hw, sp, err := req.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	obj, err := parseObjective(req.Objective)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	var run mapper.SearchFunc
	if req.Shards > 1 {
		run = fabric.Runner(&fabric.Options{
			Shards:     req.Shards,
			Nodes:      s.cfg.Peers,
			ArchName:   req.Arch,
			ArchConfig: req.ArchConfig,
			Tenant:     tenantOf(r),
			TimeoutMS:  req.TimeoutMS,
		})
	}
	res, err := network.Evaluate(ctx, net, hw, sp, &network.Options{
		MaxCandidates: req.Budget,
		Objective:     obj,
		NoPrefetch:    req.NoPrefetch,
		NoReduce:      req.NoSym,
		NoSurrogate:   req.NoSurrogate,
		PlanGB:        req.PlanGB,
		Run:           run,
	})
	if err != nil {
		writeError(w, s.errorStatus(r, err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, BuildNetworkResponse(net, hw, res))
}
