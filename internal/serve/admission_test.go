package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// enqueueWaiter starts an acquire for tenant and blocks until it is actually
// queued, so test enqueue order is deterministic. The returned channel yields
// once the waiter is granted (after it records its id in order).
func enqueueWaiter(t *testing.T, a *admission, tenant string, id string, order chan<- string) {
	t.Helper()
	depth := a.queueDepth()
	go func() {
		release, err := a.acquire(context.Background(), tenant)
		if err != nil {
			t.Errorf("waiter %s: %v", id, err)
			return
		}
		order <- id
		release()
	}()
	deadline := time.Now().Add(5 * time.Second)
	for a.queueDepth() == depth {
		if time.Now().After(deadline) {
			t.Fatalf("waiter %s never queued", id)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWFQGrantOrder: with weights {batch: 1, fast: 3} and the queue built in
// order b1..b4, f1..f3 behind one held slot, the SFQ finish tags are
// b1=1, b2=2, b3=3, b4=4 and f1=1/3, f2=2/3, f3=1, so the deterministic
// (finish, arrival) grant order is f1 f2 b1 f3 b2 b3 b4 — the fast tenant
// drains ~3x faster without starving batch.
func TestWFQGrantOrder(t *testing.T) {
	a := newAdmission(1, 16, map[string]float64{"batch": 1, "fast": 3})
	release, err := a.acquire(context.Background(), defaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 8)
	for _, id := range []string{"b1", "b2", "b3", "b4"} {
		enqueueWaiter(t, a, "batch", id, order)
	}
	for _, id := range []string{"f1", "f2", "f3"} {
		enqueueWaiter(t, a, "fast", id, order)
	}
	release()
	want := []string{"f1", "f2", "b1", "f3", "b2", "b3", "b4"}
	for i, w := range want {
		select {
		case got := <-order:
			if got != w {
				t.Fatalf("grant %d: got %s, want %s (full want %v)", i, got, w, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("grant %d (%s) never arrived", i, w)
		}
	}
	if a.inUse() != 0 || a.queueDepth() != 0 {
		t.Fatalf("controller not idle after drain: inuse=%d queued=%d", a.inUse(), a.queueDepth())
	}
}

// TestWFQUnweightedFIFO: with no weights every tenant weighs 1 and
// same-tenant arrivals drain strictly FIFO.
func TestWFQUnweightedFIFO(t *testing.T) {
	a := newAdmission(1, 8, nil)
	release, err := a.acquire(context.Background(), defaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 4)
	for _, id := range []string{"w1", "w2", "w3"} {
		enqueueWaiter(t, a, "solo", id, order)
	}
	release()
	for _, w := range []string{"w1", "w2", "w3"} {
		if got := <-order; got != w {
			t.Fatalf("got %s, want %s", got, w)
		}
	}
}

// TestWFQCancelWhileQueued: a canceled waiter leaves the queue without
// consuming a slot, and the controller stays consistent.
func TestWFQCancelWhileQueued(t *testing.T) {
	a := newAdmission(1, 8, nil)
	release, err := a.acquire(context.Background(), defaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx, "canceler")
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for a.queueDepth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if a.queueDepth() != 0 {
		t.Fatalf("canceled waiter still queued: depth=%d", a.queueDepth())
	}
	release()
	// The controller must still grant normally.
	r2, err := a.acquire(context.Background(), "after")
	if err != nil {
		t.Fatal(err)
	}
	r2()
	if a.inUse() != 0 {
		t.Fatalf("inuse=%d after full drain", a.inUse())
	}
}

// TestWFQShedsWhenFull: the bounded queue sheds with errAdmissionFull.
func TestWFQShedsWhenFull(t *testing.T) {
	a := newAdmission(1, 0, nil)
	release, err := a.acquire(context.Background(), defaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, err := a.acquire(context.Background(), defaultTenant); !errors.Is(err, errAdmissionFull) {
		t.Fatalf("got %v, want errAdmissionFull", err)
	}
}
