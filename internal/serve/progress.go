package serve

// Live search telemetry: every /v1/search request gets a progress tracker
// fed by the mapper's telemetry hooks (internal/obs), queryable while the
// search runs — and afterwards — via GET /v1/search/{id}/progress. The
// registry is bounded: finished trackers are evicted FIFO beyond
// maxTrackedSearches.
//
// Coalescing caveat: searches are memoized, and hooks only fire in the call
// that actually computes (mapper.BestCached). A request coalescing onto
// another request's in-flight search — or hitting the cache — reports its
// final state from the returned result, with no intermediate snapshots.

import (
	"fmt"
	"math"
	"net/http"
	"regexp"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// maxTrackedSearches bounds the registry (FIFO eviction of the oldest).
const maxTrackedSearches = 512

// searchIDPattern validates client-chosen search IDs.
var searchIDPattern = regexp.MustCompile(`^[A-Za-z0-9_.-]{1,64}$`)

// progressTracker accumulates one search's telemetry. All fields are
// updated through atomics (hook callbacks race across workers) except the
// phase map, which sits behind its own mutex.
type progressTracker struct {
	id      string
	created time.Time

	walked, generated, merged, subtrees atomic.Int64
	valid, pruned                       atomic.Int64
	bestBits                            atomic.Uint64
	elapsedMS                           atomic.Int64
	annealEvents                        atomic.Int64

	mu      sync.Mutex
	phases  map[string]float64 // phase name -> seconds
	state   string             // running | done | error
	errMsg  string
	stats   *statsJSON // final stats, when the search returned them
	traceID string     // the request's trace, for GET /v1/trace/{id}
}

func newProgressTracker(id string) *progressTracker {
	t := &progressTracker{id: id, created: time.Now(), phases: map[string]float64{}, state: "running"}
	t.bestBits.Store(math.Float64bits(math.Inf(1)))
	return t
}

// hooks builds the obs.SearchHooks feeding this tracker (and the server's
// phase-latency histogram).
func (t *progressTracker) hooks(met *metrics) *obs.SearchHooks {
	return &obs.SearchHooks{
		Phase: func(name string, d time.Duration) {
			t.mu.Lock()
			t.phases[name] += d.Seconds()
			t.mu.Unlock()
			met.phaseSeconds.observe(name, d.Seconds())
		},
		Progress: func(p obs.SearchProgress) {
			t.walked.Store(p.Walked)
			t.generated.Store(p.Generated)
			t.merged.Store(p.ClassesMerged)
			t.subtrees.Store(p.SubtreesPruned)
			t.valid.Store(p.Valid)
			t.pruned.Store(p.Pruned)
			t.elapsedMS.Store(p.Elapsed.Milliseconds())
		},
		ImprovedBest: func(score float64, seq int64) {
			bits := math.Float64bits(score)
			for {
				cur := t.bestBits.Load()
				if math.Float64frombits(cur) <= score {
					return
				}
				if t.bestBits.CompareAndSwap(cur, bits) {
					return
				}
			}
		},
		AnnealProgress: func(chain, iter int, best float64) {
			t.annealEvents.Add(1)
			bits := math.Float64bits(best)
			for {
				cur := t.bestBits.Load()
				if math.Float64frombits(cur) <= best {
					return
				}
				if t.bestBits.CompareAndSwap(cur, bits) {
					return
				}
			}
		},
	}
}

// setTrace links the tracker to its request's trace id, so a progress
// poller can pivot straight to GET /v1/trace/{id}.
func (t *progressTracker) setTrace(id string) {
	t.mu.Lock()
	t.traceID = id
	t.mu.Unlock()
}

// finish records the search outcome. A coalesced or cached search that saw
// no hook events still ends with its true final score and stats.
func (t *progressTracker) finish(bestScore float64, stats *statsJSON, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		t.state = "error"
		t.errMsg = err.Error()
		return
	}
	t.state = "done"
	t.stats = stats
	if stats != nil {
		t.walked.Store(int64(stats.NestsGenerated + stats.ClassesMerged))
		t.generated.Store(int64(stats.NestsGenerated))
		t.merged.Store(int64(stats.ClassesMerged))
		t.subtrees.Store(int64(stats.SubtreesPruned))
		t.valid.Store(int64(stats.Valid))
		t.pruned.Store(int64(stats.Pruned))
	}
	if !math.IsInf(bestScore, 1) {
		t.bestBits.Store(math.Float64bits(bestScore))
	}
	if t.elapsedMS.Load() == 0 {
		t.elapsedMS.Store(time.Since(t.created).Milliseconds())
	}
}

// ProgressResponse is the wire form of one search's live state.
type ProgressResponse struct {
	SearchID string `json:"search_id"`
	Status   string `json:"status"` // running | done | error
	Error    string `json:"error,omitempty"`
	// TraceID names the request's distributed trace (GET /v1/trace/{id} on
	// every involved node reconstructs it).
	TraceID string `json:"trace_id,omitempty"`

	Walked         int64 `json:"walked"`
	Generated      int64 `json:"generated"`
	ClassesMerged  int64 `json:"classes_merged"`
	SubtreesPruned int64 `json:"subtrees_pruned"`
	Valid          int64 `json:"valid"`
	Pruned         int64 `json:"pruned"`

	// BestCC is omitted until a valid candidate has been observed.
	BestCC    *float64           `json:"best_cc,omitempty"`
	ElapsedMS int64              `json:"elapsed_ms"`
	Phases    map[string]float64 `json:"phases,omitempty"`
	// AnnealEvents counts annealer chain-progress callbacks (0 for
	// exhaustive searches).
	AnnealEvents int64      `json:"anneal_events,omitempty"`
	Stats        *statsJSON `json:"stats,omitempty"`
}

// snapshot renders the tracker's current state.
func (t *progressTracker) snapshot() ProgressResponse {
	t.mu.Lock()
	phases := make(map[string]float64, len(t.phases))
	for k, v := range t.phases {
		phases[k] = v
	}
	state, errMsg, stats, traceID := t.state, t.errMsg, t.stats, t.traceID
	t.mu.Unlock()

	resp := ProgressResponse{
		SearchID:       t.id,
		Status:         state,
		Error:          errMsg,
		TraceID:        traceID,
		Walked:         t.walked.Load(),
		Generated:      t.generated.Load(),
		ClassesMerged:  t.merged.Load(),
		SubtreesPruned: t.subtrees.Load(),
		Valid:          t.valid.Load(),
		Pruned:         t.pruned.Load(),
		ElapsedMS:      t.elapsedMS.Load(),
		Phases:         phases,
		AnnealEvents:   t.annealEvents.Load(),
		Stats:          stats,
	}
	if best := math.Float64frombits(t.bestBits.Load()); !math.IsInf(best, 1) {
		resp.BestCC = &best
	}
	if state == "running" {
		resp.ElapsedMS = time.Since(t.created).Milliseconds()
	}
	return resp
}

// progressRegistry is the bounded id -> tracker map.
type progressRegistry struct {
	mu    sync.Mutex
	seq   atomic.Int64
	byID  map[string]*progressTracker
	order []string // insertion order, for FIFO eviction
}

func newProgressRegistry() *progressRegistry {
	return &progressRegistry{byID: map[string]*progressTracker{}}
}

// register creates and registers a tracker. A client-supplied id must match
// searchIDPattern and not collide with a live tracker; an empty id draws a
// generated one. Returns an error suitable for a 400/409 response.
func (pr *progressRegistry) register(id string) (*progressTracker, error) {
	if id == "" {
		id = fmt.Sprintf("s%d", pr.seq.Add(1))
	} else if !searchIDPattern.MatchString(id) {
		return nil, fmt.Errorf("invalid search_id %q (want %s)", id, searchIDPattern)
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if old, ok := pr.byID[id]; ok {
		old.mu.Lock()
		running := old.state == "running"
		old.mu.Unlock()
		if running {
			return nil, fmt.Errorf("search_id %q already in use by a running search", id)
		}
		// Replace the finished tracker in place (keep its order slot).
		t := newProgressTracker(id)
		pr.byID[id] = t
		return t, nil
	}
	t := newProgressTracker(id)
	pr.byID[id] = t
	pr.order = append(pr.order, id)
	for len(pr.order) > maxTrackedSearches {
		evict := pr.order[0]
		pr.order = pr.order[1:]
		delete(pr.byID, evict)
	}
	return t, nil
}

// lookup returns the tracker for id, or nil.
func (pr *progressRegistry) lookup(id string) *progressTracker {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return pr.byID[id]
}

// live counts running trackers (the search_live gauge).
func (pr *progressRegistry) live() int64 {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	var n int64
	for _, t := range pr.byID {
		t.mu.Lock()
		if t.state == "running" {
			n++
		}
		t.mu.Unlock()
	}
	return n
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t := s.progress.lookup(id)
	if t == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown search id %q (evicted, or never registered)", id))
		return
	}
	writeJSON(w, http.StatusOK, t.snapshot())
}
