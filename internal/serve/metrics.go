package serve

// Hand-rolled Prometheus text-format metrics (exposition format 0.0.4).
// The repository takes no dependencies beyond the standard library, so
// instead of client_golang this file implements the three instrument kinds
// the service needs — counters, gauges and fixed-bucket histograms — on
// plain atomics, plus a renderer that writes them in a deterministic order
// (sorted families, sorted label values) so /metrics output is diffable and
// testable byte for byte.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mapper"
	"repro/internal/prof"
)

// counter is a monotonically increasing int64.
type counter struct{ v atomic.Int64 }

func (c *counter) Add(n int64) { c.v.Add(n) }
func (c *counter) Load() int64 { return c.v.Load() }

// gauge is a settable int64 level.
type gauge struct{ v atomic.Int64 }

func (g *gauge) Add(n int64) { g.v.Add(n) }
func (g *gauge) Load() int64 { return g.v.Load() }

// histogram observes float64 samples into cumulative buckets. The sum is
// kept as float64 bits behind a CAS loop so Observe stays lock-free.
type histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds))}
}

func (h *histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// latencyBuckets spans sub-millisecond cache hits to minute-scale searches.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// phaseBuckets spans the mapper's phase durations, from microsecond
// generator passes to minute-scale exhaustive walks.
var phaseBuckets = []float64{0.0001, 0.001, 0.01, 0.1, 0.5, 2.5, 10, 60}

// labeledHistogram is a histogram family keyed by one label value.
// Labels appear on first observe; reads snapshot under the same lock.
type labeledHistogram struct {
	bounds []float64

	mu      sync.Mutex
	byLabel map[string]*histogram
}

func newLabeledHistogram(bounds []float64) *labeledHistogram {
	return &labeledHistogram{bounds: bounds, byLabel: map[string]*histogram{}}
}

func (lh *labeledHistogram) observe(label string, v float64) {
	lh.mu.Lock()
	h, ok := lh.byLabel[label]
	if !ok {
		h = newHistogram(lh.bounds)
		lh.byLabel[label] = h
	}
	lh.mu.Unlock()
	h.Observe(v)
}

// labels returns the observed label values, sorted.
func (lh *labeledHistogram) labels() []string {
	lh.mu.Lock()
	defer lh.mu.Unlock()
	out := make([]string, 0, len(lh.byLabel))
	for l := range lh.byLabel {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

func (lh *labeledHistogram) get(label string) *histogram {
	lh.mu.Lock()
	defer lh.mu.Unlock()
	return lh.byLabel[label]
}

// endpointMetrics instruments one API endpoint.
type endpointMetrics struct {
	name     string
	inflight gauge
	latency  *histogram

	mu    sync.Mutex
	codes map[int]*counter // HTTP status -> request count
}

func newEndpointMetrics(name string) *endpointMetrics {
	return &endpointMetrics{
		name:    name,
		latency: newHistogram(latencyBuckets),
		codes:   map[int]*counter{},
	}
}

// done records one finished request.
func (em *endpointMetrics) done(code int, seconds float64) {
	em.mu.Lock()
	c, ok := em.codes[code]
	if !ok {
		c = &counter{}
		em.codes[code] = c
	}
	em.mu.Unlock()
	c.Add(1)
	em.latency.Observe(seconds)
}

// searchCounters accumulates mapper.Stats across all served searches.
type searchCounters struct {
	searches counter
	nests    counter
	merged   counter
	subtrees counter
	valid    counter
	skipped  counter
	bbPruned counter
	walked   counter
	// Surrogate-guided search telemetry (mapper.Stats.Surrogate*):
	// candidates the learned order moved, bound-prunes under that order,
	// and the rank correlation of the last finished guided search.
	surReorders counter
	surPruned   counter
	surRankCorr fgauge
}

// fgauge is a settable float64 level (atomic via its bit pattern).
type fgauge struct{ bits atomic.Uint64 }

func (g *fgauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }
func (g *fgauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// metrics is the service-wide registry. Endpoints are registered once at
// server construction, so the map is read-only afterwards and needs no lock.
type metrics struct {
	start     time.Time
	endpoints map[string]*endpointMetrics
	shed      counter
	search    searchCounters
	// fabricShards counts shard requests this node executed on behalf of a
	// remote coordinator (POST /v1/shard); fabricSteals counts the subset a
	// /v1/shard/steal stopped early so the coordinator could re-balance the
	// remainder.
	fabricShards counter
	fabricSteals counter
	// phaseSeconds times the mapper's internal phases (generate, search,
	// anneal), fed by the telemetry hooks of searches this server computed.
	phaseSeconds *labeledHistogram
	// buildGo / buildRev label the build_info gauge.
	buildGo, buildRev string
}

func newMetrics(start time.Time, endpointNames ...string) *metrics {
	m := &metrics{
		start:        start,
		endpoints:    map[string]*endpointMetrics{},
		phaseSeconds: newLabeledHistogram(phaseBuckets),
	}
	bi := prof.Build()
	m.buildGo, m.buildRev = bi.GoVersion, bi.Revision
	for _, n := range endpointNames {
		m.endpoints[n] = newEndpointMetrics(n)
	}
	return m
}

func (m *metrics) endpoint(name string) *endpointMetrics { return m.endpoints[name] }

// memoSnapshot carries the memo-cache counters into the renderer without
// importing package memo here (keeps the metrics file dependency-free).
type memoSnapshot struct {
	Hits, Misses, Waits, DiskHits, Canceled, Transient int64
}

// admissionSnapshot carries the admission controller's live levels.
type admissionSnapshot struct {
	InUse, Queued int64
	Slots, Queue  int64
}

// storeTierStat carries one memo-store (tier, op) cell into the renderer —
// same no-memo-import convention as memoSnapshot. Buckets are cumulative and
// aligned with Bounds; the +Inf bucket is Count.
type storeTierStat struct {
	Tier, Op string
	Outcomes map[string]uint64
	Bounds   []float64
	Buckets  []uint64
	Sum      float64
	Count    uint64
}

func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// write renders every metric in the Prometheus text exposition format,
// families sorted by name, label sets sorted within a family. searchLive is
// the number of searches with a running progress tracker; tiers is the
// per-tier memo-store registry (memo.TierSnapshots, converted by the
// caller).
func (m *metrics) write(w io.Writer, memo memoSnapshot, adm admissionSnapshot, searchLive int64, tiers []storeTierStat) {
	names := make([]string, 0, len(m.endpoints))
	for n := range m.endpoints {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "# HELP servemodel_admission_inflight Searches currently holding an admission slot.\n")
	fmt.Fprintf(w, "# TYPE servemodel_admission_inflight gauge\n")
	fmt.Fprintf(w, "servemodel_admission_inflight %d\n", adm.InUse)
	fmt.Fprintf(w, "# HELP servemodel_admission_queue_depth Requests waiting for an admission slot.\n")
	fmt.Fprintf(w, "# TYPE servemodel_admission_queue_depth gauge\n")
	fmt.Fprintf(w, "servemodel_admission_queue_depth %d\n", adm.Queued)
	fmt.Fprintf(w, "# HELP servemodel_admission_shed_total Requests rejected with 429 because the admission queue was full.\n")
	fmt.Fprintf(w, "# TYPE servemodel_admission_shed_total counter\n")
	fmt.Fprintf(w, "servemodel_admission_shed_total %d\n", m.shed.Load())
	fmt.Fprintf(w, "# HELP servemodel_admission_slots Configured concurrent-search slots.\n")
	fmt.Fprintf(w, "# TYPE servemodel_admission_slots gauge\n")
	fmt.Fprintf(w, "servemodel_admission_slots %d\n", adm.Slots)

	fmt.Fprintf(w, "# HELP servemodel_build_info Build identity of the running binary (value is always 1).\n")
	fmt.Fprintf(w, "# TYPE servemodel_build_info gauge\n")
	fmt.Fprintf(w, "servemodel_build_info{go_version=%q,revision=%q} 1\n", m.buildGo, m.buildRev)

	fmt.Fprintf(w, "# HELP servemodel_fabric_shards_total Search shards executed by this node for a remote coordinator.\n")
	fmt.Fprintf(w, "# TYPE servemodel_fabric_shards_total counter\n")
	fmt.Fprintf(w, "servemodel_fabric_shards_total %d\n", m.fabricShards.Load())

	fmt.Fprintf(w, "# HELP servemodel_fabric_steals_total Shard walks this node stopped early for a coordinator's work stealing.\n")
	fmt.Fprintf(w, "# TYPE servemodel_fabric_steals_total counter\n")
	fmt.Fprintf(w, "servemodel_fabric_steals_total %d\n", m.fabricSteals.Load())

	fmt.Fprintf(w, "# HELP servemodel_inflight Requests currently being served, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE servemodel_inflight gauge\n")
	for _, n := range names {
		fmt.Fprintf(w, "servemodel_inflight{endpoint=%q} %d\n", n, m.endpoints[n].inflight.Load())
	}

	for _, mc := range []struct {
		name, help string
		v          int64
	}{
		{"servemodel_mapper_classes_merged_total", "Orderings absorbed into an earlier representative's equivalence class.", m.search.merged.Load()},
		{"servemodel_mapper_nests_total", "Ordered nests handed to evaluation across all served searches.", m.search.nests.Load()},
		{"servemodel_mapper_pruned_total", "Full evaluations skipped by the branch-and-bound lower bound.", m.search.bbPruned.Load()},
		{"servemodel_mapper_searches_total", "Mapping searches completed successfully by this server.", m.search.searches.Load()},
		{"servemodel_mapper_skipped_total", "Orderings beyond the walk budget (counted, not walked).", m.search.skipped.Load()},
		{"servemodel_mapper_subtrees_pruned_total", "Factorization subtrees dropped by the generator's probe bound.", m.search.subtrees.Load()},
		{"servemodel_mapper_valid_total", "Evaluated mappings passing validation.", m.search.valid.Load()},
		{"servemodel_memo_canceled_total", "Memo waits abandoned because the caller's context fired.", memo.Canceled},
		{"servemodel_memo_disk_hits_total", "Searches served from the on-disk store.", memo.DiskHits},
		{"servemodel_memo_hits_total", "Searches served from the in-memory cache.", memo.Hits},
		{"servemodel_memo_misses_total", "Searches that ran because no cache entry existed.", memo.Misses},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", mc.name, mc.help, mc.name, mc.name, mc.v)
	}

	// The per-tier store families sort between the memo_* scalar counters
	// (misses < store < transient). tiers arrives sorted by (tier, op).
	fmt.Fprintf(w, "# HELP servemodel_memo_store_ops_total Memo store operations by tier, op and outcome (hit, miss, write, error).\n")
	fmt.Fprintf(w, "# TYPE servemodel_memo_store_ops_total counter\n")
	for _, ts := range tiers {
		outs := make([]string, 0, len(ts.Outcomes))
		for o := range ts.Outcomes {
			outs = append(outs, o)
		}
		sort.Strings(outs)
		for _, o := range outs {
			fmt.Fprintf(w, "servemodel_memo_store_ops_total{tier=%q,op=%q,outcome=%q} %d\n", ts.Tier, ts.Op, o, ts.Outcomes[o])
		}
	}

	fmt.Fprintf(w, "# HELP servemodel_memo_store_seconds Memo store operation latency, by tier and op.\n")
	fmt.Fprintf(w, "# TYPE servemodel_memo_store_seconds histogram\n")
	for _, ts := range tiers {
		for i, b := range ts.Bounds {
			fmt.Fprintf(w, "servemodel_memo_store_seconds_bucket{tier=%q,op=%q,le=%q} %d\n", ts.Tier, ts.Op, fmtFloat(b), ts.Buckets[i])
		}
		fmt.Fprintf(w, "servemodel_memo_store_seconds_bucket{tier=%q,op=%q,le=\"+Inf\"} %d\n", ts.Tier, ts.Op, ts.Count)
		fmt.Fprintf(w, "servemodel_memo_store_seconds_sum{tier=%q,op=%q} %s\n", ts.Tier, ts.Op, fmtFloat(ts.Sum))
		fmt.Fprintf(w, "servemodel_memo_store_seconds_count{tier=%q,op=%q} %d\n", ts.Tier, ts.Op, ts.Count)
	}

	for _, mc := range []struct {
		name, help string
		v          int64
	}{
		{"servemodel_memo_transient_total", "Context-error results evicted instead of cached.", memo.Transient},
		{"servemodel_memo_waits_total", "Callers coalesced onto another caller's in-flight search.", memo.Waits},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", mc.name, mc.help, mc.name, mc.name, mc.v)
	}

	fmt.Fprintf(w, "# HELP servemodel_request_seconds Request latency, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE servemodel_request_seconds histogram\n")
	for _, n := range names {
		h := m.endpoints[n].latency
		for i, b := range h.bounds {
			fmt.Fprintf(w, "servemodel_request_seconds_bucket{endpoint=%q,le=%q} %d\n", n, fmtFloat(b), h.buckets[i].Load())
		}
		fmt.Fprintf(w, "servemodel_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", n, h.count.Load())
		fmt.Fprintf(w, "servemodel_request_seconds_sum{endpoint=%q} %s\n", n, fmtFloat(math.Float64frombits(h.sumBits.Load())))
		fmt.Fprintf(w, "servemodel_request_seconds_count{endpoint=%q} %d\n", n, h.count.Load())
	}

	fmt.Fprintf(w, "# HELP servemodel_requests_total Finished requests, by endpoint and HTTP status.\n")
	fmt.Fprintf(w, "# TYPE servemodel_requests_total counter\n")
	for _, n := range names {
		em := m.endpoints[n]
		em.mu.Lock()
		codes := make([]int, 0, len(em.codes))
		for c := range em.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		vals := make([]int64, len(codes))
		for i, c := range codes {
			vals[i] = em.codes[c].Load()
		}
		em.mu.Unlock()
		for i, c := range codes {
			fmt.Fprintf(w, "servemodel_requests_total{endpoint=%q,code=\"%d\"} %d\n", n, c, vals[i])
		}
	}

	fmt.Fprintf(w, "# HELP servemodel_search_live Searches with a currently running progress tracker.\n")
	fmt.Fprintf(w, "# TYPE servemodel_search_live gauge\n")
	fmt.Fprintf(w, "servemodel_search_live %d\n", searchLive)

	fmt.Fprintf(w, "# HELP servemodel_search_phase_seconds Mapper phase durations (generate, search, anneal) of searches computed by this server.\n")
	fmt.Fprintf(w, "# TYPE servemodel_search_phase_seconds histogram\n")
	for _, ph := range m.phaseSeconds.labels() {
		h := m.phaseSeconds.get(ph)
		for i, b := range h.bounds {
			fmt.Fprintf(w, "servemodel_search_phase_seconds_bucket{phase=%q,le=%q} %d\n", ph, fmtFloat(b), h.buckets[i].Load())
		}
		fmt.Fprintf(w, "servemodel_search_phase_seconds_bucket{phase=%q,le=\"+Inf\"} %d\n", ph, h.count.Load())
		fmt.Fprintf(w, "servemodel_search_phase_seconds_sum{phase=%q} %s\n", ph, fmtFloat(math.Float64frombits(h.sumBits.Load())))
		fmt.Fprintf(w, "servemodel_search_phase_seconds_count{phase=%q} %d\n", ph, h.count.Load())
	}

	fmt.Fprintf(w, "# HELP servemodel_search_surrogate_pruned_total Exact evaluations skipped by the lower bound under the surrogate-guided candidate order.\n")
	fmt.Fprintf(w, "# TYPE servemodel_search_surrogate_pruned_total counter\n")
	fmt.Fprintf(w, "servemodel_search_surrogate_pruned_total %d\n", m.search.surPruned.Load())

	fmt.Fprintf(w, "# HELP servemodel_search_surrogate_rank_correlation Spearman correlation of surrogate predictions against exact scores in the last guided search.\n")
	fmt.Fprintf(w, "# TYPE servemodel_search_surrogate_rank_correlation gauge\n")
	fmt.Fprintf(w, "servemodel_search_surrogate_rank_correlation %s\n", fmtFloat(m.search.surRankCorr.Load()))

	fmt.Fprintf(w, "# HELP servemodel_search_surrogate_reorders_total Candidates the surrogate-guided order streamed out of canonical walk position.\n")
	fmt.Fprintf(w, "# TYPE servemodel_search_surrogate_reorders_total counter\n")
	fmt.Fprintf(w, "servemodel_search_surrogate_reorders_total %d\n", m.search.surReorders.Load())

	fmt.Fprintf(w, "# HELP servemodel_search_walked_total Nest orderings walked (generated plus merged) across all served searches.\n")
	fmt.Fprintf(w, "# TYPE servemodel_search_walked_total counter\n")
	fmt.Fprintf(w, "servemodel_search_walked_total %d\n", m.search.walked.Load())

	fmt.Fprintf(w, "# HELP servemodel_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(w, "# TYPE servemodel_uptime_seconds gauge\n")
	fmt.Fprintf(w, "servemodel_uptime_seconds %s\n", fmtFloat(time.Since(m.start).Seconds()))
}

// noteStats folds one finished search's statistics into the totals. The
// rank-correlation gauge tracks the LAST guided search (a correlation is not
// meaningfully summable); unguided searches leave it untouched, recognized
// by SurrogateRankCorr == 0 — a guided search over >= 2 scored candidates
// essentially never lands on exactly 0.
func (m *metrics) noteStats(st *mapper.Stats) {
	m.search.searches.Add(1)
	m.search.nests.Add(int64(st.NestsGenerated))
	m.search.merged.Add(int64(st.ClassesMerged))
	m.search.subtrees.Add(int64(st.SubtreesPruned))
	m.search.valid.Add(int64(st.Valid))
	m.search.skipped.Add(int64(st.Skipped))
	m.search.bbPruned.Add(int64(st.Pruned))
	m.search.walked.Add(int64(st.NestsGenerated + st.ClassesMerged))
	m.search.surReorders.Add(int64(st.SurrogateReorders))
	m.search.surPruned.Add(int64(st.SurrogatePruned))
	if st.SurrogateRankCorr != 0 {
		m.search.surRankCorr.Set(st.SurrogateRankCorr)
	}
}
