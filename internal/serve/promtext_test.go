package serve

// A strict validator for the Prometheus text exposition format (0.0.4),
// applied to the server's full /metrics output after exercising every
// endpoint. Beyond the substring spot-checks in serve_test.go this parses
// every line: HELP/TYPE headers must precede their family's samples, metric
// and label names must be legal, sample values must parse, histogram series
// must be cumulative with a terminal le="+Inf" bucket that equals _count.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/mapper"
	"repro/internal/memo"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// labelSig canonicalizes a label set minus the "le" label (to group one
// histogram series' buckets).
func labelSig(labels map[string]string) string {
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		if k == "le" {
			continue
		}
		parts = append(parts, k+"="+v)
	}
	// insertion sort; label sets are tiny
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return strings.Join(parts, ",")
}

// parseLabels parses `key="value",key="value"` with Prometheus escaping.
func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("no '=' in label segment %q", s)
		}
		name := s[:eq]
		if !labelNameRe.MatchString(name) {
			return nil, fmt.Errorf("illegal label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s: value not quoted", name)
		}
		s = s[1:]
		var b strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("label %s: trailing backslash", name)
				}
				i++
				switch s[i] {
				case '\\', '"':
					b.WriteByte(s[i])
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, fmt.Errorf("label %s: bad escape \\%c", name, s[i])
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			b.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("label %s: unterminated value", name)
		}
		out[name] = b.String()
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("after label %s: expected ',' got %q", name, s)
			}
			s = s[1:]
		}
	}
	return out, nil
}

// validatePromText parses the full exposition and returns samples by family.
func validatePromText(t *testing.T, text string) map[string][]promSample {
	t.Helper()
	helpSeen := map[string]bool{}
	typeOf := map[string]string{}
	samples := map[string][]promSample{}

	// familyFor maps a sample name to its declared family (histograms expose
	// _bucket/_sum/_count under the family name).
	familyFor := func(name string) string {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok && typeOf[base] == "histogram" {
				return base
			}
		}
		return name
	}

	for i, line := range strings.Split(text, "\n") {
		ln := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Errorf("line %d: HELP without text: %q", ln, line)
			}
			if !metricNameRe.MatchString(name) {
				t.Errorf("line %d: illegal metric name %q", ln, name)
			}
			if helpSeen[name] {
				t.Errorf("line %d: duplicate HELP for %s", ln, name)
			}
			helpSeen[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, _ := strings.Cut(rest, " ")
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("line %d: illegal type %q for %s", ln, typ, name)
			}
			if !helpSeen[name] {
				t.Errorf("line %d: TYPE %s before its HELP", ln, name)
			}
			if _, dup := typeOf[name]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", ln, name)
			}
			if len(samples[name]) > 0 {
				t.Errorf("line %d: TYPE %s after its samples", ln, name)
			}
			typeOf[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}

		// Sample line: name[{labels}] value
		rest := line
		brace := strings.IndexByte(rest, '{')
		var name string
		labels := map[string]string{}
		if brace >= 0 {
			name = rest[:brace]
			end := strings.LastIndexByte(rest, '}')
			if end < brace {
				t.Errorf("line %d: unterminated label block: %q", ln, line)
				continue
			}
			var err error
			labels, err = parseLabels(rest[brace+1 : end])
			if err != nil {
				t.Errorf("line %d: %v", ln, err)
				continue
			}
			rest = strings.TrimSpace(rest[end+1:])
		} else {
			var ok bool
			name, rest, ok = strings.Cut(rest, " ")
			if !ok {
				t.Errorf("line %d: no value: %q", ln, line)
				continue
			}
		}
		if !metricNameRe.MatchString(name) {
			t.Errorf("line %d: illegal metric name %q", ln, name)
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil && strings.TrimSpace(rest) != "+Inf" && strings.TrimSpace(rest) != "NaN" {
			t.Errorf("line %d: bad value %q: %v", ln, rest, err)
			continue
		}
		fam := familyFor(name)
		if !helpSeen[fam] || typeOf[fam] == "" {
			t.Errorf("line %d: sample %s before HELP/TYPE of family %s", ln, name, fam)
		}
		if typeOf[fam] == "counter" && v < 0 {
			t.Errorf("line %d: counter %s negative: %v", ln, name, v)
		}
		samples[fam] = append(samples[fam], promSample{name: name, labels: labels, value: v, line: ln})
	}

	// Histogram invariants: cumulative buckets, terminal +Inf == _count.
	for fam, typ := range typeOf {
		if typ != "histogram" {
			continue
		}
		type series struct {
			last    float64
			lastLe  float64
			infSeen bool
			inf     float64
		}
		bySig := map[string]*series{}
		counts := map[string]float64{}
		for _, sm := range samples[fam] {
			sig := labelSig(sm.labels)
			switch {
			case strings.HasSuffix(sm.name, "_bucket"):
				le, ok := sm.labels["le"]
				if !ok {
					t.Errorf("line %d: %s bucket without le label", sm.line, fam)
					continue
				}
				sr := bySig[sig]
				if sr == nil {
					sr = &series{last: -1, lastLe: -1e308}
					bySig[sig] = sr
				}
				if sr.infSeen {
					t.Errorf("line %d: %s{%s} bucket after le=\"+Inf\"", sm.line, fam, sig)
				}
				if le == "+Inf" {
					sr.infSeen = true
					sr.inf = sm.value
				} else {
					b, err := strconv.ParseFloat(le, 64)
					if err != nil {
						t.Errorf("line %d: bad le %q", sm.line, le)
						continue
					}
					if b <= sr.lastLe {
						t.Errorf("line %d: %s{%s} bucket bounds not ascending (%v after %v)", sm.line, fam, sig, b, sr.lastLe)
					}
					sr.lastLe = b
				}
				if sm.value < sr.last {
					t.Errorf("line %d: %s{%s} buckets not cumulative (%v after %v)", sm.line, fam, sig, sm.value, sr.last)
				}
				sr.last = sm.value
			case strings.HasSuffix(sm.name, "_count"):
				counts[sig] = sm.value
			}
		}
		for sig, sr := range bySig {
			if !sr.infSeen {
				t.Errorf("%s{%s}: no terminal le=\"+Inf\" bucket", fam, sig)
				continue
			}
			if c, ok := counts[sig]; !ok {
				t.Errorf("%s{%s}: buckets without _count", fam, sig)
			} else if c != sr.inf {
				t.Errorf("%s{%s}: le=\"+Inf\" bucket %v != _count %v", fam, sig, sr.inf, c)
			}
		}
	}
	return samples
}

// TestMetricsStrictFormat exercises every endpoint (including a failing
// request and the new explain/progress routes), then validates the complete
// /metrics output against the text-format rules and checks the new families
// are present and sane.
func TestMetricsStrictFormat(t *testing.T) {
	memo.Default.Reset()
	_, ts := newTestServer(t, Config{})

	if resp, data := post(t, ts, "/v1/search", smallSearch); resp.StatusCode != http.StatusOK {
		t.Fatalf("search = %d: %s", resp.StatusCode, data)
	}
	if resp, data := post(t, ts, "/v1/explain", smallSearch); resp.StatusCode != http.StatusOK {
		t.Fatalf("explain = %d: %s", resp.StatusCode, data)
	}
	post(t, ts, "/v1/search", "{ this is not json")
	if resp, err := http.Get(ts.URL + "/healthz"); err == nil {
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/v1/search/s1/progress"); err == nil {
		resp.Body.Close()
	}
	// Memo traffic populates the per-tier store families (the served store
	// is a WithTrace-wrapped Mem, tier "mem"): one write, one hit, one miss.
	putBody, _ := json.Marshal(memo.WirePut{Enc: []byte("promtext-key"), Version: mapper.DiskVersion(), Blob: []byte("blob")})
	post(t, ts, "/v1/memo/put", string(putBody))
	getBody, _ := json.Marshal(memo.WireGet{Enc: []byte("promtext-key"), Version: mapper.DiskVersion()})
	post(t, ts, "/v1/memo/get", string(getBody))
	missBody, _ := json.Marshal(memo.WireGet{Enc: []byte("promtext-missing"), Version: mapper.DiskVersion()})
	post(t, ts, "/v1/memo/get", string(missBody))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content-type = %q", ct)
	}

	samples := validatePromText(t, string(data))

	bi := samples["servemodel_build_info"]
	if len(bi) != 1 {
		t.Fatalf("servemodel_build_info: %d samples, want 1", len(bi))
	}
	if bi[0].value != 1 || bi[0].labels["go_version"] == "" || bi[0].labels["revision"] == "" {
		t.Errorf("build_info sample malformed: %+v", bi[0])
	}

	phases := map[string]bool{}
	for _, sm := range samples["servemodel_search_phase_seconds"] {
		phases[sm.labels["phase"]] = true
	}
	if !phases["generate"] || !phases["search"] {
		t.Errorf("search_phase_seconds phases = %v, want generate and search", phases)
	}

	if got := samples["servemodel_search_walked_total"]; len(got) != 1 || got[0].value <= 0 {
		t.Errorf("search_walked_total = %+v, want one positive sample", got)
	}
	if got := samples["servemodel_search_live"]; len(got) != 1 || got[0].value != 0 {
		t.Errorf("search_live = %+v, want one zero sample (no search in flight)", got)
	}
	// The small search runs guided (latency objective, bandwidth-aware), so
	// the surrogate families must exist and the per-search diagnostics must
	// have landed: a live rank correlation and a non-negative prune count.
	if got := samples["servemodel_search_surrogate_pruned_total"]; len(got) != 1 || got[0].value < 0 {
		t.Errorf("search_surrogate_pruned_total = %+v, want one non-negative sample", got)
	}
	if got := samples["servemodel_search_surrogate_reorders_total"]; len(got) != 1 || got[0].value <= 0 {
		t.Errorf("search_surrogate_reorders_total = %+v, want one positive sample", got)
	}
	if got := samples["servemodel_search_surrogate_rank_correlation"]; len(got) != 1 ||
		got[0].value < -1 || got[0].value > 1 || got[0].value == 0 {
		t.Errorf("search_surrogate_rank_correlation = %+v, want one sample in [-1,1] excluding 0", got)
	}
	for _, fam := range []string{
		"servemodel_request_seconds", "servemodel_requests_total",
		"servemodel_mapper_searches_total", "servemodel_memo_hits_total",
		"servemodel_admission_slots", "servemodel_uptime_seconds",
	} {
		if len(samples[fam]) == 0 {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}

	// Per-tier store families: the memo put/hit/miss above must land as
	// labeled counters and histogram series under tier "mem".
	ops := map[string]float64{} // op/outcome -> count
	for _, sm := range samples["servemodel_memo_store_ops_total"] {
		if sm.labels["tier"] == "mem" {
			ops[sm.labels["op"]+"/"+sm.labels["outcome"]] += sm.value
		}
	}
	if ops["put/write"] < 1 || ops["get/hit"] < 1 || ops["get/miss"] < 1 {
		t.Errorf("memo_store_ops_total mem cells = %v, want write/hit/miss >= 1", ops)
	}
	var sawGetSeries, sawPutSeries bool
	for _, sm := range samples["servemodel_memo_store_seconds"] {
		if sm.labels["tier"] != "mem" || !strings.HasSuffix(sm.name, "_count") {
			continue
		}
		switch sm.labels["op"] {
		case "get":
			sawGetSeries = sm.value >= 2
		case "put":
			sawPutSeries = sm.value >= 1
		}
	}
	if !sawGetSeries || !sawPutSeries {
		t.Errorf("memo_store_seconds mem series incomplete: get=%v put=%v", sawGetSeries, sawPutSeries)
	}
}
