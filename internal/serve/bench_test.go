package serve

// Service-level benchmarks for the BENCH history (cmd/benchjson):
// BenchmarkServeWarm measures the full HTTP round trip when the memo cache
// answers (transport + JSON dominate), BenchmarkServeCold resets the cache
// every iteration so each request pays for a real mapping search. The gap
// between the two is the served cost of the memoization layer.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/memo"
)

func benchServer(b *testing.B) *httptest.Server {
	b.Helper()
	s := New(Config{Logger: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	return ts
}

func benchPost(b *testing.B, ts *httptest.Server, body string) {
	b.Helper()
	resp, err := http.Post(ts.URL+"/v1/search", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("search = %d", resp.StatusCode)
	}
}

func BenchmarkServeWarm(b *testing.B) {
	ts := benchServer(b)
	memo.Default.Reset()
	benchPost(b, ts, smallSearch) // populate the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts, smallSearch)
	}
}

func BenchmarkServeCold(b *testing.B) {
	ts := benchServer(b)
	for i := 0; i < b.N; i++ {
		memo.Default.Reset()
		benchPost(b, ts, smallSearch)
	}
}
