package serve

// Transformer blocks through /v1/network: the served bytes must equal the
// library path run locally through the same response constructor, with and
// without sharded per-layer searches.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/arch"
	"repro/internal/memo"
	"repro/internal/network"
	"repro/internal/transformer"
	"repro/internal/workload"
)

const tinyBlockReq = `{"transformer_block":{"preset":"tiny","mode":"prefill","blocks":2},"budget":400}`

func TestNetworkTransformerBlock(t *testing.T) {
	memo.Default.Reset()
	_, ts := newTestServer(t, Config{})
	resp, data := post(t, ts, "/v1/network", tinyBlockReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("network = %d: %s", resp.StatusCode, data)
	}
	var out NetworkResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	blk, _, err := (&transformer.Spec{Preset: "tiny", Blocks: 2}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Layers) != 2*len(blk.Ops) {
		t.Fatalf("layers = %d, want %d", len(out.Layers), 2*len(blk.Ops))
	}
	var sawElemwise, sawHeads bool
	var sumCC float64
	for _, lj := range out.Layers {
		sumCC += lj.EffectiveCC
		switch lj.Kind {
		case workload.LayerNorm.String(), workload.Softmax.String(),
			workload.GeLU.String(), workload.ResidualAdd.String():
			sawElemwise = true
			if lj.Temporal != "" || lj.ReadBits <= 0 || lj.WriteBits <= 0 {
				t.Errorf("%s: elementwise wire form wrong: %+v", lj.Name, lj)
			}
		}
		// For mapped (matmul-shaped) layers cc_total prices one head;
		// elementwise layers stream all heads in one pass.
		if lj.Heads > 1 && lj.Temporal != "" {
			sawHeads = true
			if lj.EffectiveCC != float64(lj.Heads)*lj.CCTotal {
				t.Errorf("%s: effective_cc %v != heads %d x cc_total %v",
					lj.Name, lj.EffectiveCC, lj.Heads, lj.CCTotal)
			}
		}
	}
	if !sawElemwise || !sawHeads {
		t.Errorf("response misses elementwise (%v) or head-batched (%v) layers", sawElemwise, sawHeads)
	}
	if sumCC != out.TotalCC {
		t.Errorf("per-op sum %v != total_cc %v", sumCC, out.TotalCC)
	}
}

// The served bytes must be EXACTLY what the library path produces — same
// evaluation, same response constructor, same encoder — and a sharded
// request (K = 2, in-process fabric) must not change a single byte.
func TestNetworkTransformerByteIdentity(t *testing.T) {
	memo.Default.Reset()
	_, ts := newTestServer(t, Config{})
	resp, served := post(t, ts, "/v1/network", tinyBlockReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("network = %d: %s", resp.StatusCode, served)
	}

	_, net, err := (&transformer.Spec{Preset: "tiny", Blocks: 2}).Build()
	if err != nil {
		t.Fatal(err)
	}
	hw, sp := arch.InHouse(), arch.InHouseSpatial()
	res, err := network.Evaluate(context.Background(), net, hw, sp,
		&network.Options{MaxCandidates: 400})
	if err != nil {
		t.Fatal(err)
	}
	var local bytes.Buffer
	enc := json.NewEncoder(&local)
	enc.SetIndent("", "  ")
	if err := enc.Encode(BuildNetworkResponse(net, hw, res)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, local.Bytes()) {
		t.Fatalf("served bytes differ from library path:\nserved: %s\nlocal:  %s", served, local.Bytes())
	}

	memo.Default.Reset() // force the sharded path to recompute cold
	resp, sharded := post(t, ts, "/v1/network",
		`{"transformer_block":{"preset":"tiny","mode":"prefill","blocks":2},"budget":400,"shards":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded network = %d: %s", resp.StatusCode, sharded)
	}
	if !bytes.Equal(served, sharded) {
		t.Fatalf("sharded response differs from unsharded:\nunsharded: %s\nsharded:   %s", served, sharded)
	}
}

func TestNetworkTransformerBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct{ name, body string }{
		{"both workloads", `{"net":"handtracking","transformer_block":{"preset":"tiny"}}`},
		{"bad preset", `{"transformer_block":{"preset":"gpt9"}}`},
		{"bad mode", `{"transformer_block":{"preset":"tiny","mode":"sideways"}}`},
		{"indivisible dims", `{"transformer_block":{"d_model":65,"heads":8,"seq_len":4}}`},
	}
	for _, tc := range cases {
		resp, data := post(t, ts, "/v1/network", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", tc.name, resp.StatusCode, data)
		}
	}
}
