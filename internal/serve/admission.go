package serve

// Admission control for the search endpoints. The expensive part of every
// request is a mapping search that fans out over the shared worker budget
// (package par); running an unbounded number of them concurrently would not
// make anything faster — they would time-slice the same GOMAXPROCS tokens —
// it would only multiply peak memory and stretch every caller's latency past
// its deadline. The controller therefore holds concurrent searches at a
// configured slot count (default: the par budget) and lets a bounded
// overflow queue absorb bursts; beyond that the server sheds load with
// 429 + Retry-After, which is the honest answer once queueing time alone
// would eat the client's deadline.
//
// The queue is weighted fair across tenants (start-time fair queueing): each
// waiter is stamped with a virtual finish time
//
//	finish = max(vtime, last[tenant]) + 1/weight(tenant)
//
// where vtime is the finish tag of the last grant and last[tenant] chains a
// tenant's own backlog, so a tenant's waiters drain at a rate proportional
// to its weight while a lone tenant still gets the whole server. Grants pop
// the minimum (finish, arrival) waiter — deterministic for a deterministic
// enqueue order — and a released slot transfers directly to the head waiter
// without bouncing through the free pool, so the slot count is exact. When
// the controller goes fully idle the virtual clock and per-tenant tags reset,
// keeping tags small and runs reproducible.

import (
	"container/heap"
	"context"
	"errors"
	"sync"
)

// errAdmissionFull reports that both the slots and the wait queue are full.
var errAdmissionFull = errors.New("serve: admission queue full")

// defaultTenant is the tenant of requests carrying no X-Tenant header.
const defaultTenant = "default"

// waiter is one queued request.
type waiter struct {
	finish  float64 // virtual finish tag (SFQ)
	arrival int64   // enqueue ticket, breaks finish ties deterministically
	ready   chan struct{}
	granted bool // set (under the admission lock) when a slot was handed over
	index   int  // heap position, -1 once popped
}

// waiterHeap orders waiters by (finish, arrival).
type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].arrival < h[j].arrival
}
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*h = old[:n-1]
	return w
}

type admission struct {
	mu       sync.Mutex
	slots    int // configured capacity
	inuse    int // slots currently held (granted waiters included)
	maxQueue int64
	waiters  waiterHeap
	weights  map[string]float64 // tenant -> share (missing or <= 0: 1)
	last     map[string]float64 // tenant -> finish tag of its newest waiter
	vtime    float64            // finish tag of the last grant
	arrivals int64              // monotone enqueue ticket
}

func newAdmission(slots, maxQueue int, weights map[string]float64) *admission {
	if slots < 1 {
		slots = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		slots:    slots,
		maxQueue: int64(maxQueue),
		weights:  weights,
		last:     map[string]float64{},
	}
}

func (a *admission) weight(tenant string) float64 {
	if w, ok := a.weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// acquire obtains a search slot for tenant, queueing weighted-fair if all
// slots are busy. It returns a release func on success; errAdmissionFull when
// the queue is at capacity (shed immediately, do not wait); or ctx.Err() when
// the caller's context fires while queued.
func (a *admission) acquire(ctx context.Context, tenant string) (func(), error) {
	a.mu.Lock()
	// Fast path: a free slot and nobody ahead in the queue.
	if a.inuse < a.slots && len(a.waiters) == 0 {
		a.inuse++
		a.mu.Unlock()
		return a.release, nil
	}
	if int64(len(a.waiters)) >= a.maxQueue {
		a.mu.Unlock()
		return nil, errAdmissionFull
	}
	w := &waiter{
		finish:  max(a.vtime, a.last[tenant]) + 1/a.weight(tenant),
		arrival: a.arrivals,
		ready:   make(chan struct{}),
	}
	a.arrivals++
	a.last[tenant] = w.finish
	heap.Push(&a.waiters, w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		return a.release, nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// Lost the race: release already handed us the slot. Pass it on.
			a.mu.Unlock()
			a.release()
			return nil, ctx.Err()
		}
		heap.Remove(&a.waiters, w.index)
		a.maybeReset()
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

// release frees one slot: the minimum-(finish, arrival) waiter inherits it
// directly (inuse is unchanged — the slot never becomes free); with an empty
// queue the slot returns to the pool.
func (a *admission) release() {
	a.mu.Lock()
	if len(a.waiters) > 0 {
		w := heap.Pop(&a.waiters).(*waiter)
		a.vtime = w.finish
		w.granted = true
		close(w.ready)
		a.mu.Unlock()
		return
	}
	a.inuse--
	a.maybeReset()
	a.mu.Unlock()
}

// maybeReset zeroes the virtual clock once the controller is fully idle, so
// tags stay small and identical workloads replay identically. Caller holds mu.
func (a *admission) maybeReset() {
	if a.inuse == 0 && len(a.waiters) == 0 {
		a.vtime = 0
		clear(a.last)
	}
}

// inUse returns how many slots are currently held.
func (a *admission) inUse() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int64(a.inuse)
}

// queueDepth returns how many requests are waiting for a slot.
func (a *admission) queueDepth() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int64(len(a.waiters))
}

// capacity returns the configured slot count.
func (a *admission) capacity() int64 { return int64(a.slots) }
