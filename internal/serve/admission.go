package serve

// Admission control for the search endpoints. The expensive part of every
// request is a mapping search that fans out over the shared worker budget
// (package par); running an unbounded number of them concurrently would not
// make anything faster — they would time-slice the same GOMAXPROCS tokens —
// it would only multiply peak memory and stretch every caller's latency past
// its deadline. The controller therefore holds concurrent searches at a
// configured slot count (default: the par budget) and lets a bounded
// overflow queue absorb bursts; beyond that the server sheds load with
// 429 + Retry-After, which is the honest answer once queueing time alone
// would eat the client's deadline.

import (
	"context"
	"errors"
	"sync/atomic"
)

// errAdmissionFull reports that both the slots and the wait queue are full.
var errAdmissionFull = errors.New("serve: admission queue full")

type admission struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64
}

func newAdmission(slots, maxQueue int) *admission {
	if slots < 1 {
		slots = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{slots: make(chan struct{}, slots), maxQueue: int64(maxQueue)}
}

// acquire obtains a search slot, queueing if all slots are busy. It returns
// a release func on success; errAdmissionFull when the queue is at capacity
// (shed immediately, do not wait); or ctx.Err() when the caller's context
// fires while queued.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	// Fast path: a free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots }, nil
	default:
	}
	// Slots busy: join the bounded queue or shed. The counter admits a
	// transient overshoot under racing arrivals — the bound is approximate
	// by design; what matters is that it is a bound.
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return nil, errAdmissionFull
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// inUse returns how many slots are currently held.
func (a *admission) inUse() int64 { return int64(len(a.slots)) }

// queueDepth returns how many requests are waiting for a slot.
func (a *admission) queueDepth() int64 { return a.queued.Load() }

// capacity returns the configured slot count.
func (a *admission) capacity() int64 { return int64(cap(a.slots)) }
