package serve

// The flight recorder and the per-node trace export. Every finished request
// leaves one bounded-ring summary line (endpoint, tenant, trace id, outcome,
// duration, shard/steal counts) behind at GET /v1/debug/requests — enough to
// answer "what has this node been doing" after the fact without scraping
// logs. GET /v1/trace/{id} exports one trace's recorded spans in the otrace
// wire form; a coordinator fetches the same id from every node it touched
// and assembles the fleet-wide view (otrace.Assemble).

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/otrace"
)

// flightRingSize bounds the request ring (FIFO overwrite of the oldest).
const flightRingSize = 256

// flightEntry is one finished request's summary.
type flightEntry struct {
	Time      string  `json:"time"` // RFC3339Nano, request start
	Endpoint  string  `json:"endpoint"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Tenant    string  `json:"tenant"`
	TraceID   string  `json:"trace_id,omitempty"`
	RequestID string  `json:"request_id"`
	Code      int     `json:"code"`
	DurMS     float64 `json:"dur_ms"`
	// Shards / Steals count the fabric work this request fanned out (the
	// coordinator's /v1/search) or executed (/v1/shard: 1 shard, and a steal
	// when the walk was truncated).
	Shards int64 `json:"shards,omitempty"`
	Steals int64 `json:"steals,omitempty"`
}

// flightRing is the bounded ring, plus the request-id generator: ids are
// "<4-byte-hex process tag>-<seq>", unique per process and cheap to grep.
type flightRing struct {
	base string
	seq  atomic.Int64

	mu    sync.Mutex
	buf   []flightEntry
	next  int   // overwrite cursor once the ring is full
	total int64 // all-time count (entries seen, not retained)
}

func newFlightRing(n int) *flightRing {
	var b [4]byte
	if _, err := crand.Read(b[:]); err != nil {
		binary.LittleEndian.PutUint32(b[:], uint32(time.Now().UnixNano()))
	}
	return &flightRing{base: hex.EncodeToString(b[:]), buf: make([]flightEntry, 0, n)}
}

// nextID mints the X-Request-Id for one admission.
func (f *flightRing) nextID() string {
	return fmt.Sprintf("%s-%d", f.base, f.seq.Add(1))
}

func (f *flightRing) add(e flightEntry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, e)
	} else {
		f.buf[f.next] = e
		f.next = (f.next + 1) % len(f.buf)
	}
	f.total++
}

// snapshot returns the retained entries newest-first plus the all-time total.
func (f *flightRing) snapshot() ([]flightEntry, int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.buf)
	out := make([]flightEntry, 0, n)
	start := n - 1
	if n == cap(f.buf) {
		start = (f.next - 1 + n) % n
	}
	for i := 0; i < n; i++ {
		out = append(out, f.buf[(start-i+n)%n])
	}
	return out, f.total
}

// debugRequestsBody is the GET /v1/debug/requests response.
type debugRequestsBody struct {
	// Total counts every request since start; Requests holds the newest
	// flightRingSize of them, newest first.
	Total    int64         `json:"total"`
	Requests []flightEntry `json:"requests"`
}

func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	reqs, total := s.flight.snapshot()
	writeJSON(w, http.StatusOK, debugRequestsBody{Total: total, Requests: reqs})
}

// handleTrace exports one trace's spans as recorded on THIS node. The
// coordinator (or an operator) collects the same trace id from every
// involved node and feeds the set to otrace.Assemble / latmodel -fabrictrace.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := otrace.ParseTraceID(id)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("malformed trace id %q (want 32 hex digits)", id))
		return
	}
	wt, ok := s.cfg.Trace.Export(tr)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown trace %s (evicted, or never recorded on this node)", id))
		return
	}
	writeJSON(w, http.StatusOK, wt)
}

// reqNote rides the request context so deep handlers (shard walks, fabric
// runs) can annotate the flight-recorder entry written after they return.
type reqNote struct {
	shards, steals atomic.Int64
}

type noteKey struct{}

func withReqNote(ctx context.Context, n *reqNote) context.Context {
	return context.WithValue(ctx, noteKey{}, n)
}

// noteFrom returns the request's note, or nil outside instrumented requests.
func noteFrom(ctx context.Context) *reqNote {
	n, _ := ctx.Value(noteKey{}).(*reqNote)
	return n
}

func (n *reqNote) addShards(d int64) {
	if n != nil {
		n.shards.Add(d)
	}
}

func (n *reqNote) addSteals(d int64) {
	if n != nil {
		n.steals.Add(d)
	}
}
