// Package alloc plans the global buffer's contents across a whole-network
// execution: every tensor (per-layer weights, inter-layer activations) gets
// a liveness interval over the layer schedule and an offset in the buffer.
// The planner performs first-fit address assignment on live ranges (the
// classic register/buffer allocation formulation) and reports peak usage,
// per-step occupancy and the tensors that must spill off chip — the precise
// counterpart of the coarse boundary heuristic in package network.
package alloc

import (
	"fmt"
	"sort"
	"strings"
)

// Tensor is one allocatable object.
type Tensor struct {
	Name string
	Bits int64
	// FirstUse / LastUse are layer indices (inclusive) delimiting the
	// liveness interval. Weights of layer i live [i, i] (or [i-1, i] with
	// prefetch); the activation produced by layer i lives [i, i+1].
	FirstUse, LastUse int
}

// Placement is the planner's verdict for one tensor.
type Placement struct {
	Tensor Tensor
	Offset int64 // byte offset × 8 (bit-addressed to match CapacityBits)
	Spill  bool  // true when the tensor did not fit on chip
}

// Plan is a completed allocation.
type Plan struct {
	CapacityBits int64
	Placements   []Placement
	// PeakBits is the maximum simultaneously-live on-chip footprint.
	PeakBits int64
	// SpillBits totals the off-chip tensors.
	SpillBits int64
	// Steps is the number of schedule steps covered.
	Steps int
}

// Build allocates the tensors into a buffer of capacityBits. Tensors are
// placed largest-first (first-fit decreasing); a tensor that cannot be
// placed without overlapping a live neighbour spills.
func Build(tensors []Tensor, capacityBits int64) (*Plan, error) {
	if capacityBits <= 0 {
		return nil, fmt.Errorf("alloc: non-positive capacity %d", capacityBits)
	}
	steps := 0
	for _, t := range tensors {
		if t.Bits <= 0 {
			return nil, fmt.Errorf("alloc: tensor %q has non-positive size", t.Name)
		}
		if t.FirstUse < 0 || t.LastUse < t.FirstUse {
			return nil, fmt.Errorf("alloc: tensor %q has invalid liveness [%d,%d]", t.Name, t.FirstUse, t.LastUse)
		}
		if t.LastUse+1 > steps {
			steps = t.LastUse + 1
		}
	}

	order := make([]int, len(tensors))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := tensors[order[a]], tensors[order[b]]
		if ta.Bits != tb.Bits {
			return ta.Bits > tb.Bits
		}
		return ta.Name < tb.Name
	})

	plan := &Plan{CapacityBits: capacityBits, Steps: steps,
		Placements: make([]Placement, len(tensors))}
	type placed struct {
		off, end int64
		first    int
		last     int
	}
	var live []placed

	overlaps := func(t Tensor, p placed) bool {
		return t.FirstUse <= p.last && p.first <= t.LastUse
	}

	for _, idx := range order {
		t := tensors[idx]
		// Collect occupied intervals that overlap in time, sorted by
		// offset, and first-fit into the gaps.
		var busy []placed
		for _, p := range live {
			if overlaps(t, p) {
				busy = append(busy, p)
			}
		}
		sort.Slice(busy, func(a, b int) bool { return busy[a].off < busy[b].off })
		off := int64(0)
		fits := false
		for _, p := range busy {
			if off+t.Bits <= p.off {
				fits = true
				break
			}
			if p.end > off {
				off = p.end
			}
		}
		if !fits && off+t.Bits <= capacityBits {
			fits = true
		}
		pl := Placement{Tensor: t}
		if fits {
			pl.Offset = off
			live = append(live, placed{off: off, end: off + t.Bits, first: t.FirstUse, last: t.LastUse})
		} else {
			pl.Spill = true
			plan.SpillBits += t.Bits
		}
		plan.Placements[idx] = pl
	}

	// Peak on-chip usage per step.
	for s := 0; s < steps; s++ {
		var sum int64
		for i, pl := range plan.Placements {
			t := tensors[i]
			if !pl.Spill && t.FirstUse <= s && s <= t.LastUse {
				sum += t.Bits
			}
		}
		if sum > plan.PeakBits {
			plan.PeakBits = sum
		}
	}
	return plan, nil
}

// OccupancyAt returns the live on-chip bits at schedule step s.
func (p *Plan) OccupancyAt(s int) int64 {
	var sum int64
	for _, pl := range p.Placements {
		if !pl.Spill && pl.Tensor.FirstUse <= s && s <= pl.Tensor.LastUse {
			sum += pl.Tensor.Bits
		}
	}
	return sum
}

// Spilled returns the names of off-chip tensors, sorted.
func (p *Plan) Spilled() []string {
	var out []string
	for _, pl := range p.Placements {
		if pl.Spill {
			out = append(out, pl.Tensor.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Report renders the plan.
func (p *Plan) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "GB plan: capacity %d KiB, peak %d KiB (%.0f%%), spill %d KiB\n",
		p.CapacityBits/8192, p.PeakBits/8192,
		100*float64(p.PeakBits)/float64(p.CapacityBits), p.SpillBits/8192)
	for _, pl := range p.Placements {
		loc := fmt.Sprintf("@%d", pl.Offset/8)
		if pl.Spill {
			loc = "SPILL"
		}
		fmt.Fprintf(&b, "  %-20s %8d KiB  live [%d,%d]  %s\n",
			pl.Tensor.Name, pl.Tensor.Bits/8192, pl.Tensor.FirstUse, pl.Tensor.LastUse, loc)
	}
	return b.String()
}
