package alloc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuildBasic(t *testing.T) {
	tensors := []Tensor{
		{Name: "w0", Bits: 400, FirstUse: 0, LastUse: 0},
		{Name: "a0", Bits: 300, FirstUse: 0, LastUse: 1},
		{Name: "w1", Bits: 200, FirstUse: 1, LastUse: 1},
		{Name: "a1", Bits: 300, FirstUse: 1, LastUse: 2},
		{Name: "w2", Bits: 200, FirstUse: 2, LastUse: 2},
	}
	p, err := Build(tensors, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Spilled()) != 0 {
		t.Fatalf("unexpected spills: %v", p.Spilled())
	}
	// Peak at step 1: a0 + w1 + a1 = 800.
	if p.PeakBits != 800 {
		t.Errorf("peak = %d, want 800", p.PeakBits)
	}
	if got := p.OccupancyAt(0); got != 700 {
		t.Errorf("occupancy(0) = %d, want 700", got)
	}
	if got := p.OccupancyAt(2); got != 500 {
		t.Errorf("occupancy(2) = %d, want 500", got)
	}
	// No two time-overlapping placements share address space.
	for i, a := range p.Placements {
		for j, b := range p.Placements {
			if i >= j || a.Spill || b.Spill {
				continue
			}
			ta, tb := a.Tensor, b.Tensor
			timeOverlap := ta.FirstUse <= tb.LastUse && tb.FirstUse <= ta.LastUse
			addrOverlap := a.Offset < b.Offset+tb.Bits && b.Offset < a.Offset+ta.Bits
			if timeOverlap && addrOverlap {
				t.Errorf("%s and %s overlap in time and space", ta.Name, tb.Name)
			}
		}
	}
}

func TestAddressReuseAcrossTime(t *testing.T) {
	// Two same-size tensors with disjoint liveness must share an address
	// when the capacity only fits one.
	tensors := []Tensor{
		{Name: "early", Bits: 800, FirstUse: 0, LastUse: 0},
		{Name: "late", Bits: 800, FirstUse: 1, LastUse: 1},
	}
	p, err := Build(tensors, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Spilled()) != 0 {
		t.Fatalf("spills despite disjoint liveness: %v", p.Spilled())
	}
	if p.Placements[0].Offset != p.Placements[1].Offset {
		t.Error("disjoint tensors did not reuse the address")
	}
}

func TestSpill(t *testing.T) {
	tensors := []Tensor{
		{Name: "big", Bits: 900, FirstUse: 0, LastUse: 1},
		{Name: "huge", Bits: 901, FirstUse: 0, LastUse: 1},
	}
	p, err := Build(tensors, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Largest-first places huge, spills big.
	if sp := p.Spilled(); len(sp) != 1 || sp[0] != "big" {
		t.Errorf("spilled = %v", sp)
	}
	if p.SpillBits != 900 {
		t.Errorf("spill bits = %d", p.SpillBits)
	}
}

func TestGapFilling(t *testing.T) {
	// A small tensor must slot into the gap between two live neighbours.
	tensors := []Tensor{
		{Name: "low", Bits: 300, FirstUse: 0, LastUse: 2},
		{Name: "high", Bits: 300, FirstUse: 0, LastUse: 2},
		{Name: "gapfit", Bits: 250, FirstUse: 1, LastUse: 1},
	}
	p, err := Build(tensors, 900)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Spilled()) != 0 {
		t.Fatalf("spills: %v", p.Spilled())
	}
	if p.PeakBits != 850 {
		t.Errorf("peak = %d, want 850", p.PeakBits)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := Build([]Tensor{{Name: "x", Bits: 0, FirstUse: 0, LastUse: 0}}, 10); err == nil {
		t.Error("zero-size tensor accepted")
	}
	if _, err := Build([]Tensor{{Name: "x", Bits: 1, FirstUse: 2, LastUse: 1}}, 10); err == nil {
		t.Error("inverted liveness accepted")
	}
}

func TestReport(t *testing.T) {
	p, err := Build([]Tensor{
		{Name: "w", Bits: 8192 * 4, FirstUse: 0, LastUse: 0},
		{Name: "giant", Bits: 8192 * 1000, FirstUse: 0, LastUse: 0},
	}, 8192*16)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Report()
	for _, want := range []string{"GB plan", "SPILL", "@"} {
		if !strings.Contains(s, want) {
			t.Errorf("report misses %q:\n%s", want, s)
		}
	}
}

// Property: the planner never places overlapping live tensors at
// overlapping addresses, and anything placed fits within the capacity.
func TestPlannerInvariants(t *testing.T) {
	f := func(sizes [6]uint16, starts [6]uint8, caps uint16) bool {
		capacity := int64(caps)%4000 + 500
		var tensors []Tensor
		for i := range sizes {
			first := int(starts[i]) % 4
			tensors = append(tensors, Tensor{
				Name:     string(rune('a' + i)),
				Bits:     int64(sizes[i])%1500 + 1,
				FirstUse: first,
				LastUse:  first + int(sizes[i])%3,
			})
		}
		p, err := Build(tensors, capacity)
		if err != nil {
			return false
		}
		for i, a := range p.Placements {
			if a.Spill {
				continue
			}
			if a.Offset+a.Tensor.Bits > capacity {
				return false
			}
			for j, b := range p.Placements {
				if i >= j || b.Spill {
					continue
				}
				timeOv := a.Tensor.FirstUse <= b.Tensor.LastUse && b.Tensor.FirstUse <= a.Tensor.LastUse
				addrOv := a.Offset < b.Offset+b.Tensor.Bits && b.Offset < a.Offset+a.Tensor.Bits
				if timeOv && addrOv {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
