// Package mapping represents how a DNN layer is spatially and temporally
// mapped onto an accelerator (paper Section II-A-3), and derives the
// per-level, per-operand quantities the latency model consumes: Mem_DATA,
// Mem_CC, the top-loop reuse run of Table I, and the output partial-sum
// traffic split.
//
// A Mapping has a single shared temporal loop stack (innermost first).
// Every operand partitions that same stack into its own memory levels via
// the Bound slices: Bound[op][l] is the number of temporal loops held at
// levels <= l of operand op's memory chain, so the loops of level l are
// Temporal[Bound[op][l-1]:Bound[op][l]]. The last boundary of each operand
// must equal len(Temporal): the outermost memory holds the whole loop nest.
package mapping

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/workload"
)

// Mapping is a complete spatial + temporal mapping of one layer.
type Mapping struct {
	// Spatial is the loop unrolling across the MAC array. Order carries
	// no timing meaning; the product must not exceed the array size.
	Spatial loops.Nest

	// Temporal is the shared temporal loop stack, INNERMOST FIRST.
	Temporal loops.Nest

	// Bound[op] holds one non-decreasing boundary per memory level of
	// operand op's chain; see the package comment.
	Bound [loops.NumOperands][]int
}

// Clone returns a deep copy of the mapping.
func (m *Mapping) Clone() *Mapping {
	out := &Mapping{Spatial: m.Spatial.Clone(), Temporal: m.Temporal.Clone()}
	for op := range m.Bound {
		out.Bound[op] = append([]int(nil), m.Bound[op]...)
	}
	return out
}

// Levels returns the number of memory levels operand op's partition has.
func (m *Mapping) Levels(op loops.Operand) int { return len(m.Bound[op]) }

// LevelNest returns the temporal loops held at level l of operand op
// (innermost first). Level 0 is the register level.
func (m *Mapping) LevelNest(op loops.Operand, l int) loops.Nest {
	lo := 0
	if l > 0 {
		lo = m.Bound[op][l-1]
	}
	return m.Temporal[lo:m.Bound[op][l]]
}

// BelowNest returns all temporal loops at levels <= l of operand op.
func (m *Mapping) BelowNest(op loops.Operand, l int) loops.Nest {
	return m.Temporal[:m.Bound[op][l]]
}

// AboveNest returns all temporal loops strictly above level l of operand op.
func (m *Mapping) AboveNest(op loops.Operand, l int) loops.Nest {
	return m.Temporal[m.Bound[op][l]:]
}

// CCSpatial is the computation-phase cycle count with a fully temporally
// mapped view: the product of all temporal loop iterations (paper Fig. 1(b)
// scenario 2 — one cycle per MAC-array pass).
func (m *Mapping) CCSpatial() int64 { return m.Temporal.Product() }

// MemData returns Mem_DATA: the number of elements of operand op resident
// at memory level l — the product of the operand's relevant loops, temporal
// and spatial, at the current and lower levels (paper Fig. 2(a)). The
// sliding-window coupling of the input's partially relevant loops is
// resolved exactly via the layer strides.
func (m *Mapping) MemData(op loops.Operand, l int, st loops.Strides) int64 {
	dims := m.BelowNest(op, l).DimProduct()
	sp := m.Spatial.DimProduct()
	for i := range dims {
		dims[i] *= sp[i]
	}
	return loops.TileElems(op, dims, st)
}

// MemCC returns Mem_CC: the turnaround cycle count of operand op's data at
// level l — the product of ALL temporal loop sizes at the current and lower
// levels (paper Fig. 2(a)).
func (m *Mapping) MemCC(op loops.Operand, l int) int64 {
	return m.BelowNest(op, l).Product()
}

// Periods returns Z: how many turnarounds of operand op's level-l tile the
// whole layer executes — the product of all temporal loops above level l.
func (m *Mapping) Periods(op loops.Operand, l int) int64 {
	return m.AboveNest(op, l).Product()
}

// TopReuseRun returns the Table-I "top ir loop size" factor for operand op
// at level l: the product of the contiguous run of op-irrelevant loops at
// the top of the level's loop list. 1 when the top loop is relevant (or the
// level holds no loops).
func (m *Mapping) TopReuseRun(op loops.Operand, l int) int64 {
	return m.LevelNest(op, l).TopReuseRun(op)
}

// OutputTraffic describes the partial-sum movement of the output operand
// across the interface above level l (paper Case 1: psums transferred
// between O-Reg and GB).
type OutputTraffic struct {
	// WriteUps is how many level-l tiles are written up across the
	// interface over the whole layer: one per turnaround.
	WriteUps int64
	// ReadBacks is how many of those tiles must later be read back for
	// further accumulation: every turnaround except each distinct tile's
	// first visit. Zero when all reduction loops sit at or below level l
	// (fully output-stationary at this level).
	ReadBacks int64
	// FinalFraction is the fraction of write-ups that carry final (fully
	// reduced) outputs rather than partial sums.
	FinalFraction float64
}

// OutputTrafficAt computes the output traffic across the interface between
// level l and level l+1 of the output operand's chain.
func (m *Mapping) OutputTrafficAt(l int) OutputTraffic {
	z := m.Periods(loops.O, l)
	distinct := m.AboveNest(loops.O, l).ProductOf(func(d loops.Dim) bool {
		return !loops.IsReuseDim(loops.O, d)
	})
	rb := z - distinct
	if rb < 0 {
		rb = 0
	}
	ff := 0.0
	if z > 0 {
		ff = float64(distinct) / float64(z)
	}
	return OutputTraffic{WriteUps: z, ReadBacks: rb, FinalFraction: ff}
}

// SpatialUtilization is the fraction of the MAC array the spatial unrolling
// occupies: spatial product / array size.
func (m *Mapping) SpatialUtilization(a *arch.Arch) float64 {
	return float64(m.Spatial.Product()) / float64(a.MACs)
}

// Validate checks the mapping against a layer and an architecture:
// boundary shape, loop coverage of the layer dimensions, array occupancy
// and per-memory capacity (using the mapper-visible capacity of Table I).
func (m *Mapping) Validate(l *workload.Layer, a *arch.Arch) error {
	if err := m.Spatial.Validate(); err != nil {
		return err
	}
	if err := m.Temporal.Validate(); err != nil {
		return err
	}
	if sp := m.Spatial.Product(); sp > a.MACs {
		return fmt.Errorf("mapping: spatial product %d exceeds MAC array size %d", sp, a.MACs)
	}
	for _, op := range loops.AllOperands {
		b := m.Bound[op]
		if len(b) != a.Levels(op) {
			return fmt.Errorf("mapping: operand %s has %d boundaries, arch chain has %d levels", op, len(b), a.Levels(op))
		}
		prev := 0
		for i, v := range b {
			if v < prev || v > len(m.Temporal) {
				return fmt.Errorf("mapping: operand %s boundary %d = %d invalid (prev %d, stack %d)", op, i, v, prev, len(m.Temporal))
			}
			prev = v
		}
		if b[len(b)-1] != len(m.Temporal) {
			return fmt.Errorf("mapping: operand %s outermost boundary %d != temporal stack size %d", op, b[len(b)-1], len(m.Temporal))
		}
	}

	// Coverage: spatial*temporal per dimension must cover the layer dims;
	// padding (overshoot) is allowed — it shows up as spatial stall.
	tp := m.Temporal.DimProduct()
	sp := m.Spatial.DimProduct()
	for _, d := range loops.AllDims {
		if tp[d]*sp[d] < l.Dim(d) {
			return fmt.Errorf("mapping: dimension %s covered %d < layer extent %d", d, tp[d]*sp[d], l.Dim(d))
		}
		// Padding beyond the minimal ceil coverage is allowed (mappers pad
		// awkward extents to factorable ones; the waste is counted as
		// spatial stall), but never to twice the minimum.
		if minTp := loops.CeilDiv(l.Dim(d), sp[d]); tp[d] >= 2*minTp {
			return fmt.Errorf("mapping: dimension %s over-covered: temporal %d >= 2x minimal %d for extent %d with spatial %d", d, tp[d], minTp, l.Dim(d), sp[d])
		}
	}

	// Capacity: sum the resident footprints of all operands sharing each
	// physical module. The TOP level of each operand's chain is exempt —
	// layer data streams into it from off-chip, so it holds working tiles
	// rather than whole operands (the paper's 1MB GB runs layers whose
	// footprint exceeds it).
	need := map[string]int64{}
	for _, op := range loops.AllOperands {
		for lev, memName := range a.Chain[op] {
			if lev == len(a.Chain[op])-1 {
				continue
			}
			bits := m.MemData(op, lev, l.Strides) * int64(l.Precision.Bits(op))
			need[memName] += bits
		}
	}
	for name, bits := range need {
		mem := a.MemoryByName(name)
		if mem == nil {
			return fmt.Errorf("mapping: chain references unknown memory %q", name)
		}
		if bits > mem.MapperCapacityBits() {
			return fmt.Errorf("mapping: memory %q needs %d bits > mapper-visible capacity %d", name, bits, mem.MapperCapacityBits())
		}
	}
	return nil
}

// String renders the mapping with per-operand level splits, e.g.
//
//	spatial: [K 16 | B 8 | C 2]
//	temporal(in->out): [C 4 | OX 8 | K 2]
//	W: L0=[C 4] L1=[OX 8] L2=[K 2]
func (m *Mapping) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spatial: %s\n", m.Spatial)
	fmt.Fprintf(&b, "temporal(in->out): %s\n", m.Temporal)
	for _, op := range loops.AllOperands {
		fmt.Fprintf(&b, "%s:", op)
		for l := 0; l < m.Levels(op); l++ {
			fmt.Fprintf(&b, " L%d=%s", l, m.LevelNest(op, l))
		}
		b.WriteString("\n")
	}
	return b.String()
}
