package mapping

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/workload"
)

// convMapping builds a direct-conv mapping on the row-stationary arch:
//
//	layer: Conv2D B1 K8 C4 OY28 OX28 FY3 FX3
//	spatial: FY 3 | OY 14 | K 4
//	temporal (in->out): [FX 3 | OX 28 | C 4 | OY 2 | K 2]
//	all operands: Spad=[FX 3 | OX 28], GB rest
func convMapping() (*Mapping, *workload.Layer, *arch.Arch) {
	l := workload.NewConv2D("c", 1, 8, 4, 28, 28, 3, 3)
	a := arch.RowStationary()
	m := &Mapping{
		Spatial: arch.RowStationarySpatial(),
		Temporal: loops.Nest{
			{Dim: loops.FX, Size: 3},
			{Dim: loops.OX, Size: 28},
			{Dim: loops.C, Size: 4},
			{Dim: loops.OY, Size: 2},
			{Dim: loops.K, Size: 2},
		},
	}
	m.Bound[loops.W] = []int{2, 5}
	m.Bound[loops.I] = []int{2, 5}
	m.Bound[loops.O] = []int{2, 5}
	return m, &l, a
}

func TestConvSlidingWindowMemData(t *testing.T) {
	m, l, a := convMapping()
	if err := m.Validate(l, a); err != nil {
		t.Fatal(err)
	}
	st := l.Strides

	// I at the spad level: spatial OY14 x FY3 -> IY = 14+3-1 = 16 rows;
	// temporal OX28 x FX3 -> IX = 28+3-1 = 30 columns; C spatial/temporal
	// below the spad = 1.
	if got := m.MemData(loops.I, 0, st); got != 16*30 {
		t.Errorf("I spad MemData = %d, want %d", got, 16*30)
	}
	// I at GB: full input: C4 x IY(28*2... OY total = 28, FY 3 -> 30) x
	// IX 30.
	if got := m.MemData(loops.I, 1, st); got != 4*30*30 {
		t.Errorf("I GB MemData = %d, want %d", got, 4*30*30)
	}
	// W at spad: spatial FY3 x K4, temporal FX3 -> 36 weights.
	if got := m.MemData(loops.W, 0, st); got != 3*4*3 {
		t.Errorf("W spad MemData = %d, want 36", got)
	}
	// O at spad: spatial OY14 x K4, temporal OX28 -> 1568.
	if got := m.MemData(loops.O, 0, st); got != 14*4*28 {
		t.Errorf("O spad MemData = %d, want %d", got, 14*4*28)
	}
}

func TestConvOutputTraffic(t *testing.T) {
	m, _, _ := convMapping()
	// Above O's spad level: [C 4 | OY 2 | K 2]; C is the only reduction.
	tr := m.OutputTrafficAt(0)
	if tr.WriteUps != 16 {
		t.Errorf("WriteUps = %d, want 16", tr.WriteUps)
	}
	// Distinct tiles above = OY2 x K2 = 4 -> 12 readbacks.
	if tr.ReadBacks != 12 {
		t.Errorf("ReadBacks = %d, want 12", tr.ReadBacks)
	}
	if tr.FinalFraction != 0.25 {
		t.Errorf("FinalFraction = %v, want 0.25", tr.FinalFraction)
	}
}

func TestConvTopReuseRuns(t *testing.T) {
	m, _, _ := convMapping()
	// Spad level nest: [FX 3 | OX 28]. For W, OX is ir on top -> run 28.
	if got := m.TopReuseRun(loops.W, 0); got != 28 {
		t.Errorf("W spad run = %d, want 28", got)
	}
	// For O, FX is ir but OX (top) is relevant -> run 1.
	if got := m.TopReuseRun(loops.O, 0); got != 1 {
		t.Errorf("O spad run = %d, want 1", got)
	}
	// For I, OX/FX are partially relevant -> never reuse -> run 1.
	if got := m.TopReuseRun(loops.I, 0); got != 1 {
		t.Errorf("I spad run = %d, want 1", got)
	}
}

func TestStridedMemData(t *testing.T) {
	m, l, a := convMapping()
	strided := *l
	strided.Strides.SX, strided.Strides.SY = 2, 2
	if err := m.Validate(&strided, a); err != nil {
		t.Fatal(err)
	}
	// Spatial OY14 at stride 2: IY = (14-1)*2 + 3 = 29 rows; temporal
	// OX28: IX = (28-1)*2+3 = 57.
	if got := m.MemData(loops.I, 0, strided.Strides); got != 29*57 {
		t.Errorf("strided I spad MemData = %d, want %d", got, 29*57)
	}
}
