package mapping

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/workload"
)

// testMapping builds a small well-formed mapping on the case-study arch:
//
//	layer: MatMul B=16, K=32, C=8
//	spatial: K 16 | B 8 | C 2
//	temporal (in->out): [C 4 | B 2 | K 2]
//	W: reg=[] lb=[C 4] gb=[B 2 | K 2]
//	I: reg=[] lb=[C 4 | B 2] gb=[K 2]
//	O: reg=[C 4] gb=[B 2 | K 2]
func testMapping() (*Mapping, *workload.Layer, *arch.Arch) {
	l := workload.NewMatMul("t", 16, 32, 8)
	a := arch.CaseStudy()
	m := &Mapping{
		Spatial:  arch.CaseStudySpatial(),
		Temporal: loops.Nest{{Dim: loops.C, Size: 4}, {Dim: loops.B, Size: 2}, {Dim: loops.K, Size: 2}},
	}
	m.Bound[loops.W] = []int{0, 1, 3}
	m.Bound[loops.I] = []int{0, 2, 3}
	m.Bound[loops.O] = []int{1, 3}
	return m, &l, a
}

func TestValidateOK(t *testing.T) {
	m, l, a := testMapping()
	if err := m.Validate(l, a); err != nil {
		t.Fatal(err)
	}
}

func TestLevelNests(t *testing.T) {
	m, _, _ := testMapping()
	if got := m.LevelNest(loops.W, 0).String(); got != "[]" {
		t.Errorf("W L0 = %s", got)
	}
	if got := m.LevelNest(loops.W, 1).String(); got != "[C 4]" {
		t.Errorf("W L1 = %s", got)
	}
	if got := m.LevelNest(loops.W, 2).String(); got != "[B 2 | K 2]" {
		t.Errorf("W L2 = %s", got)
	}
	if got := m.LevelNest(loops.O, 0).String(); got != "[C 4]" {
		t.Errorf("O L0 = %s", got)
	}
	if got := m.AboveNest(loops.O, 0).String(); got != "[B 2 | K 2]" {
		t.Errorf("O above L0 = %s", got)
	}
	if got := m.BelowNest(loops.I, 1).Product(); got != 8 {
		t.Errorf("I below L1 product = %d", got)
	}
}

func TestMemData(t *testing.T) {
	m, l, _ := testMapping()
	st := l.Strides
	// W at reg: spatial r loops only: K16*C2 = 32.
	if got := m.MemData(loops.W, 0, st); got != 32 {
		t.Errorf("W MemData L0 = %d, want 32", got)
	}
	// W at LB: * C4 = 128.
	if got := m.MemData(loops.W, 1, st); got != 128 {
		t.Errorf("W MemData L1 = %d, want 128", got)
	}
	// W at GB: * K2 = 256 (B ir).
	if got := m.MemData(loops.W, 2, st); got != 256 {
		t.Errorf("W MemData L2 = %d, want 256", got)
	}
	// I at reg: B8*C2 = 16.
	if got := m.MemData(loops.I, 0, st); got != 16 {
		t.Errorf("I MemData L0 = %d, want 16", got)
	}
	// I at LB: * C4 * B2 = 128.
	if got := m.MemData(loops.I, 1, st); got != 128 {
		t.Errorf("I MemData L1 = %d, want 128", got)
	}
	// O at reg: K16*B8 * (nothing from C4) = 128.
	if got := m.MemData(loops.O, 0, st); got != 128 {
		t.Errorf("O MemData L0 = %d, want 128", got)
	}
	// O at GB: * B2 * K2 = 512.
	if got := m.MemData(loops.O, 1, st); got != 512 {
		t.Errorf("O MemData L1 = %d, want 512", got)
	}
}

func TestMemCCAndPeriods(t *testing.T) {
	m, _, _ := testMapping()
	if got := m.MemCC(loops.W, 0); got != 1 {
		t.Errorf("W MemCC L0 = %d", got)
	}
	if got := m.MemCC(loops.W, 1); got != 4 {
		t.Errorf("W MemCC L1 = %d", got)
	}
	if got := m.MemCC(loops.O, 0); got != 4 {
		t.Errorf("O MemCC L0 = %d", got)
	}
	if got := m.Periods(loops.W, 1); got != 4 {
		t.Errorf("W Periods L1 = %d", got)
	}
	if got := m.Periods(loops.O, 0); got != 4 {
		t.Errorf("O Periods L0 = %d", got)
	}
	if got := m.CCSpatial(); got != 16 {
		t.Errorf("CCSpatial = %d", got)
	}
	// Invariant: MemCC(l) * Periods(l) == CCSpatial for every operand/level.
	for _, op := range loops.AllOperands {
		for lev := 0; lev < m.Levels(op); lev++ {
			if m.MemCC(op, lev)*m.Periods(op, lev) != m.CCSpatial() {
				t.Errorf("%s L%d: MemCC*Periods != CCSpatial", op, lev)
			}
		}
	}
}

func TestTopReuseRun(t *testing.T) {
	m, _, _ := testMapping()
	// W L1 = [C 4]: C is r for W -> run 1.
	if got := m.TopReuseRun(loops.W, 1); got != 1 {
		t.Errorf("W L1 run = %d", got)
	}
	// O L0 = [C 4]: C is ir for O -> run 4.
	if got := m.TopReuseRun(loops.O, 0); got != 4 {
		t.Errorf("O L0 run = %d", got)
	}
	// I L1 = [C 4 | B 2]: top is B (r for I) -> run 1.
	if got := m.TopReuseRun(loops.I, 1); got != 1 {
		t.Errorf("I L1 run = %d", got)
	}
}

func TestOutputTraffic(t *testing.T) {
	m, _, _ := testMapping()
	// Above O L0: [B 2 | K 2], all r for O -> distinct=4 = Z -> no readbacks.
	tr := m.OutputTrafficAt(0)
	if tr.WriteUps != 4 || tr.ReadBacks != 0 || tr.FinalFraction != 1.0 {
		t.Errorf("output traffic = %+v", tr)
	}

	// Move one C loop above the O reg boundary: O: reg=[] gb=[C4 B2 K2].
	m2 := m.Clone()
	m2.Bound[loops.O] = []int{0, 3}
	tr2 := m2.OutputTrafficAt(0)
	// Z = 16, distinct = 4 -> 12 readbacks, final fraction 0.25.
	if tr2.WriteUps != 16 || tr2.ReadBacks != 12 {
		t.Errorf("psum traffic = %+v", tr2)
	}
	if tr2.FinalFraction != 0.25 {
		t.Errorf("final fraction = %v", tr2.FinalFraction)
	}
}

func TestSpatialUtilization(t *testing.T) {
	m, _, a := testMapping()
	if got := m.SpatialUtilization(a); got != 1.0 {
		t.Errorf("spatial utilization = %v, want 1", got)
	}
	m.Spatial = loops.Nest{{Dim: loops.K, Size: 16}, {Dim: loops.B, Size: 8}}
	if got := m.SpatialUtilization(a); got != 0.5 {
		t.Errorf("spatial utilization = %v, want 0.5", got)
	}
}

func TestValidateErrors(t *testing.T) {
	t.Run("spatial too large", func(t *testing.T) {
		m, l, a := testMapping()
		m.Spatial = append(m.Spatial.Clone(), loops.Loop{Dim: loops.B, Size: 4})
		if err := m.Validate(l, a); err == nil {
			t.Error("oversized spatial validated")
		}
	})
	t.Run("wrong boundary count", func(t *testing.T) {
		m, l, a := testMapping()
		m.Bound[loops.W] = []int{0, 3}
		if err := m.Validate(l, a); err == nil {
			t.Error("short boundary list validated")
		}
	})
	t.Run("decreasing boundaries", func(t *testing.T) {
		m, l, a := testMapping()
		m.Bound[loops.W] = []int{2, 1, 3}
		if err := m.Validate(l, a); err == nil {
			t.Error("decreasing boundaries validated")
		}
	})
	t.Run("last boundary short", func(t *testing.T) {
		m, l, a := testMapping()
		m.Bound[loops.W] = []int{0, 1, 2}
		if err := m.Validate(l, a); err == nil {
			t.Error("short outermost boundary validated")
		}
	})
	t.Run("under-coverage", func(t *testing.T) {
		m, l, a := testMapping()
		big := *l
		big.Dims[loops.C] = 64
		if err := m.Validate(&big, a); err == nil {
			t.Error("under-covered layer validated")
		}
	})
	t.Run("over-coverage", func(t *testing.T) {
		m, l, a := testMapping()
		small := *l
		small.Dims[loops.K] = 16 // spatial 16 alone covers; temporal K2 overshoots
		if err := m.Validate(&small, a); err == nil {
			t.Error("over-covered layer validated")
		}
	})
	t.Run("capacity", func(t *testing.T) {
		m, l, a := testMapping()
		a.MemoryByName("W-LB").CapacityBits = 64 // W tile at LB needs 128*8 bits
		if err := m.Validate(l, a); err == nil {
			t.Error("capacity violation validated")
		}
	})
	t.Run("bad loop size", func(t *testing.T) {
		m, l, a := testMapping()
		m.Temporal[0].Size = 0
		if err := m.Validate(l, a); err == nil {
			t.Error("zero loop validated")
		}
	})
}

func TestValidatePadding(t *testing.T) {
	// Layer K=24 with spatial K16: temporal K2 gives ceil coverage 32>=24, OK.
	l := workload.NewMatMul("p", 16, 24, 8)
	a := arch.CaseStudy()
	m := &Mapping{
		Spatial:  arch.CaseStudySpatial(),
		Temporal: loops.Nest{{Dim: loops.C, Size: 4}, {Dim: loops.B, Size: 2}, {Dim: loops.K, Size: 2}},
	}
	m.Bound[loops.W] = []int{0, 1, 3}
	m.Bound[loops.I] = []int{0, 2, 3}
	m.Bound[loops.O] = []int{1, 3}
	if err := m.Validate(&l, a); err != nil {
		t.Fatalf("padded mapping rejected: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	m, _, _ := testMapping()
	c := m.Clone()
	c.Temporal[0].Size = 99
	c.Bound[loops.W][0] = 3
	if m.Temporal[0].Size == 99 || m.Bound[loops.W][0] == 3 {
		t.Error("Clone aliases state")
	}
}

func TestString(t *testing.T) {
	m, _, _ := testMapping()
	s := m.String()
	for _, want := range []string{"spatial:", "temporal(in->out):", "W:", "I:", "O:", "L0=", "L1="} {
		if !strings.Contains(s, want) {
			t.Errorf("String misses %q in:\n%s", want, s)
		}
	}
}

// Property: for random boundary positions, MemCC divides CCSpatial and
// MemData is monotonically non-decreasing with level.
func TestMappingInvariants(t *testing.T) {
	l := workload.NewMatMul("q", 16, 32, 8)
	f := func(b1, b2 uint8) bool {
		m, _, _ := testMapping()
		n := len(m.Temporal)
		x, y := int(b1)%(n+1), int(b2)%(n+1)
		if x > y {
			x, y = y, x
		}
		m.Bound[loops.W] = []int{x, y, n}
		for _, op := range []loops.Operand{loops.W} {
			prev := int64(0)
			for lev := 0; lev < m.Levels(op); lev++ {
				if m.CCSpatial()%m.MemCC(op, lev) != 0 {
					return false
				}
				d := m.MemData(op, lev, l.Strides)
				if d < prev {
					return false
				}
				prev = d
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
