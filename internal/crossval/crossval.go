// Package crossval generates randomized (layer, architecture, mapping)
// problems and cross-validates the analytical latency model against the
// cycle-level reference simulator over the whole input space — the
// repository's strongest correctness evidence beyond the hand-computed
// unit cases and the fixed validation suite.
package crossval

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/mapper"
	"repro/internal/workload"
)

// Sample is one randomized cross-validation point.
type Sample struct {
	Problem  *core.Problem
	ModelCC  float64
	SimCC    int64
	Accuracy float64
}

// Generator produces random problems from a seeded source so runs are
// reproducible.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a deterministic generator for the seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// pick returns a random element.
func pick[T any](r *rand.Rand, xs []T) T { return xs[r.Intn(len(xs))] }

// RandomLayer draws a small matmul-form layer with power-of-two-ish dims.
func (g *Generator) RandomLayer() workload.Layer {
	dims := []int64{8, 16, 24, 32, 48, 64, 96}
	l := workload.NewMatMul(
		fmt.Sprintf("rnd-%d", g.rng.Int31()),
		pick(g.rng, dims), pick(g.rng, dims), pick(g.rng, dims))
	return l
}

// RandomArch draws a 2- or 3-level architecture with randomized port
// widths, buffering and sharing. All structures are valid by construction.
func (g *Generator) RandomArch() (*arch.Arch, loops.Nest) {
	r := g.rng
	bws := []int64{16, 32, 64, 128, 256}
	spatial := loops.Nest{
		{Dim: loops.K, Size: pick(r, []int64{4, 8})},
		{Dim: loops.B, Size: pick(r, []int64{2, 4})},
	}
	macs := spatial.Product()

	regPorts := func(bw int64) []arch.Port {
		if r.Intn(2) == 0 {
			return []arch.Port{{Name: "rw", Dir: arch.ReadWrite, BWBits: bw}}
		}
		return []arch.Port{
			{Name: "rd", Dir: arch.Read, BWBits: bw},
			{Name: "wr", Dir: arch.Write, BWBits: bw},
		}
	}
	a := &arch.Arch{
		Name:    fmt.Sprintf("rnd-arch-%d", r.Int31()),
		MACs:    macs,
		Combine: arch.Concurrent,
		Memories: []*arch.Memory{
			{
				Name:           "Reg",
				CapacityBits:   macs * 8 * int64(4+r.Intn(8)),
				DoubleBuffered: r.Intn(2) == 0,
				Serves:         []loops.Operand{loops.W, loops.I, loops.O},
				Ports:          regPorts(pick(r, bws)),
			},
			{
				Name:         "GB",
				CapacityBits: 1 << 28,
				Serves:       []loops.Operand{loops.W, loops.I, loops.O},
				Ports: []arch.Port{
					{Name: "rd", Dir: arch.Read, BWBits: pick(r, bws)},
					{Name: "wr", Dir: arch.Write, BWBits: pick(r, bws)},
				},
			},
		},
	}
	chains := map[loops.Operand][]string{
		loops.W: {"Reg", "GB"},
		loops.I: {"Reg", "GB"},
		loops.O: {"Reg", "GB"},
	}
	// Optionally insert a middle level for W and I.
	if r.Intn(2) == 0 {
		a.Memories = append(a.Memories, &arch.Memory{
			Name:           "LB",
			CapacityBits:   1 << uint(16+r.Intn(4)),
			DoubleBuffered: r.Intn(2) == 0,
			Serves:         []loops.Operand{loops.W, loops.I},
			Ports: []arch.Port{
				{Name: "rd", Dir: arch.Read, BWBits: pick(r, bws)},
				{Name: "wr", Dir: arch.Write, BWBits: pick(r, bws)},
			},
		})
		chains[loops.W] = []string{"Reg", "LB", "GB"}
		chains[loops.I] = []string{"Reg", "LB", "GB"}
	}
	for op, c := range chains {
		a.Chain[op] = c
	}
	if err := a.Normalize(); err != nil {
		panic("crossval: " + err.Error())
	}
	if err := a.Validate(); err != nil {
		panic("crossval: " + err.Error())
	}
	return a, spatial
}

// Next draws a problem (with its best mapping under the model) and runs
// both the model and the simulator. Returns nil when no valid mapping
// exists for the draw (the caller should just draw again).
func (g *Generator) Next(budget int, simulate func(*core.Problem) (int64, error)) (*Sample, error) {
	layer := g.RandomLayer()
	hw, sp := g.RandomArch()
	best, _, err := mapper.BestCached(context.Background(), &layer, hw, &mapper.Options{
		Spatial: sp, BWAware: true, MaxCandidates: budget,
	})
	if err != nil {
		return nil, nil // unmappable draw; not an error
	}
	p := &core.Problem{Layer: &layer, Arch: hw, Mapping: best.Mapping}
	simCC, err := simulate(p)
	if err != nil {
		return nil, fmt.Errorf("crossval: sim on %s/%s: %w", layer.Name, hw.Name, err)
	}
	acc := 1 - abs(best.Result.CCTotal-float64(simCC))/float64(simCC)
	return &Sample{Problem: p, ModelCC: best.Result.CCTotal, SimCC: simCC, Accuracy: acc}, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
