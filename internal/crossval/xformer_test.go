package crossval

import (
	"testing"
)

// TestRandomizedXformerCrossValidation: the transformer matmul family
// (attention score/context, FFN and projection aspects, decode rows) tracks
// the simulator within the conv-suite tolerances.
func TestRandomizedXformerCrossValidation(t *testing.T) {
	const want = 25
	g := NewGenerator(20260807)
	var samples []*Sample
	draws := 0
	for len(samples) < want && draws < want*8 {
		draws++
		s, err := g.NextXformer(800, simulate)
		if err != nil {
			t.Fatal(err)
		}
		if s == nil {
			continue
		}
		samples = append(samples, s)
	}
	if len(samples) < want {
		t.Fatalf("only %d mappable transformer samples in %d draws", len(samples), draws)
	}
	var sum float64
	worst := 1.0
	var worstSample *Sample
	for _, s := range samples {
		sum += s.Accuracy
		if s.Accuracy < worst {
			worst = s.Accuracy
			worstSample = s
		}
		if s.ModelCC <= 0 || s.SimCC <= 0 {
			t.Fatalf("degenerate sample: %+v", s)
		}
	}
	avg := sum / float64(len(samples))
	if avg < 0.85 {
		t.Errorf("transformer cross-validation average %.3f < 0.85", avg)
	}
	if worst < 0.5 {
		t.Errorf("worst transformer sample %.3f < 0.5 (model %.0f vs sim %d on %s, layer %s)",
			worst, worstSample.ModelCC, worstSample.SimCC,
			worstSample.Problem.Arch.Name, worstSample.Problem.Layer.Name)
	}
	t.Logf("transformer cross-validation over %d problems: avg %.1f%%, worst %.1f%%",
		len(samples), 100*avg, 100*worst)
}

// TestTransformerFixtures pins every fixed transformer op shape against the
// simulator on several deterministic architecture draws each: any future
// model-vs-sim drift on an attention/FFN shape fails here with the layer
// named.
func TestTransformerFixtures(t *testing.T) {
	fixtures := TransformerFixtures()
	if len(fixtures) < 8 {
		t.Fatalf("fixture suite shrank to %d shapes", len(fixtures))
	}
	g := NewGenerator(9)
	var sum float64
	n := 0
	for _, fx := range fixtures {
		if err := fx.Validate(); err != nil {
			t.Fatalf("%s: %v", fx.Name, err)
		}
		got := 0
		for tries := 0; tries < 6 && got < 2; tries++ {
			s, err := g.ValidateFixture(fx, 800, simulate)
			if err != nil {
				t.Fatal(err)
			}
			if s == nil {
				continue
			}
			got++
			n++
			sum += s.Accuracy
			if s.Accuracy < 0.5 {
				t.Errorf("fixture %s on %s: accuracy %.3f < 0.5 (model %.0f vs sim %d)",
					fx.Name, s.Problem.Arch.Name, s.Accuracy, s.ModelCC, s.SimCC)
			}
		}
		if got == 0 {
			t.Errorf("fixture %s: no mappable arch draw", fx.Name)
		}
	}
	if n == 0 {
		t.Fatal("no fixture samples")
	}
	if avg := sum / float64(n); avg < 0.85 {
		t.Errorf("fixture-suite average accuracy %.3f < 0.85", avg)
	}
	t.Logf("transformer fixtures: %d samples, avg %.1f%%", n, 100*sum/float64(n))
}
