package crossval

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/mapper"
	"repro/internal/workload"
)

// Transformer-shaped cross-validation: the attention and FFN matmul shapes
// of internal/transformer, scaled down so the cycle-level simulator stays
// tractable (its cost is proportional to MACs). Head batching is exact
// multiplication in the model (network.Evaluate scales a per-head result),
// so the per-head problem is what gets simulated.

// RandomAttnLayer draws a per-head attention matmul — score (Q·K^T, wide
// reduction-free K) or context (scores·V, long reduction) — with
// transformer-like aspect ratios: small head dims against longer contexts,
// including the degenerate single-query decode row.
func (g *Generator) RandomAttnLayer() workload.Layer {
	r := g.rng
	rows := pick(r, []int64{1, 8, 16, 32}) // 1 = decode
	ctx := pick(r, []int64{16, 32, 48, 64})
	dh := pick(r, []int64{8, 16, 32, 64})
	if r.Intn(2) == 0 {
		return workload.NewAttnScore(fmt.Sprintf("attn-s-%d", r.Int31()), rows, ctx, dh, 1)
	}
	return workload.NewAttnCtx(fmt.Sprintf("attn-c-%d", r.Int31()), rows, dh, ctx, 1)
}

// RandomFFNLayer draws an FFN projection shape: the 4x expansion (up) or
// contraction (down) matmul, plus the square QKV-projection aspect.
func (g *Generator) RandomFFNLayer() workload.Layer {
	r := g.rng
	rows := pick(r, []int64{1, 8, 16, 32})
	d := pick(r, []int64{16, 32, 64})
	switch r.Intn(3) {
	case 0:
		return workload.NewMatMul(fmt.Sprintf("ffn-up-%d", r.Int31()), rows, 4*d, d)
	case 1:
		return workload.NewMatMul(fmt.Sprintf("ffn-dn-%d", r.Int31()), rows, d, 4*d)
	}
	return workload.NewMatMul(fmt.Sprintf("proj-%d", r.Int31()), rows, d, d)
}

// NextXformer draws a transformer-shaped problem (attention or FFN matmul
// on a random architecture) and cross-validates model vs simulator. Returns
// nil for unmappable draws, like Next.
func (g *Generator) NextXformer(budget int, simulate func(*core.Problem) (int64, error)) (*Sample, error) {
	var layer workload.Layer
	if g.rng.Intn(2) == 0 {
		layer = g.RandomAttnLayer()
	} else {
		layer = g.RandomFFNLayer()
	}
	return g.ValidateFixture(layer, budget, simulate)
}

// TransformerFixtures returns the fixed regression shapes pinning every
// matmul-shaped transformer op against the simulator: QKV/output
// projections, prefill and decode attention score/context, and the FFN
// up/down projections. Dims are scaled-down block shapes (dh = 16..32,
// short sequences) so a sim run stays cheap; aspect ratios match the ops
// they stand in for.
func TransformerFixtures() []workload.Layer {
	return []workload.Layer{
		workload.NewMatMul("fx-qkv-proj", 16, 32, 32),    // seq x D x D
		workload.NewAttnScore("fx-score", 16, 16, 32, 1), // prefill Q·K^T
		workload.NewAttnCtx("fx-ctx", 16, 32, 16, 1),     // prefill scores·V
		workload.NewAttnScore("fx-score-dec", 1, 48, 32, 1),
		workload.NewAttnCtx("fx-ctx-dec", 1, 32, 48, 1),
		workload.NewMatMul("fx-ffn-up", 16, 128, 32), // seq x 4D x D
		workload.NewMatMul("fx-ffn-dn", 16, 32, 128), // seq x D x 4D
		workload.NewMatMul("fx-dec-proj", 1, 64, 64), // decode projection row
	}
}

// ValidateFixture maps one fixture on (hw, sp) and cross-validates it.
// Returns nil when the fixture is unmappable on that architecture draw.
func (g *Generator) ValidateFixture(layer workload.Layer, budget int, simulate func(*core.Problem) (int64, error)) (*Sample, error) {
	hw, sp := g.RandomArch()
	best, _, err := mapper.BestCached(context.Background(), &layer, hw, &mapper.Options{
		Spatial: sp, BWAware: true, MaxCandidates: budget,
	})
	if err != nil {
		return nil, nil
	}
	p := &core.Problem{Layer: &layer, Arch: hw, Mapping: best.Mapping}
	simCC, err := simulate(p)
	if err != nil {
		return nil, fmt.Errorf("crossval: xformer sim on %s/%s: %w", layer.Name, hw.Name, err)
	}
	acc := 1 - abs(best.Result.CCTotal-float64(simCC))/float64(simCC)
	return &Sample{Problem: p, ModelCC: best.Result.CCTotal, SimCC: simCC, Accuracy: acc}, nil
}
