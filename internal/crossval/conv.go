package crossval

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/mapper"
	"repro/internal/workload"
)

// RandomConvLayer draws a small direct convolution (no Im2Col), exercising
// the 7-dimensional path with sliding-window input tiles.
func (g *Generator) RandomConvLayer() workload.Layer {
	r := g.rng
	oys := []int64{7, 14, 28}
	ks := []int64{8, 16, 32}
	cs := []int64{4, 8, 16}
	oy := pick(r, oys)
	l := workload.NewConv2D(
		fmt.Sprintf("rndconv-%d", r.Int31()),
		1, pick(r, ks), pick(r, cs), oy, oy, 3, 3)
	if r.Intn(3) == 0 {
		l.Strides.SX, l.Strides.SY = 2, 2
	}
	return l
}

// RandomConvArch draws a row-stationary-style machine: per-PE scratchpads
// over a GB, with spatial unrolling over FY/OY/K and randomized port
// widths and buffering.
func (g *Generator) RandomConvArch() (*arch.Arch, loops.Nest) {
	r := g.rng
	bws := []int64{32, 64, 128, 256}
	spatial := loops.Nest{
		{Dim: loops.FY, Size: 3},
		{Dim: loops.OY, Size: 7},
		{Dim: loops.K, Size: pick(r, []int64{2, 4})},
	}
	macs := spatial.Product()
	a := &arch.Arch{
		Name:    fmt.Sprintf("rnd-rs-%d", r.Int31()),
		MACs:    macs,
		Combine: arch.Concurrent,
		Memories: []*arch.Memory{
			{
				Name:           "Spad",
				CapacityBits:   1 << uint(15+r.Intn(3)),
				DoubleBuffered: r.Intn(2) == 0,
				Serves:         []loops.Operand{loops.W, loops.I, loops.O},
				Ports: []arch.Port{
					{Name: "rd", Dir: arch.Read, BWBits: pick(r, bws)},
					{Name: "wr", Dir: arch.Write, BWBits: pick(r, bws)},
				},
			},
			{
				Name:         "GB",
				CapacityBits: 1 << 28,
				Serves:       []loops.Operand{loops.W, loops.I, loops.O},
				Ports: []arch.Port{
					{Name: "rd", Dir: arch.Read, BWBits: pick(r, bws)},
					{Name: "wr", Dir: arch.Write, BWBits: pick(r, bws)},
				},
			},
		},
	}
	for _, op := range loops.AllOperands {
		a.Chain[op] = []string{"Spad", "GB"}
	}
	if err := a.Normalize(); err != nil {
		panic("crossval: " + err.Error())
	}
	if err := a.Validate(); err != nil {
		panic("crossval: " + err.Error())
	}
	return a, spatial
}

// NextConv draws a direct-convolution problem and cross-validates it.
func (g *Generator) NextConv(budget int, simulate func(*core.Problem) (int64, error)) (*Sample, error) {
	layer := g.RandomConvLayer()
	hw, sp := g.RandomConvArch()
	best, _, err := mapper.BestCached(context.Background(), &layer, hw, &mapper.Options{
		Spatial: sp, BWAware: true, MaxCandidates: budget,
	})
	if err != nil {
		return nil, nil
	}
	p := &core.Problem{Layer: &layer, Arch: hw, Mapping: best.Mapping}
	simCC, err := simulate(p)
	if err != nil {
		return nil, fmt.Errorf("crossval: conv sim: %w", err)
	}
	acc := 1 - abs(best.Result.CCTotal-float64(simCC))/float64(simCC)
	return &Sample{Problem: p, ModelCC: best.Result.CCTotal, SimCC: simCC, Accuracy: acc}, nil
}
