package crossval

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func simulate(p *core.Problem) (int64, error) {
	r, err := sim.Simulate(p, nil)
	if err != nil {
		return 0, err
	}
	return r.Cycles, nil
}

// TestRandomizedCrossValidation draws random problems and checks that the
// analytical model tracks the reference simulator: every sample within a
// generous band, and the average within the validation-grade band.
func TestRandomizedCrossValidation(t *testing.T) {
	const want = 40
	g := NewGenerator(20220318) // DATE'22 paper date; any fixed seed works
	var samples []*Sample
	draws := 0
	for len(samples) < want && draws < want*6 {
		draws++
		s, err := g.Next(800, simulate)
		if err != nil {
			t.Fatal(err)
		}
		if s == nil {
			continue
		}
		samples = append(samples, s)
	}
	if len(samples) < want {
		t.Fatalf("only %d mappable samples in %d draws", len(samples), draws)
	}

	var sum float64
	worst := 1.0
	var worstSample *Sample
	for _, s := range samples {
		sum += s.Accuracy
		if s.Accuracy < worst {
			worst = s.Accuracy
			worstSample = s
		}
		if s.ModelCC <= 0 || s.SimCC <= 0 {
			t.Fatalf("degenerate sample: %+v", s)
		}
	}
	avg := sum / float64(len(samples))
	if avg < 0.90 {
		t.Errorf("average cross-validation accuracy %.3f < 0.90", avg)
	}
	if worst < 0.55 {
		t.Errorf("worst sample accuracy %.3f < 0.55 (model %.0f vs sim %d on %s)",
			worst, worstSample.ModelCC, worstSample.SimCC, worstSample.Problem.Arch.Name)
	}
	t.Logf("cross-validation over %d random problems: avg %.1f%%, worst %.1f%%",
		len(samples), 100*avg, 100*worst)
}

// TestGeneratorDeterminism: same seed, same draws.
func TestGeneratorDeterminism(t *testing.T) {
	g1, g2 := NewGenerator(7), NewGenerator(7)
	for i := 0; i < 5; i++ {
		l1, l2 := g1.RandomLayer(), g2.RandomLayer()
		if l1.String() != l2.String() {
			t.Fatal("layer draws diverge")
		}
		a1, sp1 := g1.RandomArch()
		a2, sp2 := g2.RandomArch()
		if a1.Name != a2.Name || sp1.String() != sp2.String() {
			t.Fatal("arch draws diverge")
		}
	}
}

// TestRandomArchValid: every generated architecture passes validation
// (already enforced by construction; this guards the invariant).
func TestRandomArchValid(t *testing.T) {
	g := NewGenerator(42)
	for i := 0; i < 50; i++ {
		a, sp := g.RandomArch()
		if err := a.Validate(); err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
		if sp.Product() != a.MACs {
			t.Fatalf("draw %d: spatial %s != MACs %d", i, sp, a.MACs)
		}
	}
}

// TestRandomizedConvCrossValidation runs the direct-convolution variant of
// the randomized harness.
func TestRandomizedConvCrossValidation(t *testing.T) {
	const want = 15
	g := NewGenerator(7)
	var samples []*Sample
	draws := 0
	for len(samples) < want && draws < want*8 {
		draws++
		s, err := g.NextConv(1500, simulate)
		if err != nil {
			t.Fatal(err)
		}
		if s == nil {
			continue
		}
		samples = append(samples, s)
	}
	if len(samples) < want {
		t.Fatalf("only %d mappable conv samples in %d draws", len(samples), draws)
	}
	var sum float64
	worst := 1.0
	for _, s := range samples {
		sum += s.Accuracy
		if s.Accuracy < worst {
			worst = s.Accuracy
		}
	}
	avg := sum / float64(len(samples))
	if avg < 0.85 {
		t.Errorf("conv cross-validation average %.3f < 0.85", avg)
	}
	if worst < 0.5 {
		t.Errorf("worst conv sample %.3f < 0.5", worst)
	}
	t.Logf("conv cross-validation over %d problems: avg %.1f%%, worst %.1f%%",
		len(samples), 100*avg, 100*worst)
}
