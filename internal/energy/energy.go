// Package energy implements the standard analytical energy model the paper
// builds on (Section I: "count the operations of each hardware component
// ... and multiply these with the corresponding unit energy"). It reuses
// the latency model's DTL decomposition to count per-memory read/write
// accesses, adds the MAC-array-level operand accesses, and prices them with
// a capacity-dependent unit-energy table.
//
// Absolute numbers are synthetic (a 7nm-class technology curve); the case
// studies only rely on RELATIVE energies between mappings, which depend on
// access counts, not on the absolute scale.
package energy

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/loops"
)

// Table holds the unit-energy parameters.
type Table struct {
	// MACpJ is the energy of one multiply-accumulate operation.
	MACpJ float64
	// RegPJPerBit is the per-bit access energy of the register level used
	// for the implicit array-side operand accesses.
	RegPJPerBit float64
	// BasePJPerBit and SlopePJPerBit parametrize the capacity-dependent
	// per-bit access energy of SRAM-class memories:
	//   e(C) = BasePJPerBit + SlopePJPerBit * sqrt(C / 8KiB).
	BasePJPerBit  float64
	SlopePJPerBit float64
	// WritePenalty scales write accesses relative to reads.
	WritePenalty float64
}

// Default7nm returns a plausible 7nm-class INT8 table.
func Default7nm() *Table {
	return &Table{
		MACpJ:         0.12,
		RegPJPerBit:   0.008,
		BasePJPerBit:  0.015,
		SlopePJPerBit: 0.020,
		WritePenalty:  1.1,
	}
}

// PerBit returns the per-bit read energy of a memory with the given
// capacity. Writes additionally scale by WritePenalty. Exported for
// consumers that price raw byte traffic outside a mapping (the
// bandwidth-bound elementwise passes of package network).
func (t *Table) PerBit(capacityBits int64) float64 {
	return t.BasePJPerBit + t.SlopePJPerBit*math.Sqrt(float64(capacityBits)/(8*1024*8))
}

// Breakdown is the evaluated energy of one problem.
type Breakdown struct {
	MACPJ   float64            // total MAC energy
	ArrayPJ float64            // array-side register accesses (level-0 operand feeds)
	MemPJ   map[string]float64 // per physical memory module
	TotalPJ float64
}

// MemNames returns the memory names in deterministic order.
func (b *Breakdown) MemNames() []string {
	names := make([]string, 0, len(b.MemPJ))
	for n := range b.MemPJ {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Evaluate computes the total energy and its breakdown.
func Evaluate(p *core.Problem, tbl *Table) (*Breakdown, error) {
	if tbl == nil {
		tbl = Default7nm()
	}
	eps, err := core.Endpoints(p)
	if err != nil {
		return nil, err
	}
	b := &Breakdown{MemPJ: map[string]float64{}}

	// MAC operations.
	macs := p.Layer.TotalMACs()
	b.MACPJ = float64(macs) * tbl.MACpJ

	// Array-side accesses at level 0: every MAC op reads one W and one I
	// element and reads+writes one O partial sum from/to the innermost
	// level.
	prec := p.Layer.Precision
	arrayBits := float64(macs) * (float64(prec.Bits(loops.W)) + float64(prec.Bits(loops.I)) +
		float64(prec.Bits(loops.O))*(1+tbl.WritePenalty))
	b.ArrayPJ = arrayBits * tbl.RegPJPerBit

	// Inter-level traffic: each DTL endpoint performs Z transfers of
	// MemData elements at its memory.
	for _, e := range eps {
		mem := p.Arch.MemoryByName(e.MemName)
		if mem == nil {
			return nil, fmt.Errorf("energy: unknown memory %q", e.MemName)
		}
		bits := float64(e.Z) * float64(e.MemData) * float64(prec.Bits(e.Operand))
		unit := tbl.PerBit(mem.CapacityBits)
		if e.Access.Write {
			unit *= tbl.WritePenalty
		}
		b.MemPJ[e.MemName] += bits * unit
	}

	b.TotalPJ = b.MACPJ + b.ArrayPJ
	// Sum in name order: float addition is not associative, so iterating
	// the map directly would change TotalPJ in its last bits from run to
	// run — enough to flip exact-tie comparisons in mapping searches.
	for _, n := range b.MemNames() {
		b.TotalPJ += b.MemPJ[n]
	}
	return b, nil
}
