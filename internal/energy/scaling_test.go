package energy

import (
	"testing"

	"repro/internal/loops"
)

// Doubling the output precision must raise array-side and O-traffic energy
// but leave W/I memory energy untouched.
func TestPrecisionScaling(t *testing.T) {
	p8 := problem()
	b8, err := Evaluate(p8, nil)
	if err != nil {
		t.Fatal(err)
	}
	p48 := problem()
	p48.Layer.Precision.O = 48
	b48, err := Evaluate(p48, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b48.ArrayPJ <= b8.ArrayPJ {
		t.Error("array energy did not grow with O precision")
	}
	if b48.MemPJ["O-Reg"] <= b8.MemPJ["O-Reg"] {
		t.Error("O-Reg energy did not grow")
	}
	if b48.MemPJ["W-LB"] != b8.MemPJ["W-LB"] {
		t.Error("W-LB energy changed with O precision")
	}
	if b48.MACPJ != b8.MACPJ {
		t.Error("MAC energy changed with precision (unit table is fixed)")
	}
}

// Energy must be invariant to RealBW (access counts don't depend on port
// width), in contrast to latency.
func TestEnergyBandwidthInvariant(t *testing.T) {
	p := problem()
	b1, err := Evaluate(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	gb := p.Arch.MemoryByName("GB")
	for i := range gb.Ports {
		gb.Ports[i].BWBits *= 8
	}
	b2, err := Evaluate(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b1.TotalPJ != b2.TotalPJ {
		t.Errorf("energy changed with bandwidth: %v vs %v", b1.TotalPJ, b2.TotalPJ)
	}
}

// A custom table scales results linearly in its MAC term.
func TestCustomTable(t *testing.T) {
	p := problem()
	tbl := Default7nm()
	tbl.MACpJ *= 2
	b1, err := Evaluate(p, Default7nm())
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Evaluate(p, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if b2.MACPJ != 2*b1.MACPJ {
		t.Errorf("MAC energy scaling wrong: %v vs %v", b2.MACPJ, b1.MACPJ)
	}
}

// Write penalty applies to write-side endpoints only.
func TestWritePenalty(t *testing.T) {
	p := problem()
	flat := Default7nm()
	flat.WritePenalty = 1.0
	pen := Default7nm()
	pen.WritePenalty = 2.0
	b1, err := Evaluate(p, flat)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Evaluate(p, pen)
	if err != nil {
		t.Fatal(err)
	}
	for _, mem := range []string{"W-Reg", "GB"} {
		if b2.MemPJ[mem] <= b1.MemPJ[mem] {
			t.Errorf("%s energy did not grow with write penalty", mem)
		}
	}
	// The penalized total is bounded by 2x (writes are at most all
	// accesses) and must exceed the flat total.
	if b2.TotalPJ <= b1.TotalPJ || b2.TotalPJ > 2*b1.TotalPJ {
		t.Errorf("penalized total %v out of band vs %v", b2.TotalPJ, b1.TotalPJ)
	}
}

// More MACs -> more energy, linearly in the MAC term.
func TestEnergyTracksWork(t *testing.T) {
	small := problem()
	big := problem()
	bigLayer := *big.Layer
	bigLayer.Dims[loops.C] *= 2
	big.Layer = &bigLayer
	b1, err := Evaluate(small, nil)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Evaluate(big, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b2.MACPJ != 2*b1.MACPJ {
		t.Error("MAC energy not linear in MAC count")
	}
	if b2.TotalPJ <= b1.TotalPJ {
		t.Error("total energy did not grow with work")
	}
}
