package energy

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/mapping"
	"repro/internal/workload"
)

func problem() *core.Problem {
	l := workload.NewMatMul("e", 16, 32, 8)
	a := arch.CaseStudy()
	m := &mapping.Mapping{
		Spatial:  arch.CaseStudySpatial(),
		Temporal: loops.Nest{{Dim: loops.C, Size: 4}, {Dim: loops.B, Size: 2}, {Dim: loops.K, Size: 2}},
	}
	m.Bound[loops.W] = []int{0, 1, 3}
	m.Bound[loops.I] = []int{0, 2, 3}
	m.Bound[loops.O] = []int{1, 3}
	return &core.Problem{Layer: &l, Arch: a, Mapping: m}
}

func TestEvaluateBasics(t *testing.T) {
	p := problem()
	b, err := Evaluate(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.TotalPJ <= 0 || b.MACPJ <= 0 || b.ArrayPJ <= 0 {
		t.Errorf("non-positive energies: %+v", b)
	}
	// MAC energy: 16*32*8 = 4096 MACs * 0.12 pJ.
	if want := 4096 * 0.12; b.MACPJ != want {
		t.Errorf("MACPJ = %v, want %v", b.MACPJ, want)
	}
	// Every chain memory with traffic appears.
	for _, name := range []string{"W-Reg", "I-Reg", "O-Reg", "W-LB", "I-LB", "GB"} {
		if b.MemPJ[name] <= 0 {
			t.Errorf("memory %s has no energy", name)
		}
	}
	sum := b.MACPJ + b.ArrayPJ
	for _, v := range b.MemPJ {
		sum += v
	}
	if sum != b.TotalPJ {
		t.Errorf("total %v != sum %v", b.TotalPJ, sum)
	}
	names := b.MemNames()
	if len(names) != len(b.MemPJ) {
		t.Error("MemNames size mismatch")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("MemNames not sorted")
		}
	}
}

// More data reuse at a level must reduce traffic above it and so reduce
// energy: compare full output-stationary vs psum-thrashing O mappings.
func TestEnergyRewardssOutputStationarity(t *testing.T) {
	pStationary := problem() // O reg holds the C loop: no psum traffic
	pThrash := problem()
	pThrash.Mapping.Bound[loops.O] = []int{0, 3} // C loop above O-Reg

	bs, err := Evaluate(pStationary, nil)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := Evaluate(pThrash, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bt.MemPJ["GB"] <= bs.MemPJ["GB"] {
		t.Errorf("psum thrashing did not raise GB energy: %v vs %v", bt.MemPJ["GB"], bs.MemPJ["GB"])
	}
	if bt.TotalPJ <= bs.TotalPJ {
		t.Errorf("psum thrashing did not raise total energy")
	}
}

// Unit energy must grow with memory capacity.
func TestCapacityMonotone(t *testing.T) {
	tbl := Default7nm()
	if tbl.PerBit(1<<10) >= tbl.PerBit(1<<24) {
		t.Error("per-bit energy not monotone in capacity")
	}
}

func TestEvaluateError(t *testing.T) {
	p := problem()
	p.Mapping.Bound[loops.W] = []int{0, 0, 3}
	// Still evaluates (attributes well-defined); force an error instead
	// via an arch with a memory the chain cannot serve. Simplest: nil
	// layer.
	p2 := &core.Problem{}
	if _, err := Evaluate(p2, nil); err == nil {
		t.Error("nil problem evaluated")
	}
}
