// Package dataflow classifies mappings into the accelerator-taxonomy
// stationarity classes the literature names dataflows by (weight-
// stationary, output-stationary, input-stationary, row-stationary, no
// local reuse), by measuring which operand the innermost memory level
// keeps resident the longest. The paper frames its model as applicable to
// "diverse architectures and dataflows"; this package makes the dataflow
// of any mapping inspectable, so experiments can report not just WHICH
// mapping won but WHAT KIND of dataflow it is.
package dataflow

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/loops"
	"repro/internal/mapping"
)

// Class is a stationarity taxonomy label.
type Class uint8

// Dataflow classes.
const (
	NoLocalReuse Class = iota
	WeightStationary
	OutputStationary
	InputStationary
	RowStationary
	Hybrid
)

var classNames = map[Class]string{
	NoLocalReuse:     "no-local-reuse",
	WeightStationary: "weight-stationary",
	OutputStationary: "output-stationary",
	InputStationary:  "input-stationary",
	RowStationary:    "row-stationary",
	Hybrid:           "hybrid",
}

// String names the class.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Residency quantifies one operand's stationarity at the innermost level.
type Residency struct {
	Operand loops.Operand
	// Turnaround is Mem_CC at level 0: how many cycles the operand's
	// register tile lives before being replaced.
	Turnaround int64
	// ReuseFactor is how many MAC operations each resident element
	// serves: Turnaround x spatial fanout / tile share.
	ReuseFactor float64
}

// Analysis is a full dataflow classification.
type Analysis struct {
	Class      Class
	Residency  [loops.NumOperands]Residency
	SpatialRow bool // FY or FX spatially unrolled (row-stationary family)
}

// Classify analyzes a mapping's innermost-level stationarity.
func Classify(m *mapping.Mapping) *Analysis {
	a := &Analysis{}
	sp := m.Spatial.DimProduct()
	for _, op := range loops.AllOperands {
		mcc := m.MemCC(op, 0)
		data := m.MemData(op, 0, loops.DefaultStrides())
		fanout := int64(1)
		for _, d := range loops.AllDims {
			if sp[d] > 1 && loops.IsReuseDim(op, d) {
				fanout *= sp[d]
			}
		}
		reuse := 0.0
		if data > 0 {
			// MACs served per turnaround divided by resident elements.
			spProd := int64(1)
			for _, d := range loops.AllDims {
				spProd *= sp[d]
			}
			reuse = float64(mcc*spProd) / float64(data)
		}
		a.Residency[op] = Residency{Operand: op, Turnaround: mcc, ReuseFactor: reuse}
		_ = fanout
	}
	if sp[loops.FY] > 1 || sp[loops.FX] > 1 {
		a.SpatialRow = true
	}

	// Rank operands by turnaround; the clearly longest-lived one names
	// the dataflow.
	type kv struct {
		op loops.Operand
		cc int64
	}
	ranked := []kv{
		{loops.W, a.Residency[loops.W].Turnaround},
		{loops.I, a.Residency[loops.I].Turnaround},
		{loops.O, a.Residency[loops.O].Turnaround},
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].cc > ranked[j].cc })

	switch {
	case ranked[0].cc <= 1:
		a.Class = NoLocalReuse
	case a.SpatialRow:
		a.Class = RowStationary
	case ranked[0].cc < 2*ranked[1].cc:
		a.Class = Hybrid
	case ranked[0].op == loops.W:
		a.Class = WeightStationary
	case ranked[0].op == loops.O:
		a.Class = OutputStationary
	default:
		a.Class = InputStationary
	}
	return a
}

// Describe renders a one-paragraph explanation.
func (a *Analysis) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dataflow: %s\n", a.Class)
	for _, op := range loops.AllOperands {
		r := a.Residency[op]
		fmt.Fprintf(&b, "  %s: turnaround %d cc, reuse %.1f MACs/element\n",
			op, r.Turnaround, r.ReuseFactor)
	}
	if a.SpatialRow {
		b.WriteString("  filter rows/columns spatially unrolled (row-stationary family)\n")
	}
	return b.String()
}
