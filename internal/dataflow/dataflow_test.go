package dataflow

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/mapping"
)

func base() *mapping.Mapping {
	m := &mapping.Mapping{
		Spatial:  arch.CaseStudySpatial(), // K16 | B8 | C2
		Temporal: loops.Nest{{Dim: loops.C, Size: 8}, {Dim: loops.B, Size: 4}, {Dim: loops.K, Size: 4}},
	}
	// Default: everything above the registers.
	m.Bound[loops.W] = []int{0, 0, 3}
	m.Bound[loops.I] = []int{0, 0, 3}
	m.Bound[loops.O] = []int{0, 3}
	return m
}

func TestOutputStationary(t *testing.T) {
	m := base()
	m.Bound[loops.O] = []int{1, 3} // O-Reg holds the C loop
	a := Classify(m)
	if a.Class != OutputStationary {
		t.Errorf("class = %s, want output-stationary\n%s", a.Class, a.Describe())
	}
	if a.Residency[loops.O].Turnaround != 8 {
		t.Errorf("O turnaround = %d", a.Residency[loops.O].Turnaround)
	}
}

func TestWeightStationary(t *testing.T) {
	m := &mapping.Mapping{
		Spatial:  arch.CaseStudySpatial(),
		Temporal: loops.Nest{{Dim: loops.B, Size: 8}, {Dim: loops.C, Size: 4}, {Dim: loops.K, Size: 4}},
	}
	m.Bound[loops.W] = []int{1, 1, 3} // W regs hold the B (reuse) loop
	m.Bound[loops.I] = []int{0, 0, 3}
	m.Bound[loops.O] = []int{0, 3}
	a := Classify(m)
	if a.Class != WeightStationary {
		t.Errorf("class = %s, want weight-stationary\n%s", a.Class, a.Describe())
	}
}

func TestInputStationary(t *testing.T) {
	m := &mapping.Mapping{
		Spatial:  arch.CaseStudySpatial(),
		Temporal: loops.Nest{{Dim: loops.K, Size: 8}, {Dim: loops.C, Size: 4}, {Dim: loops.B, Size: 4}},
	}
	m.Bound[loops.W] = []int{0, 0, 3}
	m.Bound[loops.I] = []int{1, 1, 3} // I regs ride the K (reuse) loop
	m.Bound[loops.O] = []int{0, 3}
	a := Classify(m)
	if a.Class != InputStationary {
		t.Errorf("class = %s, want input-stationary\n%s", a.Class, a.Describe())
	}
}

func TestNoLocalReuse(t *testing.T) {
	m := base() // nothing held at level 0 by anyone
	a := Classify(m)
	if a.Class != NoLocalReuse {
		t.Errorf("class = %s, want no-local-reuse\n%s", a.Class, a.Describe())
	}
}

func TestRowStationary(t *testing.T) {
	m := &mapping.Mapping{
		Spatial: arch.RowStationarySpatial(), // FY 3 | OY 14 | K 4
		Temporal: loops.Nest{
			{Dim: loops.FX, Size: 3},
			{Dim: loops.OX, Size: 28},
			{Dim: loops.C, Size: 4},
		},
	}
	m.Bound[loops.W] = []int{2, 3}
	m.Bound[loops.I] = []int{2, 3}
	m.Bound[loops.O] = []int{2, 3}
	a := Classify(m)
	if a.Class != RowStationary {
		t.Errorf("class = %s, want row-stationary\n%s", a.Class, a.Describe())
	}
	if !a.SpatialRow {
		t.Error("spatial filter-row unrolling not detected")
	}
}

func TestHybrid(t *testing.T) {
	m := base()
	// O and W both hold comparable turnarounds: O holds [C8], W holds
	// [C8 | B4] but C is relevant for W... use W holding [C8 B4]? W's
	// turnaround 32 vs O's 8 is >= 2x -> weight-stationary. Make them
	// close: W holds [C8] too (turnaround 8 each).
	m.Bound[loops.O] = []int{1, 3}
	m.Bound[loops.W] = []int{1, 1, 3}
	a := Classify(m)
	if a.Class != Hybrid {
		t.Errorf("class = %s, want hybrid\n%s", a.Class, a.Describe())
	}
}

func TestDescribe(t *testing.T) {
	a := Classify(base())
	s := a.Describe()
	for _, want := range []string{"dataflow:", "W:", "I:", "O:", "turnaround"} {
		if !strings.Contains(s, want) {
			t.Errorf("describe misses %q:\n%s", want, s)
		}
	}
	if Class(99).String() != "Class(99)" {
		t.Error("unknown class string")
	}
}
