package obs

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
)

// TestTraceJSONValid: the exported file is a valid JSON array of complete
// ("X") and metadata ("M") events with non-negative durations and
// monotonically non-decreasing timestamps — the properties Perfetto's
// legacy JSON importer requires.
func TestTraceJSONValid(t *testing.T) {
	for name, p := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			r, err := core.Evaluate(p)
			if err != nil {
				t.Fatal(err)
			}
			raw, err := TraceJSON(p, r, TraceOptions{MaxPeriods: 8})
			if err != nil {
				t.Fatal(err)
			}
			var events []TraceEvent
			if err := json.Unmarshal(raw, &events); err != nil {
				t.Fatalf("trace is not a JSON event array: %v", err)
			}
			if len(events) == 0 {
				t.Fatal("empty trace")
			}
			lastTs := -1.0
			sawWindow, sawStall := false, false
			for i, ev := range events {
				switch ev.Ph {
				case "M":
					if ev.Args["name"] == nil {
						t.Errorf("event %d: metadata without name arg", i)
					}
					continue
				case "X":
					// complete event: needs ts >= 0, dur > 0
				default:
					t.Fatalf("event %d: unexpected phase %q (only X and M are emitted)", i, ev.Ph)
				}
				if ev.Ts < 0 || ev.Dur <= 0 {
					t.Errorf("event %d (%s): ts %v dur %v", i, ev.Name, ev.Ts, ev.Dur)
				}
				if ev.Ts < lastTs {
					t.Errorf("event %d (%s): ts %v < previous %v (not monotonic)", i, ev.Name, ev.Ts, lastTs)
				}
				lastTs = ev.Ts
				switch ev.Cat {
				case "window":
					sawWindow = true
				case "stall":
					sawStall = true
				}
			}
			if !sawWindow {
				t.Error("no window slices emitted")
			}
			if r.SSOverall > 0 && !sawStall {
				t.Error("stalled evaluation but no stall slices")
			}
		})
	}
}

// TestTraceJSONTruncation: MaxPeriods caps the per-endpoint slice count and
// marks the cut with a truncation slice.
func TestTraceJSONTruncation(t *testing.T) {
	p := fixtures(t)["inhouse"]
	r, err := core.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	var longest int64
	for _, e := range r.Endpoints {
		if e.Z > longest {
			longest = e.Z
		}
	}
	if longest < 3 {
		t.Skip("fixture has no endpoint with enough periods")
	}
	raw, err := TraceJSON(p, r, TraceOptions{MaxPeriods: 2})
	if err != nil {
		t.Fatal(err)
	}
	var events []TraceEvent
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatal(err)
	}
	truncated := 0
	for _, ev := range events {
		if ev.Cat == "truncated" {
			truncated++
		}
	}
	if truncated == 0 {
		t.Error("no truncation markers despite MaxPeriods=2 cut")
	}
}
