package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/mapping"
	"repro/internal/workload"
)

// fixtures evaluates a handful of problems spanning the attribution modes:
// the paper's in-house accelerator (ports mode and the rigid-dominated
// mapping from core's attribution tests), the case-study arch, and a
// stall-free point.
func fixtures(t *testing.T) map[string]*core.Problem {
	t.Helper()
	out := map[string]*core.Problem{}
	add := func(name string, a *arch.Arch, l workload.Layer, temporal loops.Nest, spatial loops.Nest) {
		m := &mapping.Mapping{Spatial: spatial, Temporal: temporal}
		if !assignBounds(m, &l, a) {
			t.Fatalf("%s: bounds do not fit", name)
		}
		if err := m.Validate(&l, a); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lc := l
		out[name] = &core.Problem{Layer: &lc, Arch: a, Mapping: m}
	}
	add("inhouse", arch.InHouse(), workload.NewMatMul("m", 32, 64, 64),
		loops.Nest{{Dim: loops.C, Size: 32}, {Dim: loops.B, Size: 2}, {Dim: loops.K, Size: 2}},
		arch.InHouseSpatial())
	add("inhouse-rigid", arch.InHouse(), workload.NewMatMul("m", 32, 64, 64),
		loops.Nest{{Dim: loops.K, Size: 2}, {Dim: loops.B, Size: 2}, {Dim: loops.C, Size: 32}},
		arch.InHouseSpatial())
	add("casestudy", arch.CaseStudy(), workload.NewMatMul("m", 16, 32, 32),
		loops.Nest{{Dim: loops.C, Size: 16}, {Dim: loops.B, Size: 2}, {Dim: loops.K, Size: 2}},
		arch.CaseStudySpatial())
	return out
}

// assignBounds mirrors the mapper's greedy boundary assignment (obs must
// not depend on mapper; the evaluator only needs valid boundaries).
func assignBounds(m *mapping.Mapping, l *workload.Layer, a *arch.Arch) bool {
	n := len(m.Temporal)
	for _, op := range loops.AllOperands {
		chain := a.ChainMems(op)
		bounds := make([]int, len(chain))
		prev := 0
		for lev := range chain {
			if lev == len(chain)-1 {
				bounds[lev] = n
				break
			}
			capBits := chain[lev].MapperCapacityBits()
			bits := int64(l.Precision.Bits(op))
			b := prev
			m.Bound[op] = bounds
			bounds[lev] = b
			if m.MemData(op, lev, l.Strides)*bits > capBits {
				return false
			}
			for b < n {
				bounds[lev] = b + 1
				if m.MemData(op, lev, l.Strides)*bits > capBits {
					bounds[lev] = b
					break
				}
				b++
			}
			prev = bounds[lev]
		}
		m.Bound[op] = bounds
	}
	return true
}

// TestReportAttributionSums is the explainer's acceptance invariant: the
// per-memory contributions AND the per-DTL contributions (plus the port
// contention residuals) each sum to SS_overall exactly, for every mode.
func TestReportAttributionSums(t *testing.T) {
	modes := map[string]bool{}
	for name, p := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			r, err := core.Evaluate(p)
			if err != nil {
				t.Fatal(err)
			}
			rep := NewReport(p, r)
			modes[rep.Mode] = true

			if rep.Check.SumMemContribution != r.SSOverall {
				t.Errorf("Σ mem contributions = %v, want SS_overall %v (exact)",
					rep.Check.SumMemContribution, r.SSOverall)
			}
			if rep.Check.SumDTLContribution != r.SSOverall {
				t.Errorf("Σ DTL contributions + residuals = %v, want SS_overall %v (exact)",
					rep.Check.SumDTLContribution, r.SSOverall)
			}
			if rep.Check.SSOverall != r.SSOverall {
				t.Errorf("Check.SSOverall = %v, want %v", rep.Check.SSOverall, r.SSOverall)
			}
			if r.SSOverall > 0 && len(rep.Critical) == 0 {
				t.Error("stalled evaluation but empty critical chain")
			}
			if len(rep.DTLs) != len(r.Endpoints) || len(rep.Ports) != len(r.Ports) ||
				len(rep.Memories) != len(r.Memories) {
				t.Errorf("report shape %d/%d/%d, result %d/%d/%d",
					len(rep.DTLs), len(rep.Ports), len(rep.Memories),
					len(r.Endpoints), len(r.Ports), len(r.Memories))
			}
			// Cross-references must be in range and consistent.
			for _, pr := range rep.Ports {
				for _, di := range pr.DTLs {
					if di < 0 || di >= len(rep.DTLs) {
						t.Fatalf("port %s.%s references DTL %d out of range", pr.Mem, pr.Port, di)
					}
					if rep.DTLs[di].Mem != pr.Mem {
						t.Errorf("DTL %d mem %s cross-referenced from port of %s", di, rep.DTLs[di].Mem, pr.Mem)
					}
				}
			}
		})
	}
	if !modes["ports"] {
		t.Error("no fixture exercised ports mode")
	}
	if !modes["rigid"] {
		t.Error("no fixture exercised rigid mode")
	}
}

// TestReportJSONRoundTrip: the serialized report is valid JSON carrying the
// headline fields and re-parses to the same check sums.
func TestReportJSONRoundTrip(t *testing.T) {
	for name, p := range fixtures(t) {
		r, err := core.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		rep := NewReport(p, r)
		raw, err := rep.JSON()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var back Report
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("%s: report JSON does not re-parse: %v", name, err)
		}
		if back.Check != rep.Check || back.CCTotal != rep.CCTotal || back.Mode != rep.Mode {
			t.Errorf("%s: round-trip mismatch: %+v vs %+v", name, back.Check, rep.Check)
		}
	}
}

// TestReportText smoke-tests the terminal rendering: headline, attribution
// line, and one row per DTL.
func TestReportText(t *testing.T) {
	p := fixtures(t)["inhouse"]
	r, err := core.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport(p, r)
	txt := rep.Text()
	for _, want := range []string{"explain:", "attribution:", "per-DTL stalls:"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Text() missing %q:\n%s", want, txt)
		}
	}
	for _, d := range rep.DTLs {
		if !strings.Contains(txt, d.Label) {
			t.Errorf("Text() missing DTL row %q", d.Label)
		}
	}
}
