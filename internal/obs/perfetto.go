package obs

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
)

// Chrome trace-event (JSON array format) export of a full evaluation
// timeline, loadable in Perfetto / chrome://tracing. Layout:
//
//   - one process per physical port ("port GB.rd"), with two threads per
//     DTL endpoint on that port: a "window" track holding one slice per
//     allowed-update window, and a "xfer" track holding one slice per
//     transfer — plus a "stall" slice whenever the transfer overruns its
//     window into the next period (the '!' cycles of trace.Timeline).
//   - one "timeline" process with the macro phases: preload, compute
//     (+ temporal stall), offload.
//
// One model cycle maps to one trace microsecond. All events are complete
// ("X") events with monotonically non-decreasing ts, so the file needs no
// B/E matching and always validates.

// TraceEvent is one Chrome trace-event object. Only the fields the JSON
// array format requires are present.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceOptions bounds the export.
type TraceOptions struct {
	// MaxPeriods caps the rendered periods per endpoint (0 = 64). Long
	// layers have millions of identical periods; the head is enough to
	// see the steady-state pattern.
	MaxPeriods int
}

// TraceJSON renders the evaluation as a Chrome trace-event JSON array.
func TraceJSON(p *core.Problem, r *core.Result, opt TraceOptions) ([]byte, error) {
	maxPeriods := opt.MaxPeriods
	if maxPeriods <= 0 {
		maxPeriods = 64
	}

	var events []TraceEvent
	meta := func(pid, tid int, what, name string) {
		events = append(events, TraceEvent{
			Name: what, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}

	// Macro timeline: preload | compute(+stall) | offload.
	const timelinePid = 1
	meta(timelinePid, 0, "process_name", "timeline")
	meta(timelinePid, 1, "thread_name", "phases")
	cursor := 0.0
	phase := func(name string, dur float64, args map[string]any) {
		if dur <= 0 {
			return
		}
		events = append(events, TraceEvent{
			Name: name, Ph: "X", Ts: cursor, Dur: dur,
			Pid: timelinePid, Tid: 1, Cat: "phase", Args: args,
		})
		cursor += dur
	}
	phase("preload", r.Preload, nil)
	phase("compute", float64(r.CCSpatial)+r.SSOverall, map[string]any{
		"cc_spatial": r.CCSpatial, "ss_overall": r.SSOverall,
		"scenario": int(r.Scenario),
	})
	phase("offload", r.Offload, nil)

	// Per-port processes. Endpoint periods start after the preload phase.
	base := r.Preload
	pid := timelinePid + 1
	for _, ps := range r.Ports {
		meta(pid, 0, "process_name", fmt.Sprintf("port %s.%s", ps.MemName, ps.PortName))
		tid := 1
		for _, e := range ps.Endpoints {
			winTid, xferTid := tid, tid+1
			tid += 2
			meta(pid, winTid, "thread_name", e.Label()+" window")
			meta(pid, xferTid, "thread_name", e.Label()+" xfer")

			periods := int64(maxPeriods)
			if e.Z < periods {
				periods = e.Z
			}
			per := float64(e.MemCC)
			win := float64(e.Window.Active)
			start := float64(e.Window.Start)
			need := e.XReal
			overrun := need - win // per-period transfer overrun (stall)
			args := map[string]any{
				"mem_cc": e.MemCC, "x_req": e.XReq, "x_real": e.XReal,
				"z": e.Z, "ss_u": e.SSu,
			}
			for pd := int64(0); pd < periods; pd++ {
				t0 := base + float64(pd)*per
				if win > 0 {
					events = append(events, TraceEvent{
						Name: "window", Ph: "X", Ts: t0 + start, Dur: win,
						Pid: pid, Tid: winTid, Cat: "window", Args: args,
					})
				}
				xfer := need
				if xfer > win {
					xfer = win
				}
				if xfer > 0 {
					events = append(events, TraceEvent{
						Name: "xfer", Ph: "X", Ts: t0 + start, Dur: xfer,
						Pid: pid, Tid: xferTid, Cat: "xfer", Args: args,
					})
				}
				if overrun > 0 {
					// The overrun spills past the period boundary and
					// freezes compute there — same cycles trace.Timeline
					// marks '!' at the head of the next period.
					events = append(events, TraceEvent{
						Name: "stall", Ph: "X", Ts: t0 + per, Dur: overrun,
						Pid: pid, Tid: xferTid, Cat: "stall", Args: args,
					})
				}
			}
			if periods < e.Z {
				events = append(events, TraceEvent{
					Name: fmt.Sprintf("… %d more periods", e.Z-periods),
					Ph:   "X", Ts: base + float64(periods)*per, Dur: per,
					Pid: pid, Tid: winTid, Cat: "truncated",
				})
			}
		}
		pid++
	}

	// Monotonic ts (metadata events first, then by time).
	sort.SliceStable(events, func(i, j int) bool {
		mi, mj := events[i].Ph == "M", events[j].Ph == "M"
		if mi != mj {
			return mi
		}
		return events[i].Ts < events[j].Ts
	})
	return json.MarshalIndent(events, "", " ")
}
