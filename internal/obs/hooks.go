// Package obs is the model's observability layer: a structured stall
// explainer derived from a scored mapping (explain.go), a Chrome/Perfetto
// trace-event exporter for the full port timeline (perfetto.go), and the
// search-telemetry hook interface the mapper's evaluation pipeline emits
// events through (this file).
//
// Everything here is strictly observational. The hook contract is: with
// hooks unset the search pays a single nil pointer check per event site and
// allocates nothing; with hooks set, the selected mapping, its score and
// every exact Stats counter are bit-identical to a hookless run (guarded by
// TestHooksDoNotPerturbSearch in internal/mapper). Hook callbacks may fire
// concurrently from worker goroutines and must be safe for concurrent use.
package obs

import "time"

// SearchProgress is a point-in-time snapshot of a running mapping search,
// emitted by the generator every progress interval and once more when the
// search completes. Counter semantics match mapper.Stats.
type SearchProgress struct {
	// Walked counts the loop orderings visited so far (representatives
	// plus merged class members) — the quantity MaxCandidates caps.
	Walked int64
	// Generated counts nests handed to evaluation (class representatives).
	Generated int64
	// ClassesMerged counts orderings absorbed into an earlier
	// representative's model-equivalence class.
	ClassesMerged int64
	// SubtreesPruned counts factorization subtrees dropped by the
	// generator's probe bound before their orderings existed.
	SubtreesPruned int64
	// Valid and Pruned are the workers' running totals at snapshot time
	// (approximate while workers race the generator; exact in the final
	// snapshot).
	Valid  int64
	Pruned int64
	// BestCC is the best objective score seen so far; +Inf until a valid
	// candidate lands.
	BestCC float64
	// Elapsed is the wall-clock time since the search started.
	Elapsed time.Duration
	// Done marks the final snapshot (counters are exact from this point).
	Done bool
}

// SearchHooks receives telemetry events from a mapping search. Any field
// may be nil; a nil *SearchHooks disables telemetry entirely (the fast
// path). Hooks observe — they must not block for long and cannot influence
// the search result.
type SearchHooks struct {
	// Phase reports a completed pipeline phase and its wall-clock
	// duration: "generate" (the enumeration walk), "search" (the whole
	// Best/Enumerate call) or "anneal" (a whole Anneal call).
	Phase func(name string, d time.Duration)
	// Progress receives periodic snapshots from the generator (single
	// goroutine) and one final snapshot with Done=true.
	Progress func(p SearchProgress)
	// ImprovedBest fires when a worker lowers the global best score.
	// Delivery order across workers is not guaranteed; scores are
	// monotonically decreasing only per the internal CAS, not per
	// callback arrival.
	ImprovedBest func(score float64, seq int64)
	// AnnealProgress reports a chain's state every annealing progress
	// interval: chain index, iteration, and the chain's best score so
	// far. Chains run concurrently.
	AnnealProgress func(chain, iter int, best float64)
}

// EmitPhase calls Phase when set.
func (h *SearchHooks) EmitPhase(name string, d time.Duration) {
	if h != nil && h.Phase != nil {
		h.Phase(name, d)
	}
}

// EmitProgress calls Progress when set.
func (h *SearchHooks) EmitProgress(p SearchProgress) {
	if h != nil && h.Progress != nil {
		h.Progress(p)
	}
}

// EmitImprovedBest calls ImprovedBest when set.
func (h *SearchHooks) EmitImprovedBest(score float64, seq int64) {
	if h != nil && h.ImprovedBest != nil {
		h.ImprovedBest(score, seq)
	}
}

// EmitAnnealProgress calls AnnealProgress when set.
func (h *SearchHooks) EmitAnnealProgress(chain, iter int, best float64) {
	if h != nil && h.AnnealProgress != nil {
		h.AnnealProgress(chain, iter, best)
	}
}
