package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
)

// Report is the structured explainer for one evaluated mapping: every DTL
// endpoint with its Step-1 attributes, every physical port with its Step-2
// combination, every memory module with its Step-3 contribution, the rigid
// keep-out units when their accumulation dominates, and the critical
// (stall-dominating) chain. Contributions are exact: per-memory (and
// per-DTL, residuals included) contributions sum to SS_overall.
type Report struct {
	Layer    string `json:"layer"`
	Arch     string `json:"arch"`
	Spatial  string `json:"spatial"`
	Temporal string `json:"temporal"`
	Scenario int    `json:"scenario"`

	CCIdeal      float64 `json:"cc_ideal"`
	CCSpatial    int64   `json:"cc_spatial"`
	SpatialStall float64 `json:"spatial_stall"`
	SSOverall    float64 `json:"ss_overall"`
	SSRaw        float64 `json:"ss_raw"`
	Preload      float64 `json:"preload"`
	Offload      float64 `json:"offload"`
	CCTotal      float64 `json:"cc_total"`

	Utilization         float64 `json:"utilization"`
	SpatialUtilization  float64 `json:"spatial_utilization"`
	TemporalUtilization float64 `json:"temporal_utilization"`

	// Combine is the Step-3 integration mode of the architecture ("max"
	// for concurrent memories, "sum" for sequential). Mode names which
	// attribution path produced SS_overall: "none", "ports" or "rigid".
	Combine    string  `json:"combine"`
	Mode       string  `json:"attribution_mode"`
	Integrated float64 `json:"integrated_ss"`
	RigidTotal float64 `json:"rigid_total_ss"`

	DTLs     []DTLReport   `json:"dtls"`
	Ports    []PortReport  `json:"ports"`
	Memories []MemReport   `json:"memories"`
	Rigid    []RigidReport `json:"rigid,omitempty"`

	// Critical is the stall-dominating chain, outermost cause first:
	// memory -> port -> DTL in ports mode, the accumulated unit memories
	// (worst first) in rigid mode, empty when nothing stalls.
	Critical []CriticalStep `json:"critical"`

	Check AttributionCheck `json:"check"`
}

// DTLReport is one DTL endpoint's Step-1 attributes plus its attributed
// share of SS_overall.
type DTLReport struct {
	Index   int    `json:"index"`
	Label   string `json:"label"`
	Operand string `json:"operand"`
	Level   int    `json:"level"`
	Kind    string `json:"kind"`
	Mem     string `json:"mem"`
	Port    string `json:"port"`
	Write   bool   `json:"write"`

	MemData int64 `json:"mem_data"`
	MemCC   int64 `json:"mem_cc"`
	Z       int64 `json:"z"`
	TopRun  int64 `json:"top_run"`

	ReqBWElems  float64 `json:"req_bw_elems"`
	RealBWElems float64 `json:"real_bw_elems"`
	XReq        int64   `json:"x_req"`
	XReal       float64 `json:"x_real"`
	MUW         float64 `json:"muw"`
	SSu         float64 `json:"ss_u"`

	Window WindowReport `json:"window"`

	Contribution float64 `json:"contribution"`
}

// WindowReport is the periodic allowed-update pattern of a DTL.
type WindowReport struct {
	Period int64 `json:"period"`
	Active int64 `json:"active"`
	Start  int64 `json:"start"`
	Count  int64 `json:"count"`
}

// PortReport is one physical port's Step-2 combination plus its attributed
// share of SS_overall. Residual is the part of the port's contribution not
// attributable to a single DTL's own stall (pure shared-port contention:
// the capacity bound exceeding every individual SS_u).
type PortReport struct {
	Mem  string `json:"mem"`
	Port string `json:"port"`

	ReqBWReadBits  float64 `json:"req_bw_read_bits"`
	ReqBWWriteBits float64 `json:"req_bw_write_bits"`
	RealBWBits     int64   `json:"real_bw_bits"`
	MUWComb        float64 `json:"muw_comb"`
	MUWExact       bool    `json:"muw_exact"`
	SSComb         float64 `json:"ss_comb"`

	Contribution float64 `json:"contribution"`
	Residual     float64 `json:"residual"`
	DTLs         []int   `json:"dtls"`
}

// MemReport is one memory module's Step-3 entry.
type MemReport struct {
	Mem          string  `json:"mem"`
	SS           float64 `json:"ss"`
	Contribution float64 `json:"contribution"`
	Ports        []int   `json:"ports"`
}

// RigidReport is one accumulated unit memory (rigid mode).
type RigidReport struct {
	Operand string  `json:"operand"`
	Level   int     `json:"level"`
	Mem     string  `json:"mem"`
	Kind    string  `json:"kind"`
	SS      float64 `json:"ss"`
}

// CriticalStep is one hop of the critical chain.
type CriticalStep struct {
	Kind         string  `json:"kind"` // memory | port | dtl | unit
	Name         string  `json:"name"`
	SS           float64 `json:"ss"`
	Contribution float64 `json:"contribution"`
}

// AttributionCheck carries the invariant sums so external consumers (jq,
// dashboards) can verify the attribution without re-deriving it.
type AttributionCheck struct {
	SumMemContribution float64 `json:"sum_mem_contribution"`
	SumDTLContribution float64 `json:"sum_dtl_contribution"` // DTLs + port residuals
	SSOverall          float64 `json:"ss_overall"`
}

// NewReport builds the explainer for one evaluated problem. The Result must
// carry diagnostics (core.Evaluate / Evaluator.Evaluate output; the
// allocation-free scoring path does not materialize them).
func NewReport(p *core.Problem, r *core.Result) *Report {
	at := core.Attribute(p, r)
	rep := &Report{
		Layer:    p.Layer.Name,
		Arch:     p.Arch.Name,
		Spatial:  p.Mapping.Spatial.String(),
		Temporal: p.Mapping.Temporal.String(),
		Scenario: int(r.Scenario),

		CCIdeal:      r.CCIdeal,
		CCSpatial:    r.CCSpatial,
		SpatialStall: r.SpatialStall,
		SSOverall:    r.SSOverall,
		SSRaw:        r.SSRaw,
		Preload:      r.Preload,
		Offload:      r.Offload,
		CCTotal:      r.CCTotal,

		Utilization:         r.Utilization,
		SpatialUtilization:  r.SpatialUtilization,
		TemporalUtilization: r.TemporalUtilization,

		Combine:    p.Arch.Combine.String(),
		Mode:       at.Mode.String(),
		Integrated: at.Integrated,
		RigidTotal: at.RigidTotal,
	}

	// Per-DTL rows, in the Result's endpoint order; remember each
	// endpoint's row index for the port cross-references (the PortStall
	// endpoint lists alias the same structs).
	epIdx := make(map[*core.Endpoint]int, len(r.Endpoints))
	for i, e := range r.Endpoints {
		epIdx[e] = i
		portName := fmt.Sprintf("p%d", e.PortIdx)
		if mem := p.Arch.MemoryByName(e.MemName); mem != nil && e.PortIdx < len(mem.Ports) {
			portName = mem.Ports[e.PortIdx].Name
		}
		rep.DTLs = append(rep.DTLs, DTLReport{
			Index:   i,
			Label:   e.Label(),
			Operand: e.Operand.String(),
			Level:   e.Level,
			Kind:    e.Kind.String(),
			Mem:     e.MemName,
			Port:    portName,
			Write:   e.Access.Write,

			MemData: e.MemData,
			MemCC:   e.MemCC,
			Z:       e.Z,
			TopRun:  e.TopRun,

			ReqBWElems:  e.ReqBWElems,
			RealBWElems: e.RealBWElems,
			XReq:        e.XReq,
			XReal:       e.XReal,
			MUW:         e.MUW,
			SSu:         e.SSu,

			Window: WindowReport{
				Period: e.Window.Period, Active: e.Window.Active,
				Start: e.Window.Start, Count: e.Window.Count,
			},
		})
	}

	// Ports and memories, cross-referenced by index.
	portIdx := make(map[*core.PortStall]int, len(r.Ports))
	for i, ps := range r.Ports {
		portIdx[ps] = i
		pr := PortReport{
			Mem: ps.MemName, Port: ps.PortName,
			ReqBWReadBits: ps.ReqBWReadBits, ReqBWWriteBits: ps.ReqBWWriteBits,
			RealBWBits: ps.RealBWBits,
			MUWComb:    ps.MUWComb, MUWExact: ps.MUWExact, SSComb: ps.SSComb,
		}
		for _, e := range ps.Endpoints {
			if j, ok := epIdx[e]; ok {
				pr.DTLs = append(pr.DTLs, j)
			}
		}
		rep.Ports = append(rep.Ports, pr)
	}
	for _, ms := range r.Memories {
		mr := MemReport{Mem: ms.MemName, SS: ms.SS}
		for _, ps := range ms.Ports {
			if j, ok := portIdx[ps]; ok {
				mr.Ports = append(mr.Ports, j)
			}
		}
		rep.Memories = append(rep.Memories, mr)
	}

	// Fold the attribution in: memory contributions come straight from
	// core.Attribute; port and DTL contributions are derived below.
	for _, mc := range at.Mems {
		for i := range rep.Memories {
			if rep.Memories[i].Mem == mc.MemName {
				rep.Memories[i].Contribution = mc.Contribution
				break
			}
		}
	}
	for _, ru := range at.Rigid {
		rep.Rigid = append(rep.Rigid, RigidReport{
			Operand: ru.Operand.String(), Level: ru.Level,
			Mem: ru.MemName, Kind: ru.Kind.String(), SS: ru.SS,
		})
	}

	switch at.Mode {
	case core.AttribPorts:
		rep.attributePorts(r)
	case core.AttribRigid:
		rep.attributeRigid(at)
	}
	rep.buildCritical(at)

	for i := range rep.Memories {
		rep.Check.SumMemContribution += rep.Memories[i].Contribution
	}
	for i := range rep.DTLs {
		rep.Check.SumDTLContribution += rep.DTLs[i].Contribution
	}
	for i := range rep.Ports {
		rep.Check.SumDTLContribution += rep.Ports[i].Residual
	}
	rep.Check.SSOverall = r.SSOverall
	return rep
}

// attributePorts pushes each memory's contribution down to its dominating
// port (ports of one module operate concurrently, so the max-stall port
// carries the module's share — first argmax, matching the Step-3 reduction)
// and from there onto the port's individually-stalling DTLs, proportional
// to their own SS_u. A port whose combined stall comes purely from shared-
// port contention (no DTL stalls alone) keeps the share as Residual.
func (rep *Report) attributePorts(r *core.Result) {
	for mi := range rep.Memories {
		mr := &rep.Memories[mi]
		if mr.Contribution == 0 || len(mr.Ports) == 0 {
			continue
		}
		best := mr.Ports[0]
		for _, pi := range mr.Ports[1:] {
			if rep.Ports[pi].SSComb > rep.Ports[best].SSComb {
				best = pi
			}
		}
		pr := &rep.Ports[best]
		pr.Contribution = mr.Contribution

		var sumPos float64
		for _, di := range pr.DTLs {
			if s := rep.DTLs[di].SSu; s > 0 {
				sumPos += s
			}
		}
		if sumPos <= 0 {
			pr.Residual = pr.Contribution
			continue
		}
		for _, di := range pr.DTLs {
			if s := rep.DTLs[di].SSu; s > 0 {
				rep.DTLs[di].Contribution = pr.Contribution * (s / sumPos)
			}
		}
		var attributed float64
		for _, di := range pr.DTLs {
			attributed += rep.DTLs[di].Contribution
		}
		pr.Residual = pr.Contribution - attributed
	}
}

// attributeRigid assigns each accumulated unit's stall to the endpoint that
// produced it: the first endpoint of the unit's (operand, level) with the
// winning kind and the winning SS_u.
func (rep *Report) attributeRigid(at *core.Attribution) {
	for _, ru := range at.Rigid {
		for i := range rep.DTLs {
			d := &rep.DTLs[i]
			if d.Operand == ru.Operand.String() && d.Level == ru.Level &&
				d.Kind == ru.Kind.String() && d.SSu == ru.SS {
				d.Contribution += ru.SS
				break
			}
		}
	}
}

// buildCritical assembles the stall-dominating chain.
func (rep *Report) buildCritical(at *core.Attribution) {
	switch at.Mode {
	case core.AttribRigid:
		units := append([]RigidReport(nil), rep.Rigid...)
		sort.SliceStable(units, func(i, j int) bool { return units[i].SS > units[j].SS })
		for _, u := range units {
			rep.Critical = append(rep.Critical, CriticalStep{
				Kind: "unit",
				Name: fmt.Sprintf("%s@L%d %s (%s)", u.Operand, u.Level, u.Mem, u.Kind),
				SS:   u.SS, Contribution: u.SS,
			})
		}
	case core.AttribPorts:
		// Dominant memory -> its dominant port -> the port's dominant DTL.
		mi := -1
		for i := range rep.Memories {
			if rep.Memories[i].Contribution > 0 && (mi < 0 || rep.Memories[i].Contribution > rep.Memories[mi].Contribution) {
				mi = i
			}
		}
		if mi < 0 {
			return
		}
		mr := &rep.Memories[mi]
		rep.Critical = append(rep.Critical, CriticalStep{
			Kind: "memory", Name: mr.Mem, SS: mr.SS, Contribution: mr.Contribution,
		})
		pi := -1
		for _, j := range mr.Ports {
			if rep.Ports[j].Contribution > 0 && (pi < 0 || rep.Ports[j].Contribution > rep.Ports[pi].Contribution) {
				pi = j
			}
		}
		if pi < 0 {
			return
		}
		pr := &rep.Ports[pi]
		rep.Critical = append(rep.Critical, CriticalStep{
			Kind: "port", Name: pr.Mem + "." + pr.Port, SS: pr.SSComb, Contribution: pr.Contribution,
		})
		di := -1
		for _, j := range pr.DTLs {
			if rep.DTLs[j].Contribution > 0 && (di < 0 || rep.DTLs[j].Contribution > rep.DTLs[di].Contribution) {
				di = j
			}
		}
		if di >= 0 {
			d := &rep.DTLs[di]
			rep.Critical = append(rep.Critical, CriticalStep{
				Kind: "dtl", Name: d.Label, SS: d.SSu, Contribution: d.Contribution,
			})
		}
	}
}

// JSON serializes the report (indented, stable field order).
func (rep *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}

// Text renders the report for terminals: latency breakdown, attribution
// mode, the critical chain and the per-DTL table.
func (rep *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "explain: %s on %s — CC_total %.0f (scenario %d)\n",
		rep.Layer, rep.Arch, rep.CCTotal, rep.Scenario)
	fmt.Fprintf(&b, "  compute %d + temporal stall %.1f + preload %.0f + offload %.0f (spatial stall %.1f within compute)\n",
		rep.CCSpatial, rep.SSOverall, rep.Preload, rep.Offload, rep.SpatialStall)
	fmt.Fprintf(&b, "  utilization %.1f%% (spatial %.1f%%, temporal %.1f%%)\n",
		100*rep.Utilization, 100*rep.SpatialUtilization, 100*rep.TemporalUtilization)
	fmt.Fprintf(&b, "  attribution: %s (step-3 %s; integrated %+.1f, rigid %+.1f)\n",
		rep.Mode, rep.Combine, rep.Integrated, rep.RigidTotal)
	if len(rep.Critical) == 0 {
		b.WriteString("  no stall: every DTL fits its allowed window\n")
		return b.String()
	}
	b.WriteString("  critical chain:\n")
	for _, c := range rep.Critical {
		fmt.Fprintf(&b, "    %-6s %-28s SS %+10.1f  contributes %.1f (%.0f%% of SS_overall)\n",
			c.Kind, c.Name, c.SS, c.Contribution, pct(c.Contribution, rep.SSOverall))
	}
	b.WriteString("  per-DTL stalls:\n")
	fmt.Fprintf(&b, "    %-26s %10s %8s %8s %10s %10s %12s %12s\n",
		"link", "Mem_CC", "Z", "X_REQ", "X_REAL", "ReqBW", "SS_u", "contrib")
	for i := range rep.DTLs {
		d := &rep.DTLs[i]
		fmt.Fprintf(&b, "    %-26s %10d %8d %8d %10.1f %10.2f %+12.1f %12.1f\n",
			d.Label, d.MemCC, d.Z, d.XReq, d.XReal, d.ReqBWElems, d.SSu, d.Contribution)
	}
	var residual float64
	for i := range rep.Ports {
		residual += rep.Ports[i].Residual
	}
	if residual != 0 {
		fmt.Fprintf(&b, "    shared-port contention residual: %.1f\n", residual)
	}
	return b.String()
}

func pct(part, whole float64) float64 {
	if whole == 0 || math.IsInf(whole, 0) {
		return 0
	}
	return 100 * part / whole
}
