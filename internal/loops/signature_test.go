package loops

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestAppendDimProducts(t *testing.T) {
	cases := []struct {
		name string
		nest Nest
		want []byte // expected encoding, 0xFF-terminated
	}{
		{"empty", Nest{}, []byte{0xFF}},
		{"unit-loops-dropped", Nest{{Dim: K, Size: 1}, {Dim: C, Size: 1}}, []byte{0xFF}},
		{
			"single", Nest{{Dim: K, Size: 300}},
			append(append([]byte{byte(K)}, binary.AppendUvarint(nil, 300)...), 0xFF),
		},
		{
			"order-invariant-products", Nest{{Dim: K, Size: 4}, {Dim: C, Size: 3}, {Dim: K, Size: 5}},
			// products: K=20, C=3, emitted in Dim order (K before C)
			[]byte{byte(K), 20, byte(C), 3, 0xFF},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.nest.AppendDimProducts(nil)
			if !bytes.Equal(got, tc.want) {
				t.Errorf("got % x, want % x", got, tc.want)
			}
		})
	}
	// The ordering-invariance that the mapper's symmetry reduction rests on:
	// any permutation of the same loops encodes identically.
	a := Nest{{Dim: B, Size: 2}, {Dim: K, Size: 8}, {Dim: C, Size: 3}, {Dim: K, Size: 2}}
	b := Nest{{Dim: K, Size: 2}, {Dim: C, Size: 3}, {Dim: K, Size: 8}, {Dim: B, Size: 2}}
	if !bytes.Equal(a.AppendDimProducts(nil), b.AppendDimProducts(nil)) {
		t.Error("permuted nests encode differently")
	}
	// Appending must preserve the prefix.
	pre := []byte("prefix")
	out := a.AppendDimProducts(pre)
	if !bytes.HasPrefix(out, pre) {
		t.Error("dst prefix clobbered")
	}
}

func TestAppendUvarintMatchesBinary(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 - 1} {
		got := AppendUvarint(nil, v)
		want := binary.AppendUvarint(nil, v)
		if !bytes.Equal(got, want) {
			t.Errorf("v=%d: got % x, want % x", v, got, want)
		}
	}
}

func TestDistinctOrderings(t *testing.T) {
	cases := []struct {
		blocks []Loop
		want   int64
	}{
		{nil, 1},
		{[]Loop{{Dim: K, Size: 2}}, 1},
		{[]Loop{{Dim: K, Size: 2}, {Dim: K, Size: 2}}, 1},
		{[]Loop{{Dim: K, Size: 2}, {Dim: K, Size: 3}}, 2},
		{[]Loop{{Dim: K, Size: 2}, {Dim: K, Size: 2}, {Dim: C, Size: 2}}, 3},                    // 3!/2!
		{[]Loop{{Dim: K, Size: 2}, {Dim: K, Size: 2}, {Dim: C, Size: 2}, {Dim: C, Size: 2}}, 6}, // 4!/(2!2!)
		{[]Loop{{Dim: B, Size: 2}, {Dim: K, Size: 3}, {Dim: C, Size: 5}, {Dim: OY, Size: 7}}, 24},
	}
	for _, tc := range cases {
		if got := DistinctOrderings(tc.blocks); got != tc.want {
			t.Errorf("%v: got %d, want %d", tc.blocks, got, tc.want)
		}
	}
}

// TestDistinctOrderingsNoOverflow exercises the worst case the mapper can
// produce (14 blocks: 7 dims × ≤2 split parts each); the incremental
// divide-as-you-go form must not overflow int64 on the way.
func TestDistinctOrderingsNoOverflow(t *testing.T) {
	blocks := make([]Loop, 0, 14)
	for d := Dim(0); d < Dim(NumDims); d++ {
		blocks = append(blocks, Loop{Dim: d, Size: int64(2 + d)}, Loop{Dim: d, Size: int64(100 + d)})
	}
	got := DistinctOrderings(blocks)
	const want = 87178291200 // 14!, all blocks distinct
	if got != want {
		t.Errorf("14 distinct blocks: got %d, want 14! = %d", got, want)
	}
}
