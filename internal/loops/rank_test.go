package loops

import (
	"math/rand"
	"testing"
)

// walkOrderings visits every distinct ordering of blocks in the mapper's
// walk order (same recursion and duplicate-position skip as the engine's
// permute) and returns them as copies.
func walkOrderings(blocks []Loop) []Nest {
	n := len(blocks)
	var out []Nest
	nest := make(Nest, 0, n)
	used := make([]bool, n)
	var rec func()
	rec = func() {
		if len(nest) == n {
			out = append(out, append(Nest(nil), nest...))
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if i > 0 && !used[i-1] && blocks[i] == blocks[i-1] {
				continue
			}
			used[i] = true
			nest = append(nest, blocks[i])
			rec()
			nest = nest[:len(nest)-1]
			used[i] = false
		}
	}
	rec()
	return out
}

// randomMultiset builds a mapper-shaped multiset: runs of equal blocks,
// equal blocks adjacent, distinct (Dim, Size) across runs.
func randomMultiset(rng *rand.Rand, maxRuns, maxMult int) []Loop {
	runs := 1 + rng.Intn(maxRuns)
	var blocks []Loop
	for r := 0; r < runs; r++ {
		b := Loop{Dim: Dim(r % NumDims), Size: int64(2 + r)}
		m := 1 + rng.Intn(maxMult)
		for i := 0; i < m && len(blocks) < MaxRankBlocks; i++ {
			blocks = append(blocks, b)
		}
	}
	return blocks
}

func nestsEqual(a, b Nest) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRankAgreesWithWalkOrder pins the core identity the shard index rests
// on: the i-th ordering the walk visits has rank i, and unrank(i)
// reproduces it.
func TestRankAgreesWithWalkOrder(t *testing.T) {
	cases := [][]Loop{
		nil,
		{{Dim: K, Size: 4}},
		{{Dim: K, Size: 4}, {Dim: K, Size: 4}},
		{{Dim: K, Size: 2}, {Dim: C, Size: 3}, {Dim: C, Size: 3}, {Dim: OX, Size: 5}},
		{{Dim: K, Size: 2}, {Dim: K, Size: 2}, {Dim: C, Size: 3}, {Dim: C, Size: 3}, {Dim: OY, Size: 7}},
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20; i++ {
		cases = append(cases, randomMultiset(rng, 4, 3))
	}
	for _, blocks := range cases {
		all := walkOrderings(blocks)
		if got, want := int64(len(all)), DistinctOrderings(blocks); got != want {
			t.Fatalf("multiset %v: walk visited %d orderings, DistinctOrderings says %d", blocks, got, want)
		}
		for i, p := range all {
			if r := RankOrdering(blocks, p); r != int64(i) {
				t.Fatalf("multiset %v: ordering %d %v ranked %d", blocks, i, p, r)
			}
			if u := UnrankOrdering(blocks, int64(i)); !nestsEqual(u, p) {
				t.Fatalf("multiset %v: unrank(%d) = %v, walk visited %v", blocks, i, u, p)
			}
		}
	}
}

// TestRankUnrankRoundTrip property-tests the inverse pair on random
// multisets too large to enumerate, sampling random ranks.
func TestRankUnrankRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		blocks := randomMultiset(rng, 7, 3)
		total := DistinctOrderings(blocks)
		for s := 0; s < 10; s++ {
			r := rng.Int63n(total)
			p := UnrankOrdering(blocks, r)
			if got := RankOrdering(blocks, p); got != r {
				t.Fatalf("multiset %v: rank(unrank(%d)) = %d", blocks, r, got)
			}
		}
	}
}

// TestRankWorstCase14Blocks pins int64 exactness at the engine's worst
// case: 7 dims x 2 distinct split parts = 14 distinct blocks, 14! distinct
// orderings. The last ordering must rank 14!-1 exactly and round-trip.
func TestRankWorstCase14Blocks(t *testing.T) {
	blocks := make([]Loop, 0, 14)
	for d := 0; d < NumDims; d++ {
		blocks = append(blocks, Loop{Dim: Dim(d), Size: 2}, Loop{Dim: Dim(d), Size: 3})
	}
	total := DistinctOrderings(blocks)
	const fact14 = 87178291200 // 14!
	if total != fact14 {
		t.Fatalf("DistinctOrderings = %d, want 14! = %d", total, fact14)
	}
	// The last ordering in walk order is the blocks reversed (every position
	// picks the last remaining run).
	last := make(Nest, 0, 14)
	for i := len(blocks) - 1; i >= 0; i-- {
		last = append(last, blocks[i])
	}
	if r := RankOrdering(blocks, last); r != total-1 {
		t.Fatalf("rank(reversed) = %d, want %d", r, total-1)
	}
	if u := UnrankOrdering(blocks, total-1); !nestsEqual(u, last) {
		t.Fatalf("unrank(%d) = %v, want reversed blocks", total-1, u)
	}
	if u := UnrankOrdering(blocks, 0); !nestsEqual(u, Nest(blocks)) {
		t.Fatalf("unrank(0) = %v, want blocks order", u)
	}
	// A few random interior ranks round-trip exactly.
	rng := rand.New(rand.NewSource(14))
	for s := 0; s < 50; s++ {
		r := rng.Int63n(total)
		if got := RankOrdering(blocks, UnrankOrdering(blocks, r)); got != r {
			t.Fatalf("round trip at rank %d gave %d", r, got)
		}
	}
}

// TestRankOverflowGuard pins the hard size limit: 21 blocks would need 21!
// which overflows int64, so both directions must refuse.
func TestRankOverflowGuard(t *testing.T) {
	blocks := make([]Loop, MaxRankBlocks+1)
	for i := range blocks {
		blocks[i] = Loop{Dim: Dim(i % NumDims), Size: int64(i + 2)}
	}
	for name, f := range map[string]func(){
		"rank":   func() { RankOrdering(blocks, Nest(blocks)) },
		"unrank": func() { UnrankOrdering(blocks, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s over %d blocks did not panic", name, len(blocks))
				}
			}()
			f()
		}()
	}
}
