package loops

import "fmt"

// Lexicographic rank/unrank over a block multiset's distinct orderings.
//
// The mapper's canonical walk visits the distinct orderings of each block
// multiset in a fixed order: at every nest position it tries the distinct
// blocks in the order their runs appear in the blocks slice (equal blocks
// are always adjacent there, so "first unused index" picks runs in slice
// order). RankOrdering/UnrankOrdering are the exact inverse pair for that
// order, which makes a walk position addressable as (prefix, permIndex) and
// lets a shard boundary cut through the middle of a multiset with pure
// arithmetic: rank r splits the multiset into r orderings before and
// DistinctOrderings(blocks)-r at or after, no walking required.
//
// Counts are exact in int64: every partial count is a multinomial of at
// most len(blocks) items, and the factorial table stops at 20! (the largest
// factorial below 2^63). The engine's worst case is 7 dims x 2 split parts
// = 14 blocks, 14! ~ 8.7e10, far inside the guard.

// MaxRankBlocks is the largest multiset size RankOrdering and
// UnrankOrdering accept: 20! is the last factorial representable in int64,
// so larger multisets could overflow intermediate counts.
const MaxRankBlocks = 20

// factorials[i] = i! for i in [0, MaxRankBlocks].
var factorials = func() [MaxRankBlocks + 1]int64 {
	var f [MaxRankBlocks + 1]int64
	f[0] = 1
	for i := 1; i <= MaxRankBlocks; i++ {
		f[i] = f[i-1] * int64(i)
	}
	return f
}()

// orderingRuns collapses the blocks slice (equal blocks adjacent) into its
// distinct symbols in run order plus their multiplicities.
func orderingRuns(blocks []Loop) ([]Loop, []int) {
	syms := make([]Loop, 0, len(blocks))
	mult := make([]int, 0, len(blocks))
	for _, b := range blocks {
		if k := len(syms); k > 0 && syms[k-1] == b {
			mult[k-1]++
			continue
		}
		syms = append(syms, b)
		mult = append(mult, 1)
	}
	return syms, mult
}

// restMultinomial returns the number of distinct orderings of the remaining
// multiset described by mult with n items total: n! / prod(mult[i]!). The
// running quotient stays exact at every step — n!/m_0! is an integer, and
// each further division by m_i! leaves the multinomial over the elements
// seen so far, also an integer.
func restMultinomial(n int, mult []int) int64 {
	r := factorials[n]
	for _, m := range mult {
		if m > 1 {
			r /= factorials[m]
		}
	}
	return r
}

func checkRankSize(n int) {
	if n > MaxRankBlocks {
		panic(fmt.Sprintf("loops: rank/unrank over %d blocks would overflow int64 (max %d)", n, MaxRankBlocks))
	}
}

// RankOrdering returns the zero-based position of perm within the walk
// order of the distinct orderings of blocks: UnrankOrdering(blocks,
// RankOrdering(blocks, perm)) reproduces perm, and ranks run 0 ..
// DistinctOrderings(blocks)-1 in exactly the order the mapper's walk
// visits. Equal blocks must be adjacent in blocks (the mapper's invariant);
// perm must be a rearrangement of blocks. Panics on a malformed perm or a
// multiset larger than MaxRankBlocks.
func RankOrdering(blocks []Loop, perm Nest) int64 {
	n := len(blocks)
	checkRankSize(n)
	if len(perm) != n {
		panic(fmt.Sprintf("loops: RankOrdering perm has %d blocks, multiset has %d", len(perm), n))
	}
	syms, mult := orderingRuns(blocks)
	var rank int64
	for p, rem := 0, n; p < n; p, rem = p+1, rem-1 {
		si := -1
		for j, s := range syms {
			if s == perm[p] && mult[j] > 0 {
				si = j
				break
			}
		}
		if si < 0 {
			panic(fmt.Sprintf("loops: RankOrdering perm[%d]=%v is not in the remaining multiset", p, perm[p]))
		}
		for j := 0; j < si; j++ {
			if mult[j] == 0 {
				continue
			}
			mult[j]--
			rank += restMultinomial(rem-1, mult)
			mult[j]++
		}
		mult[si]--
	}
	return rank
}

// UnrankOrdering returns the distinct ordering of blocks at zero-based walk
// position rank, the inverse of RankOrdering. Panics if rank is outside
// [0, DistinctOrderings(blocks)) or the multiset exceeds MaxRankBlocks.
func UnrankOrdering(blocks []Loop, rank int64) Nest {
	n := len(blocks)
	checkRankSize(n)
	if rank < 0 {
		panic(fmt.Sprintf("loops: UnrankOrdering rank %d < 0", rank))
	}
	syms, mult := orderingRuns(blocks)
	out := make(Nest, 0, n)
	for p, rem := 0, n; p < n; p, rem = p+1, rem-1 {
		placed := false
		for j := range syms {
			if mult[j] == 0 {
				continue
			}
			mult[j]--
			c := restMultinomial(rem-1, mult)
			if rank < c {
				out = append(out, syms[j])
				placed = true
				break
			}
			rank -= c
			mult[j]++
		}
		if !placed {
			panic(fmt.Sprintf("loops: UnrankOrdering rank out of range by %d for %d-block multiset", rank, n))
		}
	}
	return out
}
