package loops

// Strides captures the convolution striding needed to size input tiles
// through the sliding window: IX = (OX-1)*SX + (FX-1)*DX + 1 and the
// analogous relation for rows.
type Strides struct {
	SX, SY int64 // output stride (default 1)
	DX, DY int64 // filter dilation (default 1)
}

// DefaultStrides returns unit stride and dilation.
func DefaultStrides() Strides { return Strides{SX: 1, SY: 1, DX: 1, DY: 1} }

// normalized returns s with zero fields replaced by 1.
func (s Strides) normalized() Strides {
	if s.SX == 0 {
		s.SX = 1
	}
	if s.SY == 0 {
		s.SY = 1
	}
	if s.DX == 0 {
		s.DX = 1
	}
	if s.DY == 0 {
		s.DY = 1
	}
	return s
}

// InputExtent returns the input extent covered by an output extent out and a
// filter extent f under stride s and dilation d: (out-1)*s + (f-1)*d + 1.
// Extents of zero or less are treated as 1 (degenerate loops).
func InputExtent(out, f, s, d int64) int64 {
	if out < 1 {
		out = 1
	}
	if f < 1 {
		f = 1
	}
	if s < 1 {
		s = 1
	}
	if d < 1 {
		d = 1
	}
	return (out-1)*s + (f-1)*d + 1
}

// TileElems returns the number of data elements of operand op addressed by a
// tile whose per-dimension extents are given by dims (a value of 1 meaning
// the dimension is not present in the tile). For W and O this is the product
// of the operand's relevant dimensions; for I the OY/FY and OX/FX pairs
// combine through the sliding window using st.
func TileElems(op Operand, dims [NumDims]int64, st Strides) int64 {
	st = st.normalized()
	for i, v := range dims {
		if v < 1 {
			dims[i] = 1
		}
	}
	switch op {
	case W:
		return dims[K] * dims[C] * dims[FY] * dims[FX]
	case O:
		return dims[B] * dims[K] * dims[OY] * dims[OX]
	case I:
		iy := InputExtent(dims[OY], dims[FY], st.SY, st.DY)
		ix := InputExtent(dims[OX], dims[FX], st.SX, st.DX)
		return dims[B] * dims[C] * iy * ix
	}
	panic("loops: TileElems: unknown operand")
}

// NestTileElems returns the number of elements of op addressed by the tile
// formed by all loops in the nest (temporal and/or spatial, as supplied by
// the caller), combining per-dimension products and then applying TileElems.
func NestTileElems(op Operand, n Nest, st Strides) int64 {
	return TileElems(op, n.DimProduct(), st)
}
