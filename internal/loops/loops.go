// Package loops defines the seven-dimensional nested-loop representation of
// dense DNN layers used throughout the latency model, together with the
// operand relevance classification (r / ir loops) from the paper's Section
// III-A (which itself adopts the representation of ZigZag).
//
// A layer is a perfectly nested loop over the dimensions
//
//	B  — batch
//	K  — output channels
//	C  — input channels
//	OY — output rows
//	OX — output columns
//	FY — filter rows
//	FX — filter columns
//
// Every operand (W, I, O) classifies each dimension as relevant (r) — the
// dimension indexes into that operand's data — or irrelevant (ir) — iterating
// the dimension reuses the same data. The input operand additionally has
// partially relevant (pr) dimension pairs: OY/FY and OX/FX jointly index the
// input rows/columns through the sliding window.
package loops

import (
	"fmt"
	"sort"
	"strings"
)

// Dim identifies one of the seven canonical DNN layer dimensions.
type Dim uint8

// The seven canonical layer dimensions.
const (
	B Dim = iota
	K
	C
	OY
	OX
	FY
	FX
	numDims
)

// NumDims is the number of canonical layer dimensions.
const NumDims = int(numDims)

// AllDims lists every canonical dimension in declaration order.
var AllDims = [NumDims]Dim{B, K, C, OY, OX, FY, FX}

var dimNames = [NumDims]string{"B", "K", "C", "OY", "OX", "FY", "FX"}

// String returns the canonical upper-case name of the dimension.
func (d Dim) String() string {
	if int(d) < len(dimNames) {
		return dimNames[d]
	}
	return fmt.Sprintf("Dim(%d)", uint8(d))
}

// ParseDim converts a dimension name (case-insensitive) to a Dim.
func ParseDim(s string) (Dim, error) {
	up := strings.ToUpper(strings.TrimSpace(s))
	for i, n := range dimNames {
		if n == up {
			return Dim(i), nil
		}
	}
	return 0, fmt.Errorf("loops: unknown dimension %q", s)
}

// Operand identifies one of the three layer operands.
type Operand uint8

// The three layer operands.
const (
	W Operand = iota // weights
	I                // inputs (activations)
	O                // outputs (partial and final sums)
	numOperands
)

// NumOperands is the number of layer operands.
const NumOperands = int(numOperands)

// AllOperands lists every operand in declaration order.
var AllOperands = [NumOperands]Operand{W, I, O}

var operandNames = [NumOperands]string{"W", "I", "O"}

// String returns the canonical single-letter operand name.
func (o Operand) String() string {
	if int(o) < len(operandNames) {
		return operandNames[o]
	}
	return fmt.Sprintf("Operand(%d)", uint8(o))
}

// ParseOperand converts an operand name ("W", "I", "O", case-insensitive)
// to an Operand.
func ParseOperand(s string) (Operand, error) {
	up := strings.ToUpper(strings.TrimSpace(s))
	for i, n := range operandNames {
		if n == up {
			return Operand(i), nil
		}
	}
	return 0, fmt.Errorf("loops: unknown operand %q", s)
}

// Relevance classifies how a dimension relates to an operand's data layout.
type Relevance uint8

// Relevance classes.
const (
	Irrelevant        Relevance = iota // iterating the dim reuses the same data
	Relevant                           // the dim indexes the operand's data
	PartiallyRelevant                  // the dim indexes jointly with a partner dim (input sliding window)
)

// String returns "ir", "r" or "pr".
func (r Relevance) String() string {
	switch r {
	case Irrelevant:
		return "ir"
	case Relevant:
		return "r"
	case PartiallyRelevant:
		return "pr"
	}
	return fmt.Sprintf("Relevance(%d)", uint8(r))
}

// relevanceTable[op][dim] gives the relevance of dim for operand op.
//
//	W: r = {K, C, FY, FX};       ir = {B, OY, OX}
//	I: r = {B, C}; pr = {OY, OX, FY, FX}; ir = {K}
//	O: r = {B, K, OY, OX};       ir = {C, FY, FX}
var relevanceTable = [NumOperands][NumDims]Relevance{
	W: {B: Irrelevant, K: Relevant, C: Relevant, OY: Irrelevant, OX: Irrelevant, FY: Relevant, FX: Relevant},
	I: {B: Relevant, K: Irrelevant, C: Relevant, OY: PartiallyRelevant, OX: PartiallyRelevant, FY: PartiallyRelevant, FX: PartiallyRelevant},
	O: {B: Relevant, K: Relevant, C: Irrelevant, OY: Relevant, OX: Relevant, FY: Irrelevant, FX: Irrelevant},
}

// RelevanceOf returns the relevance of dimension d for operand op.
func RelevanceOf(op Operand, d Dim) Relevance {
	return relevanceTable[op][d]
}

// IsReuseDim reports whether iterating dimension d leaves operand op's data
// unchanged (i.e. d is irrelevant for op). Partially relevant dimensions are
// treated as data-changing because the sliding window shifts the accessed
// input region.
func IsReuseDim(op Operand, d Dim) bool {
	return relevanceTable[op][d] == Irrelevant
}

// prPartner maps each partially relevant input dimension to its window
// partner: OY<->FY and OX<->FX.
var prPartner = map[Dim]Dim{OY: FY, FY: OY, OX: FX, FX: OX}

// PRPartner returns the partner dimension of a partially relevant input
// dimension (OY<->FY, OX<->FX) and whether d has one.
func PRPartner(d Dim) (Dim, bool) {
	p, ok := prPartner[d]
	return p, ok
}

// Loop is a single for-loop: a dimension iterated over a positive size.
// A Loop with Size 1 is a degenerate (no-op) loop.
type Loop struct {
	Dim  Dim
	Size int64
}

// String renders the loop as e.g. "K 16".
func (l Loop) String() string { return fmt.Sprintf("%s %d", l.Dim, l.Size) }

// Validate reports an error for non-positive loop sizes.
func (l Loop) Validate() error {
	if l.Size <= 0 {
		return fmt.Errorf("loops: loop %s has non-positive size %d", l.Dim, l.Size)
	}
	return nil
}

// Nest is an ordered list of loops. By convention throughout this repository
// index 0 is the INNERMOST loop and the last element is the outermost loop.
type Nest []Loop

// Product returns the product of all loop sizes in the nest (1 for empty).
func (n Nest) Product() int64 {
	p := int64(1)
	for _, l := range n {
		p *= l.Size
	}
	return p
}

// ProductOf returns the product of the sizes of loops whose dimension
// satisfies keep.
func (n Nest) ProductOf(keep func(Dim) bool) int64 {
	p := int64(1)
	for _, l := range n {
		if keep(l.Dim) {
			p *= l.Size
		}
	}
	return p
}

// DimProduct returns, per dimension, the product of sizes of that dimension's
// loops in the nest.
func (n Nest) DimProduct() [NumDims]int64 {
	var out [NumDims]int64
	for i := range out {
		out[i] = 1
	}
	for _, l := range n {
		out[l.Dim] *= l.Size
	}
	return out
}

// Validate checks every loop in the nest.
func (n Nest) Validate() error {
	for i, l := range n {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("loops: nest index %d: %w", i, err)
		}
	}
	return nil
}

// Clone returns a deep copy of the nest.
func (n Nest) Clone() Nest {
	out := make(Nest, len(n))
	copy(out, n)
	return out
}

// String renders the nest from innermost to outermost, e.g.
// "[C 4 | OX 8 | K 2]".
func (n Nest) String() string {
	parts := make([]string, len(n))
	for i, l := range n {
		parts[i] = l.String()
	}
	return "[" + strings.Join(parts, " | ") + "]"
}

// TopReuseRun returns the product of the sizes of the contiguous run of
// loops, starting from the OUTERMOST end of the nest, that are irrelevant
// for operand op. This is the "top ir loop size" factor of the paper's
// Table I: for a non-double-buffered memory whose top temporal loops are ir
// for the operand, the required bandwidth scales up by this product because
// the held data may only be replaced during the final iteration of those
// reuse loops.
//
// Loops of size 1 are transparent: they neither extend nor break the run.
func (n Nest) TopReuseRun(op Operand) int64 {
	run := int64(1)
	for i := len(n) - 1; i >= 0; i-- {
		l := n[i]
		if l.Size == 1 {
			continue
		}
		if IsReuseDim(op, l.Dim) {
			run *= l.Size
		} else {
			break
		}
	}
	return run
}

// ReuseProduct returns the product of the sizes of all loops in the nest
// that are irrelevant for op — the total data-reuse factor the nest offers
// that operand.
func (n Nest) ReuseProduct(op Operand) int64 {
	return n.ProductOf(func(d Dim) bool { return IsReuseDim(op, d) })
}

// PrimeFactors returns the ascending prime factorization of n (with
// multiplicity). PrimeFactors(1) returns an empty slice; n must be >= 1.
func PrimeFactors(n int64) []int64 {
	if n < 1 {
		panic(fmt.Sprintf("loops: PrimeFactors of non-positive %d", n))
	}
	var fs []int64
	for n%2 == 0 {
		fs = append(fs, 2)
		n /= 2
	}
	for p := int64(3); p*p <= n; p += 2 {
		for n%p == 0 {
			fs = append(fs, p)
			n /= p
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}

// Divisors returns all positive divisors of n in ascending order.
func Divisors(n int64) []int64 {
	if n < 1 {
		panic(fmt.Sprintf("loops: Divisors of non-positive %d", n))
	}
	var ds []int64
	for d := int64(1); d*d <= n; d++ {
		if n%d == 0 {
			ds = append(ds, d)
			if d != n/d {
				ds = append(ds, n/d)
			}
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds
}

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic(fmt.Sprintf("loops: CeilDiv by non-positive %d", b))
	}
	return (a + b - 1) / b
}

// GCD returns the greatest common divisor of a and b (non-negative inputs).
func GCD(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b (positive inputs).
func LCM(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	return a / GCD(a, b) * b
}

// ParseNest parses the human-readable nest syntax used throughout the
// reports, e.g. "K 16 | B 8 | C 2" (case-insensitive, innermost first for
// temporal nests). Surrounding brackets are tolerated.
func ParseNest(s string) (Nest, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out Nest
	for _, part := range strings.Split(s, "|") {
		fields := strings.Fields(part)
		if len(fields) != 2 {
			return nil, fmt.Errorf("loops: bad nest component %q (want \"DIM SIZE\")", strings.TrimSpace(part))
		}
		d, err := ParseDim(fields[0])
		if err != nil {
			return nil, err
		}
		var size int64
		if _, err := fmt.Sscanf(fields[1], "%d", &size); err != nil {
			return nil, fmt.Errorf("loops: bad loop size %q", fields[1])
		}
		l := Loop{Dim: d, Size: size}
		if err := l.Validate(); err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	return out, nil
}
