package loops

import "encoding/binary"

// Model-equivalence signature primitives.
//
// The uniform latency model consumes a temporal nest through two kinds of
// quantities only: per-level per-dimension size PRODUCTS (the Mem_DATA tile
// resolution, Mem_CC, the turnaround count Z, the psum traffic split and
// CC_spatial are all products over a level slice's dims) and the TOP REUSE
// RUN of each non-double-buffered interface level (Table I's keep-out
// scaling). Two nests that agree on both therefore score identically — they
// belong to the same model-equivalence class. The mapper's symmetry
// reduction keys classes by the byte encoding built from these primitives,
// and core's Step-1 op-cache keys its sub-results by the same encoding.

// AppendDimProducts appends the canonical encoding of the nest's non-trivial
// per-dimension size products to dst and returns the extended slice: for
// each dimension with product != 1, in declaration order, one dimension
// index byte followed by the uvarint product, closed by a 0xFF terminator.
// A dimension byte is < NumDims < 0x80, so the encoding is self-delimiting
// and injective: equal byte strings imply equal product vectors.
func (n Nest) AppendDimProducts(dst []byte) []byte {
	dims := n.DimProduct()
	var tmp [binary.MaxVarintLen64]byte
	for d, v := range dims {
		if v != 1 {
			dst = append(dst, byte(d))
			k := binary.PutUvarint(tmp[:], uint64(v))
			dst = append(dst, tmp[:k]...)
		}
	}
	return append(dst, 0xFF)
}

// AppendUvarint appends the uvarint encoding of v to dst and returns the
// extended slice.
func AppendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:k]...)
}

// DistinctOrderings returns the number of distinct sequences the block
// multiset can be arranged into: n! / prod(m_i!) over the multiplicities
// m_i of the distinct blocks. The mapper uses it to account skipped
// enumeration remainders exactly without walking them. The count is built
// incrementally — after item i it equals the multinomial of the first i+1
// blocks — so every intermediate value is itself an exact integer and the
// running product never exceeds the final result times n (the engine's
// worst case, 7 dims x 2 splits = 14 blocks, tops out at 14! ~ 8.7e10,
// far inside int64).
func DistinctOrderings(blocks []Loop) int64 {
	total := int64(1)
	for i := range blocks {
		dup := int64(0)
		for j := 0; j <= i; j++ {
			if blocks[j] == blocks[i] {
				dup++
			}
		}
		total = total * int64(i+1) / dup
	}
	return total
}
