package loops

import (
	"testing"
	"testing/quick"
)

func TestDimString(t *testing.T) {
	want := map[Dim]string{B: "B", K: "K", C: "C", OY: "OY", OX: "OX", FY: "FY", FX: "FX"}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("Dim %d String = %q, want %q", d, d.String(), s)
		}
	}
	if got := Dim(42).String(); got != "Dim(42)" {
		t.Errorf("out-of-range Dim String = %q", got)
	}
}

func TestParseDim(t *testing.T) {
	for _, d := range AllDims {
		got, err := ParseDim(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDim(%q) = %v, %v", d.String(), got, err)
		}
	}
	if got, err := ParseDim(" oy "); err != nil || got != OY {
		t.Errorf("ParseDim lower/space = %v, %v", got, err)
	}
	if _, err := ParseDim("Q"); err == nil {
		t.Error("ParseDim(Q) succeeded, want error")
	}
}

func TestParseOperand(t *testing.T) {
	for _, o := range AllOperands {
		got, err := ParseOperand(o.String())
		if err != nil || got != o {
			t.Errorf("ParseOperand(%q) = %v, %v", o.String(), got, err)
		}
	}
	if _, err := ParseOperand("X"); err == nil {
		t.Error("ParseOperand(X) succeeded, want error")
	}
	if got := Operand(9).String(); got != "Operand(9)" {
		t.Errorf("out-of-range Operand String = %q", got)
	}
}

func TestRelevanceTable(t *testing.T) {
	cases := []struct {
		op   Operand
		dim  Dim
		want Relevance
	}{
		{W, K, Relevant}, {W, C, Relevant}, {W, FY, Relevant}, {W, FX, Relevant},
		{W, B, Irrelevant}, {W, OY, Irrelevant}, {W, OX, Irrelevant},
		{I, B, Relevant}, {I, C, Relevant}, {I, K, Irrelevant},
		{I, OY, PartiallyRelevant}, {I, OX, PartiallyRelevant},
		{I, FY, PartiallyRelevant}, {I, FX, PartiallyRelevant},
		{O, B, Relevant}, {O, K, Relevant}, {O, OY, Relevant}, {O, OX, Relevant},
		{O, C, Irrelevant}, {O, FY, Irrelevant}, {O, FX, Irrelevant},
	}
	for _, c := range cases {
		if got := RelevanceOf(c.op, c.dim); got != c.want {
			t.Errorf("RelevanceOf(%s, %s) = %s, want %s", c.op, c.dim, got, c.want)
		}
	}
}

func TestRelevanceString(t *testing.T) {
	if Irrelevant.String() != "ir" || Relevant.String() != "r" || PartiallyRelevant.String() != "pr" {
		t.Error("Relevance String values wrong")
	}
	if got := Relevance(7).String(); got != "Relevance(7)" {
		t.Errorf("out-of-range Relevance String = %q", got)
	}
}

func TestIsReuseDim(t *testing.T) {
	// W and O have 3 reuse (ir) dims; I has only K (its window dims are pr).
	wantIR := map[Operand]int{W: 3, I: 1, O: 3}
	for _, op := range AllOperands {
		n := 0
		for _, d := range AllDims {
			if IsReuseDim(op, d) {
				n++
			}
		}
		if n != wantIR[op] {
			t.Errorf("operand %s has %d ir dims, want %d", op, n, wantIR[op])
		}
	}
	// pr dims are not reuse dims for I.
	for _, d := range []Dim{OY, OX, FY, FX} {
		if IsReuseDim(I, d) {
			t.Errorf("I should not reuse over %s", d)
		}
	}
}

func TestPRPartner(t *testing.T) {
	pairs := map[Dim]Dim{OY: FY, FY: OY, OX: FX, FX: OX}
	for d, want := range pairs {
		got, ok := PRPartner(d)
		if !ok || got != want {
			t.Errorf("PRPartner(%s) = %s, %v; want %s", d, got, ok, want)
		}
	}
	if _, ok := PRPartner(K); ok {
		t.Error("PRPartner(K) should not exist")
	}
}

func TestNestProduct(t *testing.T) {
	n := Nest{{C, 4}, {OX, 8}, {K, 2}}
	if got := n.Product(); got != 64 {
		t.Errorf("Product = %d, want 64", got)
	}
	if got := (Nest{}).Product(); got != 1 {
		t.Errorf("empty Product = %d, want 1", got)
	}
	if got := n.ProductOf(func(d Dim) bool { return d == C || d == K }); got != 8 {
		t.Errorf("ProductOf = %d, want 8", got)
	}
}

func TestNestDimProduct(t *testing.T) {
	n := Nest{{C, 4}, {C, 2}, {K, 3}}
	dp := n.DimProduct()
	if dp[C] != 8 || dp[K] != 3 || dp[B] != 1 {
		t.Errorf("DimProduct = %v", dp)
	}
}

func TestNestValidate(t *testing.T) {
	if err := (Nest{{C, 4}, {K, 1}}).Validate(); err != nil {
		t.Errorf("valid nest got error: %v", err)
	}
	if err := (Nest{{C, 0}}).Validate(); err == nil {
		t.Error("zero-size loop validated")
	}
	if err := (Loop{K, -2}).Validate(); err == nil {
		t.Error("negative loop validated")
	}
}

func TestNestCloneIndependence(t *testing.T) {
	n := Nest{{C, 4}, {K, 2}}
	c := n.Clone()
	c[0].Size = 99
	if n[0].Size != 4 {
		t.Error("Clone aliases original")
	}
}

func TestNestString(t *testing.T) {
	n := Nest{{C, 4}, {OX, 8}}
	if got := n.String(); got != "[C 4 | OX 8]" {
		t.Errorf("String = %q", got)
	}
}

func TestTopReuseRun(t *testing.T) {
	// Innermost first: [C 4 | OX 8 | OY 2]; for W the top run is OY*OX = 16.
	n := Nest{{C, 4}, {OX, 8}, {OY, 2}}
	if got := n.TopReuseRun(W); got != 16 {
		t.Errorf("TopReuseRun(W) = %d, want 16", got)
	}
	// For O, OY and OX are relevant: top loop is OY (r) so run = 1.
	if got := n.TopReuseRun(O); got != 1 {
		t.Errorf("TopReuseRun(O) = %d, want 1", got)
	}
	// Size-1 loops are transparent.
	n2 := Nest{{C, 4}, {OX, 8}, {K, 1}, {OY, 2}}
	if got := n2.TopReuseRun(W); got != 16 {
		t.Errorf("TopReuseRun with size-1 gap = %d, want 16", got)
	}
	// A relevant loop on top stops the run immediately.
	n3 := Nest{{OX, 8}, {C, 4}}
	if got := n3.TopReuseRun(W); got != 1 {
		t.Errorf("TopReuseRun r-top = %d, want 1", got)
	}
	// Empty nest.
	if got := (Nest{}).TopReuseRun(W); got != 1 {
		t.Errorf("TopReuseRun empty = %d, want 1", got)
	}
}

func TestReuseProduct(t *testing.T) {
	n := Nest{{C, 4}, {OX, 8}, {K, 2}, {B, 3}}
	if got := n.ReuseProduct(W); got != 24 { // OX*B
		t.Errorf("ReuseProduct(W) = %d, want 24", got)
	}
	if got := n.ReuseProduct(O); got != 4 { // C
		t.Errorf("ReuseProduct(O) = %d, want 4", got)
	}
	if got := n.ReuseProduct(I); got != 2 { // K
		t.Errorf("ReuseProduct(I) = %d, want 2", got)
	}
}

func TestPrimeFactors(t *testing.T) {
	cases := map[int64][]int64{
		1:   {},
		2:   {2},
		12:  {2, 2, 3},
		97:  {97},
		360: {2, 2, 2, 3, 3, 5},
	}
	for n, want := range cases {
		got := PrimeFactors(n)
		if len(got) != len(want) {
			t.Errorf("PrimeFactors(%d) = %v, want %v", n, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("PrimeFactors(%d) = %v, want %v", n, got, want)
				break
			}
		}
	}
}

func TestPrimeFactorsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PrimeFactors(0) did not panic")
		}
	}()
	PrimeFactors(0)
}

func TestDivisors(t *testing.T) {
	got := Divisors(12)
	want := []int64{1, 2, 3, 4, 6, 12}
	if len(got) != len(want) {
		t.Fatalf("Divisors(12) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Divisors(12) = %v, want %v", got, want)
		}
	}
	if d := Divisors(1); len(d) != 1 || d[0] != 1 {
		t.Errorf("Divisors(1) = %v", d)
	}
}

func TestCeilDivGCDLCM(t *testing.T) {
	if CeilDiv(7, 2) != 4 || CeilDiv(8, 2) != 4 || CeilDiv(0, 5) != 0 {
		t.Error("CeilDiv wrong")
	}
	if GCD(12, 18) != 6 || GCD(7, 13) != 1 || GCD(0, 5) != 5 {
		t.Error("GCD wrong")
	}
	if LCM(4, 6) != 12 || LCM(0, 5) != 0 {
		t.Error("LCM wrong")
	}
}

func TestPrimeFactorsRoundTrip(t *testing.T) {
	f := func(x uint16) bool {
		n := int64(x)%5000 + 1
		p := int64(1)
		for _, f := range PrimeFactors(n) {
			p *= f
		}
		return p == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivisorsDivide(t *testing.T) {
	f := func(x uint16) bool {
		n := int64(x)%2000 + 1
		for _, d := range Divisors(n) {
			if n%d != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInputExtent(t *testing.T) {
	// Unit stride/dilation: IX = OX + FX - 1.
	if got := InputExtent(8, 3, 1, 1); got != 10 {
		t.Errorf("InputExtent(8,3,1,1) = %d, want 10", got)
	}
	// Stride 2: (8-1)*2 + (3-1)*1 + 1 = 17.
	if got := InputExtent(8, 3, 2, 1); got != 17 {
		t.Errorf("InputExtent stride2 = %d, want 17", got)
	}
	// Degenerate inputs clamp to 1.
	if got := InputExtent(0, 0, 0, 0); got != 1 {
		t.Errorf("InputExtent degenerate = %d, want 1", got)
	}
}

func TestTileElems(t *testing.T) {
	var dims [NumDims]int64
	for i := range dims {
		dims[i] = 1
	}
	dims[K], dims[C], dims[FY], dims[FX] = 16, 8, 3, 3
	if got := TileElems(W, dims, DefaultStrides()); got != 16*8*9 {
		t.Errorf("W TileElems = %d", got)
	}
	dims[B], dims[OY], dims[OX] = 2, 8, 8
	if got := TileElems(O, dims, DefaultStrides()); got != 2*16*64 {
		t.Errorf("O TileElems = %d", got)
	}
	// I: B*C*(OY+FY-1)*(OX+FX-1) = 2*8*10*10.
	if got := TileElems(I, dims, DefaultStrides()); got != 2*8*100 {
		t.Errorf("I TileElems = %d", got)
	}
	// Zero-filled dims behave as 1s.
	var zero [NumDims]int64
	if got := TileElems(W, zero, Strides{}); got != 1 {
		t.Errorf("zero dims TileElems = %d", got)
	}
}

func TestNestTileElems(t *testing.T) {
	n := Nest{{K, 4}, {C, 2}, {K, 2}}
	if got := NestTileElems(W, n, DefaultStrides()); got != 16 {
		t.Errorf("NestTileElems = %d, want 16", got)
	}
}

// Property: for W and O, TileElems is multiplicative in each relevant dim.
func TestTileElemsMultiplicative(t *testing.T) {
	f := func(k, c uint8) bool {
		var dims [NumDims]int64
		for i := range dims {
			dims[i] = 1
		}
		dims[K] = int64(k)%7 + 1
		dims[C] = int64(c)%7 + 1
		return TileElems(W, dims, DefaultStrides()) == dims[K]*dims[C]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseNest(t *testing.T) {
	n, err := ParseNest("[K 16 | B 8 | C 2]")
	if err != nil {
		t.Fatal(err)
	}
	if n.String() != "[K 16 | B 8 | C 2]" {
		t.Errorf("round trip = %s", n.String())
	}
	// Bare and lower-case forms.
	n2, err := ParseNest("k 4 | oy 7")
	if err != nil || n2.Product() != 28 {
		t.Errorf("bare parse: %v, %v", n2, err)
	}
	// Empty.
	if n3, err := ParseNest("[]"); err != nil || len(n3) != 0 {
		t.Errorf("empty parse: %v, %v", n3, err)
	}
	// Errors.
	for _, bad := range []string{"K", "K x", "Q 4", "K 0", "K 4 | "} {
		if _, err := ParseNest(bad); err == nil {
			t.Errorf("ParseNest(%q) accepted", bad)
		}
	}
}

// Property: every rendered nest parses back to itself.
func TestParseNestRoundTrip(t *testing.T) {
	f := func(a, b, c uint8) bool {
		n := Nest{
			{Dim: AllDims[a%7], Size: int64(a%9) + 1},
			{Dim: AllDims[b%7], Size: int64(b%9) + 1},
			{Dim: AllDims[c%7], Size: int64(c%9) + 1},
		}
		got, err := ParseNest(n.String())
		return err == nil && got.String() == n.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
