package core

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/arch"
	"repro/internal/loops"
)

// Scenario classifies the computation phase per paper Fig. 1(b).
type Scenario uint8

// The four computation-phase scenarios of Fig. 1(b).
const (
	// Scenario1: spatially and temporally fully mapped — CC = CC_ideal.
	Scenario1 Scenario = 1 + iota
	// Scenario2: temporally full, spatially under-mapped — CC = CC_spatial.
	Scenario2
	// Scenario3: spatially full, temporally under-mapped — CC = CC_ideal + SS_overall.
	Scenario3
	// Scenario4: under-mapped in both — CC = CC_spatial + SS_overall.
	Scenario4
)

// String names the scenario.
func (s Scenario) String() string {
	if s >= Scenario1 && s <= Scenario4 {
		return fmt.Sprintf("scenario %d", int(s))
	}
	return fmt.Sprintf("Scenario(%d)", uint8(s))
}

// Result is a complete latency evaluation of one (layer, arch, mapping)
// point.
type Result struct {
	// CCIdeal is Total MAC ops / MAC array size (Fig. 1(b) scenario 1).
	CCIdeal float64
	// CCSpatial is the computation-phase cycle count assuming no temporal
	// stall: the product of all temporal loop iterations.
	CCSpatial int64
	// SpatialStall = CCSpatial - CCIdeal (>= 0 for valid mappings).
	SpatialStall float64
	// SSOverall is the Step-3 temporal stall (clamped at 0).
	SSOverall float64
	// Preload and Offload are the data pre-loading / offloading phase
	// cycles (Fig. 1(a)).
	Preload float64
	// Offload is the final output write-back time.
	Offload float64
	// CCTotal = CCSpatial + SSOverall + Preload + Offload.
	CCTotal float64

	// Utilization is CC_ideal / CC_total; SpatialUtilization and
	// TemporalUtilization isolate the two loss sources.
	Utilization         float64
	SpatialUtilization  float64
	TemporalUtilization float64

	// Scenario classifies the computation phase.
	Scenario Scenario

	// Diagnostics for bottleneck analysis.
	Endpoints []*Endpoint
	Ports     []*PortStall
	Memories  []*MemStall
	// SSRaw is the pre-clamp integrated stall (can be negative slack).
	SSRaw float64
}

// Evaluate runs the full 3-step latency model. The mapping is assumed to be
// valid for the layer and architecture (call Mapping.Validate first; the
// model itself re-checks only what it needs to stay well-defined).
func Evaluate(p *Problem) (*Result, error) {
	if p.Layer == nil || p.Arch == nil || p.Mapping == nil {
		return nil, fmt.Errorf("core: nil problem component")
	}

	// Step 1: per-DTL attributes.
	eps, err := buildEndpoints(p)
	if err != nil {
		return nil, err
	}
	// Step 2: combine per physical port, then per memory module.
	ports := combinePorts(p, eps)
	mems := combineMemories(ports)

	// Step 3: integrate across memory modules. Elastic stalls (full-window
	// links) hide under any other freeze, so they combine by max/sum per
	// the architecture's concurrency configuration; rigid stalls (keep-out
	// windows narrower than the turnaround) freeze compute at disjoint
	// steps of different unit memories and accumulate.
	ssRaw := integrate(mems, p.Arch.Combine)
	if !p.opts().NoRigidAccumulation {
		if rigid := rigidTotal(eps); rigid > ssRaw {
			ssRaw = rigid
		}
	}
	ss := ssRaw
	if ss < 0 {
		ss = 0
	}

	ccIdeal := float64(p.Layer.TotalMACs()) / float64(p.Arch.MACs)
	ccSpatial := p.Mapping.CCSpatial()
	pre := preloadCycles(p)
	post := offloadCycles(p)

	r := &Result{
		CCIdeal:      ccIdeal,
		CCSpatial:    ccSpatial,
		SpatialStall: float64(ccSpatial) - ccIdeal,
		SSOverall:    ss,
		Preload:      pre,
		Offload:      post,
		CCTotal:      float64(ccSpatial) + ss + pre + post,
		Endpoints:    eps,
		Ports:        ports,
		Memories:     mems,
		SSRaw:        ssRaw,
	}
	r.Utilization = ccIdeal / r.CCTotal
	r.SpatialUtilization = ccIdeal / float64(ccSpatial)
	r.TemporalUtilization = float64(ccSpatial) / (float64(ccSpatial) + ss)

	spatialFull := float64(ccSpatial) <= ccIdeal+0.5
	temporalFull := ss <= 0
	switch {
	case spatialFull && temporalFull:
		r.Scenario = Scenario1
	case temporalFull:
		r.Scenario = Scenario2
	case spatialFull:
		r.Scenario = Scenario3
	default:
		r.Scenario = Scenario4
	}
	return r, nil
}

// rigidTotal accumulates the structural stalls of keep-out-window links.
// A link whose allowed window is narrower than its turnaround (X_REQ <
// Mem_CC, i.e. a single-buffered destination with reuse loops on top)
// overruns its window on EVERY period when X_REAL > X_REQ; the resulting
// compute freezes sit at that unit memory's own period boundaries, so
// freezes of different unit memories cannot hide under each other and add
// up. Within one unit memory, the drain and psum links share the same
// boundary freeze (max); a link's two port endpoints are the same transfer
// (max). The reference simulator confirms this accumulation (DESIGN.md §5).
func rigidTotal(eps []*Endpoint) float64 {
	type unitKey struct {
		op  loops.Operand
		lvl int
	}
	perUnit := map[unitKey]map[LinkKind]float64{}
	for _, e := range eps {
		if e.XReq >= e.MemCC || e.SSu <= 0 {
			continue
		}
		k := unitKey{e.Operand, e.Level}
		if perUnit[k] == nil {
			perUnit[k] = map[LinkKind]float64{}
		}
		if e.SSu > perUnit[k][e.Kind] {
			perUnit[k][e.Kind] = e.SSu
		}
	}
	var total float64
	for _, kinds := range perUnit {
		unit := 0.0
		for _, v := range kinds {
			if v > unit {
				unit = v
			}
		}
		total += unit
	}
	return total
}

// integrate implements Step 3: memories operating concurrently hide each
// other's stalls (max); sequentially operating memories accumulate (sum).
func integrate(mems []*MemStall, mode arch.StallCombine) float64 {
	if len(mems) == 0 {
		return 0
	}
	if mode == arch.Sequential {
		var sum float64
		for _, m := range mems {
			if m.SS > 0 {
				sum += m.SS
			}
		}
		if sum > 0 {
			return sum
		}
		// All slack: report the least-slack memory.
		best := math.Inf(-1)
		for _, m := range mems {
			if m.SS > best {
				best = m.SS
			}
		}
		return best
	}
	best := math.Inf(-1)
	for _, m := range mems {
		if m.SS > best {
			best = m.SS
		}
	}
	return best
}

// preloadCycles estimates the data pre-loading phase (Fig. 1(a)): the first
// W and I tiles ripple down each operand's chain level by level; each hop
// moves the level's tile at the slower of the two port bandwidths. Operands
// load concurrently (the phase takes the slowest operand), EXCEPT where
// their hops read the same physical port — one port moves one tile at a
// time, so shared-port hop times serialize (the reference simulator's
// behaviour).
func preloadCycles(p *Problem) float64 {
	type portKey struct {
		mem  string
		port int
	}
	perPort := map[portKey]float64{}
	worst := 0.0
	for _, op := range []loops.Operand{loops.W, loops.I} {
		total := 0.0
		chain := p.Arch.ChainMems(op)
		for l := 0; l+1 < len(chain); l++ {
			elems := p.Mapping.MemData(op, l, p.Layer.Strides)
			cc := hopCycles(p, chain[l+1], chain[l], op, elems)
			total += cc
			if _, idx, err := chain[l+1].Port(arch.Access{Operand: op, Write: false}); err == nil {
				perPort[portKey{chain[l+1].Name, idx}] += cc
			}
		}
		if total > worst {
			worst = total
		}
	}
	for _, busy := range perPort {
		if busy > worst {
			worst = busy
		}
	}
	return worst
}

// offloadCycles estimates the data offloading phase: the final O tile at
// each level drains up the chain.
func offloadCycles(p *Problem) float64 {
	total := 0.0
	chain := p.Arch.ChainMems(loops.O)
	for l := 0; l+1 < len(chain); l++ {
		elems := p.Mapping.MemData(loops.O, l, p.Layer.Strides)
		total += hopCycles(p, chain[l], chain[l+1], loops.O, elems)
	}
	return total
}

// hopCycles is the time to move elems elements of op from src (read) to dst
// (write), limited by the slower port.
func hopCycles(p *Problem, src, dst *arch.Memory, op loops.Operand, elems int64) float64 {
	bits := float64(p.Layer.Precision.Bits(op))
	rp, _, err := src.Port(arch.Access{Operand: op, Write: false})
	if err != nil {
		return 0
	}
	wp, _, err := dst.Port(arch.Access{Operand: op, Write: true})
	if err != nil {
		return 0
	}
	bw := float64(rp.BWBits)
	if float64(wp.BWBits) < bw {
		bw = float64(wp.BWBits)
	}
	return math.Ceil(float64(elems) * bits / bw)
}

// Report renders a multi-line human-readable breakdown.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "latency: %.0f cc total (%s)\n", r.CCTotal, r.Scenario)
	fmt.Fprintf(&b, "  ideal compute : %.1f cc\n", r.CCIdeal)
	fmt.Fprintf(&b, "  spatial stall : %.1f cc\n", r.SpatialStall)
	fmt.Fprintf(&b, "  temporal stall: %.1f cc (raw %+.1f)\n", r.SSOverall, r.SSRaw)
	fmt.Fprintf(&b, "  preload       : %.0f cc\n", r.Preload)
	fmt.Fprintf(&b, "  offload       : %.0f cc\n", r.Offload)
	fmt.Fprintf(&b, "  utilization   : %.1f%% (spatial %.1f%%, temporal %.1f%%)\n",
		100*r.Utilization, 100*r.SpatialUtilization, 100*r.TemporalUtilization)
	for _, ms := range r.Memories {
		fmt.Fprintf(&b, "  mem %-8s SS %+.1f\n", ms.MemName, ms.SS)
	}
	return b.String()
}

// BottleneckPort returns the port with the largest combined stall, or nil
// when the evaluation produced no stalling port.
func (r *Result) BottleneckPort() *PortStall {
	var best *PortStall
	for _, ps := range r.Ports {
		if best == nil || ps.SSComb > best.SSComb {
			best = ps
		}
	}
	return best
}
