package core

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/arch"
	"repro/internal/loops"
)

// Scenario classifies the computation phase per paper Fig. 1(b).
type Scenario uint8

// The four computation-phase scenarios of Fig. 1(b).
const (
	// Scenario1: spatially and temporally fully mapped — CC = CC_ideal.
	Scenario1 Scenario = 1 + iota
	// Scenario2: temporally full, spatially under-mapped — CC = CC_spatial.
	Scenario2
	// Scenario3: spatially full, temporally under-mapped — CC = CC_ideal + SS_overall.
	Scenario3
	// Scenario4: under-mapped in both — CC = CC_spatial + SS_overall.
	Scenario4
)

// String names the scenario.
func (s Scenario) String() string {
	if s >= Scenario1 && s <= Scenario4 {
		return fmt.Sprintf("scenario %d", int(s))
	}
	return fmt.Sprintf("Scenario(%d)", uint8(s))
}

// Result is a complete latency evaluation of one (layer, arch, mapping)
// point.
type Result struct {
	// CCIdeal is Total MAC ops / MAC array size (Fig. 1(b) scenario 1).
	CCIdeal float64
	// CCSpatial is the computation-phase cycle count assuming no temporal
	// stall: the product of all temporal loop iterations.
	CCSpatial int64
	// SpatialStall = CCSpatial - CCIdeal (>= 0 for valid mappings).
	SpatialStall float64
	// SSOverall is the Step-3 temporal stall (clamped at 0).
	SSOverall float64
	// Preload and Offload are the data pre-loading / offloading phase
	// cycles (Fig. 1(a)).
	Preload float64
	// Offload is the final output write-back time.
	Offload float64
	// CCTotal = CCSpatial + SSOverall + Preload + Offload.
	CCTotal float64

	// Utilization is CC_ideal / CC_total; SpatialUtilization and
	// TemporalUtilization isolate the two loss sources.
	Utilization         float64
	SpatialUtilization  float64
	TemporalUtilization float64

	// Scenario classifies the computation phase.
	Scenario Scenario

	// Diagnostics for bottleneck analysis.
	Endpoints []*Endpoint
	Ports     []*PortStall
	Memories  []*MemStall
	// SSRaw is the pre-clamp integrated stall (can be negative slack).
	SSRaw float64
}

// Evaluate runs the full 3-step latency model. The mapping is assumed to be
// valid for the layer and architecture (call Mapping.Validate first; the
// model itself re-checks only what it needs to stay well-defined).
//
// Evaluate runs a throwaway Evaluator, so the returned Result owns all of
// its diagnostic slices. Repeated evaluations (mapping searches, sweeps)
// should hold one Evaluator per goroutine and use its methods, which reuse
// every internal buffer.
func Evaluate(p *Problem) (*Result, error) {
	var ev Evaluator
	return ev.Evaluate(p)
}

// hopCycles is the time to move elems elements of op from src (read) to dst
// (write), limited by the slower port.
func hopCycles(p *Problem, src, dst *arch.Memory, op loops.Operand, elems int64) float64 {
	bits := float64(p.Layer.Precision.Bits(op))
	rp, _, err := src.Port(arch.Access{Operand: op, Write: false})
	if err != nil {
		return 0
	}
	wp, _, err := dst.Port(arch.Access{Operand: op, Write: true})
	if err != nil {
		return 0
	}
	bw := float64(rp.BWBits)
	if float64(wp.BWBits) < bw {
		bw = float64(wp.BWBits)
	}
	return math.Ceil(float64(elems) * bits / bw)
}

// Report renders a multi-line human-readable breakdown.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "latency: %.0f cc total (%s)\n", r.CCTotal, r.Scenario)
	fmt.Fprintf(&b, "  ideal compute : %.1f cc\n", r.CCIdeal)
	fmt.Fprintf(&b, "  spatial stall : %.1f cc\n", r.SpatialStall)
	fmt.Fprintf(&b, "  temporal stall: %.1f cc (raw %+.1f)\n", r.SSOverall, r.SSRaw)
	fmt.Fprintf(&b, "  preload       : %.0f cc\n", r.Preload)
	fmt.Fprintf(&b, "  offload       : %.0f cc\n", r.Offload)
	fmt.Fprintf(&b, "  utilization   : %.1f%% (spatial %.1f%%, temporal %.1f%%)\n",
		100*r.Utilization, 100*r.SpatialUtilization, 100*r.TemporalUtilization)
	for _, ms := range r.Memories {
		fmt.Fprintf(&b, "  mem %-8s SS %+.1f\n", ms.MemName, ms.SS)
	}
	return b.String()
}

// BottleneckPort returns the port with the largest combined stall, or nil
// when the evaluation produced no stalling port.
func (r *Result) BottleneckPort() *PortStall {
	var best *PortStall
	for _, ps := range r.Ports {
		if best == nil || ps.SSComb > best.SSComb {
			best = ps
		}
	}
	return best
}
