// Package core implements the paper's contribution: the uniform intra-layer
// analytical latency model for DNN accelerators (Section III). It follows
// the 3-step methodology:
//
//   - Step 1 (this file): divide the memory system into per-operand unit
//     memories, decouple each inter-level interface into read/write data
//     transfer links (DTLs), and compute each DTL endpoint's attributes —
//     Mem_DATA, Mem_CC, ReqBW_u (Table I), the periodic memory-updating
//     window MUW_u, and the per-link stall/slack SS_u.
//   - Step 2 (combine.go): combine attributes of DTLs sharing a physical
//     memory port (Eq. 1 and 2) and of DTLs serving the same memory.
//   - Step 3 (model.go): integrate SS_comb across memory levels into the
//     overall temporal stall SS_overall and assemble the total latency.
package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/mapping"
	"repro/internal/periodic"
	"repro/internal/workload"
)

// LinkKind distinguishes the three traffic classes across a memory
// interface.
type LinkKind uint8

// Link kinds.
const (
	Fill     LinkKind = iota // W/I tiles moving toward the array (and O psum pre-fill is PsumBack)
	Drain                    // O tiles (partial or final) moving away from the array
	PsumBack                 // partial O tiles re-fetched for further accumulation
)

// String names the link kind.
func (k LinkKind) String() string {
	switch k {
	case Fill:
		return "fill"
	case Drain:
		return "drain"
	case PsumBack:
		return "psum"
	}
	return fmt.Sprintf("LinkKind(%d)", uint8(k))
}

// Endpoint is one side (read or write) of a DTL: the access it performs at
// a physical memory port, together with all Step-1 attributes. Cycle
// quantities that depend only on the mapping (Mem_CC, X_REQ) are exact
// integers; bandwidth-dependent quantities (X_REAL, SS_u) are rationals
// carried as float64.
type Endpoint struct {
	Operand loops.Operand
	Level   int // level of the unit memory whose tile moves (lower level of the interface)
	Kind    LinkKind
	MemName string      // memory accessed at THIS endpoint
	Access  arch.Access // operand + direction at MemName
	PortIdx int         // physical port index within the memory

	MemData int64 // elements per transferred tile (Mem_DATA of the unit mem)
	MemCC   int64 // turnaround cycles (period of the unit mem's pattern)
	Z       int64 // number of active periods (transfers over the layer)
	TopRun  int64 // Table-I top-ir scaling factor (1 when fully overlappable)

	ReqBWElems  float64 // required BW, elements/cycle (Table I)
	RealBWElems float64 // actual port BW for this operand, elements/cycle
	XReq        int64   // allowed update window per period, cycles (= MemCC/TopRun)
	XReal       float64 // cycles needed per transfer at RealBW

	MUW float64 // total allowed memory updating window: XReq * Z
	SSu float64 // stall(+) / slack(-): (XReal - XReq) * Z

	Window periodic.Window // the periodic allowed-update pattern
}

// ReqBWBits returns the required bandwidth in bits/cycle for precision p.
func (e *Endpoint) ReqBWBits(prec workload.Precision) float64 {
	return e.ReqBWElems * float64(prec.Bits(e.Operand))
}

// RealBWBits returns the actual port bandwidth in bits/cycle.
func (e *Endpoint) RealBWBits(prec workload.Precision) float64 {
	return e.RealBWElems * float64(prec.Bits(e.Operand))
}

// Label renders a short human-readable endpoint id, e.g. "W@L0 fill wr GB".
func (e *Endpoint) Label() string {
	dir := "rd"
	if e.Access.Write {
		dir = "wr"
	}
	return fmt.Sprintf("%s@L%d %s %s %s", e.Operand, e.Level, e.Kind, dir, e.MemName)
}

// ModelOptions expose ablation knobs for the model's design choices (all
// false = the full model). They exist so the benchmark harness can quantify
// each choice's contribution against the reference simulator.
type ModelOptions struct {
	// FractionalXReal uses Mem_DATA/RealBW directly instead of rounding a
	// tile transfer up to whole port cycles (ablation: bus quantization).
	FractionalXReal bool
	// NoCapacityBound drops the port-capacity bound from the Step-2
	// combination and uses the paper's Eq. (2) verbatim (ablation: the
	// saturating-link correction).
	NoCapacityBound bool
	// NaiveCombine replaces Eq. (1)/(2) with a plain sum of positive
	// per-DTL stalls, cancelling them against slack (the idealization the
	// paper's no-cancellation rule exists to avoid).
	NaiveCombine bool
	// NoRigidAccumulation integrates Step 3 with the paper-verbatim
	// cross-memory max only, dropping the rigid-stall accumulation
	// (ablation: keep-out stalls of different unit memories freeze
	// compute at disjoint steps and therefore add up; see DESIGN.md).
	NoRigidAccumulation bool
}

// Problem bundles the three inputs of one model evaluation.
type Problem struct {
	Layer   *workload.Layer
	Arch    *arch.Arch
	Mapping *mapping.Mapping

	// Opts selects model ablations; nil means the full model.
	Opts *ModelOptions
}

// opts returns the effective options.
func (p *Problem) opts() ModelOptions {
	if p.Opts == nil {
		return ModelOptions{}
	}
	return *p.Opts
}

// Endpoints enumerates every DTL endpoint of the problem (Step 1). It is
// exported for consumers that need the same traffic decomposition the
// latency model uses — e.g. the access-count-based energy model. The
// returned endpoints are caller-owned (built in a throwaway Evaluator).
func Endpoints(p *Problem) ([]*Endpoint, error) {
	if p == nil || p.Layer == nil || p.Arch == nil || p.Mapping == nil {
		return nil, fmt.Errorf("core: nil problem component")
	}
	var ev Evaluator
	return ev.buildEndpoints(p)
}
