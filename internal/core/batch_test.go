package core

import (
	"math"
	"testing"

	"repro/internal/loops"
	"repro/internal/mapping"
	"repro/internal/workload"
)

// TestScoreBatchBitIdentical: ScoreBatch over a slab must equal N individual
// ScoreLatency calls bit for bit — including the NaN marker for members that
// do not evaluate — with both fresh and warm evaluators.
func TestScoreBatchBitIdentical(t *testing.T) {
	l := workload.NewConv2D("c", 1, 4, 2, 4, 4, 3, 3)
	a := microArch(4, 37, 53, 29, false)

	base := loops.Nest{
		{Dim: loops.C, Size: 2}, {Dim: loops.OX, Size: 4},
		{Dim: loops.OY, Size: 4}, {Dim: loops.FX, Size: 3}, {Dim: loops.FY, Size: 3},
	}
	var ps []*Problem
	for _, tmp := range permute(base) {
		for split := 0; split <= len(tmp); split += 2 {
			m := &mapping.Mapping{
				Spatial:  loops.Nest{{Dim: loops.K, Size: 4}},
				Temporal: tmp,
			}
			for _, op := range loops.AllOperands {
				m.Bound[op] = []int{split, len(tmp)}
			}
			ps = append(ps, &Problem{Layer: &l, Arch: a, Mapping: m})
		}
	}
	if len(ps) < 300 {
		t.Fatalf("only %d problems built", len(ps))
	}

	// Reference: one throwaway evaluator per problem — never any memo hit.
	want := make([]float64, len(ps))
	for i, p := range ps {
		var ev Evaluator
		s, err := ev.ScoreLatency(p)
		if err != nil {
			s = math.NaN()
		}
		want[i] = s
	}

	shared := NewEvaluator()
	got := make([]float64, len(ps))
	if err := shared.ScoreBatch(ps, got); err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("problem %d: batch %v != individual %v (temporal %v)",
				i, got[i], want[i], ps[i].Mapping.Temporal)
		}
	}

	// Run the same slab again on the same evaluator: every memo layer is now
	// warm, and the scores must still not move by a bit.
	again := make([]float64, len(ps))
	if err := shared.ScoreBatch(ps, again); err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if math.Float64bits(again[i]) != math.Float64bits(want[i]) {
			t.Fatalf("problem %d: warm batch %v != individual %v", i, again[i], want[i])
		}
	}

	if err := shared.ScoreBatch(ps, make([]float64, 1)); err == nil {
		t.Fatal("short output slab accepted")
	}
}

// TestCombineCacheBitIdentical: the Step-2 combine cache must intern far
// fewer port combinations than it serves while never changing a score
// (bit-identity vs fresh evaluators is asserted by
// TestScoreBatchBitIdentical and TestOpCacheBitIdentical; this test pins the
// cache actually being exercised).
func TestCombineCacheBitIdentical(t *testing.T) {
	l := workload.NewConv2D("c", 1, 4, 2, 4, 4, 3, 3)
	a := microArch(4, 37, 53, 29, false)

	base := loops.Nest{
		{Dim: loops.C, Size: 2}, {Dim: loops.OX, Size: 4},
		{Dim: loops.OY, Size: 4}, {Dim: loops.FX, Size: 3}, {Dim: loops.FY, Size: 3},
	}
	shared := NewEvaluator()
	evals := 0
	for _, tmp := range permute(base) {
		m := &mapping.Mapping{
			Spatial:  loops.Nest{{Dim: loops.K, Size: 4}},
			Temporal: tmp,
		}
		for _, op := range loops.AllOperands {
			m.Bound[op] = []int{2, len(tmp)}
		}
		p := &Problem{Layer: &l, Arch: a, Mapping: m}
		if _, err := shared.ScoreLatency(p); err == nil {
			evals++
		}
	}
	if evals < 100 {
		t.Fatalf("only %d evaluations ran", evals)
	}
	if n := len(shared.cc.m); n == 0 || n >= evals*2 {
		t.Fatalf("combine cache interned %d combinations over %d evaluations — no reuse", n, evals)
	}
	t.Logf("combine cache: %d interned combinations over %d evaluations", len(shared.cc.m), evals)
}
