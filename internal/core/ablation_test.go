package core

import (
	"math"
	"testing"

	"repro/internal/loops"
)

// saturatedProblem sets up a port where one link individually stalls while
// another fills its window exactly: the configuration where the capacity
// bound exceeds the paper-verbatim Eq. (2).
func saturatedProblem() *Problem {
	// W fill needs 2 cc/period on a 1-elem/cc port (stalls), I fill needs
	// its whole window too.
	p := microProblem(1<<20, 16, 1<<20, false)
	// GB.rd at 16 b/cc: W rd XReal = ceil(32*8/16) = 16 > XReq 8 (+16 over
	// 2 periods); I rd XReal = ceil(8*8/16) = 4, SSu = (4-8)*2 = -8.
	return p
}

func TestCapacityBoundExceedsEq2(t *testing.T) {
	p := saturatedProblem()
	full, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Opts = &ModelOptions{NoCapacityBound: true}
	eq2, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Full model on GB.rd: demand = 32 + 8 = 40, MUW = 16 -> 24.
	// Eq.2 verbatim: W's SSu (+16) + max(0, I demand 8 - MUW 16) = 16.
	var fullRd, eq2Rd float64
	for _, ps := range full.Ports {
		if ps.MemName == "GB" && ps.PortName == "rd" {
			fullRd = ps.SSComb
		}
	}
	for _, ps := range eq2.Ports {
		if ps.MemName == "GB" && ps.PortName == "rd" {
			eq2Rd = ps.SSComb
		}
	}
	if math.Abs(fullRd-24) > 1e-9 {
		t.Errorf("full GB.rd SS = %v, want 24", fullRd)
	}
	if math.Abs(eq2Rd-16) > 1e-9 {
		t.Errorf("Eq.2-only GB.rd SS = %v, want 16", eq2Rd)
	}
	if full.SSOverall < eq2.SSOverall {
		t.Error("capacity bound reduced the stall")
	}
}

func TestNaiveCombineCancelsStall(t *testing.T) {
	p := saturatedProblem()
	p.Opts = &ModelOptions{NaiveCombine: true}
	naive, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Opts = nil
	full, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	// The naive sum lets I's slack (-8) cancel W's stall (+16): GB.rd
	// becomes +8 < the full model's 24.
	if naive.SSOverall >= full.SSOverall {
		t.Errorf("naive %v not below full %v", naive.SSOverall, full.SSOverall)
	}
}

func TestFractionalXReal(t *testing.T) {
	// O drain at 24b over a 64b port: fractional 1.5 cc vs quantized 2 cc.
	p := microProblem(64, 1<<20, 1<<20, false)
	p.Opts = &ModelOptions{FractionalXReal: true}
	r, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range r.Endpoints {
		if e.Operand == loops.O && e.MemName == "Reg" {
			if math.Abs(e.XReal-1.5) > 1e-12 {
				t.Errorf("fractional XReal = %v, want 1.5", e.XReal)
			}
		}
	}
	p.Opts = nil
	r2, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range r2.Endpoints {
		if e.Operand == loops.O && e.MemName == "Reg" {
			if e.XReal != 2 {
				t.Errorf("quantized XReal = %v, want 2", e.XReal)
			}
		}
	}
}

// The ablated models must never predict MORE latency than the full model
// (both ablations only remove stall terms).
func TestAblationsAreOptimistic(t *testing.T) {
	for _, regRW := range []int64{32, 64, 128} {
		p := microProblem(regRW, 32, 24, false)
		full, err := Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []*ModelOptions{
			{NoCapacityBound: true},
			{FractionalXReal: true},
		} {
			p.Opts = opts
			abl, err := Evaluate(p)
			if err != nil {
				t.Fatal(err)
			}
			if abl.CCTotal > full.CCTotal+1e-9 {
				t.Errorf("ablation %+v increased latency: %v > %v", *opts, abl.CCTotal, full.CCTotal)
			}
			p.Opts = nil
		}
	}
}
