package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/periodic"
)

// Evaluator runs repeated model evaluations while reusing every internal
// buffer: the endpoint slab of Step 1, the port-grouping and window scratch
// of Step 2 and the integration scratch of Step 3. A zero Evaluator is
// ready to use; it is NOT safe for concurrent use — give each goroutine its
// own (the mapper's worker pool does exactly that).
//
// Results returned by an Evaluator alias its internal buffers (the
// Endpoints in particular) and are overwritten by the next call on the same
// Evaluator. Use the package-level Evaluate, which runs a throwaway
// Evaluator, when the result must outlive later evaluations.
type Evaluator struct {
	// Resolved memory chains, cached per architecture (pointer identity).
	chainArch *arch.Arch
	chains    [loops.NumOperands][]*arch.Memory

	epStore []Endpoint  // value slab backing eps; never reallocated mid-build
	eps     []*Endpoint // Step-1 output

	groups   []portGroup    // Step-2 per-physical-port grouping
	gidx     []int          // endpoint -> group index scratch
	gepStore []*Endpoint    // shared backing for the groups' endpoint lists
	mems     []memEntry     // Step-3 per-memory reduction
	rigid    []rigidEntry   // rigid-stall accumulation scratch
	busy     []portBusyCC   // preload shared-port serialization scratch
	sc       combineScratch // Eq. (1)/(2) scratch

	opc opCache      // Step-1 sub-result memo tables (opcache.go)
	cc  combineCache // Step-2 port-combination memo table (combinecache.go)
}

// NewEvaluator returns an empty evaluator (equivalent to new(Evaluator)).
func NewEvaluator() *Evaluator { return &Evaluator{} }

// portGroup is the Step-2 grouping of DTL endpoints by physical port.
type portGroup struct {
	mem  string
	port int
	n    int // member count (first grouping pass)
	eps  []*Endpoint

	ss    float64
	muw   float64
	exact bool
}

// memEntry is one memory module's reduced stall (max over its ports).
type memEntry struct {
	name string
	ss   float64
}

// rigidEntry accumulates the per-unit-memory keep-out stalls, one max per
// link kind (indexed by LinkKind).
type rigidEntry struct {
	op    loops.Operand
	level int
	kind  [3]float64
}

// portBusyCC accumulates preload hop time per shared physical port.
type portBusyCC struct {
	mem  string
	port int
	cc   float64
}

// chainMems resolves operand op's memory chain, caching the resolution per
// architecture pointer (chains are static once an Arch is normalized).
func (ev *Evaluator) chainMems(a *arch.Arch, op loops.Operand) []*arch.Memory {
	if ev.chainArch != a {
		ev.chainArch = a
		for _, o := range loops.AllOperands {
			ev.chains[o] = a.ChainMems(o)
		}
	}
	return ev.chains[op]
}

// Evaluate runs the full 3-step latency model with diagnostics, like the
// package-level Evaluate, but reuses this evaluator's scratch. See the type
// comment for the aliasing contract.
func (ev *Evaluator) Evaluate(p *Problem) (*Result, error) {
	if p.Layer == nil || p.Arch == nil || p.Mapping == nil {
		return nil, fmt.Errorf("core: nil problem component")
	}
	eps, err := ev.buildEndpoints(p)
	if err != nil {
		return nil, err
	}
	ssRaw := ev.ssRaw(p, eps)
	ss := ssRaw
	if ss < 0 {
		ss = 0
	}

	ccIdeal := float64(p.Layer.TotalMACs()) / float64(p.Arch.MACs)
	ccSpatial := p.Mapping.CCSpatial()
	pre := ev.preloadCycles(p)
	post := ev.offloadCycles(p)

	r := &Result{
		CCIdeal:      ccIdeal,
		CCSpatial:    ccSpatial,
		SpatialStall: float64(ccSpatial) - ccIdeal,
		SSOverall:    ss,
		Preload:      pre,
		Offload:      post,
		CCTotal:      float64(ccSpatial) + ss + pre + post,
		Endpoints:    eps,
		Ports:        ev.portStalls(p),
		SSRaw:        ssRaw,
	}
	r.Memories = memStalls(r.Ports)
	r.Utilization = ccIdeal / r.CCTotal
	r.SpatialUtilization = ccIdeal / float64(ccSpatial)
	r.TemporalUtilization = float64(ccSpatial) / (float64(ccSpatial) + ss)

	spatialFull := float64(ccSpatial) <= ccIdeal+0.5
	temporalFull := ss <= 0
	switch {
	case spatialFull && temporalFull:
		r.Scenario = Scenario1
	case temporalFull:
		r.Scenario = Scenario2
	case spatialFull:
		r.Scenario = Scenario3
	default:
		r.Scenario = Scenario4
	}
	return r, nil
}

// ScoreLatency computes Evaluate(p).CCTotal — the full bandwidth-aware
// model — without materializing the Result or any diagnostic structure, and
// without a single heap allocation once the evaluator's scratch is warm.
// The returned value is bit-identical to Evaluate(p).CCTotal: both paths
// run the same Step 1-3 arithmetic in the same order. This is the mapper's
// hot path.
func (ev *Evaluator) ScoreLatency(p *Problem) (float64, error) {
	eps, err := ev.buildEndpoints(p)
	if err != nil {
		return 0, err
	}
	ss := ev.ssRaw(p, eps)
	if ss < 0 {
		ss = 0
	}
	ccSpatial := p.Mapping.CCSpatial()
	pre := ev.preloadCycles(p)
	post := ev.offloadCycles(p)
	return float64(ccSpatial) + ss + pre + post, nil
}

// LowerBound returns a cheap admissible lower bound on Evaluate(p).CCTotal:
// the bandwidth-UNAWARE total CC_spatial + preload + offload. Because the
// full model only ever adds a non-negative temporal stall SS_overall on top
// of these terms, the bound can never exceed the bandwidth-aware result —
// which is what makes it a sound branch-and-bound prune for latency-
// objective mapping searches. For the bandwidth-unaware model the bound IS
// the result (bit-identical to EvaluateBWUnaware(p).CCTotal).
func (ev *Evaluator) LowerBound(p *Problem) float64 {
	pre := ev.preloadCycles(p)
	post := ev.offloadCycles(p)
	return float64(p.Mapping.CCSpatial()) + pre + post
}

// LowerBound is the convenience form of Evaluator.LowerBound.
func LowerBound(p *Problem) float64 {
	var ev Evaluator
	return ev.LowerBound(p)
}

// ssRaw runs Steps 2 and 3 on the endpoint set: group by physical port,
// combine per port (Eq. 1/2 with the capacity bound), reduce per memory
// module, integrate across modules, and apply the rigid-stall accumulation.
// Returns the pre-clamp stall/slack.
func (ev *Evaluator) ssRaw(p *Problem, eps []*Endpoint) float64 {
	opts := p.opts()
	ev.groupPorts(eps)
	for i := range ev.groups {
		g := &ev.groups[i]
		g.ss, g.muw, g.exact = ev.combineCached(g.eps, opts)
	}
	ev.reduceMems()
	ssRaw := integrateValues(ev.mems, p.Arch.Combine)
	if !opts.NoRigidAccumulation {
		if rigid := ev.rigidTotal(eps); rigid > ssRaw {
			ssRaw = rigid
		}
	}
	return ssRaw
}

// groupPorts buckets endpoints by (memory, port index) into ev.groups, then
// orders the groups canonically (memory name, then port index) so that all
// downstream float reductions happen in a deterministic order.
func (ev *Evaluator) groupPorts(eps []*Endpoint) {
	// Pass 1: discover groups and count members, remembering each
	// endpoint's group so pass 2 need not search again.
	ev.groups = ev.groups[:0]
	ev.gidx = ev.gidx[:0]
	for _, e := range eps {
		gi := -1
		for i := range ev.groups {
			if ev.groups[i].mem == e.MemName && ev.groups[i].port == e.PortIdx {
				gi = i
				break
			}
		}
		if gi < 0 {
			ev.groups = append(ev.groups, portGroup{mem: e.MemName, port: e.PortIdx})
			gi = len(ev.groups) - 1
		}
		ev.groups[gi].n++
		ev.gidx = append(ev.gidx, gi)
	}
	// Carve every group's endpoint list out of one shared slab, then fill.
	if cap(ev.gepStore) < len(eps) {
		ev.gepStore = make([]*Endpoint, len(eps))
	}
	slab := ev.gepStore[:len(eps)]
	off := 0
	for i := range ev.groups {
		g := &ev.groups[i]
		g.eps = slab[off : off : off+g.n]
		off += g.n
	}
	for k, e := range eps {
		g := &ev.groups[ev.gidx[k]]
		g.eps = append(g.eps, e)
	}
	// Insertion sort: the group count is tiny and this avoids any closure
	// or interface allocation in the hot path.
	for i := 1; i < len(ev.groups); i++ {
		for j := i; j > 0 && (ev.groups[j].mem < ev.groups[j-1].mem ||
			(ev.groups[j].mem == ev.groups[j-1].mem && ev.groups[j].port < ev.groups[j-1].port)); j-- {
			ev.groups[j], ev.groups[j-1] = ev.groups[j-1], ev.groups[j]
		}
	}
}

// reduceMems folds the sorted port groups into one entry per memory module
// (ports within a module operate concurrently: max). Groups of one module
// are adjacent after groupPorts' canonical sort.
func (ev *Evaluator) reduceMems() {
	ev.mems = ev.mems[:0]
	for i := range ev.groups {
		g := &ev.groups[i]
		if n := len(ev.mems); n > 0 && ev.mems[n-1].name == g.mem {
			if g.ss > ev.mems[n-1].ss {
				ev.mems[n-1].ss = g.ss
			}
			continue
		}
		ev.mems = append(ev.mems, memEntry{name: g.mem, ss: g.ss})
	}
}

// rigidTotal accumulates the structural stalls of keep-out-window links —
// the allocation-free, deterministically ordered equivalent of the
// map-based formulation described in DESIGN.md §5: per unit memory, take
// the max SS_u per link kind, then the max across kinds; unit memories
// accumulate by sum because their freezes occupy disjoint period
// boundaries.
func (ev *Evaluator) rigidTotal(eps []*Endpoint) float64 {
	ev.rigid = ev.rigid[:0]
	for _, e := range eps {
		if e.XReq >= e.MemCC || e.SSu <= 0 {
			continue
		}
		var ent *rigidEntry
		for i := range ev.rigid {
			if ev.rigid[i].op == e.Operand && ev.rigid[i].level == e.Level {
				ent = &ev.rigid[i]
				break
			}
		}
		if ent == nil {
			ev.rigid = append(ev.rigid, rigidEntry{op: e.Operand, level: e.Level})
			ent = &ev.rigid[len(ev.rigid)-1]
		}
		if e.SSu > ent.kind[e.Kind] {
			ent.kind[e.Kind] = e.SSu
		}
	}
	var total float64
	for i := range ev.rigid {
		unit := 0.0
		for _, v := range ev.rigid[i].kind {
			if v > unit {
				unit = v
			}
		}
		total += unit
	}
	return total
}

// integrateValues implements Step 3 over the per-memory stalls: concurrent
// memories hide each other's stalls (max); sequential memories accumulate
// (sum of the positive stalls, or the least slack when none stalls).
func integrateValues(mems []memEntry, mode arch.StallCombine) float64 {
	if len(mems) == 0 {
		return 0
	}
	if mode == arch.Sequential {
		var sum float64
		stalled := false
		for i := range mems {
			if mems[i].ss > 0 {
				sum += mems[i].ss
				stalled = true
			}
		}
		if stalled {
			return sum
		}
	}
	best := mems[0].ss
	for i := 1; i < len(mems); i++ {
		if mems[i].ss > best {
			best = mems[i].ss
		}
	}
	return best
}

// portStalls materializes the Step-2 diagnostics from the evaluator's
// groups (already combined by ssRaw). The PortStall structs are freshly
// allocated — they are returned to the caller inside the Result — but their
// Endpoints alias the evaluator's endpoint slab.
func (ev *Evaluator) portStalls(p *Problem) []*PortStall {
	prec := p.Layer.Precision
	out := make([]*PortStall, len(ev.groups))
	store := make([]PortStall, len(ev.groups))
	nEps := 0
	for i := range ev.groups {
		nEps += len(ev.groups[i].eps)
	}
	epBack := make([]*Endpoint, 0, nEps) // one backing array for all copies
	for i := range ev.groups {
		g := &ev.groups[i]
		mem := p.Arch.MemoryByName(g.mem)
		start := len(epBack)
		epBack = append(epBack, g.eps...)
		ps := &store[i]
		*ps = PortStall{
			MemName:    g.mem,
			PortIdx:    g.port,
			PortName:   mem.Ports[g.port].Name,
			Endpoints:  epBack[start:len(epBack):len(epBack)],
			RealBWBits: mem.Ports[g.port].BWBits,
			MUWComb:    g.muw,
			MUWExact:   g.exact,
			SSComb:     g.ss,
		}
		for _, e := range g.eps {
			if e.Access.Write {
				ps.ReqBWWriteBits += e.ReqBWBits(prec)
			} else {
				ps.ReqBWReadBits += e.ReqBWBits(prec)
			}
		}
		out[i] = ps
	}
	return out
}

// memStalls groups the port diagnostics by memory module, mirroring
// reduceMems (ports of one module are adjacent in the canonical order).
func memStalls(ports []*PortStall) []*MemStall {
	if len(ports) == 0 {
		return nil
	}
	n := 1
	for i := 1; i < len(ports); i++ {
		if ports[i].MemName != ports[i-1].MemName {
			n++
		}
	}
	store := make([]MemStall, 0, n)
	out := make([]*MemStall, 0, n)
	start := 0
	for i := 1; i <= len(ports); i++ {
		if i < len(ports) && ports[i].MemName == ports[start].MemName {
			continue
		}
		ss := ports[start].SSComb
		for _, ps := range ports[start+1 : i] {
			if ps.SSComb > ss {
				ss = ps.SSComb
			}
		}
		// Ports subslices the caller-owned ports list (same Result).
		store = append(store, MemStall{MemName: ports[start].MemName, Ports: ports[start:i:i], SS: ss})
		out = append(out, &store[len(store)-1])
		start = i
	}
	return out
}

// preloadOps: the operands whose first tiles ripple down during the
// pre-loading phase (outputs have nothing to load).
var preloadOps = [2]loops.Operand{loops.W, loops.I}

// preloadCycles estimates the data pre-loading phase (Fig. 1(a)): the first
// W and I tiles ripple down each operand's chain level by level; each hop
// moves the level's tile at the slower of the two port bandwidths. Operands
// load concurrently (the phase takes the slowest operand), EXCEPT where
// their hops read the same physical port — one port moves one tile at a
// time, so shared-port hop times serialize (the reference simulator's
// behaviour).
func (ev *Evaluator) preloadCycles(p *Problem) float64 {
	ev.busy = ev.busy[:0]
	worst := 0.0
	for _, op := range preloadOps {
		total := 0.0
		chain := ev.chainMems(p.Arch, op)
		for l := 0; l+1 < len(chain); l++ {
			elems := p.Mapping.MemData(op, l, p.Layer.Strides)
			cc := hopCycles(p, chain[l+1], chain[l], op, elems)
			total += cc
			if _, idx, err := chain[l+1].Port(arch.Access{Operand: op, Write: false}); err == nil {
				found := false
				for i := range ev.busy {
					if ev.busy[i].mem == chain[l+1].Name && ev.busy[i].port == idx {
						ev.busy[i].cc += cc
						found = true
						break
					}
				}
				if !found {
					ev.busy = append(ev.busy, portBusyCC{mem: chain[l+1].Name, port: idx, cc: cc})
				}
			}
		}
		if total > worst {
			worst = total
		}
	}
	for i := range ev.busy {
		if ev.busy[i].cc > worst {
			worst = ev.busy[i].cc
		}
	}
	return worst
}

// offloadCycles estimates the data offloading phase: the final O tile at
// each level drains up the chain.
func (ev *Evaluator) offloadCycles(p *Problem) float64 {
	total := 0.0
	chain := ev.chainMems(p.Arch, loops.O)
	for l := 0; l+1 < len(chain); l++ {
		elems := p.Mapping.MemData(loops.O, l, p.Layer.Strides)
		total += hopCycles(p, chain[l], chain[l+1], loops.O, elems)
	}
	return total
}

// buildEndpoints enumerates every DTL endpoint of the problem (Step 1) into
// the evaluator's endpoint slab. The slab is sized up front so that taking
// stable pointers into it is safe.
//
// For W and I, each interface between chain level l+1 and l carries a fill
// link (read at l+1, write at l). For O, each interface carries a drain
// link (read at l, write at l+1) and, when reduction loops sit above level
// l, a psum read-back link (read at l+1, write at l).
//
// Table I application: the keep-out scaling (TopRun) is decided by the
// unit memory that HOLDS the moving tile — level l — based on its
// double-buffering and the relevance of the top temporal loop of its level
// nest. Both endpoints of a link share the same allowed window; only their
// RealBW (and hence X_REAL and SS_u) differ.
func (ev *Evaluator) buildEndpoints(p *Problem) ([]*Endpoint, error) {
	bound := 0
	for _, op := range loops.AllOperands {
		levels := len(p.Arch.Chain[op])
		if levels < 2 {
			continue
		}
		per := 2 // fill: read + write
		if op == loops.O {
			per = 4 // drain + possible psum read-back
		}
		bound += (levels - 1) * per
	}
	if cap(ev.epStore) < bound {
		ev.epStore = make([]Endpoint, 0, bound)
	}
	if cap(ev.eps) < bound {
		ev.eps = make([]*Endpoint, 0, bound)
	}
	ev.epStore = ev.epStore[:0]
	ev.eps = ev.eps[:0]

	prec := p.Layer.Precision
	ev.opc.ensure(p)

	for _, op := range loops.AllOperands {
		chain := ev.chainMems(p.Arch, op)
		if len(chain) < 2 {
			continue
		}
		quants := ev.opc.quants(p, op, chain)
		for l := 0; l+1 < len(chain); l++ {
			lower, upper := chain[l], chain[l+1]
			q := &quants[l]
			memData, memCC, z, topRun := q.memData, q.memCC, q.z, q.topRun
			if q.bad {
				return nil, fmt.Errorf("core: %s level %d: top reuse run %d does not divide Mem_CC %d", op, l, topRun, memCC)
			}
			xReq := memCC / topRun
			win := periodic.Tail(memCC, xReq, z)

			mk := func(mem *arch.Memory, write bool, kind LinkKind, zz int64) (*Endpoint, error) {
				acc := arch.Access{Operand: op, Write: write}
				port, idx, err := mem.Port(acc)
				if err != nil {
					return nil, err
				}
				bits := int64(prec.Bits(op))
				realBW := float64(port.BWBits) / float64(bits)
				w := win
				w.Count = zz
				// A port moves whole bus words: one tile transfer occupies
				// an integer number of cycles (matching real buses and the
				// reference simulator).
				xReal := float64(loops.CeilDiv(memData*bits, port.BWBits))
				if p.opts().FractionalXReal {
					xReal = float64(memData*bits) / float64(port.BWBits)
				}
				ev.epStore = append(ev.epStore, Endpoint{
					Operand: op, Level: l, Kind: kind,
					MemName: mem.Name, Access: acc, PortIdx: idx,
					MemData: memData, MemCC: memCC, Z: zz, TopRun: topRun,
					ReqBWElems:  float64(memData) * float64(topRun) / float64(memCC),
					RealBWElems: realBW,
					XReq:        xReq,
					XReal:       xReal,
					Window:      w,
				})
				ep := &ev.epStore[len(ev.epStore)-1]
				ep.MUW = float64(ep.XReq) * float64(zz)
				ep.SSu = (ep.XReal - float64(ep.XReq)) * float64(zz)
				ev.eps = append(ev.eps, ep)
				return ep, nil
			}

			if op == loops.O {
				tr := q.traffic
				// Drain: read at the lower memory, write at the upper.
				if _, err := mk(lower, false, Drain, tr.WriteUps); err != nil {
					return nil, err
				}
				if _, err := mk(upper, true, Drain, tr.WriteUps); err != nil {
					return nil, err
				}
				if tr.ReadBacks > 0 {
					if _, err := mk(upper, false, PsumBack, tr.ReadBacks); err != nil {
						return nil, err
					}
					if _, err := mk(lower, true, PsumBack, tr.ReadBacks); err != nil {
						return nil, err
					}
				}
				continue
			}

			// W / I fill: read at the upper memory, write at the lower.
			if _, err := mk(upper, false, Fill, z); err != nil {
				return nil, err
			}
			if _, err := mk(lower, true, Fill, z); err != nil {
				return nil, err
			}
		}
	}
	return ev.eps, nil
}
