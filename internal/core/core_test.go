package core

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/mapping"
	"repro/internal/workload"
)

// microArch builds a 2-level architecture: one register file shared by all
// operands (single RW port) over a global buffer with separate R/W ports.
// Bandwidths in bits/cycle are parameters so tests can steer stalls.
func microArch(macs int64, regRW, gbRd, gbWr int64, regDB bool) *arch.Arch {
	a := &arch.Arch{
		Name: "micro",
		MACs: macs,
		Memories: []*arch.Memory{
			{
				Name:           "Reg",
				CapacityBits:   1 << 20,
				DoubleBuffered: regDB,
				Serves:         []loops.Operand{loops.W, loops.I, loops.O},
				Ports:          []arch.Port{{Name: "rw", Dir: arch.ReadWrite, BWBits: regRW}},
			},
			{
				Name:         "GB",
				CapacityBits: 1 << 30,
				Serves:       []loops.Operand{loops.W, loops.I, loops.O},
				Ports: []arch.Port{
					{Name: "rd", Dir: arch.Read, BWBits: gbRd},
					{Name: "wr", Dir: arch.Write, BWBits: gbWr},
				},
			},
		},
	}
	for _, op := range loops.AllOperands {
		a.Chain[op] = []string{"Reg", "GB"}
	}
	if err := a.Normalize(); err != nil {
		panic(err)
	}
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return a
}

// microProblem is the hand-computed example documented in the test bodies:
// MatMul B=2 K=4 C=8, spatial K4, temporal [C 8 | B 2], all operands
// splitting Reg=[C 8], GB=[B 2].
func microProblem(regRW, gbRd, gbWr int64, regDB bool) *Problem {
	l := workload.NewMatMul("µ", 2, 4, 8)
	a := microArch(4, regRW, gbRd, gbWr, regDB)
	m := &mapping.Mapping{
		Spatial:  loops.Nest{{Dim: loops.K, Size: 4}},
		Temporal: loops.Nest{{Dim: loops.C, Size: 8}, {Dim: loops.B, Size: 2}},
	}
	for _, op := range loops.AllOperands {
		m.Bound[op] = []int{1, 2}
	}
	return &Problem{Layer: &l, Arch: a, Mapping: m}
}

func mustEval(t *testing.T, p *Problem) *Result {
	t.Helper()
	if err := p.Mapping.Validate(p.Layer, p.Arch); err != nil {
		t.Fatalf("mapping invalid: %v", err)
	}
	r, err := Evaluate(p)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	return r
}

// Hand-computed reference (see design notes):
//
//	W@Reg: MemData 32, MemCC 8, Z 2, TopRun 1 (C on top is r for W)
//	I@Reg: MemData 8,  MemCC 8, Z 2, TopRun 1
//	O@Reg: MemData 4,  MemCC 8, Z 2, TopRun 8 when Reg is single-buffered
//	       (C on top is ir for O), no psum readbacks (B above is r for O).
func TestStep1Attributes(t *testing.T) {
	p := microProblem(64, 32, 24, false)
	r := mustEval(t, p)

	find := func(op loops.Operand, kind LinkKind, mem string) *Endpoint {
		for _, e := range r.Endpoints {
			if e.Operand == op && e.Kind == kind && e.MemName == mem {
				return e
			}
		}
		t.Fatalf("endpoint %s %s @%s not found", op, kind, mem)
		return nil
	}

	w := find(loops.W, Fill, "Reg")
	if w.MemData != 32 || w.MemCC != 8 || w.Z != 2 || w.TopRun != 1 || w.XReq != 8 {
		t.Errorf("W fill wrong: %+v", w)
	}
	// ReqBW = 32/8 = 4 elems/cc = 32 bit/cc at 8b.
	if w.ReqBWElems != 4 || w.ReqBWBits(p.Layer.Precision) != 32 {
		t.Errorf("W ReqBW = %v elems", w.ReqBWElems)
	}
	// Reg RW 64b -> 8 elems/cc -> XReal 4 -> SSu (4-8)*2 = -8.
	if w.XReal != 4 || w.SSu != -8 {
		t.Errorf("W XReal/SSu = %v/%v", w.XReal, w.SSu)
	}

	i := find(loops.I, Fill, "Reg")
	if i.MemData != 8 || i.SSu != -14 {
		t.Errorf("I fill wrong: MemData %d SSu %v", i.MemData, i.SSu)
	}

	o := find(loops.O, Drain, "Reg")
	if o.MemData != 4 || o.TopRun != 8 || o.XReq != 1 {
		t.Errorf("O drain wrong: %+v", o)
	}
	// O at 24b on a 64b port: 4*24 = 96 bits take ceil(96/64) = 2 cycles
	// (ports move whole bus words), so SSu = (2-1)*2 = 2.
	if math.Abs(o.XReal-2.0) > 1e-12 || math.Abs(o.SSu-2.0) > 1e-12 {
		t.Errorf("O XReal/SSu = %v/%v", o.XReal, o.SSu)
	}
	// No psum readbacks: B above O's reg level is relevant.
	for _, e := range r.Endpoints {
		if e.Kind == PsumBack {
			t.Errorf("unexpected psum endpoint %s", e.Label())
		}
	}
}

func TestStep2PortCombination(t *testing.T) {
	p := microProblem(64, 32, 24, false)
	r := mustEval(t, p)

	byPort := map[string]*PortStall{}
	for _, ps := range r.Ports {
		byPort[ps.MemName+"."+ps.PortName] = ps
	}

	// Reg.rw: O drain rd +2 stall; W wr and I wr have combined slack
	// (Eq. 2 keeps the positive stall uncancelled, and the capacity bound
	// 14-16 stays below it).
	reg := byPort["Reg.rw"]
	if reg == nil {
		t.Fatal("Reg.rw port missing")
	}
	if math.Abs(reg.SSComb-2.0) > 1e-9 {
		t.Errorf("Reg.rw SSComb = %v, want 2", reg.SSComb)
	}

	// GB.rd: W rd SSu=0, I rd SSu=-12, MUW_comb=16; Eq.1: 16+4-16 = +4.
	gbr := byPort["GB.rd"]
	if math.Abs(gbr.SSComb-4.0) > 1e-9 {
		t.Errorf("GB.rd SSComb = %v, want 4", gbr.SSComb)
	}
	// GB.wr: O drain wr: XReal = 4*24/24 = 4, XReq 1, Z 2 -> +6.
	gbw := byPort["GB.wr"]
	if math.Abs(gbw.SSComb-6.0) > 1e-9 {
		t.Errorf("GB.wr SSComb = %v, want 6", gbw.SSComb)
	}
	if !gbr.MUWExact || !gbw.MUWExact {
		t.Error("expected exact MUW computation")
	}
	// ReqBW bookkeeping on GB.rd: W 32 bit/cc + I 8 bit/cc.
	if math.Abs(gbr.ReqBWReadBits-40) > 1e-9 || gbr.ReqBWWriteBits != 0 {
		t.Errorf("GB.rd ReqBW rd/wr = %v/%v", gbr.ReqBWReadBits, gbr.ReqBWWriteBits)
	}
}

func TestStep3IntegrationAndTotal(t *testing.T) {
	p := microProblem(64, 32, 24, false)
	r := mustEval(t, p)

	// Memory combine: Reg max(1)=1; GB max(4,6)=6. Concurrent -> 6.
	if math.Abs(r.SSOverall-6.0) > 1e-9 {
		t.Errorf("SSOverall = %v, want 6", r.SSOverall)
	}
	if r.CCIdeal != 16 || r.CCSpatial != 16 || r.SpatialStall != 0 {
		t.Errorf("ideal/spatial = %v/%v", r.CCIdeal, r.CCSpatial)
	}
	// Preload: W 32*8/32 = 8 cc and I 8*8/32 = 2 cc serialize on the
	// shared GB.rd port -> 10 (the simulator measures exactly 10).
	// Offload: 4*24/24 = 4.
	if r.Preload != 10 || r.Offload != 4 {
		t.Errorf("preload/offload = %v/%v", r.Preload, r.Offload)
	}
	if math.Abs(r.CCTotal-36) > 1e-9 {
		t.Errorf("CCTotal = %v, want 36", r.CCTotal)
	}
	if r.Scenario != Scenario3 {
		t.Errorf("scenario = %v, want 3", r.Scenario)
	}
	if math.Abs(r.Utilization-16.0/36.0) > 1e-9 {
		t.Errorf("utilization = %v", r.Utilization)
	}

	// Sequential integration: per-memory max first (Reg 2, GB 6), then
	// sum -> 8.
	p.Arch.Combine = arch.Sequential
	r2 := mustEval(t, p)
	if math.Abs(r2.SSOverall-8.0) > 1e-9 {
		t.Errorf("sequential SSOverall = %v, want 8", r2.SSOverall)
	}
}

// TestFig3SixCases reproduces the six timeline cases of paper Fig. 3 via
// the single W fill link at the Reg level, steering X_REAL against X_REQ.
func TestFig3SixCases(t *testing.T) {
	// Helper: evaluate and return the W fill write endpoint at Reg.
	wAtReg := func(regRW int64, regDB bool, temporal loops.Nest, bounds [3][]int) *Endpoint {
		l := workload.NewMatMul("f3", 2, 4, 8)
		a := microArch(4, regRW, 1<<20, 1<<20, regDB)
		m := &mapping.Mapping{
			Spatial:  loops.Nest{{Dim: loops.K, Size: 4}},
			Temporal: temporal,
		}
		m.Bound[loops.W] = bounds[0]
		m.Bound[loops.I] = bounds[1]
		m.Bound[loops.O] = bounds[2]
		p := &Problem{Layer: &l, Arch: a, Mapping: m}
		r, err := Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range r.Endpoints {
			if e.Operand == loops.W && e.Kind == Fill && e.MemName == "Reg" {
				return e
			}
		}
		t.Fatal("W endpoint missing")
		return nil
	}

	// Cases (a)-(c): double-buffered (or r-top): X_REQ = Mem_CC = 8.
	rTop := loops.Nest{{Dim: loops.C, Size: 8}, {Dim: loops.B, Size: 2}}
	bounds := [3][]int{{1, 2}, {1, 2}, {1, 2}}
	// (a) X_REAL = X_REQ -> SS_u = 0. W tile 32 elems * 8b / 32 b/cc = 8 cc.
	if e := wAtReg(32, true, rTop, bounds); e.SSu != 0 || e.XReq != 8 {
		t.Errorf("(a) SSu=%v XReq=%d", e.SSu, e.XReq)
	}
	// (b) X_REAL < X_REQ -> slack.
	if e := wAtReg(64, true, rTop, bounds); e.SSu >= 0 {
		t.Errorf("(b) SSu=%v, want negative", e.SSu)
	}
	// (c) X_REAL > X_REQ -> stall.
	if e := wAtReg(16, true, rTop, bounds); e.SSu <= 0 {
		t.Errorf("(c) SSu=%v, want positive", e.SSu)
	}

	// Cases (d)-(f): single-buffered with ir loop on top: keep-out zone.
	// Temporal [C 8 | B 2] with W's reg level = [C 8 | B 2]... instead use
	// temporal [B 2 | C 8] with reg level holding both loops: top loop C is
	// r for W; so use [C 8 | B 2] and give W's reg level both loops so the
	// top loop is B (ir for W): TopRun = 2, X_REQ = Mem_CC/2 = 8.
	irTop := loops.Nest{{Dim: loops.C, Size: 8}, {Dim: loops.B, Size: 2}}
	irBounds := [3][]int{{2, 2}, {1, 2}, {1, 2}}
	// Now W's reg holds [C 8 | B 2]: MemData = 32, MemCC = 16, Z = 1,
	// TopRun = 2, X_REQ = 8.
	// (d) X_REAL = 8: 32 elems*8b/32 = 8 -> SS_u = 0.
	if e := wAtReg(32, false, irTop, irBounds); e.SSu != 0 || e.XReq != 8 || e.TopRun != 2 {
		t.Errorf("(d) SSu=%v XReq=%d TopRun=%d", e.SSu, e.XReq, e.TopRun)
	}
	// (e) faster port -> slack.
	if e := wAtReg(64, false, irTop, irBounds); e.SSu >= 0 {
		t.Errorf("(e) SSu=%v, want negative", e.SSu)
	}
	// (f) slower port -> stall.
	if e := wAtReg(16, false, irTop, irBounds); e.SSu <= 0 {
		t.Errorf("(f) SSu=%v, want positive", e.SSu)
	}
	// The keep-out window is a Tail window: start = period - active.
	e := wAtReg(32, false, irTop, irBounds)
	if e.Window.Start != e.Window.Period-e.Window.Active {
		t.Errorf("keep-out window not tail-aligned: %+v", e.Window)
	}
	// Double-buffering removes the keep-out (Table I): TopRun = 1.
	if e := wAtReg(32, true, irTop, irBounds); e.TopRun != 1 || e.XReq != 16 {
		t.Errorf("DB TopRun=%d XReq=%d", e.TopRun, e.XReq)
	}
}

// TestReqBWTableI checks the three Table-I columns directly.
func TestReqBWTableI(t *testing.T) {
	l := workload.NewMatMul("t1", 2, 4, 8)
	build := func(regDB bool, wBounds []int) *Endpoint {
		a := microArch(4, 64, 1<<20, 1<<20, regDB)
		m := &mapping.Mapping{
			Spatial:  loops.Nest{{Dim: loops.K, Size: 4}},
			Temporal: loops.Nest{{Dim: loops.C, Size: 8}, {Dim: loops.B, Size: 2}},
		}
		m.Bound[loops.W] = wBounds
		m.Bound[loops.I] = []int{1, 2}
		m.Bound[loops.O] = []int{1, 2}
		p := &Problem{Layer: &l, Arch: a, Mapping: m}
		r, err := Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range r.Endpoints {
			if e.Operand == loops.W && e.MemName == "Reg" {
				return e
			}
		}
		t.Fatal("no W endpoint")
		return nil
	}

	// DB memory, any top loop: ReqBW = BW0 = MemData/MemCC = 32/16 = 2.
	db := build(true, []int{2, 2})
	if db.ReqBWElems != 2 {
		t.Errorf("DB ReqBW = %v, want BW0 = 2", db.ReqBWElems)
	}
	// Non-DB, r loop on top ([C 8] at reg): BW0 = 32/8 = 4.
	rtop := build(false, []int{1, 2})
	if rtop.ReqBWElems != 4 || rtop.TopRun != 1 {
		t.Errorf("non-DB r-top ReqBW = %v", rtop.ReqBWElems)
	}
	// Non-DB, ir loop (B 2) on top: BW0 * 2 = 32/16 * 2 = 4.
	irtop := build(false, []int{2, 2})
	if irtop.ReqBWElems != 4 || irtop.TopRun != 2 {
		t.Errorf("non-DB ir-top ReqBW = %v (TopRun %d)", irtop.ReqBWElems, irtop.TopRun)
	}
}

// TestEq2NoCancellation: a positive-stall DTL is never cancelled by another
// DTL's slack (Section III-C-2).
func TestEq2NoCancellation(t *testing.T) {
	// GB.wr carries only O drain (stall +6 at 24 b/cc); widen Reg so that
	// other links have huge slack; SSOverall must still be >= the GB.wr
	// stall under concurrent integration of independent ports.
	p := microProblem(1<<20, 1<<20, 24, false)
	r := mustEval(t, p)
	if r.SSOverall < 6-1e-9 {
		t.Errorf("slack cancelled stall: SSOverall = %v", r.SSOverall)
	}
}

// TestFig4WorkedExample mirrors the paper's Fig. 4: a local buffer shared
// by W/I/O with a single read port feeding non-double-buffered registers.
// All numbers are hand-derived in the comments.
func TestFig4WorkedExample(t *testing.T) {
	// Arch: Regs (per operand, non-DB) <- LB (shared W/I/O, rd+wr ports)
	// <- GB. Precision all-8b to keep arithmetic simple.
	l := workload.NewMatMul("fig4", 4, 2, 4)
	l.Precision = workload.Precision{W: 8, I: 8, O: 8}
	a := &arch.Arch{
		Name: "fig4",
		MACs: 2,
		Memories: []*arch.Memory{
			{Name: "W-Reg", CapacityBits: 1 << 12, Serves: []loops.Operand{loops.W},
				Ports: []arch.Port{{Name: "rw", Dir: arch.ReadWrite, BWBits: 1 << 16}}},
			{Name: "I-Reg", CapacityBits: 1 << 12, Serves: []loops.Operand{loops.I},
				Ports: []arch.Port{{Name: "rw", Dir: arch.ReadWrite, BWBits: 1 << 16}}},
			{Name: "O-Reg", CapacityBits: 1 << 12, Serves: []loops.Operand{loops.O},
				Ports: []arch.Port{{Name: "rw", Dir: arch.ReadWrite, BWBits: 1 << 16}}},
			{Name: "LB", CapacityBits: 1 << 16, Serves: []loops.Operand{loops.W, loops.I, loops.O},
				Ports: []arch.Port{
					{Name: "rd", Dir: arch.Read, BWBits: 16},
					{Name: "wr", Dir: arch.Write, BWBits: 1 << 16},
				}},
			{Name: "GB", CapacityBits: 1 << 24, Serves: []loops.Operand{loops.W, loops.I, loops.O},
				Ports: []arch.Port{
					{Name: "rd", Dir: arch.Read, BWBits: 1 << 16},
					{Name: "wr", Dir: arch.Write, BWBits: 1 << 16},
				}},
		},
	}
	a.Chain[loops.W] = []string{"W-Reg", "LB", "GB"}
	a.Chain[loops.I] = []string{"I-Reg", "LB", "GB"}
	a.Chain[loops.O] = []string{"O-Reg", "LB", "GB"}
	if err := a.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}

	m := &mapping.Mapping{
		Spatial:  loops.Nest{{Dim: loops.K, Size: 2}},
		Temporal: loops.Nest{{Dim: loops.C, Size: 2}, {Dim: loops.B, Size: 4}, {Dim: loops.C, Size: 2}},
	}
	m.Bound[loops.W] = []int{1, 2, 3}
	m.Bound[loops.I] = []int{1, 2, 3}
	m.Bound[loops.O] = []int{1, 2, 3}
	p := &Problem{Layer: &l, Arch: a, Mapping: m}
	r := mustEval(t, p)

	// LB.rd carries four DTL endpoints (hand-derived, LB rd = 16 b/cc =
	// 2 elems/cc at 8b):
	//   W fill rd:   MemData 4, MemCC 2, Z 8, Full window, XReal 2, SSu 0
	//   I fill rd:   MemData 2, MemCC 2, Z 8, Full window, XReal 1, SSu -8
	//   O psum rd:   MemData 2, MemCC 2, Z 4, Tail(2,1),   XReal 1, SSu 0
	//   O drainL1 rd:MemData 8, MemCC 8, Z 2, Full window, XReal 4, SSu -8
	// MUW_comb = 16 (full span); Eq.1 with the psum's zero treated as
	// non-positive: Σ XReal*Z = 16+8+4+8 = 36 -> SS_comb = 20.
	var lbRd *PortStall
	for _, ps := range r.Ports {
		if ps.MemName == "LB" && ps.PortName == "rd" {
			lbRd = ps
		}
	}
	if lbRd == nil {
		t.Fatal("LB.rd port missing")
	}
	if len(lbRd.Endpoints) != 4 {
		for _, e := range lbRd.Endpoints {
			t.Logf("endpoint: %s (Z=%d, XReal=%v, SSu=%v)", e.Label(), e.Z, e.XReal, e.SSu)
		}
		t.Fatalf("LB.rd has %d endpoints, want 4", len(lbRd.Endpoints))
	}
	if math.Abs(lbRd.MUWComb-16) > 1e-9 {
		t.Errorf("LB.rd MUW_comb = %v, want 16", lbRd.MUWComb)
	}
	if math.Abs(lbRd.SSComb-20) > 1e-9 {
		t.Errorf("LB.rd SS_comb = %v, want 20", lbRd.SSComb)
	}
	if math.Abs(r.SSOverall-20) > 1e-9 {
		t.Errorf("SSOverall = %v, want 20 (LB.rd dominates)", r.SSOverall)
	}
}

func TestScenarios(t *testing.T) {
	// Scenario 1: full spatial + generous BW everywhere.
	p := microProblem(1<<20, 1<<20, 1<<20, true)
	r := mustEval(t, p)
	if r.Scenario != Scenario1 || r.SSOverall != 0 {
		t.Errorf("want scenario 1, got %v (SS %v)", r.Scenario, r.SSOverall)
	}

	// Scenario 2: spatial under-mapping (K2 of 4 MACs), generous BW.
	p2 := microProblem(1<<20, 1<<20, 1<<20, true)
	p2.Mapping.Spatial = loops.Nest{{Dim: loops.K, Size: 2}}
	p2.Mapping.Temporal = loops.Nest{{Dim: loops.C, Size: 8}, {Dim: loops.B, Size: 2}, {Dim: loops.K, Size: 2}}
	for _, op := range loops.AllOperands {
		p2.Mapping.Bound[op] = []int{1, 3}
	}
	r2 := mustEval(t, p2)
	if r2.Scenario != Scenario2 {
		t.Errorf("want scenario 2, got %v", r2.Scenario)
	}
	if r2.CCSpatial != 32 || r2.CCIdeal != 16 || r2.SpatialStall != 16 {
		t.Errorf("scenario 2 numbers: %v/%v/%v", r2.CCSpatial, r2.CCIdeal, r2.SpatialStall)
	}

	// Scenario 3: full spatial, starved BW (the base micro problem).
	r3 := mustEval(t, microProblem(64, 32, 24, false))
	if r3.Scenario != Scenario3 {
		t.Errorf("want scenario 3, got %v", r3.Scenario)
	}

	// Scenario 4: both.
	p4 := microProblem(64, 32, 24, false)
	p4.Mapping.Spatial = loops.Nest{{Dim: loops.K, Size: 2}}
	p4.Mapping.Temporal = loops.Nest{{Dim: loops.C, Size: 8}, {Dim: loops.B, Size: 2}, {Dim: loops.K, Size: 2}}
	for _, op := range loops.AllOperands {
		p4.Mapping.Bound[op] = []int{1, 3}
	}
	r4 := mustEval(t, p4)
	if r4.Scenario != Scenario4 {
		t.Errorf("want scenario 4, got %v", r4.Scenario)
	}
}

func TestBWUnawareBaseline(t *testing.T) {
	p := microProblem(64, 32, 24, false)
	aware := mustEval(t, p)
	unaware, err := EvaluateBWUnaware(p)
	if err != nil {
		t.Fatal(err)
	}
	if unaware.SSOverall != 0 {
		t.Error("baseline kept temporal stall")
	}
	if unaware.CCTotal >= aware.CCTotal {
		t.Errorf("baseline %v >= aware %v", unaware.CCTotal, aware.CCTotal)
	}
	if unaware.CCTotal != float64(aware.CCSpatial)+aware.Preload+aware.Offload {
		t.Errorf("baseline total = %v", unaware.CCTotal)
	}
}

func TestPsumReadbacks(t *testing.T) {
	// Put a C (reduction) loop ABOVE O's reg level: O bound [0, 2] on
	// temporal [C 8 | B 2] means O's reg holds nothing and GB holds all —
	// 2-level chain; instead split so reg holds [C 8] for W/I but O holds
	// nothing: O readbacks = Z - distinct = 16-? Use bound [0,2]:
	// Z(O, L0) = 16, distinct (r loops above: B2) = 2 -> 14 readbacks.
	p := microProblem(1<<20, 1<<20, 1<<20, false)
	p.Mapping.Bound[loops.O] = []int{0, 2}
	r := mustEval(t, p)
	var psum *Endpoint
	for _, e := range r.Endpoints {
		if e.Kind == PsumBack && e.MemName == "GB" {
			psum = e
		}
	}
	if psum == nil {
		t.Fatal("no psum endpoint")
	}
	if psum.Z != 14 {
		t.Errorf("psum Z = %d, want 14", psum.Z)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(&Problem{}); err == nil {
		t.Error("nil components evaluated")
	}
}

func TestReportAndBottleneck(t *testing.T) {
	p := microProblem(64, 32, 24, false)
	r := mustEval(t, p)
	rep := r.Report()
	if len(rep) == 0 {
		t.Error("empty report")
	}
	bp := r.BottleneckPort()
	if bp == nil || bp.MemName != "GB" || bp.PortName != "wr" {
		t.Errorf("bottleneck = %+v", bp)
	}
	if got := describePort(bp, p.Layer.Precision); len(got) == 0 {
		t.Error("describePort empty")
	}
}

func TestLinkKindString(t *testing.T) {
	if Fill.String() != "fill" || Drain.String() != "drain" || PsumBack.String() != "psum" {
		t.Error("LinkKind strings wrong")
	}
	if LinkKind(9).String() != "LinkKind(9)" {
		t.Error("unknown LinkKind string wrong")
	}
	if Scenario1.String() != "scenario 1" || Scenario(9).String() != "Scenario(9)" {
		t.Error("Scenario strings wrong")
	}
}
