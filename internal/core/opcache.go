package core

import (
	"bytes"

	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/mapping"
	"repro/internal/workload"
)

// Step-1 sub-result cache: an operand's DTL quantities at a memory level —
// Mem_DATA, Mem_CC, Z, the Table-I top reuse run and the psum traffic split
// — depend only on that operand's per-level loop content, NOT on how the
// loops are ordered within a level (every quantity is a product over the
// level's dims, except the top reuse run, which the cache key carries
// explicitly). Sibling nests in a mapping search permute loops heavily while
// reproducing the same per-level content, so a search-lived cache keyed by
// the canonical per-level encoding skips the Mem_DATA tile resolution (the
// sliding-window arithmetic of TileElems) and the traffic split for the
// vast majority of candidates.
//
// The cache is scoped to one (layer, arch, spatial unrolling) triple —
// exactly one mapping search — and resets itself when any of the three
// changes. Like Evaluator.chainMems it keys on pointer identity for the
// layer and arch: holding the pointer keeps the object alive, so identity
// is sound unless a caller mutates a Layer/Arch mid-search (unsupported
// throughout this repository).
//
// Cached values are exact integers, so a cache hit is bit-identical to a
// recomputation by construction (asserted in TestOpCacheBitIdentical).

// levelQuant is one interface level's cached Step-1 quantities.
type levelQuant struct {
	memData int64 // Mem_DATA: resident elements at the level
	memCC   int64 // Mem_CC: turnaround cycles
	z       int64 // Z: turnarounds over the whole layer
	topRun  int64 // effective Table-I top reuse run (1 when double-buffered)
	traffic mapping.OutputTraffic
	bad     bool // topRun does not divide memCC (model error)
}

// opCache holds the per-operand memo tables of one Evaluator. Not safe for
// concurrent use, like the Evaluator that owns it.
type opCache struct {
	layer   *workload.Layer
	arch    *arch.Arch
	spatial [loops.NumDims]int64

	m      [loops.NumOperands]map[string][]levelQuant
	keyBuf []byte
	qBuf   []levelQuant // scratch for building entries before interning

	// lastKey/lastQ short-circuit the map probe when consecutive
	// evaluations repeat an operand's per-level content byte for byte —
	// the common case for sibling nests in a search batch, which permute
	// one operand's levels while the others' content stays fixed (the
	// Step-1 "shared prefix" ScoreBatch exploits).
	lastKey [loops.NumOperands][]byte
	lastQ   [loops.NumOperands][]levelQuant
}

// opCacheMaxEntries bounds each operand's table; a full table is dropped
// whole (searches revisit recent shapes, so coarse eviction is fine).
const opCacheMaxEntries = 1 << 13

// ensure re-scopes the cache to problem p, dropping all entries when the
// layer, arch or spatial unrolling changed since the last evaluation.
func (c *opCache) ensure(p *Problem) {
	sp := p.Mapping.Spatial.DimProduct()
	if c.layer == p.Layer && c.arch == p.Arch && c.spatial == sp {
		return
	}
	c.layer, c.arch, c.spatial = p.Layer, p.Arch, sp
	for op := range c.m {
		c.m[op] = nil
		c.lastKey[op] = c.lastKey[op][:0]
		c.lastQ[op] = nil
	}
}

// quants returns the cached Step-1 quantities of operand op for the current
// mapping, computing and interning them on a miss. The returned slice has
// one entry per interface level (len(chain)-1) and is owned by the cache:
// callers must treat it as read-only, and it is only valid until the next
// quants call (a table drop may release it).
func (c *opCache) quants(p *Problem, op loops.Operand, chain []*arch.Memory) []levelQuant {
	m := p.Mapping
	levels := len(chain)

	// Canonical key: the operand's Step-1 content key (signature.go) — the
	// same encoding the mapper's model-equivalence signature concatenates
	// across operands.
	key := appendOperandKey(c.keyBuf[:0], m, op, chain)
	c.keyBuf = key

	if q := c.lastQ[op]; q != nil && bytes.Equal(key, c.lastKey[op]) {
		return q
	}
	if q, ok := c.m[op][string(key)]; ok {
		c.lastKey[op] = append(c.lastKey[op][:0], key...)
		c.lastQ[op] = q
		return q
	}

	st := p.Layer.Strides
	if cap(c.qBuf) < levels-1 {
		c.qBuf = make([]levelQuant, levels-1)
	}
	q := c.qBuf[:levels-1]
	for l := 0; l+1 < levels; l++ {
		lq := &q[l]
		lq.memData = m.MemData(op, l, st)
		lq.memCC = m.MemCC(op, l)
		lq.z = m.Periods(op, l)
		lq.topRun = 1
		if !chain[l].DoubleBuffered {
			lq.topRun = m.TopReuseRun(op, l)
		}
		lq.bad = lq.topRun == 0 || lq.memCC%lq.topRun != 0
		lq.traffic = mapping.OutputTraffic{}
		if op == loops.O {
			lq.traffic = m.OutputTrafficAt(l)
		}
	}

	if c.m[op] == nil {
		c.m[op] = make(map[string][]levelQuant)
	} else if len(c.m[op]) >= opCacheMaxEntries {
		c.m[op] = make(map[string][]levelQuant)
	}
	stored := make([]levelQuant, len(q))
	copy(stored, q)
	c.m[op][string(key)] = stored
	c.lastKey[op] = append(c.lastKey[op][:0], key...)
	c.lastQ[op] = stored
	return stored
}
