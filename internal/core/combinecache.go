package core

import (
	"math"

	"repro/internal/loops"
)

// Step-2 sub-result cache. The Eq. (1)/(2) combination of one physical
// port's endpoints — including the periodic window union, the dominant cost
// of a full evaluation — is a pure function of the ordered per-endpoint
// tuples (Mem_CC, X_REQ, Z, X_REAL) and the combine-relevant model options:
// every quantity combineEq reads (Window, MUW, SS_u) is derived from exactly
// those fields (buildEndpoints constructs Window = Tail(Mem_CC, X_REQ, ·)
// with Count = Z, MUW = X_REQ·Z and SS_u = (X_REAL − X_REQ)·Z). Sibling
// nests in a mapping search reproduce the same port contents constantly —
// most orderings only reshuffle one operand's levels while the other ports'
// endpoint tuples repeat — so a cache keyed by that encoding skips the whole
// union-and-combine for the majority of candidate evaluations.
//
// Because the key captures the ordered endpoint sequence bit-for-bit
// (X_REAL enters as its IEEE-754 bits) plus the option flags, a hit returns
// the float64 results of an identical earlier computation: cached scoring is
// bit-identical to uncached scoring by construction (asserted in
// TestCombineCacheBitIdentical). Unlike the Step-1 opCache the key does not
// depend on layer or architecture identity at all — the tuples fully
// determine the combination — so the table needs no re-scoping and survives
// across searches for as long as its Evaluator does.

// combineVal is one cached port combination.
type combineVal struct {
	ss    float64
	muw   float64
	exact bool
}

// combineCache holds the Step-2 memo table of one Evaluator. Not safe for
// concurrent use, like the Evaluator that owns it.
type combineCache struct {
	m      map[string]combineVal
	keyBuf []byte
}

// combineCacheMaxEntries bounds the table; a full table is dropped whole
// (coarse O(1) eviction, same discipline as the opCache).
const combineCacheMaxEntries = 1 << 14

// combineCached is combineEq behind the cache: it returns the memoized
// combination for the group's endpoint content, computing and interning it
// on a miss.
func (ev *Evaluator) combineCached(eps []*Endpoint, opts ModelOptions) (ssComb, muwAll float64, exact bool) {
	key := ev.cc.keyBuf[:0]
	var flags byte
	if opts.NaiveCombine {
		flags |= 1
	}
	if opts.NoCapacityBound {
		flags |= 2
	}
	key = append(key, flags)
	for _, e := range eps {
		key = loops.AppendUvarint(key, uint64(e.MemCC))
		key = loops.AppendUvarint(key, uint64(e.XReq))
		key = loops.AppendUvarint(key, uint64(e.Z))
		bits := math.Float64bits(e.XReal)
		key = append(key, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
			byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
	}
	ev.cc.keyBuf = key

	if v, ok := ev.cc.m[string(key)]; ok {
		return v.ss, v.muw, v.exact
	}
	ss, muw, ex := combineEq(eps, opts, &ev.sc)
	if ev.cc.m == nil || len(ev.cc.m) >= combineCacheMaxEntries {
		ev.cc.m = make(map[string]combineVal)
	}
	ev.cc.m[string(key)] = combineVal{ss: ss, muw: muw, exact: ex}
	return ss, muw, ex
}
