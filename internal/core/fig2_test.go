package core_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/loops"
	"repro/internal/mapper"
	"repro/internal/mapping"
	"repro/internal/sim"
	"repro/internal/workload"
)

// fig2Arch reproduces the memory system of paper Fig. 2(b): a global
// buffer shared by W/I/O over per-operand local buffers over per-operand
// registers — 3 operands x 3 levels = 9 unit memories (Mem1-9), whose
// interfaces decouple into the figure's 18 numbered DTL endpoints.
func fig2Arch() *arch.Arch {
	mkReg := func(name string, op loops.Operand, bits int64) *arch.Memory {
		return &arch.Memory{
			Name: name, CapacityBits: bits,
			Serves: []loops.Operand{op},
			Ports:  []arch.Port{{Name: "rw", Dir: arch.ReadWrite, BWBits: 256}},
		}
	}
	mkLB := func(name string, op loops.Operand) *arch.Memory {
		return &arch.Memory{
			Name: name, CapacityBits: 64 * 1024 * 8,
			Serves: []loops.Operand{op},
			Ports: []arch.Port{
				{Name: "rd", Dir: arch.Read, BWBits: 128},
				{Name: "wr", Dir: arch.Write, BWBits: 128},
			},
		}
	}
	a := &arch.Arch{
		Name: "fig2",
		MACs: 64,
		Memories: []*arch.Memory{
			mkReg("W-Reg", loops.W, 4*64*8),
			mkReg("I-Reg", loops.I, 4*16*8),
			mkReg("O-Reg", loops.O, 4*64*24),
			mkLB("W-LB", loops.W),
			mkLB("I-LB", loops.I),
			mkLB("O-LB", loops.O),
			{
				Name: "GB", CapacityBits: 1 << 24,
				Serves: []loops.Operand{loops.W, loops.I, loops.O},
				Ports: []arch.Port{
					{Name: "rd", Dir: arch.Read, BWBits: 128},
					{Name: "wr", Dir: arch.Write, BWBits: 128},
				},
			},
		},
	}
	a.Chain[loops.W] = []string{"W-Reg", "W-LB", "GB"}
	a.Chain[loops.I] = []string{"I-Reg", "I-LB", "GB"}
	a.Chain[loops.O] = []string{"O-Reg", "O-LB", "GB"}
	if err := a.Normalize(); err != nil {
		panic(err)
	}
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return a
}

// TestFig2DTLCensus checks the Step-1 decomposition on the Fig. 2(b)
// system: with an output-stationary mapping (no psum round trips), every
// operand has 2 inter-level interfaces with 2 endpoints each — the
// figure's 12 fill/drain endpoints — and every endpoint lands on the port
// the figure wires it to.
func TestFig2DTLCensus(t *testing.T) {
	l := workload.NewMatMul("f2", 8, 16, 16)
	a := fig2Arch()
	m := &mapping.Mapping{
		Spatial:  loops.Nest{{Dim: loops.K, Size: 16}, {Dim: loops.B, Size: 2}, {Dim: loops.C, Size: 2}},
		Temporal: loops.Nest{{Dim: loops.C, Size: 8}, {Dim: loops.B, Size: 4}},
	}
	m.Bound[loops.W] = []int{1, 1, 2}
	m.Bound[loops.I] = []int{1, 1, 2}
	m.Bound[loops.O] = []int{1, 2, 2} // all C at O-Reg: output stationary
	if err := m.Validate(&l, a); err != nil {
		t.Fatal(err)
	}
	eps, err := core.Endpoints(&core.Problem{Layer: &l, Arch: a, Mapping: m})
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 12 {
		for _, e := range eps {
			t.Logf("  %s", e.Label())
		}
		t.Fatalf("endpoints = %d, want 12 (2 interfaces x 2 sides x 3 operands)", len(eps))
	}
	// Census by (memory, direction).
	count := map[string]int{}
	for _, e := range eps {
		dir := "rd"
		if e.Access.Write {
			dir = "wr"
		}
		count[e.MemName+"."+dir]++
	}
	want := map[string]int{
		"GB.rd": 2, "GB.wr": 1, // W+I fills read GB; O final drain writes it
		"W-LB.rd": 1, "W-LB.wr": 1,
		"I-LB.rd": 1, "I-LB.wr": 1,
		"O-LB.rd": 1, "O-LB.wr": 1,
		"W-Reg.wr": 1, "I-Reg.wr": 1, "O-Reg.rd": 1,
	}
	for k, v := range want {
		if count[k] != v {
			t.Errorf("%s endpoints = %d, want %d", k, count[k], v)
		}
	}
	// A reduction loop above O-Reg adds the psum read-back pair per
	// O interface (the figure's remaining numbered links).
	m2 := m.Clone()
	m2.Bound[loops.O] = []int{0, 1, 2}
	eps2, err := core.Endpoints(&core.Problem{Layer: &l, Arch: a, Mapping: m2})
	if err != nil {
		t.Fatal(err)
	}
	psums := 0
	for _, e := range eps2 {
		if e.Kind == core.PsumBack {
			psums++
		}
	}
	if psums != 2 { // rd at O-LB + wr at O-Reg
		t.Errorf("psum endpoints = %d, want 2", psums)
	}
}

// TestFourLevelChainModelVsSim cross-validates the model against the
// simulator on the full 3-level-per-operand Fig. 2(b) hierarchy — deeper
// than any preset used by the main experiments.
func TestFourLevelChainModelVsSim(t *testing.T) {
	a := fig2Arch()
	l := workload.NewMatMul("deep", 64, 64, 64)
	best, _, err := mapper.Best(context.Background(), &l, a, &mapper.Options{
		Spatial:       loops.Nest{{Dim: loops.K, Size: 16}, {Dim: loops.B, Size: 2}, {Dim: loops.C, Size: 2}},
		BWAware:       true,
		MaxCandidates: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{Layer: &l, Arch: a, Mapping: best.Mapping}
	sr, err := sim.Simulate(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	acc := 1 - math.Abs(best.Result.CCTotal-float64(sr.Cycles))/float64(sr.Cycles)
	if acc < 0.85 {
		t.Errorf("deep-hierarchy accuracy %.3f (model %.0f, sim %d)",
			acc, best.Result.CCTotal, sr.Cycles)
	}
}
