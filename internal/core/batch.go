package core

import (
	"fmt"
	"math"
)

// ScoreBatch scores a slab of problems — the mapper ships candidates to its
// workers in batches of 64 sibling nests — writing ScoreLatency(ps[i]) into
// out[i], or NaN where that problem is not evaluable (the per-problem error
// is deliberately collapsed: a batch member that cannot be scored is simply
// not a candidate). The scores are bit-identical to len(ps) individual
// ScoreLatency calls: the batch runs the same Step 1–3 arithmetic in the
// same order per problem, and the structure-of-arrays win comes from the
// evaluator's memo layers staying hot across the slab — sibling nests share
// per-operand Step-1 content (opCache, including its consecutive-key fast
// path) and port-combination content (combineCache), so the marginal cost of
// a batch member is often just the key probes.
//
// Like every Evaluator method, ScoreBatch is not safe for concurrent use.
func (ev *Evaluator) ScoreBatch(ps []*Problem, out []float64) error {
	if len(out) < len(ps) {
		return fmt.Errorf("core: ScoreBatch output slab %d smaller than batch %d", len(out), len(ps))
	}
	for i, p := range ps {
		s, err := ev.ScoreLatency(p)
		if err != nil {
			out[i] = math.NaN()
			continue
		}
		out[i] = s
	}
	return nil
}
