package core

import (
	"repro/internal/arch"
	"repro/internal/loops"
	"repro/internal/mapping"
)

// appendOperandKey appends operand op's canonical Step-1 content key for
// mapping m to dst: per memory level (ALL levels, so the above-products of
// every interface are pinned) the level nest's dim products, plus each
// non-double-buffered interface level's effective top reuse run. Every
// Step-1 quantity of the operand — Mem_DATA, Mem_CC, Z, the Table-I
// keep-out scaling and the psum traffic split — is a pure function of this
// key, which makes it both the op-cache's lookup key (opcache.go) and one
// third of the mapper's model-equivalence signature.
func appendOperandKey(dst []byte, m *mapping.Mapping, op loops.Operand, chain []*arch.Memory) []byte {
	levels := len(chain)
	for l := 0; l < levels; l++ {
		nest := m.LevelNest(op, l)
		dst = nest.AppendDimProducts(dst)
		if l < levels-1 && !chain[l].DoubleBuffered {
			dst = loops.AppendUvarint(dst, uint64(nest.TopReuseRun(op)))
		}
	}
	return dst
}

// AppendSignature appends the mapping's model-equivalence signature to dst
// and returns the extended slice: the concatenation of every operand's
// Step-1 content key. Two mappings of the same (layer, arch, spatial
// unrolling) with equal signatures produce bit-identical results under
// Evaluate, EvaluateBWUnaware, ScoreLatency, LowerBound and the energy
// model: each consumes the temporal nest exclusively through per-level
// per-operand dim products, top reuse runs and CC_spatial (the all-level
// product, which the per-level products determine), and mapping.Validate's
// coverage and capacity checks read the same products. The mapper's
// symmetry reduction (DESIGN.md §9) relies on this exactness.
//
// The mapping's level boundaries must already be assigned. Signatures are
// only comparable between mappings sharing layer, arch and spatial nest —
// the chain structure fixes the encoding's field boundaries, so within one
// such family equal bytes imply equal quantity tuples.
func (ev *Evaluator) AppendSignature(dst []byte, p *Problem) []byte {
	for _, op := range loops.AllOperands {
		dst = appendOperandKey(dst, p.Mapping, op, ev.chainMems(p.Arch, op))
	}
	return dst
}
